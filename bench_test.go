package ftnet

// One benchmark per experiment table/figure (see DESIGN.md section 4 and
// EXPERIMENTS.md): each exercises the code path that regenerates the
// corresponding result, so `go test -bench .` doubles as a performance
// regression suite for the whole reproduction.

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"testing"

	"ftnet/internal/baseline"
	"ftnet/internal/churn"
	"ftnet/internal/core"
	"ftnet/internal/expander"
	"ftnet/internal/fault"
	"ftnet/internal/grid"
	"ftnet/internal/parallel"
	"ftnet/internal/parsim"
	"ftnet/internal/rng"
	"ftnet/internal/stats"
	"ftnet/internal/supernode"
	"ftnet/internal/sweep"
	"ftnet/internal/viz"
	"ftnet/internal/worstcase"
)

func benchGraphB2(b *testing.B) *core.Graph {
	b.Helper()
	g, err := core.NewGraph(core.Params{D: 2, W: 6, Pitch: 18, Scale: 1}) // n=432
	if err != nil {
		b.Fatal(err)
	}
	return g
}

func benchFaultsB2(b *testing.B, g *core.Graph, p float64, seed uint64) *fault.Set {
	b.Helper()
	f := fault.NewSet(g.NumNodes())
	f.Bernoulli(rng.New(seed), p)
	return f
}

// BenchmarkBuildB2 covers E1 (Theorem 2 resources): parameter fitting plus
// host construction.
func BenchmarkBuildB2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		p, err := core.FitParams(2, 1000, 0.5)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := core.NewGraph(p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPlaceBandsB2 covers E2/E3 (Lemma 5): band placement around
// random faults at 10x the theorem probability.
func BenchmarkPlaceBandsB2(b *testing.B) {
	g := benchGraphB2(b)
	p := 10 * g.P.TheoremFailureProb()
	faults := benchFaultsB2(b, g, p, 7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := g.PlaceBands(faults); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtractB2 covers E2 (Lemma 6): torus extraction given bands.
func BenchmarkExtractB2(b *testing.B) {
	g := benchGraphB2(b)
	faults := benchFaultsB2(b, g, 10*g.P.TheoremFailureProb(), 7)
	bands, _, err := g.PlaceBands(faults)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.Extract(bands, core.ExtractOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSurvivalTrialB2 covers E2 end to end: one full Monte-Carlo
// trial (inject, place, extract, verify).
func BenchmarkSurvivalTrialB2(b *testing.B) {
	g := benchGraphB2(b)
	p := g.P.TheoremFailureProb()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		faults := benchFaultsB2(b, g, p, uint64(i))
		if _, err := g.ContainTorus(faults, core.ExtractOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSurvivalTrialScratchB2 is BenchmarkSurvivalTrialB2 with the
// per-worker scratch the parallel engine uses. With a scratch the
// pipeline runs the locality-aware fast path (copy-on-write bands,
// dirty-column extraction, footprint verification), so per-trial cost
// tracks the fault footprint instead of the host size; compare against
// BenchmarkSurvivalTrialScratchDenseB2 for the same buffers on the
// legacy whole-host path.
func BenchmarkSurvivalTrialScratchB2(b *testing.B) {
	g := benchGraphB2(b)
	p := g.P.TheoremFailureProb()
	sc := core.NewScratch(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		faults := sc.Faults(g.NumNodes())
		faults.Bernoulli(rng.New(uint64(i)), p)
		if _, err := g.ContainTorus(faults, core.ExtractOptions{Scratch: sc}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSurvivalTrialScratchDenseB2 pins the legacy dense pipeline
// (ExtractOptions.Dense) under the same scratch: the gap to
// BenchmarkSurvivalTrialScratchB2 is the locality win alone.
func BenchmarkSurvivalTrialScratchDenseB2(b *testing.B) {
	g := benchGraphB2(b)
	p := g.P.TheoremFailureProb()
	sc := core.NewScratch(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		faults := sc.Faults(g.NumNodes())
		faults.Bernoulli(rng.New(uint64(i)), p)
		if _, err := g.ContainTorus(faults, core.ExtractOptions{Dense: true, Scratch: sc}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSurvivalParallel runs the E2 survival workload on the
// deterministic parallel engine, scaling the worker pool from 1 to
// NumCPU. Trials/op throughput should rise near-linearly with workers
// up to the physical core count; the workers=1 case doubles as the
// engine-overhead baseline against BenchmarkSurvivalTrialScratchB2.
func BenchmarkSurvivalParallel(b *testing.B) {
	g := benchGraphB2(b)
	p := g.P.TheoremFailureProb()
	trial := func(t int, stream *rng.PCG, scratch any) (stats.Outcome, error) {
		sc := scratch.(*core.Scratch)
		faults := sc.Faults(g.NumNodes())
		faults.Bernoulli(stream, p)
		if _, err := g.ContainTorus(faults, core.ExtractOptions{Scratch: sc}); err != nil {
			return stats.Failure, err
		}
		return stats.Success, nil
	}
	counts := []int{1, 2, 4}
	if n := runtime.NumCPU(); n > 4 {
		counts = append(counts, n)
	}
	for _, workers := range counts {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			_, err := parallel.Run(b.N, 12345, parallel.Options{
				Workers:    workers,
				NewScratch: func() any { return core.NewScratch(1) },
			}, trial)
			if err != nil {
				b.Fatal(err)
			}
		})
	}
}

// e2Ladder is the 9-rung E2 rate ladder on the n=432 host.
func e2Ladder(g *core.Graph) []float64 {
	pThm := g.P.TheoremFailureProb()
	mults := []float64{0.5, 1, 2, 5, 10, 25, 50, 100, 250}
	rates := make([]float64, len(mults))
	for i, m := range mults {
		rates[i] = pThm * m
	}
	return rates
}

// BenchmarkSurvivalSweepB2 covers the coupled curve engine on the full
// E2 workload: one op is one trial walking the entire 9-rung ladder
// under nested coupling, with rung-to-rung reuse of placement,
// extraction and verification state (core.SweepTrial). Compare against
// BenchmarkSurvivalSweepIndependentB2 — the same 9 rungs evaluated on
// independent per-rung samples, today's one-cell-per-rate behavior — for
// the coupling win alone.
func BenchmarkSurvivalSweepB2(b *testing.B) {
	g := benchGraphB2(b)
	rates := e2Ladder(g)
	b.ResetTimer()
	if _, err := sweep.SurvivalCurve(g, rates, b.N, 12345, sweep.Config{Workers: 1}); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkSurvivalSweepIndependentB2 is the ablation baseline: the same
// ladder, trial count and streams, but every rung re-samples and runs the
// pipeline cold.
func BenchmarkSurvivalSweepIndependentB2(b *testing.B) {
	g := benchGraphB2(b)
	rates := e2Ladder(g)
	b.ResetTimer()
	if _, err := sweep.SurvivalCurve(g, rates, b.N, 12345, sweep.Config{Workers: 1, Independent: true}); err != nil {
		b.Fatal(err)
	}
}

// churnSteadyState prepares a steady-state churn benchmark on the B2
// host: a generator whose stationary faulty fraction sits at stationary,
// plus a warm session holding an equilibrium fault set drawn at that
// rate.
func churnSteadyState(b *testing.B, g *core.Graph, stationary float64) (*churn.Generator, *core.Scratch, *core.Session, *rng.PCG, *fault.Set) {
	b.Helper()
	rho := 1.0
	gen, err := churn.NewGenerator(churn.Process{Arrival: stationary * rho / (1 - stationary), Repair: rho}, g.NodeShape())
	if err != nil {
		b.Fatal(err)
	}
	sc := core.NewScratch(1)
	ses := g.NewSession(sc, core.ExtractOptions{})
	stream := rng.NewPCG(4242, 1)
	faults := sc.Faults(g.NumNodes())
	faults.Bernoulli(stream, stationary)
	ses.NoteAdded(faults.Slice())
	if _, err := ses.Eval(faults); err != nil {
		b.Fatal(err) // seed chosen healthy; a failure here is a bug
	}
	return gen, sc, ses, stream, faults
}

// benchChurnEval counts an unhealthy state as a normal outcome (it is
// one, under churn) and anything else as a benchmark failure.
func benchChurnEval(b *testing.B, err error) {
	b.Helper()
	if err != nil {
		var ue *core.UnhealthyError
		if !errors.As(err, &ue) {
			b.Fatal(err)
		}
	}
}

// BenchmarkChurnSession is the dynamic-workload headline: one op is one
// churn event — a single fault arrival or repair at the steady state of
// the theorem rate — evaluated incrementally by the core.Session
// delta-evaluation engine. Compare against BenchmarkChurnSessionFromScratch
// (same event stream, from-scratch pipeline per event) and the
// BenchmarkSurvivalTrial* family (one from-scratch trial) for the
// incremental win; against the from-scratch BenchmarkSurvivalTrialB2
// the step runs ~40x faster (BENCH_pr4.json).
func BenchmarkChurnSession(b *testing.B) {
	g := benchGraphB2(b)
	gen, _, ses, stream, faults := churnSteadyState(b, g, g.P.TheoremFailureProb())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev, err := gen.Next(stream, faults)
		if err != nil {
			b.Fatal(err)
		}
		ses.NoteAdded(ev.Added)
		ses.NoteCleared(ev.Cleared)
		_, err = ses.Eval(faults)
		benchChurnEval(b, err)
	}
}

// BenchmarkChurnSessionHeavy is the same step at a 10x-theorem standing
// population (~56 faults, ~40 boxes): the incremental step still pays
// only the toggled box's footprint, while every from-scratch evaluation
// pays all of them — this is where the delta engine's O(event footprint)
// vs O(standing footprint) separation shows.
func BenchmarkChurnSessionHeavy(b *testing.B) {
	g := benchGraphB2(b)
	gen, _, ses, stream, faults := churnSteadyState(b, g, 10*g.P.TheoremFailureProb())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev, err := gen.Next(stream, faults)
		if err != nil {
			b.Fatal(err)
		}
		ses.NoteAdded(ev.Added)
		ses.NoteCleared(ev.Cleared)
		_, err = ses.Eval(faults)
		benchChurnEval(b, err)
	}
}

// BenchmarkChurnSessionFromScratch is the ablation baseline: the exact
// same steady-state event stream, but every event pays a from-scratch
// pipeline run (the strongest static baseline — scratch buffers and the
// PR 2 locality fast path included). The gap to BenchmarkChurnSession is
// the delta-evaluation win alone.
func BenchmarkChurnSessionFromScratch(b *testing.B) {
	g := benchGraphB2(b)
	gen, sc, _, stream, faults := churnSteadyState(b, g, g.P.TheoremFailureProb())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := gen.Next(stream, faults); err != nil {
			b.Fatal(err)
		}
		_, err := g.ContainTorus(faults, core.ExtractOptions{Scratch: sc})
		benchChurnEval(b, err)
	}
}

// BenchmarkChurnSessionFromScratchHeavy is the from-scratch ablation at
// the 10x standing population of BenchmarkChurnSessionHeavy.
func BenchmarkChurnSessionFromScratchHeavy(b *testing.B) {
	g := benchGraphB2(b)
	gen, sc, _, stream, faults := churnSteadyState(b, g, 10*g.P.TheoremFailureProb())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := gen.Next(stream, faults); err != nil {
			b.Fatal(err)
		}
		_, err := g.ContainTorus(faults, core.ExtractOptions{Scratch: sc})
		benchChurnEval(b, err)
	}
}

// edgeChurnSteadyState prepares a steady-state *mixed* node+edge churn
// benchmark on the B2 host: a host-backed generator with comparable
// node-fault and link-flap rates, stepped to stationarity so the
// charger holds an equilibrium mixed population, plus a warm session
// that has evaluated its effective (charged) set.
func edgeChurnSteadyState(b *testing.B, g *core.Graph, scale float64) (*churn.Generator, *core.Scratch, *core.Session, *rng.PCG, *fault.Charger) {
	b.Helper()
	rho := 1.0
	// Split the target standing population evenly between node faults
	// and edge charges: stationary fraction s on each side gives
	// arrival = s*rho/(1-s) per healthy node (resp. edge, scaled by the
	// node/edge count ratio so the *counts* match).
	s := scale * g.P.TheoremFailureProb() / 2
	edgeRatio := float64(g.NumNodes()) / float64(g.NumNodes()*g.Degree()/2)
	gen, err := churn.NewGeneratorHost(churn.Process{
		Arrival:     s * rho / (1 - s),
		Repair:      rho,
		EdgeArrival: s * edgeRatio * rho / (1 - s*edgeRatio),
		EdgeRepair:  rho,
	}, g)
	if err != nil {
		b.Fatal(err)
	}
	sc := core.NewScratch(1)
	ses := g.NewSession(sc, core.ExtractOptions{})
	stream := rng.NewPCG(4242, 3)
	ch := fault.NewCharger(g.NumNodes())
	// ~8 relaxation times of warmup events reach the stationary mix.
	for gen.Now() < 8/rho {
		if _, err := gen.NextMixed(stream, ch); err != nil {
			b.Fatal(err)
		}
	}
	ses.NoteAdded(ch.Effective().Slice())
	_, err = ses.Eval(ch.Effective())
	benchChurnEval(b, err)
	return gen, sc, ses, stream, ch
}

// BenchmarkEdgeChurnSession is the PR-8 headline: one op is one mixed
// churn event — a node arrival/repair or a link flap/repair at a
// steady-state mixed population — evaluated incrementally through the
// charging pass and the core.Session delta engine. Compare against
// BenchmarkEdgeChurnFromScratchDense (dense re-evaluation of the same
// charged set, the baseline the golden-equivalence tests pin the step
// against) for the BENCH_pr8.json acceptance ratio, and against
// BenchmarkEdgeChurnFromScratch (sparse locality fast path) for the
// strongest static baseline.
func BenchmarkEdgeChurnSession(b *testing.B) {
	g := benchGraphB2(b)
	gen, _, ses, stream, ch := edgeChurnSteadyState(b, g, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev, err := gen.NextMixed(stream, ch)
		if err != nil {
			b.Fatal(err)
		}
		ses.NoteAdded(ev.EffAdded)
		ses.NoteCleared(ev.EffCleared)
		_, err = ses.Eval(ch.Effective())
		benchChurnEval(b, err)
	}
}

// BenchmarkEdgeChurnFromScratch re-runs the exact same mixed event
// stream with a sparse from-scratch pipeline per event (scratch reuse
// and the locality fast path included).
func BenchmarkEdgeChurnFromScratch(b *testing.B) {
	g := benchGraphB2(b)
	gen, sc, _, stream, ch := edgeChurnSteadyState(b, g, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := gen.NextMixed(stream, ch); err != nil {
			b.Fatal(err)
		}
		_, err := g.ContainTorus(ch.Effective(), core.ExtractOptions{Scratch: sc})
		benchChurnEval(b, err)
	}
}

// BenchmarkEdgeChurnFromScratchDense is the dense from-scratch ablation:
// every event pays a full dense re-evaluation of the charged fault set —
// the reference the incremental step is proven bit-identical to.
func BenchmarkEdgeChurnFromScratchDense(b *testing.B) {
	g := benchGraphB2(b)
	gen, sc, _, stream, ch := edgeChurnSteadyState(b, g, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := gen.NextMixed(stream, ch); err != nil {
			b.Fatal(err)
		}
		_, err := g.ContainTorus(ch.Effective(), core.ExtractOptions{Scratch: sc, Dense: true})
		benchChurnEval(b, err)
	}
}

// BenchmarkLifetime covers the E16/E17 workload: one op is one full
// lifetime trial — fault-free start, ~60 churn events to the horizon,
// every event re-embedded and verified through the session engine.
func BenchmarkLifetime(b *testing.B) {
	g := benchGraphB2(b)
	pThm := g.P.TheoremFailureProb()
	_, err := churn.Simulate(g, churn.Process{Arrival: pThm, Repair: 1}, b.N, 7, churn.Options{
		Workers: 1,
		Horizon: 5,
	})
	if err != nil {
		b.Fatal(err)
	}
}

// benchBurstyProc is the burst-heavy mixed churn process of the PR 9
// batched-evaluation acceptance: adversarial clustered node bursts plus
// clustered link-flap bursts dominate the event stream, with unit-rate
// repair churning each burst back out. Per-event evaluation pays a full
// session step for every one of those events; the batched evaluator
// pays the placement probe per event and one full pipeline step per
// window.
// The rates keep the host up ~85% of the time (bursts are mostly
// tolerated and heal fast), which is the expensive regime for the
// per-event evaluator: successful evaluations pay extraction and
// verification on every single event.
func benchBurstyProc(g *core.Graph) churn.Process {
	return churn.Process{
		Arrival:       g.P.TheoremFailureProb() / 8,
		Repair:        2,
		BurstRate:     2,
		BurstSize:     12,
		EdgeArrival:   g.P.TheoremFailureProb() / 16,
		EdgeRepair:    2,
		EdgeBurstRate: 1,
		EdgeBurstSize: 8,
	}
}

// BenchmarkLifetimeBursty is the per-event baseline on the burst-heavy
// mixed process: one op is one full lifetime trial, every event paying
// a session evaluation.
func BenchmarkLifetimeBursty(b *testing.B) {
	g := benchGraphB2(b)
	_, err := churn.Simulate(g, benchBurstyProc(g), b.N, 7, churn.Options{
		Workers: 1,
		Horizon: 6,
	})
	if err != nil {
		b.Fatal(err)
	}
}

// BenchmarkLifetimeBurstyBatched is the same trials with Batch: 32 —
// per-event status from the placement probe, one full pipeline step per
// 32-event window. Results are bit-identical to BenchmarkLifetimeBursty
// (the golden suite in internal/churn pins it); only the cost moves.
// The BENCH_pr9.json acceptance wants >= 3x on this pair.
func BenchmarkLifetimeBurstyBatched(b *testing.B) {
	g := benchGraphB2(b)
	_, err := churn.Simulate(g, benchBurstyProc(g), b.N, 7, churn.Options{
		Workers: 1,
		Horizon: 6,
		Batch:   32,
	})
	if err != nil {
		b.Fatal(err)
	}
}

// BenchmarkLifetimeBatched is BenchmarkLifetime (steady-state churn,
// no bursts) with Batch: 16, pinning that batching also pays off — less
// dramatically — when events arrive one at a time.
func BenchmarkLifetimeBatched(b *testing.B) {
	g := benchGraphB2(b)
	pThm := g.P.TheoremFailureProb()
	_, err := churn.Simulate(g, churn.Process{Arrival: pThm, Repair: 1}, b.N, 7, churn.Options{
		Workers: 1,
		Horizon: 5,
		Batch:   16,
	})
	if err != nil {
		b.Fatal(err)
	}
}

// benchGraphChurn is the experiments' churn host (E16/E17): smaller than
// the B2 bench host because every event re-enters the pipeline.
func benchGraphChurn(b *testing.B) *core.Graph {
	b.Helper()
	g, err := core.NewGraph(core.Params{D: 2, W: 4, Pitch: 16, Scale: 1}) // n=192
	if err != nil {
		b.Fatal(err)
	}
	return g
}

// benchLadderRhos is the E17 repair-rate ladder.
var benchLadderRhos = []float64{0.05, 0.2, 0.8, 3.2, 12.8}

// BenchmarkRepairLadderCoupled covers the E17 workload on the coupled
// ladder: one op is one trial serving ALL five repair-rate rungs off a
// single uniformized event stream (shared arrivals, thinned repairs,
// probe sharing across rungs at equal fault counts).
func BenchmarkRepairLadderCoupled(b *testing.B) {
	g := benchGraphChurn(b)
	lambda := 40 * g.P.TheoremFailureProb()
	_, err := churn.SimulateRepairLadder(g, lambda, benchLadderRhos, b.N, 7, churn.LadderOptions{
		Workers: 1,
		Horizon: 6,
	})
	if err != nil {
		b.Fatal(err)
	}
}

// BenchmarkRepairLadderIndependent is the ablation E17 ran before the
// coupled ladder: one independent batched simulation per rung, each on
// its own event stream. One op is one full-ladder outcome (all five
// rungs), so the ratio to BenchmarkRepairLadderCoupled is the coupling
// win at equal statistical output.
func BenchmarkRepairLadderIndependent(b *testing.B) {
	g := benchGraphChurn(b)
	lambda := 40 * g.P.TheoremFailureProb()
	for r, rho := range benchLadderRhos {
		_, err := churn.Simulate(g, churn.Process{Arrival: lambda, Repair: rho}, b.N, 7+uint64(r), churn.Options{
			Workers: 1,
			Horizon: 6,
			Batch:   16,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// benchB3 caches the 3-dimensional churn host (9.4M nodes) across the
// d=3 benchmarks; building it costs seconds and must not be re-paid per
// benchmark function.
var benchB3 struct {
	once sync.Once
	g    *core.Graph
	err  error
}

func benchGraphB3(b *testing.B) *core.Graph {
	b.Helper()
	benchB3.once.Do(func() {
		benchB3.g, benchB3.err = core.NewGraph(core.Params{D: 3, W: 4, Pitch: 16, Scale: 1}) // n=192, 9.4M host nodes
	})
	if benchB3.err != nil {
		b.Fatal(benchB3.err)
	}
	return benchB3.g
}

// BenchmarkChurnSession3D is the d=3 churn step: one op is one fault
// arrival or repair on the 9.4M-node host, evaluated incrementally.
// Compare against BenchmarkChurnSession for the dimension scaling of
// the O(footprint) step.
func BenchmarkChurnSession3D(b *testing.B) {
	g := benchGraphB3(b)
	gen, _, ses, stream, faults := churnSteadyState(b, g, g.P.TheoremFailureProb())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev, err := gen.Next(stream, faults)
		if err != nil {
			b.Fatal(err)
		}
		ses.NoteAdded(ev.Added)
		ses.NoteCleared(ev.Cleared)
		_, err = ses.Eval(faults)
		benchChurnEval(b, err)
	}
}

// BenchmarkLifetimeBursty3DBatched runs one burst-heavy batched
// lifetime trial per op on the d=3 host — the scale target of the PR 9
// churn extension (the golden suite pins bit-identity to per-event at
// this exact configuration). Run with -benchtime=1x or 2x; a trial
// simulates thousands of events.
func BenchmarkLifetimeBursty3DBatched(b *testing.B) {
	g := benchGraphB3(b)
	pThm := g.P.TheoremFailureProb()
	_, err := churn.Simulate(g, churn.Process{
		Arrival:     pThm / 2,
		Repair:      0.6,
		BurstRate:   0.8,
		BurstSize:   60,
		EdgeArrival: pThm / 8,
		EdgeRepair:  0.6,
	}, b.N, 7, churn.Options{
		Workers: 1,
		Horizon: 6,
		Batch:   32,
	})
	if err != nil {
		b.Fatal(err)
	}
}

// BenchmarkChurnSessionRearmed is BenchmarkChurnSession on the rotated
// regime: the session's very first evaluation is a cold extraction with
// an anchor-rotating fault — the dense-path cliff before the re-arm —
// and the rotating fault stays pinned through the churn. After the
// re-arm, steady-state steps here must land within ~2x of the unrotated
// BenchmarkChurnSession (the BENCH_pr9.json acceptance); before it,
// every step paid the dense whole-host pipeline.
func BenchmarkChurnSessionRearmed(b *testing.B) {
	g := benchGraphB2(b)
	rot := g.FindAnchorRotatingFault()
	if rot < 0 {
		b.Skip("no single-node anchor-rotating fault on the bench host")
	}
	stationary := g.P.TheoremFailureProb()
	gen, err := churn.NewGenerator(churn.Process{Arrival: stationary / (1 - stationary), Repair: 1}, g.NodeShape())
	if err != nil {
		b.Fatal(err)
	}
	sc := core.NewScratch(1)
	ses := g.NewSession(sc, core.ExtractOptions{})
	stream := rng.NewPCG(4242, 1)
	faults := sc.Faults(g.NumNodes())
	// Cold evaluation WITH the rotating fault: the cliff scenario.
	faults.Add(rot)
	ses.NoteAdded([]int{rot})
	if _, err := ses.Eval(faults); err != nil {
		b.Fatal(err)
	}
	// Standing population on top of the rotated state.
	added := faults.BernoulliRecord(stream, stationary, nil)
	ses.NoteAdded(added)
	if _, err := ses.Eval(faults); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev, err := gen.Next(stream, faults)
		if err != nil {
			b.Fatal(err)
		}
		ses.NoteAdded(ev.Added)
		ses.NoteCleared(ev.Cleared)
		// Keep the rotation pinned: if the event repaired the rotating
		// fault, re-add it in the same step.
		if !faults.Has(rot) {
			faults.Add(rot)
			ses.NoteAdded([]int{rot})
		}
		_, err = ses.Eval(faults)
		benchChurnEval(b, err)
	}
}

// BenchmarkHealthCheckB2 covers E3 (Lemma 4 diagnostics).
func BenchmarkHealthCheckB2(b *testing.B) {
	g := benchGraphB2(b)
	faults := benchFaultsB2(b, g, 50*g.P.TheoremFailureProb(), 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.CheckHealth(faults)
	}
}

// BenchmarkPlaceBandsB3 covers the d=3 rows of E1: placement on the
// 3-dimensional host.
func BenchmarkPlaceBandsB3(b *testing.B) {
	g, err := core.NewGraph(core.Params{D: 3, W: 4, Pitch: 16, Scale: 1})
	if err != nil {
		b.Fatal(err)
	}
	faults := fault.NewSet(g.NumNodes())
	r := rng.New(5)
	for i := 0; i < 8; i++ {
		faults.Add(r.Intn(g.NumNodes()))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := g.PlaceBands(faults); err != nil {
			b.Fatal(err)
		}
	}
}

func benchGraphA2(b *testing.B, q float64, h int) *supernode.Graph {
	b.Helper()
	g, err := supernode.NewGraph(supernode.Params{
		Base: core.Params{D: 2, W: 4, Pitch: 16, Scale: 1}, K: 2, H: h, Q: q})
	if err != nil {
		b.Fatal(err)
	}
	return g
}

// BenchmarkEmbedA2 covers E4/E5 (Theorem 1): the full supernode pipeline
// at p = 0.1.
func BenchmarkEmbedA2(b *testing.B) {
	g := benchGraphA2(b, 0, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fs := g.NewFaultState(uint64(i), 0.1, rng.New(uint64(i)))
		if _, _, err := g.Embed(fs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGoodNodesA2 covers the half-edge goodness scan of E5/E6 with
// q > 0 (the oracle-heavy path).
func BenchmarkGoodNodesA2(b *testing.B) {
	g := benchGraphA2(b, 1e-6, 16)
	fs := g.NewFaultState(9, 0.1, rng.New(9))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := g.Embed(fs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkClusterEmbed covers the FKP-style baseline side of E6.
func BenchmarkClusterEmbed(b *testing.B) {
	ct, err := baseline.NewClusterTorus(2, 384, 10)
	if err != nil {
		b.Fatal(err)
	}
	faults := fault.NewSet(ct.NumNodes())
	faults.Bernoulli(rng.New(3), 0.2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ct.Embed(faults, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func benchGraphD2(b *testing.B) *worstcase.Graph {
	b.Helper()
	g, err := worstcase.NewGraph(worstcase.Params{D: 2, N: 200, K: 64})
	if err != nil {
		b.Fatal(err)
	}
	return g
}

// BenchmarkMaskD2 covers E7/E9 (Theorem 13): the pigeonhole cascade at
// full adversarial budget.
func BenchmarkMaskD2(b *testing.B) {
	g := benchGraphD2(b)
	faults, err := fault.Adversarial(fault.ClassSpread, g.Shape, g.P.Capacity(), g.P.B()+1, rng.New(11))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.Mask(faults); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTolerateD2 covers E7 end to end including extraction and
// verification.
func BenchmarkTolerateD2(b *testing.B) {
	g := benchGraphD2(b)
	faults, err := fault.Adversarial(fault.Cluster, g.Shape, g.P.Capacity(), g.P.B()+1, rng.New(13))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := g.Tolerate(faults, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMaskD3 covers E8 (general-d cascade).
func BenchmarkMaskD3(b *testing.B) {
	g, err := worstcase.NewGraph(worstcase.Params{D: 3, N: 16, K: 4})
	if err != nil {
		b.Fatal(err)
	}
	faults, err := fault.Adversarial(fault.Uniform, g.Shape, g.P.Capacity(), g.P.B()+1, rng.New(17))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.Mask(faults); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSpareGridRecover covers the comparator side of E9.
func BenchmarkSpareGridRecover(b *testing.B) {
	sg, err := baseline.NewSpareGrid(200, 50, 3)
	if err != nil {
		b.Fatal(err)
	}
	faults := fault.NewSet(sg.NumNodes())
	for i := 0; i < 40; i++ {
		faults.Add((5*i)*sg.Side() + 4*i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sg.Recover(faults); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPosaPath covers E11 (Alon-Chung baseline): long-path search on
// the expander with 25% deletions.
func BenchmarkPosaPath(b *testing.B) {
	g, err := expander.NewGabberGalil(20)
	if err != nil {
		b.Fatal(err)
	}
	dead := fault.NewSet(g.N)
	if err := dead.ExactRandom(rng.New(3), g.N/4); err != nil {
		b.Fatal(err)
	}
	alive := func(v int) bool { return !dead.Has(v) }
	target := g.N / 2
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		path := g.LongestPath(alive, target, rng.New(uint64(i)), 400_000)
		if len(path) < target {
			b.Fatal("path search fell short")
		}
	}
}

// BenchmarkSpectralGap covers E11's expansion certificate.
func BenchmarkSpectralGap(b *testing.B) {
	g, err := expander.NewGabberGalil(23)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if l := g.SecondEigenvalue(100, rng.New(uint64(i))); l >= 1 {
			b.Fatal("no gap")
		}
	}
}

// BenchmarkRenderFigure covers E12 (Figures 1-2).
func BenchmarkRenderFigure(b *testing.B) {
	g, err := core.NewGraph(core.Params{D: 2, W: 4, Pitch: 16, Scale: 1})
	if err != nil {
		b.Fatal(err)
	}
	faults := fault.NewSet(g.NumNodes())
	faults.Add(g.NodeIndex(44, 40))
	res, err := g.ContainTorus(faults, core.ExtractOptions{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := viz.Bands(g, res.Bands, faults, 30, 20, 28, 64); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStencil covers the application check (EXPERIMENTS.md): one
// Jacobi step per processor on the extracted machine's logical torus.
func BenchmarkStencil(b *testing.B) {
	m := parsimIdeal(b, 432)
	field := make([]float64, m.P())
	field[0] = 1
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Stencil(field, 1, 0.8); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCannon covers the matrix-multiply workload on the logical torus.
func BenchmarkCannon(b *testing.B) {
	m := parsimIdeal(b, 64)
	n := 64
	a := make([]float64, n*n)
	bb := make([]float64, n*n)
	for i := range a {
		a[i] = float64(i % 7)
		bb[i] = float64(i % 5)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := m.Cannon(a, bb); err != nil {
			b.Fatal(err)
		}
	}
}

func parsimIdeal(b *testing.B, side int) *parsim.Machine {
	b.Helper()
	return parsim.NewIdeal(grid.Shape{side, side})
}

// BenchmarkFacadeExtract covers the public API path used by downstream
// code (quickstart example).
func BenchmarkFacadeExtract(b *testing.B) {
	host, err := NewRandomFaultTorus(2, 400, 0.5)
	if err != nil {
		b.Fatal(err)
	}
	faults := host.InjectRandom(42, host.TheoremFailureProb())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := host.Extract(faults); err != nil {
			b.Fatal(err)
		}
	}
}
