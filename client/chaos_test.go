package client

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"ftnet/internal/fterr"
	"ftnet/internal/server"
	"ftnet/internal/wire"
)

// TestChaosConvergence is the end-to-end resilience proof: a daemon
// with every chaos injection enabled (latency, 5xx bursts, dropped
// connections mid-body, corrupted wire payloads, forced ring evictions
// — on top of a tiny real delta ring) serves a mutating workload, and
// the SDK must still converge to an embedding bit-identical to a
// from-scratch Extract of the final committed fault set, with zero
// stale reads and bounded retries. Run under -race in CI.
func TestChaosConvergence(t *testing.T) {
	srv, err := server.New(server.Config{
		Topologies: []server.TopologyConfig{{ID: "main", D: 2, MinSide: 64, MaxEps: 0.5}},
		DeltaRing:  4, // small enough that the churn below evicts for real
		Chaos: server.ChaosConfig{
			LatencyP: 0.2,
			Latency:  2 * time.Millisecond,
			ErrorP:   0.15,
			DropP:    0.1,
			CorruptP: 0.3,
			EvictP:   0.2,
			Seed:     42,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { ts.Close(); srv.Close() })

	c, err := New(Options{
		BaseURL:     ts.URL,
		Topology:    "main",
		MaxRetries:  16,
		BackoffBase: time.Millisecond,
		BackoffMax:  30 * time.Millisecond,
		Seed:        99,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	// A second client watches the commit stream throughout, recording
	// every event for the continuity audit below.
	watcher, err := New(Options{
		BaseURL: ts.URL, Topology: "main",
		MaxRetries: 16, BackoffBase: time.Millisecond, BackoffMax: 30 * time.Millisecond, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	var evMu sync.Mutex
	var events []Event
	watchCtx, stopWatch := context.WithCancel(ctx)
	watchDone := make(chan error, 1)
	go func() {
		watchDone <- watcher.Watch(watchCtx, func(ev Event) error {
			evMu.Lock()
			events = append(events, ev)
			evMu.Unlock()
			return nil
		})
	}()

	// The workload: interleaved fault churn and incremental syncs, every
	// request running the chaos gauntlet. Nodes are spread with a large
	// odd stride so the fault population stays tolerable.
	info, err := c.Info(ctx)
	if err != nil {
		t.Fatal(err)
	}
	var added []int
	node := func(i int) int { return (i * 9973) % info.HostNodes }
	for round := 0; round < 12; round++ {
		batch := []int{node(3*round + 1), node(3*round + 2)}
		switch _, err := c.AddFaults(ctx, batch...); {
		case fterr.Is(err, fterr.NotTolerated):
			// The daemon recorded the batch but the pattern broke the
			// tolerance guarantee: it keeps serving the last good state
			// (the typed 422 path). Heal and move on.
			if _, err := c.ClearFaults(ctx, batch...); err != nil {
				t.Fatalf("round %d: heal %v: %v", round, batch, err)
			}
		case err != nil:
			t.Fatalf("round %d: add %v: %v", round, batch, err)
		default:
			added = append(added, batch...)
		}
		if len(added) > 12 {
			if _, err := c.ClearFaults(ctx, added[0], added[1]); err != nil {
				t.Fatalf("round %d: clear: %v", round, err)
			}
			added = added[2:]
		}
		if _, err := c.Sync(ctx); err != nil {
			t.Fatalf("round %d: sync: %v", round, err)
		}
	}
	st, err := c.Reembed(ctx)
	if err != nil {
		t.Fatalf("final reembed: %v", err)
	}

	// Converge on the final committed generation, chaos still firing.
	var snap = mustSyncTo(t, ctx, c, st.Generation)

	// The convergence oracle: a from-scratch Extract over the committed
	// fault set, computed inside the daemon with no wire in between.
	scratch, err := srv.ScratchExtract("main")
	if err != nil {
		t.Fatal(err)
	}
	if snap.Generation != scratch.Generation {
		t.Fatalf("synced generation %d, committed head %d", snap.Generation, scratch.Generation)
	}
	if snap.Checksum != scratch.Checksum {
		t.Fatalf("synced checksum %016x, scratch %016x", snap.Checksum, scratch.Checksum)
	}
	if len(snap.Map) != len(scratch.Map) {
		t.Fatalf("synced map has %d entries, scratch %d", len(snap.Map), len(scratch.Map))
	}
	for i := range snap.Map {
		if snap.Map[i] != scratch.Map[i] {
			t.Fatalf("synced map differs from scratch extract at guest node %d: %d vs %d",
				i, snap.Map[i], scratch.Map[i])
		}
	}
	if len(snap.Faults) != len(scratch.Faults) {
		t.Fatalf("synced %d faults, committed %d", len(snap.Faults), len(scratch.Faults))
	}
	for i := range snap.Faults {
		if snap.Faults[i] != scratch.Faults[i] {
			t.Fatalf("fault set differs at %d: %d vs %d", i, snap.Faults[i], scratch.Faults[i])
		}
	}

	stats := c.Stats()
	if stats.StaleReads != 0 {
		t.Fatalf("observed %d stale reads under chaos", stats.StaleReads)
	}
	if stats.Retries == 0 && stats.Resyncs == 0 {
		t.Fatalf("chaos never bit: %+v (injection probabilities too low?)", stats)
	}
	// Bounded retries: every operation above returned, and no operation
	// may consume more than MaxRetries+1 attempts; a run-away retry loop
	// would show up as requests growing far beyond operations*(1+retries).
	if stats.Requests > 64*(1+16) {
		t.Fatalf("retry volume implausible for this workload: %+v", stats)
	}

	// Stop the watcher and audit the stream: generations must be
	// strictly increasing (no duplicates, no regressions), and every
	// step either continues the sequence or is an explicit resync event
	// — a silent skip is a protocol violation.
	stopWatch()
	if err := <-watchDone; !fterr.Is(err, fterr.Unavailable) {
		t.Fatalf("watcher exit: %v", err)
	}
	evMu.Lock()
	defer evMu.Unlock()
	if len(events) == 0 {
		t.Fatal("watcher saw no events")
	}
	for i := 1; i < len(events); i++ {
		prev, ev := events[i-1], events[i]
		if ev.Generation <= prev.Generation {
			t.Fatalf("watch event %d: generation %d after %d", i, ev.Generation, prev.Generation)
		}
		if !ev.Resync && ev.Generation != prev.Generation+1 {
			t.Fatalf("watch event %d: silent gap %d -> %d without a resync event",
				i, prev.Generation, ev.Generation)
		}
	}
	if last := events[len(events)-1].Generation; last != scratch.Generation {
		t.Fatalf("watch stream ended at generation %d, head is %d", last, scratch.Generation)
	}

	// The injection counters prove the gauntlet actually fired; /metrics
	// is chaos-exempt by design so this read is reliable.
	metrics := getMetrics(t, ts.URL)
	for _, kind := range []string{"latency", "error", "drop", "corrupt", "evict"} {
		if !injected(metrics, kind) {
			t.Errorf("chaos kind %q never fired", kind)
		}
	}
	if !strings.Contains(metrics, `ftnetd_errors_total{code="unavailable"}`) {
		t.Error("ftnetd_errors_total{code=\"unavailable\"} series missing")
	}
}

// mustSyncTo syncs until the client holds at least generation gen.
func mustSyncTo(t *testing.T, ctx context.Context, c *Client, gen int64) *wire.Snapshot {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		s, err := c.Sync(ctx)
		if err != nil {
			t.Fatalf("sync toward generation %d: %v", gen, err)
		}
		if s.Generation >= gen {
			return s
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("never reached generation %d", gen)
	return nil
}

func getMetrics(t *testing.T, base string) string {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// injected reports whether the chaos counter for kind is positive.
func injected(metrics, kind string) bool {
	needle := fmt.Sprintf("ftnetd_chaos_injections_total{kind=%q} ", kind)
	for _, line := range strings.Split(metrics, "\n") {
		if strings.HasPrefix(line, needle) {
			return strings.TrimPrefix(line, needle) != "0"
		}
	}
	return false
}
