// Package client is the resilient Go SDK for ftnetd: a typed,
// self-healing wrapper over the daemon's HTTP + binary wire surface
// (PR 5/6) that encodes the recovery protocol of the fterr taxonomy so
// callers never hand-roll it.
//
// Every response error is decoded into a coded error (ftnet.CodeOf
// works on anything this package returns), and the code's class drives
// recovery mechanically:
//
//	retryable (unavailable, internal)   jittered exponential backoff,
//	                                    bounded by MaxRetries
//	resync (resync_required, corrupt)   drop local incremental state,
//	                                    full-fetch, continue
//	terminal (everything else)          returned to the caller
//
// Incremental sync (Sync) follows the delta protocol: ?since= fetches
// are applied in place and re-verified against the head checksum —
// a corrupted or misapplied delta can never become the client's state —
// and a 410 triggers an automatic full-fetch resync. Watch follows the
// SSE stream with automatic reconnection: the client passes its last
// seen generation on reconnect (?since=g), so commits are delivered
// exactly once, in order, across connection failures; an unbridgeable
// gap is surfaced as an explicit resync event, never as silently
// skipped commits.
//
// The Stats counters make the resilience auditable: the chaos e2e test
// asserts zero stale reads and bounded retries while faults are being
// injected into the server under it.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ftnet/internal/fterr"
	"ftnet/internal/rng"
	"ftnet/internal/wire"
)

// Options configures a Client. BaseURL and Topology are required.
type Options struct {
	// BaseURL is the daemon address, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// Topology is the hosted topology id.
	Topology string
	// HTTPClient overrides the transport (default: a dedicated
	// http.Client; the per-request timeout comes from RequestTimeout).
	HTTPClient *http.Client
	// RequestTimeout bounds each HTTP attempt (default 30s).
	RequestTimeout time.Duration
	// MaxRetries bounds the retry loop per logical operation (default 8).
	MaxRetries int
	// BackoffBase is the first retry's backoff (default 25ms); each
	// retry doubles it up to BackoffMax (default 2s), then a uniform
	// jitter in [0.5, 1.0) of the value is applied.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// Seed drives the jitter sequence deterministically (0 means 1).
	Seed uint64
}

// State is a mutation acknowledgement: the committed generation that
// covers the request.
type State struct {
	Topology       string `json:"topology"`
	Generation     int64  `json:"generation"`
	FaultCount     int    `json:"fault_count"`
	EdgeFaultCount int    `json:"edge_fault_count"`
	Checksum       string `json:"checksum"`
}

// Info describes the hosted topology.
type Info struct {
	ID         string  `json:"id"`
	Dims       int     `json:"dims"`
	Side       int     `json:"side"`
	HostNodes  int     `json:"host_nodes"`
	Degree     int     `json:"degree"`
	Eps        float64 `json:"eps"`
	Generation int64   `json:"generation"`
	FaultCount int     `json:"fault_count"`
	EdgeFaults int     `json:"edge_fault_count"`
}

// Stats counts the client's recovery actions since construction.
// Monotone; read them with Stats().
type Stats struct {
	// Requests is the number of HTTP attempts issued.
	Requests int64
	// Retries counts attempts beyond the first for any operation.
	Retries int64
	// Resyncs counts incremental states dropped for a full refetch
	// (410 Gone, corrupt payloads, failed delta verification).
	Resyncs int64
	// FullFetches and DeltaApplies count how Sync converged.
	FullFetches  int64
	DeltaApplies int64
	// StaleReads counts observed generation regressions — a successful
	// read below a generation this client already held. The serving
	// contract makes this impossible; the chaos test asserts zero.
	StaleReads int64
	// WatchReconnects counts watch-stream reconnections.
	WatchReconnects int64
	// BytesRead counts response body bytes received (including watch
	// stream lines) — the harness's bytes-per-update accounting.
	BytesRead int64
}

// Client is a resilient ftnetd client for one topology. Safe for
// concurrent use; the incremental snapshot state is mutex-guarded.
type Client struct {
	base    string // BaseURL without trailing slash
	topo    string
	httpc   *http.Client
	timeout time.Duration
	retries int
	backoff time.Duration
	backMax time.Duration

	jitterMu sync.Mutex
	jitter   *rng.PCG

	snapMu sync.Mutex
	snap   *wire.Snapshot // last synced full state, nil before first Sync

	maxGen atomic.Int64 // highest generation ever observed (stale-read fence)

	requests     atomic.Int64
	bytesRead    atomic.Int64
	retriesN     atomic.Int64
	resyncs      atomic.Int64
	fullFetches  atomic.Int64
	deltaApplies atomic.Int64
	staleReads   atomic.Int64
	reconnects   atomic.Int64
}

// New validates opts and builds a client. No request is issued.
func New(opts Options) (*Client, error) {
	if opts.BaseURL == "" {
		return nil, fterr.New(fterr.Invalid, "client.New", "BaseURL is required")
	}
	if opts.Topology == "" {
		return nil, fterr.New(fterr.Invalid, "client.New", "Topology is required")
	}
	c := &Client{
		base:    strings.TrimSuffix(opts.BaseURL, "/"),
		topo:    opts.Topology,
		httpc:   opts.HTTPClient,
		timeout: opts.RequestTimeout,
		retries: opts.MaxRetries,
		backoff: opts.BackoffBase,
		backMax: opts.BackoffMax,
	}
	if c.httpc == nil {
		c.httpc = &http.Client{}
	}
	if c.timeout <= 0 {
		c.timeout = 30 * time.Second
	}
	if c.retries <= 0 {
		c.retries = 8
	}
	if c.backoff <= 0 {
		c.backoff = 25 * time.Millisecond
	}
	if c.backMax <= 0 {
		c.backMax = 2 * time.Second
	}
	seed := opts.Seed
	if seed == 0 {
		seed = 1
	}
	c.jitter = rng.NewPCG(seed, 0)
	return c, nil
}

// Stats returns a snapshot of the recovery counters.
func (c *Client) Stats() Stats {
	return Stats{
		Requests:        c.requests.Load(),
		Retries:         c.retriesN.Load(),
		Resyncs:         c.resyncs.Load(),
		FullFetches:     c.fullFetches.Load(),
		DeltaApplies:    c.deltaApplies.Load(),
		StaleReads:      c.staleReads.Load(),
		WatchReconnects: c.reconnects.Load(),
		BytesRead:       c.bytesRead.Load(),
	}
}

// Generation returns the highest committed generation this client has
// observed (0 before any read).
func (c *Client) Generation() int64 { return c.maxGen.Load() }

func (c *Client) topoURL(suffix string) string {
	return c.base + "/v1/topologies/" + c.topo + suffix
}

// noteGeneration advances the stale-read fence and reports whether gen
// is a regression (a generation below one already observed).
func (c *Client) noteGeneration(gen int64) bool {
	for {
		cur := c.maxGen.Load()
		if gen >= cur {
			if c.maxGen.CompareAndSwap(cur, gen) {
				return false
			}
			continue
		}
		c.staleReads.Add(1)
		return true
	}
}

// ParseErrorBody decodes a daemon error response into a coded error.
// It is total: any body bytes produce a coded, non-nil error. A typed
// {code, message, retryable, resync_from} body yields its code; an
// undecodable or codeless body falls back to the most conservative
// code consistent with the HTTP status (fterr.CodeForStatus). The
// body's retryable flag is informational only — retryability always
// derives from the code, so an unknown future code degrades to
// terminal (never blind-retried) even if the flag claims otherwise.
func ParseErrorBody(status int, body []byte) error {
	var w fterr.Wire
	if err := json.Unmarshal(body, &w); err == nil && w.Code != "" {
		msg := w.Message
		if msg == "" {
			msg = strings.TrimSpace(string(body))
		}
		return &fterr.E{Code: w.Code, Op: "client", Msg: msg}
	}
	msg := strings.TrimSpace(string(body))
	if len(msg) > 256 {
		msg = msg[:256]
	}
	if msg == "" {
		msg = http.StatusText(status)
	}
	return fterr.New(fterr.CodeForStatus(status), "client", "HTTP %d: %s", status, msg)
}

// sleepBackoff sleeps the attempt's jittered exponential backoff, or
// returns the context error if the deadline lands first.
func (c *Client) sleepBackoff(ctx context.Context, attempt int) error {
	d := c.backoff << attempt
	if d > c.backMax || d <= 0 {
		d = c.backMax
	}
	c.jitterMu.Lock()
	f := 0.5 + 0.5*c.jitter.Float64()
	c.jitterMu.Unlock()
	d = time.Duration(float64(d) * f)
	select {
	case <-time.After(d):
		return nil
	case <-ctx.Done():
		return fterr.Wrap(fterr.Unavailable, "client.backoff", ctx.Err())
	}
}

// do issues one HTTP attempt and returns the response body. Non-2xx
// statuses come back as coded errors; transport failures are coded
// Unavailable (retryable — the daemon may be restarting).
func (c *Client) do(ctx context.Context, method, url string, body []byte, accept string) ([]byte, int, error) {
	c.requests.Add(1)
	rctx, cancel := context.WithTimeout(ctx, c.timeout)
	defer cancel()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(rctx, method, url, rd)
	if err != nil {
		return nil, 0, fterr.Wrap(fterr.Invalid, "client.do", err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if accept != "" {
		req.Header.Set("Accept", accept)
	}
	resp, err := c.httpc.Do(req)
	if err != nil {
		if ctx.Err() != nil {
			// The caller's context ended: not the server's fault, and not
			// retryable within this call tree.
			return nil, 0, fterr.Wrap(fterr.Unavailable, "client.do", ctx.Err())
		}
		return nil, 0, fterr.Wrapf(fterr.Unavailable, "client.do", err, "%s %s", method, url)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	c.bytesRead.Add(int64(len(data)))
	if err != nil {
		// Truncated mid-body (dropped connection): the payload cannot be
		// trusted; readers of binary payloads would also catch this via
		// decode, but a clean code here keeps JSON paths retrying too.
		return nil, resp.StatusCode, fterr.Wrapf(fterr.Unavailable, "client.do", err, "%s %s: truncated response", method, url)
	}
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return data, resp.StatusCode, ParseErrorBody(resp.StatusCode, data)
	}
	return data, resp.StatusCode, nil
}

// retry runs op under the taxonomy's retry policy: retryable-class
// errors back off and try again (bounded), everything else returns
// immediately. Resync-class errors return to the caller too — recovery
// there means new state, not the same request again.
func (c *Client) retry(ctx context.Context, op func() error) error {
	var err error
	for attempt := 0; ; attempt++ {
		err = op()
		if err == nil || fterr.ClassOf(err) != fterr.ClassRetryable {
			return err
		}
		if attempt >= c.retries {
			return fterr.Wrapf(fterr.Unavailable, "client.retry", err, "giving up after %d retries", attempt)
		}
		c.retriesN.Add(1)
		if serr := c.sleepBackoff(ctx, attempt); serr != nil {
			return serr
		}
	}
}

// jsonOp issues a JSON request with retries and decodes a 2xx body
// into out.
func (c *Client) jsonOp(ctx context.Context, method, url string, reqBody, out any) error {
	var body []byte
	if reqBody != nil {
		var err error
		if body, err = json.Marshal(reqBody); err != nil {
			return fterr.Wrap(fterr.Invalid, "client", err)
		}
	}
	return c.retry(ctx, func() error {
		data, _, err := c.do(ctx, method, url, body, "")
		if err != nil {
			return err
		}
		if out == nil {
			return nil
		}
		if err := json.Unmarshal(data, out); err != nil {
			return fterr.Wrapf(fterr.Corrupt, "client", err, "undecodable %s response", method)
		}
		return nil
	})
}

// Info fetches the topology's host parameters and current state.
func (c *Client) Info(ctx context.Context) (Info, error) {
	var info Info
	err := c.jsonOp(ctx, "GET", c.topoURL(""), nil, &info)
	return info, err
}

type mutationRequest struct {
	Nodes []int `json:"nodes"`
}

// mutate posts a fault batch. Mutations are idempotent (the daemon
// folds node sets), so retrying a batch whose response was lost is
// safe: re-adding a faulty node is a no-op.
func (c *Client) mutate(ctx context.Context, method string, nodes []int) (State, error) {
	var st State
	err := c.jsonOp(ctx, method, c.topoURL("/faults"), mutationRequest{Nodes: nodes}, &st)
	if err == nil {
		c.noteGeneration(st.Generation)
	}
	return st, err
}

// AddFaults reports failed host nodes and returns the committed state
// covering them. A CodeNotTolerated error means the daemon recorded
// the faults but keeps serving the last good generation.
func (c *Client) AddFaults(ctx context.Context, nodes ...int) (State, error) {
	return c.mutate(ctx, "POST", nodes)
}

// ClearFaults reports repaired host nodes.
func (c *Client) ClearFaults(ctx context.Context, nodes ...int) (State, error) {
	return c.mutate(ctx, "DELETE", nodes)
}

type edgeMutationRequest struct {
	Edges [][2]int `json:"edges"`
}

// mutateEdges posts an edge-fault batch. Idempotent like mutate: the
// daemon folds edge sets, so re-reporting a faulty edge is a no-op.
func (c *Client) mutateEdges(ctx context.Context, method string, edges [][2]int) (State, error) {
	var st State
	err := c.jsonOp(ctx, method, c.topoURL("/edge-faults"), edgeMutationRequest{Edges: edges}, &st)
	if err == nil {
		c.noteGeneration(st.Generation)
	}
	return st, err
}

// AddEdgeFaults reports failed host links as {u, v} endpoint pairs
// (either order) and returns the committed state covering them. The
// daemon validates the whole batch — endpoint range, self-loops, host
// adjacency — with all-or-nothing semantics: one bad edge rejects the
// request with CodeInvalid and none of it is applied.
func (c *Client) AddEdgeFaults(ctx context.Context, edges ...[2]int) (State, error) {
	return c.mutateEdges(ctx, "POST", edges)
}

// ClearEdgeFaults reports repaired host links.
func (c *Client) ClearEdgeFaults(ctx context.Context, edges ...[2]int) (State, error) {
	return c.mutateEdges(ctx, "DELETE", edges)
}

// Reembed flushes pending asynchronous mutations and evaluates now.
func (c *Client) Reembed(ctx context.Context) (State, error) {
	var st State
	err := c.jsonOp(ctx, "POST", c.topoURL("/reembed"), nil, &st)
	if err == nil {
		c.noteGeneration(st.Generation)
	}
	return st, err
}

// Snapshot asks the daemon to persist its session state to disk.
func (c *Client) Snapshot(ctx context.Context) (State, error) {
	var st State
	err := c.jsonOp(ctx, "POST", c.topoURL("/snapshot"), nil, &st)
	return st, err
}

// fetchFull fetches and verifies a full binary snapshot (one attempt;
// decode failures are coded resync-class, the sync loop refetches).
func (c *Client) fetchFull(ctx context.Context) (*wire.Snapshot, error) {
	data, _, err := c.do(ctx, "GET", c.topoURL("/embedding"), nil, wire.ContentType)
	if err != nil {
		return nil, err
	}
	snap, err := wire.DecodeSnapshot(data)
	if err != nil {
		return nil, err // wraps wire.ErrCorrupt: resync class
	}
	if snap.Topology != c.topo {
		return nil, fterr.New(fterr.Corrupt, "client.fetch", "snapshot for topology %q, want %q", snap.Topology, c.topo)
	}
	return snap, nil
}

// cloneSnap hands out a stable copy (Sync mutates the internal one).
func cloneSnap(s *wire.Snapshot) *wire.Snapshot {
	cp := *s
	cp.Faults = append([]int(nil), s.Faults...)
	cp.Edges = append([][2]int(nil), s.Edges...)
	cp.Map = append([]int(nil), s.Map...)
	return &cp
}

// applyInPlace patches snap forward with d and re-verifies the result
// against the delta's head checksum. On any mismatch snap is left
// dirty and the caller must resync — exactly the recovery the coded
// error prescribes.
func applyInPlace(snap *wire.Snapshot, d *wire.Delta) error {
	if snap.Topology != d.Topology || snap.Side != d.Side || snap.Dims != d.Dims {
		return fterr.Wrapf(fterr.ResyncRequired, "client.apply", wire.ErrMismatch, "topology or geometry changed")
	}
	if snap.Generation != d.FromGeneration {
		return fterr.Wrapf(fterr.ResyncRequired, "client.apply", wire.ErrMismatch,
			"delta starts at generation %d, snapshot is at %d", d.FromGeneration, snap.Generation)
	}
	nc := snap.NumCols()
	for _, cu := range d.Cols {
		if cu.Col < 0 || cu.Col >= nc || len(cu.Vals) != snap.Side {
			return fterr.Wrapf(fterr.ResyncRequired, "client.apply", wire.ErrMismatch, "malformed column update %d", cu.Col)
		}
		for j, v := range cu.Vals {
			snap.Map[j*nc+cu.Col] = v
		}
	}
	// The checksum re-verification: a corrupted or misapplied delta can
	// never become this client's state.
	if got := wire.Checksum(snap.Map); got != d.Checksum {
		return fterr.Wrapf(fterr.Corrupt, "client.apply", wire.ErrMismatch,
			"patched map checksum %016x does not match delta %016x", got, d.Checksum)
	}
	snap.Generation = d.ToGeneration
	snap.Faults = append(snap.Faults[:0], d.Faults...)
	snap.Edges = append(snap.Edges[:0], d.Edges...)
	snap.Checksum = d.Checksum
	return nil
}

// Sync brings the client's embedding state to the daemon's head and
// returns a stable copy of it. The first call full-fetches; later
// calls request only the columns changed since the held generation and
// verify the patched map against the head checksum. Every resync-class
// failure (410 eviction, corrupt payload, failed verification) drops
// the incremental state and full-fetches; retryable failures back off
// and try again. The returned snapshot never regresses the generation
// of an earlier Sync (counted in Stats.StaleReads if the daemon were
// ever to serve one).
func (c *Client) Sync(ctx context.Context) (*wire.Snapshot, error) {
	c.snapMu.Lock()
	defer c.snapMu.Unlock()
	var out *wire.Snapshot
	err := c.retry(ctx, func() error {
		var err error
		out, err = c.syncOnce(ctx)
		return err
	})
	if err != nil {
		return nil, err
	}
	return cloneSnap(out), nil
}

// syncOnce is one sync attempt under snapMu: delta when possible,
// full-fetch otherwise, resync-class errors degrade to full-fetch
// immediately (they are not transient; retrying the delta would loop).
func (c *Client) syncOnce(ctx context.Context) (*wire.Snapshot, error) {
	if c.snap != nil {
		err := c.deltaOnce(ctx)
		switch {
		case err == nil:
			return c.snap, nil
		case fterr.ClassOf(err) == fterr.ClassResync:
			c.resyncs.Add(1)
			c.snap = nil // fall through to the full fetch below
		default:
			return nil, err
		}
	}
	snap, err := c.fetchFull(ctx)
	if err != nil {
		if fterr.ClassOf(err) == fterr.ClassResync {
			// A corrupt full payload: refetching is the recovery, which is
			// exactly what the retry loop does with a retryable code.
			c.resyncs.Add(1)
			return nil, fterr.Wrap(fterr.Unavailable, "client.sync", err)
		}
		return nil, err
	}
	c.fullFetches.Add(1)
	if c.noteGeneration(snap.Generation) {
		return nil, fterr.New(fterr.Unavailable, "client.sync",
			"stale read: fetched generation %d below observed %d", snap.Generation, c.maxGen.Load())
	}
	c.snap = snap
	return c.snap, nil
}

// deltaOnce fetches and applies the (held, head] delta in place.
func (c *Client) deltaOnce(ctx context.Context) error {
	url := fmt.Sprintf("%s?since=%d", c.topoURL("/embedding"), c.snap.Generation)
	data, _, err := c.do(ctx, "GET", url, nil, wire.ContentType)
	if err != nil {
		return err // 410 arrives here as coded resync_required
	}
	d, err := wire.DecodeDelta(data)
	if err != nil {
		return err // corrupt: resync class
	}
	if len(d.Cols) == 0 && d.ToGeneration == c.snap.Generation {
		return nil // already at head
	}
	if err := applyInPlace(c.snap, d); err != nil {
		return err
	}
	c.deltaApplies.Add(1)
	if c.noteGeneration(c.snap.Generation) {
		return fterr.New(fterr.ResyncRequired, "client.sync",
			"stale delta: patched to generation %d below observed %d", c.snap.Generation, c.maxGen.Load())
	}
	return nil
}
