package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"ftnet/internal/fterr"
	"ftnet/internal/server"
	"ftnet/internal/wire"
)

// startDaemon hosts one small topology on an httptest server.
func startDaemon(t *testing.T, mutate func(*server.Config)) (*server.Server, *httptest.Server) {
	t.Helper()
	cfg := server.Config{
		Topologies: []server.TopologyConfig{{ID: "main", D: 2, MinSide: 64, MaxEps: 0.5}},
	}
	if mutate != nil {
		mutate(&cfg)
	}
	srv, err := server.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { ts.Close(); srv.Close() })
	return srv, ts
}

func newClient(t *testing.T, baseURL string, mutate func(*Options)) *Client {
	t.Helper()
	opts := Options{
		BaseURL:     baseURL,
		Topology:    "main",
		MaxRetries:  6,
		BackoffBase: 2 * time.Millisecond,
		BackoffMax:  20 * time.Millisecond,
		Seed:        7,
	}
	if mutate != nil {
		mutate(&opts)
	}
	c, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestSDKRoundtrip(t *testing.T) {
	_, ts := startDaemon(t, nil)
	c := newClient(t, ts.URL, nil)
	ctx := context.Background()

	info, err := c.Info(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if info.ID != "main" || info.Dims != 2 || info.Side < 64 {
		t.Fatalf("unexpected info: %+v", info)
	}

	// Prime the incremental engine: the first commit after construction
	// is always a full rewrite (a resync boundary), later ones are
	// column deltas.
	if _, err := c.AddFaults(ctx, 77); err != nil {
		t.Fatal(err)
	}
	snap0, err := c.Sync(ctx)
	if err != nil {
		t.Fatal(err)
	}
	st, err := c.AddFaults(ctx, 10, 5000, 20000)
	if err != nil {
		t.Fatal(err)
	}
	if st.Generation <= snap0.Generation || st.FaultCount != 4 {
		t.Fatalf("add faults state: %+v (baseline generation %d)", st, snap0.Generation)
	}

	snap, err := c.Sync(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Generation < st.Generation {
		t.Fatalf("synced generation %d below committed %d", snap.Generation, st.Generation)
	}
	if got := fmt.Sprintf("%016x", snap.Checksum); got != st.Checksum {
		t.Fatalf("synced checksum %s, committed %s", got, st.Checksum)
	}
	stats := c.Stats()
	if stats.DeltaApplies != 1 || stats.FullFetches != 1 {
		t.Fatalf("expected 1 full fetch + 1 delta apply, got %+v", stats)
	}
	if stats.StaleReads != 0 || stats.Resyncs != 0 {
		t.Fatalf("clean run should have no stale reads or resyncs: %+v", stats)
	}

	if _, err := c.ClearFaults(ctx, 10); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Reembed(ctx); err != nil {
		t.Fatal(err)
	}
}

func TestSDKTypedErrors(t *testing.T) {
	_, ts := startDaemon(t, nil)
	c := newClient(t, ts.URL, nil)
	ctx := context.Background()

	// A terminal error returns immediately, coded, with no retries.
	_, err := c.AddFaults(ctx, -1)
	if !fterr.Is(err, fterr.Invalid) {
		t.Fatalf("out-of-range fault: want %s, got %v", fterr.Invalid, err)
	}
	if fterr.Retryable(err) {
		t.Fatalf("invalid_argument must not be retryable: %v", err)
	}
	if n := c.Stats().Retries; n != 0 {
		t.Fatalf("terminal error burned %d retries", n)
	}

	missing := newClient(t, ts.URL, func(o *Options) { o.Topology = "nope" })
	if _, err := missing.Info(ctx); !fterr.Is(err, fterr.NotFound) {
		t.Fatalf("missing topology: want %s, got %v", fterr.NotFound, err)
	}
}

func TestSDKRetriesUnavailable(t *testing.T) {
	_, ts := startDaemon(t, nil)
	var failures atomic.Int64
	failures.Store(3)
	flaky := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if failures.Add(-1) >= 0 {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusServiceUnavailable)
			json.NewEncoder(w).Encode(fterr.Wire{Code: fterr.Unavailable, Message: "warming up", Retryable: true})
			return
		}
		resp, err := http.Get(ts.URL + r.URL.String())
		if err != nil {
			w.WriteHeader(http.StatusBadGateway)
			return
		}
		defer resp.Body.Close()
		w.Header().Set("Content-Type", resp.Header.Get("Content-Type"))
		w.WriteHeader(resp.StatusCode)
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		w.Write(buf.Bytes())
	}))
	defer flaky.Close()

	c := newClient(t, flaky.URL, nil)
	info, err := c.Info(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if info.ID != "main" {
		t.Fatalf("unexpected info: %+v", info)
	}
	if got := c.Stats().Retries; got != 3 {
		t.Fatalf("expected exactly 3 retries, got %d", got)
	}
}

func TestSDKRetriesAreBounded(t *testing.T) {
	down := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		json.NewEncoder(w).Encode(fterr.Wire{Code: fterr.Unavailable, Message: "down", Retryable: true})
	}))
	defer down.Close()
	c := newClient(t, down.URL, func(o *Options) { o.MaxRetries = 2 })
	_, err := c.Info(context.Background())
	if !fterr.Is(err, fterr.Unavailable) {
		t.Fatalf("want %s, got %v", fterr.Unavailable, err)
	}
	if got := c.Stats().Requests; got != 3 {
		t.Fatalf("MaxRetries=2 should issue exactly 3 attempts, issued %d", got)
	}
}

func TestSDKResyncOnEviction(t *testing.T) {
	_, ts := startDaemon(t, func(cfg *server.Config) { cfg.DeltaRing = 1 })
	c := newClient(t, ts.URL, nil)
	ctx := context.Background()

	if _, err := c.Sync(ctx); err != nil {
		t.Fatal(err)
	}
	// Three sequential committed batches outrun a ring of one: the next
	// ?since= lands on an evicted generation and must 410.
	for i, node := range []int{100, 7000, 30000} {
		if _, err := c.AddFaults(ctx, node); err != nil {
			t.Fatalf("batch %d: %v", i, err)
		}
	}
	st, err := c.Reembed(ctx)
	if err != nil {
		t.Fatal(err)
	}
	snap, err := c.Sync(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Generation < st.Generation {
		t.Fatalf("synced generation %d below committed %d", snap.Generation, st.Generation)
	}
	stats := c.Stats()
	if stats.Resyncs == 0 {
		t.Fatalf("eviction should have forced a resync: %+v", stats)
	}
	if stats.FullFetches != 2 {
		t.Fatalf("expected the initial and the resync full fetch, got %+v", stats)
	}
	if got := fmt.Sprintf("%016x", snap.Checksum); got != st.Checksum {
		t.Fatalf("resynced checksum %s, committed %s", got, st.Checksum)
	}
}

// corruptingProxy forwards to inner and flips one byte of the response
// body while armed. It corrupts any content type — the SDK must catch
// binary corruption via checksums and JSON corruption via decode.
type corruptingProxy struct {
	inner http.Handler
	armed atomic.Bool
}

func (p *corruptingProxy) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if !p.armed.Load() {
		p.inner.ServeHTTP(w, r)
		return
	}
	p.armed.Store(false)
	rec := httptest.NewRecorder()
	p.inner.ServeHTTP(rec, r)
	body := rec.Body.Bytes()
	if len(body) > 0 {
		body[len(body)/2] ^= 0x01
	}
	for k, v := range rec.Header() {
		w.Header()[k] = v
	}
	w.WriteHeader(rec.Code)
	w.Write(body)
}

func TestSDKRecoversFromCorruptPayload(t *testing.T) {
	srv, err := server.New(server.Config{
		Topologies: []server.TopologyConfig{{ID: "main", D: 2, MinSide: 64, MaxEps: 0.5}},
	})
	if err != nil {
		t.Fatal(err)
	}
	proxy := &corruptingProxy{inner: srv.Handler()}
	ts := httptest.NewServer(proxy)
	t.Cleanup(func() { ts.Close(); srv.Close() })
	c := newClient(t, ts.URL, nil)
	ctx := context.Background()

	// Prime past the engine's initial full-rewrite commit so the armed
	// corruption lands on a binary delta payload.
	if _, err := c.AddFaults(ctx, 77); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Sync(ctx); err != nil {
		t.Fatal(err)
	}
	st, err := c.AddFaults(ctx, 123, 9876)
	if err != nil {
		t.Fatal(err)
	}
	// The next delta payload arrives corrupted; the SDK must detect it
	// (decode or checksum), resync, and still converge to the committed
	// state.
	proxy.armed.Store(true)
	snap, err := c.Sync(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if got := fmt.Sprintf("%016x", snap.Checksum); got != st.Checksum {
		t.Fatalf("checksum %s after corruption recovery, committed %s", got, st.Checksum)
	}
	stats := c.Stats()
	if stats.Resyncs == 0 && stats.Retries == 0 {
		t.Fatalf("corruption went unnoticed: %+v", stats)
	}
	if stats.StaleReads != 0 {
		t.Fatalf("corruption recovery produced a stale read: %+v", stats)
	}
}

func TestSDKWatchReconnectContinuity(t *testing.T) {
	_, ts := startDaemon(t, nil)
	c := newClient(t, ts.URL, nil)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	events := make(chan Event, 64)
	watchDone := make(chan error, 1)
	go func() {
		watchDone <- c.Watch(ctx, func(ev Event) error {
			events <- ev
			return nil
		})
	}()
	next := func(what string) Event {
		t.Helper()
		select {
		case ev := <-events:
			return ev
		case <-time.After(10 * time.Second):
			t.Fatalf("timed out waiting for %s", what)
			return Event{}
		}
	}

	base := next("baseline event")
	if base.Resync {
		t.Fatalf("baseline should be a commit, got resync: %+v", base)
	}
	st, err := c.AddFaults(ctx, 42)
	if err != nil {
		t.Fatal(err)
	}
	got := next("first commit")
	for got.Generation < st.Generation {
		got = next("first commit")
	}
	if got.Generation != st.Generation || got.Checksum != st.Checksum {
		t.Fatalf("watch saw %+v, committed %+v", got, st)
	}

	// Sever every open connection: the stream dies mid-flight and the
	// client must reconnect with ?since=<last> — the commit made after
	// the cut arrives exactly once, with no generation skipped.
	ts.CloseClientConnections()
	st2, err := c.AddFaults(ctx, 4242)
	if err != nil {
		t.Fatal(err)
	}
	got = next("post-reconnect commit")
	for got.Generation < st2.Generation {
		if got.Generation <= st.Generation && !got.Resync {
			t.Fatalf("duplicated or regressed commit after reconnect: %+v", got)
		}
		got = next("post-reconnect commit")
	}
	if got.Generation != st2.Generation || got.Checksum != st2.Checksum {
		t.Fatalf("watch saw %+v after reconnect, committed %+v", got, st2)
	}
	if c.Stats().WatchReconnects == 0 {
		t.Fatal("connection cut did not register as a reconnect")
	}

	cancel()
	if err := <-watchDone; !fterr.Is(err, fterr.Unavailable) {
		t.Fatalf("cancelled watch should return a coded wrap of ctx.Err(), got %v", err)
	}
}

func TestSDKWatchCallbackErrorStops(t *testing.T) {
	_, ts := startDaemon(t, nil)
	c := newClient(t, ts.URL, nil)
	stop := fterr.New(fterr.Conflict, "test", "seen enough")
	err := c.Watch(context.Background(), func(ev Event) error { return stop })
	if err != stop {
		t.Fatalf("watch should surface the callback error verbatim, got %v", err)
	}
}

func TestParseErrorBody(t *testing.T) {
	// A typed body yields its code regardless of status.
	body, _ := json.Marshal(fterr.Wire{Code: fterr.ResyncRequired, Message: "gone", Retryable: true, ResyncFrom: 9})
	err := ParseErrorBody(http.StatusGone, body)
	if !fterr.Is(err, fterr.ResyncRequired) {
		t.Fatalf("typed body: want %s, got %v", fterr.ResyncRequired, err)
	}
	// An untyped body degrades to the most conservative reading of the
	// status code.
	err = ParseErrorBody(http.StatusServiceUnavailable, []byte("<html>upstream error</html>"))
	if !fterr.Is(err, fterr.Unavailable) {
		t.Fatalf("untyped 503: want %s, got %v", fterr.Unavailable, err)
	}
	err = ParseErrorBody(http.StatusTeapot, nil)
	if fterr.Retryable(err) {
		t.Fatalf("unknown 4xx must not be retryable: %v", err)
	}
	// A future code this build does not know is never blind-retried,
	// even when the body's retryable flag claims it is safe.
	err = ParseErrorBody(http.StatusBadRequest, []byte(`{"code":"quota_exceeded_v9","retryable":true}`))
	if fterr.Retryable(err) {
		t.Fatalf("unknown code must degrade to non-retryable: %v", err)
	}
	if fterr.CodeOf(err) != "quota_exceeded_v9" {
		t.Fatalf("unknown code should be preserved for logging, got %q", fterr.CodeOf(err))
	}
}

func TestApplyInPlaceRejectsMismatch(t *testing.T) {
	snap := &wire.Snapshot{Topology: "main", Generation: 3, Side: 2, Dims: 2, Map: []int{0, 1, 2, 3}}
	snap.Checksum = wire.Checksum(snap.Map)
	d := &wire.Delta{Topology: "main", FromGeneration: 4, ToGeneration: 5, Side: 2, Dims: 2}
	if err := applyInPlace(snap, d); !fterr.Is(err, fterr.ResyncRequired) {
		t.Fatalf("generation mismatch: want %s, got %v", fterr.ResyncRequired, err)
	}
	d = &wire.Delta{
		Topology: "main", FromGeneration: 3, ToGeneration: 4, Side: 2, Dims: 2,
		Cols:     []wire.ColumnUpdate{{Col: 0, Vals: []int{9, 9}}},
		Checksum: 0xdead, // wrong on purpose
	}
	if err := applyInPlace(snap, d); !fterr.Is(err, fterr.Corrupt) {
		t.Fatalf("checksum mismatch: want %s, got %v", fterr.Corrupt, err)
	}
}
