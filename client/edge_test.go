package client

import (
	"context"
	"testing"

	"ftnet"
	"ftnet/internal/fterr"
)

// testEdges finds count host edges by probing a locally built host
// identical to the daemon's (the construction is deterministic).
func testEdges(t *testing.T, count int) [][2]int {
	t.Helper()
	host, err := ftnet.NewRandomFaultTorus(2, 64, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	ses := host.NewSession()
	n := host.HostNodes()
	out := make([][2]int, 0, count)
	for i := 0; len(out) < count; i++ {
		// Anchors far apart so the charged endpoints never cluster into
		// an intolerable fault pattern.
		u := ((i + 1) * 9001) % (n - 1)
		for v := u + 1; v < n; v++ {
			if ses.Adjacent(u, v) {
				out = append(out, [2]int{u, v})
				break
			}
		}
	}
	return out
}

// TestSDKEdgeFaults drives the edge-fault API end-to-end through the
// SDK: report, sync (full then delta), repair, and typed rejection.
func TestSDKEdgeFaults(t *testing.T) {
	_, ts := startDaemon(t, nil)
	c := newClient(t, ts.URL, nil)
	ctx := context.Background()
	edges := testEdges(t, 3)

	// Prime the incremental engine past the initial full rewrite.
	if _, err := c.AddFaults(ctx, 77); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Sync(ctx); err != nil {
		t.Fatal(err)
	}

	st, err := c.AddEdgeFaults(ctx, edges...)
	if err != nil {
		t.Fatal(err)
	}
	if st.EdgeFaultCount != 3 || st.FaultCount != 1 {
		t.Fatalf("state after edge add: %+v", st)
	}
	snap, err := c.Sync(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Edges) != 3 {
		t.Fatalf("synced snapshot edges = %v", snap.Edges)
	}
	for _, e := range snap.Edges {
		if e[0] >= e[1] {
			t.Fatalf("synced edge %v not canonical", e)
		}
	}
	if stats := c.Stats(); stats.DeltaApplies != 1 || stats.FullFetches != 1 {
		t.Fatalf("edge sync should ride the delta path: %+v", stats)
	}

	// Typed all-or-nothing rejection: nothing applied, CodeInvalid.
	if _, err := c.AddEdgeFaults(ctx, edges[0], [2]int{9, 9}); !fterr.Is(err, fterr.Invalid) {
		t.Fatalf("self-loop batch error = %v, want invalid", err)
	}
	if st, err := c.Reembed(ctx); err != nil || st.EdgeFaultCount != 3 {
		t.Fatalf("rejected batch mutated state: %+v %v", st, err)
	}

	// Repair heals back to the node-fault-only state.
	st, err = c.ClearEdgeFaults(ctx, edges...)
	if err != nil {
		t.Fatal(err)
	}
	if st.EdgeFaultCount != 0 || st.FaultCount != 1 {
		t.Fatalf("state after edge clear: %+v", st)
	}
	snap, err = c.Sync(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Edges) != 0 {
		t.Fatalf("cleared edges still synced: %v", snap.Edges)
	}
}
