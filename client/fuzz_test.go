package client

import (
	"testing"

	"ftnet/internal/fterr"
)

// FuzzDecodeError pins the SDK's error-decode contract: arbitrary
// response bytes under any status always produce a coded, non-nil
// error — never a panic — and a code outside this build's taxonomy
// degrades to a non-retryable class regardless of what the body's
// retryable flag claims (a client must never blind-retry on a future
// server's say-so).
func FuzzDecodeError(f *testing.F) {
	f.Add(503, []byte(`{"code":"unavailable","message":"busy","retryable":true}`))
	f.Add(410, []byte(`{"code":"resync_required","message":"gone","retryable":true,"resync_from":12}`))
	f.Add(400, []byte(`{"code":"quota_exceeded_v9","retryable":true}`))
	f.Add(500, []byte(`<html>gateway error</html>`))
	f.Add(404, []byte{})
	f.Add(418, []byte(`{"code":""}`))
	f.Add(200, []byte(`{"code":4}`))
	f.Add(-7, []byte("\xff\xfe"))
	known := make(map[fterr.Code]bool)
	for _, c := range fterr.AllCodes() {
		known[c] = true
	}
	f.Fuzz(func(t *testing.T, status int, body []byte) {
		err := ParseErrorBody(status, body)
		if err == nil {
			t.Fatalf("status %d body %q: decoded to nil error", status, body)
		}
		code := fterr.CodeOf(err)
		if code == "" {
			t.Fatalf("status %d body %q: error %v has no code", status, body, err)
		}
		if !known[code] && fterr.Retryable(err) {
			t.Fatalf("status %d body %q: unknown code %q classified retryable", status, body, code)
		}
		if err.Error() == "" {
			t.Fatalf("status %d body %q: empty error message", status, body)
		}
	})
}
