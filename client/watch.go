package client

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"

	"ftnet/internal/fterr"
)

// Event is one notification from the daemon's commit stream.
type Event struct {
	// Resync is true when the stream could not bridge a generation gap
	// (subscriber outpaced the delta ring, or the daemon restarted): the
	// event carries the head state, and any incrementally maintained
	// copy must be refetched (Sync does this automatically).
	Resync      bool
	Generation  int64
	Checksum    string
	Faults      []int
	EdgeFaults  [][2]int
	ChangedCols int
}

// watchFrame mirrors the server's SSE payload shape.
type watchFrame struct {
	Topology    string   `json:"topology"`
	Generation  int64    `json:"generation"`
	Checksum    string   `json:"checksum"`
	Faults      []int    `json:"faults"`
	EdgeFaults  [][2]int `json:"edge_faults"`
	ChangedCols int      `json:"changed_cols"`
}

// callbackError marks an error returned by the caller's handler, which
// must stop the watch rather than trigger a reconnect.
type callbackError struct{ err error }

func (e *callbackError) Error() string { return e.err.Error() }
func (e *callbackError) Unwrap() error { return e.err }

// Watch follows the daemon's commit stream, delivering every committed
// generation to fn in order, exactly once, across connection failures:
// each reconnect passes the last delivered generation (?since=g) so the
// daemon replays exactly the commits this client missed. A gap the
// daemon cannot bridge arrives as a single Resync event — never as
// silently skipped commits. fn returning an error stops the watch and
// returns that error; otherwise Watch runs until ctx is done (returning
// a coded wrap of ctx.Err()) or MaxRetries consecutive reconnection
// attempts fail without a single delivered event.
func (c *Client) Watch(ctx context.Context, fn func(Event) error) error {
	last := int64(-1)
	fails := 0
	for {
		if ctx.Err() != nil {
			return fterr.Wrap(fterr.Unavailable, "client.watch", ctx.Err())
		}
		delivered, err := c.watchOnce(ctx, &last, fn)
		var cb *callbackError
		if errors.As(err, &cb) {
			return cb.err
		}
		if ctx.Err() != nil {
			return fterr.Wrap(fterr.Unavailable, "client.watch", ctx.Err())
		}
		if err != nil && fterr.ClassOf(err) == fterr.ClassTerminal {
			return err // e.g. topology not found: reconnecting cannot help
		}
		if delivered > 0 {
			fails = 0 // progress was made; the failure budget resets
		} else {
			fails++
			if fails > c.retries {
				return fterr.Wrapf(fterr.Unavailable, "client.watch", err,
					"giving up after %d reconnects without progress", fails-1)
			}
		}
		c.reconnects.Add(1)
		if serr := c.sleepBackoff(ctx, fails); serr != nil {
			return serr
		}
	}
}

// watchOnce runs one stream connection: subscribe (with ?since= after
// the first delivery), then deliver events until the stream breaks.
// Returns how many events were delivered on this connection.
func (c *Client) watchOnce(ctx context.Context, last *int64, fn func(Event) error) (int, error) {
	url := c.topoURL("/watch")
	if *last >= 0 {
		url = fmt.Sprintf("%s?since=%d", url, *last)
	}
	c.requests.Add(1)
	req, err := http.NewRequestWithContext(ctx, "GET", url, nil)
	if err != nil {
		return 0, fterr.Wrap(fterr.Invalid, "client.watch", err)
	}
	req.Header.Set("Accept", "text/event-stream")
	resp, err := c.httpc.Do(req)
	if err != nil {
		return 0, fterr.Wrap(fterr.Unavailable, "client.watch", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body := make([]byte, 0, 512)
		buf := make([]byte, 512)
		if n, _ := resp.Body.Read(buf); n > 0 {
			body = buf[:n]
		}
		return 0, ParseErrorBody(resp.StatusCode, body)
	}

	delivered := 0
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var eventName string
	for sc.Scan() {
		line := sc.Text()
		c.bytesRead.Add(int64(len(line)) + 1)
		switch {
		case strings.HasPrefix(line, "event: "):
			eventName = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			var f watchFrame
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &f); err != nil {
				// An undecodable frame poisons the stream position; the
				// reconnect replays from the last delivered generation.
				return delivered, fterr.Wrapf(fterr.Unavailable, "client.watch", err, "undecodable %s frame", eventName)
			}
			ev := Event{
				Resync:      eventName == "resync",
				Generation:  f.Generation,
				Checksum:    f.Checksum,
				Faults:      f.Faults,
				EdgeFaults:  f.EdgeFaults,
				ChangedCols: f.ChangedCols,
			}
			switch {
			case ev.Resync:
				// An explicit gap: accept the head unconditionally.
			case *last < 0:
				// Baseline commit on a fresh subscribe.
			case ev.Generation <= *last:
				continue // duplicate; already delivered
			case ev.Generation != *last+1:
				// A skipped commit would violate the continuity contract;
				// reconnecting with ?since= makes the daemon replay it.
				return delivered, fterr.New(fterr.Unavailable, "client.watch",
					"commit gap: got generation %d after %d", ev.Generation, *last)
			}
			c.noteGeneration(ev.Generation)
			*last = ev.Generation
			delivered++
			if err := fn(ev); err != nil {
				return delivered, &callbackError{err: err}
			}
			eventName = ""
		}
	}
	if err := sc.Err(); err != nil {
		return delivered, fterr.Wrap(fterr.Unavailable, "client.watch", err)
	}
	// Clean EOF: the daemon shut the stream (e.g. restart); reconnect.
	return delivered, fterr.New(fterr.Unavailable, "client.watch", "stream closed by daemon")
}
