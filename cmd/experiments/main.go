// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments [-quick] [-seed N] [-list] [-run E1,E7,...|all]
//
// Each experiment prints the claim it reproduces followed by the measured
// table; EXPERIMENTS.md records the expected shapes.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"ftnet/internal/experiments"
)

func main() {
	var (
		quick = flag.Bool("quick", false, "smaller sweeps and trial counts")
		seed  = flag.Uint64("seed", 20250611, "master seed for all Monte-Carlo trials")
		run   = flag.String("run", "all", "comma-separated experiment ids, or 'all'")
		list  = flag.Bool("list", false, "list experiments and exit")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-4s %s\n     %s\n", e.ID, e.Title, e.PaperClaim)
		}
		return
	}

	cfg := experiments.Config{Out: os.Stdout, Quick: *quick, Seed: *seed}
	ids := strings.Split(*run, ",")
	for i := range ids {
		ids[i] = strings.TrimSpace(ids[i])
	}
	if err := experiments.Run(cfg, ids...); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}
