// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments [-quick] [-seed N] [-workers N] [-ci W] [-independent] [-list] [-run E1,E7,...|all]
//
// Each experiment prints the claim it reproduces followed by the measured
// table; EXPERIMENTS.md records the expected shapes. Monte-Carlo sweeps
// run on the deterministic parallel engine (internal/parallel): for a
// fixed -seed the tables are bit-identical for every -workers value.
// -ci sets an early-stopping target (95% Wilson interval width); with the
// coupled curve engine (internal/sweep) each rung of a rate ladder stops
// on its own. -independent disables the nested coupling for ablation:
// every rung and threshold probe then draws fresh samples, as the suite
// did before the sweep engine.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"ftnet/internal/experiments"
)

func main() {
	var (
		quick   = flag.Bool("quick", false, "smaller sweeps and trial counts")
		seed    = flag.Uint64("seed", 20250611, "master seed for all Monte-Carlo trials")
		run     = flag.String("run", "all", "comma-separated experiment ids, or 'all'")
		list    = flag.Bool("list", false, "list experiments and exit")
		workers = flag.Int("workers", 0, "Monte-Carlo worker pool size (0 = GOMAXPROCS); results do not depend on it")
		ci      = flag.Float64("ci", 0, "early-stop once the 95% CI is narrower than this width (0 = run all trials)")
		dense   = flag.Bool("dense", false, "force the legacy whole-host Theorem 2 pipeline (disable the locality fast path)")
		indep   = flag.Bool("independent", false, "disable rate-ladder coupling: every sweep rung and threshold probe draws fresh independent samples (ablation)")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-4s %s\n     %s\n", e.ID, e.Title, e.PaperClaim)
		}
		return
	}

	cfg := experiments.Config{Out: os.Stdout, Quick: *quick, Seed: *seed, Parallel: *workers,
		TargetCI: *ci, Dense: *dense, Independent: *indep}
	ids := strings.Split(*run, ",")
	for i := range ids {
		ids[i] = strings.TrimSpace(ids[i])
	}
	if err := experiments.Run(cfg, ids...); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}
