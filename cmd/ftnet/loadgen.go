package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"os"
	"runtime/pprof"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ftnet"
	"ftnet/client"
	"ftnet/internal/fterr"
	"ftnet/internal/rng"
	"ftnet/internal/server"
	"ftnet/internal/validate"
	"ftnet/internal/wire"
)

// runLoadgen benchmarks the ftnetd serve paths under synthetic
// many-client load: it starts an in-process daemon on a loopback
// listener, drives a churn process against it over the real HTTP wire,
// and hammers the embedding endpoint with mixed reader fleets —
// JSON-full pollers, binary-full pollers, binary-delta (?since=)
// pollers, and /watch subscribers. It reports per-mode latency
// quantiles and bytes-per-observed-update, the numbers behind
// BENCH_pr6.json.
func runLoadgen(args []string) error {
	fs := flag.NewFlagSet("loadgen", flag.ExitOnError)
	side := fs.Int("side", 64, "guest torus side")
	dims := fs.Int("d", 2, "guest dimension")
	eps := fs.Float64("eps", 0.5, "maximum node redundancy")
	duration := fs.Duration("duration", 10*time.Second, "measurement window (excludes warmup)")
	warmup := fs.Duration("warmup", 5*time.Second, "settle time before samples count: connection dials and bootstrap fetches measure startup, not the serve paths")
	jsonClients := fs.Int("json-clients", 8, "JSON full-embedding pollers")
	binFullClients := fs.Int("binfull-clients", 2, "binary full-embedding pollers")
	deltaClients := fs.Int("delta-clients", 8, "binary delta (?since=) pollers")
	watchClients := fs.Int("watch-clients", 2, "/watch stream subscribers")
	pollInterval := fs.Duration("poll-interval", 50*time.Millisecond, "poller sleep between requests")
	churnRate := fs.Float64("churn-rate", 50, "fault mutations per second driven against the topology")
	churnNodes := fs.Int("churn-nodes", 4, "node indices per mutation batch")
	edgeChurnRate := fs.Float64("edge-churn-rate", 10, "edge-fault mutations per second driven against the topology (0 = node churn only)")
	edgeChurnEdges := fs.Int("edge-churn-edges", 2, "host edges per edge mutation batch")
	deltaRing := fs.Int("delta-ring", server.DefaultDeltaRing, "delta ring length for the hosted topology")
	seed := fs.Uint64("seed", 1, "churn placement seed")
	out := fs.String("out", "", "write the JSON report to this file (default stdout)")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile of the whole harness (server + fleet) to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if err := validate.Positive("loadgen: -churn-rate", *churnRate); err != nil {
		return err
	}
	if err := validate.Positive("loadgen: -duration (seconds)", duration.Seconds()); err != nil {
		return err
	}
	if err := validate.Positive("loadgen: -poll-interval (seconds)", pollInterval.Seconds()); err != nil {
		return err
	}
	if *warmup < 0 {
		return fterr.New(fterr.Invalid, "loadgen", "-warmup must be >= 0, got %v", *warmup)
	}
	for _, c := range []struct {
		name string
		v    int
	}{
		{"-json-clients", *jsonClients},
		{"-binfull-clients", *binFullClients},
		{"-delta-clients", *deltaClients},
		{"-watch-clients", *watchClients},
	} {
		if err := validate.Min("loadgen: "+c.name, c.v, 0); err != nil {
			return err
		}
	}
	if err := validate.Min("loadgen: -churn-nodes", *churnNodes, 1); err != nil {
		return err
	}
	if err := validate.Rate("loadgen: -edge-churn-rate", *edgeChurnRate); err != nil {
		return err
	}
	if *edgeChurnRate > 0 {
		if err := validate.Min("loadgen: -edge-churn-edges", *edgeChurnEdges, 1); err != nil {
			return err
		}
	}
	if err := validate.Min("loadgen: -delta-ring", *deltaRing, 1); err != nil {
		return err
	}

	cfg := server.Config{
		Topologies: []server.TopologyConfig{{ID: "load", D: *dims, MinSide: *side, MaxEps: *eps}},
		DeltaRing:  *deltaRing,
	}
	if err := cfg.Validate(); err != nil {
		return err
	}
	srv, err := server.New(cfg)
	if err != nil {
		return err
	}
	defer srv.Close()

	// The warmup clock starts as soon as the daemon is up: everything
	// after this point (listener dials, bootstrap fetches) is the startup
	// transient that warmup exists to absorb.
	measureFrom := time.Now().Add(*warmup)
	jsonStats := newModeStats(measureFrom)
	binFullStats := newModeStats(measureFrom)
	deltaStats := newModeStats(measureFrom)
	watchStats := newModeStats(measureFrom)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: &serveTimer{
		inner: srv.Handler(),
		json:  jsonStats, binFull: binFullStats, delta: deltaStats,
	}}
	go httpSrv.Serve(ln)
	defer httpSrv.Close()
	rootURL := "http://" + ln.Addr().String()
	base := rootURL + "/v1/topologies/load"

	totalClients := *jsonClients + *binFullClients + *deltaClients + *watchClients
	httpClient := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        totalClients + 8,
		MaxIdleConnsPerHost: totalClients + 8,
	}}

	info := struct {
		HostNodes int `json:"host_nodes"`
	}{}
	if err := getJSON(httpClient, base, &info); err != nil {
		return fmt.Errorf("loadgen: topology info: %w", err)
	}
	startGen, err := headGeneration(httpClient, base)
	if err != nil {
		return err
	}

	ctx, cancel := context.WithTimeout(context.Background(), *warmup+*duration)
	defer cancel()
	var wg sync.WaitGroup

	// The SDK-backed fleet members (churn, delta pollers, watchers) share
	// the harness transport but carry their own retry state; a distinct
	// jitter seed per member keeps their backoff sequences decorrelated.
	newSDK := func(stream uint64) (*client.Client, error) {
		return client.New(client.Options{
			BaseURL:  rootURL,
			Topology: "load", HTTPClient: httpClient,
			MaxRetries:  3,
			BackoffBase: 5 * time.Millisecond,
			BackoffMax:  100 * time.Millisecond,
			Seed:        *seed ^ (stream+1)*0x9e3779b97f4a7c15,
		})
	}
	churnSDK, err := newSDK(0)
	if err != nil {
		return err
	}
	churn := &churnDriver{
		sdk:       churnSDK,
		hostNodes: info.HostNodes, batch: *churnNodes,
		interval: time.Duration(float64(time.Second) / *churnRate),
		rng:      rng.NewPCG(*seed, 7),
	}
	wg.Add(1)
	go func() { defer wg.Done(); churn.run(ctx) }()

	edgeChurn := &edgeChurnDriver{}
	if *edgeChurnRate > 0 {
		// Edge batches must name real host edges; the daemon's host
		// construction is deterministic, so an identical local host
		// provides the adjacency oracle.
		pool, err := edgePool(*dims, *side, *eps, 256, *seed)
		if err != nil {
			return err
		}
		edgeSDK, err := newSDK(1 << 32)
		if err != nil {
			return err
		}
		edgeChurn = &edgeChurnDriver{
			sdk:      edgeSDK,
			pool:     pool,
			batch:    *edgeChurnEdges,
			interval: time.Duration(float64(time.Second) / *edgeChurnRate),
			rng:      rng.NewPCG(*seed, 11),
		}
		wg.Add(1)
		go func() { defer wg.Done(); edgeChurn.run(ctx) }()
	}

	// Pollers start phase-staggered across the interval: a real fleet is
	// unsynchronized, and a lockstep herd would measure queueing behind
	// its own bursts instead of the serve paths.
	stagger := func(i, n int) time.Duration {
		return *pollInterval * time.Duration(i) / time.Duration(n)
	}
	for i := 0; i < *jsonClients; i++ {
		wg.Add(1)
		go func(d time.Duration) {
			defer wg.Done()
			if sleepCtx(ctx, d) {
				pollFull(ctx, httpClient, base, "", *pollInterval, jsonStats)
			}
		}(stagger(i, *jsonClients))
	}
	for i := 0; i < *binFullClients; i++ {
		wg.Add(1)
		go func(d time.Duration) {
			defer wg.Done()
			if sleepCtx(ctx, d) {
				pollFull(ctx, httpClient, base, wire.ContentType, *pollInterval, binFullStats)
			}
		}(stagger(i, *binFullClients))
	}
	for i := 0; i < *deltaClients; i++ {
		sdk, err := newSDK(uint64(i) + 1)
		if err != nil {
			return err
		}
		wg.Add(1)
		go func(sdk *client.Client, d time.Duration) {
			defer wg.Done()
			if sleepCtx(ctx, d) {
				pollDelta(ctx, sdk, *pollInterval, deltaStats)
			}
		}(sdk, stagger(i, *deltaClients))
	}
	for i := 0; i < *watchClients; i++ {
		sdk, err := newSDK(uint64(*deltaClients+i) + 1)
		if err != nil {
			return err
		}
		wg.Add(1)
		go func(sdk *client.Client) { defer wg.Done(); watchStream(ctx, sdk, watchStats) }(sdk)
	}

	wg.Wait()
	endGen, err := headGeneration(httpClient, base)
	if err != nil {
		return err
	}

	report := buildReport(loadgenConfig{
		Side: *side, Dims: *dims, Duration: duration.String(), Warmup: warmup.String(),
		JSONClients: *jsonClients, BinFullClients: *binFullClients,
		DeltaClients: *deltaClients, WatchClients: *watchClients,
		PollInterval: pollInterval.String(), ChurnRate: *churnRate,
		ChurnNodes: *churnNodes, EdgeChurnRate: *edgeChurnRate,
		EdgeChurnEdges: *edgeChurnEdges, DeltaRing: *deltaRing,
	}, jsonStats, binFullStats, deltaStats, watchStats, churn, edgeChurn, endGen-startGen)

	enc, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	enc = append(enc, '\n')
	if *out == "" {
		_, err = os.Stdout.Write(enc)
		return err
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		return err
	}
	fmt.Printf("loadgen: %d clients, %d commits observed; report written to %s\n",
		totalClients, endGen-startGen, *out)
	return nil
}

// ---------------------------------------------------------------------------
// Stats.

// serveTimer is the harness's serve-path instrument: it wraps the
// daemon's handler and times each embedding GET inside the server,
// classified by response mode. Client-observed latencies in this
// harness include the fleet's own scheduling — a thousand in-process
// pollers share the host's cores with the daemon, so a client-side
// stopwatch measures the harness queueing on itself as much as the
// server. Handler duration is the cost the serve path actually pays
// per request, which is what BENCH_pr6.json compares across modes.
type serveTimer struct {
	inner                http.Handler
	json, binFull, delta *modeStats
}

func (t *serveTimer) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	var m *modeStats
	if r.Method == http.MethodGet && strings.HasSuffix(r.URL.Path, "/embedding") {
		wireAccept := r.Header.Get("Accept") == wire.ContentType
		since := r.URL.Query().Has("since")
		switch {
		case wireAccept && since:
			m = t.delta
		case wireAccept:
			m = t.binFull
		case !since:
			m = t.json
		}
	}
	if m == nil {
		t.inner.ServeHTTP(w, r)
		return
	}
	start := time.Now()
	t.inner.ServeHTTP(w, r)
	m.recordServe(time.Since(start))
}

type modeStats struct {
	// Samples before measureFrom are dropped: they time the startup
	// transient (dials, bootstrap decodes), not steady-state serving.
	measureFrom time.Time

	mu        sync.Mutex
	lats      []float64 // seconds per request, client-observed
	serveLats []float64 // seconds per request inside the handler (serveTimer)
	bytes     int64
	requests  int64
	updates   int64 // responses that carried a not-yet-seen generation
	resyncs   int64 // delta pollers: 410 responses answered with a full refetch
	errors    int64
	// Delta pollers: full-snapshot fetches (bootstrap and post-410
	// refetch) and their bytes, kept out of the steady-state samples.
	bootstraps     int64
	bootstrapBytes int64
}

func newModeStats(measureFrom time.Time) *modeStats {
	return &modeStats{measureFrom: measureFrom}
}

func (m *modeStats) record(lat time.Duration, n int, newGen bool) {
	if time.Now().Before(m.measureFrom) {
		return
	}
	m.mu.Lock()
	m.lats = append(m.lats, lat.Seconds())
	m.bytes += int64(n)
	m.requests++
	if newGen {
		m.updates++
	}
	m.mu.Unlock()
}

func (m *modeStats) recordServe(lat time.Duration) {
	if time.Now().Before(m.measureFrom) {
		return
	}
	m.mu.Lock()
	m.serveLats = append(m.serveLats, lat.Seconds())
	m.mu.Unlock()
}

func (m *modeStats) fail() {
	m.mu.Lock()
	m.errors++
	m.mu.Unlock()
}

func (m *modeStats) resync() {
	m.mu.Lock()
	m.resyncs++
	m.mu.Unlock()
}

func (m *modeStats) bootstrap(n int) {
	m.mu.Lock()
	m.bootstraps++
	m.bootstrapBytes += int64(n)
	m.mu.Unlock()
}

type modeReport struct {
	Clients        int     `json:"clients"`
	Requests       int64   `json:"requests"`
	Updates        int64   `json:"updates"`
	Bytes          int64   `json:"bytes"`
	BytesPerUpdate float64 `json:"bytes_per_update"`
	P50Ms          float64 `json:"p50_ms"`
	P99Ms          float64 `json:"p99_ms"`
	ServeP50Ms     float64 `json:"serve_p50_ms"`
	ServeP99Ms     float64 `json:"serve_p99_ms"`
	Resyncs        int64   `json:"resyncs,omitempty"`
	Errors         int64   `json:"errors,omitempty"`
	Bootstraps     int64   `json:"bootstraps,omitempty"`
	BootstrapBytes int64   `json:"bootstrap_bytes,omitempty"`
}

func (m *modeStats) report(clients int) modeReport {
	m.mu.Lock()
	defer m.mu.Unlock()
	r := modeReport{
		Clients: clients, Requests: m.requests, Updates: m.updates,
		Bytes: m.bytes, Resyncs: m.resyncs, Errors: m.errors,
		Bootstraps: m.bootstraps, BootstrapBytes: m.bootstrapBytes,
	}
	if m.updates > 0 {
		r.BytesPerUpdate = float64(m.bytes) / float64(m.updates)
	}
	if len(m.lats) > 0 {
		sort.Float64s(m.lats)
		r.P50Ms = quantile(m.lats, 0.50) * 1e3
		r.P99Ms = quantile(m.lats, 0.99) * 1e3
	}
	if len(m.serveLats) > 0 {
		sort.Float64s(m.serveLats)
		r.ServeP50Ms = quantile(m.serveLats, 0.50) * 1e3
		r.ServeP99Ms = quantile(m.serveLats, 0.99) * 1e3
	}
	return r
}

// quantile reads the q-quantile off sorted samples.
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(math.Ceil(q*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

type loadgenConfig struct {
	Side           int     `json:"side"`
	Dims           int     `json:"dims"`
	Duration       string  `json:"duration"`
	Warmup         string  `json:"warmup"`
	JSONClients    int     `json:"json_clients"`
	BinFullClients int     `json:"binfull_clients"`
	DeltaClients   int     `json:"delta_clients"`
	WatchClients   int     `json:"watch_clients"`
	PollInterval   string  `json:"poll_interval"`
	ChurnRate      float64 `json:"churn_rate"`
	ChurnNodes     int     `json:"churn_nodes"`
	EdgeChurnRate  float64 `json:"edge_churn_rate"`
	EdgeChurnEdges int     `json:"edge_churn_edges"`
	DeltaRing      int     `json:"delta_ring"`
}

type loadgenReport struct {
	Config loadgenConfig         `json:"config"`
	Modes  map[string]modeReport `json:"modes"`
	Churn  struct {
		Mutations     int64 `json:"mutations"`
		Rejected      int64 `json:"rejected"`
		EdgeMutations int64 `json:"edge_mutations"`
		EdgeRejected  int64 `json:"edge_rejected"`
		Commits       int64 `json:"commits"`
	} `json:"churn"`
	Acceptance struct {
		DeltaBytesPerUpdateRatio float64 `json:"delta_bytes_per_update_vs_json_full"`
		DeltaServeP99Ms          float64 `json:"delta_serve_p99_ms"`
		JSONFullServeP50Ms       float64 `json:"json_full_serve_p50_ms"`
		DeltaP99BelowFullP50     bool    `json:"delta_p99_below_json_full_p50"`
	} `json:"acceptance"`
}

func buildReport(cfg loadgenConfig, jsonStats, binFullStats, deltaStats, watchStats *modeStats,
	churn *churnDriver, edgeChurn *edgeChurnDriver, commits int64) loadgenReport {
	rep := loadgenReport{Config: cfg, Modes: map[string]modeReport{
		"json_full": jsonStats.report(cfg.JSONClients),
		"bin_full":  binFullStats.report(cfg.BinFullClients),
		"bin_delta": deltaStats.report(cfg.DeltaClients),
		"watch":     watchStats.report(cfg.WatchClients),
	}}
	rep.Churn.Mutations = churn.mutations.Load()
	rep.Churn.Rejected = churn.rejected.Load()
	rep.Churn.EdgeMutations = edgeChurn.mutations.Load()
	rep.Churn.EdgeRejected = edgeChurn.rejected.Load()
	rep.Churn.Commits = commits
	jf, bd := rep.Modes["json_full"], rep.Modes["bin_delta"]
	if jf.BytesPerUpdate > 0 {
		rep.Acceptance.DeltaBytesPerUpdateRatio = bd.BytesPerUpdate / jf.BytesPerUpdate
	}
	// The latency criterion compares serve-path quantiles (handler
	// duration, see serveTimer): what each mode costs the daemon per
	// request, independent of the in-process fleet queueing on itself.
	rep.Acceptance.DeltaServeP99Ms = bd.ServeP99Ms
	rep.Acceptance.JSONFullServeP50Ms = jf.ServeP50Ms
	rep.Acceptance.DeltaP99BelowFullP50 = bd.ServeP99Ms > 0 && bd.ServeP99Ms < jf.ServeP50Ms
	return rep
}

// ---------------------------------------------------------------------------
// Client fleets.

func getJSON(client *http.Client, url string, out any) error {
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fterr.New(fterr.CodeForStatus(resp.StatusCode), "loadgen", "GET %s: %s: %s", url, resp.Status, body)
	}
	return json.Unmarshal(body, out)
}

func headGeneration(client *http.Client, base string) (int64, error) {
	st := struct {
		Generation int64 `json:"generation"`
	}{}
	if err := getJSON(client, base, &st); err != nil {
		return 0, err
	}
	return st.Generation, nil
}

// pollFull is one full-embedding poller (JSON or binary by accept).
func pollFull(ctx context.Context, client *http.Client, base, accept string, interval time.Duration, st *modeStats) {
	lastGen := int64(-1)
	for sleepCtx(ctx, interval) {
		req, _ := http.NewRequestWithContext(ctx, "GET", base+"/embedding", nil)
		if accept != "" {
			req.Header.Set("Accept", accept)
		}
		start := time.Now()
		resp, err := client.Do(req)
		if err != nil {
			if ctx.Err() == nil {
				st.fail()
			}
			continue
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		lat := time.Since(start)
		if err != nil || resp.StatusCode != http.StatusOK {
			if ctx.Err() == nil {
				st.fail()
			}
			continue
		}
		gen := int64(-1)
		if accept == wire.ContentType {
			if s, err := wire.DecodeSnapshot(body); err == nil {
				gen = s.Generation
			}
		} else {
			// A full json.Unmarshal of the ~36k-entry map costs several
			// milliseconds per poll; across a 1k-client fleet on few cores
			// that client-side cost would dominate the serve-path latencies
			// this harness exists to measure. The generation field is all
			// the poller needs, so scan just for it.
			gen = scanGeneration(body)
		}
		st.record(lat, len(body), gen > lastGen)
		if gen > lastGen {
			lastGen = gen
		}
	}
}

// pollDelta is one binary ?since= poller, rewired on the resilient SDK:
// Sync keeps a local snapshot current by applying served deltas (in
// place, checksum re-verified), transparently resyncing from the full
// embedding whenever the ring answers 410. The SDK's counters are
// differenced around each call to keep the harness's per-mode
// accounting (updates, resync costs, bytes) intact.
func pollDelta(ctx context.Context, sdk *client.Client, interval time.Duration, st *modeStats) {
	prev := sdk.Stats()
	for sleepCtx(ctx, interval) {
		start := time.Now()
		_, err := sdk.Sync(ctx)
		lat := time.Since(start)
		cur := sdk.Stats()
		n := int(cur.BytesRead - prev.BytesRead)
		switch {
		case err != nil:
			if ctx.Err() == nil {
				st.fail()
			}
		case cur.FullFetches > prev.FullFetches:
			// A full-snapshot fetch only happens at bootstrap or right
			// after an eviction/corruption resync; it is the resync cost,
			// not the steady-state delta serve path, so it is tallied
			// separately.
			if cur.Resyncs > prev.Resyncs {
				st.resync()
			}
			st.bootstrap(n)
		default:
			st.record(lat, n, cur.DeltaApplies > prev.DeltaApplies)
		}
		prev = cur
	}
}

// watchStream is one subscriber on the SDK's reconnecting commit
// stream: it counts delivered events and their wire bytes (latency is
// not meaningful per event).
func watchStream(ctx context.Context, sdk *client.Client, st *modeStats) {
	lastGen := int64(-1)
	var prevBytes int64
	err := sdk.Watch(ctx, func(ev client.Event) error {
		cur := sdk.Stats().BytesRead
		newGen := ev.Generation > lastGen
		if newGen {
			lastGen = ev.Generation
		}
		st.record(0, int(cur-prevBytes), newGen)
		prevBytes = cur
		return nil
	})
	if ctx.Err() == nil && err != nil {
		st.fail()
	}
}

// scanGeneration pulls the "generation" value out of an embedding or
// delta JSON document without parsing the (large) rest; -1 if absent.
func scanGeneration(body []byte) int64 {
	const key = `"generation":`
	i := bytes.Index(body, []byte(key))
	if i < 0 {
		return -1
	}
	gen := int64(-1)
	for _, c := range body[i+len(key):] {
		if c < '0' || c > '9' {
			break
		}
		if gen < 0 {
			gen = 0
		}
		gen = gen*10 + int64(c-'0')
	}
	return gen
}

// sleepCtx sleeps for d; false when the context expired instead.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	select {
	case <-ctx.Done():
		return false
	case <-time.After(d):
		return true
	}
}

// ---------------------------------------------------------------------------
// Churn driver.

// churnDriver keeps the topology's fault set moving over the real wire:
// it alternates between reporting a fresh batch of random faults and
// repairing the oldest outstanding batch, healing immediately whenever
// the construction rejects a batch (422), so the topology keeps
// committing fresh generations for the reader fleets to chase.
type churnDriver struct {
	sdk       *client.Client
	hostNodes int
	batch     int
	interval  time.Duration
	rng       *rng.PCG

	mutations atomic.Int64
	rejected  atomic.Int64
}

func (c *churnDriver) run(ctx context.Context) {
	var window [][]int
	const maxWindow = 8
	for sleepCtx(ctx, c.interval) {
		if len(window) >= maxWindow {
			batch := window[0]
			window = window[1:]
			c.mutate(ctx, true, batch)
			continue
		}
		batch := make([]int, c.batch)
		for i := range batch {
			batch[i] = c.rng.Intn(c.hostNodes)
		}
		if c.mutate(ctx, false, batch) {
			window = append(window, batch)
		} else {
			// Rejected (not_tolerated) or failed: repair immediately so
			// the state heals instead of wedging every later eval.
			c.mutate(ctx, true, batch)
		}
	}
	// Leave the topology clean.
	for _, batch := range window {
		c.mutate(context.Background(), true, batch)
	}
}

// mutate reports one batch synchronously through the SDK (clear=true
// repairs, otherwise reports); true means the evaluation committed.
func (c *churnDriver) mutate(ctx context.Context, clear bool, nodes []int) bool {
	var err error
	if clear {
		_, err = c.sdk.ClearFaults(ctx, nodes...)
	} else {
		_, err = c.sdk.AddFaults(ctx, nodes...)
	}
	c.mutations.Add(1)
	if ftnet.IsCode(err, ftnet.CodeNotTolerated) {
		c.rejected.Add(1)
		return false
	}
	return err == nil
}

// edgePool samples poolSize distinct host edges from a locally built
// host identical to the daemon's (the construction is deterministic):
// random anchors, one adjacent partner each, canonical {u, v}.
func edgePool(dims, side int, eps float64, poolSize int, seed uint64) ([][2]int, error) {
	host, err := ftnet.NewRandomFaultTorus(dims, side, eps)
	if err != nil {
		return nil, err
	}
	ses := host.NewSession()
	n := host.HostNodes()
	r := rng.NewPCG(seed, 13)
	seen := make(map[[2]int]bool, poolSize)
	pool := make([][2]int, 0, poolSize)
	for len(pool) < poolSize {
		u := r.Intn(n - 1)
		for v := u + 1; v < n; v++ {
			if ses.Adjacent(u, v) {
				e := [2]int{u, v}
				if !seen[e] {
					seen[e] = true
					pool = append(pool, e)
				}
				break
			}
		}
	}
	return pool, nil
}

// edgeChurnDriver keeps the topology's edge-fault set moving over the
// real wire, mirroring churnDriver on the /edge-faults endpoints: it
// alternates between flapping a fresh batch of pooled host edges and
// repairing the oldest outstanding batch, healing immediately whenever
// the construction rejects a batch, so mixed node+edge populations keep
// committing fresh generations.
type edgeChurnDriver struct {
	sdk      *client.Client
	pool     [][2]int
	batch    int
	interval time.Duration
	rng      *rng.PCG

	mutations atomic.Int64
	rejected  atomic.Int64
}

func (c *edgeChurnDriver) run(ctx context.Context) {
	var window [][][2]int
	outstanding := make(map[[2]int]bool)
	const maxWindow = 8
	for sleepCtx(ctx, c.interval) {
		if len(window) >= maxWindow {
			batch := window[0]
			window = window[1:]
			c.mutate(ctx, true, batch)
			for _, e := range batch {
				delete(outstanding, e)
			}
			continue
		}
		// Draw distinct pool edges not already faulty: a duplicate inside
		// one batch would be rejected as invalid, and re-adding an
		// outstanding edge would make the later repair double-clear it.
		batch := make([][2]int, 0, c.batch)
		for attempts := 0; len(batch) < c.batch && attempts < 4*c.batch; attempts++ {
			e := c.pool[c.rng.Intn(len(c.pool))]
			if !outstanding[e] {
				outstanding[e] = true
				batch = append(batch, e)
			}
		}
		if len(batch) == 0 {
			continue
		}
		if c.mutate(ctx, false, batch) {
			window = append(window, batch)
		} else {
			c.mutate(ctx, true, batch)
			for _, e := range batch {
				delete(outstanding, e)
			}
		}
	}
	for _, batch := range window {
		c.mutate(context.Background(), true, batch)
	}
}

// mutate reports one edge batch synchronously through the SDK
// (clear=true repairs); true means the evaluation committed.
func (c *edgeChurnDriver) mutate(ctx context.Context, clear bool, edges [][2]int) bool {
	var err error
	if clear {
		_, err = c.sdk.ClearEdgeFaults(ctx, edges...)
	} else {
		_, err = c.sdk.AddEdgeFaults(ctx, edges...)
	}
	c.mutations.Add(1)
	if ftnet.IsCode(err, ftnet.CodeNotTolerated) {
		c.rejected.Add(1)
		return false
	}
	return err == nil
}
