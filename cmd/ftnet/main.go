// Command ftnet builds the paper's fault-tolerant hosts, injects faults,
// and extracts (and verifies) the surviving torus.
//
// Usage:
//
//	ftnet random    -d 2 -side 400 -eps 0.5 [-p PROB] [-seed N] [-fig]
//	ftnet clique    -d 2 -side 400 -p 0.1 -q 0 -c 2.5 [-seed N]
//	ftnet worstcase -d 2 -side 100 -k 27 [-faults N] [-pattern cluster] [-seed N]
//	ftnet health    -side 400 -p 1e-5 [-seed N]
//	ftnet simulate  -side 200 -faults 10 [-steps N] [-seed N]
//	ftnet churn     -side 200 -arrival 2e-5 -repair 1 -horizon 20 [-edge-arrival R] [-edge-repair R] [-trials N] [-workers N] [-independent]
//	ftnet edges     -d 2 -side 64 -eps 0.5 -count 2
//	ftnet serve     -listen 127.0.0.1:8080 -topology id=main,d=2,side=200,eps=0.5 [-snapshot-dir DIR]
//	ftnet loadgen   -side 64 -duration 10s -json-clients 8 -delta-clients 8 [-out BENCH.json]
//	ftnet wire      -in payload.bin [-base full.bin]
//
// Each subcommand prints the host resources, the injected fault count,
// and whether a fault-free torus was extracted (extraction is always
// verified independently before being reported as a success). churn runs
// lifetime trials of a dynamic fault process — Poisson per-node
// arrivals and per-edge link flaps, exponential per-fault repairs,
// optional adversarial node and edge bursts — re-embedding
// incrementally after every event (internal/churn). loadgen
// benchmarks the ftnetd serve paths (JSON-full vs binary-delta vs watch
// streams) against a churning in-process daemon; wire decodes a binary
// embedding payload to the canonical JSON document for offline diffing.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"ftnet"
	"ftnet/internal/churn"
	"ftnet/internal/core"
	"ftnet/internal/fault"
	"ftnet/internal/fterr"
	"ftnet/internal/parsim"
	"ftnet/internal/rng"
	"ftnet/internal/validate"
	"ftnet/internal/viz"
	"ftnet/internal/worstcase"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	var err error
	switch os.Args[1] {
	case "random":
		err = runRandom(os.Args[2:])
	case "clique":
		err = runClique(os.Args[2:])
	case "worstcase":
		err = runWorstcase(os.Args[2:])
	case "health":
		err = runHealth(os.Args[2:])
	case "simulate":
		err = runSimulate(os.Args[2:])
	case "churn":
		err = runChurn(os.Args[2:])
	case "edges":
		err = runEdges(os.Args[2:])
	case "serve":
		err = runServe(os.Args[2:])
	case "loadgen":
		err = runLoadgen(os.Args[2:])
	case "wire":
		err = runWire(os.Args[2:])
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "ftnet:", err)
		// Scripted callers branch on the exit code, mirroring the error
		// taxonomy's retry classes: 2 = terminal (fix the input or state),
		// 3 = retryable/resync (acting again may succeed). Usage errors
		// exit 2 via usage() below.
		if ftnet.Retryable(err) {
			os.Exit(3)
		}
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: ftnet {random|clique|worstcase|health|simulate|churn|edges|serve|loadgen|wire} [flags]   (run with -h for flags)")
	os.Exit(2)
}

// runHealth reports the Lemma 4 healthiness diagnostics for a random
// fault pattern, alongside whether constructive placement succeeds.
func runHealth(args []string) error {
	fs := flag.NewFlagSet("health", flag.ExitOnError)
	side := fs.Int("side", 400, "minimum torus side")
	eps := fs.Float64("eps", 0.5, "maximum node redundancy")
	p := fs.Float64("p", 1e-5, "node failure probability")
	seed := fs.Uint64("seed", 1, "fault seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	params, err := core.FitParams(2, *side, *eps)
	if err != nil {
		return err
	}
	g, err := core.NewGraph(params)
	if err != nil {
		return err
	}
	faults := fault.NewSet(g.NumNodes())
	faults.Bernoulli(rng.New(*seed), *p)
	h := g.CheckHealth(faults)
	fmt.Printf("%v with %d faults (p=%.2g):\n", params, faults.Count(), *p)
	fmt.Printf("  condition 1 (2b fault-free rows per brick):    ok=%v (violations: %d bricks)\n", h.Cond1OK, h.BricksNoFreeRun)
	fmt.Printf("  condition 2 (<= eps*b faults per brick):       ok=%v (max %d, threshold %d)\n", h.Cond2OK, h.MaxBrickFaults, h.Threshold)
	fmt.Printf("  condition 3 (fault-free frame around nodes):   ok=%v (violations: %d tiles)\n", h.Cond3OK, h.TilesUnenclosed)
	fmt.Printf("  healthy per Lemma 4: %v\n", h.Healthy())
	_, rep, err := g.PlaceBands(faults)
	if err != nil {
		fmt.Printf("  constructive placement: FAILS (%v)\n", err)
		return nil
	}
	fmt.Printf("  constructive placement: ok (%d boxes, %d segments, %d fillers)\n",
		rep.Boxes, rep.Segments, rep.Padded)
	return nil
}

// runSimulate reconfigures a faulty host and runs the torus workloads on
// the surviving machine.
func runSimulate(args []string) error {
	fs := flag.NewFlagSet("simulate", flag.ExitOnError)
	side := fs.Int("side", 200, "minimum torus side")
	faultsN := fs.Int("faults", 10, "random faults to inject")
	steps := fs.Int("steps", 30, "stencil steps")
	seed := fs.Uint64("seed", 1, "fault seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	params, err := core.FitParams(2, *side, 0.5)
	if err != nil {
		return err
	}
	g, err := core.NewGraph(params)
	if err != nil {
		return err
	}
	faults := fault.NewSet(g.NumNodes())
	if err := faults.ExactRandom(rng.New(*seed), *faultsN); err != nil {
		return err
	}
	res, err := g.ContainTorus(faults, core.ExtractOptions{})
	if err != nil {
		return err
	}
	machine, err := parsim.New(res.Embedding, core.NewHostView(g, faults, nil))
	if err != nil {
		return err
	}
	fmt.Printf("reconfigured %dx%d machine around %d faults\n", params.N(), params.N(), faults.Count())
	field := make([]float64, machine.P())
	field[0] = 1
	out, err := machine.Stencil(field, *steps, 0.8)
	if err != nil {
		return err
	}
	ideal, err := parsim.NewIdeal(machine.Shape).Stencil(field, *steps, 0.8)
	if err != nil {
		return err
	}
	fmt.Printf("stencil(%d): deviation from pristine machine = %v\n", *steps, parsim.MaxDiff(out, ideal))
	sum, redSteps, err := machine.AllReduceSum(field)
	if err != nil {
		return err
	}
	fmt.Printf("all-reduce: sum=%.6f in %d steps\n", sum, redSteps)
	return nil
}

// runEdges prints canonical host edges of the Theorem 2 host as a JSON
// array of {u, v} pairs — ready to paste into the daemon's /edge-faults
// request body, which only accepts real host edges. Anchors are spread
// across the host so the charged endpoints stay a tolerable pattern.
func runEdges(args []string) error {
	fs := flag.NewFlagSet("edges", flag.ExitOnError)
	d := fs.Int("d", 2, "dimension")
	side := fs.Int("side", 64, "minimum torus side")
	eps := fs.Float64("eps", 0.5, "maximum node redundancy")
	count := fs.Int("count", 2, "edges to print")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := validate.Min("edges: -count", *count, 1); err != nil {
		return err
	}
	host, err := ftnet.NewRandomFaultTorus(*d, *side, *eps)
	if err != nil {
		return err
	}
	ses := host.NewSession()
	n := host.HostNodes()
	edges := make([][2]int, 0, *count)
	for i := 0; len(edges) < *count; i++ {
		// Stride anchors across the host; the session re-arms itself after
		// an anchor-column rotation, so no column needs avoiding.
		u := (i * 9001) % (n - 1)
		for v := u + 1; v < n; v++ {
			if ses.Adjacent(u, v) {
				edges = append(edges, [2]int{u, v})
				break
			}
		}
	}
	enc, err := json.Marshal(edges)
	if err != nil {
		return err
	}
	fmt.Println(string(enc))
	return nil
}

// runChurn runs lifetime trials of the dynamic fault process on the
// Theorem 2 host, re-embedding incrementally after every arrival,
// repair or burst.
func runChurn(args []string) error {
	fs := flag.NewFlagSet("churn", flag.ExitOnError)
	d := fs.Int("d", 2, "dimension")
	side := fs.Int("side", 200, "minimum torus side")
	eps := fs.Float64("eps", 0.5, "maximum node redundancy")
	arrival := fs.Float64("arrival", -1, "per-node failure rate (-1 = the theorem probability per unit time)")
	repair := fs.Float64("repair", 1, "per-fault repair rate (0 = pure aging)")
	burstRate := fs.Float64("burst-rate", 0, "adversarial burst rate (0 = off)")
	burstSize := fs.Int("burst-size", 8, "faults per adversarial burst")
	burstPattern := fs.String("burst-pattern", "cluster", "burst adversary: uniform|cluster|rowsweep|diagonal|classspread|columnsweep")
	edgeArrival := fs.Float64("edge-arrival", 0, "per-edge link-failure rate (0 = node faults only)")
	edgeRepair := fs.Float64("edge-repair", 1, "per-faulty-edge repair rate")
	edgeBurstRate := fs.Float64("edge-burst-rate", 0, "clustered edge-burst rate (0 = off)")
	edgeBurstSize := fs.Int("edge-burst-size", 8, "edges per clustered edge burst")
	horizon := fs.Float64("horizon", 20, "simulated time per trial")
	trials := fs.Int("trials", 16, "Monte-Carlo trials")
	workers := fs.Int("workers", 0, "trial worker pool size (0 = GOMAXPROCS); results do not depend on it")
	seed := fs.Uint64("seed", 1, "master seed")
	stopAtDeath := fs.Bool("stop-at-death", false, "end each trial at the first unembeddable state")
	batch := fs.Int("batch", 0, "evaluate the full pipeline once per this many events, deciding per-event status with the placement probe; bit-identical results (0 or 1 = per-event)")
	independent := fs.Bool("independent", false, "ablation: re-run the full pipeline from scratch after every event instead of the incremental session")
	if err := fs.Parse(args); err != nil {
		return err
	}
	// Flag validation shares internal/validate with the serve subcommand's
	// config: a negative or NaN rate, a zero horizon or a negative worker
	// count would otherwise flow straight into the Gillespie generator as
	// garbage. -arrival keeps its documented sentinel (exactly -1 = the
	// theorem probability).
	if *arrival != -1 {
		if err := validate.Rate("churn: -arrival", *arrival); err != nil {
			return err
		}
	}
	if err := validate.Rate("churn: -repair", *repair); err != nil {
		return err
	}
	if err := validate.Rate("churn: -burst-rate", *burstRate); err != nil {
		return err
	}
	if *burstRate > 0 {
		if err := validate.Min("churn: -burst-size", *burstSize, 1); err != nil {
			return err
		}
	}
	if err := validate.Rate("churn: -edge-arrival", *edgeArrival); err != nil {
		return err
	}
	if err := validate.Rate("churn: -edge-repair", *edgeRepair); err != nil {
		return err
	}
	if err := validate.Rate("churn: -edge-burst-rate", *edgeBurstRate); err != nil {
		return err
	}
	if *edgeBurstRate > 0 {
		if err := validate.Min("churn: -edge-burst-size", *edgeBurstSize, 1); err != nil {
			return err
		}
	}
	if err := validate.Positive("churn: -horizon", *horizon); err != nil {
		return err
	}
	if err := validate.Min("churn: -workers", *workers, 0); err != nil {
		return err
	}
	if err := validate.Min("churn: -trials", *trials, 1); err != nil {
		return err
	}
	if err := validate.Min("churn: -batch", *batch, 0); err != nil {
		return err
	}
	params, err := core.FitParams(*d, *side, *eps)
	if err != nil {
		return err
	}
	g, err := core.NewGraph(params)
	if err != nil {
		return err
	}
	pat, err := parsePattern(*burstPattern)
	if err != nil {
		return err
	}
	lambda := *arrival
	if lambda < 0 {
		lambda = params.TheoremFailureProb()
	}
	proc := churn.Process{
		Arrival:      lambda,
		Repair:       *repair,
		BurstRate:    *burstRate,
		BurstSize:    *burstSize,
		BurstPattern: pat,
	}
	if *edgeArrival > 0 || *edgeBurstRate > 0 {
		// Edge repair without an edge-fault source is a no-op rate; only
		// wire the edge kinds in when link flaps can actually occur.
		proc.EdgeArrival = *edgeArrival
		proc.EdgeRepair = *edgeRepair
		proc.EdgeBurstRate = *edgeBurstRate
		proc.EdgeBurstSize = *edgeBurstSize
	}
	fmt.Printf("B^%d_n: side %d, host nodes %d; lambda=%.2e/node, rho=%.2g/fault, bursts %.2g x %d (%s)\n",
		*d, params.N(), g.NumNodes(), lambda, *repair, *burstRate, *burstSize, pat)
	if proc.HasEdgeEvents() {
		fmt.Printf("  link flaps: lambda=%.2e/edge, rho=%.2g/fault, edge bursts %.2g x %d (clustered)\n",
			*edgeArrival, *edgeRepair, *edgeBurstRate, *edgeBurstSize)
	}
	res, err := churn.Simulate(g, proc, *trials, *seed, churn.Options{
		Workers:     *workers,
		Horizon:     *horizon,
		StopAtDeath: *stopAtDeath,
		Batch:       *batch,
		Independent: *independent,
	})
	if err != nil {
		return err
	}
	dt, dtSE := res.MeanDeathTime()
	avail, availSE := res.Availability()
	fmt.Printf("%d trials to horizon %.3g: %.0f events/trial\n", res.Trials, *horizon, res.Mean[churn.MetricEvents])
	fmt.Printf("  availability:      %.4f +- %.4f\n", avail, availSE)
	fmt.Printf("  death rate:        %.3f\n", res.DeathRate())
	if res.DeathRate() > 0 {
		fmt.Printf("  mean time to death:  %.3g +- %.2g (censored at horizon)\n", dt, dtSE)
		fmt.Printf("  mean faults at death: %.1f\n", res.MeanDeathFaults())
	}
	return nil
}

func runRandom(args []string) error {
	fs := flag.NewFlagSet("random", flag.ExitOnError)
	d := fs.Int("d", 2, "dimension")
	side := fs.Int("side", 400, "minimum torus side")
	eps := fs.Float64("eps", 0.5, "maximum node redundancy")
	p := fs.Float64("p", -1, "node failure probability (default: the theorem's log^-3d n)")
	seed := fs.Uint64("seed", 1, "fault seed")
	fig := fs.Bool("fig", false, "render the band figure around the first fault (d=2)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	host, err := ftnet.NewRandomFaultTorus(*d, *side, *eps)
	if err != nil {
		return err
	}
	prob := *p
	if prob < 0 {
		prob = host.TheoremFailureProb()
	}
	fmt.Printf("B^%d_n: side %d, host nodes %d, degree %d, eps %.3f, theorem p %.2e\n",
		host.Dims(), host.Side(), host.HostNodes(), host.Degree(), host.Eps(), host.TheoremFailureProb())
	faults := host.InjectRandom(*seed, prob)
	fmt.Printf("injected %d random faults (p = %.2e); healthy per Lemma 4: %v\n",
		faults.Count(), prob, host.Healthy(faults))
	emb, err := host.Extract(faults)
	if err != nil {
		return err
	}
	fmt.Printf("extracted and verified a fault-free %d-dimensional %d-torus (%d nodes)\n",
		host.Dims(), host.Side(), len(emb.Map))
	if *fig && *d == 2 {
		return renderFigure(*side, *eps, *seed, prob)
	}
	return nil
}

// renderFigure redoes the run against the internal API to reach the band
// family, then prints the Figure 1 window.
func renderFigure(side int, eps float64, seed uint64, prob float64) error {
	params, err := core.FitParams(2, side, eps)
	if err != nil {
		return err
	}
	g, err := core.NewGraph(params)
	if err != nil {
		return err
	}
	faults := fault.NewSet(g.NumNodes())
	faults.Bernoulli(rng.New(seed), prob)
	res, err := g.ContainTorus(faults, core.ExtractOptions{})
	if err != nil {
		return err
	}
	rowLo, colLo := viz.FaultWindow(g, faults, 24, 72)
	pic, err := viz.Bands(g, res.Bands, faults, rowLo, colLo, 24, 72)
	if err != nil {
		return err
	}
	fmt.Println(viz.Legend)
	fmt.Print(pic)
	return nil
}

func runClique(args []string) error {
	fs := flag.NewFlagSet("clique", flag.ExitOnError)
	d := fs.Int("d", 2, "dimension")
	side := fs.Int("side", 400, "minimum torus side")
	p := fs.Float64("p", 0.1, "node failure probability")
	q := fs.Float64("q", 0, "edge failure probability")
	c := fs.Float64("c", 2.5, "node redundancy target (> 1/(1-p))")
	seed := fs.Uint64("seed", 1, "fault seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	host, err := ftnet.NewCliqueTorus(*d, *side, *p, *q, *c)
	if err != nil {
		return err
	}
	fmt.Printf("A^%d_n: side %d, host nodes %d, degree %d, supernode size %d, realized c %.2f\n",
		host.Dims(), host.Side(), host.HostNodes(), host.Degree(), host.SupernodeSize(), host.Redundancy())
	emb, err := host.ExtractRandom(*seed, *p)
	if err != nil {
		return err
	}
	fmt.Printf("survived p=%.2f q=%.2g: verified fault-free %d-torus (%d nodes)\n",
		*p, *q, host.Side(), len(emb.Map))
	return nil
}

func runWorstcase(args []string) error {
	fs := flag.NewFlagSet("worstcase", flag.ExitOnError)
	d := fs.Int("d", 2, "dimension")
	side := fs.Int("side", 100, "minimum torus side")
	k := fs.Int("k", 27, "worst-case fault budget")
	nFaults := fs.Int("faults", -1, "faults to inject (default: full capacity)")
	pattern := fs.String("pattern", "cluster", "adversary: uniform|cluster|rowsweep|diagonal|classspread|columnsweep")
	seed := fs.Uint64("seed", 1, "fault seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	host, err := ftnet.NewWorstCaseTorus(*d, *side, *k)
	if err != nil {
		return err
	}
	fmt.Printf("D^%d_{n,k}: side %d, host nodes %d, degree %d, capacity %d\n",
		host.Dims(), host.Side(), host.HostNodes(), host.Degree(), host.Capacity())
	count := *nFaults
	if count < 0 {
		count = host.Capacity()
	}
	pat, err := parsePattern(*pattern)
	if err != nil {
		return err
	}
	// Build the adversarial set against the internal host shape.
	wg, err := worstcase.NewGraph(worstcase.Params{D: *d, N: *side, K: *k})
	if err != nil {
		return err
	}
	set, err := fault.Adversarial(pat, wg.Shape, count, wg.P.B()+1, rng.New(*seed))
	if err != nil {
		return err
	}
	faults := host.NewFaults()
	for _, v := range set.Slice() {
		faults.Add(v)
	}
	emb, err := host.Extract(faults, nil)
	if err != nil {
		return err
	}
	fmt.Printf("tolerated %d %s faults: verified fault-free %d-torus (%d nodes)\n",
		count, pat, host.Side(), len(emb.Map))
	return nil
}

func parsePattern(s string) (fault.Pattern, error) {
	for _, p := range fault.AllPatterns() {
		if p.String() == s {
			return p, nil
		}
	}
	return 0, fterr.New(fterr.Invalid, "ftnet", "unknown pattern %q", s)
}
