package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ftnet/internal/wire"
)

// TestChurnFlagValidation pins the churn subcommand's input hardening:
// nonsense rates, horizons and counts must be rejected with a clear
// error before they reach the Gillespie generator. (main exits nonzero
// on any returned error.)
func TestChurnFlagValidation(t *testing.T) {
	for _, tc := range []struct {
		args []string
		want string
	}{
		{[]string{"-arrival", "-0.5"}, "-arrival"},
		{[]string{"-arrival", "NaN"}, "-arrival"},
		{[]string{"-arrival", "+Inf"}, "-arrival"},
		{[]string{"-repair", "-1"}, "-repair"},
		{[]string{"-repair", "NaN"}, "-repair"},
		{[]string{"-horizon", "0"}, "-horizon"},
		{[]string{"-horizon", "-3"}, "-horizon"},
		{[]string{"-horizon", "NaN"}, "-horizon"},
		{[]string{"-workers", "-2"}, "-workers"},
		{[]string{"-trials", "0"}, "-trials"},
		{[]string{"-burst-rate", "-1"}, "-burst-rate"},
		{[]string{"-burst-rate", "1", "-burst-size", "0"}, "-burst-size"},
	} {
		err := runChurn(tc.args)
		if err == nil {
			t.Errorf("churn %v accepted", tc.args)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("churn %v: error %q does not name %s", tc.args, err, tc.want)
		}
	}
}

// TestLoadgenFlagValidation pins the load-harness boundary checks:
// negative fleet sizes, non-finite or non-positive rates and windows,
// and degenerate ring sizes are rejected with an error naming the flag
// before any server is started. (main exits nonzero on any returned
// error.)
func TestLoadgenFlagValidation(t *testing.T) {
	for _, tc := range []struct {
		args []string
		want string
	}{
		{[]string{"-json-clients", "-1"}, "-json-clients"},
		{[]string{"-binfull-clients", "-3"}, "-binfull-clients"},
		{[]string{"-delta-clients", "-1"}, "-delta-clients"},
		{[]string{"-watch-clients", "-2"}, "-watch-clients"},
		{[]string{"-churn-rate", "NaN"}, "-churn-rate"},
		{[]string{"-churn-rate", "+Inf"}, "-churn-rate"},
		{[]string{"-churn-rate", "0"}, "-churn-rate"},
		{[]string{"-churn-rate", "-5"}, "-churn-rate"},
		{[]string{"-churn-nodes", "0"}, "-churn-nodes"},
		{[]string{"-duration", "0s"}, "-duration"},
		{[]string{"-duration", "-2s"}, "-duration"},
		{[]string{"-poll-interval", "0s"}, "-poll-interval"},
		{[]string{"-delta-ring", "0"}, "-delta-ring"},
		{[]string{"-delta-ring", "-4"}, "-delta-ring"},
	} {
		err := runLoadgen(tc.args)
		if err == nil {
			t.Errorf("loadgen %v accepted", tc.args)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("loadgen %v: error %q does not name %s", tc.args, err, tc.want)
		}
	}
}

// TestServeFlagValidation covers the serve-side boundaries added with
// the delta ring: a ring must hold at least one record.
func TestServeFlagValidation(t *testing.T) {
	for _, tc := range []struct {
		args []string
		want string
	}{
		{[]string{"-delta-ring", "0"}, "-delta-ring"},
		{[]string{"-delta-ring", "-1"}, "-delta-ring"},
		{[]string{"-flush-interval", "-1s"}, "-flush-interval"},
	} {
		err := runServe(tc.args)
		if err == nil {
			t.Errorf("serve %v accepted", tc.args)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("serve %v: error %q does not name %s", tc.args, err, tc.want)
		}
	}
}

// TestWireFlagValidation pins the offline decoder's contract: -in is
// mandatory, and a delta payload without its -base full snapshot is an
// explicit error, never a silently partial decode.
func TestWireFlagValidation(t *testing.T) {
	if err := runWire(nil); err == nil || !strings.Contains(err.Error(), "-in") {
		t.Errorf("wire without -in: %v", err)
	}
	if err := runWire([]string{"-in", filepath.Join(t.TempDir(), "nope.bin")}); err == nil {
		t.Error("wire with missing file accepted")
	}

	delta, err := wire.EncodeDelta(&wire.Delta{
		Topology: "t", FromGeneration: 0, ToGeneration: 1,
		Side: 2, Dims: 2, Faults: []int{},
	})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "delta.bin")
	if err := os.WriteFile(path, delta, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := runWire([]string{"-in", path}); err == nil || !strings.Contains(err.Error(), "-base") {
		t.Errorf("wire delta without -base: %v", err)
	}
}
