package main

import (
	"strings"
	"testing"
)

// TestChurnFlagValidation pins the churn subcommand's input hardening:
// nonsense rates, horizons and counts must be rejected with a clear
// error before they reach the Gillespie generator. (main exits nonzero
// on any returned error.)
func TestChurnFlagValidation(t *testing.T) {
	for _, tc := range []struct {
		args []string
		want string
	}{
		{[]string{"-arrival", "-0.5"}, "-arrival"},
		{[]string{"-arrival", "NaN"}, "-arrival"},
		{[]string{"-arrival", "+Inf"}, "-arrival"},
		{[]string{"-repair", "-1"}, "-repair"},
		{[]string{"-repair", "NaN"}, "-repair"},
		{[]string{"-horizon", "0"}, "-horizon"},
		{[]string{"-horizon", "-3"}, "-horizon"},
		{[]string{"-horizon", "NaN"}, "-horizon"},
		{[]string{"-workers", "-2"}, "-workers"},
		{[]string{"-trials", "0"}, "-trials"},
		{[]string{"-burst-rate", "-1"}, "-burst-rate"},
		{[]string{"-burst-rate", "1", "-burst-size", "0"}, "-burst-size"},
	} {
		err := runChurn(tc.args)
		if err == nil {
			t.Errorf("churn %v accepted", tc.args)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("churn %v: error %q does not name %s", tc.args, err, tc.want)
		}
	}
}
