package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ftnet/internal/fterr"
	"ftnet/internal/server"
	"ftnet/internal/validate"
)

// runServe starts ftnetd: one long-lived ftnet.Session per configured
// topology behind the HTTP/JSON wire protocol of internal/server, with
// request batching, read-mostly embedding snapshots, disk
// snapshot/restore and Prometheus-style metrics.
func runServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	listen := fs.String("listen", "127.0.0.1:8080", "listen address")
	snapshotDir := fs.String("snapshot-dir", "", "directory for session snapshots (empty = snapshots disabled)")
	maxBatchCols := fs.Int("max-batch-cols", server.DefaultMaxBatchCols,
		"evaluate pending async mutations once they touch this many distinct host columns")
	flushInterval := fs.Duration("flush-interval", server.DefaultFlushInterval,
		"periodic flush of pending async mutations (0 = disabled)")
	deltaRing := fs.Int("delta-ring", server.DefaultDeltaRing,
		"per-topology count of recent generation diffs kept for ?since= and /watch catch-up")
	chaosSpec := fs.String("chaos", os.Getenv("FTNET_CHAOS"),
		"fault-injection spec key=value[,...]: latency-p, latency, error-p, drop-p, corrupt-p, evict-p, seed (default $FTNET_CHAOS; empty = disabled)")
	var topos topoSpecs
	fs.Var(&topos, "topology", "hosted topology spec id=NAME,d=D,side=N,eps=E (repeatable; default id=default,d=2,side=64,eps=0.5)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if len(topos.specs) == 0 {
		tc, err := server.ParseTopologySpec("id=default,d=2,side=64,eps=0.5")
		if err != nil {
			return err
		}
		topos.specs = append(topos.specs, tc)
	}
	if *flushInterval < 0 {
		return fterr.New(fterr.Invalid, "serve", "-flush-interval must be >= 0, got %v", *flushInterval)
	}
	if err := validate.Min("serve: -delta-ring", *deltaRing, 1); err != nil {
		return err
	}
	chaos, err := server.ParseChaos(*chaosSpec)
	if err != nil {
		return fmt.Errorf("serve: -chaos: %w", err)
	}
	cfg := server.Config{
		Topologies:    topos.specs,
		SnapshotDir:   *snapshotDir,
		MaxBatchCols:  *maxBatchCols,
		FlushInterval: *flushInterval, // 0 disables, same as the Config encoding
		DeltaRing:     *deltaRing,
		Chaos:         chaos,
	}
	if err := cfg.Validate(); err != nil {
		return err
	}

	srv, err := server.New(cfg)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Addr: *listen, Handler: srv.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() {
		fmt.Printf("ftnetd: serving %d topologies on %s\n", len(cfg.Topologies), *listen)
		if cfg.Chaos.Enabled() {
			fmt.Printf("  chaos injection ON: %+v\n", cfg.Chaos)
		}
		for _, tc := range cfg.Topologies {
			fmt.Printf("  /v1/topologies/%s  (d=%d minSide=%d eps=%g)\n", tc.ID, tc.D, tc.MinSide, tc.MaxEps)
		}
		errc <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		srv.Close()
		return err
	case <-ctx.Done():
	}
	fmt.Println("ftnetd: shutting down")
	// Watch streams never end on their own; disconnect them or Shutdown
	// waits out its whole timeout on every connected subscriber.
	srv.DisconnectWatchers()
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		srv.Close()
		return err
	}
	// Workers flush applied mutations and, with -snapshot-dir set, the
	// final committed state is persisted for the next start.
	return srv.Close()
}

// topoSpecs collects repeated -topology flags.
type topoSpecs struct {
	specs []server.TopologyConfig
}

func (t *topoSpecs) String() string { return fmt.Sprintf("%d topologies", len(t.specs)) }

func (t *topoSpecs) Set(s string) error {
	tc, err := server.ParseTopologySpec(s)
	if err != nil {
		return err
	}
	t.specs = append(t.specs, tc)
	return nil
}
