package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"ftnet/internal/fterr"
	"ftnet/internal/server"
	"ftnet/internal/wire"
)

// runWire decodes a binary embedding payload — a full snapshot, or a
// delta applied to a -base full snapshot — and prints the canonical
// JSON embedding document to stdout, byte-identical to what GET
// .../embedding serves for the same state. The smoke script diffs this
// output against the JSON wire to prove both encodings carry the same
// bits.
func runWire(args []string) error {
	fs := flag.NewFlagSet("wire", flag.ExitOnError)
	in := fs.String("in", "", "binary payload file (full snapshot or delta)")
	base := fs.String("base", "", "full-snapshot payload a delta applies to (required when -in is a delta)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fterr.New(fterr.Invalid, "wire", "-in is required")
	}
	data, err := os.ReadFile(*in)
	if err != nil {
		return err
	}
	kind, err := wire.Kind(data)
	if err != nil {
		return err
	}
	var snap *wire.Snapshot
	switch kind {
	case wire.KindFull:
		if snap, err = wire.DecodeSnapshot(data); err != nil {
			return err
		}
	case wire.KindDelta:
		if *base == "" {
			return fterr.New(fterr.Invalid, "wire", "%s is a delta; -base FULL.bin is required to apply it", *in)
		}
		baseData, err := os.ReadFile(*base)
		if err != nil {
			return err
		}
		baseSnap, err := wire.DecodeSnapshot(baseData)
		if err != nil {
			return fmt.Errorf("wire: decode %s: %w", *base, err)
		}
		d, err := wire.DecodeDelta(data)
		if err != nil {
			return err
		}
		if snap, err = wire.Apply(baseSnap, d); err != nil {
			return err
		}
	}
	w := bufio.NewWriter(os.Stdout)
	if err := server.RenderEmbeddingJSON(w, snap); err != nil {
		return err
	}
	return w.Flush()
}
