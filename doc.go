// Package ftnet builds interconnection networks that keep working after a
// large number of faults, reproducing Hisao Tamaki, "Construction of the
// Mesh and the Torus Tolerating a Large Number of Faults" (SPAA 1994;
// JCSS 53:371-379, 1996).
//
// Three host constructions are provided, one per theorem:
//
//   - RandomFaultTorus (Theorem 2): degree 6d-2, (1+eps)n^d nodes,
//     survives independent node failures of probability log^{-3d}(n) with
//     high probability. The survival proof is fully constructive here:
//     faults are masked with winding bands and the fault-free
//     d-dimensional n-torus is extracted and verified.
//
//   - CliqueTorus (Theorem 1): degree O(log log N), c*n^d nodes, survives
//     *constant* node and edge failure probabilities. Built by replacing
//     each RandomFaultTorus node with a clique supernode.
//
//   - WorstCaseTorus (Theorem 3): degree 4d, roughly (n + k^{2^d/(2^d-1)})^d
//     nodes, tolerates ANY k node and edge faults, adversarial included.
//
// Every extraction returns an Embedding that has already been verified by
// an independent checker: the mapping is injective, avoids faulty nodes,
// and realizes every torus edge over a fault-free host edge.
//
// For hosts whose fault set changes in place, Session maintains a
// long-lived embedding with O(fault-footprint) incremental Reembed; the
// Checked mutation variants (AddFaultsChecked, ClearFaultsChecked,
// Faults.AddChecked) validate node indices at the API boundary and are
// the right entry points when indices arrive from untrusted input —
// ftnetd (internal/server, started with "ftnet serve") serves Sessions
// over HTTP on exactly that contract.
//
// The internal packages contain the full machinery (bands, healthiness,
// pigeonhole cascades, expander baselines, experiment drivers, and the
// deterministic parallel Monte-Carlo engine); this package is the
// stable surface. See README.md for a tour and docs/ARCHITECTURE.md for
// the paper-to-package map and the engine's determinism contract.
package ftnet
