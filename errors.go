package ftnet

import "ftnet/internal/fterr"

// Code is the stable error code attached to every failure this module
// returns across a public boundary (the ftnet API, the ftnetd HTTP
// wire, the client SDK). Codes — not error strings — are the contract:
// each code carries a fixed retryability class and a fixed HTTP status,
// so programs branch on CodeOf(err) and stay correct as messages evolve.
type Code = fterr.Code

// The taxonomy. See the ARCHITECTURE "Errors & resilience" section for
// the full code -> class -> status table.
const (
	// CodeInvalid: malformed input (out-of-range node index, bad
	// parameter, undecodable body). Terminal.
	CodeInvalid = fterr.Invalid
	// CodeNotFound: the addressed resource does not exist. Terminal.
	CodeNotFound = fterr.NotFound
	// CodeNotTolerated: the fault pattern exceeds the construction's
	// tolerance (errors.Is(err, ErrNotTolerated) also reports it).
	// Terminal until the fault state heals.
	CodeNotTolerated = fterr.NotTolerated
	// CodeResyncRequired: incremental state can no longer be bridged
	// (delta-ring eviction, stale base). Recover with a full refetch.
	CodeResyncRequired = fterr.ResyncRequired
	// CodeConflict: the operation is valid but the current state or
	// configuration refuses it. Terminal.
	CodeConflict = fterr.Conflict
	// CodeUnavailable: transient condition (shutdown, overload). Retry
	// with backoff.
	CodeUnavailable = fterr.Unavailable
	// CodeInternal: a server-side invariant broke. Retry with backoff,
	// bounded.
	CodeInternal = fterr.Internal
	// CodeCorrupt: a payload failed integrity verification. Recover
	// with a full refetch.
	CodeCorrupt = fterr.Corrupt
	// CodeUnknown: no code information. Terminal (conservative).
	CodeUnknown = fterr.Unknown
)

// AllCodes lists every code in the taxonomy.
func AllCodes() []Code { return fterr.AllCodes() }

// CodeOf extracts the code from an error returned by this module: the
// outermost coded wrapper on the chain. Errors without a code report
// CodeUnknown; CodeOf(nil) is "".
func CodeOf(err error) Code { return fterr.CodeOf(err) }

// Retryable reports whether err's code permits acting again without new
// input — a plain retry (CodeUnavailable, CodeInternal) or a
// resync-then-retry (CodeResyncRequired, CodeCorrupt). Uncoded errors
// are not retryable.
func Retryable(err error) bool { return fterr.Retryable(err) }

// IsCode reports whether err carries the given code.
func IsCode(err error, code Code) bool { return fterr.Is(err, code) }
