// Adversary: stress the Theorem 3 host with worst-case fault patterns.
//
//	go run ./examples/adversary
//
// D^2_{n,k} guarantees tolerance of ANY k faults. This example throws six
// qualitatively different adversaries at the full budget (all must be
// tolerated), then keeps raising the fault count past the guarantee to
// locate the empirical breaking point of each adversary.
package main

import (
	"fmt"
	"log"

	"ftnet"
	"ftnet/internal/fault"
	"ftnet/internal/rng"
	"ftnet/internal/worstcase"
)

func main() {
	const (
		side   = 120
		budget = 64 // b = 4
	)
	host, err := ftnet.NewWorstCaseTorus(2, side, budget)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("host: %d nodes, degree %d, guaranteed capacity %d worst-case faults\n",
		host.HostNodes(), host.Degree(), host.Capacity())

	// The internal host shape drives the adversarial generators.
	wg, err := worstcase.NewGraph(worstcase.Params{D: 2, N: side, K: budget})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nat the guaranteed budget, every adversary must lose:")
	for _, pat := range fault.AllPatterns() {
		ok, err := attack(host, wg, pat, host.Capacity(), 7)
		if err != nil {
			log.Fatal(err)
		}
		status := "tolerated"
		if !ok {
			status = "NOT TOLERATED (Theorem 3 violated!)"
			defer log.Fatalf("guarantee violated by %v", pat)
		}
		fmt.Printf("  %-12s k=%-4d %s\n", pat, host.Capacity(), status)
	}

	fmt.Println("\nbeyond the guarantee (empirical margin, doubling until the host breaks):")
	for _, pat := range fault.AllPatterns() {
		k := host.Capacity()
		last := k
		for mult := 2; ; mult *= 2 {
			kk := host.Capacity() * mult
			if kk > host.HostNodes()/8 {
				break
			}
			ok, err := attack(host, wg, pat, kk, 11)
			if err != nil {
				log.Fatal(err)
			}
			if !ok {
				break
			}
			last = kk
		}
		fmt.Printf("  %-12s guaranteed %-5d still tolerated at %-6d (%.1fx margin)\n",
			pat, host.Capacity(), last, float64(last)/float64(host.Capacity()))
	}
}

// attack runs one adversarial pattern with k faults; false means the
// pattern defeated the host (only legitimate past the budget).
func attack(host *ftnet.WorstCaseTorus, wg *worstcase.Graph, pat fault.Pattern, k int, seed uint64) (bool, error) {
	set, err := fault.Adversarial(pat, wg.Shape, k, wg.P.B()+1, rng.New(seed))
	if err != nil {
		return false, err
	}
	faults := host.NewFaults()
	for _, v := range set.Slice() {
		faults.Add(v)
	}
	_, err = host.Extract(faults, nil)
	return err == nil, nil
}
