// Churn: keep a verified torus alive while faults arrive and get
// repaired.
//
//	go run ./examples/churn
//
// It opens an ftnet.Session on the Theorem 2 host and walks a short
// fault timeline — nodes failing, nodes coming back — re-embedding after
// every change. Each Reembed reuses everything the change left intact
// (cost tracks the fault footprint, not the host size) and still returns
// a fully verified embedding, bit-identical to a from-scratch
// extraction.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"ftnet"
)

func main() {
	host, err := ftnet.NewRandomFaultTorus(2, 400, 0.5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("host: %d nodes for a %dx%d torus, degree %d\n",
		host.HostNodes(), host.Side(), host.Side(), host.Degree())

	ses := host.NewSession()
	r := rand.New(rand.NewSource(7))
	var alive []int // faults we may later repair

	for step := 1; step <= 8; step++ {
		// Fail a few random nodes...
		var failed []int
		for i := 0; i < 3; i++ {
			failed = append(failed, r.Intn(host.HostNodes()))
		}
		ses.AddFaults(failed...)
		alive = append(alive, failed...)
		// ...and, from step 4 on, repair an older one.
		if step >= 4 {
			ses.ClearFaults(alive[0])
			alive = alive[1:]
		}

		emb, err := ses.Reembed()
		if ftnet.IsCode(err, ftnet.CodeNotTolerated) {
			// The typed outcome: terminal, but with a prescribed recovery —
			// the state must heal (repair faults) before a re-evaluation
			// can commit. The session keeps serving the last good state.
			fmt.Printf("step %d: %3d faults -> NOT tolerated (repair and retry)\n", step, ses.FaultCount())
			ses.ClearFaults(alive...)
			alive = alive[:0]
			continue
		}
		if err != nil {
			log.Fatalf("%v (code %s, retryable %v)", err, ftnet.CodeOf(err), ftnet.Retryable(err))
		}
		h00, _ := emb.HostOf(0, 0)
		fmt.Printf("step %d: %3d faults -> verified torus, guest (0,0) at host %d\n",
			step, ses.FaultCount(), h00)
	}

	// Full repair returns the embedding to the pristine default.
	ses.ClearFaults(alive...)
	emb, err := ses.Reembed()
	if err != nil {
		log.Fatal(err)
	}
	h00, _ := emb.HostOf(0, 0)
	fmt.Printf("all repaired: %d faults, guest (0,0) back at host %d\n", ses.FaultCount(), h00)
}
