// Command daemon is a minimal ftnetd client: it reports a burst of
// faults to a running daemon, reads back the committed embedding
// snapshot, verifies its checksum locally, repairs the faults, and
// prints the daemon's batching metrics.
//
// Start a daemon first:
//
//	ftnet serve -listen 127.0.0.1:8080 -topology id=main,d=2,side=64,eps=0.5
//
// then:
//
//	go run ./examples/daemon -addr http://127.0.0.1:8080 -topology main
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"

	"ftnet/internal/server"
)

func main() {
	addr := flag.String("addr", "http://127.0.0.1:8080", "daemon base URL")
	topo := flag.String("topology", "main", "topology id")
	flag.Parse()

	base := *addr + "/v1/topologies/" + *topo

	// Host parameters.
	var info struct {
		Side      int `json:"side"`
		Dims      int `json:"dims"`
		HostNodes int `json:"host_nodes"`
	}
	mustJSON("GET", base, nil, &info)
	fmt.Printf("topology %s: %d-dimensional side-%d torus on %d host nodes\n",
		*topo, info.Dims, info.Side, info.HostNodes)

	// Report a burst of well-separated faults; the response tells us
	// which committed generation covers them.
	nodes := []int{17, 5000, 20011, 33333}
	var state struct {
		Generation int64  `json:"generation"`
		FaultCount int    `json:"fault_count"`
		Checksum   string `json:"checksum"`
	}
	mustJSON("POST", base+"/faults", map[string]any{"nodes": nodes}, &state)
	fmt.Printf("reported %d faults -> generation %d (%d standing faults)\n",
		len(nodes), state.Generation, state.FaultCount)

	// Read the served embedding and verify its checksum locally.
	var emb struct {
		Generation int64  `json:"generation"`
		Checksum   string `json:"checksum"`
		Faults     []int  `json:"faults"`
		Map        []int  `json:"map"`
	}
	mustJSON("GET", base+"/embedding", nil, &emb)
	local := fmt.Sprintf("%016x", server.MapChecksum(emb.Map))
	fmt.Printf("embedding generation %d: %d guest nodes, %d faults avoided, checksum %s (local %s)\n",
		emb.Generation, len(emb.Map), len(emb.Faults), emb.Checksum, local)
	if local != emb.Checksum {
		log.Fatalf("served checksum does not match served map")
	}

	// Repair everything.
	mustJSON("DELETE", base+"/faults", map[string]any{"nodes": nodes}, &state)
	fmt.Printf("repaired -> generation %d (%d standing faults)\n", state.Generation, state.FaultCount)

	// Show the daemon's view of the batching.
	resp, err := http.Get(*addr + "/metrics")
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	text, _ := io.ReadAll(resp.Body)
	for _, line := range bytes.Split(text, []byte("\n")) {
		if bytes.HasPrefix(line, []byte("ftnetd_reembed_total")) ||
			bytes.HasPrefix(line, []byte("ftnetd_batch_mutations")) {
			fmt.Println(string(line))
		}
	}
}

func mustJSON(method, url string, body any, out any) {
	var rd io.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			log.Fatal(err)
		}
		rd = bytes.NewReader(data)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		log.Fatal(err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		log.Fatalf("%s %s: %v (is ftnetd running? start it with: ftnet serve)", method, url, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		log.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("%s %s: %d: %s", method, url, resp.StatusCode, data)
	}
	if err := json.Unmarshal(data, out); err != nil {
		log.Fatalf("%s %s: %v", method, url, err)
	}
}
