// Command daemon is a minimal ftnetd client: it reports a burst of
// faults to a running daemon, reads back the committed embedding
// snapshot, verifies its checksum locally, then exercises the fleet
// wire layer — a binary snapshot, a /watch subscription, and a
// ?since= delta that it applies and verifies against the watched
// commit — before repairing the faults and printing the daemon's
// batching metrics.
//
// Start a daemon first:
//
//	ftnet serve -listen 127.0.0.1:8080 -topology id=main,d=2,side=64,eps=0.5
//
// then:
//
//	go run ./examples/daemon -addr http://127.0.0.1:8080 -topology main
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"time"

	"ftnet/internal/server"
	"ftnet/internal/wire"
)

func main() {
	addr := flag.String("addr", "http://127.0.0.1:8080", "daemon base URL")
	topo := flag.String("topology", "main", "topology id")
	flag.Parse()

	base := *addr + "/v1/topologies/" + *topo

	// Host parameters.
	var info struct {
		Side      int `json:"side"`
		Dims      int `json:"dims"`
		HostNodes int `json:"host_nodes"`
	}
	mustJSON("GET", base, nil, &info)
	fmt.Printf("topology %s: %d-dimensional side-%d torus on %d host nodes\n",
		*topo, info.Dims, info.Side, info.HostNodes)

	// Report a burst of well-separated faults; the response tells us
	// which committed generation covers them.
	nodes := []int{17, 5000, 20011, 33333}
	var state struct {
		Generation int64  `json:"generation"`
		FaultCount int    `json:"fault_count"`
		Checksum   string `json:"checksum"`
	}
	mustJSON("POST", base+"/faults", map[string]any{"nodes": nodes}, &state)
	fmt.Printf("reported %d faults -> generation %d (%d standing faults)\n",
		len(nodes), state.Generation, state.FaultCount)

	// Read the served embedding and verify its checksum locally.
	var emb struct {
		Generation int64  `json:"generation"`
		Checksum   string `json:"checksum"`
		Faults     []int  `json:"faults"`
		Map        []int  `json:"map"`
	}
	mustJSON("GET", base+"/embedding", nil, &emb)
	local := fmt.Sprintf("%016x", server.MapChecksum(emb.Map))
	fmt.Printf("embedding generation %d: %d guest nodes, %d faults avoided, checksum %s (local %s)\n",
		emb.Generation, len(emb.Map), len(emb.Faults), emb.Checksum, local)
	if local != emb.Checksum {
		log.Fatalf("served checksum does not match served map")
	}

	// Fleet wire layer: fetch the same embedding as a compact binary
	// snapshot; this is the base the delta below applies to.
	snap, err := wire.DecodeSnapshot(mustWire("GET", base+"/embedding"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("binary snapshot: generation %d, checksum %016x\n",
		snap.Generation, snap.Checksum)

	// Subscribe to /watch before mutating: the stream opens with a
	// baseline "commit" for the current head, then pushes one event per
	// committed generation — no polling.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	watchReq, err := http.NewRequestWithContext(ctx, "GET", base+"/watch", nil)
	if err != nil {
		log.Fatal(err)
	}
	watchResp, err := http.DefaultClient.Do(watchReq)
	if err != nil {
		log.Fatal(err)
	}
	defer watchResp.Body.Close()
	events := bufio.NewScanner(watchResp.Body)

	// Repair everything; the commit shows up on the watch stream.
	mustJSON("DELETE", base+"/faults", map[string]any{"nodes": nodes}, &state)
	fmt.Printf("repaired -> generation %d (%d standing faults)\n", state.Generation, state.FaultCount)
	for events.Scan() {
		line := events.Bytes()
		if !bytes.HasPrefix(line, []byte("data: ")) {
			continue
		}
		var ev struct {
			Generation  int64 `json:"generation"`
			ChangedCols int   `json:"changed_cols"`
		}
		if err := json.Unmarshal(line[len("data: "):], &ev); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("watch: commit generation %d (%d columns changed)\n",
			ev.Generation, ev.ChangedCols)
		if ev.Generation >= state.Generation {
			break
		}
	}
	cancel()

	// Catch up from the pre-repair snapshot with a delta: only the
	// columns changed since its generation, applied and verified
	// against the head checksum. A 410 here would mean the generation
	// fell off the delta ring and the client must refetch in full.
	deltaBody := mustWire("GET", fmt.Sprintf("%s/embedding?since=%d", base, snap.Generation))
	delta, err := wire.DecodeDelta(deltaBody)
	if err != nil {
		log.Fatal(err)
	}
	head, err := wire.Apply(snap, delta)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("delta %d..%d: %d columns, %d bytes -> checksum %016x verified\n",
		delta.FromGeneration, delta.ToGeneration, len(delta.Cols),
		len(deltaBody), head.Checksum)

	// Show the daemon's view of the batching.
	resp, err := http.Get(*addr + "/metrics")
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	text, _ := io.ReadAll(resp.Body)
	for _, line := range bytes.Split(text, []byte("\n")) {
		if bytes.HasPrefix(line, []byte("ftnetd_reembed_total")) ||
			bytes.HasPrefix(line, []byte("ftnetd_batch_mutations")) {
			fmt.Println(string(line))
		}
	}
}

// mustWire fetches a binary-protocol payload (Accept negotiation).
func mustWire(method, url string) []byte {
	req, err := http.NewRequest(method, url, nil)
	if err != nil {
		log.Fatal(err)
	}
	req.Header.Set("Accept", wire.ContentType)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		log.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("%s %s: %d: %s", method, url, resp.StatusCode, data)
	}
	return data
}

func mustJSON(method, url string, body any, out any) {
	var rd io.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			log.Fatal(err)
		}
		rd = bytes.NewReader(data)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		log.Fatal(err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		log.Fatalf("%s %s: %v (is ftnetd running? start it with: ftnet serve)", method, url, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		log.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("%s %s: %d: %s", method, url, resp.StatusCode, data)
	}
	if err := json.Unmarshal(data, out); err != nil {
		log.Fatalf("%s %s: %v", method, url, err)
	}
}
