// Command daemon is a minimal ftnetd client built on the resilient SDK
// (ftnet/client): it reports a burst of faults, syncs the committed
// embedding (full fetch once, checksum-verified column deltas after),
// follows the /watch commit stream, repairs the faults, and prints the
// daemon's batching metrics and the SDK's recovery counters. Every
// request runs under the SDK's typed-error retry policy, so the example
// behaves correctly even against a daemon started with -chaos.
//
// Start a daemon first:
//
//	ftnet serve -listen 127.0.0.1:8080 -topology id=main,d=2,side=64,eps=0.5
//
// then:
//
//	go run ./examples/daemon -addr http://127.0.0.1:8080 -topology main
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"time"

	"ftnet"
	"ftnet/client"
)

func main() {
	addr := flag.String("addr", "http://127.0.0.1:8080", "daemon base URL")
	topo := flag.String("topology", "main", "topology id")
	flag.Parse()

	c, err := client.New(client.Options{BaseURL: *addr, Topology: *topo})
	if err != nil {
		log.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	// Host parameters.
	info, err := c.Info(ctx)
	if err != nil {
		log.Fatalf("info: %v (is ftnetd running? start it with: ftnet serve)", err)
	}
	fmt.Printf("topology %s: %d-dimensional side-%d torus on %d host nodes\n",
		*topo, info.Dims, info.Side, info.HostNodes)

	// Report a burst of well-separated faults; the returned state names
	// the committed generation that covers them. Errors are typed: a
	// not_tolerated outcome is a distinct, non-retryable code, not a
	// string to parse.
	nodes := []int{17, 5000, 20011, 33333}
	state, err := c.AddFaults(ctx, nodes...)
	if ftnet.IsCode(err, ftnet.CodeNotTolerated) {
		log.Fatalf("fault pattern exceeded the tolerance guarantee: %v", err)
	} else if err != nil {
		log.Fatalf("add faults: %v (code %s, retryable %v)", err, ftnet.CodeOf(err), ftnet.Retryable(err))
	}
	fmt.Printf("reported %d faults -> generation %d (%d standing faults)\n",
		len(nodes), state.Generation, state.FaultCount)

	// Sync the committed embedding. The SDK fetches the compact binary
	// snapshot and verifies its checksum before handing it over.
	snap, err := c.Sync(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("embedding generation %d: %d guest nodes, %d faults avoided, checksum %016x verified\n",
		snap.Generation, len(snap.Map), len(snap.Faults), snap.Checksum)

	// Subscribe to the commit stream before mutating: the watch opens
	// with a baseline commit, then pushes one event per committed
	// generation — reconnecting automatically if the connection drops.
	events := make(chan client.Event, 16)
	watchCtx, stopWatch := context.WithCancel(ctx)
	watchDone := make(chan error, 1)
	go func() {
		watchDone <- c.Watch(watchCtx, func(ev client.Event) error {
			events <- ev
			return nil
		})
	}()

	// Repair everything; the commit shows up on the watch stream.
	state, err = c.ClearFaults(ctx, nodes...)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("repaired -> generation %d (%d standing faults)\n", state.Generation, state.FaultCount)
	for ev := range events {
		kind := "commit"
		if ev.Resync {
			kind = "resync"
		}
		fmt.Printf("watch: %s generation %d (%d columns changed)\n", kind, ev.Generation, ev.ChangedCols)
		if ev.Generation >= state.Generation {
			break
		}
	}
	stopWatch()
	<-watchDone

	// Catch up incrementally: Sync now requests only the columns changed
	// since the held generation, applies them in place, and re-verifies
	// the map against the head checksum. A 410 (delta ring eviction)
	// would transparently fall back to a full refetch.
	head, err := c.Sync(ctx)
	if err != nil {
		log.Fatal(err)
	}
	stats := c.Stats()
	fmt.Printf("delta sync -> generation %d, checksum %016x (%d delta applies, %d full fetches, %d retries, %d resyncs)\n",
		head.Generation, head.Checksum, stats.DeltaApplies, stats.FullFetches, stats.Retries, stats.Resyncs)

	// Show the daemon's view of the batching.
	resp, err := http.Get(*addr + "/metrics")
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	text, _ := io.ReadAll(resp.Body)
	for _, line := range bytes.Split(text, []byte("\n")) {
		if bytes.HasPrefix(line, []byte("ftnetd_reembed_total")) ||
			bytes.HasPrefix(line, []byte("ftnetd_batch_mutations")) {
			fmt.Println(string(line))
		}
	}
}
