// Figures: regenerate the paper's Figure 1 and Figure 2 as ASCII art.
//
//	go run ./examples/figures
//
// Figure 1 shows bands on B^2_n winding to mask a fault cluster; Figure 2
// shows one row of the extracted torus crossing those bands with diagonal
// jumps (the '*' path shifts by b when it meets a band).
package main

import (
	"fmt"
	"log"

	"ftnet/internal/core"
	"ftnet/internal/fault"
	"ftnet/internal/viz"
)

func main() {
	p := core.Params{D: 2, W: 4, Pitch: 16, Scale: 1} // n=192, m=256, b=4
	g, err := core.NewGraph(p)
	if err != nil {
		log.Fatal(err)
	}

	// A small diagonal blob of faults, like the one Figure 1 masks.
	faults := fault.NewSet(g.NumNodes())
	faults.Add(g.NodeIndex(44, 40))
	faults.Add(g.NodeIndex(45, 41))
	faults.Add(g.NodeIndex(46, 41))
	faults.Add(g.NodeIndex(46, 42))

	res, err := g.ContainTorus(faults, core.ExtractOptions{CheckConsistency: true})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println(viz.Legend)
	fmt.Println()
	fmt.Println("Figure 1 - bands on B^2_n (paper p.374): straight far away, winding near the faults")
	rowLo, colLo := viz.FaultWindow(g, faults, 30, 72)
	fig1, err := viz.Bands(g, res.Bands, faults, rowLo, colLo, 30, 72)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(fig1)

	fmt.Println()
	fmt.Println("Figure 2 - obtaining a row from the unmasked part (paper p.374):")
	fmt.Println("the row runs horizontally and takes a +-b diagonal jump wherever a band blocks it")
	guestRow := jumpingRow(g, res, colLo, 72)
	fig2, err := viz.RowTrace(g, res.Bands, faults, res.Embedding, guestRow, colLo, 72, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(fig2)
}

// jumpingRow finds a guest row whose host image actually crosses a band
// within the rendered window (its host rows vary across columns).
func jumpingRow(g *core.Graph, res *core.Result, colLo, width int) int {
	numCols := g.NumCols
	n := g.P.N()
	for row := 0; row < n; row++ {
		first := res.Embedding.Map[row*numCols+colLo%n] / numCols
		for dc := 1; dc < width; dc++ {
			col := (colLo + dc) % n
			if res.Embedding.Map[row*numCols+col]/numCols != first {
				return row
			}
		}
	}
	return 0
}
