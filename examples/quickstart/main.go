// Quickstart: build the Theorem 2 host, break it, and get the torus back.
//
//	go run ./examples/quickstart
//
// It constructs B^2_n for a ~400-side torus, injects random node faults at
// the rate Theorem 2 tolerates (log^-6 n), extracts the fault-free torus,
// and shows that the extracted coordinates avoid every fault.
package main

import (
	"fmt"
	"log"

	"ftnet"
)

func main() {
	// A 2-dimensional torus with side at least 400 and at most 50% extra
	// nodes. The library rounds the side up to the nearest size with exact
	// tile divisibility.
	host, err := ftnet.NewRandomFaultTorus(2, 400, 0.5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("host: %d nodes for a %dx%d torus (eps=%.2f), degree %d\n",
		host.HostNodes(), host.Side(), host.Side(), host.Eps(), host.Degree())

	// Fail every node independently with the probability the paper's
	// Theorem 2 assumes.
	p := host.TheoremFailureProb()
	faults := host.InjectRandom(42, p)
	fmt.Printf("injected %d random faults at p = %.2e\n", faults.Count(), p)

	// Extract the fault-free torus. The embedding returned has already
	// been verified: injective, away from faults, every torus edge on a
	// real host edge.
	emb, err := host.Extract(faults)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("extracted a verified %dx%d torus\n", emb.Side, emb.Side)

	// Where did the logical node (0, 0) land? And its right neighbor?
	h00, _ := emb.HostOf(0, 0)
	h01, _ := emb.HostOf(0, 1)
	fmt.Printf("guest (0,0) -> host node %d; guest (0,1) -> host node %d\n", h00, h01)

	// The image avoids every fault, demonstrably.
	for _, f := range faults.Nodes() {
		for _, h := range emb.Map {
			if h == f {
				log.Fatalf("embedding used faulty node %d", f)
			}
		}
	}
	fmt.Println("checked: no faulty node appears in the embedding")
}
