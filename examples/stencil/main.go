// Stencil: run a parallel computation on the torus extracted from a
// faulty host, and check it against a pristine machine.
//
//	go run ./examples/stencil
//
// This is the paper's motivating scenario end to end: a massively parallel
// machine is built as B^2_n, some processors turn out faulty, the torus is
// reconfigured around them, and then actual work — a Jacobi heat-diffusion
// stencil, an all-reduce, and a routed permutation — runs on the surviving
// machine exactly as it would on a fault-free one.
package main

import (
	"fmt"
	"log"

	"ftnet/internal/core"
	"ftnet/internal/fault"
	"ftnet/internal/parsim"
	"ftnet/internal/rng"
)

func main() {
	// Build the host and break 20 random processors.
	params := core.Params{D: 2, W: 6, Pitch: 18, Scale: 1} // 432x432 logical torus
	g, err := core.NewGraph(params)
	if err != nil {
		log.Fatal(err)
	}
	faults := fault.NewSet(g.NumNodes())
	if err := faults.ExactRandom(rng.New(2024), 20); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("host: %d processors, %d faulty\n", g.NumNodes(), faults.Count())

	// Reconfigure: mask the faults with bands and extract the torus.
	res, err := g.ContainTorus(faults, core.ExtractOptions{})
	if err != nil {
		log.Fatal(err)
	}
	machine, err := parsim.New(res.Embedding, core.NewHostView(g, faults, nil))
	if err != nil {
		log.Fatal(err)
	}
	ideal := parsim.NewIdeal(machine.Shape)
	fmt.Printf("reconfigured machine: %d logical processors on fault-free hardware\n", machine.P())

	// Workload 1: Jacobi heat diffusion from a hot corner.
	field := make([]float64, machine.P())
	field[0] = 1000
	got, err := machine.Stencil(field, 50, 0.8)
	if err != nil {
		log.Fatal(err)
	}
	want, err := ideal.Stencil(field, 50, 0.8)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("jacobi(50 steps): max deviation from pristine torus = %v\n", parsim.MaxDiff(got, want))

	// Workload 2: global reduction.
	vals := make([]float64, machine.P())
	for i := range vals {
		vals[i] = 1
	}
	sum, steps, err := machine.AllReduceSum(vals)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("all-reduce: sum=%v (want %d) in %d synchronous steps\n", sum, machine.P(), steps)

	// Workload 3: a random permutation routed dimension-ordered.
	perm := rng.New(7).Perm(machine.P())
	st, err := machine.Permutation(perm)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("random permutation: %d packets, avg %.1f hops, max link load %d\n",
		st.Packets, st.AvgHops, st.MaxLink)

	// Workload 4: Cannon's matrix multiplication (one element per
	// processor), checked against a direct multiply.
	n := machine.Shape[0]
	r := rng.New(99)
	a := make([]float64, n*n)
	bm := make([]float64, n*n)
	for i := range a {
		a[i] = r.Float64()
		bm[i] = r.Float64()
	}
	c, commSteps, err := machine.Cannon(a, bm)
	if err != nil {
		log.Fatal(err)
	}
	ref := parsim.MatMulReference(a, bm, n)
	fmt.Printf("cannon %dx%d matmul: max deviation from direct multiply = %.2e (%d comm steps)\n",
		n, n, parsim.MaxDiff(c, ref), commSteps)
}
