// Waferscale: manufacturing-yield scenario for the Theorem 1 host.
//
//	go run ./examples/waferscale
//
// Wafer-scale integration is the paper's motivating setting: on a huge die
// some constant fraction of processors is defective at fabrication time.
// A^2_n pays a constant factor c in silicon and O(log log N) wiring per
// node, and in exchange every wafer that passes the (high-probability)
// reconfiguration step ships a full nxn torus.
//
// This example "fabricates" a batch of wafers with a 12% defect rate and
// reports the yield and the reconfiguration outcome per wafer.
package main

import (
	"fmt"
	"log"

	"ftnet"
)

func main() {
	const (
		defectRate = 0.12
		redundancy = 2.5 // must exceed 1/(1-p) ~ 1.14
		wafers     = 8
	)
	host, err := ftnet.NewCliqueTorus(2, 300, defectRate, 0, redundancy)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wafer design: %d processors for a %dx%d torus\n", host.HostNodes(), host.Side(), host.Side())
	fmt.Printf("  supernode size h=%d, per-processor links %d (Theta(log log N))\n",
		host.SupernodeSize(), host.Degree())
	fmt.Printf("  silicon overhead: %.2fx the logical torus\n", host.Redundancy())

	good := 0
	for wafer := 0; wafer < wafers; wafer++ {
		seed := uint64(1000 + wafer)
		emb, err := host.ExtractRandom(seed, defectRate)
		switch {
		case err == nil:
			good++
			fmt.Printf("wafer %d: reconfigured OK (%d logical nodes mapped)\n", wafer, len(emb.Map))
		case ftnet.IsCode(err, ftnet.CodeNotTolerated):
			// The typed outcome: a distinct, terminal error code — the
			// defect pattern broke the tolerance guarantee, this wafer
			// cannot be reconfigured. Not a bug, not retryable: scrap it.
			fmt.Printf("wafer %d: defect pattern not reconfigurable (scrap)\n", wafer)
		default:
			log.Fatalf("wafer %d: %v (code %s, retryable %v)", wafer, err, ftnet.CodeOf(err), ftnet.Retryable(err))
		}
	}
	fmt.Printf("yield: %d/%d wafers at %.0f%% defect rate\n", good, wafers, defectRate*100)
}
