package ftnet

import (
	"errors"
	"fmt"

	"ftnet/internal/core"
	"ftnet/internal/embed"
	"ftnet/internal/fault"
	"ftnet/internal/fterr"
	"ftnet/internal/rng"
	"ftnet/internal/supernode"
	"ftnet/internal/validate"
	"ftnet/internal/worstcase"
)

// Faults is a set of faulty host nodes.
type Faults struct {
	set *fault.Set
}

// Count returns the number of faulty nodes.
func (f *Faults) Count() int { return f.set.Count() }

// Len returns the universe size: host node indices are valid in [0, Len).
func (f *Faults) Len() int { return f.set.Len() }

// Has reports whether host node v is faulty.
func (f *Faults) Has(v int) bool { return f.set.Has(v) }

// checkNode validates a host node index against the universe [0, n).
// The bitset underneath would not catch every bad index itself: a
// negative index panics with an unhelpful slice error, and an index in
// the padding of the last word is silently absorbed, corrupting Count.
func checkNode(v, n int) error {
	if v < 0 || v >= n {
		return fterr.New(fterr.Invalid, "ftnet", "host node %d out of range [0, %d)", v, n)
	}
	return nil
}

// AddChecked marks host node v faulty, rejecting out-of-range indices.
// Adding an already-faulty node is a no-op.
func (f *Faults) AddChecked(v int) error {
	if err := checkNode(v, f.set.Len()); err != nil {
		return err
	}
	f.set.Add(v)
	return nil
}

// Add marks host node v faulty. It panics on an out-of-range index; use
// AddChecked when the index comes from untrusted input.
func (f *Faults) Add(v int) {
	if err := f.AddChecked(v); err != nil {
		panic(err)
	}
}

// Nodes returns the faulty node indices in increasing order.
func (f *Faults) Nodes() []int { return f.set.Slice() }

// Embedding maps each node of the guest d-dimensional n-torus (or mesh)
// to a host node. It is returned only after independent verification.
type Embedding struct {
	// Side is the guest side length n.
	Side int
	// Dims is the guest dimension d.
	Dims int
	// Map lists the host node for each guest node in row-major order
	// (the last coordinate varies fastest).
	Map []int

	inner *embed.Embedding
}

// HostOf returns the host node for the guest node with the given
// coordinates (each in [0, Side)).
func (e *Embedding) HostOf(coord ...int) (int, error) {
	if len(coord) != e.Dims {
		return 0, fterr.New(fterr.Invalid, "ftnet.HostOf", "%d coordinates for a %d-dimensional guest", len(coord), e.Dims)
	}
	idx := 0
	for _, c := range coord {
		if c < 0 || c >= e.Side {
			return 0, fterr.New(fterr.Invalid, "ftnet.HostOf", "coordinate %d out of [0,%d)", c, e.Side)
		}
		idx = idx*e.Side + c
	}
	return e.Map[idx], nil
}

func wrapEmbedding(inner *embed.Embedding, side, dims int) *Embedding {
	return &Embedding{Side: side, Dims: dims, Map: inner.Map, inner: inner}
}

// Mesh restricts a torus embedding to the n x ... x n mesh (a subgraph of
// the torus, per the paper's "and hence a fault-free mesh"). Works on the
// result of any construction's Extract.
func (e *Embedding) Mesh() (*Embedding, error) {
	mesh, err := e.inner.MeshRestriction()
	if err != nil {
		return nil, err
	}
	return wrapEmbedding(mesh, e.Side, e.Dims), nil
}

// ErrNotTolerated reports that a fault pattern exceeded what the
// construction tolerates. For the random-fault constructions this is the
// low-probability failure event of Theorems 1-2; for the worst-case
// construction it means the fault budget k was exceeded. It is a coded
// sentinel: errors.Is identifies it through wrapping, and CodeOf reads
// CodeNotTolerated off the same chain (terminal — the state must heal
// before a retry can succeed).
var ErrNotTolerated error = &fterr.E{Code: fterr.NotTolerated, Op: "ftnet", Msg: "fault pattern not tolerated"}

func classify(err error) error {
	if err == nil {
		return nil
	}
	var ue *core.UnhealthyError
	if errors.As(err, &ue) {
		return fmt.Errorf("%w: %v", ErrNotTolerated, err)
	}
	return err
}

// ---------------------------------------------------------------------------
// RandomFaultTorus: Theorem 2.

// RandomFaultTorus is the host B^d_n: a slightly stretched torus with
// vertical and diagonal jump edges, degree 6d-2.
type RandomFaultTorus struct {
	g *core.Graph
}

// NewRandomFaultTorus builds a host for the d-dimensional torus with side
// at least minSide and node redundancy at most maxEps (host nodes <=
// (1+maxEps) n^d). Use Side() for the exact side chosen.
func NewRandomFaultTorus(d, minSide int, maxEps float64) (*RandomFaultTorus, error) {
	p, err := core.FitParams(d, minSide, maxEps)
	if err != nil {
		return nil, err
	}
	g, err := core.NewGraph(p)
	if err != nil {
		return nil, err
	}
	return &RandomFaultTorus{g: g}, nil
}

// Side returns the guest torus side n.
func (t *RandomFaultTorus) Side() int { return t.g.P.N() }

// Dims returns d.
func (t *RandomFaultTorus) Dims() int { return t.g.P.D }

// HostNodes returns the host node count, at most (1+eps) n^d.
func (t *RandomFaultTorus) HostNodes() int { return t.g.NumNodes() }

// Degree returns the uniform host degree 6d-2.
func (t *RandomFaultTorus) Degree() int { return t.g.Degree() }

// Eps returns the realized node-redundancy constant.
func (t *RandomFaultTorus) Eps() float64 { return t.g.P.Eps() }

// TheoremFailureProb returns log^{-3d}(n), the failure probability under
// which Theorem 2 guarantees survival w.h.p.
func (t *RandomFaultTorus) TheoremFailureProb() float64 { return t.g.P.TheoremFailureProb() }

// NewFaults returns an empty fault set over the host nodes.
func (t *RandomFaultTorus) NewFaults() *Faults {
	return &Faults{set: fault.NewSet(t.g.NumNodes())}
}

// AnchorRotatingFault returns the smallest host node whose lone fault
// makes a cold extraction rotate the embedding anchor — the scenario in
// which an incremental Session must re-arm its locality fast path to
// keep serving warm column deltas. It returns -1 when no single node
// rotates this host. Intended for regression tests, chaos drivers and
// benchmarks that need a deterministic rotating fault; the scan runs up
// to one full extraction per candidate node.
func (t *RandomFaultTorus) AnchorRotatingFault() int { return t.g.FindAnchorRotatingFault() }

// InjectRandom returns a fault set where each host node failed
// independently with probability p, drawn deterministically from seed.
func (t *RandomFaultTorus) InjectRandom(seed uint64, p float64) *Faults {
	f := t.NewFaults()
	f.set.Bernoulli(rng.New(seed), p)
	return f
}

// Extract masks the faults with bands and extracts a verified fault-free
// n-torus. It returns ErrNotTolerated (wrapped) when the pattern exceeds
// the construction's tolerance.
func (t *RandomFaultTorus) Extract(f *Faults) (*Embedding, error) {
	res, err := t.g.ContainTorus(f.set, core.ExtractOptions{})
	if err != nil {
		return nil, classify(err)
	}
	return wrapEmbedding(res.Embedding, t.Side(), t.Dims()), nil
}

// ExtractMesh is Extract restricted to the n x ... x n mesh (whose edges
// are a subset of the torus's, so the same node map serves).
func (t *RandomFaultTorus) ExtractMesh(f *Faults) (*Embedding, error) {
	emb, err := t.Extract(f)
	if err != nil {
		return nil, err
	}
	mesh, err := emb.inner.MeshRestriction()
	if err != nil {
		return nil, err
	}
	return wrapEmbedding(mesh, t.Side(), t.Dims()), nil
}

// Healthy reports whether the fault pattern satisfies the paper's
// Lemma 4 healthiness conditions (a diagnostic; Extract uses its own,
// constructive criteria).
func (t *RandomFaultTorus) Healthy(f *Faults) bool {
	return t.g.CheckHealth(f.set).Healthy()
}

// Session maintains a long-lived torus embedding over a fault set that
// changes in place — nodes fail, links flap, both get repaired —
// re-deriving on each Reembed only the work the mutations since the
// previous Reembed actually invalidated (the bidirectional
// delta-evaluation engine, internal/core.Session). Results are
// bit-identical to a from-scratch Extract of the same fault set; only
// the cost differs: a Reembed after a small change costs O(fault
// footprint), not O(host size).
//
// Edge faults follow the paper's Theorem 2 reduction: each faulty edge
// is charged to its canonical endpoint (fault.Charger), and the session
// evaluates the *effective* node set — user node faults plus charged
// endpoints. The embedding therefore avoids every charged node, hence
// every host edge incident to one, hence every faulty edge; and because
// the charge rule is a pure function of the fault sets, any mutation
// order producing the same sets yields a bit-identical embedding.
//
// A Session is not safe for concurrent use. Embeddings returned by
// Reembed are stable snapshots (they do not alias the session) and stay
// valid after further mutations.
type Session struct {
	t       *RandomFaultTorus
	sc      *core.Scratch
	ses     *core.Session
	charger *fault.Charger
	delta   []int
}

// NewSession starts a session on the fault-free host.
func (t *RandomFaultTorus) NewSession() *Session {
	sc := core.NewScratch(1)
	return &Session{
		t:       t,
		sc:      sc,
		ses:     t.g.NewSession(sc, core.ExtractOptions{}),
		charger: fault.NewCharger(t.g.NumNodes()),
	}
}

// AddFaultsChecked marks host nodes faulty, rejecting the whole batch if
// any index is out of range: either every node is applied or none is, so
// a malformed wire request cannot leave the session half-mutated.
// Already-faulty nodes are ignored.
func (s *Session) AddFaultsChecked(nodes ...int) error {
	n := s.t.g.NumNodes()
	for _, v := range nodes {
		if err := checkNode(v, n); err != nil {
			return err
		}
	}
	s.delta = s.delta[:0]
	for _, v := range nodes {
		if _, eff := s.charger.AddNode(v); eff >= 0 {
			s.delta = append(s.delta, eff)
		}
	}
	s.ses.NoteAdded(s.delta)
	return nil
}

// AddFaults marks host nodes faulty. Already-faulty nodes are ignored.
// It panics on an out-of-range index; use AddFaultsChecked when the
// indices come from untrusted input.
func (s *Session) AddFaults(nodes ...int) {
	if err := s.AddFaultsChecked(nodes...); err != nil {
		panic(err)
	}
}

// ClearFaultsChecked marks host nodes repaired, rejecting the whole
// batch if any index is out of range (all-or-nothing, like
// AddFaultsChecked). Already-healthy nodes are ignored.
func (s *Session) ClearFaultsChecked(nodes ...int) error {
	n := s.t.g.NumNodes()
	for _, v := range nodes {
		if err := checkNode(v, n); err != nil {
			return err
		}
	}
	s.delta = s.delta[:0]
	for _, v := range nodes {
		if _, eff := s.charger.ClearNode(v); eff >= 0 {
			s.delta = append(s.delta, eff)
		}
	}
	s.ses.NoteCleared(s.delta)
	return nil
}

// ClearFaults marks host nodes repaired. Already-healthy nodes are
// ignored. It panics on an out-of-range index; use ClearFaultsChecked
// when the indices come from untrusted input.
func (s *Session) ClearFaults(nodes ...int) {
	if err := s.ClearFaultsChecked(nodes...); err != nil {
		panic(err)
	}
}

// AddEdgeFaultsChecked marks host edges faulty, each given as a {u, v}
// endpoint pair in either order. The whole batch is rejected — nothing
// applied — if any pair is out of range, a self-loop, or not an edge of
// the host (all-or-nothing, like AddFaultsChecked). Already-faulty
// edges are ignored. Each new faulty edge is charged to its canonical
// endpoint; the next Reembed routes around it.
func (s *Session) AddEdgeFaultsChecked(edges ...[2]int) error {
	if err := s.checkEdges(edges); err != nil {
		return err
	}
	s.delta = s.delta[:0]
	for _, e := range edges {
		if _, eff := s.charger.AddEdge(e[0], e[1]); eff >= 0 {
			s.delta = append(s.delta, eff)
		}
	}
	s.ses.NoteAdded(s.delta)
	return nil
}

// ClearEdgeFaultsChecked marks host edges repaired (all-or-nothing,
// validated like AddEdgeFaultsChecked). Already-healthy edges are
// ignored. An endpoint stays effectively faulty while other faulty
// edges still charge it or the node itself was reported faulty.
func (s *Session) ClearEdgeFaultsChecked(edges ...[2]int) error {
	if err := s.checkEdges(edges); err != nil {
		return err
	}
	s.delta = s.delta[:0]
	for _, e := range edges {
		if _, eff := s.charger.ClearEdge(e[0], e[1]); eff >= 0 {
			s.delta = append(s.delta, eff)
		}
	}
	s.ses.NoteCleared(s.delta)
	return nil
}

// checkEdges validates a batch of edge endpoint pairs without mutating
// anything: every endpoint in range, no self-loops, every pair adjacent
// in the host. Each failure is a terminal CodeInvalid error.
func (s *Session) checkEdges(edges [][2]int) error {
	n := s.t.g.NumNodes()
	for _, e := range edges {
		if err := validate.Edge("edge fault", e[0], e[1], n, s.t.g.Adjacent); err != nil {
			return err
		}
	}
	return nil
}

// Adjacent reports whether host nodes u and v are connected by a host
// edge — the precondition for reporting {u, v} as an edge fault.
// Out-of-range indices are simply not adjacent.
func (s *Session) Adjacent(u, v int) bool {
	n := s.t.g.NumNodes()
	if u < 0 || u >= n || v < 0 || v >= n {
		return false
	}
	return s.t.g.Adjacent(u, v)
}

// FaultCount returns the current number of faulty nodes (user-reported;
// endpoints charged by edge faults are not counted).
func (s *Session) FaultCount() int { return s.charger.Nodes().Count() }

// EdgeFaultCount returns the current number of faulty edges.
func (s *Session) EdgeFaultCount() int { return s.charger.Edges().Count() }

// HostNodes returns the host node count; indices in [0, HostNodes) are
// the valid inputs to AddFaults and ClearFaults.
func (s *Session) HostNodes() int { return s.t.g.NumNodes() }

// Faulty reports whether host node v is currently faulty (user-reported;
// use EdgeFaulty for links).
func (s *Session) Faulty(v int) bool { return s.charger.Nodes().Has(v) }

// EdgeFaulty reports whether the host edge {u, v} is currently faulty
// (either endpoint order).
func (s *Session) EdgeFaulty(u, v int) bool { return s.charger.Edges().Has(u, v) }

// FaultNodes returns the currently faulty host nodes in increasing
// order, as a fresh slice. Only user-reported node faults are listed;
// endpoints charged by edge faults are an evaluation detail.
func (s *Session) FaultNodes() []int { return s.charger.Nodes().Slice() }

// FaultEdges returns the currently faulty host edges as {u, v} pairs
// with u < v, sorted lexicographically, as a fresh slice.
func (s *Session) FaultEdges() [][2]int {
	es := s.charger.Edges().Slice()
	out := make([][2]int, len(es))
	for i, e := range es {
		out[i] = [2]int{e.U, e.V}
	}
	return out
}

// Reembed extracts and verifies a fault-free torus for the current fault
// set, reusing the previous embedding wherever the mutations left it
// intact. It returns ErrNotTolerated (wrapped) when the pattern exceeds
// the construction's tolerance; the session stays usable — clear some
// faults and Reembed again.
func (s *Session) Reembed() (*Embedding, error) {
	res, err := s.ses.Eval(s.charger.Effective())
	if err != nil {
		return nil, classify(err)
	}
	// The result aliases the session's scratch; hand out a stable copy.
	inner := &embed.Embedding{
		Guest: res.Embedding.Guest,
		Map:   append([]int(nil), res.Embedding.Map...),
	}
	return wrapEmbedding(inner, s.t.Side(), s.t.Dims()), nil
}

// EmbeddingDelta describes how an embedding differs from the previous
// successful Reembed, in guest-column granularity (guest nodes j*C+z
// share column z, where C = Side^(Dims-1)).
type EmbeddingDelta struct {
	// Cols lists, sorted and deduplicated, the guest columns whose map
	// entries may have changed — a superset of the truly changed columns
	// (compare maps to filter exactly). Nil when Full is set.
	Cols []int
	// Full marks a non-incremental rewrite (first Reembed, or an engine
	// fallback that rebuilt the whole embedding): every column may have
	// changed.
	Full bool
}

// ReembedDelta is Reembed plus change accounting: it additionally
// reports which guest columns of the returned embedding may differ from
// the previous *successful* ReembedDelta/Reembed result. The accounting
// spans failed Reembeds in between — columns touched while evaluating a
// rejected fault set are included — so the delta is always sufficient to
// patch the previously returned embedding into the new one.
func (s *Session) ReembedDelta() (*Embedding, *EmbeddingDelta, error) {
	emb, err := s.Reembed()
	if err != nil {
		return nil, nil, err
	}
	cols32, full := s.ses.DrainDelta()
	d := &EmbeddingDelta{Full: full}
	if !full {
		d.Cols = make([]int, len(cols32))
		for i, z := range cols32 {
			d.Cols[i] = int(z)
		}
	}
	return emb, d, nil
}

// ---------------------------------------------------------------------------
// CliqueTorus: Theorem 1.

// CliqueTorus is the host A^d_n: supernode cliques over a RandomFaultTorus,
// degree O(log log N), surviving constant failure probabilities.
type CliqueTorus struct {
	g *supernode.Graph
}

// NewCliqueTorus builds a host for the d-dimensional torus with side at
// least minSide, sized for node-failure probability p, edge-failure
// probability q, and node redundancy c (which must exceed 1/(1-p)).
func NewCliqueTorus(d, minSide int, p, q, c float64) (*CliqueTorus, error) {
	params, err := supernode.FitParams(d, minSide, p, q, c)
	if err != nil {
		return nil, err
	}
	g, err := supernode.NewGraph(params)
	if err != nil {
		return nil, err
	}
	return &CliqueTorus{g: g}, nil
}

// Side returns the guest torus side n.
func (t *CliqueTorus) Side() int { return t.g.P.Side() }

// Dims returns d.
func (t *CliqueTorus) Dims() int { return t.g.P.Base.D }

// HostNodes returns the host node count c*n^d.
func (t *CliqueTorus) HostNodes() int { return t.g.NumNodes() }

// Degree returns the uniform host degree, Theta(log log N).
func (t *CliqueTorus) Degree() int { return t.g.P.Degree() }

// SupernodeSize returns h.
func (t *CliqueTorus) SupernodeSize() int { return t.g.P.H }

// Redundancy returns the realized constant c with |host| = c n^d.
func (t *CliqueTorus) Redundancy() float64 { return t.g.P.C() }

// ExtractRandom draws node faults with probability p and edge faults with
// the construction's q (both from seed), then embeds and verifies the
// n-torus. Returns ErrNotTolerated (wrapped) on the low-probability
// failure event.
func (t *CliqueTorus) ExtractRandom(seed uint64, p float64) (*Embedding, error) {
	fs := t.g.NewFaultState(seed, p, rng.New(seed))
	emb, _, err := t.g.Embed(fs)
	if err != nil {
		return nil, classify(err)
	}
	return wrapEmbedding(emb, t.Side(), t.Dims()), nil
}

// ---------------------------------------------------------------------------
// WorstCaseTorus: Theorem 3.

// WorstCaseTorus is the host D^d_{n,k}: a torus with per-dimension jump
// edges, degree 4d, tolerating any k node and edge faults.
type WorstCaseTorus struct {
	g *worstcase.Graph
}

// NewWorstCaseTorus builds a host for the d-dimensional torus with side at
// least minSide tolerating any k faults. Use Side() for the exact side.
func NewWorstCaseTorus(d, minSide, k int) (*WorstCaseTorus, error) {
	g, err := worstcase.NewGraph(worstcase.Params{D: d, N: minSide, K: k})
	if err != nil {
		return nil, err
	}
	return &WorstCaseTorus{g: g}, nil
}

// Side returns the guest torus side n.
func (t *WorstCaseTorus) Side() int { return t.g.P.Side() }

// Dims returns d.
func (t *WorstCaseTorus) Dims() int { return t.g.P.D }

// HostNodes returns the host node count m^d.
func (t *WorstCaseTorus) HostNodes() int { return t.g.NumNodes() }

// Degree returns the uniform host degree 4d.
func (t *WorstCaseTorus) Degree() int { return t.g.P.Degree() }

// Capacity returns the provable worst-case fault budget (>= the requested k).
func (t *WorstCaseTorus) Capacity() int { return t.g.P.Capacity() }

// NewFaults returns an empty fault set over the host nodes.
func (t *WorstCaseTorus) NewFaults() *Faults {
	return &Faults{set: fault.NewSet(t.g.NumNodes())}
}

// Extract masks the node faults (plus optional faulty edges, each given as
// a [2]int host pair) and extracts a verified fault-free n-torus. Any
// fault set within Capacity() succeeds; the returned error otherwise
// wraps ErrNotTolerated.
func (t *WorstCaseTorus) Extract(f *Faults, faultyEdges [][2]int) (*Embedding, error) {
	emb, _, err := t.g.Tolerate(f.set, faultyEdges)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrNotTolerated, err)
	}
	return wrapEmbedding(emb, t.Side(), t.Dims()), nil
}

// HostCoord converts a host node index to coordinates on the host torus.
func (t *WorstCaseTorus) HostCoord(v int) []int {
	return t.g.Shape.Coord(v, nil)
}

// HostIndex converts host coordinates to a node index.
func (t *WorstCaseTorus) HostIndex(coord ...int) int {
	return t.g.Shape.Index(coord)
}
