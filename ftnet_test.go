package ftnet

import (
	"errors"
	"testing"
)

func TestRandomFaultTorusRoundtrip(t *testing.T) {
	host, err := NewRandomFaultTorus(2, 150, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if host.Side() < 150 || host.Dims() != 2 {
		t.Fatalf("side=%d dims=%d", host.Side(), host.Dims())
	}
	if host.Degree() != 10 {
		t.Errorf("degree = %d, want 10", host.Degree())
	}
	n := float64(host.Side())
	if got := float64(host.HostNodes()); got > (1+host.Eps())*n*n+1 {
		t.Errorf("host nodes %v exceed (1+eps)n^2", got)
	}
	faults := host.InjectRandom(7, host.TheoremFailureProb())
	emb, err := host.Extract(faults)
	if err != nil {
		t.Fatal(err)
	}
	if len(emb.Map) != host.Side()*host.Side() {
		t.Errorf("embedding size %d", len(emb.Map))
	}
	if _, err := emb.HostOf(0, 0); err != nil {
		t.Errorf("HostOf: %v", err)
	}
	if _, err := emb.HostOf(0); err == nil {
		t.Error("HostOf with wrong arity should fail")
	}
	if _, err := emb.HostOf(-1, 0); err == nil {
		t.Error("HostOf out of range should fail")
	}
}

func TestRandomFaultTorusNotTolerated(t *testing.T) {
	host, err := NewRandomFaultTorus(2, 150, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	faults := host.InjectRandom(3, 0.05) // far beyond tolerance
	_, err = host.Extract(faults)
	if err == nil {
		t.Skip("lucky pattern survived")
	}
	if !errors.Is(err, ErrNotTolerated) {
		t.Fatalf("expected ErrNotTolerated, got %v", err)
	}
}

func TestExtractMesh(t *testing.T) {
	host, err := NewRandomFaultTorus(2, 150, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	faults := host.NewFaults()
	faults.Add(1234)
	torusEmb, err := host.Extract(faults)
	if err != nil {
		t.Fatal(err)
	}
	meshEmb, err := host.ExtractMesh(faults)
	if err != nil {
		t.Fatal(err)
	}
	// Same node map (mesh edges are a subset of torus edges).
	for i := range torusEmb.Map {
		if torusEmb.Map[i] != meshEmb.Map[i] {
			t.Fatalf("mesh map differs from torus map at %d", i)
		}
	}
}

func TestRandomFaultTorusHealthy(t *testing.T) {
	host, err := NewRandomFaultTorus(2, 150, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if !host.Healthy(host.NewFaults()) {
		t.Error("fault-free host unhealthy")
	}
}

func TestFaultsAPI(t *testing.T) {
	host, _ := NewRandomFaultTorus(2, 150, 0.5)
	f := host.NewFaults()
	f.Add(10)
	f.Add(10)
	f.Add(20)
	if f.Count() != 2 || !f.Has(10) || f.Has(11) {
		t.Error("Faults basic ops wrong")
	}
	nodes := f.Nodes()
	if len(nodes) != 2 || nodes[0] != 10 || nodes[1] != 20 {
		t.Errorf("Nodes = %v", nodes)
	}
}

func TestCliqueTorusRoundtrip(t *testing.T) {
	host, err := NewCliqueTorus(2, 300, 0.1, 0, 2.5)
	if err != nil {
		t.Fatal(err)
	}
	if host.Side() < 300 {
		t.Fatalf("side %d", host.Side())
	}
	if host.Redundancy() <= 1/(1-0.1) {
		t.Errorf("redundancy %v too small", host.Redundancy())
	}
	emb, err := host.ExtractRandom(11, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if len(emb.Map) != host.Side()*host.Side() {
		t.Errorf("embedding size %d", len(emb.Map))
	}
	if host.SupernodeSize() < 4 {
		t.Errorf("supernode size %d", host.SupernodeSize())
	}
}

func TestCliqueTorusRejectsBadC(t *testing.T) {
	if _, err := NewCliqueTorus(2, 300, 0.5, 0, 1.5); err == nil {
		t.Error("c < 1/(1-p) accepted")
	}
}

func TestWorstCaseTorusRoundtrip(t *testing.T) {
	host, err := NewWorstCaseTorus(2, 80, 27)
	if err != nil {
		t.Fatal(err)
	}
	if host.Capacity() < 27 || host.Degree() != 8 {
		t.Fatalf("capacity=%d degree=%d", host.Capacity(), host.Degree())
	}
	faults := host.NewFaults()
	// Full budget of clustered faults plus a faulty edge.
	for i := 0; i < host.Capacity()-1; i++ {
		faults.Add(host.HostIndex(10+i/5, 10+i%5))
	}
	u := host.HostIndex(40, 40)
	v := host.HostIndex(40, 41)
	emb, err := host.Extract(faults, [][2]int{{u, v}})
	if err != nil {
		t.Fatal(err)
	}
	if len(emb.Map) != host.Side()*host.Side() {
		t.Errorf("embedding size %d", len(emb.Map))
	}
	// Host coordinate helpers roundtrip.
	c := host.HostCoord(u)
	if host.HostIndex(c...) != u {
		t.Error("HostCoord/HostIndex roundtrip failed")
	}
}

func TestWorstCaseTorusOverBudget(t *testing.T) {
	host, err := NewWorstCaseTorus(2, 60, 8)
	if err != nil {
		t.Fatal(err)
	}
	faults := host.NewFaults()
	// Hammer one residue class far beyond capacity.
	for i := 0; i < host.HostNodes()/3; i++ {
		faults.Add(i * 3)
	}
	if _, err := host.Extract(faults, nil); !errors.Is(err, ErrNotTolerated) {
		t.Fatalf("expected ErrNotTolerated, got %v", err)
	}
}

func TestEmbeddingMeshMethod(t *testing.T) {
	host, err := NewWorstCaseTorus(2, 60, 8)
	if err != nil {
		t.Fatal(err)
	}
	faults := host.NewFaults()
	faults.Add(host.HostIndex(5, 5))
	emb, err := host.Extract(faults, nil)
	if err != nil {
		t.Fatal(err)
	}
	mesh, err := emb.Mesh()
	if err != nil {
		t.Fatal(err)
	}
	if mesh.Side != emb.Side || len(mesh.Map) != len(emb.Map) {
		t.Error("mesh restriction changed shape")
	}
	// A second restriction must fail (already a mesh).
	if _, err := mesh.Mesh(); err == nil {
		t.Error("double mesh restriction accepted")
	}
}

func TestExtractDeterministic(t *testing.T) {
	host, err := NewRandomFaultTorus(2, 150, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	faults := host.InjectRandom(77, 3e-5)
	a, err := host.Extract(faults)
	if err != nil {
		t.Fatal(err)
	}
	b, err := host.Extract(faults)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Map {
		if a.Map[i] != b.Map[i] {
			t.Fatalf("extraction differs at %d", i)
		}
	}
	// InjectRandom with the same seed is also reproducible.
	if host.InjectRandom(77, 3e-5).Count() != faults.Count() {
		t.Error("InjectRandom not deterministic")
	}
}

// TestSessionLifecycle drives the public churn API end to end: every
// Reembed must match a from-scratch Extract of the same fault set,
// through additions, repairs, an intolerable episode, and recovery.
func TestSessionLifecycle(t *testing.T) {
	host, err := NewRandomFaultTorus(2, 150, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	ses := host.NewSession()

	check := func(label string) *Embedding {
		t.Helper()
		emb, err := ses.Reembed()
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		fresh := host.NewFaults()
		for v := 0; v < host.HostNodes(); v++ {
			if ses.Faulty(v) {
				fresh.Add(v)
			}
		}
		want, err := host.Extract(fresh)
		if err != nil {
			t.Fatalf("%s: fresh extract: %v", label, err)
		}
		for i := range want.Map {
			if emb.Map[i] != want.Map[i] {
				t.Fatalf("%s: session and fresh extraction differ at guest node %d", label, i)
			}
		}
		return emb
	}

	first := check("empty")
	firstCopy := append([]int(nil), first.Map...)
	ses.AddFaults(1234, 99999, 1234) // duplicate add is a no-op
	if ses.FaultCount() != 2 {
		t.Fatalf("fault count %d, want 2", ses.FaultCount())
	}
	check("grown")
	// The snapshot handed out earlier must be unaffected by mutations:
	// Reembed returns copies, not views of the session's scratch.
	for i, v := range firstCopy {
		if first.Map[i] != v {
			t.Fatalf("earlier snapshot mutated at guest node %d", i)
		}
	}
	ses.ClearFaults(1234)
	if ses.FaultCount() != 1 {
		t.Fatalf("fault count %d after repair, want 1", ses.FaultCount())
	}
	check("repaired")
	ses.ClearFaults(99999, 99999)
	if ses.FaultCount() != 0 {
		t.Fatalf("fault count %d after full repair, want 0", ses.FaultCount())
	}
	healed := check("healed")
	for i := range healed.Map {
		if healed.Map[i] != first.Map[i] {
			t.Fatalf("fully healed session differs from the pristine embedding at %d", i)
		}
	}
	if _, err := healed.Mesh(); err != nil {
		t.Fatalf("mesh restriction on session embedding: %v", err)
	}

	// Overload the host; the session must classify the failure and stay
	// usable for recovery.
	over := host.InjectRandom(3, 0.05)
	ses.AddFaults(over.Nodes()...)
	if _, err := ses.Reembed(); err == nil {
		t.Skip("lucky pattern survived")
	} else if !errors.Is(err, ErrNotTolerated) {
		t.Fatalf("expected ErrNotTolerated, got %v", err)
	}
	ses.ClearFaults(over.Nodes()...)
	ses.AddFaults(777)
	check("recovered")
}

func TestThreeDimensional(t *testing.T) {
	if testing.Short() {
		t.Skip("3D hosts are large")
	}
	host, err := NewRandomFaultTorus(3, 100, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if host.Degree() != 16 {
		t.Errorf("3D degree = %d, want 16", host.Degree())
	}
	faults := host.NewFaults()
	faults.Add(12345)
	if _, err := host.Extract(faults); err != nil {
		t.Fatal(err)
	}
}

// TestFaultsAddChecked pins the API-boundary validation: out-of-range
// indices — including those that land in the padding bits of the
// bitset's last word, which the raw bitset silently absorbs — must be
// rejected before they can corrupt state, and the unchecked signature
// must fail loudly instead of deep inside fault.Set.
func TestFaultsAddChecked(t *testing.T) {
	host, err := NewRandomFaultTorus(2, 64, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	f := host.NewFaults()
	if f.Len() != host.HostNodes() {
		t.Fatalf("Len = %d, want %d", f.Len(), host.HostNodes())
	}
	if err := f.AddChecked(0); err != nil {
		t.Fatal(err)
	}
	if err := f.AddChecked(f.Len() - 1); err != nil {
		t.Fatal(err)
	}
	for _, bad := range []int{-1, f.Len(), f.Len() + 1, (f.Len()/64+1)*64 - 1, 1 << 40} {
		if err := f.AddChecked(bad); err == nil {
			t.Errorf("AddChecked(%d) accepted (universe %d)", bad, f.Len())
		}
	}
	if f.Count() != 2 {
		t.Fatalf("rejected adds corrupted Count: %d", f.Count())
	}
	defer func() {
		if recover() == nil {
			t.Error("Add with out-of-range index did not panic")
		}
	}()
	f.Add(f.Len())
}

// TestSessionCheckedMutations pins the all-or-nothing contract of the
// validated session mutators: a batch with any invalid index mutates
// nothing.
func TestSessionCheckedMutations(t *testing.T) {
	host, err := NewRandomFaultTorus(2, 64, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	ses := host.NewSession()
	if ses.HostNodes() != host.HostNodes() {
		t.Fatalf("HostNodes = %d, want %d", ses.HostNodes(), host.HostNodes())
	}
	if err := ses.AddFaultsChecked(3, 99, ses.HostNodes()); err == nil {
		t.Fatal("AddFaultsChecked accepted an out-of-range index")
	}
	if ses.FaultCount() != 0 || ses.Faulty(3) {
		t.Fatal("rejected batch partially applied")
	}
	if err := ses.AddFaultsChecked(3, 99); err != nil {
		t.Fatal(err)
	}
	if got := ses.FaultNodes(); len(got) != 2 || got[0] != 3 || got[1] != 99 {
		t.Fatalf("FaultNodes = %v", got)
	}
	if err := ses.ClearFaultsChecked(3, -1); err == nil {
		t.Fatal("ClearFaultsChecked accepted an out-of-range index")
	}
	if !ses.Faulty(3) {
		t.Fatal("rejected clear batch partially applied")
	}
	if err := ses.ClearFaultsChecked(3, 99); err != nil {
		t.Fatal(err)
	}
	if ses.FaultCount() != 0 {
		t.Fatalf("FaultCount = %d after full clear", ses.FaultCount())
	}
	defer func() {
		if recover() == nil {
			t.Error("AddFaults with out-of-range index did not panic")
		}
	}()
	ses.AddFaults(-5)
}

// TestSessionFailHealReembed is the fail -> heal -> Reembed regression
// test: after a Reembed fails with ErrNotTolerated, the churn recorded
// before and during the failed episode must survive, so that once the
// state heals, every mutated column is re-checked against exactly its
// own fault set and the result is bit-identical to a from-scratch
// Extract.
func TestSessionFailHealReembed(t *testing.T) {
	host, err := NewRandomFaultTorus(2, 64, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	ses := host.NewSession()
	side := host.Side()
	rows := host.HostNodes() / side // d=2: numCols == side

	// Healthy base state.
	ses.AddFaults(17)
	if _, err := ses.Reembed(); err != nil {
		t.Fatal(err)
	}

	// Kill an entire host column: unmaskable, Reembed must fail.
	col := side / 2
	killer := make([]int, rows)
	for r := range killer {
		killer[r] = r*side + col
	}
	ses.AddFaults(killer...)
	if _, err := ses.Reembed(); !errors.Is(err, ErrNotTolerated) {
		t.Fatalf("expected ErrNotTolerated, got %v", err)
	}

	// The session must stay usable across the failure: mutate more
	// (a second benign fault in a different column) while unhealthy.
	other := 40*side + col/2
	ses.AddFaults(other)
	if _, err := ses.Reembed(); !errors.Is(err, ErrNotTolerated) {
		t.Fatalf("still-dense pattern: expected ErrNotTolerated, got %v", err)
	}

	// Heal the killer column and re-embed: the pending churn from the
	// failed episodes (killer column and 'other') must still be
	// re-checked, and the result must equal a from-scratch Extract.
	ses.ClearFaults(killer...)
	emb, err := ses.Reembed()
	if err != nil {
		t.Fatal(err)
	}
	if ses.FaultCount() != 2 {
		t.Fatalf("FaultCount = %d, want 2", ses.FaultCount())
	}
	faults := host.NewFaults()
	faults.Add(17)
	faults.Add(other)
	want, err := host.Extract(faults)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.Map {
		if want.Map[i] != emb.Map[i] {
			t.Fatalf("healed session embedding differs from from-scratch Extract at guest node %d", i)
		}
	}

	// And the session keeps working incrementally afterwards.
	ses.ClearFaults(17, other)
	emb2, err := ses.Reembed()
	if err != nil {
		t.Fatal(err)
	}
	clean, err := host.Extract(host.NewFaults())
	if err != nil {
		t.Fatal(err)
	}
	for i := range clean.Map {
		if clean.Map[i] != emb2.Map[i] {
			t.Fatalf("fully healed embedding differs from fault-free Extract at guest node %d", i)
		}
	}
}

// TestReembedDelta pins the change-accounting contract: the delta
// returned alongside each successful reembed must cover every guest map
// entry that differs from the previous successful reembed — including
// changes made while evaluating fault sets that were rejected with
// ErrNotTolerated in between.
func TestReembedDelta(t *testing.T) {
	host, err := NewRandomFaultTorus(2, 64, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	ses := host.NewSession()
	side := host.Side()
	rows := host.HostNodes() / side // d=2: numCols == side
	numCols := side                 // guest columns (d=2)

	emb, d, err := ses.ReembedDelta()
	if err != nil {
		t.Fatal(err)
	}
	if !d.Full {
		t.Fatalf("first reembed delta = %+v, want Full", d)
	}
	prev := append([]int(nil), emb.Map...)

	step := func(label string) {
		t.Helper()
		emb, d, err := ses.ReembedDelta()
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		if d.Full {
			prev = append(prev[:0], emb.Map...)
			return
		}
		changed := make(map[int]bool, len(d.Cols))
		last := -1
		for _, z := range d.Cols {
			if z <= last || z >= numCols {
				t.Fatalf("%s: delta cols %v not sorted/deduped in range", label, d.Cols)
			}
			last = z
			changed[z] = true
		}
		for i := range emb.Map {
			if emb.Map[i] != prev[i] && !changed[i%numCols] {
				t.Fatalf("%s: guest node %d (column %d) changed but column not in delta %v",
					label, i, i%numCols, d.Cols)
			}
		}
		prev = append(prev[:0], emb.Map...)
	}

	ses.AddFaults(17, 40*side+9)
	step("grown")
	ses.ClearFaults(17)
	step("repaired")

	// A failed episode in between: kill a whole host column (rejected),
	// then heal it and mutate elsewhere. The accounting must span the
	// failed evals, whose extractions already rewrote embedding columns.
	col := side / 2
	killer := make([]int, rows)
	for r := range killer {
		killer[r] = r*side + col
	}
	ses.AddFaults(killer...)
	if _, _, err := ses.ReembedDelta(); !errors.Is(err, ErrNotTolerated) {
		t.Fatalf("expected ErrNotTolerated, got %v", err)
	}
	ses.ClearFaults(killer...)
	ses.AddFaults(13*side + 3)
	step("recovered-across-failure")

	ses.ClearFaults(ses.FaultNodes()...)
	step("healed")
}
