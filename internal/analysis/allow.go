package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// allowMarker is the escape-comment prefix. Full syntax:
//
//	//lint:allow <analyzer> <justification>
//
// The comment suppresses exactly one diagnostic of the named analyzer
// on the comment's own line or the line directly below (so it works
// both as a trailing comment and as a comment above the statement).
// The justification is mandatory: an allow without one is itself
// reported, as is an allow that suppresses nothing. Escapes stay
// visible, explained, and load-bearing.
const allowMarker = "lint:allow"

type allowDirective struct {
	pos      token.Position
	analyzer string
	reason   string
	used     bool
}

// collectAllows extracts every lint:allow directive from the files.
func collectAllows(fset *token.FileSet, files []*ast.File) []*allowDirective {
	var allows []*allowDirective
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, allowMarker) {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(text, allowMarker))
				name, reason, _ := strings.Cut(rest, " ")
				allows = append(allows, &allowDirective{
					pos:      fset.Position(c.Pos()),
					analyzer: name,
					reason:   strings.TrimSpace(reason),
				})
			}
		}
	}
	return allows
}

// applyAllows filters diags through the files' lint:allow directives.
// Each directive consumes at most one diagnostic (the first in position
// order) of its named analyzer on a covered line. Directives that name
// no analyzer or an analyzer outside the run, directives without a
// justification, and directives that consumed nothing are appended as
// diagnostics of the pseudo-analyzer "allow", so a typo'd, stale or
// unexplained escape can never silently linger.
func applyAllows(fset *token.FileSet, files []*ast.File, diags []Diagnostic, ran map[string]bool) []Diagnostic {
	allows := collectAllows(fset, files)
	if len(allows) == 0 {
		return diags
	}
	byFile := map[string][]*allowDirective{}
	for _, a := range allows {
		byFile[a.pos.Filename] = append(byFile[a.pos.Filename], a)
	}
	var kept []Diagnostic
	for _, d := range diags {
		suppressed := false
		for _, a := range byFile[d.Pos.Filename] {
			if a.used || a.analyzer != d.Analyzer || a.reason == "" {
				continue
			}
			if d.Pos.Line == a.pos.Line || d.Pos.Line == a.pos.Line+1 {
				a.used = true
				suppressed = true
				break
			}
		}
		if !suppressed {
			kept = append(kept, d)
		}
	}
	for _, a := range allows {
		switch {
		case a.analyzer == "":
			kept = append(kept, Diagnostic{Pos: a.pos, Analyzer: "allow",
				Message: "lint:allow names no analyzer (syntax: //lint:allow <analyzer> <justification>)"})
		case !ran[a.analyzer]:
			kept = append(kept, Diagnostic{Pos: a.pos, Analyzer: "allow",
				Message: "lint:allow names unknown analyzer " + a.analyzer})
		case a.reason == "":
			kept = append(kept, Diagnostic{Pos: a.pos, Analyzer: "allow",
				Message: "lint:allow " + a.analyzer + " has no justification — explain why the rule does not apply here"})
		case !a.used:
			kept = append(kept, Diagnostic{Pos: a.pos, Analyzer: "allow",
				Message: "lint:allow " + a.analyzer + " suppresses no diagnostic — remove the stale escape"})
		}
	}
	sortDiagnostics(kept)
	return kept
}
