// Package analysis is a stdlib-only mini-framework (go/parser + go/ast +
// go/types; no x/tools, matching the module's zero-dependency
// constraint) for the repo's custom static analyzers. The reproduction
// rests on invariants the compiler never sees — bit-identical results
// across worker counts, wait-free atomic snapshots, allocation-free hot
// paths, the fterr error taxonomy — and probabilistic tests only catch
// a violation if the seed happens to hit it. The analyzer subpackages
// (determinism, atomics, hotpath, errcodes) hold those contracts
// mechanically; this package provides what they share:
//
//   - LoadModule: walks the module, parses every non-test file and
//     type-checks every package in dependency order (stdlib imports are
//     type-checked from GOROOT source, so the driver needs nothing but
//     the Go tree itself).
//   - Pass / Analyzer: the per-package unit of work, plus an optional
//     Finish hook for analyzers whose rule is a cross-package property
//     (the atomics analyzer: a field atomic anywhere must be atomic
//     everywhere).
//   - lint:allow escapes: a "//lint:allow <analyzer> <justification>"
//     comment suppresses exactly one diagnostic of that analyzer on its
//     own line or the line below. Allows without a justification, and
//     allows that suppress nothing, are themselves violations — every
//     escape in the tree is visible, explained, and load-bearing.
//   - RunGolden: the testdata harness matching diagnostics against
//     "// want \"regex\"" expectations, so each analyzer's self-test
//     proves it still catches its seeded violations.
//
// The command wired into CI is scripts/linters/ftnetvet.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Diagnostic is one analyzer finding at a resolved source position.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Pass hands one type-checked package to an analyzer's Run.
type Pass struct {
	// Fset is the module-wide file set (shared across packages, so
	// positions and object identities are comparable between passes).
	Fset *token.FileSet
	// Path is the package's import path.
	Path string
	// Files are the package's parsed non-test files.
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// Info carries the type-checker's resolutions (Uses, Defs,
	// Selections, Types) for the package's files.
	Info *types.Info

	analyzer string
	sink     *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.sink = append(*p.sink, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.analyzer,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Analyzer is one named rule set. Run is invoked once per matched
// package; Finish, if set, is invoked once after every package has been
// seen — the hook for cross-package rules, which accumulate facts in
// Run (closing over state from a New constructor) and report here.
type Analyzer struct {
	Name string
	Doc  string
	// Match filters packages by import path; nil matches every package.
	Match func(pkgPath string) bool
	Run   func(*Pass)
	// Finish reports accumulated cross-package findings. Positions were
	// resolved during Run, so it reports Diagnostics directly.
	Finish func(report func(Diagnostic))
}

// RunAnalyzers applies each analyzer to every matched package of the
// module, runs Finish hooks, applies lint:allow escapes, and returns
// the surviving diagnostics in deterministic position order (allow
// misuses — missing justification, suppressing nothing — are appended
// as diagnostics of the pseudo-analyzer "allow").
func RunAnalyzers(m *Module, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, a := range analyzers {
		for _, pkg := range m.Pkgs {
			if a.Match != nil && !a.Match(pkg.Path) {
				continue
			}
			a.Run(&Pass{
				Fset:     m.Fset,
				Path:     pkg.Path,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				analyzer: a.Name,
				sink:     &diags,
			})
		}
		if a.Finish != nil {
			a.Finish(func(d Diagnostic) {
				d.Analyzer = a.Name
				diags = append(diags, d)
			})
		}
	}
	sortDiagnostics(diags)
	ran := map[string]bool{}
	for _, a := range analyzers {
		ran[a.Name] = true
	}
	var files []*ast.File
	for _, pkg := range m.Pkgs {
		files = append(files, pkg.Files...)
	}
	return applyAllows(m.Fset, files, diags, ran)
}

// InDirs builds a Match function accepting exactly the packages at the
// given module-relative directories ("." means the module root).
func InDirs(modulePath string, dirs ...string) func(string) bool {
	set := map[string]bool{}
	for _, d := range dirs {
		if d == "." {
			set[modulePath] = true
		} else {
			set[modulePath+"/"+d] = true
		}
	}
	return func(pkgPath string) bool { return set[pkgPath] }
}

func sortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}
