package analysis_test

import (
	"go/ast"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ftnet/internal/analysis"
)

// fakeSrc drives the allow-semantics test with a synthetic analyzer
// that flags every call to boom. The functions exercise, in order: a
// fully covered escape, an escape that must suppress exactly one of
// two diagnostics, an escape without a justification, a stale escape,
// and an escape naming an analyzer outside the run.
const fakeSrc = `package fake

func boom() {}

func covered() {
	//lint:allow fake audited: this boom is fine
	boom()
}

func pair() {
	//lint:allow fake audited: only the first boom is fine
	boom()
	boom()
}

func unexplained() {
	//lint:allow fake
	boom()
}

func stale() {
	//lint:allow fake audited: nothing here anymore
	_ = 0
}

func typo() {
	//lint:allow nosuch this analyzer does not exist
	boom()
}
`

func fakeAnalyzer() *analysis.Analyzer {
	return &analysis.Analyzer{
		Name: "fake",
		Doc:  "flag every call to boom",
		Run: func(p *analysis.Pass) {
			for _, f := range p.Files {
				ast.Inspect(f, func(n ast.Node) bool {
					if call, ok := n.(*ast.CallExpr); ok {
						if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "boom" {
							p.Reportf(call.Pos(), "call to boom")
						}
					}
					return true
				})
			}
		},
	}
}

// TestAllowSemantics proves the framework's escape contract end to end:
// a justified lint:allow suppresses exactly one diagnostic of its
// analyzer on the covered lines, and unexplained, stale, or
// unknown-analyzer allows surface as "allow" diagnostics of their own.
func TestAllowSemantics(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module fake\n\ngo 1.24\n")
	write("fake.go", fakeSrc)

	m, err := analysis.LoadModule(dir)
	if err != nil {
		t.Fatalf("LoadModule: %v", err)
	}
	diags := analysis.RunAnalyzers(m, []*analysis.Analyzer{fakeAnalyzer()})

	var fakeCount int
	var allowMsgs []string
	for _, d := range diags {
		switch d.Analyzer {
		case "fake":
			fakeCount++
		case "allow":
			allowMsgs = append(allowMsgs, d.Message)
		default:
			t.Errorf("diagnostic from unexpected analyzer %q: %s", d.Analyzer, d)
		}
	}

	// covered: fully suppressed. pair: the allow eats exactly one of the
	// two, leaving one. unexplained and typo: their booms survive because
	// the directives are invalid. Total surviving fake diagnostics: 3.
	if fakeCount != 3 {
		t.Errorf("got %d surviving fake diagnostics, want 3 (allow must suppress exactly one per directive):\n%s",
			fakeCount, render(diags))
	}
	wantAllows := []string{
		"has no justification",
		"suppresses no diagnostic",
		"names unknown analyzer nosuch",
	}
	if len(allowMsgs) != len(wantAllows) {
		t.Errorf("got %d allow diagnostics, want %d:\n%s", len(allowMsgs), len(wantAllows), render(diags))
	}
	for _, want := range wantAllows {
		found := false
		for _, msg := range allowMsgs {
			if strings.Contains(msg, want) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no allow diagnostic contains %q:\n%s", want, render(diags))
		}
	}
}

// TestAllowCoversTrailingComment pins the other half of the line rule:
// a trailing allow on the diagnostic's own line suppresses it.
func TestAllowCoversTrailingComment(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte("module fake\n\ngo 1.24\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	src := "package fake\n\nfunc boom() {}\n\nfunc trailing() {\n\tboom() //lint:allow fake audited: trailing escape\n}\n"
	if err := os.WriteFile(filepath.Join(dir, "fake.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	m, err := analysis.LoadModule(dir)
	if err != nil {
		t.Fatalf("LoadModule: %v", err)
	}
	if diags := analysis.RunAnalyzers(m, []*analysis.Analyzer{fakeAnalyzer()}); len(diags) != 0 {
		t.Errorf("trailing allow did not suppress the diagnostic:\n%s", render(diags))
	}
}

func render(diags []analysis.Diagnostic) string {
	var b strings.Builder
	for _, d := range diags {
		b.WriteString("  " + d.String() + "\n")
	}
	return b.String()
}
