package analysis

import (
	"go/ast"
	"go/types"
)

// RootIdent peels selectors, indexing, dereferences and parens off an
// expression and returns the identifier at its root, or nil (a call
// result, a literal) when there is none. RootIdent of e.scratch.buf[i]
// is e — the object the storage ultimately hangs off.
func RootIdent(expr ast.Expr) *ast.Ident {
	for {
		switch e := expr.(type) {
		case *ast.Ident:
			return e
		case *ast.SelectorExpr:
			expr = e.X
		case *ast.IndexExpr:
			expr = e.X
		case *ast.IndexListExpr:
			expr = e.X
		case *ast.StarExpr:
			expr = e.X
		case *ast.ParenExpr:
			expr = e.X
		case *ast.SliceExpr:
			expr = e.X
		default:
			return nil
		}
	}
}

// FuncObj resolves the called function object of a call expression,
// following aliased imports and method selections via the type info.
// Returns nil for builtins, conversions and indirect calls through
// plain variables.
func FuncObj(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// IsPkgFunc reports whether fn is the named function of the package at
// pkgPath (e.g. IsPkgFunc(fn, "time", "Now", "Since")).
func IsPkgFunc(fn *types.Func, pkgPath string, names ...string) bool {
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != pkgPath {
		return false
	}
	for _, n := range names {
		if fn.Name() == n {
			return true
		}
	}
	return false
}

// IsBuiltin reports whether the call invokes the named builtin
// (append, make, new, ...), resolved through the type info so a local
// identifier shadowing the builtin does not count.
func IsBuiltin(info *types.Info, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = info.Uses[id].(*types.Builtin)
	return ok
}

// DeclaredWithin reports whether obj's declaration lies inside the
// node's source range — "is this a loop-local?" for determinism checks
// and "does this closure capture an enclosing local?" for hotpath.
func DeclaredWithin(obj types.Object, n ast.Node) bool {
	return obj != nil && obj.Pos() != 0 && n.Pos() <= obj.Pos() && obj.Pos() < n.End()
}
