// Package atomics enforces the all-or-nothing atomics contract: a
// struct field accessed through a sync/atomic function anywhere in the
// module must be accessed atomically everywhere. A single plain read
// of an atomically-written field is a data race the -race detector only
// reports if a test happens to interleave it — and it silently breaks
// the server's wait-free Snapshot and the delta ring's lock-free prev
// chain, which lean on release/acquire ordering the plain access
// discards.
//
// The rule is cross-package by construction (the writer and the sloppy
// reader are usually in different files), so the analyzer accumulates
// facts per package in Run and reports in Finish. Typed atomics
// (atomic.Int64, atomic.Pointer[T]) need no analyzer: their plain
// "access" is a struct copy, which go vet's copylocks already rejects.
package atomics

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strconv"
	"strings"

	"ftnet/internal/analysis"
)

type access struct {
	pos   token.Position
	field string // receiver-qualified field name for messages
}

type state struct {
	atomic map[*types.Var][]access // fields touched via sync/atomic
	plain  map[*types.Var][]access // every other selector access
}

// New returns the atomics analyzer. Each New call carries fresh
// accumulation state, so drivers can run suites repeatedly.
func New() *analysis.Analyzer {
	st := &state{
		atomic: map[*types.Var][]access{},
		plain:  map[*types.Var][]access{},
	}
	return &analysis.Analyzer{
		Name:   "atomics",
		Doc:    "a field accessed through sync/atomic anywhere must be accessed atomically everywhere",
		Run:    st.run,
		Finish: st.finish,
	}
}

// atomicOps are the sync/atomic function-name prefixes whose pointer
// arguments mark a field as atomically managed.
var atomicOps = []string{"Add", "And", "Or", "Load", "Store", "Swap", "CompareAndSwap"}

func isAtomicFunc(fn *types.Func) bool {
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
		return false
	}
	for _, p := range atomicOps {
		if strings.HasPrefix(fn.Name(), p) {
			return true
		}
	}
	return false
}

func (st *state) run(pass *analysis.Pass) {
	for _, f := range pass.Files {
		// First mark the exact selector nodes that appear as &x.f
		// arguments of sync/atomic calls ...
		atomicSel := map[*ast.SelectorExpr]bool{}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isAtomicFunc(analysis.FuncObj(pass.Info, call)) {
				return true
			}
			for _, arg := range call.Args {
				un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
				if !ok || un.Op != token.AND {
					continue
				}
				if sel, ok := ast.Unparen(un.X).(*ast.SelectorExpr); ok {
					atomicSel[sel] = true
				}
			}
			return true
		})

		// ... then classify every field selection in the file.
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			s, ok := pass.Info.Selections[sel]
			if !ok || s.Kind() != types.FieldVal {
				return true
			}
			v, ok := s.Obj().(*types.Var)
			if !ok {
				return true
			}
			a := access{
				pos:   pass.Fset.Position(sel.Sel.Pos()),
				field: fieldLabel(s, v),
			}
			if atomicSel[sel] {
				st.atomic[v] = append(st.atomic[v], a)
			} else {
				st.plain[v] = append(st.plain[v], a)
			}
			return true
		})
	}
}

func fieldLabel(s *types.Selection, v *types.Var) string {
	recv := s.Recv()
	for {
		if p, ok := recv.(*types.Pointer); ok {
			recv = p.Elem()
			continue
		}
		break
	}
	if named, ok := recv.(*types.Named); ok {
		return named.Obj().Name() + "." + v.Name()
	}
	return v.Name()
}

func (st *state) finish(report func(analysis.Diagnostic)) {
	type finding struct {
		at    access
		first access
	}
	var all []finding
	for v, atomics := range st.atomic {
		first := atomics[0]
		for _, a := range atomics[1:] {
			if less(a.pos, first.pos) {
				first = a
			}
		}
		for _, p := range st.plain[v] {
			all = append(all, finding{at: p, first: first})
		}
	}
	sort.Slice(all, func(i, j int) bool { return less(all[i].at.pos, all[j].at.pos) })
	for _, f := range all {
		report(analysis.Diagnostic{
			Pos: f.at.pos,
			Message: "plain access to field " + f.at.field +
				", which is accessed atomically at " + short(f.first.pos) +
				": mixed plain/atomic access is a data race",
		})
	}
}

func less(a, b token.Position) bool {
	if a.Filename != b.Filename {
		return a.Filename < b.Filename
	}
	if a.Line != b.Line {
		return a.Line < b.Line
	}
	return a.Column < b.Column
}

func short(p token.Position) string {
	name := p.Filename
	if i := strings.LastIndexByte(name, '/'); i >= 0 {
		name = name[i+1:]
	}
	return name + ":" + strconv.Itoa(p.Line)
}
