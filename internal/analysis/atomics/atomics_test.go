package atomics_test

import (
	"testing"

	"ftnet/internal/analysis"
	"ftnet/internal/analysis/atomics"
)

func TestGolden(t *testing.T) {
	analysis.RunGolden(t, atomics.New(), "testdata/atomicmix")
}
