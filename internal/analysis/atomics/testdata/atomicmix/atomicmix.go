// Package atomicmix seeds mixed plain/atomic field access for the
// golden harness: hits is managed through sync/atomic in inc and load,
// so the plain read in read is a data race; cold is never touched
// atomically, so its plain accesses are fine.
package atomicmix

import "sync/atomic"

type counter struct {
	hits int64
	cold int64
}

func (c *counter) inc() {
	atomic.AddInt64(&c.hits, 1)
	c.cold++ // never accessed atomically: no finding
}

func (c *counter) load() int64 {
	return atomic.LoadInt64(&c.hits)
}

func (c *counter) read() int64 {
	return c.hits // want "plain access to field counter.hits, which is accessed atomically at atomicmix.go:15: mixed plain/atomic access is a data race"
}

func (c *counter) reset() {
	c.hits = 0 // want "plain access to field counter.hits"
	c.cold = 0 // never accessed atomically: no finding
}
