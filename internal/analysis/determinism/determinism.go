// Package determinism enforces the engine packages' bit-identical
// replay contract statically. Every engine (parallel Monte-Carlo,
// rate ladders, churn, Session deltas) promises identical results for
// identical seeds across worker counts; the two classic ways to break
// that silently are wall-clock/ambient randomness inputs and the
// random iteration order of Go maps leaking into committed state.
// TestParallelDeterminism* only catches a violation when a seed happens
// to hit it — this analyzer rejects the constructs outright:
//
//   - time.Now / time.Since and imports of math/rand (or v2) are
//     forbidden in engine packages; randomness routes through
//     internal/rng, timing through the drivers.
//   - range over a map may not leak iteration order: no channel sends,
//     no appends to slices that are not subsequently sorted, no float
//     or string accumulation (those operations do not commute), and no
//     order-dependent writes (last-writer-wins on a loop variable).
package determinism

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"

	"ftnet/internal/analysis"
)

// EnginePackages lists the module-relative directories whose code must
// replay bit-identically. internal/rng is included: it implements the
// generators and must not itself lean on ambient randomness.
var EnginePackages = []string{
	"internal/core",
	"internal/parallel",
	"internal/churn",
	"internal/sweep",
	"internal/fault",
	"internal/bands",
	"internal/embed",
	"internal/rng",
}

// New returns the determinism analyzer. modulePath scopes Match to the
// engine packages; the golden harness calls Run directly and may pass
// "".
func New(modulePath string) *analysis.Analyzer {
	a := &analysis.Analyzer{
		Name: "determinism",
		Doc:  "forbid wall-clock/math-rand inputs and map-iteration-order leaks in engine packages",
		Run:  run,
	}
	if modulePath != "" {
		a.Match = analysis.InDirs(modulePath, EnginePackages...)
	}
	return a
}

func run(pass *analysis.Pass) {
	for _, f := range pass.Files {
		for _, imp := range f.Imports {
			p, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if p == "math/rand" || p == "math/rand/v2" {
				pass.Reportf(imp.Pos(), "import of %s in an engine package: randomness must route through internal/rng", p)
			}
		}

		// time.Now/Since: resolved through Uses, so aliased imports and
		// method-value references are caught alike.
		ast.Inspect(f, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				if fn, ok := pass.Info.Uses[id].(*types.Func); ok && analysis.IsPkgFunc(fn, "time", "Now", "Since") {
					pass.Reportf(id.Pos(), "time.%s in an engine package: wall-clock input breaks bit-identical replay", fn.Name())
				}
			}
			return true
		})

		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				checkFuncBody(pass, fd.Body)
			}
		}
	}
}

// checkFuncBody finds every range-over-map in one function body,
// attributing each to this body so the collect-then-sort pattern is
// recognized. Function literals start their own scope: a sort inside a
// closure does not launder an append in the enclosing function, and
// vice versa.
func checkFuncBody(pass *analysis.Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.FuncLit:
			checkFuncBody(pass, v.Body)
			return false
		case *ast.RangeStmt:
			if isMapRange(pass, v) {
				checkMapRange(pass, v, body)
			}
		}
		return true
	})
}

func isMapRange(pass *analysis.Pass, rs *ast.RangeStmt) bool {
	tv, ok := pass.Info.Types[rs.X]
	if !ok || tv.Type == nil {
		return false
	}
	_, isMap := tv.Type.Underlying().(*types.Map)
	return isMap
}

// checkMapRange inspects one range-over-map body for order leaks.
func checkMapRange(pass *analysis.Pass, rs *ast.RangeStmt, encBody *ast.BlockStmt) {
	loopVars := map[types.Object]bool{}
	for _, e := range []ast.Expr{rs.Key, rs.Value} {
		id, ok := e.(*ast.Ident)
		if !ok {
			continue
		}
		if obj := pass.Info.Defs[id]; obj != nil {
			loopVars[obj] = true
		} else if obj := pass.Info.Uses[id]; obj != nil {
			loopVars[obj] = true
		}
	}
	mentionsLoopVar := func(e ast.Expr) bool {
		found := false
		ast.Inspect(e, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && loopVars[pass.Info.Uses[id]] {
				found = true
			}
			return !found
		})
		return found
	}

	type appendSite struct {
		obj types.Object
		pos token.Pos
	}
	var appends []appendSite

	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.RangeStmt:
			if st != rs && isMapRange(pass, st) {
				return false // the nested map loop reports for itself
			}
		case *ast.SendStmt:
			pass.Reportf(st.Pos(), "channel send inside range over a map: map iteration order is random, so delivery order is nondeterministic")
		case *ast.AssignStmt:
			checkMapRangeAssign(pass, rs, st, loopVars, mentionsLoopVar, func(obj types.Object, pos token.Pos) {
				appends = append(appends, appendSite{obj, pos})
			})
		}
		return true
	})

	for _, ap := range appends {
		if encBody != nil && sortedAfter(pass, encBody, rs.End(), ap.obj) {
			continue
		}
		pass.Reportf(ap.pos, "append to %q inside range over a map without a subsequent sort: element order depends on map iteration order", ap.obj.Name())
	}
}

func checkMapRangeAssign(pass *analysis.Pass, rs *ast.RangeStmt, st *ast.AssignStmt,
	loopVars map[types.Object]bool, mentionsLoopVar func(ast.Expr) bool,
	recordAppend func(types.Object, token.Pos)) {

	for i, lhs := range st.Lhs {
		root := analysis.RootIdent(lhs)
		if root == nil {
			continue
		}
		obj := pass.Info.Uses[root]
		if obj == nil {
			obj = pass.Info.Defs[root]
		}
		if obj == nil || loopVars[obj] || analysis.DeclaredWithin(obj, rs.Body) {
			continue // loop-local state cannot leak order
		}

		var rhs ast.Expr
		if len(st.Rhs) == len(st.Lhs) {
			rhs = st.Rhs[i]
		} else if len(st.Rhs) == 1 {
			rhs = st.Rhs[0]
		}

		// s = append(s, ...) — candidate; allowed iff sorted later.
		if rhs != nil {
			if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok && analysis.IsBuiltin(pass.Info, call, "append") {
				recordAppend(obj, st.Pos())
				continue
			}
		}

		tv, ok := pass.Info.Types[lhs]
		if !ok || tv.Type == nil {
			continue
		}
		basic, _ := tv.Type.Underlying().(*types.Basic)

		switch st.Tok {
		case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
			// Integer accumulation commutes; float and string do not.
			if basic != nil && basic.Info()&types.IsFloat != 0 {
				pass.Reportf(st.Pos(), "float accumulation into %q inside range over a map: addition order changes the result", obj.Name())
			} else if basic != nil && basic.Info()&types.IsString != 0 {
				pass.Reportf(st.Pos(), "string concatenation into %q inside range over a map: element order depends on map iteration order", obj.Name())
			}
		case token.ASSIGN:
			// Keyed writes (dst[k] = ...) commute across distinct keys.
			if ix, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok && mentionsLoopVar(ix.Index) {
				continue
			}
			if rhs != nil && mentionsLoopVar(rhs) {
				pass.Reportf(st.Pos(), "write to %q inside range over a map depends on iteration order (last writer wins)", obj.Name())
			}
		}
	}
}

// sortedAfter reports whether, somewhere after pos in the function
// body, obj is passed (anywhere in the argument trees) to a sort call
// — the canonical collect-then-sort pattern that launders map order.
// Nested function literals are skipped: a sort inside a closure runs on
// the closure's schedule (possibly never), so it launders nothing here.
func sortedAfter(pass *analysis.Pass, body *ast.BlockStmt, pos token.Pos, obj types.Object) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < pos {
			return true
		}
		fn := analysis.FuncObj(pass.Info, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		if p := fn.Pkg().Path(); p != "sort" && p != "slices" {
			return true
		}
		for _, arg := range call.Args {
			ast.Inspect(arg, func(an ast.Node) bool {
				if id, ok := an.(*ast.Ident); ok && pass.Info.Uses[id] == obj {
					found = true
				}
				return !found
			})
		}
		return !found
	})
	return found
}
