package determinism_test

import (
	"testing"

	"ftnet/internal/analysis"
	"ftnet/internal/analysis/determinism"
)

func TestGolden(t *testing.T) {
	analysis.RunGolden(t, determinism.New(""), "testdata/det")
}
