// Package det seeds determinism violations for the golden harness:
// every want comment pins the exact rule the construct on its line
// trips, and the constructs without wants pin the rule's negative space
// (integer accumulation, keyed writes, collect-then-sort).
package det

import (
	"math/rand" // want "import of math/rand in an engine package"
	"sort"
	"time"
)

// The import line above is the violation; referencing the package does
// not add another.
var _ = rand.Int

// clock feeds wall-clock inputs into engine state.
func clock() (time.Time, time.Duration) {
	start := time.Now()    // want "time.Now in an engine package"
	d := time.Since(start) // want "time.Since in an engine package"
	return start, d
}

// mapLeaks exercises every range-over-map rule in one loop.
func mapLeaks(m map[string]int, ch chan int) ([]string, []int, float64, string, int, int) {
	var keys []string
	var sorted []int
	var fsum float64
	var cat string
	isum := 0
	last := 0
	counts := map[string]int{}
	for k, v := range m {
		keys = append(keys, k) // want "append to \"keys\" inside range over a map without a subsequent sort"
		ch <- v                // want "channel send inside range over a map"
		fsum += float64(v)     // want "float accumulation into \"fsum\""
		cat += k               // want "string concatenation into \"cat\""
		last = v               // want "write to \"last\" inside range over a map depends on iteration order"
		isum += v              // integer accumulation commutes: no finding
		counts[k] = v          // keyed write, distinct keys commute: no finding
		sorted = append(sorted, v)
		local := v * 2 // loop-local state cannot leak order: no finding
		_ = local
	}
	sort.Ints(sorted) // launders the append to sorted above
	return keys, sorted, fsum, cat, isum, last
}

// closureScope pins that a sort inside a closure does not launder an
// append in the enclosing function.
func closureScope(m map[int]int) []int {
	var out []int
	for k := range m {
		out = append(out, k) // want "append to \"out\" inside range over a map without a subsequent sort"
	}
	_ = func() {
		sort.Ints(out) // a different scope: does not launder the loop above
	}
	return out
}
