// Package errcodes is the fterr-taxonomy adoption lint, migrated from
// the bespoke scripts/linters/errcheck-codes into the analysis
// framework. In the packages forming the public failure surface
// (module API, HTTP wire, SDK — now including internal/core and the
// commands), every constructed error must carry a stable fterr code:
//
//   - errors.New is forbidden — it can only mint an uncoded error.
//     Use fterr.New or a coded sentinel.
//   - fmt.Errorf is allowed only with a literal format string
//     containing %w: wrapping preserves the code already on the chain,
//     anything else mints a fresh uncoded error.
//
// Unlike its predecessor the rule is type-aware: call targets resolve
// through go/types, so aliased imports (errs "errors"), dot imports
// and method values (f := fmt.Errorf) cannot dodge it — a bare value
// reference to either function is rejected outright, since the %w
// check cannot follow it.
package errcodes

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"

	"ftnet/internal/analysis"
)

// EnforcedPackages lists the module-relative directories whose errors
// cross a public boundary. PR 10 extends the original list with
// internal/core (its errors surface through ftnet.Session and the
// daemon) and both commands (their exit-code contract branches on
// fterr classes).
var EnforcedPackages = []string{
	".",
	"client",
	"cmd/experiments",
	"cmd/ftnet",
	"internal/core",
	"internal/server",
	"internal/wire",
	"internal/churn",
	"internal/fault",
	"internal/validate",
}

// New returns the errcodes analyzer scoped to EnforcedPackages under
// modulePath ("" leaves Match open, for the golden harness).
func New(modulePath string) *analysis.Analyzer {
	a := &analysis.Analyzer{
		Name: "errcodes",
		Doc:  "constructed errors on the public failure surface must carry an fterr code",
		Run:  run,
	}
	if modulePath != "" {
		a.Match = analysis.InDirs(modulePath, EnforcedPackages...)
	}
	return a
}

func run(pass *analysis.Pass) {
	for _, f := range pass.Files {
		// Direct calls get the %w analysis; mark their callee idents so
		// the reference sweep below only sees indirect uses.
		calledIdents := map[*ast.Ident]bool{}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			id := calleeIdent(call)
			if id == nil {
				return true
			}
			fn, _ := pass.Info.Uses[id].(*types.Func)
			switch {
			case analysis.IsPkgFunc(fn, "errors", "New"):
				calledIdents[id] = true
				pass.Reportf(call.Pos(), "errors.New constructs an uncoded error; use fterr.New or a coded sentinel")
			case analysis.IsPkgFunc(fn, "fmt", "Errorf"):
				calledIdents[id] = true
				checkErrorf(pass, call)
			}
			return true
		})

		// Value references (f := fmt.Errorf, callbacks, method values):
		// the format string is out of reach, so the reference itself is
		// the violation.
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok || calledIdents[id] {
				return true
			}
			fn, _ := pass.Info.Uses[id].(*types.Func)
			switch {
			case analysis.IsPkgFunc(fn, "errors", "New"):
				pass.Reportf(id.Pos(), "reference to errors.New (uncoded error constructor) escapes the lint; construct coded errors directly")
			case analysis.IsPkgFunc(fn, "fmt", "Errorf"):
				pass.Reportf(id.Pos(), "reference to fmt.Errorf as a value: the %%w requirement cannot be verified; call it directly")
			}
			return true
		})
	}
}

func calleeIdent(call *ast.CallExpr) *ast.Ident {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun
	case *ast.SelectorExpr:
		return fun.Sel
	}
	return nil
}

func checkErrorf(pass *analysis.Pass, call *ast.CallExpr) {
	if len(call.Args) == 0 {
		return
	}
	lit, ok := ast.Unparen(call.Args[0]).(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		pass.Reportf(call.Pos(), "fmt.Errorf with a non-literal format string (cannot verify %%w)")
		return
	}
	format, err := strconv.Unquote(lit.Value)
	if err != nil {
		return
	}
	if !hasWrapVerb(format) {
		pass.Reportf(call.Pos(), "fmt.Errorf without %%w mints an uncoded error; wrap a coded cause or use fterr.New")
	}
}

// hasWrapVerb reports whether the format string contains a real %w verb
// (flags and width allowed, escaped %% skipped).
func hasWrapVerb(format string) bool {
	for i := 0; i < len(format); i++ {
		if format[i] != '%' {
			continue
		}
		i++
		for i < len(format) {
			c := format[i]
			if c == '%' {
				break // %% escape
			}
			if c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' {
				if c == 'w' {
					return true
				}
				break
			}
			i++ // flag, width, precision, index
		}
	}
	return false
}
