package errcodes_test

import (
	"testing"

	"ftnet/internal/analysis"
	"ftnet/internal/analysis/errcodes"
)

func TestGolden(t *testing.T) {
	analysis.RunGolden(t, errcodes.New(""), "testdata/codes")
}
