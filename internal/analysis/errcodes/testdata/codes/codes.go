// Package codes seeds errcodes violations for the golden harness: the
// aliased import and the value references pin the type-aware
// resolution (renaming the import or binding the function to a
// variable cannot dodge the rule).
package codes

import (
	stderrors "errors"
	"fmt"
)

func bare() error {
	return stderrors.New("boom") // want "errors.New constructs an uncoded error"
}

func uncoded(name string) error {
	return fmt.Errorf("open %s failed", name) // want "fmt.Errorf without %w mints an uncoded error"
}

func wrapped(err error) error {
	return fmt.Errorf("open: %w", err) // wrapping preserves the chain's code: no finding
}

func escapedVerb(err error) error {
	return fmt.Errorf("100%% broken: %v", err) // want "fmt.Errorf without %w mints an uncoded error"
}

func nonLiteral(format string, err error) error {
	return fmt.Errorf(format, err) // want "fmt.Errorf with a non-literal format string"
}

func methodValue() error {
	f := fmt.Errorf // want "reference to fmt.Errorf as a value"
	return f("dodged")
}

func aliasedValue() error {
	mk := stderrors.New // want "reference to errors.New"
	return mk("dodged")
}
