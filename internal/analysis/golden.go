package analysis

import (
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// wantRe matches one expectation inside a "// want" comment. Several
// quoted patterns may follow a single want marker.
var wantRe = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

type expectation struct {
	line    int
	pattern *regexp.Regexp
	matched bool
}

// RunGolden type-checks the testdata package at dir, runs the analyzer
// over it (Run plus Finish, without lint:allow filtering — goldens pin
// the raw rule), and matches every diagnostic against the package's
// "// want \"regexp\"" comments: a diagnostic must match a want on its
// line, and every want must be hit. This is the self-test proving each
// analyzer still catches its seeded violations — delete a want's
// violation (or break the analyzer) and the golden goes red.
func RunGolden(t *testing.T, a *Analyzer, dir string) {
	t.Helper()
	m, pkg, err := LoadDir(dir)
	if err != nil {
		t.Fatalf("load %s: %v", dir, err)
	}

	var wants []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				rest, ok := strings.CutPrefix(text, "want ")
				if !ok {
					continue
				}
				line := m.Fset.Position(c.Pos()).Line
				ms := wantRe.FindAllStringSubmatch(rest, -1)
				if len(ms) == 0 {
					t.Errorf("%s:%d: want comment with no quoted pattern", dir, line)
					continue
				}
				for _, qm := range ms {
					pat, err := strconv.Unquote(`"` + qm[1] + `"`)
					if err != nil {
						t.Errorf("%s:%d: bad want pattern %q: %v", dir, line, qm[1], err)
						continue
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Errorf("%s:%d: bad want regexp %q: %v", dir, line, pat, err)
						continue
					}
					wants = append(wants, &expectation{line: line, pattern: re})
				}
			}
		}
	}

	var diags []Diagnostic
	a.Run(&Pass{
		Fset:     m.Fset,
		Path:     pkg.Path,
		Files:    pkg.Files,
		Pkg:      pkg.Types,
		Info:     pkg.Info,
		analyzer: a.Name,
		sink:     &diags,
	})
	if a.Finish != nil {
		a.Finish(func(d Diagnostic) {
			d.Analyzer = a.Name
			diags = append(diags, d)
		})
	}
	sortDiagnostics(diags)

	for _, d := range diags {
		found := false
		for _, w := range wants {
			if w.matched || w.line != d.Pos.Line {
				continue
			}
			if w.pattern.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s: line %d: no diagnostic matched want %q", dir, w.line, w.pattern)
		}
	}
}

// Golden wraps RunGolden for use as a subtest body.
func Golden(a *Analyzer, dir string) func(*testing.T) {
	return func(t *testing.T) { RunGolden(t, a, dir) }
}
