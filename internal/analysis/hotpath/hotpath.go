// Package hotpath enforces the trial path's O(footprint),
// allocation-free contract statically. Functions annotated with a
// "//ftnet:hotpath" doc-comment line (colEval, interpolateFast,
// extractFast, verifyColumn, the Session delta path, fault.Set's
// record/skip samplers, the wire appenders) run millions of times per
// experiment; one allocation snuck into them turns a flat profile into
// a GC treadmill, and alloc benchmarks only catch it on the benchmarked
// configuration. Inside an annotated function the analyzer forbids:
//
//   - make / new, and map or slice composite literals
//   - append to a slice not derived from a parameter or receiver
//     (scratch buffers hang off the receiver; a local qualifies only
//     when every assignment to it re-slices or returns caller-owned
//     storage, e.g. moved := sc.movedBuf[:0])
//   - fmt.* calls and string concatenation
//   - closures capturing enclosing variables (the capture forces a
//     heap allocation per call)
//
// Audited cold branches (a one-time rotation map fill, error paths)
// escape with "//lint:allow hotpath <why>". TestHotPathAllocs is the
// runtime cross-check: AllocsPerRun pins the same functions to zero.
package hotpath

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"ftnet/internal/analysis"
)

// Marker is the annotation that opts a function into the rules.
const Marker = "ftnet:hotpath"

// New returns the hotpath analyzer. It matches every package: the
// annotation, not the package, selects the functions.
func New() *analysis.Analyzer {
	return &analysis.Analyzer{
		Name: "hotpath",
		Doc:  "forbid allocation constructs in //ftnet:hotpath-annotated functions",
		Run:  run,
	}
}

func run(pass *analysis.Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !annotated(fd) {
				continue
			}
			checkFunc(pass, fd)
		}
	}
}

func annotated(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if c.Text == "//"+Marker {
			return true
		}
	}
	return false
}

// paramObjects collects the function's parameters and receiver — the
// only roots append may grow, since their backing arrays are the
// caller's pre-sized scratch.
func paramObjects(pass *analysis.Pass, fd *ast.FuncDecl) map[types.Object]bool {
	params := map[types.Object]bool{}
	add := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			for _, name := range field.Names {
				if obj := pass.Info.Defs[name]; obj != nil {
					params[obj] = true
				}
			}
		}
	}
	add(fd.Recv)
	add(fd.Type.Params)
	return params
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	params := paramObjects(pass, fd)
	blessed := blessedLocals(pass, fd, params)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.FuncLit:
			reportCapture(pass, fd, v)
			return false // the closure body lives off the hot path

		case *ast.CompositeLit:
			tv, ok := pass.Info.Types[v]
			if !ok || tv.Type == nil {
				return true
			}
			switch tv.Type.Underlying().(type) {
			case *types.Map:
				pass.Reportf(v.Pos(), "map literal in hot path %s allocates", fd.Name.Name)
			case *types.Slice:
				pass.Reportf(v.Pos(), "slice literal in hot path %s allocates", fd.Name.Name)
			}

		case *ast.CallExpr:
			switch {
			case analysis.IsBuiltin(pass.Info, v, "make"):
				pass.Reportf(v.Pos(), "make in hot path %s allocates", fd.Name.Name)
			case analysis.IsBuiltin(pass.Info, v, "new"):
				pass.Reportf(v.Pos(), "new in hot path %s allocates", fd.Name.Name)
			case analysis.IsBuiltin(pass.Info, v, "append"):
				checkAppend(pass, fd, v, params, blessed)
			default:
				if fn := analysis.FuncObj(pass.Info, v); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
					pass.Reportf(v.Pos(), "fmt.%s in hot path %s allocates and formats", fn.Name(), fd.Name.Name)
				}
			}

		case *ast.BinaryExpr:
			if v.Op == token.ADD && isString(pass, v.X) {
				pass.Reportf(v.Pos(), "string concatenation in hot path %s allocates", fd.Name.Name)
			}

		case *ast.AssignStmt:
			if v.Tok == token.ADD_ASSIGN && len(v.Lhs) == 1 && isString(pass, v.Lhs[0]) {
				pass.Reportf(v.Pos(), "string concatenation in hot path %s allocates", fd.Name.Name)
			}
		}
		return true
	})
}

func isString(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.Info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// checkAppend allows growth only of slices whose storage the caller
// owns: parameters, the receiver, and blessed locals (every assignment
// derives from caller-owned storage — see blessedLocals). Appending to
// any other local or package-level slice has no capacity contract and
// will allocate once the backing array runs out.
func checkAppend(pass *analysis.Pass, fd *ast.FuncDecl, call *ast.CallExpr, params, blessed map[types.Object]bool) {
	if len(call.Args) == 0 {
		return
	}
	root := analysis.RootIdent(call.Args[0])
	if root == nil {
		pass.Reportf(call.Pos(), "append to a non-parameter slice in hot path %s may allocate", fd.Name.Name)
		return
	}
	obj := pass.Info.Uses[root]
	if obj == nil {
		obj = pass.Info.Defs[root]
	}
	if obj != nil && (params[obj] || blessed[obj]) {
		return
	}
	pass.Reportf(call.Pos(), "append to %q in hot path %s: only slices derived from a parameter or receiver (caller-sized scratch) may grow", root.Name, fd.Name.Name)
}

// blessedLocals computes, as a fixpoint, the locals whose backing
// storage provably belongs to a parameter or the receiver: every
// assignment's right-hand side must derive — through re-slicing, field
// selection, indexing, or a method call on caller-owned storage (a
// scratch accessor like sc.queueBuf(n)) — from a parameter, the
// receiver, or an already-blessed local. A self-referencing update
// (moved = append(moved, x)) neither blesses nor taints.
func blessedLocals(pass *analysis.Pass, fd *ast.FuncDecl, params map[types.Object]bool) map[types.Object]bool {
	// Gather every assignment target and its derivation root.
	type source struct {
		self bool         // RHS roots at the target itself
		root types.Object // nil when the root is unresolvable
	}
	sources := map[types.Object][]source{}
	record := func(lhs, rhs ast.Expr) {
		id, ok := ast.Unparen(lhs).(*ast.Ident)
		if !ok {
			return
		}
		obj := pass.Info.Defs[id]
		if obj == nil {
			obj = pass.Info.Uses[id]
		}
		if obj == nil || params[obj] {
			return
		}
		var src source
		if root := derivationRoot(rhs); root != nil {
			o := pass.Info.Uses[root]
			if o == nil {
				o = pass.Info.Defs[root]
			}
			src = source{self: o == obj, root: o}
		}
		sources[obj] = append(sources[obj], src)
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		st, ok := n.(*ast.AssignStmt)
		if !ok || len(st.Lhs) != len(st.Rhs) {
			return true
		}
		for i, lhs := range st.Lhs {
			record(lhs, st.Rhs[i])
		}
		return true
	})

	blessed := map[types.Object]bool{}
	for changed := true; changed; {
		changed = false
		for obj, srcs := range sources {
			if blessed[obj] {
				continue
			}
			ok, real := true, false
			for _, s := range srcs {
				if s.self {
					continue
				}
				if s.root == nil || !(params[s.root] || blessed[s.root]) {
					ok = false
					break
				}
				real = true
			}
			// At least one non-self caller-derived source is required: a
			// zero-value local that only ever self-appends owns no storage.
			if ok && real {
				blessed[obj] = true
				changed = true
			}
		}
	}
	return blessed
}

// derivationRoot peels an expression down to the identifier its storage
// derives from: selectors, indexing, slicing and dereferences pass
// through; append derives from its first argument; a method call
// derives from its receiver (scratch accessors hand out caller-owned
// buffers). Anything else — a plain function call, a literal — has no
// caller-owned root and returns nil.
func derivationRoot(e ast.Expr) *ast.Ident {
	for {
		switch v := ast.Unparen(e).(type) {
		case *ast.Ident:
			return v
		case *ast.SelectorExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.SliceExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		case *ast.CallExpr:
			if fun, ok := ast.Unparen(v.Fun).(*ast.SelectorExpr); ok {
				e = fun.X // method call: derive from the receiver
				continue
			}
			if len(v.Args) > 0 {
				if id, ok := ast.Unparen(v.Fun).(*ast.Ident); ok && id.Name == "append" {
					e = v.Args[0]
					continue
				}
			}
			return nil
		default:
			return nil
		}
	}
}

// reportCapture flags closures that capture enclosing variables — the
// capture boxes the variable and the closure itself escapes to the
// heap. A literal capturing nothing compiles to a static function and
// passes.
func reportCapture(pass *analysis.Pass, fd *ast.FuncDecl, lit *ast.FuncLit) {
	seen := map[types.Object]bool{}
	var captured []string
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := pass.Info.Uses[id]
		if obj == nil || seen[obj] {
			return true
		}
		// Captured: declared inside the enclosing function but outside
		// the literal. Parameters and receiver count too.
		if analysis.DeclaredWithin(obj, fd) && !analysis.DeclaredWithin(obj, lit) {
			seen[obj] = true
			captured = append(captured, obj.Name())
		}
		return true
	})
	if len(captured) > 0 {
		sort.Strings(captured)
		pass.Reportf(lit.Pos(), "closure in hot path %s captures %s by reference (heap-allocates)", fd.Name.Name, strings.Join(captured, ", "))
	}
}
