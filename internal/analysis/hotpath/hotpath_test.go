package hotpath_test

import (
	"testing"

	"ftnet/internal/analysis"
	"ftnet/internal/analysis/hotpath"
)

func TestGolden(t *testing.T) {
	analysis.RunGolden(t, hotpath.New(), "testdata/hot")
}
