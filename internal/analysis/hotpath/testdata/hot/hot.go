// Package hot seeds hot-path allocation violations for the golden
// harness. hotAllocs trips every allocation rule once; the appends
// without wants pin the negative space (parameter-rooted growth and
// locals derived from caller-owned scratch); coldSetup pins that the
// rules apply only to annotated functions.
package hot

import "fmt"

type scratch struct {
	buf []int
}

func (s *scratch) grab() []int { return s.buf[:0] }

//ftnet:hotpath
func hotAllocs(dst []int, s *scratch, n int) []int {
	m := make([]int, n) // want "make in hot path hotAllocs allocates"
	p := new(int)       // want "new in hot path hotAllocs allocates"
	mp := map[int]int{} // want "map literal in hot path hotAllocs allocates"
	sl := []int{1, 2}   // want "slice literal in hot path hotAllocs allocates"
	fmt.Println(n)      // want "fmt.Println in hot path hotAllocs allocates and formats"
	var local []int
	local = append(local, n) // want "append to \"local\" in hot path hotAllocs"
	dst = append(dst, n)     // parameter-rooted: no finding
	blessed := s.buf[:0]
	blessed = append(blessed, n) // re-slices a parameter's field: no finding
	handed := s.grab()
	handed = append(handed, n) // a method on a parameter hands out caller-owned storage: no finding
	_, _, _, _, _ = m, p, mp, sl, local
	return append(dst, blessed[0]+handed[0])
}

//ftnet:hotpath
func hotStrings(a, b string) string {
	c := a + b // want "string concatenation in hot path hotStrings allocates"
	c += a     // want "string concatenation in hot path hotStrings allocates"
	return c
}

//ftnet:hotpath
func hotClosure(xs []int, lim int) int {
	n := 0
	f := func(x int) { // want "closure in hot path hotClosure captures lim, n by reference"
		if x < lim {
			n += x
		}
	}
	for _, x := range xs {
		f(x)
	}
	double := func(x int) int { return x * 2 } // captures nothing: no finding
	return double(n)
}

// coldSetup is not annotated, so the rules do not apply.
func coldSetup(n int) []int {
	return make([]int, n)
}
