package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Module is a fully parsed and type-checked module tree.
type Module struct {
	// Root is the module root directory (the one holding go.mod).
	Root string
	// Path is the module path from go.mod.
	Path string
	// Fset is shared by every package, including source-imported
	// stdlib dependencies.
	Fset *token.FileSet
	// Pkgs lists the module's packages in dependency (topological)
	// order: a package appears after everything it imports.
	Pkgs []*Package
}

// Package is one type-checked module package.
type Package struct {
	Path  string
	Dir   string
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

func newInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
}

// importerFunc adapts a function to types.Importer.
type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// stdlibImporter returns the source-based stdlib importer sharing fset.
// Cgo is disabled so packages with cgo variants (net, os/user) resolve
// to their pure-Go files — the analyzers never need cgo-level fidelity.
func stdlibImporter(fset *token.FileSet) types.Importer {
	build.Default.CgoEnabled = false
	return importer.ForCompiler(fset, "source", nil)
}

// LoadModule walks the module rooted at root, parses every non-test
// .go file outside testdata/ and hidden directories, and type-checks
// every package in dependency order. Any parse or type error fails the
// load — ftnetvet maps that to exit code 2, distinct from exit 1 for
// rule violations.
func LoadModule(root string) (*Module, error) {
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, fmt.Errorf("analysis: resolve root: %w", err)
	}
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}

	fset := token.NewFileSet()
	pkgs := map[string]*Package{} // import path -> parsed package
	err = filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		files, perr := parseDir(fset, path)
		if perr != nil {
			return perr
		}
		if len(files) == 0 {
			return nil
		}
		rel, rerr := filepath.Rel(root, path)
		if rerr != nil {
			return rerr
		}
		importPath := modPath
		if rel != "." {
			importPath = modPath + "/" + filepath.ToSlash(rel)
		}
		pkgs[importPath] = &Package{Path: importPath, Dir: path, Files: files}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("analysis: walk module: %w", err)
	}

	order, err := topoSort(pkgs, modPath)
	if err != nil {
		return nil, err
	}

	m := &Module{Root: root, Path: modPath, Fset: fset}
	std := stdlibImporter(fset)
	checked := map[string]*types.Package{}
	imp := importerFunc(func(path string) (*types.Package, error) {
		if p, ok := checked[path]; ok {
			return p, nil
		}
		return std.Import(path)
	})
	for _, ipath := range order {
		pkg := pkgs[ipath]
		pkg.Info = newInfo()
		conf := types.Config{Importer: imp}
		tpkg, cerr := conf.Check(ipath, fset, pkg.Files, pkg.Info)
		if cerr != nil {
			return nil, fmt.Errorf("analysis: type-check %s: %w", ipath, cerr)
		}
		pkg.Types = tpkg
		checked[ipath] = tpkg
		m.Pkgs = append(m.Pkgs, pkg)
	}
	return m, nil
}

// LoadDir parses and type-checks a single directory as a standalone
// package (import path = directory base name). Only stdlib imports are
// resolvable — this is the loader for golden testdata packages, which
// seed violations against stdlib APIs only.
func LoadDir(dir string) (*Module, *Package, error) {
	fset := token.NewFileSet()
	files, err := parseDir(fset, dir)
	if err != nil {
		return nil, nil, err
	}
	if len(files) == 0 {
		return nil, nil, fmt.Errorf("analysis: no .go files in %s", dir)
	}
	ipath := filepath.Base(dir)
	pkg := &Package{Path: ipath, Dir: dir, Files: files, Info: newInfo()}
	conf := types.Config{Importer: stdlibImporter(fset)}
	tpkg, err := conf.Check(ipath, fset, files, pkg.Info)
	if err != nil {
		return nil, nil, fmt.Errorf("analysis: type-check %s: %w", dir, err)
	}
	pkg.Types = tpkg
	m := &Module{Root: dir, Path: ipath, Fset: fset, Pkgs: []*Package{pkg}}
	return m, pkg, nil
}

func parseDir(fset *token.FileSet, dir string) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") || strings.HasSuffix(n, "_test.go") {
			continue
		}
		names = append(names, n)
	}
	sort.Strings(names)
	var files []*ast.File
	for _, n := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, n), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("analysis: parse: %w", err)
		}
		files = append(files, f)
	}
	return files, nil
}

func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", fmt.Errorf("analysis: read go.mod: %w", err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("analysis: no module directive in %s", gomod)
}

// topoSort orders the module's packages so every package follows its
// intra-module imports. Import cycles are a load error (the compiler
// would reject them too, but the analyzer should say so itself).
func topoSort(pkgs map[string]*Package, modPath string) ([]string, error) {
	deps := map[string][]string{}
	for ipath, pkg := range pkgs {
		seen := map[string]bool{}
		for _, f := range pkg.Files {
			for _, imp := range f.Imports {
				p, err := strconv.Unquote(imp.Path.Value)
				if err != nil {
					continue
				}
				if (p == modPath || strings.HasPrefix(p, modPath+"/")) && !seen[p] {
					seen[p] = true
					deps[ipath] = append(deps[ipath], p)
				}
			}
		}
		sort.Strings(deps[ipath])
	}
	var order []string
	state := map[string]int{} // 0 unvisited, 1 visiting, 2 done
	var visit func(string) error
	visit = func(ipath string) error {
		switch state[ipath] {
		case 1:
			return fmt.Errorf("analysis: import cycle through %s", ipath)
		case 2:
			return nil
		}
		state[ipath] = 1
		for _, dep := range deps[ipath] {
			if _, ok := pkgs[dep]; !ok {
				continue // not a module package dir we loaded
			}
			if err := visit(dep); err != nil {
				return err
			}
		}
		state[ipath] = 2
		order = append(order, ipath)
		return nil
	}
	var roots []string
	for ipath := range pkgs {
		roots = append(roots, ipath)
	}
	sort.Strings(roots)
	for _, ipath := range roots {
		if err := visit(ipath); err != nil {
			return nil, err
		}
	}
	return order, nil
}
