// Package bands implements the band machinery of the paper's Section 3.
//
// A band (paper, before Lemma 6) is a mapping beta from the (d-1)-dimensional
// column space (C_n)^{d-1} into the host cycle [m] that changes by at most 1
// between adjacent columns and masks the b rows beta(z) .. beta(z)+b-1 of
// every column z. Two bands are untouching when, on every column, at least
// one unmasked node separates them (cyclic gap of band bottoms >= b+1).
//
// Lemma 6 is the package's contract: a family of exactly (m-n)/b mutually
// untouching bands leaves, in every column, exactly n unmasked nodes, and
// the unmasked part of the augmented torus B^d_n is an n-torus. The Set
// type stores such a family in a canonical cyclic order and Validate checks
// the slope, untouching and cardinality conditions exhaustively.
package bands

import (
	"fmt"

	"ftnet/internal/grid"
)

// Set is a family of bands over a common column space.
//
// Bands are stored bottom-up in a globally consistent cyclic order: on every
// column z the values Value(0,z), Value(1,z), ... appear in strictly
// increasing cyclic order around [m]. The placement algorithm in
// internal/core produces families in this order by construction; Validate
// re-checks it.
//
// A Set optionally runs in copy-on-write mode (see SeedFrom): it is seeded
// from a template family and records, in a dirty-column bitset, every
// column whose values may differ from the template. The locality-aware
// Theorem 2 pipeline uses the dirty set to touch only the fault footprint
// per Monte-Carlo trial. A tracked Set must be written from one goroutine
// at a time; untracked Sets keep the old free-for-all contract (the dense
// interpolation shards columns across workers).
type Set struct {
	M        int        // host cycle length (dimension 0)
	Width    int        // band width b
	ColShape grid.Shape // shape of the column space, sides n each
	vals     [][]int32  // vals[g][z] = bottom row of band g at column z

	// Copy-on-write state. dirtyBits is nil when tracking is off.
	dirtyBits []uint64
	dirtyList []int32
}

// NewSet allocates a family of k bands with all values zero; callers fill
// values via SetValue before validation.
func NewSet(m, width int, colShape grid.Shape, k int) *Set {
	vals := make([][]int32, k)
	cols := colShape.Size()
	backing := make([]int32, k*cols)
	for g := range vals {
		vals[g], backing = backing[:cols:cols], backing[cols:]
	}
	return &Set{M: m, Width: width, ColShape: colShape.Clone(), vals: vals}
}

// K returns the number of bands.
func (s *Set) K() int { return len(s.vals) }

// NumColumns returns the size of the column space.
func (s *Set) NumColumns() int { return s.ColShape.Size() }

// Value returns the bottom row of band g at column z.
func (s *Set) Value(g, z int) int { return int(s.vals[g][z]) }

// SetValue sets the bottom row of band g at column z. On a tracked set
// (SeedFrom) the column is marked dirty.
func (s *Set) SetValue(g, z, bottom int) {
	s.vals[g][z] = int32(grid.Add(bottom, 0, s.M))
	if s.dirtyBits != nil {
		s.MarkDirty(z)
	}
}

// sameGeometry reports whether the two families share (M, Width, K, column
// space), i.e. whether values can be copied between them verbatim.
func (s *Set) sameGeometry(t *Set) bool {
	if s.M != t.M || s.Width != t.Width || len(s.vals) != len(t.vals) || len(s.ColShape) != len(t.ColShape) {
		return false
	}
	for i := range s.ColShape {
		if s.ColShape[i] != t.ColShape[i] {
			return false
		}
	}
	return true
}

// SeedFrom switches the set into copy-on-write mode seeded from the
// template family tpl: after the call the set is value-identical to tpl
// and its dirty set is empty. The first call (or a geometry change) pays a
// full copy; subsequent calls restore only the columns dirtied since the
// previous SeedFrom, so re-seeding costs O(previous fault footprint), not
// O(columns). tpl must not change between calls that reuse the receiver.
func (s *Set) SeedFrom(tpl *Set) error {
	if !s.sameGeometry(tpl) {
		return fmt.Errorf("bands: SeedFrom geometry mismatch (m=%d/%d k=%d/%d)", s.M, tpl.M, len(s.vals), len(tpl.vals))
	}
	if s.dirtyBits == nil {
		for g := range s.vals {
			copy(s.vals[g], tpl.vals[g])
		}
		s.dirtyBits = make([]uint64, (s.NumColumns()+63)/64)
		s.dirtyList = s.dirtyList[:0]
		return nil
	}
	for _, z := range s.dirtyList {
		for g := range s.vals {
			s.vals[g][z] = tpl.vals[g][z]
		}
		s.dirtyBits[z>>6] &^= 1 << (uint(z) & 63)
	}
	s.dirtyList = s.dirtyList[:0]
	return nil
}

// Tracking reports whether the set is in copy-on-write mode.
func (s *Set) Tracking() bool { return s.dirtyBits != nil }

// MarkDirty records that column z may differ from the seed template.
// No-op when tracking is off or the column is already dirty.
func (s *Set) MarkDirty(z int) {
	if s.dirtyBits == nil {
		return
	}
	w, b := z>>6, uint(z)&63
	if s.dirtyBits[w]&(1<<b) == 0 {
		s.dirtyBits[w] |= 1 << b
		s.dirtyList = append(s.dirtyList, int32(z))
	}
}

// IsDirty reports whether column z is marked dirty. Always false when
// tracking is off.
func (s *Set) IsDirty(z int) bool {
	return s.dirtyBits != nil && s.dirtyBits[z>>6]&(1<<(uint(z)&63)) != 0
}

// DirtyColumns returns the dirty columns in mark order (deterministic: it
// follows the placement algorithm's enumeration). The slice aliases
// internal state — callers must not mutate it, and it is valid only until
// the next SeedFrom. Nil when tracking is off or nothing is dirty; use
// Tracking to distinguish the two.
func (s *Set) DirtyColumns() []int32 { return s.dirtyList }

// DirtyCount returns the number of dirty columns.
func (s *Set) DirtyCount() int { return len(s.dirtyList) }

// CopyBandRange copies bands [gLo, gHi) at column z from src, marking z
// dirty on a tracked receiver. The two families must share geometry (the
// caller's responsibility). The delta-evaluation engine uses it to carry
// an unchanged fault box's footprint values from the previous family
// instead of re-interpolating them.
func (s *Set) CopyBandRange(src *Set, gLo, gHi, z int) {
	for gi := gLo; gi < gHi; gi++ {
		s.vals[gi][z] = src.vals[gi][z]
	}
	if s.dirtyBits != nil {
		s.MarkDirty(z)
	}
}

// ColumnEqual reports whether the receiver and other hold identical band
// values at column z. The two families must share geometry (the caller's
// responsibility); the coupled rate-ladder pipeline uses this to detect
// the columns whose values actually changed between two nested rungs.
func (s *Set) ColumnEqual(other *Set, z int) bool {
	for g := range s.vals {
		if s.vals[g][z] != other.vals[g][z] {
			return false
		}
	}
	return true
}

// Masks reports whether band g masks node (row, z).
func (s *Set) Masks(g, z, row int) bool {
	return grid.InCyclicInterval(row, int(s.vals[g][z]), s.Width, s.M)
}

// MaskedBy returns the index of the band masking (row, z), or -1 if the
// node is unmasked. Runs a binary search over the cyclically ordered band
// bottoms.
func (s *Set) MaskedBy(z, row int) int {
	k := len(s.vals)
	if k == 0 {
		return -1
	}
	// Binary search for the last band whose bottom is <= row in the cyclic
	// order anchored at band 0's bottom.
	anchor := int(s.vals[0][z])
	target := grid.FwdGap(anchor, row, s.M)
	lo, hi := 0, k // invariant: gap(anchor, vals[lo-1]) <= target < gap(anchor, vals[hi])
	for lo < hi {
		mid := (lo + hi) / 2
		if grid.FwdGap(anchor, int(s.vals[mid][z]), s.M) <= target {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	// Candidate bands: lo-1 (below or at row) and, for wraparound, k-1.
	for _, g := range []int{lo - 1, k - 1} {
		if g >= 0 && s.Masks(g, z, row) {
			return g
		}
	}
	return -1
}

// UnmaskedRows appends the unmasked rows of column z in increasing cyclic
// order starting just above band 0, and returns the slice. With a valid
// family of (m-n)/b untouching bands the result has exactly n entries.
func (s *Set) UnmaskedRows(z int, buf []int32) []int32 {
	k := len(s.vals)
	if k == 0 {
		for r := 0; r < s.M; r++ {
			buf = append(buf, int32(r))
		}
		return buf
	}
	for g := 0; g < k; g++ {
		top := grid.Add(int(s.vals[g][z]), s.Width, s.M) // first unmasked row above band g
		next := int(s.vals[(g+1)%k][z])                  // bottom of the next band
		gap := grid.FwdGap(top, next, s.M)
		for o := 0; o < gap; o++ {
			buf = append(buf, int32(grid.Add(top, o, s.M)))
		}
	}
	return buf
}

// ColumnValues appends the band bottoms at column z in family order.
func (s *Set) ColumnValues(z int, buf []int32) []int32 {
	for g := range s.vals {
		buf = append(buf, s.vals[g][z])
	}
	return buf
}

// Report describes a validation failure in detail.
type Report struct {
	OK      bool
	Problem string
}

// Validate checks the three structural conditions on the family:
//
//  1. slope: |beta(z) - beta(z')| <= 1 (cyclically) for adjacent columns;
//  2. untouching: cyclic gap between consecutive band bottoms >= width+1 on
//     every column, including the wraparound pair;
//  3. closure: the gaps around each column sum to exactly M, i.e. the
//     family order is globally consistent and bands never cross.
//
// It returns a descriptive error for the first violation found.
func (s *Set) Validate() error {
	k := len(s.vals)
	if k == 0 {
		return nil
	}
	cols := s.NumColumns()
	if k*(s.Width+1) > s.M {
		return fmt.Errorf("bands: %d bands of width %d cannot fit untouching in cycle of length %d", k, s.Width, s.M)
	}
	// Untouching + closure.
	for z := 0; z < cols; z++ {
		if err := s.validateColumn(z); err != nil {
			return err
		}
	}
	// Slope condition across every adjacent column pair, every dimension.
	coord := make([]int, len(s.ColShape))
	for z := 0; z < cols; z++ {
		s.ColShape.Coord(z, coord)
		for dim := range s.ColShape {
			orig := coord[dim]
			coord[dim] = grid.Add(orig, 1, s.ColShape[dim])
			zn := s.ColShape.Index(coord)
			coord[dim] = orig
			if err := s.validateSlope(z, zn); err != nil {
				return err
			}
		}
	}
	return nil
}

// validateColumn checks the untouching and closure conditions at one
// column.
func (s *Set) validateColumn(z int) error {
	k := len(s.vals)
	need := s.Width + 1
	total := 0
	for g := 0; g < k; g++ {
		next := (g + 1) % k
		gap := grid.FwdGap(int(s.vals[g][z]), int(s.vals[next][z]), s.M)
		if k > 1 && gap < need {
			return fmt.Errorf("bands: bands %d and %d touch at column %d (bottoms %d, %d; gap %d < %d)",
				g, next, z, s.vals[g][z], s.vals[next][z], gap, need)
		}
		total += gap
	}
	if total != s.M {
		return fmt.Errorf("bands: band order inconsistent at column %d (gap sum %d != M %d)", z, total, s.M)
	}
	return nil
}

// validateSlope checks the slope condition between adjacent columns.
func (s *Set) validateSlope(z, zn int) error {
	for g := range s.vals {
		if grid.Dist(int(s.vals[g][z]), int(s.vals[g][zn]), s.M) > 1 {
			return fmt.Errorf("bands: band %d slope violation between columns %d and %d (values %d, %d)",
				g, z, zn, s.vals[g][z], s.vals[g][zn])
		}
	}
	return nil
}

// ValidateDirty is Validate restricted to the fault footprint of a
// tracked set: it checks untouching and closure on every dirty column,
// and the slope condition on every column adjacency incident to a dirty
// column (both directions, so dirty-clean frontiers are fully covered).
// Clean columns are value-identical to the seed template by the SeedFrom
// contract, so validating the template once extends the guarantee to the
// whole family. Calling it on an untracked set is an error.
func (s *Set) ValidateDirty() error {
	if s.dirtyBits == nil {
		return fmt.Errorf("bands: ValidateDirty on an untracked set")
	}
	return s.ValidateColumns(s.dirtyList)
}

// ValidateColumns is Validate restricted to the given columns: untouching
// and closure on each, and the slope condition on every adjacency incident
// to one (both directions). It extends a validity guarantee that already
// covers every other column — the template's for clean columns, or a
// previous rung's for columns whose values did not change — to the whole
// family.
func (s *Set) ValidateColumns(cols []int32) error {
	k := len(s.vals)
	if k == 0 {
		return nil
	}
	if k*(s.Width+1) > s.M {
		return fmt.Errorf("bands: %d bands of width %d cannot fit untouching in cycle of length %d", k, s.Width, s.M)
	}
	coord := make([]int, len(s.ColShape))
	for _, z32 := range cols {
		z := int(z32)
		if err := s.validateColumn(z); err != nil {
			return err
		}
		s.ColShape.Coord(z, coord)
		for dim := range s.ColShape {
			orig := coord[dim]
			for _, delta := range [2]int{1, -1} {
				coord[dim] = grid.Add(orig, delta, s.ColShape[dim])
				zn := s.ColShape.Index(coord)
				if err := s.validateSlope(z, zn); err != nil {
					return err
				}
			}
			coord[dim] = orig
		}
	}
	return nil
}

// UnmaskedPerColumn returns M - K*Width, the number of unmasked rows each
// column has under a valid family.
func (s *Set) UnmaskedPerColumn() int { return s.M - s.K()*s.Width }

// MasksAll reports whether every fault in the list (given as (row, column)
// pairs) is masked by some band. Used as a post-placement check.
func (s *Set) MasksAll(faults [][2]int) error {
	for _, f := range faults {
		if s.MaskedBy(f[1], f[0]) < 0 {
			return fmt.Errorf("bands: fault at row %d column %d left unmasked", f[0], f[1])
		}
	}
	return nil
}
