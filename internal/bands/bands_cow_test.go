package bands

import (
	"strings"
	"testing"

	"ftnet/internal/grid"
)

// Tests for the copy-on-write mode backing the locality-aware Theorem 2
// pipeline: seeding, dirty tracking, O(footprint) re-seeding, and the
// footprint-restricted validator.

// cowTemplate builds a small valid family: m=30, width 2, k=3 bands at
// bottoms 0, 10, 20 on every column of a 6-column line.
func cowTemplate(t *testing.T) *Set {
	t.Helper()
	tpl := NewSet(30, 2, grid.Shape{6}, 3)
	for g := 0; g < 3; g++ {
		for z := 0; z < 6; z++ {
			tpl.SetValue(g, z, g*10)
		}
	}
	if err := tpl.Validate(); err != nil {
		t.Fatalf("template invalid: %v", err)
	}
	return tpl
}

func TestSeedFromTracksAndRestores(t *testing.T) {
	tpl := cowTemplate(t)
	ws := NewSet(30, 2, grid.Shape{6}, 3)
	if ws.Tracking() {
		t.Fatal("fresh set should not track")
	}
	if err := ws.SeedFrom(tpl); err != nil {
		t.Fatal(err)
	}
	if !ws.Tracking() || ws.DirtyCount() != 0 {
		t.Fatalf("after seed: tracking=%v dirty=%d", ws.Tracking(), ws.DirtyCount())
	}
	for g := 0; g < 3; g++ {
		for z := 0; z < 6; z++ {
			if ws.Value(g, z) != tpl.Value(g, z) {
				t.Fatalf("seed copy mismatch at (%d,%d)", g, z)
			}
		}
	}
	// Writes mark their column dirty, once.
	ws.SetValue(1, 3, 11)
	ws.SetValue(2, 3, 21)
	ws.SetValue(0, 5, 1)
	if got := ws.DirtyCount(); got != 2 {
		t.Fatalf("dirty count = %d, want 2", got)
	}
	if !ws.IsDirty(3) || !ws.IsDirty(5) || ws.IsDirty(0) {
		t.Fatalf("dirty bits wrong: %v", ws.DirtyColumns())
	}
	want := []int32{3, 5}
	for i, z := range ws.DirtyColumns() {
		if z != want[i] {
			t.Fatalf("dirty order = %v, want %v", ws.DirtyColumns(), want)
		}
	}
	// Re-seeding restores exactly the dirty columns and clears the set.
	if err := ws.SeedFrom(tpl); err != nil {
		t.Fatal(err)
	}
	if ws.DirtyCount() != 0 {
		t.Fatalf("dirty not cleared: %v", ws.DirtyColumns())
	}
	for g := 0; g < 3; g++ {
		for z := 0; z < 6; z++ {
			if ws.Value(g, z) != tpl.Value(g, z) {
				t.Fatalf("restore mismatch at (%d,%d): %d vs %d", g, z, ws.Value(g, z), tpl.Value(g, z))
			}
		}
	}
}

func TestSeedFromGeometryMismatch(t *testing.T) {
	tpl := cowTemplate(t)
	ws := NewSet(30, 2, grid.Shape{7}, 3)
	if err := ws.SeedFrom(tpl); err == nil {
		t.Fatal("column-count mismatch accepted")
	}
	ws = NewSet(31, 2, grid.Shape{6}, 3)
	if err := ws.SeedFrom(tpl); err == nil {
		t.Fatal("cycle-length mismatch accepted")
	}
}

func TestValidateDirty(t *testing.T) {
	tpl := cowTemplate(t)
	ws := NewSet(30, 2, grid.Shape{6}, 3)
	if err := ws.ValidateDirty(); err == nil || !strings.Contains(err.Error(), "untracked") {
		t.Fatalf("untracked ValidateDirty: %v", err)
	}
	if err := ws.SeedFrom(tpl); err != nil {
		t.Fatal(err)
	}
	if err := ws.ValidateDirty(); err != nil {
		t.Fatalf("clean set: %v", err)
	}
	// A legal one-step slide in one column passes.
	ws.SetValue(1, 3, 11)
	if err := ws.ValidateDirty(); err != nil {
		t.Fatalf("legal slide: %v", err)
	}
	// A two-step slide violates the slope condition against a clean
	// neighbor and must be caught even though the neighbor is not dirty.
	ws.SetValue(1, 3, 12)
	if err := ws.ValidateDirty(); err == nil {
		t.Fatal("slope violation missed")
	}
	// Touching bands within a dirty column are caught.
	if err := ws.SeedFrom(tpl); err != nil {
		t.Fatal(err)
	}
	ws.SetValue(1, 2, 12)
	ws.SetValue(2, 2, 14)
	if err := ws.ValidateDirty(); err == nil {
		t.Fatal("touching bands missed")
	}
}
