package bands

import (
	"testing"
	"testing/quick"

	"ftnet/internal/grid"
)

// TestMaskComplement: for every column, every row is either masked by
// exactly one band or listed in UnmaskedRows — a partition.
func TestMaskComplement(t *testing.T) {
	s := straightSet(120, 4, 10, 3)
	for z := 0; z < 3; z++ {
		unmasked := map[int]bool{}
		for _, r := range s.UnmaskedRows(z, nil) {
			unmasked[int(r)] = true
		}
		for row := 0; row < 120; row++ {
			owner := s.MaskedBy(z, row)
			if owner >= 0 && unmasked[row] {
				t.Fatalf("row %d both masked and unmasked", row)
			}
			if owner < 0 && !unmasked[row] {
				t.Fatalf("row %d neither masked nor unmasked", row)
			}
			// Exactly one band masks it (untouching bands cannot overlap).
			count := 0
			for g := 0; g < s.K(); g++ {
				if s.Masks(g, z, row) {
					count++
				}
			}
			if owner >= 0 && count != 1 {
				t.Fatalf("row %d masked by %d bands", row, count)
			}
		}
	}
}

// TestWindingMaskCount: winding bands still mask exactly width rows per
// column.
func TestWindingMaskCount(t *testing.T) {
	m, width, cols := 80, 5, 8
	s := NewSet(m, width, grid.Shape{cols}, 2)
	vals := []int{10, 11, 12, 13, 12, 11, 10, 10} // winds +3 then back
	for z, v := range vals {
		s.SetValue(0, z, v)
		s.SetValue(1, z, v+40)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	for z := 0; z < cols; z++ {
		masked := 0
		for row := 0; row < m; row++ {
			if s.MaskedBy(z, row) >= 0 {
				masked++
			}
		}
		if masked != 2*width {
			t.Errorf("column %d masks %d rows, want %d", z, masked, 2*width)
		}
		if got := len(s.UnmaskedRows(z, nil)); got != m-2*width {
			t.Errorf("column %d unmasked count %d", z, got)
		}
	}
}

// TestUnmaskedRowsCyclicOrder: the unmasked rows come out in strictly
// increasing cyclic order with gap sum m.
func TestUnmaskedRowsCyclicOrder(t *testing.T) {
	f := func(seed uint8) bool {
		m, width, k := 77, 3, 7
		s := NewSet(m, width, grid.Shape{1}, k)
		base := int(seed) % m
		for g := 0; g < k; g++ {
			s.SetValue(g, 0, grid.Add(base, g*11, m))
		}
		if s.Validate() != nil {
			return true // not a valid family; property vacuous
		}
		rows := s.UnmaskedRows(0, nil)
		total := 0
		for i := range rows {
			next := rows[(i+1)%len(rows)]
			total += grid.FwdGap(int(rows[i]), int(next), m)
		}
		return total == m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMultiColumnShapes(t *testing.T) {
	// A 2-d column space (d=3 host): slope must be checked in both
	// column dimensions.
	shape := grid.Shape{4, 4}
	s := NewSet(60, 3, shape, 2)
	for z := 0; z < shape.Size(); z++ {
		s.SetValue(0, z, 10)
		s.SetValue(1, z, 30)
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("flat bands over 2-d columns invalid: %v", err)
	}
	// Break the slope along dimension 1 only.
	s.SetValue(0, shape.Index([]int{2, 2}), 13)
	if err := s.Validate(); err == nil {
		t.Error("slope violation in second column dimension not caught")
	}
}
