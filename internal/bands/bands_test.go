package bands

import (
	"testing"
	"testing/quick"

	"ftnet/internal/grid"
)

// straightSet builds k straight bands evenly spaced on a cycle of length m.
func straightSet(m, width, k, cols int) *Set {
	s := NewSet(m, width, grid.Shape{cols}, k)
	pitch := m / k
	for g := 0; g < k; g++ {
		for z := 0; z < cols; z++ {
			s.SetValue(g, z, g*pitch)
		}
	}
	return s
}

func TestStraightSetValid(t *testing.T) {
	s := straightSet(120, 4, 10, 9)
	if err := s.Validate(); err != nil {
		t.Fatalf("straight set invalid: %v", err)
	}
	if s.UnmaskedPerColumn() != 120-40 {
		t.Errorf("UnmaskedPerColumn = %d", s.UnmaskedPerColumn())
	}
}

func TestValidateDetectsTouching(t *testing.T) {
	s := straightSet(120, 4, 10, 3)
	s.SetValue(1, 1, s.Value(0, 1)+4) // exactly width apart: touching
	if err := s.Validate(); err == nil {
		t.Error("touching bands passed validation")
	}
}

func TestValidateDetectsSlope(t *testing.T) {
	s := straightSet(120, 4, 10, 5)
	s.SetValue(3, 2, s.Value(3, 2)+2) // jump of 2 between columns 1,2
	if err := s.Validate(); err == nil {
		t.Error("slope-2 band passed validation")
	}
}

func TestValidateDetectsCrossing(t *testing.T) {
	s := straightSet(120, 4, 10, 3)
	// Swap two band values at one column: order inconsistent.
	v0, v1 := s.Value(0, 0), s.Value(1, 0)
	s.SetValue(0, 0, v1)
	s.SetValue(1, 0, v0)
	if err := s.Validate(); err == nil {
		t.Error("crossed bands passed validation")
	}
}

func TestMasksAndMaskedBy(t *testing.T) {
	s := straightSet(120, 4, 10, 4)
	for z := 0; z < 4; z++ {
		for row := 0; row < 120; row++ {
			want := -1
			for g := 0; g < 10; g++ {
				if grid.InCyclicInterval(row, s.Value(g, z), 4, 120) {
					want = g
					break
				}
			}
			if got := s.MaskedBy(z, row); got != want {
				t.Fatalf("MaskedBy(%d,%d) = %d, want %d", z, row, got, want)
			}
		}
	}
}

func TestMaskedByWrapBand(t *testing.T) {
	// A band whose mask wraps around row 0.
	s := NewSet(50, 6, grid.Shape{2}, 2)
	s.SetValue(0, 0, 47) // masks 47,48,49,0,1,2
	s.SetValue(1, 0, 20)
	s.SetValue(0, 1, 47)
	s.SetValue(1, 1, 20)
	for _, row := range []int{47, 49, 0, 2} {
		if got := s.MaskedBy(0, row); got != 0 {
			t.Errorf("MaskedBy(0,%d) = %d, want 0", row, got)
		}
	}
	if got := s.MaskedBy(0, 3); got != -1 {
		t.Errorf("row 3 should be unmasked, got band %d", got)
	}
	if got := s.MaskedBy(0, 25); got != 1 {
		t.Errorf("MaskedBy(0,25) = %d, want 1", got)
	}
}

func TestUnmaskedRowsCountAndComplement(t *testing.T) {
	s := straightSet(120, 4, 10, 3)
	for z := 0; z < 3; z++ {
		rows := s.UnmaskedRows(z, nil)
		if len(rows) != 80 {
			t.Fatalf("column %d: %d unmasked rows, want 80", z, len(rows))
		}
		seen := map[int32]bool{}
		for _, r := range rows {
			if seen[r] {
				t.Fatalf("duplicate unmasked row %d", r)
			}
			seen[r] = true
			if s.MaskedBy(z, int(r)) >= 0 {
				t.Fatalf("unmasked row %d is masked", r)
			}
		}
	}
}

func TestUnmaskedRowsEmptyFamily(t *testing.T) {
	s := NewSet(10, 3, grid.Shape{1}, 0)
	rows := s.UnmaskedRows(0, nil)
	if len(rows) != 10 {
		t.Fatalf("empty family should leave all rows unmasked, got %d", len(rows))
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("empty family should validate: %v", err)
	}
}

func TestWindingBandStillValid(t *testing.T) {
	// One band that winds +1 per column and returns (cols divides m drift
	// back via symmetric descent).
	m, width, cols := 60, 3, 6
	s := NewSet(m, width, grid.Shape{cols}, 2)
	// Band 0 winds up then down: values 10,11,12,11,10,10 -> slope ok,
	// wraps consistently (first and last columns are adjacent).
	vals := []int{10, 11, 12, 11, 10, 10}
	for z, v := range vals {
		s.SetValue(0, z, v)
		s.SetValue(1, z, v+30)
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("winding band invalid: %v", err)
	}
}

func TestColumnValues(t *testing.T) {
	s := straightSet(120, 4, 10, 3)
	vals := s.ColumnValues(1, nil)
	if len(vals) != 10 {
		t.Fatalf("ColumnValues length %d", len(vals))
	}
	for g, v := range vals {
		if int(v) != s.Value(g, 1) {
			t.Fatalf("ColumnValues[%d] = %d", g, v)
		}
	}
}

func TestMasksAllHelper(t *testing.T) {
	s := straightSet(120, 4, 10, 3)
	if err := s.MasksAll([][2]int{{0, 0}, {13, 2}}); err != nil {
		t.Errorf("masked faults reported unmasked: %v", err)
	}
	if err := s.MasksAll([][2]int{{5, 0}}); err == nil {
		t.Error("unmasked fault not reported")
	}
}

func TestExactlyFullFamilyAccepted(t *testing.T) {
	// 4 bands of width 4 with gaps exactly width+1 fill a 20-cycle.
	s := straightSet(20, 4, 4, 2)
	if err := s.Validate(); err != nil {
		t.Errorf("exactly-full family rejected: %v", err)
	}
}

func TestTooManyBandsRejected(t *testing.T) {
	s := straightSet(19, 4, 4, 2) // 4*(4+1) = 20 > 19: cannot fit
	if err := s.Validate(); err == nil {
		t.Error("overfull family passed validation")
	}
}

// Property: for random valid-ish straight families, MaskedBy agrees with
// the direct definition on random probes.
func TestMaskedByProperty(t *testing.T) {
	f := func(seed uint8, probe uint16) bool {
		m, width, k := 90, 3, 6
		s := NewSet(m, width, grid.Shape{2}, k)
		base := int(seed) % m
		for g := 0; g < k; g++ {
			for z := 0; z < 2; z++ {
				s.SetValue(g, z, grid.Add(base, g*15, m))
			}
		}
		row := int(probe) % m
		want := -1
		for g := 0; g < k; g++ {
			if grid.InCyclicInterval(row, s.Value(g, 0), width, m) {
				want = g
				break
			}
		}
		return s.MaskedBy(0, row) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
