package baseline

import (
	"testing"

	"ftnet/internal/fault"
	"ftnet/internal/rng"
)

func TestClusterTorusBasics(t *testing.T) {
	c, err := NewClusterTorus(2, 10, 6)
	if err != nil {
		t.Fatal(err)
	}
	if c.NumNodes() != 600 {
		t.Errorf("NumNodes = %d", c.NumNodes())
	}
	if c.Degree() != 5+4*6 {
		t.Errorf("Degree = %d", c.Degree())
	}
	// Clique edge; inter-cluster edge; non-edge.
	if !c.Adjacent(0, 5) {
		t.Error("clique edge missing")
	}
	if !c.Adjacent(0, 1*6) { // cluster (0,0) and (0,1)
		t.Error("adjacent cluster edge missing")
	}
	if c.Adjacent(0, 5*6*10) { // far cluster
		t.Error("far clusters adjacent")
	}
	if c.Adjacent(3, 3) {
		t.Error("self loop")
	}
}

func TestClusterTorusRejects(t *testing.T) {
	for _, bad := range [][3]int{{0, 10, 3}, {2, 2, 3}, {2, 10, 0}} {
		if _, err := NewClusterTorus(bad[0], bad[1], bad[2]); err == nil {
			t.Errorf("NewClusterTorus(%v) accepted", bad)
		}
	}
}

func TestClusterEmbedNoFaults(t *testing.T) {
	c, _ := NewClusterTorus(2, 12, 4)
	emb, err := c.Embed(fault.NewSet(c.NumNodes()), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(emb.Map) != 144 {
		t.Errorf("embedding size %d", len(emb.Map))
	}
}

func TestClusterEmbedConstantFaultRate(t *testing.T) {
	// With g = Theta(log n) clusters survive constant fault rates whp.
	c, _ := NewClusterTorus(2, 20, 12)
	faults := fault.NewSet(c.NumNodes())
	faults.Bernoulli(rng.New(3), 0.2)
	if _, err := c.Embed(faults, nil); err != nil {
		t.Fatalf("p=0.2 with g=12: %v", err)
	}
}

func TestClusterEmbedEdgeFaults(t *testing.T) {
	c, _ := NewClusterTorus(2, 12, 10)
	faults := fault.NewSet(c.NumNodes())
	faults.Bernoulli(rng.New(5), 0.1)
	edges := fault.NewOracle(7, 0.001)
	if _, err := c.Embed(faults, edges); err != nil {
		t.Fatalf("edge faults: %v", err)
	}
}

func TestClusterEmbedDeadClusterFails(t *testing.T) {
	c, _ := NewClusterTorus(2, 8, 3)
	faults := fault.NewSet(c.NumNodes())
	for slot := 0; slot < 3; slot++ { // kill cluster 5 entirely
		faults.Add(5*3 + slot)
	}
	if _, err := c.Embed(faults, nil); err == nil {
		t.Error("dead cluster should break the embedding")
	}
}

func TestSpareGridBasics(t *testing.T) {
	sg, err := NewSpareGrid(10, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	if sg.Side() != 14 || sg.NumNodes() != 196 || sg.Degree() != 12 {
		t.Errorf("derived quantities wrong: side=%d nodes=%d deg=%d", sg.Side(), sg.NumNodes(), sg.Degree())
	}
	if !sg.Adjacent(0, 3) { // same row, offset 3 = L
		t.Error("bypass edge missing")
	}
	if sg.Adjacent(0, 4) { // offset 4 > L
		t.Error("edge beyond reach")
	}
	if !sg.Adjacent(0, 14) || !sg.Adjacent(0, 42) {
		t.Error("column edges missing")
	}
	if sg.Adjacent(0, 15) { // diagonal
		t.Error("diagonal edge should not exist")
	}
}

func TestSpareGridRecoverSpreadFaults(t *testing.T) {
	sg, _ := NewSpareGrid(20, 6, 3)
	faults := fault.NewSet(sg.NumNodes())
	// 6 faults in well-separated rows/columns.
	for i := 0; i < 6; i++ {
		faults.Add((4*i)*sg.Side() + 4*i)
	}
	emb, err := sg.Recover(faults)
	if err != nil {
		t.Fatal(err)
	}
	if len(emb.Map) != 400 {
		t.Errorf("embedding size %d", len(emb.Map))
	}
}

func TestSpareGridFailsOnClusteredFaults(t *testing.T) {
	sg, _ := NewSpareGrid(20, 6, 3)
	faults := fault.NewSet(sg.NumNodes())
	// 4 consecutive faulty rows exceed bypass reach L-1 = 2.
	for i := 0; i < 4; i++ {
		faults.Add((8+i)*sg.Side() + 3)
	}
	if _, err := sg.Recover(faults); err == nil {
		t.Error("clustered rows beyond bypass reach should fail")
	}
}

func TestSpareGridFailsOnTooManyLines(t *testing.T) {
	sg, _ := NewSpareGrid(20, 3, 10)
	faults := fault.NewSet(sg.NumNodes())
	for i := 0; i < 4; i++ { // 4 faulty rows > 3 spares
		faults.Add((5*i)*sg.Side() + 2*i)
	}
	if _, err := sg.Recover(faults); err == nil {
		t.Error("more faulty rows than spares should fail")
	}
}

func TestSpareGridNoFaults(t *testing.T) {
	sg, _ := NewSpareGrid(8, 0, 1)
	if _, err := sg.Recover(fault.NewSet(sg.NumNodes())); err != nil {
		t.Fatal(err)
	}
}

func TestAnalyticBCH(t *testing.T) {
	deg, nodes := AnalyticBCH(100, 10)
	if deg != 13 || nodes != 10000+1000 {
		t.Errorf("AnalyticBCH = (%d, %d)", deg, nodes)
	}
}

func TestSpareGridRejects(t *testing.T) {
	if _, err := NewSpareGrid(1, 2, 3); err == nil {
		t.Error("n=1 accepted")
	}
	if _, err := NewSpareGrid(10, -1, 3); err == nil {
		t.Error("negative spares accepted")
	}
	if _, err := NewSpareGrid(10, 2, 0); err == nil {
		t.Error("L=0 accepted")
	}
}
