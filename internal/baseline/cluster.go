// Package baseline implements the two comparator constructions the paper
// measures itself against in the introduction:
//
//   - ClusterTorus: an O(log N)-degree random-fault-tolerant torus in the
//     style of Fraigniaud, Kenyon and Pelc [FKP93] — every torus node
//     becomes a cluster of Theta(log n) nodes, with complete intra- and
//     inter-cluster wiring. Theorem 1's contribution is achieving the same
//     goal with degree O(log log N); experiment E6 compares the degree
//     each needs for a target survival rate.
//
//   - SpareGrid: a bounded-degree worst-case-tolerant mesh in the spirit of
//     Bruck, Cypher and Ho [BCH93b]: a mesh with s spare rows and columns
//     and bypass links of reach L (degree 4L). Faulty rows/columns are
//     discarded wholesale; tolerance degrades when faults cluster more
//     than the bypass reach, which is exactly the trade-off the intro's
//     comparison (O(n^{2/3}) vs our O(n^{3/4}) faults) reflects. The BCH
//     construction proper is a full paper of its own; DESIGN.md refinement
//     7 documents this substitution and EXPERIMENTS.md also reports the
//     analytic BCH numbers next to the measured SpareGrid ones.
package baseline

import (
	"fmt"

	"ftnet/internal/embed"
	"ftnet/internal/fault"
	"ftnet/internal/grid"
	"ftnet/internal/torus"
)

// ClusterTorus replaces every node of the d-dimensional n-torus with a
// clique of G nodes and joins adjacent clusters completely.
type ClusterTorus struct {
	D, N, G int
	Shape   grid.Shape // torus of clusters
}

// NewClusterTorus validates and builds the host description.
func NewClusterTorus(d, n, g int) (*ClusterTorus, error) {
	if d < 1 || n < 3 || g < 1 {
		return nil, fmt.Errorf("baseline: invalid cluster torus d=%d n=%d g=%d", d, n, g)
	}
	return &ClusterTorus{D: d, N: n, G: g, Shape: grid.Uniform(d, n)}, nil
}

// NumNodes returns g * n^d.
func (c *ClusterTorus) NumNodes() int { return c.G * c.Shape.Size() }

// Degree returns (g-1) + 2d*g.
func (c *ClusterTorus) Degree() int { return c.G - 1 + 2*c.D*c.G }

// Cluster returns the cluster id of host node v.
func (c *ClusterTorus) Cluster(v int) int { return v / c.G }

// Adjacent reports host adjacency.
func (c *ClusterTorus) Adjacent(u, v int) bool {
	if u == v {
		return false
	}
	cu, cv := c.Cluster(u), c.Cluster(v)
	if cu == cv {
		return true
	}
	// Torus adjacency of clusters.
	a := c.Shape.Coord(cu, nil)
	b := c.Shape.Coord(cv, nil)
	diff := -1
	for i := range a {
		if a[i] != b[i] {
			if diff >= 0 {
				return false
			}
			diff = i
		}
	}
	if diff < 0 {
		return false
	}
	return grid.Dist(a[diff], b[diff], c.Shape[diff]) == 1
}

// Embed picks one usable node per cluster greedily (same incremental rule
// as Theorem 1's mapping f) and verifies the result. edges may be nil for
// reliable links.
func (c *ClusterTorus) Embed(nodeFaults *fault.Set, edges *fault.Oracle) (*embed.Embedding, error) {
	guest, err := torus.NewUniform(torus.TorusKind, c.D, c.N)
	if err != nil {
		return nil, err
	}
	e := embed.New(guest)
	gc := make([]int, c.D)
	constraints := make([]int, 0, 2*c.D)
	for gi := 0; gi < guest.N(); gi++ {
		guest.Shape.Coord(gi, gc)
		cluster := c.Shape.Index(gc)
		constraints = constraints[:0]
		for j, x := range gc {
			orig := gc[j]
			gc[j] = grid.Sub(x, 1, c.Shape[j])
			if lower := guest.Shape.Index(gc); lower < gi {
				constraints = append(constraints, e.Map[lower])
			}
			gc[j] = grid.Add(x, 1, c.Shape[j])
			if upper := guest.Shape.Index(gc); upper < gi {
				constraints = append(constraints, e.Map[upper])
			}
			gc[j] = orig
		}
		chosen := -1
		for slot := 0; slot < c.G; slot++ {
			v := cluster*c.G + slot
			if nodeFaults.Has(v) {
				continue
			}
			ok := true
			if edges != nil {
				for _, u := range constraints {
					if edges.EdgeFaulty(v, u) {
						ok = false
						break
					}
				}
			}
			if ok {
				chosen = v
				break
			}
		}
		if chosen < 0 {
			return nil, fmt.Errorf("baseline: cluster %d has no usable node", cluster)
		}
		e.Map[gi] = chosen
	}
	if err := e.Verify(clusterHost{c: c, nodes: nodeFaults, edges: edges}); err != nil {
		return nil, err
	}
	return e, nil
}

type clusterHost struct {
	c     *ClusterTorus
	nodes *fault.Set
	edges *fault.Oracle
}

func (h clusterHost) NumNodes() int          { return h.c.NumNodes() }
func (h clusterHost) Adjacent(u, v int) bool { return h.c.Adjacent(u, v) }
func (h clusterHost) NodeFaulty(u int) bool  { return h.nodes.Has(u) }
func (h clusterHost) EdgeFaulty(u, v int) bool {
	if h.edges == nil {
		return false
	}
	return h.edges.EdgeFaulty(u, v)
}
