package baseline

import (
	"fmt"
	"sort"

	"ftnet/internal/embed"
	"ftnet/internal/fault"
	"ftnet/internal/torus"
)

// SpareGrid is a BCH-style worst-case comparator: an (n+s) x (n+s) mesh
// with s spare rows, s spare columns, and bypass links of reach L in each
// direction along both axes (degree 4L). Recovery discards every row and
// column containing a fault; it succeeds iff at most s rows and s columns
// are faulty and no run of more than L-1 consecutive rows (or columns) is
// discarded — the bounded bypass cannot jump further.
type SpareGrid struct {
	N int // guest mesh side
	S int // spare rows = spare columns
	L int // bypass reach (L=1 means plain mesh edges only)
}

// NewSpareGrid validates the parameters.
func NewSpareGrid(n, s, l int) (*SpareGrid, error) {
	if n < 2 || s < 0 || l < 1 {
		return nil, fmt.Errorf("baseline: invalid spare grid n=%d s=%d L=%d", n, s, l)
	}
	return &SpareGrid{N: n, S: s, L: l}, nil
}

// Side returns the host side n+s.
func (sg *SpareGrid) Side() int { return sg.N + sg.S }

// NumNodes returns (n+s)^2.
func (sg *SpareGrid) NumNodes() int { return sg.Side() * sg.Side() }

// Degree returns the maximum degree 4L (interior nodes; boundary lower).
func (sg *SpareGrid) Degree() int { return 4 * sg.L }

// Adjacent reports host adjacency: same row or column, offset 1..L.
func (sg *SpareGrid) Adjacent(u, v int) bool {
	if u == v {
		return false
	}
	side := sg.Side()
	ru, cu := u/side, u%side
	rv, cv := v/side, v%side
	if ru == rv {
		d := cu - cv
		if d < 0 {
			d = -d
		}
		return d <= sg.L
	}
	if cu == cv {
		d := ru - rv
		if d < 0 {
			d = -d
		}
		return d <= sg.L
	}
	return false
}

// Recover attempts to extract a fault-free n x n mesh by discarding faulty
// rows and columns. It returns a descriptive error when the fault pattern
// exceeds the scheme's tolerance (too many faulty lines, or a cluster
// deeper than the bypass reach).
func (sg *SpareGrid) Recover(faults *fault.Set) (*embed.Embedding, error) {
	side := sg.Side()
	badRow := map[int]bool{}
	badCol := map[int]bool{}
	faults.ForEach(func(v int) {
		badRow[v/side] = true
		badCol[v%side] = true
	})
	if len(badRow) > sg.S {
		return nil, fmt.Errorf("baseline: %d faulty rows exceed %d spares", len(badRow), sg.S)
	}
	if len(badCol) > sg.S {
		return nil, fmt.Errorf("baseline: %d faulty columns exceed %d spares", len(badCol), sg.S)
	}
	keepRows, err := sg.keepLines(badRow, "row")
	if err != nil {
		return nil, err
	}
	keepCols, err := sg.keepLines(badCol, "column")
	if err != nil {
		return nil, err
	}
	guest, err := torus.NewUniform(torus.MeshKind, 2, sg.N)
	if err != nil {
		return nil, err
	}
	e := embed.New(guest)
	for i := 0; i < sg.N; i++ {
		for j := 0; j < sg.N; j++ {
			e.Map[i*sg.N+j] = keepRows[i]*side + keepCols[j]
		}
	}
	if err := e.Verify(spareHost{sg: sg, faults: faults}); err != nil {
		return nil, err
	}
	return e, nil
}

// keepLines returns the first n kept line indices, checking the bypass
// reach: consecutive kept lines may be at most L apart.
func (sg *SpareGrid) keepLines(bad map[int]bool, kind string) ([]int, error) {
	side := sg.Side()
	keep := make([]int, 0, sg.N)
	for x := 0; x < side && len(keep) < sg.N; x++ {
		if !bad[x] {
			keep = append(keep, x)
		}
	}
	if len(keep) < sg.N {
		return nil, fmt.Errorf("baseline: only %d usable %ss", len(keep), kind)
	}
	sort.Ints(keep)
	// A leading or trailing gap only shifts the mesh origin (the guest has
	// no wrap), so only gaps between consecutive kept lines matter.
	for i := 1; i < sg.N; i++ {
		if keep[i]-keep[i-1] > sg.L {
			return nil, fmt.Errorf("baseline: %d consecutive faulty %ss exceed bypass reach %d",
				keep[i]-keep[i-1]-1, kind, sg.L-1)
		}
	}
	return keep, nil
}

// AnalyticBCH returns the resource claims of the real Bruck-Cypher-Ho
// construction [BCH93b] for the n x n mesh tolerating k worst-case faults,
// as cited by the paper's introduction: degree 13 and n^2 + O(k^3) nodes
// (so k = O(n^{2/3}) at linear redundancy). Used for the E9 comparison
// table alongside the measured SpareGrid comparator.
func AnalyticBCH(n, k int) (degree int, nodes int) {
	return 13, n*n + k*k*k
}

type spareHost struct {
	sg     *SpareGrid
	faults *fault.Set
}

func (h spareHost) NumNodes() int            { return h.sg.NumNodes() }
func (h spareHost) Adjacent(u, v int) bool   { return h.sg.Adjacent(u, v) }
func (h spareHost) NodeFaulty(u int) bool    { return h.faults.Has(u) }
func (h spareHost) EdgeFaulty(u, v int) bool { return false }
