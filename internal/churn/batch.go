package churn

import (
	"errors"

	"ftnet/internal/core"
	"ftnet/internal/fterr"
	"ftnet/internal/rng"
)

// Batched lifetime evaluation: the daemon's batching policy ported into
// the churn layer. Instead of paying a full pipeline evaluation — place,
// extract, verify — after every Gillespie event, a batched trial decides
// each event's up/down status with the placement-only probe
// (core.Graph.Tolerates) and runs the full session evaluation once per
// window of Batch events, where the session's bidirectional add/clear
// absorbs the whole window's mutations in one warm incremental step.
//
// Why a probe instead of bisection: the natural "absorb additions and
// binary-search the death event" scheme leans on embeddability being
// antitone in the fault set (a superset's survival implying every
// prefix's). That premise is FALSE for the paper's conditions: condition
// 2 can reject a fault set and accept a superset, because an added fault
// can merge two boxes that each needed their own band segment in a
// shared slab into one box needing a single segment.
// TestToleratesNotMonotone pins a three/four-fault counterexample, and
// unrepaired Gillespie streams cross such states in practice, so no
// inference from a window-end evaluation to the unevaluated prefixes is
// sound. What IS sound: every unhealthy classification the pipeline can
// make is decided by the placement stages alone — extraction and
// verification fail only on bug-class invariant violations — so the
// probe is the oracle's exact status at a fraction of its cost.
//
// The batched trial therefore draws the same events in the same order
// as the per-event oracle, accrues availability with the same
// floating-point operands in the same order, latches death at the same
// event with the same standing fault count, and aborts on MaxEvents at
// the same point with the same error: every reported metric is
// bit-identical by construction (the goldens in batch_test.go pin it
// across mixed node+edge streams at d=2 and d=3). Only the cost moves:
// a window of k events pays k probes plus one warm session Eval instead
// of k full evaluations, and the window-boundary Eval doubles as a
// cross-check that the probe and the full pipeline agree on the state.

// evalClass folds a pipeline outcome into up/down, passing bug-class
// errors through.
func evalClass(err error) (bool, error) {
	if err == nil {
		return true, nil
	}
	var ue *core.UnhealthyError
	if errors.As(err, &ue) {
		return false, nil
	}
	return false, err
}

// evalErrOnly drops the Result of a Session.Eval: the batch layer only
// classifies outcomes, it never reads the embedding.
func evalErrOnly(_ *core.Result, err error) error { return err }

// batchedLifetimeTrial is lifetimeTrial with probed statuses and
// windowed session evaluation: same generator draws in the same order,
// same outputs bit for bit, fewer full pipeline evaluations. batch is
// the session evaluation cadence (>= 2).
func batchedLifetimeTrial(g *core.Graph, ts *trialState, stream *rng.PCG, horizon float64, maxEvents, batch int, opts Options, out []float64) error {
	ts.gen.Reset()
	ts.ses.Reset()
	ts.ch.Reset()

	up := true // the fault-free host trivially contains the torus
	died := false
	deathTime := horizon
	deathFaults := 0
	upTime := 0.0
	now := 0.0
	events := 0
	pending := 0 // events since the last committed session Eval
	for {
		if events >= maxEvents {
			// Refusing to report is better than silently crediting the
			// unsimulated tail of the horizon as up-time.
			return fterr.New(fterr.Conflict, "churn.lifetimeTrial", "trial exceeded MaxEvents=%d at t=%.3g of horizon %.3g; raise Options.MaxEvents or shorten the horizon", maxEvents, now, horizon)
		}
		ev, err := ts.gen.NextMixed(stream, ts.ch)
		if err != nil {
			return err
		}
		if ev.Time >= horizon {
			break // the pre-event state persists to the horizon
		}
		if up {
			upTime += ev.Time - now
		}
		now = ev.Time
		events++
		pending++

		// The session is only evaluated at window boundaries, but its note
		// contract — every mutation since the last successful Eval — must
		// hold at each of them, so every event reports its deltas.
		ts.ses.NoteAdded(ev.EffAdded)
		ts.ses.NoteCleared(ev.EffCleared)

		upNow, err := evalClass(g.Tolerates(ts.ch.Effective(), ts.sc))
		if err != nil {
			return err
		}
		if up && !upNow && !died {
			died = true
			deathTime = now
			deathFaults = ts.ch.Nodes().Count() + ts.ch.Edges().Count()
		}
		up = upNow
		if died && opts.StopAtDeath {
			break
		}
		if pending >= batch && up {
			// Window boundary on a tolerated state: one warm incremental
			// Eval absorbs the whole window's adds and clears, keeps the
			// session's committed state (and its next diff) bounded, and
			// cross-checks the probe against the full pipeline. A down
			// state defers the boundary — the oracle's failed Evals do not
			// commit either, and the notes keep accumulating.
			if err := evalErrOnly(ts.ses.Eval(ts.ch.Effective())); err != nil {
				var ue *core.UnhealthyError
				if errors.As(err, &ue) {
					return fterr.New(fterr.Internal, "churn.batch", "placement probe accepted a state the full pipeline rejects: %v", err)
				}
				return err
			}
			pending = 0
		}
	}
	if up {
		upTime += horizon - now
	}
	out[MetricDeathTime] = deathTime
	if died {
		out[MetricDied] = 1
		out[MetricDeathFaults] = float64(deathFaults)
	}
	out[MetricAvailability] = upTime / horizon
	out[MetricEvents] = float64(events)
	return nil
}
