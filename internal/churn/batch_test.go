package churn

import (
	"testing"

	"ftnet/internal/core"
	"ftnet/internal/fault"
)

// Golden exactness suite for the batched evaluator: for any process,
// seed and window size, Simulate with Options.Batch must reproduce the
// per-event oracle bit for bit — death time, death rate, death size,
// availability (same floating-point accrual order), event counts. The
// regimes below are chosen to cross the unhealthy boundary in both
// directions (the 422-poison steps of the serve path): clustered bursts
// kill the torus mid-stream, repairs revive it, so the windows exercise
// the one-eval survival path, the death bisection, and the
// repair-revival eval.

// assertBatchGolden compares the per-event oracle against batched runs
// at several window sizes on identical (proc, trials, seed, opts).
func assertBatchGolden(t *testing.T, g *core.Graph, proc Process, trials int, seed uint64, opts Options, batches []int, label string) Result {
	t.Helper()
	opts.Batch = 0
	want, err := Simulate(g, proc, trials, seed, opts)
	if err != nil {
		t.Fatalf("%s: oracle: %v", label, err)
	}
	for _, b := range batches {
		opts.Batch = b
		got, err := Simulate(g, proc, trials, seed, opts)
		if err != nil {
			t.Fatalf("%s: batch=%d: %v", label, b, err)
		}
		if got.Trials != want.Trials {
			t.Fatalf("%s: batch=%d ran %d trials, oracle %d", label, b, got.Trials, want.Trials)
		}
		for c := 0; c < NumMetrics; c++ {
			if got.Mean[c] != want.Mean[c] || got.StdErr[c] != want.StdErr[c] {
				t.Fatalf("%s: batch=%d metric %d = (%v, %v), oracle (%v, %v) — batched evaluation diverged",
					label, b, c, got.Mean[c], got.StdErr[c], want.Mean[c], want.StdErr[c])
			}
		}
	}
	return want
}

// TestBatchGoldenAging pins the death-time bisection on the pure-aging
// regime of E16: no repairs, every trial dies, StopAtDeath — the whole
// trial is one growing window and the exact death event must come out
// of the bisection, including the events-processed count the oracle
// stops at.
func TestBatchGoldenAging(t *testing.T) {
	g := testGraph(t)
	proc := Process{Arrival: 5e-4}
	died := 0.0
	for seed := uint64(0); seed < 20; seed++ {
		rep := assertBatchGolden(t, g, proc, 2, seed,
			Options{Horizon: 400, Workers: 1, StopAtDeath: true},
			[]int{2, 7, 64}, "aging")
		died += rep.DeathRate()
	}
	if died == 0 {
		t.Fatal("no trial died: the bisection path was never exercised")
	}
}

// TestBatchGoldenMixed pins exactness on the full mixed process: node
// arrivals and repairs, link flaps and repairs, clustered node and edge
// bursts, deaths and revivals inside the horizon.
func TestBatchGoldenMixed(t *testing.T) {
	g := testGraph(t)
	proc := Process{
		Arrival:       1e-5,
		Repair:        0.8,
		BurstRate:     0.4,
		BurstSize:     18,
		BurstPattern:  fault.Cluster,
		EdgeArrival:   1e-5,
		EdgeRepair:    0.8,
		EdgeBurstRate: 0.2,
		EdgeBurstSize: 8,
	}
	died, avail := 0.0, 0.0
	for seed := uint64(0); seed < 20; seed++ {
		rep := assertBatchGolden(t, g, proc, 2, seed,
			Options{Horizon: 20, Workers: 1},
			[]int{2, 7, 64}, "mixed")
		died += rep.DeathRate()
		avail += rep.Mean[MetricAvailability]
	}
	if died == 0 {
		t.Fatal("no mixed trial died: raise the burst size so windows cross the unhealthy boundary")
	}
	if avail == 0 {
		t.Fatal("availability identically zero: the revival path was never exercised")
	}
}

// TestBatchGoldenMaxEvents pins the runaway-guard equivalence: the
// batched trial must abort with the oracle's exact error — same cap,
// same last event time — when the cap fires, and must NOT abort when
// StopAtDeath ends the trial inside the final window first.
func TestBatchGoldenMaxEvents(t *testing.T) {
	g := testGraph(t)
	proc := Process{Arrival: 5e-4, Repair: 0.5}
	opts := Options{Horizon: 400, Workers: 1, MaxEvents: 40}
	_, errOracle := Simulate(g, proc, 2, 3, opts)
	if errOracle == nil {
		t.Fatal("oracle did not hit MaxEvents; lower the cap")
	}
	opts.Batch = 16
	_, errBatch := Simulate(g, proc, 2, 3, opts)
	if errBatch == nil {
		t.Fatal("batched run did not hit MaxEvents")
	}
	if errOracle.Error() != errBatch.Error() {
		t.Fatalf("MaxEvents aborts diverged:\noracle:  %v\nbatched: %v", errOracle, errBatch)
	}

	// Aging with StopAtDeath: deaths land before the cap, so neither
	// evaluator may abort even though the batched window could absorb
	// past it.
	aging := Process{Arrival: 5e-4}
	aopts := Options{Horizon: 400, Workers: 1, MaxEvents: 300, StopAtDeath: true}
	want, err := Simulate(g, aging, 2, 3, aopts)
	if err != nil {
		t.Fatalf("oracle aborted under StopAtDeath: %v", err)
	}
	aopts.Batch = 512
	got, err := Simulate(g, aging, 2, 3, aopts)
	if err != nil {
		t.Fatalf("batched aborted under StopAtDeath: %v", err)
	}
	for c := 0; c < NumMetrics; c++ {
		if got.Mean[c] != want.Mean[c] {
			t.Fatalf("metric %d = %v, oracle %v", c, got.Mean[c], want.Mean[c])
		}
	}
}

// TestBatchGoldenWorkers pins determinism: batched results are
// bit-identical across worker counts, like every other engine.
func TestBatchGoldenWorkers(t *testing.T) {
	g := testGraph(t)
	proc := Process{Arrival: 3e-5, Repair: 0.4}
	var want Result
	for i, workers := range []int{1, 4} {
		rep, err := Simulate(g, proc, 10, 99, Options{Horizon: 40, Workers: workers, Batch: 16})
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			want = rep
			continue
		}
		for c := 0; c < NumMetrics; c++ {
			if rep.Mean[c] != want.Mean[c] || rep.StdErr[c] != want.StdErr[c] {
				t.Fatalf("workers=%d: metric %d = (%v, %v), want (%v, %v)",
					workers, c, rep.Mean[c], rep.StdErr[c], want.Mean[c], want.StdErr[c])
			}
		}
	}
}

// TestBatchRejectsIndependent pins the config error: the from-scratch
// ablation has no incremental session to bisect with.
func TestBatchRejectsIndependent(t *testing.T) {
	g := testGraph(t)
	if _, err := Simulate(g, Process{Arrival: 1e-5}, 2, 1, Options{Horizon: 5, Batch: 8, Independent: true}); err == nil {
		t.Fatal("Batch with Independent must be rejected")
	}
}

// TestBatchGolden3D is the d=3 leg: mixed node+edge churn with
// clustered bursts on the 9.4M-node host, batched vs per-event, bit
// identical. Box footprints are 2-D column regions here, so this is
// also where the window's one-eval survival path pays off hardest.
func TestBatchGolden3D(t *testing.T) {
	if testing.Short() {
		t.Skip("9.4M-node instance")
	}
	g, err := core.NewGraph(core.Params{D: 3, W: 4, Pitch: 16, Scale: 1})
	if err != nil {
		t.Fatal(err)
	}
	proc := Process{
		Arrival:      2e-7,
		Repair:       0.6,
		BurstRate:    0.8,
		BurstSize:    60,
		BurstPattern: fault.Cluster,
		EdgeArrival:  4e-8,
		EdgeRepair:   0.6,
	}
	events := 0.0
	for seed := uint64(0); seed < 20; seed++ {
		rep := assertBatchGolden(t, g, proc, 1, seed,
			Options{Horizon: 6, Workers: 1},
			[]int{4, 32}, "d3")
		events += rep.Mean[MetricEvents]
	}
	if events == 0 {
		t.Fatal("no events at d=3; raise the rates")
	}
}
