// Package churn generates dynamic fault workloads — stochastic fault
// arrivals, repairs, and adversarial clustered bursts over continuous
// time — and drives the Theorem 2 pipeline through them via the
// core.Session delta-evaluation engine.
//
// The paper's model is static: inject a fault set once, build the
// embedding once. Real deployments see faults arrive *and get repaired*
// over a machine's lifetime (cf. the fault-tolerant network constructors
// and Byzantine-churn lines of work in PAPERS.md), so this package models
// the host as a continuous-time Markov process: every healthy node fails
// at rate Arrival, every faulty node is repaired at rate Repair, and —
// optionally — adversarial bursts drop a spatially clustered batch of
// faults at rate BurstRate (reusing the Theorem 3 adversary patterns of
// internal/fault). Events are drawn by Gillespie's direct method, so
// inter-event times and event kinds are exact for the rate triple.
//
// Each churn event mutates the fault set by a recorded delta, which is
// exactly what core.Session consumes: one event costs one incremental
// Eval — O(fault footprint), not O(N) — instead of a from-scratch
// pipeline run (BenchmarkChurnSession pins the gap). The lifetime driver
// (lifetime.go) aggregates trials into death-time, death-size and
// availability statistics on parallel.RunLifetime, with the same
// worker-count-independent determinism as every other engine in the
// repository.
package churn

import (
	"math"

	"ftnet/internal/fault"
	"ftnet/internal/fterr"
	"ftnet/internal/grid"
	"ftnet/internal/rng"
	"ftnet/internal/validate"
)

// Process parameterizes the fault-churn stochastic process on a host
// with a fixed node count.
type Process struct {
	// Arrival is the failure rate of each healthy node (events per node
	// per unit time). The aggregate arrival rate is Arrival * #healthy.
	Arrival float64
	// Repair is the repair rate of each faulty node; 0 disables repair
	// (the pure-aging regime of the mean-faults-to-death experiments).
	Repair float64
	// BurstRate, if positive, adds adversarial burst events at this
	// aggregate rate: each burst places BurstSize clustered faults with
	// the BurstPattern adversary from internal/fault.
	BurstRate float64
	// BurstSize is the number of faults per burst (default 8).
	BurstSize int
	// BurstPattern is the adversary used for bursts (default
	// fault.Cluster, the densest axis-aligned box).
	BurstPattern fault.Pattern
}

// Validate checks the rate triple.
func (p Process) Validate() error {
	if err := validate.Rate("churn: arrival rate", p.Arrival); err != nil {
		return err
	}
	if err := validate.Rate("churn: repair rate", p.Repair); err != nil {
		return err
	}
	if err := validate.Rate("churn: burst rate", p.BurstRate); err != nil {
		return err
	}
	if p.Arrival == 0 && p.Repair == 0 && p.BurstRate == 0 {
		return fterr.New(fterr.Invalid, "churn.Validate", "all rates zero; the process has no events")
	}
	if p.BurstRate > 0 && p.BurstSize < 0 {
		return fterr.New(fterr.Invalid, "churn.Validate", "negative burst size %d", p.BurstSize)
	}
	return nil
}

// Event is one churn step: the simulated time it occurred at and the
// fault-set delta it applied. Added and Cleared alias the generator's
// buffers and are valid only until the next Next call.
type Event struct {
	Time    float64
	Added   []int
	Cleared []int
}

// Generator draws the event sequence of one trial and applies it to a
// fault set. It owns the delta buffers, so steady-state stepping
// allocates nothing (bursts excepted — they build a pattern set). A
// Generator must not be shared by concurrent trials; call Reset at each
// trial start.
type Generator struct {
	proc  Process
	shape grid.Shape // host node grid, for spatially structured bursts
	now   float64

	added, cleared []int
}

// NewGenerator builds a generator for the process on a host whose flat
// node indices are row-major over hostShape (core.Graph.NodeShape).
func NewGenerator(proc Process, hostShape grid.Shape) (*Generator, error) {
	if err := proc.Validate(); err != nil {
		return nil, err
	}
	if proc.BurstSize == 0 {
		proc.BurstSize = 8
	}
	return &Generator{proc: proc, shape: hostShape.Clone()}, nil
}

// Reset rewinds the clock for a new trial.
func (gen *Generator) Reset() { gen.now = 0 }

// Now returns the current simulated time.
func (gen *Generator) Now() float64 { return gen.now }

// Next advances to the next churn event, mutates faults by its delta,
// and returns it. Gillespie's direct method: the waiting time is
// exponential in the total rate of the current state, and the event kind
// is chosen proportionally to its rate. An error means the process is
// stuck (every competing rate is zero in this state) — with Arrival > 0
// that requires an all-faulty host.
func (gen *Generator) Next(r rng.Source, faults *fault.Set) (Event, error) {
	n := faults.Len()
	count := faults.Count()
	rateArrival := gen.proc.Arrival * float64(n-count)
	rateRepair := gen.proc.Repair * float64(count)
	total := rateArrival + rateRepair + gen.proc.BurstRate
	if total <= 0 {
		return Event{}, fterr.New(fterr.Conflict, "churn.Next", "no event possible (%d/%d nodes faulty, rates %+v)", count, n, gen.proc)
	}
	// Exponential waiting time; 1-U keeps the argument in (0, 1].
	gen.now += -math.Log(1-r.Float64()) / total
	ev := Event{Time: gen.now, Added: gen.added[:0], Cleared: gen.cleared[:0]}
	switch u := r.Float64() * total; {
	case u < rateArrival:
		// Uniform healthy node, by rejection: the expected iteration
		// count is n/(n-count), ~1 in every realistic regime.
		for {
			v := r.Intn(n)
			if !faults.Has(v) {
				faults.Add(v)
				ev.Added = append(ev.Added, v)
				break
			}
		}
	case u < rateArrival+rateRepair:
		v := faults.Nth(r.Intn(count))
		faults.Remove(v)
		ev.Cleared = append(ev.Cleared, v)
	default:
		burst, err := fault.Adversarial(gen.proc.BurstPattern, gen.shape, gen.proc.BurstSize, 2, r)
		if err != nil {
			return Event{}, fterr.Wrap(fterr.Invalid, "churn.burst", err)
		}
		burst.ForEach(func(v int) {
			if !faults.Has(v) {
				faults.Add(v)
				ev.Added = append(ev.Added, v)
			}
		})
	}
	gen.added, gen.cleared = ev.Added[:0], ev.Cleared[:0]
	return ev, nil
}
