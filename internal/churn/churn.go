// Package churn generates dynamic fault workloads — stochastic fault
// arrivals, repairs, and adversarial clustered bursts over continuous
// time — and drives the Theorem 2 pipeline through them via the
// core.Session delta-evaluation engine.
//
// The paper's model is static: inject a fault set once, build the
// embedding once. Real deployments see faults arrive *and get repaired*
// over a machine's lifetime (cf. the fault-tolerant network constructors
// and Byzantine-churn lines of work in PAPERS.md), so this package models
// the host as a continuous-time Markov process: every healthy node fails
// at rate Arrival, every faulty node is repaired at rate Repair, and —
// optionally — adversarial bursts drop a spatially clustered batch of
// faults at rate BurstRate (reusing the Theorem 3 adversary patterns of
// internal/fault). Events are drawn by Gillespie's direct method, so
// inter-event times and event kinds are exact for the rate triple.
//
// Each churn event mutates the fault set by a recorded delta, which is
// exactly what core.Session consumes: one event costs one incremental
// Eval — O(fault footprint), not O(N) — instead of a from-scratch
// pipeline run (BenchmarkChurnSession pins the gap). The lifetime driver
// (lifetime.go) aggregates trials into death-time, death-size and
// availability statistics on parallel.RunLifetime, with the same
// worker-count-independent determinism as every other engine in the
// repository.
package churn

import (
	"math"

	"ftnet/internal/fault"
	"ftnet/internal/fterr"
	"ftnet/internal/grid"
	"ftnet/internal/rng"
	"ftnet/internal/validate"
)

// Process parameterizes the fault-churn stochastic process on a host
// with a fixed node count. Node faults and edge faults (link flaps) are
// independent Poisson populations; either family of rates may be zero.
type Process struct {
	// Arrival is the failure rate of each healthy node (events per node
	// per unit time). The aggregate arrival rate is Arrival * #healthy.
	Arrival float64
	// Repair is the repair rate of each faulty node; 0 disables repair
	// (the pure-aging regime of the mean-faults-to-death experiments).
	Repair float64
	// BurstRate, if positive, adds adversarial burst events at this
	// aggregate rate: each burst places BurstSize clustered faults with
	// the BurstPattern adversary from internal/fault.
	BurstRate float64
	// BurstSize is the number of faults per burst (default 8).
	BurstSize int
	// BurstPattern is the adversary used for bursts (default
	// fault.Cluster, the densest axis-aligned box).
	BurstPattern fault.Pattern

	// EdgeArrival is the flap rate of each healthy host edge; the
	// aggregate is EdgeArrival * #healthy-edges (the host has
	// n*degree/2 edges, uniformly). Requires a Host-backed generator.
	EdgeArrival float64
	// EdgeRepair is the repair rate of each faulty edge.
	EdgeRepair float64
	// EdgeBurstRate, if positive, adds adversarial clustered edge-burst
	// events at this aggregate rate: each burst fails a ball of
	// EdgeBurstSize edges around a random anchor node — the
	// neighbor-connectivity attack (all charges land on one
	// neighborhood), the edge analogue of the clustered node burst.
	EdgeBurstRate float64
	// EdgeBurstSize is the number of edges per burst (default 8).
	EdgeBurstSize int
}

// HasEdgeEvents reports whether any edge-fault rate is active.
func (p Process) HasEdgeEvents() bool {
	return p.EdgeArrival > 0 || p.EdgeRepair > 0 || p.EdgeBurstRate > 0
}

// Validate checks the rates.
func (p Process) Validate() error {
	for _, r := range []struct {
		name string
		v    float64
	}{
		{"churn: arrival rate", p.Arrival},
		{"churn: repair rate", p.Repair},
		{"churn: burst rate", p.BurstRate},
		{"churn: edge arrival rate", p.EdgeArrival},
		{"churn: edge repair rate", p.EdgeRepair},
		{"churn: edge burst rate", p.EdgeBurstRate},
	} {
		if err := validate.Rate(r.name, r.v); err != nil {
			return err
		}
	}
	if p.Arrival == 0 && p.Repair == 0 && p.BurstRate == 0 && !p.HasEdgeEvents() {
		return fterr.New(fterr.Invalid, "churn.Validate", "all rates zero; the process has no events")
	}
	if p.BurstRate > 0 && p.BurstSize < 0 {
		return fterr.New(fterr.Invalid, "churn.Validate", "negative burst size %d", p.BurstSize)
	}
	if p.EdgeBurstRate > 0 && p.EdgeBurstSize < 0 {
		return fterr.New(fterr.Invalid, "churn.Validate", "negative edge burst size %d", p.EdgeBurstSize)
	}
	return nil
}

// Event is one churn step: the simulated time it occurred at and the
// fault-set delta it applied. All slices alias the generator's buffers
// and are valid only until the next Next/NextMixed call.
type Event struct {
	Time    float64
	Added   []int
	Cleared []int
	// EdgeAdded / EdgeCleared are the edge-fault deltas of a mixed
	// (NextMixed) event, canonical (U < V).
	EdgeAdded   []fault.Edge
	EdgeCleared []fault.Edge
	// EffAdded / EffCleared are the deltas to the *effective* (charged)
	// node set — node deltas plus charged endpoints, deduplicated by the
	// charger — exactly what core.Session.NoteAdded/NoteCleared consume.
	// Only NextMixed fills them.
	EffAdded   []int
	EffCleared []int
}

// Host is the adjacency access the generator needs for edge events.
// *core.Graph satisfies it.
type Host interface {
	NumNodes() int
	Degree() int
	Neighbors(idx int, buf []int) []int
	NodeShape() grid.Shape
}

// Generator draws the event sequence of one trial and applies it to a
// fault set. It owns the delta buffers, so steady-state stepping
// allocates nothing (bursts excepted — they build a pattern set). A
// Generator must not be shared by concurrent trials; call Reset at each
// trial start.
type Generator struct {
	proc     Process
	shape    grid.Shape // host node grid, for spatially structured bursts
	host     Host       // adjacency for edge events; nil for node-only
	numEdges int        // n * degree / 2 when host is set
	now      float64

	added, cleared       []int
	effAdded, effCleared []int
	edgeAdded, edgeClr   []fault.Edge
	nbuf, queue          []int
}

// NewGenerator builds a node-only generator for the process on a host
// whose flat node indices are row-major over hostShape
// (core.Graph.NodeShape). Processes with edge rates need adjacency:
// use NewGeneratorHost.
func NewGenerator(proc Process, hostShape grid.Shape) (*Generator, error) {
	if err := proc.Validate(); err != nil {
		return nil, err
	}
	if proc.HasEdgeEvents() {
		return nil, fterr.New(fterr.Invalid, "churn.NewGenerator", "edge rates need host adjacency; use NewGeneratorHost")
	}
	if proc.BurstSize == 0 {
		proc.BurstSize = 8
	}
	return &Generator{proc: proc, shape: hostShape.Clone()}, nil
}

// NewGeneratorHost builds a generator with full adjacency access,
// enabling the edge-fault (link flap) event kinds alongside the node
// kinds. Pass the core.Graph the trials run on.
func NewGeneratorHost(proc Process, h Host) (*Generator, error) {
	if err := proc.Validate(); err != nil {
		return nil, err
	}
	if proc.BurstSize == 0 {
		proc.BurstSize = 8
	}
	if proc.EdgeBurstSize == 0 {
		proc.EdgeBurstSize = 8
	}
	return &Generator{
		proc:     proc,
		shape:    h.NodeShape().Clone(),
		host:     h,
		numEdges: h.NumNodes() * h.Degree() / 2,
	}, nil
}

// Reset rewinds the clock for a new trial.
func (gen *Generator) Reset() { gen.now = 0 }

// Now returns the current simulated time.
func (gen *Generator) Now() float64 { return gen.now }

// Next advances to the next churn event, mutates faults by its delta,
// and returns it. Gillespie's direct method: the waiting time is
// exponential in the total rate of the current state, and the event kind
// is chosen proportionally to its rate. An error means the process is
// stuck (every competing rate is zero in this state) — with Arrival > 0
// that requires an all-faulty host.
func (gen *Generator) Next(r rng.Source, faults *fault.Set) (Event, error) {
	n := faults.Len()
	count := faults.Count()
	rateArrival := gen.proc.Arrival * float64(n-count)
	rateRepair := gen.proc.Repair * float64(count)
	total := rateArrival + rateRepair + gen.proc.BurstRate
	if total <= 0 {
		return Event{}, fterr.New(fterr.Conflict, "churn.Next", "no event possible (%d/%d nodes faulty, rates %+v)", count, n, gen.proc)
	}
	// Exponential waiting time; 1-U keeps the argument in (0, 1].
	gen.now += -math.Log(1-r.Float64()) / total
	ev := Event{Time: gen.now, Added: gen.added[:0], Cleared: gen.cleared[:0]}
	switch u := r.Float64() * total; {
	case u < rateArrival:
		// Uniform healthy node, by rejection: the expected iteration
		// count is n/(n-count), ~1 in every realistic regime.
		for {
			v := r.Intn(n)
			if !faults.Has(v) {
				faults.Add(v)
				ev.Added = append(ev.Added, v)
				break
			}
		}
	case u < rateArrival+rateRepair:
		v := faults.Nth(r.Intn(count))
		faults.Remove(v)
		ev.Cleared = append(ev.Cleared, v)
	default:
		burst, err := fault.Adversarial(gen.proc.BurstPattern, gen.shape, gen.proc.BurstSize, 2, r)
		if err != nil {
			return Event{}, fterr.Wrap(fterr.Invalid, "churn.burst", err)
		}
		burst.ForEach(func(v int) {
			if !faults.Has(v) {
				faults.Add(v)
				ev.Added = append(ev.Added, v)
			}
		})
	}
	gen.added, gen.cleared = ev.Added[:0], ev.Cleared[:0]
	return ev, nil
}

// NextMixed advances to the next churn event of the mixed node+edge
// process, mutates the charger by its delta, and returns it. Six event
// kinds compete by rate (Gillespie's direct method): node arrival, node
// repair, clustered node burst, edge flap, edge repair, clustered edge
// burst. With every edge rate zero the draw sequence is identical to
// Next on the charger's node set, so node-only workloads are
// bit-identical on either entry point.
//
// The returned Event's EffAdded/EffCleared carry the effective
// (charged) node deltas: feed them to core.Session.NoteAdded/NoteCleared
// and evaluate ch.Effective() — bit-identical to a from-scratch run of
// the charged set.
func (gen *Generator) NextMixed(r rng.Source, ch *fault.Charger) (Event, error) {
	nodes := ch.Nodes()
	n := nodes.Len()
	count := nodes.Count()
	ecount := ch.Edges().Count()
	rateArrival := gen.proc.Arrival * float64(n-count)
	rateRepair := gen.proc.Repair * float64(count)
	rateEdgeArr, rateEdgeRep, rateEdgeBurst := 0.0, 0.0, 0.0
	if gen.host != nil {
		rateEdgeArr = gen.proc.EdgeArrival * float64(gen.numEdges-ecount)
		rateEdgeRep = gen.proc.EdgeRepair * float64(ecount)
		rateEdgeBurst = gen.proc.EdgeBurstRate
	}
	total := rateArrival + rateRepair + gen.proc.BurstRate + rateEdgeArr + rateEdgeRep + rateEdgeBurst
	if total <= 0 {
		return Event{}, fterr.New(fterr.Conflict, "churn.NextMixed", "no event possible (%d/%d nodes, %d/%d edges faulty)", count, n, ecount, gen.numEdges)
	}
	gen.now += -math.Log(1-r.Float64()) / total
	ev := Event{
		Time:        gen.now,
		Added:       gen.added[:0],
		Cleared:     gen.cleared[:0],
		EdgeAdded:   gen.edgeAdded[:0],
		EdgeCleared: gen.edgeClr[:0],
		EffAdded:    gen.effAdded[:0],
		EffCleared:  gen.effCleared[:0],
	}
	addNode := func(v int) {
		if _, eff := ch.AddNode(v); eff >= 0 {
			ev.EffAdded = append(ev.EffAdded, eff)
		}
		ev.Added = append(ev.Added, v)
	}
	switch u := r.Float64() * total; {
	case u < rateArrival:
		for {
			v := r.Intn(n)
			if !nodes.Has(v) {
				addNode(v)
				break
			}
		}
	case u < rateArrival+rateRepair:
		v := nodes.Nth(r.Intn(count))
		if _, eff := ch.ClearNode(v); eff >= 0 {
			ev.EffCleared = append(ev.EffCleared, eff)
		}
		ev.Cleared = append(ev.Cleared, v)
	case u < rateArrival+rateRepair+gen.proc.BurstRate:
		burst, err := fault.Adversarial(gen.proc.BurstPattern, gen.shape, gen.proc.BurstSize, 2, r)
		if err != nil {
			return Event{}, fterr.Wrap(fterr.Invalid, "churn.burst", err)
		}
		burst.ForEach(func(v int) {
			if !nodes.Has(v) {
				addNode(v)
			}
		})
	case u < rateArrival+rateRepair+gen.proc.BurstRate+rateEdgeArr:
		// Uniform healthy edge, by rejection: a uniform node and a uniform
		// neighbor slot hit every undirected edge with equal mass (the
		// host degree is uniform); rejection handles already-faulty draws.
		for {
			a := r.Intn(n)
			gen.nbuf = gen.host.Neighbors(a, gen.nbuf[:0])
			b := gen.nbuf[r.Intn(len(gen.nbuf))]
			if !ch.Edges().Has(a, b) {
				if _, eff := ch.AddEdge(a, b); eff >= 0 {
					ev.EffAdded = append(ev.EffAdded, eff)
				}
				ev.EdgeAdded = append(ev.EdgeAdded, fault.CanonEdge(a, b))
				break
			}
		}
	case u < rateArrival+rateRepair+gen.proc.BurstRate+rateEdgeArr+rateEdgeRep:
		e := ch.Edges().Nth(r.Intn(ecount))
		if _, eff := ch.ClearEdge(e.U, e.V); eff >= 0 {
			ev.EffCleared = append(ev.EffCleared, eff)
		}
		ev.EdgeCleared = append(ev.EdgeCleared, e)
	default:
		gen.edgeBurst(r, ch, &ev)
	}
	gen.added, gen.cleared = ev.Added[:0], ev.Cleared[:0]
	gen.edgeAdded, gen.edgeClr = ev.EdgeAdded[:0], ev.EdgeCleared[:0]
	gen.effAdded, gen.effCleared = ev.EffAdded[:0], ev.EffCleared[:0]
	return ev, nil
}

// edgeBurst fails a clustered ball of up to EdgeBurstSize edges around a
// uniformly random anchor: the anchor's incident edges first, then its
// neighbors', breadth-first. Every charge lands in one neighborhood —
// the neighbor-connectivity adversary, maximally concentrated for the
// charging pass. The burst is smaller only when the explored component
// has no healthy edges left.
func (gen *Generator) edgeBurst(r rng.Source, ch *fault.Charger, ev *Event) {
	size := gen.proc.EdgeBurstSize
	gen.queue = append(gen.queue[:0], r.Intn(gen.host.NumNodes()))
	added := 0
	for qi := 0; qi < len(gen.queue) && added < size; qi++ {
		u := gen.queue[qi]
		gen.nbuf = gen.host.Neighbors(u, gen.nbuf[:0])
		for _, v := range gen.nbuf {
			if added >= size {
				break
			}
			if ch.Edges().Has(u, v) {
				continue
			}
			if _, eff := ch.AddEdge(u, v); eff >= 0 {
				ev.EffAdded = append(ev.EffAdded, eff)
			}
			ev.EdgeAdded = append(ev.EdgeAdded, fault.CanonEdge(u, v))
			gen.queue = append(gen.queue, v)
			added++
		}
	}
}
