package churn

import (
	"testing"

	"ftnet/internal/core"
	"ftnet/internal/fault"
	"ftnet/internal/rng"
)

// testGraph is the small B^2 instance shared by the churn tests:
// n=192, m=256, 49k nodes.
func testGraph(t *testing.T) *core.Graph {
	t.Helper()
	g, err := core.NewGraph(core.Params{D: 2, W: 4, Pitch: 16, Scale: 1})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestGeneratorModel steps the Gillespie generator against a plain model:
// times strictly increase, every event's delta matches the fault set's
// actual transition, and the event mix covers arrivals, repairs and
// bursts.
func TestGeneratorModel(t *testing.T) {
	g := testGraph(t)
	gen, err := NewGenerator(Process{
		Arrival:      1e-4,
		Repair:       0.5,
		BurstRate:    0.3,
		BurstSize:    6,
		BurstPattern: fault.Cluster,
	}, g.NodeShape())
	if err != nil {
		t.Fatal(err)
	}
	faults := fault.NewSet(g.NumNodes())
	r := rng.NewPCG(5, 1)
	model := map[int]bool{}
	last := 0.0
	arrivals, repairs, bursts := 0, 0, 0
	for step := 0; step < 400; step++ {
		ev, err := gen.Next(r, faults)
		if err != nil {
			t.Fatal(err)
		}
		if ev.Time <= last {
			t.Fatalf("step %d: time went %v -> %v", step, last, ev.Time)
		}
		last = ev.Time
		switch {
		case len(ev.Added) == 1 && len(ev.Cleared) == 0:
			arrivals++
		case len(ev.Cleared) == 1 && len(ev.Added) == 0:
			repairs++
		case len(ev.Added) > 1:
			bursts++
		default:
			// A burst whose pattern landed entirely on existing faults is
			// legal (empty delta); anything else is not.
			if len(ev.Cleared) != 0 {
				t.Fatalf("step %d: odd delta added=%v cleared=%v", step, ev.Added, ev.Cleared)
			}
		}
		for _, v := range ev.Added {
			if model[v] {
				t.Fatalf("step %d: node %v added but already faulty", step, v)
			}
			model[v] = true
		}
		for _, v := range ev.Cleared {
			if !model[v] {
				t.Fatalf("step %d: node %v cleared but was healthy", step, v)
			}
			delete(model, v)
		}
		if faults.Count() != len(model) {
			t.Fatalf("step %d: set has %d faults, model %d", step, faults.Count(), len(model))
		}
	}
	if arrivals == 0 || repairs == 0 || bursts == 0 {
		t.Fatalf("event mix did not cover all kinds: %d arrivals, %d repairs, %d bursts", arrivals, repairs, bursts)
	}
	if gen.Now() != last {
		t.Fatalf("Now() = %v, want %v", gen.Now(), last)
	}
}

// TestProcessValidate pins the config errors.
func TestProcessValidate(t *testing.T) {
	g := testGraph(t)
	if _, err := NewGenerator(Process{}, g.NodeShape()); err == nil {
		t.Error("all-zero process must be rejected")
	}
	if _, err := NewGenerator(Process{Arrival: -1}, g.NodeShape()); err == nil {
		t.Error("negative rate must be rejected")
	}
	if _, err := Simulate(g, Process{Arrival: 1e-5}, 4, 1, Options{}); err == nil {
		t.Error("zero horizon must be rejected")
	}
}

// TestParallelDeterminismChurn pins two contracts at once: the lifetime
// simulation is bit-identical across worker counts, and the incremental
// session path reports exactly the same outcomes as the from-scratch
// per-event ablation (Options.Independent) — the lifetime-level face of
// the session's dense-equivalence guarantee.
func TestParallelDeterminismChurn(t *testing.T) {
	g := testGraph(t)
	proc := Process{Arrival: 3e-5, Repair: 0.4}
	opts := Options{Horizon: 40, Workers: 1}
	const trials = 10
	var want Result
	for i, workers := range []int{1, 4} {
		opts.Workers = workers
		rep, err := Simulate(g, proc, trials, 99, opts)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			want = rep
			continue
		}
		for c := 0; c < NumMetrics; c++ {
			if rep.Mean[c] != want.Mean[c] || rep.StdErr[c] != want.StdErr[c] {
				t.Fatalf("workers=%d: metric %d = (%v, %v), want (%v, %v)",
					workers, c, rep.Mean[c], rep.StdErr[c], want.Mean[c], want.StdErr[c])
			}
		}
	}
	if want.Mean[MetricEvents] == 0 {
		t.Fatal("no churn events in the horizon; raise the rates")
	}
	opts.Workers = 2
	opts.Independent = true
	indep, err := Simulate(g, proc, trials, 99, opts)
	if err != nil {
		t.Fatal(err)
	}
	for c := 0; c < NumMetrics; c++ {
		if indep.Mean[c] != want.Mean[c] {
			t.Fatalf("ablation metric %d = %v, session %v — incremental and from-scratch outcomes diverged",
				c, indep.Mean[c], want.Mean[c])
		}
	}
}

// TestSimulateRegimes sanity-checks the physics: with fast repair the
// torus stays available; with heavy arrivals and no repair every trial
// dies and records a positive death size.
func TestSimulateRegimes(t *testing.T) {
	g := testGraph(t)

	rep, err := Simulate(g, Process{Arrival: 2e-5, Repair: 2}, 8, 7, Options{Horizon: 30, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if avail, _ := rep.Availability(); avail < 0.95 {
		t.Fatalf("fast-repair availability %v, want ~1", avail)
	}

	rep, err = Simulate(g, Process{Arrival: 5e-4}, 6, 11, Options{Horizon: 400, Workers: 2, StopAtDeath: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.DeathRate() != 1 {
		t.Fatalf("pure-aging death rate %v, want 1 (horizon too short?)", rep.DeathRate())
	}
	if rep.MeanDeathFaults() <= 0 {
		t.Fatal("death recorded without a fault count")
	}
	if dt, _ := rep.MeanDeathTime(); dt <= 0 || dt >= 400 {
		t.Fatalf("mean death time %v outside (0, horizon)", dt)
	}
}

// TestLifetimeBursts runs the adversarial-burst regime end to end: burst
// events must flow through the session like any other delta.
func TestLifetimeBursts(t *testing.T) {
	g := testGraph(t)
	proc := Process{
		Arrival:      1e-5,
		Repair:       1,
		BurstRate:    0.5,
		BurstSize:    4,
		BurstPattern: fault.Cluster,
	}
	rep, err := Simulate(g, proc, 6, 3, Options{Horizon: 20, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Mean[MetricEvents] == 0 {
		t.Fatal("no events")
	}
}
