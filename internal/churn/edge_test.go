package churn

import (
	"testing"

	"ftnet/internal/fault"
	"ftnet/internal/rng"
)

// TestGeneratorMixedModel steps the mixed node+edge Gillespie generator
// against a plain model: times strictly increase, every delta matches
// the charger's actual transition, the effective set always equals the
// batch charging pass of the current sets, and the event mix covers all
// six kinds.
func TestGeneratorMixedModel(t *testing.T) {
	g := testGraph(t)
	gen, err := NewGeneratorHost(Process{
		Arrival:       5e-5,
		Repair:        0.3,
		BurstRate:     0.15,
		BurstSize:     4,
		BurstPattern:  fault.Cluster,
		EdgeArrival:   2e-5,
		EdgeRepair:    0.3,
		EdgeBurstRate: 0.15,
		EdgeBurstSize: 5,
	}, g)
	if err != nil {
		t.Fatal(err)
	}
	ch := fault.NewCharger(g.NumNodes())
	r := rng.NewPCG(17, 3)
	nodeModel := map[int]bool{}
	edgeModel := map[fault.Edge]bool{}
	last := 0.0
	var nodeAdds, nodeReps, edgeAdds, edgeReps, edgeBursts int
	for step := 0; step < 600; step++ {
		ev, err := gen.NextMixed(r, ch)
		if err != nil {
			t.Fatal(err)
		}
		if ev.Time <= last {
			t.Fatalf("step %d: time went %v -> %v", step, last, ev.Time)
		}
		last = ev.Time
		switch {
		case len(ev.Added) == 1:
			nodeAdds++
		case len(ev.Cleared) == 1:
			nodeReps++
		case len(ev.EdgeAdded) == 1:
			edgeAdds++
		case len(ev.EdgeCleared) == 1:
			edgeReps++
		case len(ev.EdgeAdded) > 1:
			edgeBursts++
		}
		for _, v := range ev.Added {
			if nodeModel[v] {
				t.Fatalf("step %d: node %d added but already faulty", step, v)
			}
			nodeModel[v] = true
		}
		for _, v := range ev.Cleared {
			if !nodeModel[v] {
				t.Fatalf("step %d: node %d cleared but was healthy", step, v)
			}
			delete(nodeModel, v)
		}
		for _, e := range ev.EdgeAdded {
			if e.U >= e.V || !g.Adjacent(e.U, e.V) {
				t.Fatalf("step %d: event edge %v not a canonical host edge", step, e)
			}
			if edgeModel[e] {
				t.Fatalf("step %d: edge %v added but already faulty", step, e)
			}
			edgeModel[e] = true
		}
		for _, e := range ev.EdgeCleared {
			if !edgeModel[e] {
				t.Fatalf("step %d: edge %v cleared but was healthy", step, e)
			}
			delete(edgeModel, e)
		}
		if ch.Nodes().Count() != len(nodeModel) || ch.Edges().Count() != len(edgeModel) {
			t.Fatalf("step %d: charger has %d nodes/%d edges, model %d/%d",
				step, ch.Nodes().Count(), ch.Edges().Count(), len(nodeModel), len(edgeModel))
		}
		// The incrementally maintained effective set must equal the batch
		// charging pass of the current sets, at every step.
		want := fault.ChargeEdges(ch.Nodes(), ch.Edges().Slice()).Slice()
		got := ch.Effective().Slice()
		if len(got) != len(want) {
			t.Fatalf("step %d: effective set has %d entries, batch charge %d", step, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("step %d: effective set diverged from batch charge at %d", step, i)
			}
		}
	}
	if nodeAdds == 0 || nodeReps == 0 || edgeAdds == 0 || edgeReps == 0 || edgeBursts == 0 {
		t.Fatalf("event mix incomplete: %d node adds, %d node repairs, %d edge adds, %d edge repairs, %d edge bursts",
			nodeAdds, nodeReps, edgeAdds, edgeReps, edgeBursts)
	}
}

// TestGeneratorEdgeRatesNeedHost pins the config error: a shape-only
// generator cannot serve edge events.
func TestGeneratorEdgeRatesNeedHost(t *testing.T) {
	g := testGraph(t)
	if _, err := NewGenerator(Process{EdgeArrival: 1e-5}, g.NodeShape()); err == nil {
		t.Fatal("edge rates without host adjacency must be rejected")
	}
	if _, err := NewGeneratorHost(Process{EdgeArrival: -1}, g); err == nil {
		t.Fatal("negative edge rate must be rejected")
	}
}

// TestNextMixedNodeOnlyMatchesNext pins the compatibility contract: with
// every edge rate zero, NextMixed consumes the identical random stream
// and produces the identical event sequence as Next.
func TestNextMixedNodeOnlyMatchesNext(t *testing.T) {
	g := testGraph(t)
	proc := Process{Arrival: 1e-4, Repair: 0.5, BurstRate: 0.2, BurstSize: 5, BurstPattern: fault.Cluster}
	genA, err := NewGenerator(proc, g.NodeShape())
	if err != nil {
		t.Fatal(err)
	}
	genB, err := NewGeneratorHost(proc, g)
	if err != nil {
		t.Fatal(err)
	}
	faults := fault.NewSet(g.NumNodes())
	ch := fault.NewCharger(g.NumNodes())
	rA := rng.NewPCG(23, 5)
	rB := rng.NewPCG(23, 5)
	for step := 0; step < 300; step++ {
		evA, errA := genA.Next(rA, faults)
		evB, errB := genB.NextMixed(rB, ch)
		if (errA == nil) != (errB == nil) {
			t.Fatalf("step %d: outcome mismatch %v vs %v", step, errA, errB)
		}
		if evA.Time != evB.Time {
			t.Fatalf("step %d: times diverged %v vs %v", step, evA.Time, evB.Time)
		}
		if !intSliceEq(evA.Added, evB.Added) || !intSliceEq(evA.Cleared, evB.Cleared) {
			t.Fatalf("step %d: deltas diverged: %v/%v vs %v/%v", step, evA.Added, evA.Cleared, evB.Added, evB.Cleared)
		}
		if !intSliceEq(evB.Added, evB.EffAdded) || !intSliceEq(evB.Cleared, evB.EffCleared) {
			t.Fatalf("step %d: node-only effective delta differs from node delta", step)
		}
	}
	if faults.Count() != ch.Nodes().Count() {
		t.Fatalf("final counts diverged: %d vs %d", faults.Count(), ch.Nodes().Count())
	}
}

// TestParallelDeterminismChurnMixed extends the lifetime determinism and
// ablation-equivalence contract to mixed node+edge populations: results
// bit-identical across worker counts, and the incremental session path
// identical to from-scratch evaluation of the charged fault set.
func TestParallelDeterminismChurnMixed(t *testing.T) {
	g := testGraph(t)
	proc := Process{
		Arrival:       2e-5,
		Repair:        0.4,
		EdgeArrival:   1e-5,
		EdgeRepair:    0.4,
		EdgeBurstRate: 0.05,
		EdgeBurstSize: 4,
	}
	opts := Options{Horizon: 30, Workers: 1}
	const trials = 8
	var want Result
	for i, workers := range []int{1, 4} {
		opts.Workers = workers
		rep, err := Simulate(g, proc, trials, 41, opts)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			want = rep
			continue
		}
		for c := 0; c < NumMetrics; c++ {
			if rep.Mean[c] != want.Mean[c] || rep.StdErr[c] != want.StdErr[c] {
				t.Fatalf("workers=%d: metric %d = (%v, %v), want (%v, %v)",
					workers, c, rep.Mean[c], rep.StdErr[c], want.Mean[c], want.StdErr[c])
			}
		}
	}
	if want.Mean[MetricEvents] == 0 {
		t.Fatal("no churn events in the horizon; raise the rates")
	}
	opts.Workers = 2
	opts.Independent = true
	indep, err := Simulate(g, proc, trials, 41, opts)
	if err != nil {
		t.Fatal(err)
	}
	for c := 0; c < NumMetrics; c++ {
		if indep.Mean[c] != want.Mean[c] {
			t.Fatalf("ablation metric %d = %v, session %v — incremental and from-scratch outcomes diverged on a mixed population",
				c, indep.Mean[c], want.Mean[c])
		}
	}
}

func intSliceEq(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
