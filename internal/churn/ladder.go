package churn

import (
	"math"

	"ftnet/internal/core"
	"ftnet/internal/fault"
	"ftnet/internal/fterr"
	"ftnet/internal/parallel"
	"ftnet/internal/rng"
)

// Coupled repair-rate ladder: the availability-vs-repair-rate experiment
// (E17) evaluated the way sweep.SurvivalCurve evaluates survival-vs-rate
// curves — one event stream per trial serving every rung of the ladder,
// instead of one independent simulation per repair rate.
//
// The coupling is state-dependent uniformization over the ascending
// ladder rho_1 < ... < rho_m. Every rung shares the arrival process
// (per-healthy-node rate lambda) and thins a common repair-proposal
// clock: proposals fire at rate rho_m * |F_1| (the fastest rung's rate
// on the largest fault set), each picks a uniform member v of F_1 and a
// uniform threshold w, and rung r repairs v iff v is in F_r and
// w * rho_m < rho_r. Per-node repair rates come out exactly rho_r, so
// each rung's marginal law is precisely the independent birth-death
// process at (lambda, rho_r) — the coupling moves no probability, it
// only correlates the rungs (common random numbers, the same reduction
// sweep.SurvivalCurve gets from nested Bernoulli universes).
//
// Two structural invariants make the shared stream cheap:
//
//   - Nesting: F_1 >= F_2 >= ... >= F_m at all times. Arrivals add the
//     same node everywhere; the repair acceptance region is upward-closed
//     in r (ascending rhos), so a repair removes v from a suffix of the
//     rungs still holding it.
//   - Status sharing: nested sets with equal counts are equal, so one
//     placement probe (core.Graph.Tolerates — the pipeline's exact
//     health classification, see batch.go) serves every drained rung
//     whose fault set coincides with its neighbor's. Fast-repair rungs
//     spend most of the horizon sharing one near-empty set.
//
// Statuses are NOT monotone across rungs — a rung with strictly fewer
// faults can be down while a slower rung is up (the non-monotone
// tolerance counterexample of TestToleratesNotMonotone applies between
// nested sets too) — so each changed rung with a distinct set is probed
// individually; no threshold search over rungs is sound.
type LadderOptions struct {
	// Workers bounds the trial worker pool; 0 means GOMAXPROCS.
	Workers int
	// ShardSize is passed through to the parallel engine.
	ShardSize int
	// TargetCI, if positive, stops the run once every nonzero-mean
	// per-rung metric has this relative 95% precision.
	TargetCI float64
	// MinTrials is the minimum committed trial count before early
	// stopping may trigger.
	MinTrials int
	// Horizon is the simulated time per trial (required, > 0).
	Horizon float64
	// MaxProposals caps the uniformized clock ticks per trial (arrival
	// proposals plus repair proposals, thinned no-ops included) as a
	// runaway guard; 0 means 1<<22.
	MaxProposals int
	// Verify cross-checks every placement probe against a full
	// from-scratch pipeline run — the exhaustive ablation the golden
	// tests run; ruinously slow for real experiments.
	Verify bool
}

// LadderResult aggregates a coupled repair-ladder simulation. The
// outcome vector is rung-major: metric c of rung r is component
// r*NumMetrics + c of the embedded LifetimeReport.
type LadderResult struct {
	parallel.LifetimeReport
	// Rhos echoes the ladder.
	Rhos []float64
	// Horizon echoes the per-trial simulated time.
	Horizon float64
}

// Metric returns the mean and standard error of one metric at one rung.
func (lr LadderResult) Metric(rung, metric int) (float64, float64) {
	i := rung*NumMetrics + metric
	return lr.Mean[i], lr.StdErr[i]
}

// Availability returns rung's mean availability and standard error.
func (lr LadderResult) Availability(rung int) (float64, float64) {
	return lr.Metric(rung, MetricAvailability)
}

// DeathRate returns the fraction of trials in which rung ever lost the
// torus.
func (lr LadderResult) DeathRate(rung int) float64 {
	m, _ := lr.Metric(rung, MetricDied)
	return m
}

// ladderState is the per-worker scratch bundle for coupled ladder
// trials: one fault set per rung plus the shared placement scratch.
type ladderState struct {
	sc      *core.Scratch
	sets    []*fault.Set
	changed []bool
	up      []bool
	died    []bool
	dTime   []float64
	dFaults []int
	upTime  []float64
	last    []float64
	events  []int
}

// SimulateRepairLadder runs coupled lifetime trials of the birth-death
// fault process at per-node arrival rate lambda across the ascending
// repair-rate ladder rhos, and aggregates the per-rung metrics. Each
// rung's marginal statistics estimate exactly what an independent
// Simulate at (lambda, rho_r) estimates; one trial costs little more
// than its slowest rung. Determinism follows the repository contract:
// trial t draws only from its (seed, t) PCG stream and results are
// bit-identical for every worker count.
func SimulateRepairLadder(g *core.Graph, lambda float64, rhos []float64, trials int, seed uint64, opts LadderOptions) (LadderResult, error) {
	if opts.Horizon <= 0 {
		return LadderResult{}, fterr.New(fterr.Invalid, "churn.SimulateRepairLadder", "horizon %v <= 0", opts.Horizon)
	}
	if !(lambda > 0) || math.IsInf(lambda, 0) {
		return LadderResult{}, fterr.New(fterr.Invalid, "churn.SimulateRepairLadder", "arrival rate %v must be positive and finite", lambda)
	}
	if len(rhos) == 0 {
		return LadderResult{}, fterr.New(fterr.Invalid, "churn.SimulateRepairLadder", "empty repair-rate ladder")
	}
	for i, rho := range rhos {
		if rho < 0 || math.IsInf(rho, 0) || math.IsNaN(rho) {
			return LadderResult{}, fterr.New(fterr.Invalid, "churn.SimulateRepairLadder", "repair rate rhos[%d] = %v", i, rho)
		}
		if i > 0 && rho <= rhos[i-1] {
			return LadderResult{}, fterr.New(fterr.Invalid, "churn.SimulateRepairLadder", "ladder not strictly ascending at rhos[%d] = %v", i, rho)
		}
	}
	m := len(rhos)
	maxProposals := opts.MaxProposals
	if maxProposals <= 0 {
		maxProposals = 1 << 22
	}
	popts := parallel.Options{
		Workers:   opts.Workers,
		ShardSize: opts.ShardSize,
		TargetCI:  opts.TargetCI,
		MinTrials: opts.MinTrials,
		NewScratch: func() any {
			ls := &ladderState{
				sc:      core.NewScratch(1),
				sets:    make([]*fault.Set, m),
				changed: make([]bool, m),
				up:      make([]bool, m),
				died:    make([]bool, m),
				dTime:   make([]float64, m),
				dFaults: make([]int, m),
				upTime:  make([]float64, m),
				last:    make([]float64, m),
				events:  make([]int, m),
			}
			for r := range ls.sets {
				ls.sets[r] = fault.NewSet(g.NumNodes())
			}
			return ls
		},
	}
	rep, err := parallel.RunLifetime(trials, m*NumMetrics, seed, popts, func(t int, stream *rng.PCG, scratch any, out []float64) error {
		return ladderTrial(g, scratch.(*ladderState), stream, lambda, rhos, opts.Horizon, maxProposals, opts.Verify, out)
	})
	if err != nil {
		return LadderResult{}, err
	}
	return LadderResult{LifetimeReport: rep, Rhos: rhos, Horizon: opts.Horizon}, nil
}

// ladderTrial steps one coupled trial from the all-healthy state to the
// horizon, maintaining every rung's fault set, status and metrics off
// the single uniformized proposal stream.
func ladderTrial(g *core.Graph, ls *ladderState, stream *rng.PCG, lambda float64, rhos []float64, horizon float64, maxProposals int, verify bool, out []float64) error {
	m := len(rhos)
	n := g.NumNodes()
	rhoMax := rhos[m-1]
	for r := 0; r < m; r++ {
		ls.sets[r].Clear()
		ls.up[r] = true // the fault-free host trivially contains the torus
		ls.died[r] = false
		ls.dTime[r] = horizon
		ls.dFaults[r] = 0
		ls.upTime[r] = 0
		ls.last[r] = 0
		ls.events[r] = 0
	}

	arrivalMass := lambda * float64(n)
	now := 0.0
	for p := 0; ; p++ {
		if p >= maxProposals {
			return fterr.New(fterr.Conflict, "churn.ladderTrial", "trial exceeded MaxProposals=%d at t=%.3g of horizon %.3g; raise LadderOptions.MaxProposals or shorten the horizon", maxProposals, now, horizon)
		}
		// The dominating rate of the current state: every rung's total
		// rate is at most lambda*n + rho_m*|F_1|.
		total := arrivalMass + rhoMax*float64(ls.sets[0].Count())
		now += -math.Log(1-stream.Float64()) / total
		if now >= horizon {
			break
		}
		if u := stream.Float64() * total; u < arrivalMass {
			// Arrival proposal: the shared node fails in every rung where it
			// is healthy; rungs already holding it thin the proposal away
			// (that is what scales each rung's arrival rate by its own
			// healthy count).
			v := stream.Intn(n)
			for r := 0; r < m; r++ {
				if ls.changed[r] = !ls.sets[r].Has(v); ls.changed[r] {
					ls.sets[r].Add(v)
				}
			}
		} else {
			// Repair proposal on the largest set, thinned per rung by the
			// shared threshold: acceptance is upward-closed in r, so nesting
			// survives the removal.
			v := ls.sets[0].Nth(stream.Intn(ls.sets[0].Count()))
			w := stream.Float64() * rhoMax
			for r := 0; r < m; r++ {
				if ls.changed[r] = ls.sets[r].Has(v) && w < rhos[r]; ls.changed[r] {
					ls.sets[r].Remove(v)
				}
			}
		}

		// Refresh the status of every rung whose set changed. Nested sets
		// with equal counts are equal, so a probe (or an unchanged rung's
		// current status) is shared with every following rung at the same
		// count.
		prevCnt := -1
		prevUp := false
		for r := 0; r < m; r++ {
			cnt := ls.sets[r].Count()
			var upNow bool
			switch {
			case !ls.changed[r]:
				upNow = ls.up[r]
			case cnt == prevCnt:
				upNow = prevUp
			default:
				var err error
				upNow, err = evalClass(g.Tolerates(ls.sets[r], ls.sc))
				if err != nil {
					return err
				}
				if verify {
					full, err := evalClass(evalErrOnly(g.ContainTorus(ls.sets[r], core.ExtractOptions{Scratch: ls.sc})))
					if err != nil {
						return err
					}
					if full != upNow {
						return fterr.New(fterr.Internal, "churn.ladder", "placement probe says up=%v but the full pipeline says up=%v on rung %d (%d faults)", upNow, full, r, cnt)
					}
				}
			}
			prevCnt, prevUp = cnt, upNow
			if !ls.changed[r] {
				continue
			}
			if ls.up[r] {
				ls.upTime[r] += now - ls.last[r]
			}
			ls.last[r] = now
			ls.events[r]++
			if ls.up[r] && !upNow && !ls.died[r] {
				ls.died[r] = true
				ls.dTime[r] = now
				ls.dFaults[r] = cnt
			}
			ls.up[r] = upNow
		}
	}
	for r := 0; r < m; r++ {
		if ls.up[r] {
			ls.upTime[r] += horizon - ls.last[r]
		}
		base := r * NumMetrics
		out[base+MetricDeathTime] = ls.dTime[r]
		if ls.died[r] {
			out[base+MetricDied] = 1
			out[base+MetricDeathFaults] = float64(ls.dFaults[r])
		}
		out[base+MetricAvailability] = ls.upTime[r] / horizon
		out[base+MetricEvents] = float64(ls.events[r])
	}
	return nil
}
