package churn

import (
	"math"
	"testing"

	"ftnet/internal/fterr"
)

// Golden suite for the coupled repair-rate ladder: marginal exactness
// cannot be bit-compared against the independent simulator (the
// uniformized proposal stream draws differently), so the pins are the
// structural invariants — probe/full-pipeline agreement on every probed
// state (Verify), worker-count determinism, monotone availability in
// rho — plus a statistical cross-check of each rung's availability
// against the independent Simulate at the same rates.

func ladderLambda(t *testing.T) float64 {
	t.Helper()
	g := testGraph(t)
	return 40 * g.P.TheoremFailureProb()
}

// TestLadderVerified runs the exhaustive ablation: every placement
// probe on every rung is cross-checked against a full from-scratch
// pipeline run. Any disagreement fails the trial with an internal
// error.
func TestLadderVerified(t *testing.T) {
	g := testGraph(t)
	rhos := []float64{0.05, 0.8, 12.8}
	res, err := SimulateRepairLadder(g, ladderLambda(t), rhos, 4, 7,
		LadderOptions{Horizon: 3, Workers: 1, Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	for r := range rhos {
		ev, _ := res.Metric(r, MetricEvents)
		if ev == 0 {
			t.Fatalf("rung %d saw no events; the coupled stream is not reaching it", r)
		}
	}
}

// TestLadderDeterminism pins bit-identical results across worker
// counts.
func TestLadderDeterminism(t *testing.T) {
	g := testGraph(t)
	rhos := []float64{0.05, 0.2, 0.8, 3.2, 12.8}
	var want LadderResult
	for i, workers := range []int{1, 4} {
		res, err := SimulateRepairLadder(g, ladderLambda(t), rhos, 8, 99,
			LadderOptions{Horizon: 6, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			want = res
			continue
		}
		for c := range want.Mean {
			if res.Mean[c] != want.Mean[c] || res.StdErr[c] != want.StdErr[c] {
				t.Fatalf("workers=%d: component %d = (%v, %v), want (%v, %v)",
					workers, c, res.Mean[c], res.StdErr[c], want.Mean[c], want.StdErr[c])
			}
		}
	}
}

// TestLadderMatchesIndependent cross-checks each rung's availability
// against the independent per-rho simulator: the coupled marginals are
// the same law, so the estimates must agree within combined standard
// errors. Rates straddle the E17 threshold so the comparison spans
// collapse and rescue.
func TestLadderMatchesIndependent(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical cross-check")
	}
	g := testGraph(t)
	lambda := ladderLambda(t)
	rhos := []float64{0.05, 0.8, 12.8}
	const trials = 24
	res, err := SimulateRepairLadder(g, lambda, rhos, trials, 11,
		LadderOptions{Horizon: 8})
	if err != nil {
		t.Fatal(err)
	}
	for r, rho := range rhos {
		ind, err := Simulate(g, Process{Arrival: lambda, Repair: rho}, trials, 1100+uint64(r),
			Options{Horizon: 8, Batch: 16})
		if err != nil {
			t.Fatal(err)
		}
		am, ase := res.Availability(r)
		bm, bse := ind.Availability()
		tol := 4*math.Hypot(ase, bse) + 0.02
		if math.Abs(am-bm) > tol {
			t.Errorf("rho=%v: coupled availability %.4f±%.4f vs independent %.4f±%.4f (tol %.4f)",
				rho, am, ase, bm, bse, tol)
		}
	}
	// The ladder must also show E17's shape: slow repair collapses, fast
	// repair rescues.
	lo, _ := res.Availability(0)
	hi, _ := res.Availability(len(rhos) - 1)
	if hi < lo {
		t.Errorf("availability not improving with repair rate: %.3f -> %.3f", lo, hi)
	}
}

// TestLadderValidation pins the config errors.
func TestLadderValidation(t *testing.T) {
	g := testGraph(t)
	cases := []struct {
		name   string
		lambda float64
		rhos   []float64
		opts   LadderOptions
	}{
		{"no horizon", 1e-4, []float64{1}, LadderOptions{}},
		{"zero lambda", 0, []float64{1}, LadderOptions{Horizon: 1}},
		{"empty ladder", 1e-4, nil, LadderOptions{Horizon: 1}},
		{"not ascending", 1e-4, []float64{1, 0.5}, LadderOptions{Horizon: 1}},
		{"negative rho", 1e-4, []float64{-1, 0.5}, LadderOptions{Horizon: 1}},
	}
	for _, tc := range cases {
		if _, err := SimulateRepairLadder(g, tc.lambda, tc.rhos, 2, 1, tc.opts); fterr.CodeOf(err) != fterr.Invalid {
			t.Errorf("%s: got %v, want invalid", tc.name, err)
		}
	}
}
