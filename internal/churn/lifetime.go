package churn

import (
	"errors"

	"ftnet/internal/core"
	"ftnet/internal/fault"
	"ftnet/internal/fterr"
	"ftnet/internal/parallel"
	"ftnet/internal/rng"
)

// Metric indexes the components of a lifetime trial's outcome vector
// (parallel.RunLifetime). The engine's relative early stopping resolves
// every nonzero-mean component, so a degenerate metric (death time
// pinned at the horizon in a no-death regime) cannot stop the run on
// its own.
const (
	// MetricDeathTime is the time of the first unembeddable state, or
	// the horizon if the torus survived the whole trial.
	MetricDeathTime = iota
	// MetricDied is 1 if the trial ever lost the torus, else 0.
	MetricDied
	// MetricDeathFaults is the fault count at first death (node plus
	// edge faults for mixed populations; 0 if none).
	MetricDeathFaults
	// MetricAvailability is the fraction of [0, horizon] during which a
	// verified embedding existed.
	MetricAvailability
	// MetricEvents is the number of churn events processed.
	MetricEvents
	// NumMetrics is the outcome vector length.
	NumMetrics
)

// Options tunes a lifetime simulation.
type Options struct {
	// Workers bounds the trial worker pool; 0 means GOMAXPROCS.
	Workers int
	// ShardSize is passed through to the parallel engine.
	ShardSize int
	// TargetCI, if positive, stops the run once every nonzero-mean
	// metric has this relative 95% precision (see parallel.RunLifetime).
	TargetCI float64
	// MinTrials is the minimum committed trial count before early
	// stopping may trigger.
	MinTrials int
	// Horizon is the simulated time per trial (required, > 0).
	Horizon float64
	// MaxEvents caps the churn events per trial as a runaway guard;
	// 0 means 1<<20. A trial that would exceed the cap before reaching
	// the horizon aborts the run with an error instead of reporting
	// statistics over unsimulated time.
	MaxEvents int
	// Batch, when >= 2, decides each event's status with the
	// placement-only probe (core.Graph.Tolerates — the oracle's exact
	// health classification, see batch.go) and runs the full pipeline
	// once per window of Batch events, where the session's bidirectional
	// add/clear absorbs the window's mutations in one warm incremental
	// step. Every reported metric — death time, death size, availability,
	// event counts — is bit-identical to the per-event evaluator; only
	// the cost moves. 0 or 1 keeps the per-event oracle. Incompatible
	// with Independent (the from-scratch ablation has no incremental
	// session to batch into).
	Batch int
	// StopAtDeath ends each trial at its first unembeddable state
	// instead of simulating to the horizon. Death time, death size and
	// death rate are unaffected; availability then counts the remaining
	// time as down, which is exact for irreversible regimes (no repair,
	// faults only accumulate) and conservative otherwise. The
	// mean-faults-to-death experiments use it to skip simulating dead
	// machines.
	StopAtDeath bool
	// Independent is the ablation switch: evaluate every event with a
	// from-scratch pipeline run (core.ContainTorus) instead of the
	// incremental session. Outcomes are bit-identical either way — the
	// session's equivalence contract — so the flag only moves cost.
	Independent bool
	// Dense additionally forces the legacy whole-host pipeline per event.
	Dense bool
}

// Result aggregates a lifetime simulation.
type Result struct {
	parallel.LifetimeReport
	// Horizon echoes the per-trial simulated time.
	Horizon float64
}

// MeanDeathTime returns the mean time to first loss of the torus
// (censored at the horizon) and its standard error.
func (r Result) MeanDeathTime() (float64, float64) {
	return r.Mean[MetricDeathTime], r.StdErr[MetricDeathTime]
}

// DeathRate returns the fraction of trials that ever lost the torus.
func (r Result) DeathRate() float64 { return r.Mean[MetricDied] }

// Availability returns the mean fraction of time a verified embedding
// existed, and its standard error.
func (r Result) Availability() (float64, float64) {
	return r.Mean[MetricAvailability], r.StdErr[MetricAvailability]
}

// MeanDeathFaults returns the mean fault count at first death, over the
// trials that died (0 when none did).
func (r Result) MeanDeathFaults() float64 {
	if r.Mean[MetricDied] == 0 {
		return 0
	}
	return r.Mean[MetricDeathFaults] / r.Mean[MetricDied]
}

// trialState is the per-worker scratch bundle for lifetime trials.
type trialState struct {
	sc  *core.Scratch
	ses *core.Session
	gen *Generator
	ch  *fault.Charger
}

// Simulate runs lifetime trials of the churn process on g's Theorem 2
// host and aggregates them. Each trial starts from the fault-free host,
// steps the process to opts.Horizon, and re-evaluates the pipeline after
// every event through one core.Session (or from scratch, with
// opts.Independent). Determinism follows the repository contract: trial
// t draws only from its (seed, t) PCG stream and results are
// bit-identical for every worker count.
func Simulate(g *core.Graph, proc Process, trials int, seed uint64, opts Options) (Result, error) {
	if opts.Horizon <= 0 {
		return Result{}, fterr.New(fterr.Invalid, "churn.Simulate", "horizon %v <= 0", opts.Horizon)
	}
	if err := proc.Validate(); err != nil {
		return Result{}, err
	}
	if opts.Batch > 1 && opts.Independent {
		return Result{}, fterr.New(fterr.Invalid, "churn.Simulate", "Batch=%d requires the incremental session; Independent evaluates from scratch per event", opts.Batch)
	}
	maxEvents := opts.MaxEvents
	if maxEvents <= 0 {
		maxEvents = 1 << 20
	}
	popts := parallel.Options{
		Workers:   opts.Workers,
		ShardSize: opts.ShardSize,
		TargetCI:  opts.TargetCI,
		MinTrials: opts.MinTrials,
		NewScratch: func() any {
			sc := core.NewScratch(1)
			gen, err := NewGeneratorHost(proc, g)
			if err != nil {
				// Validate above makes this unreachable; keep the trial
				// path total anyway.
				panic(err)
			}
			return &trialState{
				sc:  sc,
				ses: g.NewSession(sc, core.ExtractOptions{Dense: opts.Dense}),
				gen: gen,
				ch:  fault.NewCharger(g.NumNodes()),
			}
		},
	}
	rep, err := parallel.RunLifetime(trials, NumMetrics, seed, popts, func(t int, stream *rng.PCG, scratch any, out []float64) error {
		ts := scratch.(*trialState)
		if opts.Batch > 1 {
			return batchedLifetimeTrial(g, ts, stream, opts.Horizon, maxEvents, opts.Batch, opts, out)
		}
		return lifetimeTrial(g, ts, stream, opts.Horizon, maxEvents, opts, out)
	})
	if err != nil {
		return Result{}, err
	}
	return Result{LifetimeReport: rep, Horizon: opts.Horizon}, nil
}

// lifetimeTrial steps one trial from the fault-free host to the horizon.
// The mixed node+edge process mutates a fault.Charger; the pipeline —
// incremental or from-scratch — always evaluates the *effective*
// (charged) node set, so both paths stay bit-identical for any mix of
// node faults and link flaps.
func lifetimeTrial(g *core.Graph, ts *trialState, stream *rng.PCG, horizon float64, maxEvents int, opts Options, out []float64) error {
	ts.gen.Reset()
	ts.ses.Reset()
	ts.ch.Reset()

	up := true // the fault-free host trivially contains the torus
	died := false
	deathTime := horizon
	deathFaults := 0
	upTime := 0.0
	now := 0.0
	events := 0
	for {
		if events >= maxEvents {
			// Refusing to report is better than silently crediting the
			// unsimulated tail of the horizon as up-time.
			return fterr.New(fterr.Conflict, "churn.lifetimeTrial", "trial exceeded MaxEvents=%d at t=%.3g of horizon %.3g; raise Options.MaxEvents or shorten the horizon", maxEvents, now, horizon)
		}
		ev, err := ts.gen.NextMixed(stream, ts.ch)
		if err != nil {
			return err
		}
		if ev.Time >= horizon {
			// The event lands beyond the trial: the pre-event state
			// persists to the horizon. (The fault set was already
			// mutated, but nothing reads it after this point.)
			break
		}
		if up {
			upTime += ev.Time - now
		}
		now = ev.Time
		events++

		var evalErr error
		if opts.Independent {
			_, evalErr = g.ContainTorus(ts.ch.Effective(), core.ExtractOptions{Scratch: ts.sc, Dense: opts.Dense})
		} else {
			ts.ses.NoteAdded(ev.EffAdded)
			ts.ses.NoteCleared(ev.EffCleared)
			_, evalErr = ts.ses.Eval(ts.ch.Effective())
		}
		switch {
		case evalErr == nil:
			up = true
		default:
			var ue *core.UnhealthyError
			if !errors.As(evalErr, &ue) {
				return evalErr
			}
			if up && !died {
				died = true
				deathTime = now
				deathFaults = ts.ch.Nodes().Count() + ts.ch.Edges().Count()
			}
			up = false
		}
		if died && opts.StopAtDeath {
			break
		}
	}
	if up {
		upTime += horizon - now
	}
	out[MetricDeathTime] = deathTime
	if died {
		out[MetricDied] = 1
		out[MetricDeathFaults] = float64(deathFaults)
	}
	out[MetricAvailability] = upTime / horizon
	out[MetricEvents] = float64(events)
	return nil
}
