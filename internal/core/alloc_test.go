package core

import "testing"

// TestHotPathAllocs is the runtime counterpart of the hotpath analyzer
// (internal/analysis/hotpath) for the core trial loop: once the scratch
// is warm, the //ftnet:hotpath-annotated placement, transfer and
// verification leaves must run allocation-free. AllocsPerRun and the
// static rule cross-check each other — an allocation snuck past one is
// still caught by the other.
func TestHotPathAllocs(t *testing.T) {
	g := mustGraph(t, testParams2D())
	sc := NewScratch(1)
	faults := sc.Faults(g.NumNodes())
	faults.Add(g.NumNodes() / 2)
	if _, err := g.ContainTorus(faults, ExtractOptions{Scratch: sc}); err != nil {
		t.Fatalf("warmup ContainTorus: %v", err)
	}
	tpl, err := g.template()
	if err != nil {
		t.Fatalf("template: %v", err)
	}
	boxes, _, err := g.buildBoxes(faults, sc)
	if err != nil {
		t.Fatalf("buildBoxes: %v", err)
	}
	if len(boxes) == 0 {
		t.Fatal("warmup produced no fault boxes")
	}

	// interpolateFast drives colEval.setColumn and colEval.evalSlab over
	// every footprint column, so a zero here pins all three.
	bs, err := g.interpolateFast(boxes, sc, tpl, nil)
	if err != nil {
		t.Fatalf("interpolateFast: %v", err)
	}
	if a := testing.AllocsPerRun(20, func() {
		if _, err := g.interpolateFast(boxes, sc, tpl, nil); err != nil {
			t.Fatalf("interpolateFast: %v", err)
		}
	}); a > 0 {
		t.Errorf("interpolateFast: %v allocs/op, want 0", a)
	}

	n := g.P.N()
	dst := make([]int32, n)
	dev := make([]bool, g.NumCols)
	if err := g.transferFast(bs, tpl.defaultRows, sc, 0, 1, sc.rowmap[0], dst, dev); err != nil {
		t.Fatalf("transferFast: %v", err)
	}
	if a := testing.AllocsPerRun(50, func() {
		if err := g.transferFast(bs, tpl.defaultRows, sc, 0, 1, sc.rowmap[0], dst, dev); err != nil {
			t.Fatalf("transferFast: %v", err)
		}
	}); a > 0 {
		t.Errorf("transferFast: %v allocs/op, want 0", a)
	}

	skip := func(zn int) bool { return false }
	if a := testing.AllocsPerRun(50, func() {
		if err := g.verifyColumn(sc.emb, faults, sc, 0, true, skip); err != nil {
			t.Fatalf("verifyColumn: %v", err)
		}
	}); a > 0 {
		t.Errorf("verifyColumn: %v allocs/op, want 0", a)
	}
}
