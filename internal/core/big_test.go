package core

import (
	"errors"
	"testing"

	"ftnet/internal/fault"
	"ftnet/internal/rng"
)

// TestLargeInstanceRoundtrip exercises the paper-scale instance used by
// the full-mode experiments (n=1536, 3.1M nodes) once, with the Lemma 7
// consistency check on.
func TestLargeInstanceRoundtrip(t *testing.T) {
	if testing.Short() {
		t.Skip("3.1M-node instance")
	}
	p := Params{D: 2, W: 8, Pitch: 32, Scale: 1}
	g := mustGraph(t, p)
	if p.N() != 1536 || p.NumNodes() != 3145728 {
		t.Fatalf("unexpected instance %v", p)
	}
	faults := fault.NewSet(g.NumNodes())
	faults.Bernoulli(rng.New(99), 5*p.TheoremFailureProb())
	res, err := g.ContainTorus(faults, ExtractOptions{CheckConsistency: true})
	if err != nil {
		var ue *UnhealthyError
		if errors.As(err, &ue) {
			t.Skipf("pattern unhealthy at 5x: %v", err)
		}
		t.Fatal(err)
	}
	if res.Bands.K() != p.K() {
		t.Errorf("band count %d", res.Bands.K())
	}
}

// TestParamsHigherDimensions checks the analytic formulas for d = 4, 5
// (instances far too large to build, but the arithmetic must hold).
func TestParamsHigherDimensions(t *testing.T) {
	for d := 4; d <= 5; d++ {
		p := Params{D: d, W: 4, Pitch: 16, Scale: 1}
		if err := p.Validate(); err != nil {
			t.Fatalf("d=%d: %v", d, err)
		}
		if p.Degree() != 6*d-2 {
			t.Errorf("d=%d degree %d", d, p.Degree())
		}
		// NumNodes = m * n^{d-1} and the (1+eps) bound holds exactly.
		want := p.M()
		for i := 1; i < d; i++ {
			want *= p.N()
		}
		if p.NumNodes() != want {
			t.Errorf("d=%d NumNodes %d, want %d", d, p.NumNodes(), want)
		}
		// m/n = 1+eps exactly.
		if float64(p.M())/float64(p.N()) != 1+p.Eps() {
			t.Errorf("d=%d redundancy mismatch", d)
		}
	}
}

func TestFitParamsRejectsImpossible(t *testing.T) {
	if _, err := FitParams(2, 1000, 0.0001); err == nil {
		t.Error("eps=1e-4 should be infeasible for small widths")
	}
}

func TestUnhealthyErrorMessage(t *testing.T) {
	err := unhealthy("box spans %d tiles", 7)
	var ue *UnhealthyError
	if !errors.As(err, &ue) {
		t.Fatal("unhealthy() did not produce an UnhealthyError")
	}
	if ue.Reason != "box spans 7 tiles" {
		t.Errorf("reason = %q", ue.Reason)
	}
	if err.Error() == "" {
		t.Error("empty error string")
	}
}

// TestDeterministicPlacement: identical fault sets yield identical band
// families, even with the parallel interpolation.
func TestDeterministicPlacement(t *testing.T) {
	p := testParams2D()
	g := mustGraph(t, p)
	faults := fault.NewSet(g.NumNodes())
	faults.Bernoulli(rng.New(55), 5e-5)
	a, _, err := g.PlaceBands(faults)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := g.PlaceBands(faults)
	if err != nil {
		t.Fatal(err)
	}
	for gi := 0; gi < a.K(); gi++ {
		for z := 0; z < g.NumCols; z++ {
			if a.Value(gi, z) != b.Value(gi, z) {
				t.Fatalf("band %d column %d differs between runs", gi, z)
			}
		}
	}
}
