package core

import (
	"errors"
	"testing"

	"ftnet/internal/fault"
	"ftnet/internal/grid"
	"ftnet/internal/rng"
)

// testParams2D is small enough for fast tests: n=432, m=648, 280k nodes.
func testParams2D() Params { return Params{D: 2, W: 6, Pitch: 18, Scale: 1} }

// testParams2DTight has only one band per slab.
func testParams2DTight() Params { return Params{D: 2, W: 4, Pitch: 16, Scale: 1} }

func mustGraph(t *testing.T, p Params) *Graph {
	t.Helper()
	g, err := NewGraph(p)
	if err != nil {
		t.Fatalf("NewGraph(%v): %v", p, err)
	}
	return g
}

func TestParamsDerived(t *testing.T) {
	p := testParams2D()
	if err := p.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if got, want := p.N(), 432; got != want {
		t.Errorf("N = %d, want %d", got, want)
	}
	if got, want := p.M(), 648; got != want {
		t.Errorf("M = %d, want %d", got, want)
	}
	if got, want := p.K(), 36; got != want {
		t.Errorf("K = %d, want %d", got, want)
	}
	if got, want := p.NumSlabs()*p.PerSlab(), p.K(); got != want {
		t.Errorf("slabs*perSlab = %d, want K = %d", got, want)
	}
	if got, want := p.M()-p.K()*p.W, p.N(); got != want {
		t.Errorf("unmasked per column = %d, want n = %d", got, want)
	}
	// Node redundancy: m*(n^{d-1}) = (1+eps) n^d exactly.
	if got, want := float64(p.M())/float64(p.N()), 1+p.Eps(); abs(got-want) > 1e-12 {
		t.Errorf("m/n = %v, want 1+eps = %v", got, want)
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func TestFitParams(t *testing.T) {
	for _, minSide := range []int{64, 300, 1000, 5000} {
		p, err := FitParams(2, minSide, 0.5)
		if err != nil {
			t.Fatalf("FitParams(2, %d): %v", minSide, err)
		}
		if p.N() < minSide {
			t.Errorf("FitParams(2, %d): side %d too small", minSide, p.N())
		}
		if p.Eps() > 0.5+1e-9 {
			t.Errorf("FitParams(2, %d): eps %v > 0.5", minSide, p.Eps())
		}
		if err := p.Validate(); err != nil {
			t.Errorf("FitParams(2, %d): invalid: %v", minSide, err)
		}
	}
	if _, err := FitParams(2, 100, -1); err == nil {
		t.Error("FitParams with negative eps should fail")
	}
}

func TestGraphDegreeAndSymmetry(t *testing.T) {
	for _, p := range []Params{testParams2D(), {D: 3, W: 4, Pitch: 16, Scale: 1}} {
		g := mustGraph(t, p)
		r := rng.New(1)
		want := 6*p.D - 2
		for trial := 0; trial < 50; trial++ {
			u := r.Intn(g.NumNodes())
			nbrs := g.Neighbors(u, nil)
			if len(nbrs) != want {
				t.Fatalf("d=%d: node %d has %d neighbors, want %d", p.D, u, len(nbrs), want)
			}
			seen := map[int]bool{}
			for _, v := range nbrs {
				if v == u {
					t.Fatalf("d=%d: self loop at %d", p.D, u)
				}
				if seen[v] {
					t.Fatalf("d=%d: duplicate edge %d-%d", p.D, u, v)
				}
				seen[v] = true
				if !g.Adjacent(u, v) || !g.Adjacent(v, u) {
					t.Fatalf("d=%d: Adjacent disagrees with Neighbors for %d-%d", p.D, u, v)
				}
				if g.Classify(u, v) == EdgeNone {
					t.Fatalf("d=%d: Classify(%d,%d) = none for a real edge", p.D, u, v)
				}
				// v must list u back.
				back := false
				for _, x := range g.Neighbors(v, nil) {
					if x == u {
						back = true
						break
					}
				}
				if !back {
					t.Fatalf("d=%d: edge %d-%d not symmetric", p.D, u, v)
				}
			}
			// A non-neighbor pair should not be adjacent.
			v := r.Intn(g.NumNodes())
			if v != u && !seen[v] && g.Adjacent(u, v) {
				t.Fatalf("d=%d: Adjacent(%d,%d) true but not in neighbor list", p.D, u, v)
			}
		}
	}
}

func TestEdgeClassCounts(t *testing.T) {
	for _, p := range []Params{testParams2D(), {D: 3, W: 4, Pitch: 16, Scale: 1}} {
		g := mustGraph(t, p)
		r := rng.New(23)
		for trial := 0; trial < 20; trial++ {
			u := r.Intn(g.NumNodes())
			counts := map[EdgeKind]int{}
			for _, v := range g.Neighbors(u, nil) {
				counts[g.Classify(u, v)]++
			}
			if counts[EdgeNone] != 0 {
				t.Fatalf("d=%d: %d unclassified edges at %d", p.D, counts[EdgeNone], u)
			}
			if counts[EdgeTorus] != 2*p.D {
				t.Fatalf("d=%d: %d torus edges, want %d", p.D, counts[EdgeTorus], 2*p.D)
			}
			if counts[EdgeVJump] != 2 {
				t.Fatalf("d=%d: %d vertical jumps, want 2", p.D, counts[EdgeVJump])
			}
			if counts[EdgeDJump] != 4*(p.D-1) {
				t.Fatalf("d=%d: %d diagonal jumps, want %d", p.D, counts[EdgeDJump], 4*(p.D-1))
			}
		}
	}
}

func roundtrip(t *testing.T, g *Graph, faults *fault.Set) *Result {
	t.Helper()
	res, err := g.ContainTorus(faults, ExtractOptions{CheckConsistency: true})
	if err != nil {
		t.Fatalf("ContainTorus with %d faults: %v", faults.Count(), err)
	}
	return res
}

func TestNoFaultsRoundtrip(t *testing.T) {
	for _, p := range []Params{testParams2D(), testParams2DTight()} {
		g := mustGraph(t, p)
		res := roundtrip(t, g, fault.NewSet(g.NumNodes()))
		if res.Report.Boxes != 0 {
			t.Errorf("%v: expected 0 boxes, got %d", p, res.Report.Boxes)
		}
		if res.Bands.K() != p.K() {
			t.Errorf("%v: got %d bands, want %d", p, res.Bands.K(), p.K())
		}
	}
}

func TestSingleFaultRoundtrip(t *testing.T) {
	p := testParams2D()
	g := mustGraph(t, p)
	r := rng.New(7)
	for trial := 0; trial < 10; trial++ {
		faults := fault.NewSet(g.NumNodes())
		faults.Add(r.Intn(g.NumNodes()))
		res := roundtrip(t, g, faults)
		if res.Report.Boxes != 1 {
			t.Errorf("trial %d: expected 1 box, got %d", trial, res.Report.Boxes)
		}
		if res.Report.Segments != 1 {
			t.Errorf("trial %d: expected 1 segment, got %d", trial, res.Report.Segments)
		}
	}
}

func TestFaultNearSlabBoundary(t *testing.T) {
	p := testParams2D()
	g := mustGraph(t, p)
	tile := p.Tile()
	// Faults at the very first and last rows of slabs, including row 0 and
	// row m-1 (wrap), stress segment-to-slab assignment.
	for _, row := range []int{0, tile - 1, tile, 2*tile - 1, p.M() - 1, p.M() - tile} {
		faults := fault.NewSet(g.NumNodes())
		faults.Add(g.NodeIndex(row, 5))
		roundtrip(t, g, faults)
	}
}

func TestClusteredFaultsRoundtrip(t *testing.T) {
	p := testParams2D()
	g := mustGraph(t, p)
	// A tight cluster inside one tile.
	faults := fault.NewSet(g.NumNodes())
	base := g.NodeIndex(40, 40)
	for _, off := range []int{0, 1, 2} {
		faults.Add(base + off)              // same row, neighboring columns
		faults.Add(g.NodeIndex(41+off, 40)) // same column, neighboring rows
	}
	res := roundtrip(t, g, faults)
	if res.Report.Boxes != 1 {
		t.Errorf("expected 1 box, got %d", res.Report.Boxes)
	}
}

func TestAdjacentTilesMerge(t *testing.T) {
	p := testParams2D()
	g := mustGraph(t, p)
	tile := p.Tile()
	faults := fault.NewSet(g.NumNodes())
	// Faults in diagonally adjacent tiles must end up in one box.
	faults.Add(g.NodeIndex(tile-1, tile-1))
	faults.Add(g.NodeIndex(tile, tile))
	res := roundtrip(t, g, faults)
	if res.Report.Boxes != 1 {
		t.Errorf("diagonal faulty tiles: expected merged box, got %d boxes", res.Report.Boxes)
	}
}

func TestWrapAroundFaults(t *testing.T) {
	p := testParams2D()
	g := mustGraph(t, p)
	faults := fault.NewSet(g.NumNodes())
	// Faults straddling the wrap in both dimensions.
	faults.Add(g.NodeIndex(p.M()-1, p.N()-1))
	faults.Add(g.NodeIndex(0, 0))
	res := roundtrip(t, g, faults)
	if res.Report.Boxes != 1 {
		t.Errorf("wrap-adjacent faults: expected 1 box, got %d", res.Report.Boxes)
	}
}

func TestRandomFaultsRoundtrip(t *testing.T) {
	p := testParams2D()
	g := mustGraph(t, p)
	r := rng.New(42)
	successes, unhealthy := 0, 0
	for trial := 0; trial < 30; trial++ {
		faults := fault.NewSet(g.NumNodes())
		faults.Bernoulli(r.Split(uint64(trial)), 1e-4) // ~28 faults per trial
		res, err := g.ContainTorus(faults, ExtractOptions{CheckConsistency: true})
		if err != nil {
			var ue *UnhealthyError
			if errors.As(err, &ue) {
				unhealthy++
				continue
			}
			t.Fatalf("trial %d: unexpected error: %v", trial, err)
		}
		successes++
		if err := res.Bands.Validate(); err != nil {
			t.Fatalf("trial %d: bands invalid: %v", trial, err)
		}
	}
	if successes == 0 {
		t.Errorf("no successful trials (unhealthy=%d); placement too fragile", unhealthy)
	}
	t.Logf("random faults: %d successes, %d unhealthy", successes, unhealthy)
}

func TestTheoremProbabilityRoundtrip(t *testing.T) {
	// At the failure probability Theorem 2 actually assumes, survival
	// should be overwhelming.
	p := testParams2D()
	g := mustGraph(t, p)
	prob := p.TheoremFailureProb()
	r := rng.New(3)
	for trial := 0; trial < 20; trial++ {
		faults := fault.NewSet(g.NumNodes())
		faults.Bernoulli(r.Split(uint64(trial)), prob)
		if _, err := g.ContainTorus(faults, ExtractOptions{CheckConsistency: true}); err != nil {
			t.Fatalf("trial %d with p=log^-3d n: %v", trial, err)
		}
	}
}

func TestDenseFaultsReportUnhealthy(t *testing.T) {
	p := testParams2D()
	g := mustGraph(t, p)
	faults := fault.NewSet(g.NumNodes())
	faults.Bernoulli(rng.New(9), 0.05)
	_, err := g.ContainTorus(faults, ExtractOptions{})
	if err == nil {
		t.Skip("placement survived 5% faults; no unhealthy case to check")
	}
	var ue *UnhealthyError
	if !errors.As(err, &ue) {
		t.Fatalf("dense faults produced a non-Unhealthy error (a bug): %v", err)
	}
}

func TestAblationVerticalJumps(t *testing.T) {
	p := testParams2D()
	g := mustGraph(t, p)
	g.DisableVJump = true
	faults := fault.NewSet(g.NumNodes())
	if _, err := g.ContainTorus(faults, ExtractOptions{}); err == nil {
		t.Error("without vertical jumps the extracted columns cannot close; expected failure")
	}
}

func TestAblationDiagonalJumps(t *testing.T) {
	p := testParams2D()
	g := mustGraph(t, p)
	g.DisableDJump = true
	faults := fault.NewSet(g.NumNodes())
	faults.Add(g.NodeIndex(100, 100)) // force at least one winding band
	if _, err := g.ContainTorus(faults, ExtractOptions{}); err == nil {
		t.Error("without diagonal jumps rows cannot cross bands; expected failure")
	}
}

func TestHealthNoFaults(t *testing.T) {
	p := testParams2D()
	g := mustGraph(t, p)
	h := g.CheckHealth(fault.NewSet(g.NumNodes()))
	if !h.Healthy() {
		t.Errorf("fault-free instance reported unhealthy: %+v", h)
	}
}

func TestHealthDenseFaults(t *testing.T) {
	p := testParams2D()
	g := mustGraph(t, p)
	faults := fault.NewSet(g.NumNodes())
	faults.Bernoulli(rng.New(11), 0.2)
	h := g.CheckHealth(faults)
	if h.Healthy() {
		t.Errorf("20%% faults reported healthy: %+v", h)
	}
}

func TestTileOf(t *testing.T) {
	p := testParams2D()
	g := mustGraph(t, p)
	tile := p.Tile()
	buf := g.TileOf(g.NodeIndex(tile+3, 2*tile+5), nil)
	if buf[0] != 1 || buf[1] != 2 {
		t.Errorf("TileOf = %v, want [1 2]", buf)
	}
}

func TestGraph3DRoundtrip(t *testing.T) {
	if testing.Short() {
		t.Skip("3D roundtrip is slow")
	}
	p := Params{D: 3, W: 4, Pitch: 16, Scale: 1}
	g := mustGraph(t, p)
	r := rng.New(5)
	faults := fault.NewSet(g.NumNodes())
	for i := 0; i < 5; i++ {
		faults.Add(r.Intn(g.NumNodes()))
	}
	roundtrip(t, g, faults)
}

func TestPlaceBandsMaskAllFaults(t *testing.T) {
	p := testParams2D()
	g := mustGraph(t, p)
	r := rng.New(17)
	for trial := 0; trial < 5; trial++ {
		faults := fault.NewSet(g.NumNodes())
		faults.Bernoulli(r.Split(uint64(trial)), 5e-5)
		bs, _, err := g.PlaceBands(faults)
		if err != nil {
			var ue *UnhealthyError
			if errors.As(err, &ue) {
				continue
			}
			t.Fatalf("trial %d: %v", trial, err)
		}
		var unmasked int
		faults.ForEach(func(idx int) {
			i, z := g.NodeOf(idx)
			if bs.MaskedBy(z, i) < 0 {
				unmasked++
			}
		})
		if unmasked > 0 {
			t.Errorf("trial %d: %d faults unmasked", trial, unmasked)
		}
	}
}

func TestCyclicHelpersAgree(t *testing.T) {
	// Guard the grid helpers the placer depends on.
	if lo, e := grid.CyclicCover([]int{9, 0, 1}, 10); lo != 9 || e != 3 {
		t.Errorf("CyclicCover wrap = (%d,%d), want (9,3)", lo, e)
	}
	if !grid.IntervalsIntersect(8, 3, 0, 2, 10) {
		t.Error("wrap intervals [8,11) and [0,2) should intersect")
	}
	if grid.IntervalsIntersect(2, 2, 5, 2, 10) {
		t.Error("disjoint intervals reported intersecting")
	}
}
