package core

import (
	"errors"
	"fmt"
	"testing"

	"ftnet/internal/fault"
	"ftnet/internal/parallel"
	"ftnet/internal/rng"
	"ftnet/internal/stats"
)

// Golden equivalence suite: the locality-aware fast path (copy-on-write
// bands, dirty-column extraction, footprint verification) must produce
// bit-identical bands, embeddings, reports and survival outcomes to the
// legacy dense pipeline, across random seeds and the crafted patterns
// that exercise its corner cases (multi-box, box extension, wrap,
// dirty-anchor handling and rotation).

// runBoth executes one fault pattern through both pipelines and compares
// everything. scFast is reused across calls on purpose: the restore
// logic between trials is part of what is under test.
func runBoth(t *testing.T, g *Graph, faults *fault.Set, scFast *Scratch, label string) {
	t.Helper()
	resDense, errDense := g.ContainTorus(faults, ExtractOptions{Dense: true})
	resFast, errFast := g.ContainTorus(faults, ExtractOptions{Scratch: scFast})
	if (errDense == nil) != (errFast == nil) {
		t.Fatalf("%s: outcome mismatch: dense err=%v, fast err=%v", label, errDense, errFast)
	}
	if errDense != nil {
		var ud, uf *UnhealthyError
		if errors.As(errDense, &ud) != errors.As(errFast, &uf) {
			t.Fatalf("%s: error class mismatch: dense %v, fast %v", label, errDense, errFast)
		}
		return
	}
	if *resDense.Report != *resFast.Report {
		t.Fatalf("%s: report mismatch: dense %+v, fast %+v", label, *resDense.Report, *resFast.Report)
	}
	for gi := 0; gi < resDense.Bands.K(); gi++ {
		for z := 0; z < g.NumCols; z++ {
			if resDense.Bands.Value(gi, z) != resFast.Bands.Value(gi, z) {
				t.Fatalf("%s: band %d column %d: dense %d, fast %d",
					label, gi, z, resDense.Bands.Value(gi, z), resFast.Bands.Value(gi, z))
			}
		}
	}
	if len(resDense.Embedding.Map) != len(resFast.Embedding.Map) {
		t.Fatalf("%s: embedding sizes differ", label)
	}
	for i := range resDense.Embedding.Map {
		if resDense.Embedding.Map[i] != resFast.Embedding.Map[i] {
			t.Fatalf("%s: embedding differs at guest node %d: dense %d, fast %d",
				label, i, resDense.Embedding.Map[i], resFast.Embedding.Map[i])
		}
	}
}

func TestEquivalenceRandom2D(t *testing.T) {
	g := mustGraph(t, testParams2D())
	sc := NewScratch(1)
	pThm := g.P.TheoremFailureProb()
	for _, rate := range []float64{pThm, 10 * pThm, 1e-4} {
		for seed := uint64(0); seed < 20; seed++ {
			faults := fault.NewSet(g.NumNodes())
			faults.Bernoulli(rng.New(1000*seed+7), rate)
			runBoth(t, g, faults, sc, fmt.Sprintf("d=2 rate=%g seed=%d (%d faults)", rate, seed, faults.Count()))
		}
	}
}

func TestEquivalenceCrafted2D(t *testing.T) {
	g := mustGraph(t, testParams2D())
	sc := NewScratch(1)
	tile := g.P.Tile()
	n := g.P.N()
	m := g.P.M()
	cases := []struct {
		label string
		nodes []int
	}{
		{"empty", nil},
		{"single", []int{g.NodeIndex(100, 100)}},
		{"multi-box", []int{g.NodeIndex(100, 100), g.NodeIndex(400, 300), g.NodeIndex(250, 50)}},
		// A fault on the first row of a slab forces the pigeonhole segment
		// below the box bottom, triggering the box-extension pass.
		{"box-extension", []int{g.NodeIndex(2*tile, 200)}},
		{"wrap", []int{g.NodeIndex(m-1, n-1), g.NodeIndex(0, 150)}},
		// Faults whose footprint touches column 0: the fast extraction
		// walks the anchor component from column 0 first (see
		// extractFast); results must still be identical.
		{"column-0", []int{g.NodeIndex(300, 0)}},
		{"column-wrap", []int{g.NodeIndex(300, n-1)}},
		// A tight cluster in one tile plus its diagonal neighbor: one
		// merged box spanning multiple tiles.
		{"cluster", []int{g.NodeIndex(40, 40), g.NodeIndex(41, 40), g.NodeIndex(tile, tile), g.NodeIndex(tile-1, tile-1)}},
	}
	for _, c := range cases {
		faults := fault.NewSet(g.NumNodes())
		for _, u := range c.nodes {
			faults.Add(u)
		}
		runBoth(t, g, faults, sc, c.label)
		// Run the empty pattern after every crafted one: the fast path
		// must fully restore its default state between trials.
		runBoth(t, g, fault.NewSet(g.NumNodes()), sc, c.label+"+restore")
	}
}

// TestEquivalenceAnchorRotation forces the rare extractFast branch where
// the bands at column 0 genuinely move: the dense anchor then rotates
// every clean column's row vector relative to the template, the fast
// path degrades to one O(N) map fill, and the scratch drops its default
// state. Results must still be bit-identical, and the next (clean) trial
// must recover.
func TestEquivalenceAnchorRotation(t *testing.T) {
	g := mustGraph(t, testParams2D())
	sc := NewScratch(1)
	rotations := 0
	for _, row := range []int{15, 20, 0, 34} {
		faults := fault.NewSet(g.NumNodes())
		faults.Add(g.NodeIndex(row, 0))
		runBoth(t, g, faults, sc, fmt.Sprintf("anchor row=%d", row))
		if !sc.fastInit {
			rotations++ // the rotated branch dropped the default state
		}
		runBoth(t, g, fault.NewSet(g.NumNodes()), sc, fmt.Sprintf("anchor row=%d +restore", row))
	}
	if rotations == 0 {
		t.Error("no crafted pattern exercised the rotated-anchor branch")
	}
	t.Logf("rotated-anchor branch hit %d/4 times", rotations)
}

// TestScratchReuseAcrossGraphs moves one Scratch from a larger graph to
// a smaller one: the pinned-corner table shrinks while its backing array
// (and the previous trial's key list) stays — stale keys must be cleared
// against the full capacity, not the resliced view (regression: index
// out of range in pinnedBuf).
func TestScratchReuseAcrossGraphs(t *testing.T) {
	big := mustGraph(t, Params{D: 2, W: 6, Pitch: 18, Scale: 2})
	small := mustGraph(t, testParams2D())
	sc := NewScratch(1)
	// Fault in the last slab and last column tile of the big graph, so
	// the recorded pinned keys sit near the top of the big table.
	faults := fault.NewSet(big.NumNodes())
	faults.Add(big.NodeIndex(big.P.M()-1, big.P.N()-40))
	if _, err := big.ContainTorus(faults, ExtractOptions{Scratch: sc}); err != nil {
		t.Fatal(err)
	}
	for seed := uint64(0); seed < 4; seed++ {
		faults := fault.NewSet(small.NumNodes())
		faults.Bernoulli(rng.New(seed+3), 1e-5)
		runBoth(t, small, faults, sc, fmt.Sprintf("after-shrink seed=%d", seed))
	}
}

func TestEquivalenceRandom3D(t *testing.T) {
	if testing.Short() {
		t.Skip("9.4M-node instance")
	}
	g := mustGraph(t, Params{D: 3, W: 4, Pitch: 16, Scale: 1})
	sc := NewScratch(1)
	r := rng.New(77)
	for trial := 0; trial < 3; trial++ {
		faults := fault.NewSet(g.NumNodes())
		for i := 0; i < 2+trial; i++ {
			faults.Add(r.Intn(g.NumNodes()))
		}
		runBoth(t, g, faults, sc, fmt.Sprintf("d=3 trial=%d", trial))
	}
	// Box extension in 3-D: fault on a slab's first row.
	faults := fault.NewSet(g.NumNodes())
	faults.Add(g.NodeIndex(3*g.P.Tile(), 12345))
	runBoth(t, g, faults, sc, "d=3 box-extension")
}

// TestParallelDeterminismEquivalence runs the fast path on the parallel
// engine (the name keeps it inside CI's -race determinism sweep): the
// committed survival count must be identical across worker counts and
// equal to a serial dense-pipeline replay of the same trial streams.
func TestParallelDeterminismEquivalence(t *testing.T) {
	g := mustGraph(t, testParams2D())
	prob := 20 * g.P.TheoremFailureProb()
	const trials = 48
	const rootSeed = 99
	trial := func(tr int, stream *rng.PCG, scratch any) (stats.Outcome, error) {
		sc := scratch.(*Scratch)
		faults := sc.Faults(g.NumNodes())
		faults.Bernoulli(stream, prob)
		if _, err := g.ContainTorus(faults, ExtractOptions{Scratch: sc}); err != nil {
			var ue *UnhealthyError
			if errors.As(err, &ue) {
				return stats.Failure, nil
			}
			return stats.Failure, err
		}
		return stats.Success, nil
	}
	want := -1
	for _, workers := range []int{1, 4} {
		rep, err := parallel.Run(trials, rootSeed, parallel.Options{
			Workers:    workers,
			NewScratch: func() any { return NewScratch(1) },
		}, trial)
		if err != nil {
			t.Fatal(err)
		}
		if want < 0 {
			want = rep.Successes
		} else if rep.Successes != want {
			t.Fatalf("workers=%d: %d successes, want %d", workers, rep.Successes, want)
		}
	}
	dense := 0
	for tr := 0; tr < trials; tr++ {
		faults := fault.NewSet(g.NumNodes())
		faults.Bernoulli(rng.NewPCG(rootSeed, uint64(tr)), prob)
		_, err := g.ContainTorus(faults, ExtractOptions{Dense: true})
		if err == nil {
			dense++
			continue
		}
		var ue *UnhealthyError
		if !errors.As(err, &ue) {
			t.Fatalf("dense trial %d: %v", tr, err)
		}
	}
	if dense != want {
		t.Fatalf("survival count: fast %d, dense %d", want, dense)
	}
}
