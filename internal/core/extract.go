package core

import (
	"ftnet/internal/bands"
	"ftnet/internal/embed"
	"ftnet/internal/fault"
	"ftnet/internal/fterr"
	"ftnet/internal/grid"
)

// ExtractOptions tunes the Lemma 6 extraction.
type ExtractOptions struct {
	// CheckConsistency re-derives the row mapping across every non-tree
	// column adjacency and demands agreement: the executable analogue of
	// Lemma 7 (path independence of P_{i,pi}). Costs one extra pass over
	// all columns; enabled in tests, off in benchmarks.
	CheckConsistency bool
	// Dense forces the legacy whole-host pipeline: dense interpolation,
	// full-BFS extraction and whole-graph verification, each O(N) per
	// trial. The default (false) uses the locality-aware copy-on-write
	// fast path whenever a Scratch is supplied and the fault footprint
	// allows it (see locality.go); the golden equivalence tests assert
	// the two modes produce bit-identical results.
	Dense bool
	// Scratch, if non-nil, supplies reusable buffers for placement,
	// extraction and verification, and bounds the pipeline's inner
	// parallelism (see Scratch). The returned Result then aliases the
	// scratch and is only valid until its next use.
	Scratch *Scratch
}

// Extract realizes Lemma 6: given a valid family of (m-n)/b untouching
// bands, it constructs the isomorphism psi from (C_n)^d onto the unmasked
// part of B^d_n. Columns become the n unmasked nodes of each host column
// (closed into a cycle by torus edges and vertical jumps); rows are grown
// by the path-transfer rule of Lemma 6, jumping +-b over bands via the
// diagonal jump edges.
//
// The returned embedding maps guest node (i, z) of the n-torus to host
// node (psi_z(i), z). Callers should verify it with embed.Verify against
// the faulty host.
//
// With a tracked band family (PlaceBandsScratch) and a Scratch, the
// extraction consumes the family's dirty-column set and runs in
// O(fault footprint) — see extractFast in locality.go; the BFS below is
// the legacy dense path, kept behind ExtractOptions.Dense and as the
// fallback when the fast path does not apply.
func (g *Graph) Extract(bs *bands.Set, opts ExtractOptions) (*embed.Embedding, error) {
	p := g.P
	n := p.N()
	numCols := g.NumCols
	if bs.K() != p.K() {
		return nil, fterr.New(fterr.Internal, "core", "band family has %d bands, want %d", bs.K(), p.K())
	}
	if tpl := g.fastPath(bs, opts); tpl != nil {
		return g.extractFast(bs, tpl, opts)
	}

	// Unmasked rows per column, in cyclic order anchored above band 0.
	// With a scratch, the per-column row slices live in one flat backing
	// array reused across trials.
	rowmap, rowflat := opts.Scratch.rowBuffers(numCols, n)
	rowmap[0] = bs.UnmaskedRows(0, rowflat[:0:n])
	if len(rowmap[0]) != n {
		return nil, fterr.New(fterr.Internal, "core", "column 0 has %d unmasked rows, want %d", len(rowmap[0]), n)
	}

	// BFS over the column torus.
	queue := append(opts.Scratch.queueBuf(numCols), 0)
	nbuf := opts.Scratch.nbufBuf()
	ncoord := opts.Scratch.ncoordBuf(p.D - 1)
	for head := 0; head < len(queue); head++ {
		z := queue[head]
		nbuf = g.columnNeighbors(z, nbuf[:0], ncoord)
		for _, zn := range nbuf {
			if rowmap[zn] != nil || zn == 0 {
				continue
			}
			dst := rowflat[zn*n : (zn+1)*n]
			if err := g.transferRows(bs, z, zn, rowmap[z], dst); err != nil {
				return nil, err
			}
			rowmap[zn] = dst
			queue = append(queue, zn)
		}
	}
	if opts.Scratch != nil {
		opts.Scratch.nbuf = nbuf
	}
	if len(queue) != numCols {
		return nil, fterr.New(fterr.Internal, "core", "column BFS reached %d of %d columns", len(queue), numCols)
	}

	if opts.CheckConsistency {
		dst := opts.Scratch.dstBuf(n)
		coord := make([]int, p.D-1)
		for z := 0; z < numCols; z++ {
			g.ColShape.Coord(z, coord)
			for dim := range g.ColShape {
				orig := coord[dim]
				coord[dim] = grid.Add(orig, 1, g.ColShape[dim])
				zn := g.ColShape.Index(coord)
				coord[dim] = orig
				if err := g.transferRows(bs, z, zn, rowmap[z], dst); err != nil {
					return nil, err
				}
				for i := range dst {
					if dst[i] != rowmap[zn][i] {
						return nil, fterr.New(fterr.Internal, "core", "Lemma 7 violation: row %d disagrees across columns %d -> %d (%d vs %d)",
							i, z, zn, dst[i], rowmap[zn][i])
					}
				}
			}
		}
	}

	guest, err := opts.Scratch.guestTorus(p.D, n)
	if err != nil {
		return nil, err
	}
	e := opts.Scratch.embedding(guest)
	for z := 0; z < numCols; z++ {
		rows := rowmap[z]
		for i := 0; i < n; i++ {
			e.Map[i*numCols+z] = int(rows[i])*numCols + z
		}
	}
	return e, nil
}

// transferRows grows the Lemma 6 row mapping from column zFrom to the
// adjacent column zTo: rows that fall onto a band that slid by one step
// jump ±W over it (paper cases (a)/(b)); everything else carries over.
func (g *Graph) transferRows(bs *bands.Set, zFrom, zTo int, src, dst []int32) error {
	m := g.P.M()
	w := g.P.W
	for i, r32 := range src {
		r := int(r32)
		band := bs.MaskedBy(zTo, r)
		if band < 0 {
			dst[i] = r32
			continue
		}
		bTo := bs.Value(band, zTo)
		bFrom := bs.Value(band, zFrom)
		switch {
		case bTo == grid.Sub(bFrom, 1, m):
			// The band slid down by one: the row just fell onto the
			// band's bottom; jump upward over it (paper case (a)).
			dst[i] = int32(grid.Add(r, w, m))
		case bTo == grid.Add(bFrom, 1, m):
			// The band slid up by one: the row fell onto the band's
			// top; jump downward (paper case (b)).
			dst[i] = int32(grid.Sub(r, w, m))
		default:
			return fterr.New(fterr.Internal, "core", "band %d masks row %d at column %d yet did not move from column %d (bottoms %d -> %d)",
				band, r, zTo, zFrom, bFrom, bTo)
		}
	}
	return nil
}

// columnNeighbors appends the 2(d-1) columns adjacent to z. coord is a
// caller-owned length d-1 work buffer, hoisted out of the BFS loop so
// the per-column visit allocates nothing.
func (g *Graph) columnNeighbors(z int, buf, coord []int) []int {
	coord = g.ColShape.Coord(z, coord)
	for dim := range g.ColShape {
		orig := coord[dim]
		coord[dim] = grid.Add(orig, 1, g.ColShape[dim])
		buf = append(buf, g.ColShape.Index(coord))
		coord[dim] = grid.Sub(orig, 1, g.ColShape[dim])
		buf = append(buf, g.ColShape.Index(coord))
		coord[dim] = orig
	}
	return buf
}

// HostView adapts a faulty B^d_n to the embed.Host interface. Edges is
// the (possibly nil) set of faulty host edges: the placement pipeline
// itself never consults it — Theorem 2 charges every edge fault to an
// endpoint and evaluates the charged *node* set — but an edge-aware view
// lets embed.Verify independently confirm the charging argument, that an
// embedding avoiding all charged nodes uses no faulty edge.
//
// Construct views with NewHostView so call sites cannot silently omit
// the edge-fault field when they have one.
type HostView struct {
	G      *Graph
	Faults *fault.Set
	Edges  *fault.EdgeSet
}

// NewHostView builds the embed.Host view of a faulty B^d_n. faults is
// the node-fault set the embedding was verified against (for an
// edge-fault workload, the *effective* charged set — see fault.Charger);
// edges may be nil when the workload has no edge faults.
func NewHostView(g *Graph, faults *fault.Set, edges *fault.EdgeSet) HostView {
	return HostView{G: g, Faults: faults, Edges: edges}
}

// NumNodes implements embed.Host.
func (h HostView) NumNodes() int { return h.G.NumNodes() }

// Adjacent implements embed.Host.
func (h HostView) Adjacent(u, v int) bool { return h.G.Adjacent(u, v) }

// NodeFaulty implements embed.Host.
func (h HostView) NodeFaulty(u int) bool { return h.Faults.Has(u) }

// EdgeFaulty implements embed.Host.
func (h HostView) EdgeFaulty(u, v int) bool { return h.Edges != nil && h.Edges.Has(u, v) }

// Result bundles a successful survival proof for one faulty instance.
type Result struct {
	Bands     *bands.Set
	Embedding *embed.Embedding
	Report    *PlaceReport
}

// ContainTorus runs the full Theorem 2 pipeline on a faulty instance:
// place bands, extract the torus, and verify the embedding independently.
// An *UnhealthyError means the fault pattern exceeded what the
// construction tolerates (a survival failure); any other error is a bug.
// With opts.Scratch set, the heavy buffers of all three stages are
// reused, the Result aliases the scratch (see Scratch), and the whole
// trial runs the locality-aware fast path — cost proportional to the
// fault footprint, not the host size — unless opts.Dense forces the
// legacy whole-host pipeline or the footprint disqualifies itself (see
// fastPath in locality.go).
func (g *Graph) ContainTorus(faults *fault.Set, opts ExtractOptions) (*Result, error) {
	bs, rep, err := g.placeBands(faults, opts)
	if err != nil {
		return nil, err
	}
	emb, err := g.Extract(bs, opts)
	if err != nil {
		return nil, err
	}
	if tpl := g.fastPath(bs, opts); tpl != nil {
		if err := g.verifyFast(emb, bs, faults, tpl, opts.Scratch); err != nil {
			return nil, err
		}
	} else {
		host := NewHostView(g, faults, nil)
		if err := emb.VerifyBuf(host, opts.Scratch.seenBuf(g.NumNodes())); err != nil {
			return nil, err
		}
	}
	return &Result{Bands: bs, Embedding: emb, Report: rep}, nil
}
