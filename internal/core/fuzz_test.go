package core

import (
	"errors"
	"testing"

	"ftnet/internal/fault"
)

// FuzzPlacement drives band placement with fuzzer-chosen fault positions
// on a fixed small instance. The contract: placement either succeeds with
// a valid all-masking family or fails with a typed UnhealthyError — it
// never panics, never returns an untyped error, never leaves a fault
// unmasked. Seed corpus runs under plain `go test`; explore with
// `go test -fuzz FuzzPlacement -run FuzzPlacement ./internal/core`.
func FuzzPlacement(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4})
	f.Add([]byte{0, 0, 255, 255})
	f.Add([]byte{10, 20, 30, 40, 50, 60, 70, 80})
	p := Params{D: 2, W: 4, Pitch: 16, Scale: 1}
	g, err := NewGraph(p)
	if err != nil {
		f.Fatal(err)
	}
	f.Fuzz(func(t *testing.T, raw []byte) {
		if len(raw) > 64 {
			raw = raw[:64] // bound fault counts; beyond that all unhealthy anyway
		}
		faults := fault.NewSet(g.NumNodes())
		// Interpret consecutive byte pairs as (row, column) seeds spread
		// over the host.
		for i := 0; i+1 < len(raw); i += 2 {
			row := int(raw[i]) * g.P.M() / 256
			col := int(raw[i+1]) * g.P.N() / 256
			faults.Add(g.NodeIndex(row, col))
		}
		bs, _, err := g.PlaceBands(faults)
		if err != nil {
			var ue *UnhealthyError
			if !errors.As(err, &ue) {
				t.Fatalf("untyped placement error: %v", err)
			}
			return
		}
		if err := bs.Validate(); err != nil {
			t.Fatalf("invalid family: %v", err)
		}
		faults.ForEach(func(idx int) {
			i, z := g.NodeOf(idx)
			if bs.MaskedBy(z, i) < 0 {
				t.Fatalf("fault (%d,%d) unmasked", i, z)
			}
		})
		// And the extraction must go through end to end.
		if _, err := g.Extract(bs, ExtractOptions{}); err != nil {
			t.Fatalf("extraction after successful placement: %v", err)
		}
	})
}
