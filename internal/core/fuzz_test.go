package core

import (
	"errors"
	"testing"

	"ftnet/internal/fault"
)

// FuzzSession drives the bidirectional delta-evaluation engine with a
// fuzzer-chosen add/remove script on a small instance and pins every
// reached state against the dense pipeline. The contract: whatever the
// mutation order — including mutations applied while the session holds
// an unhealthy (failed) state — Eval is bit-identical to a from-scratch
// dense evaluation, errors stay typed, and nothing panics. Seed corpus
// runs under plain `go test`; CI explores with
// `go test -fuzz FuzzSession -fuzztime 30s ./internal/core`.
func FuzzSession(f *testing.F) {
	f.Add([]byte{0, 10, 20, 0, 200, 100, 1, 10, 20})
	f.Add([]byte{0, 1, 2, 0, 3, 4, 0, 5, 6, 1, 1, 2, 1, 5, 6})
	f.Add([]byte{0, 128, 128, 2, 0, 0, 0, 128, 129, 3, 0, 0})
	p := Params{D: 2, W: 4, Pitch: 16, Scale: 1}
	g, err := NewGraph(p)
	if err != nil {
		f.Fatal(err)
	}
	f.Fuzz(func(t *testing.T, raw []byte) {
		if len(raw) > 60 {
			raw = raw[:60] // a handful of ops is enough to hit every transition
		}
		sc := NewScratch(1)
		ses := g.NewSession(sc, ExtractOptions{})
		faults := fault.NewSet(g.NumNodes())
		delta := make([]int, 0, 1)
		// Interpret byte triples as (op, row seed, column seed): op&3
		// selects add / remove / eval-now / reset.
		for i := 0; i+2 < len(raw); i += 3 {
			op := raw[i] & 3
			u := g.NodeIndex(int(raw[i+1])*g.P.M()/256, int(raw[i+2])*g.P.N()/256)
			switch op {
			case 0:
				if !faults.Has(u) {
					faults.Add(u)
					ses.NoteAdded(append(delta[:0], u))
				}
			case 1:
				if faults.Has(u) {
					faults.Remove(u)
					ses.NoteCleared(append(delta[:0], u))
				}
			case 2:
				fuzzEvalBoth(t, g, ses, faults)
			case 3:
				ses.Reset()
			}
		}
		fuzzEvalBoth(t, g, ses, faults)
	})
}

// fuzzEvalBoth is the fuzz-friendly state comparison: outcome class and
// embedding must match the dense pipeline exactly.
func fuzzEvalBoth(t *testing.T, g *Graph, ses *Session, faults *fault.Set) {
	t.Helper()
	resIncr, errIncr := ses.Eval(faults)
	resDense, errDense := g.ContainTorus(faults, ExtractOptions{Dense: true})
	if (errIncr == nil) != (errDense == nil) {
		t.Fatalf("outcome mismatch: session err=%v, dense err=%v", errIncr, errDense)
	}
	if errIncr != nil {
		var us, ud *UnhealthyError
		if !errors.As(errIncr, &us) || !errors.As(errDense, &ud) {
			t.Fatalf("untyped error: session %v, dense %v", errIncr, errDense)
		}
		return
	}
	for i := range resDense.Embedding.Map {
		if resDense.Embedding.Map[i] != resIncr.Embedding.Map[i] {
			t.Fatalf("embedding differs at guest node %d: dense %d, session %d",
				i, resDense.Embedding.Map[i], resIncr.Embedding.Map[i])
		}
	}
}

// FuzzPlacement drives band placement with fuzzer-chosen fault positions
// on a fixed small instance. The contract: placement either succeeds with
// a valid all-masking family or fails with a typed UnhealthyError — it
// never panics, never returns an untyped error, never leaves a fault
// unmasked. Seed corpus runs under plain `go test`; explore with
// `go test -fuzz FuzzPlacement -run FuzzPlacement ./internal/core`.
func FuzzPlacement(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4})
	f.Add([]byte{0, 0, 255, 255})
	f.Add([]byte{10, 20, 30, 40, 50, 60, 70, 80})
	p := Params{D: 2, W: 4, Pitch: 16, Scale: 1}
	g, err := NewGraph(p)
	if err != nil {
		f.Fatal(err)
	}
	f.Fuzz(func(t *testing.T, raw []byte) {
		if len(raw) > 64 {
			raw = raw[:64] // bound fault counts; beyond that all unhealthy anyway
		}
		faults := fault.NewSet(g.NumNodes())
		// Interpret consecutive byte pairs as (row, column) seeds spread
		// over the host.
		for i := 0; i+1 < len(raw); i += 2 {
			row := int(raw[i]) * g.P.M() / 256
			col := int(raw[i+1]) * g.P.N() / 256
			faults.Add(g.NodeIndex(row, col))
		}
		bs, _, err := g.PlaceBands(faults)
		if err != nil {
			var ue *UnhealthyError
			if !errors.As(err, &ue) {
				t.Fatalf("untyped placement error: %v", err)
			}
			return
		}
		if err := bs.Validate(); err != nil {
			t.Fatalf("invalid family: %v", err)
		}
		faults.ForEach(func(idx int) {
			i, z := g.NodeOf(idx)
			if bs.MaskedBy(z, i) < 0 {
				t.Fatalf("fault (%d,%d) unmasked", i, z)
			}
		})
		// And the extraction must go through end to end.
		if _, err := g.Extract(bs, ExtractOptions{}); err != nil {
			t.Fatalf("extraction after successful placement: %v", err)
		}
	})
}
