package core

import (
	"sync"

	"ftnet/internal/grid"
)

// Graph is the host network B^d_n. Nodes are pairs (i, z) with i in [m]
// (dimension 0) and z a column of the (d-1)-dimensional torus (C_n)^{d-1};
// the flat index is i*numCols + z.
//
// Edge classes (paper, Section 3):
//   - torus edges: the edges of C_m x (C_n)^{d-1};
//   - vertical jumps: (i, z) -- (i +- (b+1), z);
//   - diagonal jumps: (i, z) -- (i +- b, z') for each column z' adjacent
//     to z.
//
// Degree: 2d torus + 2 vertical + 4(d-1) diagonal = 6d-2, uniformly.
//
// DisableVJump / DisableDJump remove an edge class for ablation studies
// (experiments A1-A2); with either disabled the extraction of Lemma 6 must
// fail, which the tests assert. Set them before the first pipeline call:
// the lazily built locality template (see template.go) bakes the edge
// classes in at first use.
type Graph struct {
	P           Params
	ColShape    grid.Shape // (d-1)-dimensional column space, sides n
	NumCols     int
	cornerShape grid.Shape // (d-1)-dimensional tile-corner lattice, sides ColTiles

	DisableVJump bool
	DisableDJump bool

	// Lazily built, immutable-after-build caches shared by concurrent
	// Monte-Carlo workers.
	chebOnce sync.Once
	cheb     [][]int // the 3^d-1 Chebyshev neighbor deltas of a tile
	tplOnce  sync.Once
	tpl      *template // all-defaults template for the locality fast path
}

// NewGraph builds the host description (adjacency is computed on the fly;
// nothing is materialized).
func NewGraph(p Params) (*Graph, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	cs := grid.Uniform(p.D-1, p.N())
	return &Graph{
		P: p, ColShape: cs, NumCols: cs.Size(),
		cornerShape: grid.Uniform(p.D-1, p.ColTiles()),
	}, nil
}

// NumNodes returns m * n^{d-1}.
func (g *Graph) NumNodes() int { return g.P.M() * g.NumCols }

// NodeShape returns the host node grid [m, n, ..., n]: flat node indices
// are row-major over it (NodeIndex(i, z) = i*numCols + z). Fault
// generators that place spatially structured patterns (adversarial
// bursts, clusters) address the host through this shape.
func (g *Graph) NodeShape() grid.Shape {
	s := make(grid.Shape, g.P.D)
	s[0] = g.P.M()
	copy(s[1:], g.ColShape)
	return s
}

// NodeIndex returns the flat index of node (i, z).
func (g *Graph) NodeIndex(i, z int) int { return i*g.NumCols + z }

// NodeOf splits a flat index into (i, z).
func (g *Graph) NodeOf(idx int) (i, z int) { return idx / g.NumCols, idx % g.NumCols }

// Degree returns the uniform degree (accounting for ablation switches).
func (g *Graph) Degree() int {
	d := g.P.Degree()
	if g.DisableVJump {
		d -= 2
	}
	if g.DisableDJump {
		d -= 4 * (g.P.D - 1)
	}
	return d
}

// Neighbors appends the neighbors of idx to buf and returns it.
func (g *Graph) Neighbors(idx int, buf []int) []int {
	m := g.P.M()
	w := g.P.W
	i, z := g.NodeOf(idx)
	// Dimension-0 torus edges.
	buf = append(buf, g.NodeIndex(grid.Add(i, 1, m), z))
	buf = append(buf, g.NodeIndex(grid.Sub(i, 1, m), z))
	// Vertical jumps.
	if !g.DisableVJump {
		buf = append(buf, g.NodeIndex(grid.Add(i, w+1, m), z))
		buf = append(buf, g.NodeIndex(grid.Sub(i, w+1, m), z))
	}
	// Other-dimension torus edges and diagonal jumps.
	coord := g.ColShape.Coord(z, make([]int, g.P.D-1))
	for dim := range g.ColShape {
		orig := coord[dim]
		for _, delta := range [2]int{1, -1} {
			coord[dim] = grid.Add(orig, delta, g.ColShape[dim])
			zn := g.ColShape.Index(coord)
			buf = append(buf, g.NodeIndex(i, zn))
			if !g.DisableDJump {
				buf = append(buf, g.NodeIndex(grid.Add(i, w, m), zn))
				buf = append(buf, g.NodeIndex(grid.Sub(i, w, m), zn))
			}
		}
		coord[dim] = orig
	}
	return buf
}

// Adjacent reports whether flat indices u and v are connected in B^d_n.
func (g *Graph) Adjacent(u, v int) bool {
	iu, zu := g.NodeOf(u)
	iv, zv := g.NodeOf(v)
	return g.adjacentRC(iu, zu, iv, zv)
}

// adjacentRC is Adjacent on pre-split (row, column) pairs: the
// locality-aware verifier walks columns directly and skips the NodeOf
// divisions that would otherwise dominate its edge checks.
func (g *Graph) adjacentRC(iu, zu, iv, zv int) bool {
	if iu == iv && zu == zv {
		return false
	}
	m := g.P.M()
	w := g.P.W
	di := grid.Dist(iu, iv, m)
	if zu == zv {
		if di == 1 {
			return true // torus edge along dimension 0
		}
		if di == w+1 && !g.DisableVJump {
			return true // vertical jump
		}
		return false
	}
	if !g.columnsAdjacent(zu, zv) {
		return false
	}
	if di == 0 {
		return true // torus edge along another dimension
	}
	if di == w && !g.DisableDJump {
		return true // diagonal jump
	}
	return false
}

// columnsAdjacent reports whether columns za and zb differ by one cyclic
// step in exactly one dimension. It peels coordinate digits in place
// instead of materializing the tuples: the verifier asks this for every
// cross-column guest edge, so the two slice allocations it used to make
// dominated the whole Monte-Carlo trial's allocation count.
func (g *Graph) columnsAdjacent(za, zb int) bool {
	adjacentDims := 0
	for i := len(g.ColShape) - 1; i >= 0; i-- {
		n := g.ColShape[i]
		da, db := za%n, zb%n
		za /= n
		zb /= n
		if da == db {
			continue
		}
		if adjacentDims > 0 || grid.Dist(da, db, n) != 1 {
			return false
		}
		adjacentDims++
	}
	return adjacentDims == 1
}

// EdgeKind classifies a host edge for statistics and ablation reports.
type EdgeKind int

const (
	// EdgeNone means the pair is not adjacent.
	EdgeNone EdgeKind = iota
	// EdgeTorus is an inherited torus edge.
	EdgeTorus
	// EdgeVJump is a vertical jump over a band (+-(b+1) in dimension 0).
	EdgeVJump
	// EdgeDJump is a diagonal jump over a band (+-b into an adjacent column).
	EdgeDJump
)

// Classify returns the edge class of the pair (u, v), ignoring ablation
// switches.
func (g *Graph) Classify(u, v int) EdgeKind {
	iu, zu := g.NodeOf(u)
	iv, zv := g.NodeOf(v)
	di := grid.Dist(iu, iv, g.P.M())
	if zu == zv {
		switch di {
		case 1:
			return EdgeTorus
		case g.P.W + 1:
			return EdgeVJump
		}
		return EdgeNone
	}
	if !g.columnsAdjacent(zu, zv) {
		return EdgeNone
	}
	switch di {
	case 0:
		return EdgeTorus
	case g.P.W:
		return EdgeDJump
	}
	return EdgeNone
}

// TileOf returns the tile coordinates of a node: (slab, colTile...). The
// returned slice has d entries; entry 0 is the slab index i / b^2, the rest
// are the column-tile coordinates z_j / b^2.
func (g *Graph) TileOf(idx int, buf []int) []int {
	if buf == nil {
		buf = make([]int, g.P.D)
	}
	t := g.P.Tile()
	i, z := g.NodeOf(idx)
	buf[0] = i / t
	coord := g.ColShape.Coord(z, make([]int, g.P.D-1))
	for j, c := range coord {
		buf[j+1] = c / t
	}
	return buf
}

// chebyshevDeltas returns the 3^d-1 nonzero {-1,0,1}^d tile deltas, built
// once per graph: box clustering walks them for every faulty tile of every
// Monte-Carlo trial, and regenerating the slice family per trial was one
// of the last steady-state allocations in placement.
func (g *Graph) chebyshevDeltas() [][]int {
	g.chebOnce.Do(func() { g.cheb = genChebyshevDeltas(g.P.D) })
	return g.cheb
}

// TileShape returns the shape of the tile grid: [numSlabs, colTiles, ...].
func (g *Graph) TileShape() grid.Shape {
	s := make(grid.Shape, g.P.D)
	s[0] = g.P.NumSlabs()
	for i := 1; i < g.P.D; i++ {
		s[i] = g.P.ColTiles()
	}
	return s
}
