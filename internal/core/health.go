package core

import (
	"sort"

	"ftnet/internal/fault"
	"ftnet/internal/grid"
)

// Health reports the paper's three healthiness conditions (Lemma 4) for a
// faulty instance of B^d_n. These are diagnostics: the band placer uses its
// own (slightly different, constructive) sufficient conditions, but the
// Monte-Carlo experiments track the paper's definition so that measured
// failure rates can be compared with Lemma 4's bound.
//
// Conditions (paper, Section 3):
//  1. every brick (b^2 x b^3 x ... x b^3 tiled submesh) contains 2b
//     consecutive fault-free rows;
//  2. every brick contains at most eps*b faults;
//  3. every node is enclosed by a fault-free s-frame with s <= b (checked
//     here per tile using concentric frames, as in the proof of Lemma 4).
type Health struct {
	Cond1OK bool // fault-free 2b-row run in every brick
	Cond2OK bool // brick fault counts within eps*b
	Cond3OK bool // every tile enclosed by a fault-free frame

	MaxBrickFaults  int // largest per-brick fault count observed
	BricksNoFreeRun int // bricks violating condition 1
	TilesUnenclosed int // tiles violating condition 3
	Threshold       int // the eps*b bound used for condition 2
}

// Healthy reports whether all three conditions hold.
func (h *Health) Healthy() bool { return h.Cond1OK && h.Cond2OK && h.Cond3OK }

// CheckHealth evaluates Lemma 4's healthiness conditions.
func (g *Graph) CheckHealth(faults *fault.Set) *Health {
	p := g.P
	t := p.Tile()
	w := p.W
	h := &Health{Cond1OK: true, Cond2OK: true, Cond3OK: true}
	// eps * b with eps = W/(Pitch-W); at least 1 so isolated faults are
	// always allowed (the paper's eps*b is >= 1 for its asymptotic b).
	h.Threshold = (w * w) / (p.Pitch - w)
	if h.Threshold < 1 {
		h.Threshold = 1
	}

	// Brick geometry: 1 slab tall, W tiles wide per column dimension
	// (remainder bricks at the boundary are smaller; the conditions only
	// get easier for them).
	colTiles := p.ColTiles()
	bricksPerDim := (colTiles + w - 1) / w
	brickShape := make(grid.Shape, p.D)
	brickShape[0] = p.NumSlabs()
	for i := 1; i < p.D; i++ {
		brickShape[i] = bricksPerDim
	}

	brickFaultRows := make(map[int][]int) // brick -> relative fault rows
	brickCount := make(map[int]int)
	coord := make([]int, p.D-1)
	bcoord := make([]int, p.D)
	faults.ForEach(func(idx int) {
		i, z := g.NodeOf(idx)
		g.ColShape.Coord(z, coord)
		bcoord[0] = i / t
		for j, c := range coord {
			bcoord[j+1] = (c / t) / w
		}
		b := brickShape.Index(bcoord)
		brickCount[b]++
		brickFaultRows[b] = append(brickFaultRows[b], i%t)
	})

	for b, cnt := range brickCount {
		if cnt > h.MaxBrickFaults {
			//lint:allow determinism guarded max-reduction: max commutes, so the final MaxBrickFaults is iteration-order-independent
			h.MaxBrickFaults = cnt
		}
		if cnt > h.Threshold {
			h.Cond2OK = false
		}
		rows := brickFaultRows[b]
		sort.Ints(rows)
		rows = dedupeSorted(rows)
		if !hasFreeRun(rows, t, 2*w) {
			h.Cond1OK = false
			h.BricksNoFreeRun++
		}
	}

	// Condition 3 via concentric tile frames of Chebyshev radius 1..(w-1)/2.
	tileShape := g.TileShape()
	tf := g.tileFaultCounts(faults, tileShape)
	maxRho := (w - 1) / 2
	for dim := range tileShape {
		if lim := (tileShape[dim] - 1) / 2; lim < maxRho {
			maxRho = lim
		}
	}
	numTiles := tileShape.Size()
	tcoord := make([]int, p.D)
	for tile := 0; tile < numTiles; tile++ {
		tileShape.Coord(tile, tcoord)
		enclosed := false
		for rho := 1; rho <= maxRho && !enclosed; rho++ {
			enclosed = g.ringFaultFree(tf, tileShape, tcoord, rho)
		}
		if !enclosed {
			h.Cond3OK = false
			h.TilesUnenclosed++
		}
	}
	return h
}

// tileFaultCounts returns per-tile fault counts over the full tile grid.
func (g *Graph) tileFaultCounts(faults *fault.Set, tileShape grid.Shape) []int32 {
	t := g.P.Tile()
	colTileShape := grid.Shape(tileShape[1:])
	counts := make([]int32, tileShape.Size())
	coord := make([]int, g.P.D-1)
	tcoord := make([]int, g.P.D-1)
	faults.ForEach(func(idx int) {
		i, z := g.NodeOf(idx)
		g.ColShape.Coord(z, coord)
		for j, c := range coord {
			tcoord[j] = c / t
		}
		counts[(i/t)*colTileShape.Size()+colTileShape.Index(tcoord)]++
	})
	return counts
}

// ringFaultFree reports whether every tile at Chebyshev distance exactly
// rho from center is fault-free.
func (g *Graph) ringFaultFree(tf []int32, tileShape grid.Shape, center []int, rho int) bool {
	d := len(tileShape)
	coord := make([]int, d)
	var rec func(dim int, onBoundary bool) bool
	rec = func(dim int, onBoundary bool) bool {
		if dim == d {
			if !onBoundary {
				return true
			}
			return tf[tileShape.Index(coord)] == 0
		}
		for delta := -rho; delta <= rho; delta++ {
			coord[dim] = grid.Add(center[dim], delta, tileShape[dim])
			if !rec(dim+1, onBoundary || delta == -rho || delta == rho) {
				return false
			}
		}
		return true
	}
	return rec(0, false)
}

func dedupeSorted(a []int) []int {
	if len(a) == 0 {
		return a
	}
	out := a[:1]
	for _, v := range a[1:] {
		if v != out[len(out)-1] {
			out = append(out, v)
		}
	}
	return out
}

// hasFreeRun reports whether the sorted distinct fault rows leave a run of
// at least need consecutive fault-free rows within [0, span).
func hasFreeRun(rows []int, span, need int) bool {
	if len(rows) == 0 {
		return span >= need
	}
	prev := -1
	for _, r := range rows {
		if r-prev-1 >= need {
			return true
		}
		prev = r
	}
	return span-prev-1 >= need
}
