// Locality-aware fast path for the Theorem 2 pipeline.
//
// The paper's construction is local by design: bands deviate from their
// default positions only near the black boxes that isolate faults
// (Lemma 5), and the row mapping of Lemma 6 is path-independent
// (Lemma 7), so everything outside a box footprint is provably at its
// default. This file exploits that: each Graph lazily builds, once, a
// *template* — the all-defaults band family, its unmasked-row vector,
// and a pre-verified default embedding — and per-trial work is then
// proportional to the fault footprint, not the host size:
//
//   - interpolateFast seeds a copy-on-write bands.Set from the template
//     and recomputes only the columns whose tile cell has a corner
//     pinned by a fault box (the box footprint ±1 tile), at the slabs
//     the box spans; the Set's dirty-column bitset records exactly the
//     columns that may differ from default.
//   - extractFast runs the Lemma 6 BFS transfer only over the dirty
//     region, seeded from its clean frontier: Lemma 7 guarantees every
//     clean column carries the default row vector, so frontier columns
//     are valid BFS sources and the result is bit-identical to the
//     dense whole-torus BFS (the golden equivalence test pins this).
//   - verifyFast checks injectivity, fault avoidance and edge realization
//     only on columns whose row map actually deviates from the default
//     (plus their cross-column edges and all faulty nodes), relying on
//     the once-verified default embedding for the untouched remainder.
//
// The legacy dense path remains available behind ExtractOptions.Dense
// and is used automatically whenever the fast path does not apply (no
// Scratch, ablated edge classes, column 0 inside a footprint, or a
// footprint covering every column).
package core

import (
	"fmt"
	"sort"

	"ftnet/internal/bands"
	"ftnet/internal/embed"
	"ftnet/internal/fault"
	"ftnet/internal/fterr"
	"ftnet/internal/grid"
	"ftnet/internal/torus"
)

// template is the lazily built all-defaults state of a Graph, shared
// read-only by every Monte-Carlo worker after construction.
type template struct {
	bs *bands.Set // all-default band family (untracked), validated once
	// defaults[j] is the default local bottom offset of band j within a
	// slab, as used by the multilinear interpolation.
	defaults []float64
	// defaultRows lists the n unmasked rows under the default family in
	// the Lemma 6 anchor order; identical for every column.
	defaultRows []int32
	// maskedRow[i] reports whether host row i is masked under defaults.
	maskedRow []bool
	// err is the terminal build failure, if any (e.g. the default
	// embedding does not verify because an edge class is ablated).
	err error
}

// template returns the graph's all-defaults template, building and
// verifying it on first use. The build bakes in the ablation switches,
// so set DisableVJump/DisableDJump before the first pipeline call.
func (g *Graph) template() (*template, error) {
	g.tplOnce.Do(func() { g.tpl = g.buildTemplate() })
	if g.tpl.err != nil {
		return nil, g.tpl.err
	}
	return g.tpl, nil
}

// defaultOffsets returns the default local band bottoms within a slab:
// band j sits at W + j*spread, matching the dense interpolation.
func (p Params) defaultOffsets() []float64 {
	per := p.PerSlab()
	spread := p.W + 1
	if per > 1 {
		spread = (p.Tile() - 2*p.W - 1) / (per - 1)
	}
	out := make([]float64, per)
	for j := range out {
		out[j] = float64(p.W + j*spread)
	}
	return out
}

func (g *Graph) buildTemplate() *template {
	p := g.P
	t := p.Tile()
	per := p.PerSlab()
	numSlabs := p.NumSlabs()
	n := p.N()
	tpl := &template{defaults: p.defaultOffsets()}

	tpl.bs = bands.NewSet(p.M(), p.W, g.ColShape, p.K())
	for slab := 0; slab < numSlabs; slab++ {
		for j := 0; j < per; j++ {
			gIdx := slab*per + j
			v := slab*t + int(tpl.defaults[j])
			for z := 0; z < g.NumCols; z++ {
				tpl.bs.SetValue(gIdx, z, v)
			}
		}
	}
	if err := tpl.bs.Validate(); err != nil {
		tpl.err = fmt.Errorf("core: default band family invalid: %w", err)
		return tpl
	}

	tpl.defaultRows = tpl.bs.UnmaskedRows(0, make([]int32, 0, n))
	if len(tpl.defaultRows) != n {
		tpl.err = fterr.New(fterr.Internal, "core", "default family leaves %d unmasked rows, want %d", len(tpl.defaultRows), n)
		return tpl
	}
	tpl.maskedRow = make([]bool, p.M())
	for i := range tpl.maskedRow {
		tpl.maskedRow[i] = true
	}
	for _, r := range tpl.defaultRows {
		tpl.maskedRow[r] = false
	}

	// Verify the default embedding once, from first principles, against
	// the fault-free host. Every fast-path trial reuses this certificate
	// for the columns its faults do not touch.
	guest, err := torus.NewUniform(torus.TorusKind, p.D, n)
	if err != nil {
		tpl.err = err
		return tpl
	}
	e := embed.New(guest)
	for i := 0; i < n; i++ {
		base := i * g.NumCols
		host := int(tpl.defaultRows[i]) * g.NumCols
		for z := 0; z < g.NumCols; z++ {
			e.Map[base+z] = host + z
		}
	}
	if err := e.Verify(NewHostView(g, fault.NewSet(g.NumNodes()), nil)); err != nil {
		tpl.err = fmt.Errorf("core: default embedding failed verification: %w", err)
	}
	return tpl
}

// fastPath decides whether the locality-aware pipeline applies to this
// (band family, options) pair and returns the template if so. Extract,
// ContainTorus and the verifier all key off the same predicate, so the
// three stages can never disagree on the mode. The fast path needs a
// Scratch (its buffers persist default state across trials), a tracked
// family, and a healthy template. A dirty column 0 is handled inside
// extractFast (the anchor component is walked first), and a fully dirty
// torus degenerates to one anchored BFS over every column — both stay on
// the fast path, so only an explicit Dense request, a missing scratch or
// a failed template build fall back to the dense pipeline.
func (g *Graph) fastPath(bs *bands.Set, opts ExtractOptions) *template {
	if opts.Dense || opts.Scratch == nil || !bs.Tracking() {
		return nil
	}
	tpl, err := g.template()
	if err != nil {
		return nil
	}
	return tpl
}

// interpolateFast is the O(fault-footprint) version of interpolate: it
// memcpy-restores the template into the scratch's copy-on-write band set
// (or the caller-supplied dst, if non-nil) and recomputes only the
// columns inside pinned box footprints ±1 tile, at the slabs each box
// spans. Every other (slab, column) value is the default by Lemmas 9-11
// (no pinned corner in range), so the result is bit-identical to the
// dense evaluation.
//
//ftnet:hotpath
func (g *Graph) interpolateFast(boxes []*faultBox, sc *Scratch, tpl *template, dst *bands.Set) (*bands.Set, error) {
	p := g.P
	d1 := p.D - 1
	numSlabs := p.NumSlabs()
	cornerShape := g.cornerShape

	bs := dst
	if bs == nil {
		bs = sc.bandsBuf(p.M(), p.W, g.ColShape, p.K())
	}
	if err := bs.SeedFrom(tpl.bs); err != nil {
		return nil, err
	}
	pinned, err := g.buildPinned(boxes, sc, cornerShape)
	if err != nil {
		return nil, err
	}
	ev := sc.colEvalBuf(g, tpl.defaults, pinned, cornerShape)

	starts, counts, coord := sc.footprintBufs(d1)
	for _, b := range boxes {
		g.footprintColumns(b, starts, counts, coord,
			//lint:allow hotpath the eval callback is consumed inside footprintColumns and never escapes, so it stays on the stack
			func(z int) {
				ev.setColumn(z)
				for rs := 0; rs < b.ext[0]; rs++ {
					ev.evalSlab(bs, grid.Add(b.lo[0], rs, numSlabs), z)
				}
			})
	}
	return bs, nil
}

// footprintColumns enumerates the columns of b's footprint ±1 tile —
// exactly the columns whose band values the box can influence — calling
// fn for each. starts/counts/coord are caller-owned (d-1)-sized work
// buffers (Scratch.footprintBufs). Both the fast interpolation and the
// delta-evaluation engine's box-copy pass drive this one enumerator, so
// the two agree on the footprint to the column.
//
//ftnet:hotpath
func (g *Graph) footprintColumns(b *faultBox, starts, counts, coord []int, fn func(z int)) {
	p := g.P
	t := p.Tile()
	d1 := p.D - 1
	colTiles := p.ColTiles()
	total := 1
	for dim := 0; dim < d1; dim++ {
		ext := b.ext[dim+1] + 2 // footprint ±1 tile
		if ext > colTiles {
			ext = colTiles
		}
		starts[dim] = grid.Sub(b.lo[dim+1], 1, colTiles) * t
		counts[dim] = ext * t
		total *= counts[dim]
	}
	for it := 0; it < total; it++ {
		rem := it
		for dim := d1 - 1; dim >= 0; dim-- {
			coord[dim] = grid.Add(starts[dim], rem%counts[dim], g.ColShape[dim])
			rem /= counts[dim]
		}
		fn(g.ColShape.Index(coord))
	}
}

// movedBand records a band that slid by one step between two adjacent
// columns, for the footprint-only row transfer.
type movedBand struct {
	bottom int32 // band bottom at the destination column
	up     bool  // band slid up: masked rows jump downward (paper case b)
}

// transferFast grows the Lemma 6 row mapping from column zFrom to zTo
// touching only the bands that actually moved: it first diffs the K band
// bottoms (detecting slope violations outright), memcpys the row vector,
// and applies the ±W jump rule to the rows masked by moved bands. A band
// that slid one step masks exactly one previously unmasked row (the
// untouching gap guarantees the row just beyond the old extent was free),
// and the row vector is cyclically increasing from its first entry, so
// each moved band costs one binary search plus one write instead of a
// whole-vector scan. It also records, in dev, whether the resulting
// vector deviates from base (the vector shared by every clean column) —
// the verifier later skips columns that do not. The dev shortcut in the
// moved case relies on dev[zFrom] being accurate relative to base;
// extractFast's anchor walk, whose flags are settled only afterwards,
// re-derives its flags before they are ever used as sources elsewhere.
//
//ftnet:hotpath
func (g *Graph) transferFast(bs *bands.Set, base []int32, sc *Scratch, zFrom, zTo int, src, dst []int32, dev []bool) error {
	m := g.P.M()
	w := g.P.W
	k := bs.K()
	moved := sc.movedBuf[:0]
	for gi := 0; gi < k; gi++ {
		bf := bs.Value(gi, zFrom)
		bt := bs.Value(gi, zTo)
		switch {
		case bt == bf:
		case bt == grid.Sub(bf, 1, m):
			moved = append(moved, movedBand{bottom: int32(bt), up: false})
		case bt == grid.Add(bf, 1, m):
			moved = append(moved, movedBand{bottom: int32(bt), up: true})
		default:
			return fterr.New(fterr.Internal, "core", "band %d moved more than one step between columns %d and %d (bottoms %d -> %d)",
				gi, zFrom, zTo, bf, bt)
		}
	}
	sc.movedBuf = moved
	copy(dst, src)
	if len(moved) == 0 {
		dev[zTo] = dev[zFrom]
		return nil
	}
	n := len(src)
	anchor := int(src[0])
	for _, mb := range moved {
		// The single src row the moved band now masks: its new bottom for a
		// downward slide, its new top for an upward one.
		v := int(mb.bottom)
		if mb.up {
			v = grid.Add(v, w-1, m)
		}
		key := grid.FwdGap(anchor, v, m)
		//lint:allow hotpath the sort.Search comparator does not escape the call, so it stays on the stack
		i := sort.Search(n, func(j int) bool { return grid.FwdGap(anchor, int(src[j]), m) >= key })
		if i >= n || int(src[i]) != v {
			return fterr.New(fterr.Internal, "core", "moved band at column %d masks no unmasked row of column %d (row %d)",
				zTo, zFrom, v)
		}
		if mb.up {
			dst[i] = int32(grid.Sub(v, w, m))
		} else {
			dst[i] = int32(grid.Add(v, w, m))
		}
	}
	if dev[zFrom] {
		dev[zTo] = !int32Equal(dst, base)
	} else {
		// src == base and at least one row jumped to a different value, so
		// dst deviates without needing the O(n) comparison.
		dev[zTo] = true
	}
	return nil
}

func int32Equal(a, b []int32) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// extractFast realizes Lemma 6 in O(fault footprint): clean columns keep
// (alias) one shared row vector, and the BFS transfer runs only over the
// dirty region, seeded from its clean frontier. Lemma 7 (path
// independence) makes the seeds interchangeable with the dense BFS's
// walk from column 0, so the embedding is bit-identical.
//
// The dense BFS anchors guest row 0 at column 0's band positions. When
// column 0 is dirty, extractFast therefore walks column 0's dirty
// component first, starting from bs.UnmaskedRows(0) exactly like the
// dense path, and learns the clean-region vector when that walk first
// exits to a clean column. Consistency (Lemma 7 on torus cycles) makes
// that vector the same for every clean column. Almost always it equals
// the template's default rows (the anchor bands did not actually move)
// and the trial stays O(footprint); when it is genuinely rotated, the
// trial degrades gracefully to one O(N) map fill — still far cheaper
// than the dense pipeline — and invalidates the scratch's default state.
//
//ftnet:hotpath
func (g *Graph) extractFast(bs *bands.Set, tpl *template, opts ExtractOptions) (*embed.Embedding, error) {
	sc := opts.Scratch
	p := g.P
	n := p.N()
	numCols := g.NumCols

	rowmap, rowflat, dev, e, err := sc.ensureFast(g, tpl)
	if err != nil {
		return nil, err
	}
	sc.rotated = false
	dirty := bs.DirtyColumns()
	for _, z32 := range dirty {
		rowmap[z32] = nil
		dev[z32] = false
	}

	queue := sc.queueBuf(numCols)
	nbuf := sc.nbufBuf()
	ncoord := sc.ncoordBuf(p.D - 1)
	base := tpl.defaultRows
	rotated := false
	if bs.IsDirty(0) {
		// Anchor component first: reproduce the dense anchor at column 0,
		// BFS its dirty component, and capture the clean-region vector on
		// first contact with a clean column.
		anchor := bs.UnmaskedRows(0, rowflat[:0:n])
		if len(anchor) != n {
			return nil, fterr.New(fterr.Internal, "core", "column 0 has %d unmasked rows, want %d", len(anchor), n)
		}
		rowmap[0] = anchor
		queue = append(queue, 0)
		var clean []int32
		scribbled := -1
		for head := 0; head < len(queue); head++ {
			z := queue[head]
			nbuf = g.columnNeighbors(z, nbuf[:0], ncoord)
			for _, zn := range nbuf {
				if !bs.IsDirty(zn) {
					if clean == nil {
						cleanDst := sc.cleanVecBuf(n)
						if err := g.transferFast(bs, base, sc, z, zn, rowmap[z], cleanDst, dev); err != nil {
							return nil, err
						}
						clean = cleanDst
						scribbled = zn // dev[zn] belongs to a clean column
					}
					continue
				}
				if rowmap[zn] != nil {
					continue
				}
				dst := rowflat[zn*n : (zn+1)*n]
				if err := g.transferFast(bs, base, sc, z, zn, rowmap[z], dst, dev); err != nil {
					return nil, err
				}
				rowmap[zn] = dst
				queue = append(queue, zn)
			}
		}
		if clean == nil {
			// Only legitimate when the whole column torus is dirty: the
			// anchored BFS then covered every column, there is no clean
			// region to reconcile with, and base stays the default vector —
			// exactly the dense anchor semantics. Deviation flags against
			// the default base make the verifier re-check every column that
			// actually moved.
			if len(queue) != numCols {
				return nil, fterr.New(fterr.Internal, "core", "anchor component has no clean frontier")
			}
		} else {
			dev[scribbled] = false // clean columns never deviate from base
			if !int32Equal(clean, tpl.defaultRows) {
				// The anchor genuinely rotated: every clean column carries the
				// rotated vector this trial. The certificate argument of
				// verifyFast needs clean to be a cyclic rotation of the
				// default vector (then the host edge pairs of clean columns
				// are exactly the verified default ones); extraction preserves
				// cyclic order, so anything else is an internal error.
				if !isRotation(clean, tpl.defaultRows) {
					return nil, fterr.New(fterr.Internal, "core", "clean-region vector is not a rotation of the default rows")
				}
				base = clean
				rotated = true
				for z := 0; z < numCols; z++ {
					if !bs.IsDirty(z) {
						rowmap[z] = clean
					}
				}
			}
		}
		// Settle the anchor component's deviation flags against the final
		// base vector (they were computed before it was known).
		for _, z := range queue {
			dev[z] = !int32Equal(rowmap[z], base)
		}
	}
	// Seed every remaining dirty column that touches an assigned column
	// (clean, or dirty and already transferred).
	for _, z32 := range dirty {
		z := int(z32)
		if rowmap[z] != nil {
			continue
		}
		nbuf = g.columnNeighbors(z, nbuf[:0], ncoord)
		for _, zn := range nbuf {
			if rowmap[zn] == nil {
				continue
			}
			dst := rowflat[z*n : (z+1)*n]
			if err := g.transferFast(bs, base, sc, zn, z, rowmap[zn], dst, dev); err != nil {
				return nil, err
			}
			rowmap[z] = dst
			queue = append(queue, z)
			break
		}
	}
	// BFS the interior of the dirty region.
	for head := 0; head < len(queue); head++ {
		z := queue[head]
		nbuf = g.columnNeighbors(z, nbuf[:0], ncoord)
		for _, zn := range nbuf {
			if rowmap[zn] != nil || !bs.IsDirty(zn) {
				continue
			}
			dst := rowflat[zn*n : (zn+1)*n]
			if err := g.transferFast(bs, base, sc, z, zn, rowmap[z], dst, dev); err != nil {
				return nil, err
			}
			rowmap[zn] = dst
			queue = append(queue, zn)
		}
	}
	sc.nbuf = nbuf
	if len(queue) != len(dirty) {
		// Unreachable while DirtyCount < NumCols: any strict subregion of
		// the column torus has a clean frontier. Kept as a guard.
		return nil, fterr.New(fterr.Internal, "core", "dirty-column BFS reached %d of %d columns", len(queue), len(dirty))
	}

	if opts.CheckConsistency {
		dst := sc.dstBuf(n)
		//lint:allow hotpath CheckConsistency is a test-only audit branch, never taken on the trial path
		coord := make([]int, p.D-1)
		for z := 0; z < numCols; z++ {
			g.ColShape.Coord(z, coord)
			for dim := range g.ColShape {
				orig := coord[dim]
				coord[dim] = grid.Add(orig, 1, g.ColShape[dim])
				zn := g.ColShape.Index(coord)
				coord[dim] = orig
				if err := g.transferRows(bs, z, zn, rowmap[z], dst); err != nil {
					return nil, err
				}
				for i := range dst {
					if dst[i] != rowmap[zn][i] {
						return nil, fterr.New(fterr.Internal, "core", "Lemma 7 violation: row %d disagrees across columns %d -> %d (%d vs %d)",
							i, z, zn, dst[i], rowmap[zn][i])
					}
				}
			}
		}
	}

	if rotated {
		// Every column's map changed relative to the default template:
		// write them all and drop the scratch's default state. sc.rotated
		// lets the caller re-arm the fast path from this state once the
		// extraction is verified (rearmRotated); standalone trials instead
		// re-seed the defaults on the next ensureFast.
		for z := 0; z < numCols; z++ {
			rows := rowmap[z]
			for i := 0; i < n; i++ {
				e.Map[i*numCols+z] = int(rows[i])*numCols + z
			}
		}
		sc.fastInit = false
		sc.rotated = true
		return e, nil
	}
	// Fill the embedding for deviating columns only; every other column
	// already holds the default map from ensureFast's restore.
	for _, z32 := range dirty {
		z := int(z32)
		if !dev[z] {
			continue
		}
		rows := rowmap[z]
		for i := 0; i < n; i++ {
			e.Map[i*numCols+z] = int(rows[i])*numCols + z
		}
	}
	sc.notePrevDirty(dirty)
	return e, nil
}

// FindAnchorRotatingFault searches for the smallest node index whose
// lone fault makes a cold fast-path extraction genuinely rotate the
// anchor (the dense-cliff scenario: before the re-arm, such a fault
// parked sessions on the dense path forever). Used by regression tests
// and benchmarks that need a deterministic rotating fault; returns -1
// when no single node rotates this host.
func (g *Graph) FindAnchorRotatingFault() int {
	sc := NewScratch(1)
	for u := 0; u < g.NumNodes(); u++ {
		faults := sc.Faults(g.NumNodes())
		faults.Add(u)
		if _, err := g.ContainTorus(faults, ExtractOptions{Scratch: sc}); err != nil {
			continue // unhealthy single-fault state: not the scenario
		}
		if sc.rotated {
			return u
		}
	}
	return -1
}

// isRotation reports whether a is a cyclic rotation of b (both length n).
func isRotation(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	n := len(a)
	if n == 0 {
		return true
	}
	off := -1
	for i, v := range b {
		if v == a[0] {
			off = i
			break
		}
	}
	if off < 0 {
		return false
	}
	for i := range a {
		if a[i] != b[(off+i)%n] {
			return false
		}
	}
	return true
}

// rearmRotated re-seeds the scratch's fast-path state from a verified
// rotated extraction instead of abandoning it. extractFast left every
// column's row vector and embedding entry describing the rotated state;
// what is missing for the fast-path invariant is stable backing (clean
// columns alias the shared clean-vector buffer, which later extractions
// reuse as a probe scratchpad), deviation flags relative to the
// template's default rows (extraction computed them against the rotated
// base), and a restore list covering everything a future cold trial must
// undo. All three are fixed here in one O(N) pass — no more than the
// rotated extraction itself already paid — after which the state
// satisfies the documented invariant with prevDirty = every column, so a
// Session can go warm on the very next commit and incremental Evals diff
// against the rotated state like any other. Without this, one fault
// charged near the anchor column at a cold eval parked the session on
// the dense path (and the daemon's delta ring on 410 resyncs) for the
// rest of its life.
func (g *Graph) rearmRotated(tpl *template, sc *Scratch) {
	n := g.P.N()
	numCols := g.NumCols
	rowflat := sc.rowflat[:numCols*n]
	for z := 0; z < numCols; z++ {
		dst := rowflat[z*n : (z+1)*n]
		src := sc.rowmap[z]
		if &src[0] != &dst[0] {
			copy(dst, src)
			sc.rowmap[z] = dst
		}
		sc.devCols[z] = !int32Equal(dst, tpl.defaultRows)
	}
	sc.prevDirty = sc.prevDirty[:0]
	for z := 0; z < numCols; z++ {
		sc.prevDirty = append(sc.prevDirty, int32(z))
	}
	sc.fastInit = true
	sc.rotated = false
}

// verifyFast is the locality-aware counterpart of embed.Verify: it
// re-checks, from the embedding itself, injectivity, fault avoidance and
// edge realization for every column whose row vector deviates from the
// clean-region base (plus all cross-column edges incident to them), and
// checks every faulty node against the image. Non-deviating columns are
// covered by the template's one-time full verification: their per-column
// image is exactly the default unmasked-row set (the base vector is the
// default vector or a cyclic rotation of it — extractFast enforces that),
// so their host nodes and the host edge pairs between them are precisely
// the ones the certificate already checked. The verifier trusts the
// dirty-set invariant of the placement stage; the golden equivalence test
// cross-checks that trust against the dense verifier.
//
//ftnet:hotpath
func (g *Graph) verifyFast(e *embed.Embedding, bs *bands.Set, faults *fault.Set, tpl *template, sc *Scratch) error {
	dev := sc.devCols
	faultCol, gen, err := g.verifyFaultPass(faults, tpl, sc, dev)
	if err != nil {
		return err
	}
	for _, z32 := range bs.DirtyColumns() {
		z := int(z32)
		if !dev[z] {
			continue
		}
		// Edges between two deviating columns are checked once, from the
		// smaller column index; edges into non-deviating columns are
		// checked from this side.
		if err := g.verifyColumn(e, faults, sc, z, faultCol[z] == gen,
			//lint:allow hotpath the skipPair predicate is consumed inside verifyColumn and never escapes; it stays on the stack
			func(zn int) bool { return dev[zn] && zn < z }); err != nil {
			return err
		}
	}
	return nil
}

// verifyColumn re-checks one column of the embedding: host-row range,
// injectivity, fault avoidance, dimension-0 edge realization, the
// cross-column edges to all 2(d-1) neighbor columns except those for
// which skipPair reports the pair is (or will be) checked from the other
// side — and that the embedding's map agrees with the scratch row
// vectors the checks read from. Reading rows through sc.rowmap instead
// of dividing e.Map entries keeps the hot loops division-free; the
// explicit sync check preserves the certificate's strength (every e.Map
// entry of the column is pinned to the verified row vector). hasFaults
// (from verifyFaultPass) gates the per-row fault check.
//
//ftnet:hotpath
func (g *Graph) verifyColumn(e *embed.Embedding, faults *fault.Set, sc *Scratch, z int, hasFaults bool, skipPair func(zn int) bool) error {
	p := g.P
	n := p.N()
	numCols := g.NumCols
	if len(e.Map) != e.Guest.N() {
		return fterr.New(fterr.Internal, "embed", "map has %d entries, guest has %d nodes", len(e.Map), e.Guest.N())
	}
	m := p.M()
	w := p.W
	colSeen := sc.colSeenBuf(m)
	ncoord := sc.ncoordBuf(p.D - 1)
	rows := sc.rowmap[z]
	if len(rows) != n {
		return fterr.New(fterr.Internal, "core", "column %d row vector has %d entries, want %d", z, len(rows), n)
	}
	sc.colGen++
	gen := sc.colGen
	// One fused pass: membership, sync, injectivity, fault avoidance, and
	// the dimension-0 guest edge to the next row (cyclically) — a torus
	// step or a vertical jump, the same-column conditions of
	// Graph.Adjacent, with m and w hoisted out of the loop.
	for i := 0; i < n; i++ {
		r := int(rows[i])
		if r < 0 || r >= m {
			return fterr.New(fterr.Internal, "embed", "guest node (%d,%d) maps to out-of-range host row %d", i, z, r)
		}
		u := r*numCols + z
		if e.Map[i*numCols+z] != u {
			return fterr.New(fterr.Internal, "core", "embedding out of sync with row vector at guest node (%d,%d)", i, z)
		}
		if colSeen[r] == gen {
			return fterr.New(fterr.Internal, "embed", "host node %d hosts two guest nodes (not injective)", u)
		}
		colSeen[r] = gen
		if hasFaults && faults.Has(u) {
			return fterr.New(fterr.Internal, "embed", "guest node %d maps to faulty host node %d", i*numCols+z, u)
		}
		i2 := i + 1
		if i2 == n {
			i2 = 0
		}
		r2 := int(rows[i2])
		if r2-r == 1 {
			continue // plain torus step, the overwhelmingly common case
		}
		di := grid.Dist(r, r2, m)
		if di == 1 || (di == w+1 && !g.DisableVJump) {
			continue
		}
		return fterr.New(fterr.Internal, "embed", "guest edge (%d,%d)-(%d,%d) maps to non-adjacent host rows %d,%d",
			i, z, i2, z, rows[i], rows[i2])
	}
	// Cross-column edges. Column adjacency is checked once per pair; the
	// per-row condition is then Adjacent's cross-column branch (torus
	// step or diagonal jump).
	g.ColShape.Coord(z, ncoord)
	for dim := range g.ColShape {
		orig := ncoord[dim]
		for _, delta := range [2]int{1, -1} {
			if delta == 1 {
				ncoord[dim] = grid.Add(orig, 1, g.ColShape[dim])
			} else {
				ncoord[dim] = grid.Sub(orig, 1, g.ColShape[dim])
			}
			zn := g.ColShape.Index(ncoord)
			if skipPair(zn) {
				continue
			}
			if !g.columnsAdjacent(z, zn) {
				return fterr.New(fterr.Internal, "core", "columns %d and %d are not adjacent", z, zn)
			}
			nrows := sc.rowmap[zn]
			if len(nrows) != n {
				return fterr.New(fterr.Internal, "core", "column %d row vector has %d entries, want %d", zn, len(nrows), n)
			}
			// Adjacent columns' vectors agree outside the rows a band moved
			// across (at most K of n, by the slope condition), so equality
			// short-circuits the distance check for almost every row.
			for i := 0; i < n; i++ {
				if rows[i] == nrows[i] {
					continue
				}
				if di := grid.Dist(int(rows[i]), int(nrows[i]), m); di == w && !g.DisableDJump {
					continue
				}
				return fterr.New(fterr.Internal, "embed", "guest edge (%d,%d)-(%d,%d) maps to non-adjacent host pair (rows %d,%d)",
					i, z, i, zn, rows[i], nrows[i])
			}
		}
		ncoord[dim] = orig
	}
	return nil
}

// verifyFaultPass makes the verifiers' single pass over the fault set:
// every fault in a non-deviating column must be masked under the default
// family (such a column's image is exactly the default rows), and every
// deviating column holding a fault is marked in the returned
// generation-counted table so verifyColumn checks it row by row — and
// fault-free columns skip that check entirely.
//
//ftnet:hotpath
func (g *Graph) verifyFaultPass(faults *fault.Set, tpl *template, sc *Scratch, dev []bool) ([]int32, int32, error) {
	numCols := g.NumCols
	faultCol, gen := sc.faultColBuf(numCols)
	var outErr error
	//lint:allow hotpath the ForEach visitor is consumed inside the bitset walk and never escapes; one stack closure per pass
	faults.ForEach(func(idx int) {
		if outErr != nil {
			return
		}
		z := idx % numCols
		if dev[z] {
			faultCol[z] = gen
			return
		}
		if !tpl.maskedRow[idx/numCols] {
			outErr = fterr.New(fterr.Internal, "embed", "faulty host node %d lies in the default image of clean column %d", idx, z)
		}
	})
	return faultCol, gen, outErr
}
