// Package core implements the paper's central construction B^d_n
// (Theorem 2): a d-dimensional torus C_m x (C_n)^{d-1} with m = (1+eps)n,
// augmented with vertical jumps (+-(b+1) along dimension 0) and diagonal
// jumps (+-b into adjacent columns), which has degree 6d-2 and still
// contains a fault-free n-torus after random node faults of probability
// log^{-3d} n, with high probability.
//
// The package provides the host graph, the healthiness diagnostics of
// Lemma 4, the constructive band-placement algorithm of Lemma 5
// (fault boxes -> pigeonhole segments -> multilinear interpolation), and
// the extraction mapping psi of Lemmas 6-8 that produces a verified
// embedding of (C_n)^d into the fault-free part.
package core

import (
	"fmt"
	"math"

	"ftnet/internal/fterr"
)

// Params fixes an exactly divisible instantiation of B^d_n.
//
// The paper assumes b^2 divides both n and m and leaves round-off implicit;
// we make every divisibility exact by deriving the sizes from four integers
// (see DESIGN.md section 2.1):
//
//	tile side      = W^2           (paper: b^2, W is the paper's b)
//	bands per slab = W^2 / Pitch   (paper: eps*b per row of tiles)
//	side           n = Scale * W^2 * (Pitch - W)
//	host height    m = Scale * W^2 * Pitch
//	band count     K = (m-n)/W = Scale * W^2
//
// so that each of the m/W^2 slabs (paper: "rows of tiles") carries exactly
// PerSlab bands and every column ends up with exactly n unmasked nodes.
// Eps = W / (Pitch - W); Pitch >= 3W gives the paper's eps <= 1/2.
type Params struct {
	D     int // dimension d >= 2
	W     int // band width b (paper sets b ~ log n)
	Pitch int // average rows per band, S; must divide W^2, >= 2W+2
	Scale int // multiplier kappa >= 1
}

// Validate checks the structural constraints. All other methods assume a
// validated receiver.
func (p Params) Validate() error {
	if p.D < 2 {
		return fterr.New(fterr.Invalid, "core", "dimension %d < 2 (Theorem 2 requires d >= 2)", p.D)
	}
	if p.W < 4 {
		return fterr.New(fterr.Invalid, "core", "band width %d < 4", p.W)
	}
	if p.Pitch < 2*p.W+2 {
		return fterr.New(fterr.Invalid, "core", "pitch %d < 2W+2 = %d (bands would not fit untouching)", p.Pitch, 2*p.W+2)
	}
	if (p.W*p.W)%p.Pitch != 0 {
		return fterr.New(fterr.Invalid, "core", "pitch %d does not divide W^2 = %d", p.Pitch, p.W*p.W)
	}
	if p.Scale < 1 {
		return fterr.New(fterr.Invalid, "core", "scale %d < 1", p.Scale)
	}
	per := p.PerSlab()
	// Default band positions W, W+spread, ... must fit below W^2-W-1 with
	// gaps >= W+1 so that untouching holds across slab boundaries.
	if p.W+(per-1)*(p.W+1) > p.W*p.W-p.W-1 {
		return fterr.New(fterr.Invalid, "core", "%d bands per slab cannot fit in a %d-row slab with width %d", per, p.W*p.W, p.W)
	}
	if p.ColTiles() < 5 {
		return fterr.New(fterr.Invalid, "core", "only %d column tiles per dimension; need >= 5 for fault isolation", p.ColTiles())
	}
	if p.NumSlabs() < 5 {
		return fterr.New(fterr.Invalid, "core", "only %d slabs; need >= 5 for fault isolation", p.NumSlabs())
	}
	return nil
}

// N returns the guest torus side n.
func (p Params) N() int { return p.Scale * p.W * p.W * (p.Pitch - p.W) }

// M returns the host cycle length m of dimension 0.
func (p Params) M() int { return p.Scale * p.W * p.W * p.Pitch }

// K returns the number of bands, (m-n)/b.
func (p Params) K() int { return p.Scale * p.W * p.W }

// Tile returns the tile side b^2.
func (p Params) Tile() int { return p.W * p.W }

// NumSlabs returns m / b^2, the number of rows of tiles.
func (p Params) NumSlabs() int { return p.Scale * p.Pitch }

// PerSlab returns the number of bands carried by each slab.
func (p Params) PerSlab() int { return p.W * p.W / p.Pitch }

// ColTiles returns n / b^2, the tiles per column dimension.
func (p Params) ColTiles() int { return p.Scale * (p.Pitch - p.W) }

// Eps returns the node-redundancy constant eps with m = (1+eps)n.
func (p Params) Eps() float64 { return float64(p.W) / float64(p.Pitch-p.W) }

// NumNodes returns the host node count m * n^{d-1}.
func (p Params) NumNodes() int {
	total := p.M()
	for i := 1; i < p.D; i++ {
		total *= p.N()
	}
	return total
}

// NumColumns returns n^{d-1}.
func (p Params) NumColumns() int {
	total := 1
	for i := 1; i < p.D; i++ {
		total *= p.N()
	}
	return total
}

// Degree returns the uniform host degree 6d-2 (Theorem 2).
func (p Params) Degree() int { return 6*p.D - 2 }

// BoxCap returns the maximum tolerated fault-box extent in tiles per
// dimension. It mirrors the paper's s <= b frame bound: a frame of size
// s <= W has interior at most W-2 tiles wide.
func (p Params) BoxCap() int {
	if p.W-2 < 3 {
		return 3
	}
	return p.W - 2
}

// TheoremFailureProb returns log^{-3d}(n), the node-failure probability
// under which Theorem 2 guarantees survival with probability
// 1 - n^{-Omega(log log n)}. Logarithms are base 2 as in the paper.
func (p Params) TheoremFailureProb() float64 {
	return math.Pow(math.Log2(float64(p.N())), -3*float64(p.D))
}

// String summarizes the instance.
func (p Params) String() string {
	return fmt.Sprintf("B^%d_n{n=%d m=%d b=%d eps=%.3f K=%d perSlab=%d}",
		p.D, p.N(), p.M(), p.W, p.Eps(), p.K(), p.PerSlab())
}

// FitParams chooses parameters for dimension d with side at least minSide
// and redundancy at most maxEps, following the paper's b ~ log2 n. It
// returns an error when no divisor structure fits (which cannot happen for
// maxEps >= 0.1 and minSide >= 64).
func FitParams(d, minSide int, maxEps float64) (Params, error) {
	if minSide < 16 {
		minSide = 16
	}
	if maxEps <= 0 {
		return Params{}, fterr.New(fterr.Invalid, "core", "maxEps must be positive")
	}
	// Policy: the paper wants b ~ log2(n), but a large b forces n up to a
	// multiple of b^2(pitch-b). Among candidate widths, prefer the largest
	// whose side overshoots minSide by at most 3x (approximating b ~ log n
	// without wasting nodes); fall back to the smallest instance overall.
	b0 := int(math.Round(math.Log2(float64(minSide))))
	best, bestPreferred := Params{}, Params{}
	found, foundPreferred := false, false
	for w := 4; w <= b0+4; w++ {
		// Smallest divisor pitch of w^2 with eps = w/(pitch-w) <= maxEps and
		// pitch >= 2w+2.
		minPitch := int(math.Ceil(float64(w) * (1 + 1/maxEps)))
		if minPitch < 2*w+2 {
			minPitch = 2*w + 2
		}
		for pitch := minPitch; pitch <= w*w; pitch++ {
			if (w*w)%pitch != 0 {
				continue
			}
			unit := w * w * (pitch - w)
			scale := (minSide + unit - 1) / unit
			p := Params{D: d, W: w, Pitch: pitch, Scale: scale}
			if p.Validate() != nil {
				continue
			}
			if !found || p.NumNodes() < best.NumNodes() {
				best, found = p, true
			}
			if p.N() <= 3*minSide && (!foundPreferred || p.W > bestPreferred.W) {
				bestPreferred, foundPreferred = p, true
			}
			break // larger pitches only grow the instance
		}
	}
	if foundPreferred {
		return bestPreferred, nil
	}
	if !found {
		return Params{}, fterr.New(fterr.Invalid, "core", "no parameters fit d=%d minSide=%d maxEps=%g", d, minSide, maxEps)
	}
	return best, nil
}
