package core

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"ftnet/internal/bands"
	"ftnet/internal/fault"
	"ftnet/internal/fterr"
	"ftnet/internal/grid"
	"ftnet/internal/multilinear"
)

// UnhealthyError reports that the fault pattern violates the structural
// conditions band placement relies on (the constructive analogue of the
// paper's "healthy" definition). In the random-fault regime of Theorem 2
// this happens with probability n^{-Omega(log log n)}; Monte-Carlo trials
// count it as a survival failure, not a bug.
type UnhealthyError struct {
	Reason string
}

func (e *UnhealthyError) Error() string { return "core: unhealthy fault pattern: " + e.Reason }

// FtCode marks UnhealthyError as fterr.NotTolerated (the fterr.Coder
// interface), so fterr.CodeOf classifies it without the public package
// having to re-wrap — the state must heal before a retry can succeed.
func (e *UnhealthyError) FtCode() fterr.Code { return fterr.NotTolerated }

func unhealthy(format string, args ...any) error {
	return &UnhealthyError{Reason: fmt.Sprintf(format, args...)}
}

// PlaceReport carries diagnostics from a band placement run.
type PlaceReport struct {
	Faults      int // number of faulty nodes
	FaultyTiles int // number of tiles containing faults
	Boxes       int // fault boxes after merging
	MaxBoxTiles int // largest box extent, in tiles
	Segments    int // pigeonhole segments masking faults
	Padded      int // filler segments added to reach PerSlab everywhere
	MergePasses int // outer merge/extend iterations
}

// faultBox is a tile-aligned box isolating a cluster of faults: the
// implementation's version of the paper's black regions (see DESIGN.md,
// refinement 2). lo/ext are tile coordinates and extents per dimension
// (dimension 0 indexes slabs); rows inside the box are addressed relative
// to lo[0]*b^2.
type faultBox struct {
	lo  []int
	ext []int
	// faultRows lists the distinct fault row offsets (relative), sorted.
	faultRows []int
	// segs lists segment bottoms (relative), sorted, after pigeonholing.
	segs []int
	// perSlab[s] lists the PerSlab segment bottoms assigned to relative
	// slab s, sorted, after padding.
	perSlab [][]int
}

// PlaceBands runs the constructive proof of Lemma 5: it isolates faults
// into separated boxes, masks them with straight pigeonhole segments, pads
// each slab of each box to exactly PerSlab segments, and interpolates
// everything else multilinearly (Lemmas 9-11). The returned family always
// passes bands.Set.Validate and masks every fault; if the fault pattern is
// too dense or too clustered it returns an *UnhealthyError instead.
func (g *Graph) PlaceBands(faults *fault.Set) (*bands.Set, *PlaceReport, error) {
	return g.placeBands(faults, ExtractOptions{})
}

// PlaceBandsScratch is PlaceBands with a scratch: sc supplies reusable
// buffers for every placement stage and bounds the dense interpolation's
// worker fan-out (sc.Workers). With a scratch the interpolation runs the
// locality-aware copy-on-write path (see locality.go): the returned
// family is tracked, aliases the scratch, and is valid only until the
// scratch's next use. A nil sc behaves exactly like PlaceBands.
func (g *Graph) PlaceBandsScratch(faults *fault.Set, sc *Scratch) (*bands.Set, *PlaceReport, error) {
	return g.placeBands(faults, ExtractOptions{Scratch: sc})
}

func (g *Graph) placeBands(faults *fault.Set, opts ExtractOptions) (*bands.Set, *PlaceReport, error) {
	return g.placeBandsInto(faults, opts, nil, false)
}

// placeBandsInto is placeBands with an optional explicit destination for
// the interpolated family (dst nil uses the scratch's own set) and, for
// the coupled rate-ladder pipeline, optionally deferred family checks:
// with deferChecks the caller takes over Validate/checkAllMasked, so it
// can restrict validation to the columns that changed since the previous
// rung. dst is only honored on the tracked fast path (it must be a
// copy-on-write set of matching geometry).
func (g *Graph) placeBandsInto(faults *fault.Set, opts ExtractOptions, dst *bands.Set, deferChecks bool) (*bands.Set, *PlaceReport, error) {
	sc := opts.Scratch
	boxes, rep, err := g.buildBoxes(faults, sc)
	if err != nil {
		return nil, rep, err
	}

	var bs *bands.Set
	var tpl *template
	if sc != nil && !opts.Dense {
		// Template build failures (e.g. ablated edge classes) silently
		// fall back to the dense path, which reports them on its own
		// terms.
		tpl, _ = g.template()
	}
	var validate func() error
	if tpl != nil {
		bs, err = g.interpolateFast(boxes, sc, tpl, dst)
		validate = func() error { return bs.ValidateDirty() }
	} else {
		bs, err = g.interpolate(boxes, sc)
		validate = func() error { return bs.Validate() }
	}
	if err != nil {
		return nil, rep, err
	}
	if deferChecks && tpl != nil {
		return bs, rep, nil
	}
	if err := validate(); err != nil {
		return nil, rep, fmt.Errorf("core: placed bands invalid: %w", err)
	}
	if err := g.checkAllMasked(bs, faults); err != nil {
		return nil, rep, err
	}
	return bs, rep, nil
}

// buildBoxes runs the combinatorial half of Lemma 5 — fault-box
// isolation, pigeonhole segments, padding — and returns the finished box
// list ready for interpolation. The boxes are freshly allocated each
// call (the delta-evaluation engine retains the previous Eval's list for
// box-level diffing); only the odometer and bitmap buffers come from sc.
func (g *Graph) buildBoxes(faults *fault.Set, sc *Scratch) ([]*faultBox, *PlaceReport, error) {
	rep := &PlaceReport{Faults: faults.Count()}
	tileShape := g.TileShape()

	faultyTiles := g.faultyTiles(faults, sc)
	rep.FaultyTiles = len(faultyTiles)

	boxes := initialBoxes(faultyTiles, tileShape, g.chebyshevDeltas())
	var err error
	for pass := 0; ; pass++ {
		rep.MergePasses = pass + 1
		if pass > 8 {
			return nil, rep, unhealthy("box merging did not converge after %d passes", pass)
		}
		boxes, err = mergeBoxes(boxes, tileShape)
		if err != nil {
			return nil, rep, err
		}
		if err := g.checkBoxCaps(boxes, tileShape); err != nil {
			return nil, rep, err
		}
		if err := g.assignFaultRows(boxes, faults, tileShape); err != nil {
			return nil, rep, err
		}
		extended := false
		for _, b := range boxes {
			if err := g.pigeonholeSegments(b, sc); err != nil {
				return nil, rep, err
			}
			if len(b.segs) > 0 && b.segs[0] < 0 {
				// A segment dipped below the box: grow the box one slab down
				// and redo the merge in case it now touches a neighbor.
				b.lo[0] = grid.Sub(b.lo[0], 1, tileShape[0])
				b.ext[0]++
				extended = true
			}
		}
		if !extended {
			break
		}
	}

	rep.Boxes = len(boxes)
	for _, b := range boxes {
		rep.Segments += len(b.segs)
		for _, e := range b.ext {
			if e > rep.MaxBoxTiles {
				rep.MaxBoxTiles = e
			}
		}
	}

	for _, b := range boxes {
		padded, err := g.padBox(b, sc)
		if err != nil {
			return nil, rep, err
		}
		rep.Padded += padded
	}
	return boxes, rep, nil
}

// faultyTiles returns the flat tile indices containing at least one fault.
func (g *Graph) faultyTiles(faults *fault.Set, sc *Scratch) []int {
	t := g.P.Tile()
	tileShape := g.TileShape()
	colTileShape := grid.Shape(tileShape[1:])
	seen := sc.tileSeenBuf(tileShape.Size())
	out := sc.tileListBuf()
	coord := make([]int, g.P.D-1)
	tcoord := make([]int, g.P.D-1)
	faults.ForEach(func(idx int) {
		i, z := g.NodeOf(idx)
		g.ColShape.Coord(z, coord)
		for j, c := range coord {
			tcoord[j] = c / t
		}
		flat := (i/t)*colTileShape.Size() + colTileShape.Index(tcoord)
		if !seen[flat] {
			seen[flat] = true
			out = append(out, flat)
		}
	})
	// Restore the bitmap's all-false invariant in O(faulty tiles).
	for _, flat := range out {
		seen[flat] = false
	}
	if sc != nil {
		sc.tileList = out
	}
	sort.Ints(out)
	return out
}

// initialBoxes groups faulty tiles into Chebyshev-connected components and
// returns each component's minimal cyclic bounding box. deltas is the
// 3^d-1 neighbor-offset table (Graph.chebyshevDeltas).
func initialBoxes(faultyTiles []int, tileShape grid.Shape, deltas [][]int) []*faultBox {
	if len(faultyTiles) == 0 {
		return nil
	}
	index := make(map[int]int, len(faultyTiles))
	for i, t := range faultyTiles {
		index[t] = i
	}
	parent := make([]int, len(faultyTiles))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[ra] = rb
		}
	}
	d := len(tileShape)
	coord := make([]int, d)
	ncoord := make([]int, d)
	// Enumerate the 3^d-1 Chebyshev neighbors of each faulty tile.
	for i, t := range faultyTiles {
		tileShape.Coord(t, coord)
		for _, delta := range deltas {
			for j := range coord {
				ncoord[j] = grid.Add(coord[j], delta[j], tileShape[j])
			}
			if ni, ok := index[tileShape.Index(ncoord)]; ok {
				union(i, ni)
			}
		}
	}
	groups := make(map[int][]int)
	for i, t := range faultyTiles {
		r := find(i)
		groups[r] = append(groups[r], t)
	}
	var boxes []*faultBox
	// Deterministic order: iterate roots by their first member.
	roots := make([]int, 0, len(groups))
	for r := range groups {
		roots = append(roots, r)
	}
	sort.Slice(roots, func(a, b int) bool { return groups[roots[a]][0] < groups[roots[b]][0] })
	for _, r := range roots {
		members := groups[r]
		b := &faultBox{lo: make([]int, d), ext: make([]int, d)}
		coords := make([]int, len(members))
		buf := make([]int, d)
		for dim := 0; dim < d; dim++ {
			for i, m := range members {
				tileShape.Coord(m, buf)
				coords[i] = buf[dim]
			}
			b.lo[dim], b.ext[dim] = grid.CyclicCover(coords, tileShape[dim])
		}
		boxes = append(boxes, b)
	}
	return boxes
}

func genChebyshevDeltas(d int) [][]int {
	var out [][]int
	delta := make([]int, d)
	var rec func(int)
	rec = func(i int) {
		if i == d {
			for _, v := range delta {
				if v != 0 {
					c := make([]int, d)
					copy(c, delta)
					out = append(out, c)
					return
				}
			}
			return
		}
		for _, v := range [3]int{-1, 0, 1} {
			delta[i] = v
			rec(i + 1)
		}
	}
	rec(0)
	return out
}

// mergeBoxes repeatedly merges any two boxes whose 1-tile expansions
// intersect, guaranteeing that distinct boxes end up separated by at least
// one fault-free white tile in some dimension — and, because expansion is
// applied in every dimension, even diagonally. This realizes the corner
// separation the paper derives from the painting procedure ("two hypercubes
// share a point only within one black region").
func mergeBoxes(boxes []*faultBox, tileShape grid.Shape) ([]*faultBox, error) {
	changed := true
	for changed {
		changed = false
		for i := 0; i < len(boxes) && !changed; i++ {
			for j := i + 1; j < len(boxes); j++ {
				if !boxesNear(boxes[i], boxes[j], tileShape) {
					continue
				}
				for dim := range tileShape {
					lo, e := grid.IntervalCover(
						boxes[i].lo[dim], boxes[i].ext[dim],
						boxes[j].lo[dim], boxes[j].ext[dim], tileShape[dim])
					boxes[i].lo[dim], boxes[i].ext[dim] = lo, e
				}
				boxes = append(boxes[:j], boxes[j+1:]...)
				changed = true
				break
			}
		}
	}
	return boxes, nil
}

// boxesNear reports whether boxes a and b, each expanded by one tile on
// every side, intersect (i.e. the boxes are Chebyshev-adjacent or closer).
func boxesNear(a, b *faultBox, tileShape grid.Shape) bool {
	for dim := range tileShape {
		if !grid.IntervalsIntersect(
			grid.Sub(a.lo[dim], 1, tileShape[dim]), a.ext[dim]+2,
			b.lo[dim], b.ext[dim], tileShape[dim]) {
			return false
		}
	}
	return true
}

func (g *Graph) checkBoxCaps(boxes []*faultBox, tileShape grid.Shape) error {
	cap := g.P.BoxCap()
	for _, b := range boxes {
		for dim, e := range b.ext {
			limit := cap
			if tileShape[dim]-2 < limit {
				limit = tileShape[dim] - 2
			}
			if e > limit {
				return unhealthy("fault box spans %d tiles in dimension %d (limit %d; paper condition 3 fails)", e, dim, limit)
			}
		}
	}
	return nil
}

// assignFaultRows recomputes, for every box, the sorted distinct relative
// rows containing faults. Every fault must land inside exactly one box.
func (g *Graph) assignFaultRows(boxes []*faultBox, faults *fault.Set, tileShape grid.Shape) error {
	t := g.P.Tile()
	m := g.P.M()
	for _, b := range boxes {
		b.faultRows = b.faultRows[:0]
		b.segs = nil
		b.perSlab = nil
	}
	coord := make([]int, g.P.D-1)
	var outErr error
	faults.ForEach(func(idx int) {
		if outErr != nil {
			return
		}
		i, z := g.NodeOf(idx)
		g.ColShape.Coord(z, coord)
		owner := (*faultBox)(nil)
		for _, b := range boxes {
			if !grid.InCyclicInterval(i/t, b.lo[0], b.ext[0], tileShape[0]) {
				continue
			}
			inside := true
			for dim := 1; dim < g.P.D; dim++ {
				if !grid.InCyclicInterval(coord[dim-1]/t, b.lo[dim], b.ext[dim], tileShape[dim]) {
					inside = false
					break
				}
			}
			if inside {
				owner = b
				break
			}
		}
		if owner == nil {
			outErr = fterr.New(fterr.Internal, "core", "fault %d not covered by any box", idx)
			return
		}
		rel := grid.FwdGap(owner.lo[0]*t, i, m)
		owner.faultRows = append(owner.faultRows, rel)
	})
	if outErr != nil {
		return outErr
	}
	for _, b := range boxes {
		sort.Ints(b.faultRows)
		b.faultRows = dedupe(b.faultRows)
	}
	return nil
}

func dedupe(a []int) []int {
	if len(a) == 0 {
		return a
	}
	out := a[:1]
	for _, v := range a[1:] {
		if v != out[len(out)-1] {
			out = append(out, v)
		}
	}
	return out
}

// pigeonholeSegments implements the block argument of Lemma 5: split the
// box's fault rows into blocks separated by >= 2b fault-free rows, find in
// each block a cyclic residue class mod (b+1) free of faults, and lay
// straight width-b segments in the slots between class rows so that every
// fault is masked and consecutive segments keep one unmasked row between
// them.
func (g *Graph) pigeonholeSegments(b *faultBox, sc *Scratch) error {
	w := g.P.W
	rows := b.faultRows
	b.segs = b.segs[:0]
	for start := 0; start < len(rows); {
		end := start
		for end+1 < len(rows) && rows[end+1]-rows[end] < 2*w {
			end++
		}
		blockStart := rows[start]
		// Find a fault-free residue class mod (w+1) within the block.
		used := sc.usedBuf(w + 1)
		for i := start; i <= end; i++ {
			used[(rows[i]-blockStart)%(w+1)] = true
		}
		class := -1
		for c, u := range used {
			if !u {
				class = c
				break
			}
		}
		if class < 0 {
			return unhealthy("block with %d fault rows has no fault-free residue class mod %d (paper condition 1/2 fails)",
				end-start+1, w+1)
		}
		anchor := blockStart + class + 1
		lastSlot := -1 << 62
		for i := start; i <= end; i++ {
			slot := grid.FloorDiv(rows[i]-anchor, w+1)
			if slot != lastSlot {
				b.segs = append(b.segs, anchor+slot*(w+1))
				lastSlot = slot
			}
		}
		start = end + 1
	}
	sort.Ints(b.segs)
	// Internal invariants: segments untouching, every fault covered.
	for i := 1; i < len(b.segs); i++ {
		if b.segs[i]-b.segs[i-1] < w+1 {
			return fterr.New(fterr.Internal, "core", "segments %d and %d touch", b.segs[i-1], b.segs[i])
		}
	}
	for _, r := range rows {
		i := sort.SearchInts(b.segs, r+1) - 1
		if i < 0 || r-b.segs[i] >= w {
			return fterr.New(fterr.Internal, "core", "fault row %d unmasked by segments", r)
		}
	}
	return nil
}

// padBox tops every slab the box spans up to exactly PerSlab segments,
// keeping the whole segment family untouching. Returns the number of
// filler segments added.
//
// The working list `all` stays sorted throughout: each filler candidate
// is advanced past its conflicts with one binary search plus a forward
// walk over the (few) conflicting neighbors, then spliced in at its
// insertion point — replacing the previous quadratic rescan-and-resort
// per filler (see BenchmarkPadBox).
func (g *Graph) padBox(b *faultBox, sc *Scratch) (int, error) {
	t := g.P.Tile()
	w := g.P.W
	per := g.P.PerSlab()
	slabs := b.ext[0]
	counts := make([]int, slabs)
	for _, s := range b.segs {
		if s < 0 || s >= slabs*t {
			return 0, fterr.New(fterr.Internal, "core", "segment %d outside box rows [0,%d)", s, slabs*t)
		}
		rs := s / t
		counts[rs]++
		if counts[rs] > per {
			return 0, unhealthy("slab needs %d segments but capacity is %d (paper condition 2 fails)", counts[rs], per)
		}
	}
	added := 0
	var all []int
	if sc != nil {
		all = sc.segMerge[:0]
	}
	all = append(all, b.segs...) // b.segs is sorted (pigeonholeSegments)
	for rs := 0; rs < slabs; rs++ {
		need := per - counts[rs]
		pos := rs * t
		for need > 0 {
			// Advance pos past every segment s with |pos-s| <= w. The
			// list is sorted, so conflicts form a contiguous run starting
			// at the first segment >= pos-w; each hop lands pos just
			// clear of one conflict and the run can only move forward.
			idx := sort.SearchInts(all, pos-w)
			for idx < len(all) && all[idx] <= pos+w {
				pos = all[idx] + w + 1
				idx++
			}
			if pos >= (rs+1)*t {
				return added, unhealthy("cannot pad slab to %d segments", per)
			}
			// Splice pos in at idx, keeping the list sorted.
			all = append(all, 0)
			copy(all[idx+1:], all[idx:])
			all[idx] = pos
			added++
			need--
			pos += w + 1
		}
	}
	b.segs = append(b.segs[:0], all...)
	if sc != nil {
		sc.segMerge = all
	}
	b.perSlab = make([][]int, slabs)
	for _, s := range b.segs {
		rs := s / t
		b.perSlab[rs] = append(b.perSlab[rs], s)
	}
	for rs, list := range b.perSlab {
		if len(list) != per {
			return added, fterr.New(fterr.Internal, "core", "slab %d has %d segments, want %d", rs, len(list), per)
		}
	}
	return added, nil
}

// buildPinned fills the dense pinned-corner table: entry
// slab*numCorners+corner holds the per local segment positions a box pins
// at that (slab, tile-corner), nil everywhere else. The table and its
// occupied-key list live in the scratch so steady-state trials allocate
// nothing.
func (g *Graph) buildPinned(boxes []*faultBox, sc *Scratch, cornerShape grid.Shape) ([][]float64, error) {
	p := g.P
	t := p.Tile()
	per := p.PerSlab()
	numSlabs := p.NumSlabs()
	colTiles := p.ColTiles()
	d1 := p.D - 1
	numCorners := cornerShape.Size()

	pinned, keys := sc.pinnedBuf(numSlabs * numCorners)
	cornerCoord := sc.cornerCoordBuf(d1)
	for _, b := range boxes {
		for rs := 0; rs < b.ext[0]; rs++ {
			slab := grid.Add(b.lo[0], rs, numSlabs)
			locals := sc.localsSlice(per)
			for j, s := range b.perSlab[rs] {
				locals[j] = float64(s - rs*t)
			}
			// Pin every corner of the box footprint (ext+1 lattice points
			// per dimension, cyclically).
			total := 1
			for dim := 0; dim < d1; dim++ {
				total *= b.ext[dim+1] + 1
			}
			for it := 0; it < total; it++ {
				rem := it
				for dim := d1 - 1; dim >= 0; dim-- {
					span := b.ext[dim+1] + 1
					cornerCoord[dim] = grid.Add(b.lo[dim+1], rem%span, colTiles)
					rem /= span
				}
				key := slab*numCorners + cornerShape.Index(cornerCoord)
				if pinned[key] != nil {
					sc.setPinnedKeys(keys)
					return nil, unhealthy("two fault boxes pin the same tile corner (separation failed)")
				}
				pinned[key] = locals
				keys = append(keys, key)
			}
		}
	}
	sc.setPinnedKeys(keys)
	return pinned, nil
}

// colEval evaluates the band bottoms of one (slab, column) pair at a
// time: corner lookups in the pinned table, multilinear blending between
// pinned and default corners (Lemmas 9-11), monotone half-up rounding.
// Both the dense sharded loop and the locality fast path drive the same
// evaluator, so the two paths share every rounding-sensitive instruction
// and stay bit-identical.
type colEval struct {
	t, d1, nc, per, numCorners, colTiles int
	colShape                             grid.Shape
	cornerShape                          grid.Shape
	defaults                             []float64
	pinned                               [][]float64
	colCoord, tileCoord, cornerCoord     []int
	x                                    []float64
	cornerKeys                           []int
	cornerVals, scratch                  []float64
	pins                                 [][]float64
}

func newColEval(g *Graph, defaults []float64, pinned [][]float64, cornerShape grid.Shape) *colEval {
	d1 := g.P.D - 1
	nc := 1 << uint(d1)
	return &colEval{
		t: g.P.Tile(), d1: d1, nc: nc, per: g.P.PerSlab(),
		numCorners: cornerShape.Size(), colTiles: g.P.ColTiles(),
		colShape: g.ColShape, cornerShape: cornerShape,
		defaults: defaults, pinned: pinned,
		colCoord: make([]int, d1), tileCoord: make([]int, d1), cornerCoord: make([]int, d1),
		x:          make([]float64, d1),
		cornerKeys: make([]int, nc), cornerVals: make([]float64, nc),
		scratch: make([]float64, nc), pins: make([][]float64, nc),
	}
}

// setColumn computes the column's tile cell, interpolation point and
// corner keys; evalSlab can then be called for any slab.
//
//ftnet:hotpath
func (e *colEval) setColumn(z int) {
	e.colShape.Coord(z, e.colCoord)
	for dim := 0; dim < e.d1; dim++ {
		e.tileCoord[dim] = e.colCoord[dim] / e.t
		e.x[dim] = (float64(e.colCoord[dim]%e.t) + 0.5) / float64(e.t)
	}
	for s := 0; s < e.nc; s++ {
		for dim := 0; dim < e.d1; dim++ {
			if s&(1<<uint(dim)) != 0 {
				e.cornerCoord[dim] = grid.Add(e.tileCoord[dim], 1, e.colTiles)
			} else {
				e.cornerCoord[dim] = e.tileCoord[dim]
			}
		}
		e.cornerKeys[s] = e.cornerShape.Index(e.cornerCoord)
	}
}

// evalSlab writes the per band bottoms of (slab, current column).
//
//ftnet:hotpath
func (e *colEval) evalSlab(bs *bands.Set, slab, z int) {
	base := slab * e.t
	anyPinned := false
	for s := 0; s < e.nc; s++ {
		e.pins[s] = nil
		if arr := e.pinned[slab*e.numCorners+e.cornerKeys[s]]; arr != nil {
			e.pins[s] = arr
			anyPinned = true
		}
	}
	for j := 0; j < e.per; j++ {
		gIdx := slab*e.per + j
		if !anyPinned {
			bs.SetValue(gIdx, z, base+int(e.defaults[j]))
			continue
		}
		for s := 0; s < e.nc; s++ {
			if e.pins[s] != nil {
				e.cornerVals[s] = e.pins[s][j]
			} else {
				e.cornerVals[s] = e.defaults[j]
			}
		}
		var v float64
		if multilinear.Constant(e.cornerVals) {
			v = e.cornerVals[0]
		} else {
			v = multilinear.Eval(e.cornerVals, e.x, e.scratch)
		}
		bs.SetValue(gIdx, z, base+multilinear.RoundHalfUp(v))
	}
}

// interpolate builds the full band family densely: pinned constants over
// box footprints, defaults elsewhere, multilinear blending in between
// (Lemmas 9-11), rounded with the monotone half-up rule, evaluated for
// every (slab, column) of the host. A non-nil sc with sc.Workers > 0
// bounds the column-sharding fan-out. The locality-aware alternative is
// interpolateFast (locality.go).
func (g *Graph) interpolate(boxes []*faultBox, sc *Scratch) (*bands.Set, error) {
	p := g.P
	numSlabs := p.NumSlabs()
	cornerShape := g.cornerShape

	defaults := p.defaultOffsets()
	pinned, err := g.buildPinned(boxes, sc, cornerShape)
	if err != nil {
		return nil, err
	}

	bs := bands.NewSet(p.M(), p.W, g.ColShape, p.K())
	// Columns are independent, so shard the evaluation across workers.
	// Each column writes disjoint band entries; results are deterministic
	// because every value is a pure function of (band, column).
	workers := runtime.GOMAXPROCS(0)
	if sc != nil && sc.Workers > 0 {
		workers = sc.Workers
	}
	if workers > g.NumCols {
		workers = g.NumCols
	}
	if len(boxes) == 0 || workers < 2 {
		workers = 1
	}
	var wg sync.WaitGroup
	for wk := 0; wk < workers; wk++ {
		lo := wk * g.NumCols / workers
		hi := (wk + 1) * g.NumCols / workers
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			ev := newColEval(g, defaults, pinned, cornerShape)
			for z := lo; z < hi; z++ {
				ev.setColumn(z)
				for slab := 0; slab < numSlabs; slab++ {
					ev.evalSlab(bs, slab, z)
				}
			}
		}(lo, hi)
	}
	wg.Wait()
	return bs, nil
}

// Tolerates decides whether the pipeline classifies the fault set as
// tolerated, running only the placement stages that can make that call:
// box isolation/merging (condition 3 caps), pigeonhole segments and
// padding (conditions 1-2), and corner separation. It returns nil for a
// tolerated set, an *UnhealthyError for a rejected one, and never
// builds bands, extracts or verifies — those stages fail only on
// bug-class invariant violations, so this cheap decision is exactly the
// full pipeline's health classification (the batched churn goldens pin
// the equivalence event by event). sc supplies placement buffers; nil
// allocates fresh ones.
//
// The classification is NOT monotone in the fault set: condition 2 can
// reject a set and accept a superset, because an added fault can merge
// two boxes that each needed their own segment in a shared slab into
// one box that needs a single segment (TestToleratesNotMonotone pins a
// three/four-fault counterexample). Callers must not infer a subset's
// status from a superset's, or vice versa.
func (g *Graph) Tolerates(faults *fault.Set, sc *Scratch) error {
	if sc == nil {
		sc = NewScratch(1)
	}
	boxes, _, err := g.buildBoxes(faults, sc)
	if err != nil {
		return err
	}
	_, err = g.buildPinned(boxes, sc, grid.Uniform(g.P.D-1, g.P.ColTiles()))
	return err
}

// checkAllMasked verifies that every fault is masked by some band.
func (g *Graph) checkAllMasked(bs *bands.Set, faults *fault.Set) error {
	var outErr error
	faults.ForEach(func(idx int) {
		if outErr != nil {
			return
		}
		i, z := g.NodeOf(idx)
		if bs.MaskedBy(z, i) < 0 {
			outErr = fterr.New(fterr.Internal, "core", "fault at row %d column %d left unmasked", i, z)
		}
	})
	return outErr
}
