package core

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"ftnet/internal/bands"
	"ftnet/internal/fault"
	"ftnet/internal/grid"
	"ftnet/internal/multilinear"
)

// UnhealthyError reports that the fault pattern violates the structural
// conditions band placement relies on (the constructive analogue of the
// paper's "healthy" definition). In the random-fault regime of Theorem 2
// this happens with probability n^{-Omega(log log n)}; Monte-Carlo trials
// count it as a survival failure, not a bug.
type UnhealthyError struct {
	Reason string
}

func (e *UnhealthyError) Error() string { return "core: unhealthy fault pattern: " + e.Reason }

func unhealthy(format string, args ...any) error {
	return &UnhealthyError{Reason: fmt.Sprintf(format, args...)}
}

// PlaceReport carries diagnostics from a band placement run.
type PlaceReport struct {
	Faults      int // number of faulty nodes
	FaultyTiles int // number of tiles containing faults
	Boxes       int // fault boxes after merging
	MaxBoxTiles int // largest box extent, in tiles
	Segments    int // pigeonhole segments masking faults
	Padded      int // filler segments added to reach PerSlab everywhere
	MergePasses int // outer merge/extend iterations
}

// faultBox is a tile-aligned box isolating a cluster of faults: the
// implementation's version of the paper's black regions (see DESIGN.md,
// refinement 2). lo/ext are tile coordinates and extents per dimension
// (dimension 0 indexes slabs); rows inside the box are addressed relative
// to lo[0]*b^2.
type faultBox struct {
	lo  []int
	ext []int
	// faultRows lists the distinct fault row offsets (relative), sorted.
	faultRows []int
	// segs lists segment bottoms (relative), sorted, after pigeonholing.
	segs []int
	// perSlab[s] lists the PerSlab segment bottoms assigned to relative
	// slab s, sorted, after padding.
	perSlab [][]int
}

// PlaceBands runs the constructive proof of Lemma 5: it isolates faults
// into separated boxes, masks them with straight pigeonhole segments, pads
// each slab of each box to exactly PerSlab segments, and interpolates
// everything else multilinearly (Lemmas 9-11). The returned family always
// passes bands.Set.Validate and masks every fault; if the fault pattern is
// too dense or too clustered it returns an *UnhealthyError instead.
func (g *Graph) PlaceBands(faults *fault.Set) (*bands.Set, *PlaceReport, error) {
	return g.PlaceBandsScratch(faults, nil)
}

// PlaceBandsScratch is PlaceBands with a scratch: sc bounds the
// interpolation stage's worker fan-out (sc.Workers), which Monte-Carlo
// trial workers pin to 1 so the trial-level pool owns all parallelism.
// A nil sc behaves exactly like PlaceBands.
func (g *Graph) PlaceBandsScratch(faults *fault.Set, sc *Scratch) (*bands.Set, *PlaceReport, error) {
	rep := &PlaceReport{Faults: faults.Count()}
	tileShape := g.TileShape()

	faultyTiles := g.faultyTiles(faults)
	rep.FaultyTiles = len(faultyTiles)

	boxes := initialBoxes(faultyTiles, tileShape)
	var err error
	for pass := 0; ; pass++ {
		rep.MergePasses = pass + 1
		if pass > 8 {
			return nil, rep, unhealthy("box merging did not converge after %d passes", pass)
		}
		boxes, err = mergeBoxes(boxes, tileShape)
		if err != nil {
			return nil, rep, err
		}
		if err := g.checkBoxCaps(boxes, tileShape); err != nil {
			return nil, rep, err
		}
		if err := g.assignFaultRows(boxes, faults, tileShape); err != nil {
			return nil, rep, err
		}
		extended := false
		for _, b := range boxes {
			if err := g.pigeonholeSegments(b); err != nil {
				return nil, rep, err
			}
			if len(b.segs) > 0 && b.segs[0] < 0 {
				// A segment dipped below the box: grow the box one slab down
				// and redo the merge in case it now touches a neighbor.
				b.lo[0] = grid.Sub(b.lo[0], 1, tileShape[0])
				b.ext[0]++
				extended = true
			}
		}
		if !extended {
			break
		}
	}

	rep.Boxes = len(boxes)
	for _, b := range boxes {
		rep.Segments += len(b.segs)
		for _, e := range b.ext {
			if e > rep.MaxBoxTiles {
				rep.MaxBoxTiles = e
			}
		}
	}

	for _, b := range boxes {
		padded, err := g.padBox(b)
		if err != nil {
			return nil, rep, err
		}
		rep.Padded += padded
	}

	bs, err := g.interpolate(boxes, sc)
	if err != nil {
		return nil, rep, err
	}
	if err := bs.Validate(); err != nil {
		return nil, rep, fmt.Errorf("core: placed bands invalid: %w", err)
	}
	if err := g.checkAllMasked(bs, faults); err != nil {
		return nil, rep, err
	}
	return bs, rep, nil
}

// faultyTiles returns the flat tile indices containing at least one fault.
func (g *Graph) faultyTiles(faults *fault.Set) []int {
	t := g.P.Tile()
	tileShape := g.TileShape()
	colTileShape := grid.Shape(tileShape[1:])
	seen := make(map[int]struct{})
	var out []int
	coord := make([]int, g.P.D-1)
	tcoord := make([]int, g.P.D-1)
	faults.ForEach(func(idx int) {
		i, z := g.NodeOf(idx)
		g.ColShape.Coord(z, coord)
		for j, c := range coord {
			tcoord[j] = c / t
		}
		flat := (i/t)*colTileShape.Size() + colTileShape.Index(tcoord)
		if _, ok := seen[flat]; !ok {
			seen[flat] = struct{}{}
			out = append(out, flat)
		}
	})
	sort.Ints(out)
	return out
}

// initialBoxes groups faulty tiles into Chebyshev-connected components and
// returns each component's minimal cyclic bounding box.
func initialBoxes(faultyTiles []int, tileShape grid.Shape) []*faultBox {
	if len(faultyTiles) == 0 {
		return nil
	}
	index := make(map[int]int, len(faultyTiles))
	for i, t := range faultyTiles {
		index[t] = i
	}
	parent := make([]int, len(faultyTiles))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[ra] = rb
		}
	}
	d := len(tileShape)
	coord := make([]int, d)
	ncoord := make([]int, d)
	// Enumerate the 3^d-1 Chebyshev neighbors of each faulty tile.
	deltas := chebyshevDeltas(d)
	for i, t := range faultyTiles {
		tileShape.Coord(t, coord)
		for _, delta := range deltas {
			for j := range coord {
				ncoord[j] = grid.Add(coord[j], delta[j], tileShape[j])
			}
			if ni, ok := index[tileShape.Index(ncoord)]; ok {
				union(i, ni)
			}
		}
	}
	groups := make(map[int][]int)
	for i, t := range faultyTiles {
		r := find(i)
		groups[r] = append(groups[r], t)
	}
	var boxes []*faultBox
	// Deterministic order: iterate roots by their first member.
	roots := make([]int, 0, len(groups))
	for r := range groups {
		roots = append(roots, r)
	}
	sort.Slice(roots, func(a, b int) bool { return groups[roots[a]][0] < groups[roots[b]][0] })
	for _, r := range roots {
		members := groups[r]
		b := &faultBox{lo: make([]int, d), ext: make([]int, d)}
		coords := make([]int, len(members))
		buf := make([]int, d)
		for dim := 0; dim < d; dim++ {
			for i, m := range members {
				tileShape.Coord(m, buf)
				coords[i] = buf[dim]
			}
			b.lo[dim], b.ext[dim] = grid.CyclicCover(coords, tileShape[dim])
		}
		boxes = append(boxes, b)
	}
	return boxes
}

func chebyshevDeltas(d int) [][]int {
	var out [][]int
	delta := make([]int, d)
	var rec func(int)
	rec = func(i int) {
		if i == d {
			for _, v := range delta {
				if v != 0 {
					c := make([]int, d)
					copy(c, delta)
					out = append(out, c)
					return
				}
			}
			return
		}
		for _, v := range [3]int{-1, 0, 1} {
			delta[i] = v
			rec(i + 1)
		}
	}
	rec(0)
	return out
}

// mergeBoxes repeatedly merges any two boxes whose 1-tile expansions
// intersect, guaranteeing that distinct boxes end up separated by at least
// one fault-free white tile in some dimension — and, because expansion is
// applied in every dimension, even diagonally. This realizes the corner
// separation the paper derives from the painting procedure ("two hypercubes
// share a point only within one black region").
func mergeBoxes(boxes []*faultBox, tileShape grid.Shape) ([]*faultBox, error) {
	changed := true
	for changed {
		changed = false
		for i := 0; i < len(boxes) && !changed; i++ {
			for j := i + 1; j < len(boxes); j++ {
				if !boxesNear(boxes[i], boxes[j], tileShape) {
					continue
				}
				for dim := range tileShape {
					lo, e := grid.IntervalCover(
						boxes[i].lo[dim], boxes[i].ext[dim],
						boxes[j].lo[dim], boxes[j].ext[dim], tileShape[dim])
					boxes[i].lo[dim], boxes[i].ext[dim] = lo, e
				}
				boxes = append(boxes[:j], boxes[j+1:]...)
				changed = true
				break
			}
		}
	}
	return boxes, nil
}

// boxesNear reports whether boxes a and b, each expanded by one tile on
// every side, intersect (i.e. the boxes are Chebyshev-adjacent or closer).
func boxesNear(a, b *faultBox, tileShape grid.Shape) bool {
	for dim := range tileShape {
		if !grid.IntervalsIntersect(
			grid.Sub(a.lo[dim], 1, tileShape[dim]), a.ext[dim]+2,
			b.lo[dim], b.ext[dim], tileShape[dim]) {
			return false
		}
	}
	return true
}

func (g *Graph) checkBoxCaps(boxes []*faultBox, tileShape grid.Shape) error {
	cap := g.P.BoxCap()
	for _, b := range boxes {
		for dim, e := range b.ext {
			limit := cap
			if tileShape[dim]-2 < limit {
				limit = tileShape[dim] - 2
			}
			if e > limit {
				return unhealthy("fault box spans %d tiles in dimension %d (limit %d; paper condition 3 fails)", e, dim, limit)
			}
		}
	}
	return nil
}

// assignFaultRows recomputes, for every box, the sorted distinct relative
// rows containing faults. Every fault must land inside exactly one box.
func (g *Graph) assignFaultRows(boxes []*faultBox, faults *fault.Set, tileShape grid.Shape) error {
	t := g.P.Tile()
	m := g.P.M()
	for _, b := range boxes {
		b.faultRows = b.faultRows[:0]
		b.segs = nil
		b.perSlab = nil
	}
	coord := make([]int, g.P.D-1)
	var outErr error
	faults.ForEach(func(idx int) {
		if outErr != nil {
			return
		}
		i, z := g.NodeOf(idx)
		g.ColShape.Coord(z, coord)
		owner := (*faultBox)(nil)
		for _, b := range boxes {
			if !grid.InCyclicInterval(i/t, b.lo[0], b.ext[0], tileShape[0]) {
				continue
			}
			inside := true
			for dim := 1; dim < g.P.D; dim++ {
				if !grid.InCyclicInterval(coord[dim-1]/t, b.lo[dim], b.ext[dim], tileShape[dim]) {
					inside = false
					break
				}
			}
			if inside {
				owner = b
				break
			}
		}
		if owner == nil {
			outErr = fmt.Errorf("core: internal: fault %d not covered by any box", idx)
			return
		}
		rel := grid.FwdGap(owner.lo[0]*t, i, m)
		owner.faultRows = append(owner.faultRows, rel)
	})
	if outErr != nil {
		return outErr
	}
	for _, b := range boxes {
		sort.Ints(b.faultRows)
		b.faultRows = dedupe(b.faultRows)
	}
	return nil
}

func dedupe(a []int) []int {
	if len(a) == 0 {
		return a
	}
	out := a[:1]
	for _, v := range a[1:] {
		if v != out[len(out)-1] {
			out = append(out, v)
		}
	}
	return out
}

// pigeonholeSegments implements the block argument of Lemma 5: split the
// box's fault rows into blocks separated by >= 2b fault-free rows, find in
// each block a cyclic residue class mod (b+1) free of faults, and lay
// straight width-b segments in the slots between class rows so that every
// fault is masked and consecutive segments keep one unmasked row between
// them.
func (g *Graph) pigeonholeSegments(b *faultBox) error {
	w := g.P.W
	rows := b.faultRows
	b.segs = b.segs[:0]
	for start := 0; start < len(rows); {
		end := start
		for end+1 < len(rows) && rows[end+1]-rows[end] < 2*w {
			end++
		}
		blockStart := rows[start]
		// Find a fault-free residue class mod (w+1) within the block.
		used := make([]bool, w+1)
		for i := start; i <= end; i++ {
			used[(rows[i]-blockStart)%(w+1)] = true
		}
		class := -1
		for c, u := range used {
			if !u {
				class = c
				break
			}
		}
		if class < 0 {
			return unhealthy("block with %d fault rows has no fault-free residue class mod %d (paper condition 1/2 fails)",
				end-start+1, w+1)
		}
		anchor := blockStart + class + 1
		lastSlot := -1 << 62
		for i := start; i <= end; i++ {
			slot := grid.FloorDiv(rows[i]-anchor, w+1)
			if slot != lastSlot {
				b.segs = append(b.segs, anchor+slot*(w+1))
				lastSlot = slot
			}
		}
		start = end + 1
	}
	sort.Ints(b.segs)
	// Internal invariants: segments untouching, every fault covered.
	for i := 1; i < len(b.segs); i++ {
		if b.segs[i]-b.segs[i-1] < w+1 {
			return fmt.Errorf("core: internal: segments %d and %d touch", b.segs[i-1], b.segs[i])
		}
	}
	for _, r := range rows {
		i := sort.SearchInts(b.segs, r+1) - 1
		if i < 0 || r-b.segs[i] >= w {
			return fmt.Errorf("core: internal: fault row %d unmasked by segments", r)
		}
	}
	return nil
}

// padBox tops every slab the box spans up to exactly PerSlab segments,
// keeping the whole segment family untouching. Returns the number of
// filler segments added.
func (g *Graph) padBox(b *faultBox) (int, error) {
	t := g.P.Tile()
	w := g.P.W
	per := g.P.PerSlab()
	slabs := b.ext[0]
	counts := make([]int, slabs)
	for _, s := range b.segs {
		if s < 0 || s >= slabs*t {
			return 0, fmt.Errorf("core: internal: segment %d outside box rows [0,%d)", s, slabs*t)
		}
		rs := s / t
		counts[rs]++
		if counts[rs] > per {
			return 0, unhealthy("slab needs %d segments but capacity is %d (paper condition 2 fails)", counts[rs], per)
		}
	}
	added := 0
	all := append([]int(nil), b.segs...)
	for rs := 0; rs < slabs; rs++ {
		need := per - counts[rs]
		pos := rs * t
		for need > 0 {
			// Advance pos past any conflict with an existing segment.
			for {
				moved := false
				for _, s := range all {
					if pos > s-(w+1) && pos < s+(w+1) {
						pos = s + w + 1
						moved = true
					}
				}
				if !moved {
					break
				}
			}
			if pos >= (rs+1)*t {
				return added, unhealthy("cannot pad slab to %d segments", per)
			}
			all = append(all, pos)
			sort.Ints(all)
			added++
			need--
			pos += w + 1
		}
	}
	b.segs = all
	b.perSlab = make([][]int, slabs)
	for _, s := range all {
		rs := s / t
		b.perSlab[rs] = append(b.perSlab[rs], s)
	}
	for rs, list := range b.perSlab {
		if len(list) != per {
			return added, fmt.Errorf("core: internal: slab %d has %d segments, want %d", rs, len(list), per)
		}
	}
	return added, nil
}

// interpolate builds the full band family: pinned constants over box
// footprints, defaults elsewhere, multilinear blending in between
// (Lemmas 9-11), rounded with the monotone half-up rule. A non-nil sc
// with sc.Workers > 0 bounds the column-sharding fan-out.
func (g *Graph) interpolate(boxes []*faultBox, sc *Scratch) (*bands.Set, error) {
	p := g.P
	t := p.Tile()
	w := p.W
	per := p.PerSlab()
	numSlabs := p.NumSlabs()
	m := p.M()
	colTiles := p.ColTiles()
	d1 := p.D - 1 // column-space dimensionality
	cornerShape := grid.Uniform(d1, colTiles)
	numCorners := cornerShape.Size()

	// Default local band positions within a slab.
	defaults := make([]float64, per)
	spread := w + 1
	if per > 1 {
		spread = (t - 2*w - 1) / (per - 1)
	}
	for j := range defaults {
		defaults[j] = float64(w + j*spread)
	}

	// pinned[slab*numCorners+corner] = per local segment positions.
	pinned := make(map[int][]float64)
	cornerCoord := make([]int, d1)
	for _, b := range boxes {
		for rs := 0; rs < b.ext[0]; rs++ {
			slab := grid.Add(b.lo[0], rs, numSlabs)
			locals := make([]float64, per)
			for j, s := range b.perSlab[rs] {
				locals[j] = float64(s - rs*t)
			}
			// Pin every corner of the box footprint (ext+1 lattice points
			// per dimension, cyclically).
			total := 1
			for dim := 0; dim < d1; dim++ {
				total *= b.ext[dim+1] + 1
			}
			for it := 0; it < total; it++ {
				rem := it
				for dim := d1 - 1; dim >= 0; dim-- {
					span := b.ext[dim+1] + 1
					cornerCoord[dim] = grid.Add(b.lo[dim+1], rem%span, colTiles)
					rem /= span
				}
				key := slab*numCorners + cornerShape.Index(cornerCoord)
				if _, dup := pinned[key]; dup {
					return nil, unhealthy("two fault boxes pin the same tile corner (separation failed)")
				}
				pinned[key] = locals
			}
		}
	}

	bs := bands.NewSet(m, w, g.ColShape, p.K())
	nc := 1 << uint(d1)
	// Columns are independent, so shard the evaluation across workers.
	// Each column writes disjoint band entries; results are deterministic
	// because every value is a pure function of (band, column).
	workers := runtime.GOMAXPROCS(0)
	if sc != nil && sc.Workers > 0 {
		workers = sc.Workers
	}
	if workers > g.NumCols {
		workers = g.NumCols
	}
	if len(pinned) == 0 || workers < 2 {
		workers = 1
	}
	var wg sync.WaitGroup
	for wk := 0; wk < workers; wk++ {
		lo := wk * g.NumCols / workers
		hi := (wk + 1) * g.NumCols / workers
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			colCoord := make([]int, d1)
			tileCoord := make([]int, d1)
			cornerCoord := make([]int, d1)
			x := make([]float64, d1)
			cornerKeys := make([]int, nc)
			cornerVals := make([]float64, nc)
			scratch := make([]float64, nc)
			pins := make([][]float64, nc)
			for z := lo; z < hi; z++ {
				g.ColShape.Coord(z, colCoord)
				for dim := 0; dim < d1; dim++ {
					tileCoord[dim] = colCoord[dim] / t
					x[dim] = (float64(colCoord[dim]%t) + 0.5) / float64(t)
				}
				for s := 0; s < nc; s++ {
					for dim := 0; dim < d1; dim++ {
						if s&(1<<uint(dim)) != 0 {
							cornerCoord[dim] = grid.Add(tileCoord[dim], 1, colTiles)
						} else {
							cornerCoord[dim] = tileCoord[dim]
						}
					}
					cornerKeys[s] = cornerShape.Index(cornerCoord)
				}
				for slab := 0; slab < numSlabs; slab++ {
					base := slab * t
					anyPinned := false
					for s := 0; s < nc; s++ {
						pins[s] = nil
						if arr, ok := pinned[slab*numCorners+cornerKeys[s]]; ok {
							pins[s] = arr
							anyPinned = true
						}
					}
					for j := 0; j < per; j++ {
						gIdx := slab*per + j
						if !anyPinned {
							bs.SetValue(gIdx, z, base+int(defaults[j]))
							continue
						}
						for s := 0; s < nc; s++ {
							if pins[s] != nil {
								cornerVals[s] = pins[s][j]
							} else {
								cornerVals[s] = defaults[j]
							}
						}
						var v float64
						if multilinear.Constant(cornerVals) {
							v = cornerVals[0]
						} else {
							v = multilinear.Eval(cornerVals, x, scratch)
						}
						bs.SetValue(gIdx, z, base+multilinear.RoundHalfUp(v))
					}
				}
			}
		}(lo, hi)
	}
	wg.Wait()
	return bs, nil
}

// checkAllMasked verifies that every fault is masked by some band.
func (g *Graph) checkAllMasked(bs *bands.Set, faults *fault.Set) error {
	var outErr error
	faults.ForEach(func(idx int) {
		if outErr != nil {
			return
		}
		i, z := g.NodeOf(idx)
		if bs.MaskedBy(z, i) < 0 {
			outErr = fmt.Errorf("core: internal: fault at row %d column %d left unmasked", i, z)
		}
	})
	return outErr
}
