package core

import (
	"strings"
	"testing"
	"testing/quick"

	"ftnet/internal/fault"
	"ftnet/internal/grid"
	"ftnet/internal/rng"
)

// Tests for the placement internals: box algebra, pigeonhole segments,
// padding, and the structural invariants the interpolation relies on.

func TestChebyshevDeltas(t *testing.T) {
	for d := 1; d <= 3; d++ {
		deltas := genChebyshevDeltas(d)
		want := 1
		for i := 0; i < d; i++ {
			want *= 3
		}
		want-- // minus the zero vector
		if len(deltas) != want {
			t.Errorf("d=%d: %d deltas, want %d", d, len(deltas), want)
		}
		seen := map[string]bool{}
		for _, dl := range deltas {
			key := ""
			allZero := true
			for _, v := range dl {
				key += string(rune('a' + v + 1))
				if v != 0 {
					allZero = false
				}
			}
			if allZero {
				t.Errorf("d=%d: zero delta emitted", d)
			}
			if seen[key] {
				t.Errorf("d=%d: duplicate delta %v", d, dl)
			}
			seen[key] = true
		}
	}
}

func TestInitialBoxesSingleton(t *testing.T) {
	shape := grid.Shape{10, 8}
	boxes := initialBoxes([]int{3*8 + 5}, shape, genChebyshevDeltas(2))
	if len(boxes) != 1 {
		t.Fatalf("%d boxes", len(boxes))
	}
	b := boxes[0]
	if b.lo[0] != 3 || b.lo[1] != 5 || b.ext[0] != 1 || b.ext[1] != 1 {
		t.Errorf("box = %+v", b)
	}
}

func TestInitialBoxesMergesComponents(t *testing.T) {
	shape := grid.Shape{10, 8}
	// Tiles (2,2) and (3,3) are diagonal: one component. Tile (7,7) is far.
	tiles := []int{2*8 + 2, 3*8 + 3, 7*8 + 7}
	boxes := initialBoxes(tiles, shape, genChebyshevDeltas(2))
	if len(boxes) != 2 {
		t.Fatalf("%d boxes, want 2", len(boxes))
	}
}

func TestInitialBoxesWrap(t *testing.T) {
	shape := grid.Shape{10, 8}
	// Tiles (9,7) and (0,0) touch across both wraps.
	boxes := initialBoxes([]int{9*8 + 7, 0}, shape, genChebyshevDeltas(2))
	if len(boxes) != 1 {
		t.Fatalf("%d boxes, want 1 (wrap adjacency)", len(boxes))
	}
	if boxes[0].ext[0] != 2 || boxes[0].ext[1] != 2 {
		t.Errorf("wrap box extents = %v", boxes[0].ext)
	}
}

func TestMergeBoxesFixedPoint(t *testing.T) {
	shape := grid.Shape{20, 20}
	// Three boxes in a chain, each within 1 tile of the next: must all merge.
	mk := func(r, c int) *faultBox {
		return &faultBox{lo: []int{r, c}, ext: []int{1, 1}}
	}
	boxes, err := mergeBoxes([]*faultBox{mk(2, 2), mk(3, 3), mk(4, 4), mk(15, 15)}, shape)
	if err != nil {
		t.Fatal(err)
	}
	// The diagonal chain (2,2)-(3,3)-(4,4) is Chebyshev-adjacent pairwise
	// and must collapse into one box; (15,15) stays alone. Boxes at
	// Chebyshev distance 2 (one separating white tile) must NOT merge —
	// that is exactly the separation the interpolation needs.
	if len(boxes) != 2 {
		t.Fatalf("%d boxes after merge, want 2", len(boxes))
	}
	sep, err := mergeBoxes([]*faultBox{mk(2, 2), mk(4, 4)}, shape)
	if err != nil {
		t.Fatal(err)
	}
	if len(sep) != 2 {
		t.Fatalf("distance-2 boxes merged (lost the white separator)")
	}
	// No two remaining boxes may be near each other.
	for i := range boxes {
		for j := i + 1; j < len(boxes); j++ {
			if boxesNear(boxes[i], boxes[j], shape) {
				t.Error("merge fixed point not reached")
			}
		}
	}
}

func TestPigeonholeSegmentsCoverAndSpacing(t *testing.T) {
	g := mustGraph(t, testParams2D())
	w := g.P.W
	f := func(rawRows []uint16) bool {
		if len(rawRows) == 0 {
			return true
		}
		// Confine rows to a plausible box height and dedupe/sort.
		box := &faultBox{lo: []int{0, 0}, ext: []int{3, 1}}
		span := 3 * g.P.Tile()
		rows := map[int]bool{}
		for _, r := range rawRows {
			rows[int(r)%span] = true
		}
		// Keep the fault count small enough for the pigeonhole to work.
		box.faultRows = box.faultRows[:0]
		for r := range rows {
			if len(box.faultRows) >= w {
				break
			}
			box.faultRows = append(box.faultRows, r)
		}
		sortInts(box.faultRows)
		if err := g.pigeonholeSegments(box, nil); err != nil {
			// The pigeonhole can legitimately fail for adversarial dense
			// rows; the property below only applies to successes.
			return strings.Contains(err.Error(), "unhealthy")
		}
		// Every fault row covered; spacing >= w+1.
		for _, r := range box.faultRows {
			covered := false
			for _, s := range box.segs {
				if r >= s && r < s+w {
					covered = true
					break
				}
			}
			if !covered {
				return false
			}
		}
		for i := 1; i < len(box.segs); i++ {
			if box.segs[i]-box.segs[i-1] < w+1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

func TestPadBoxFillsEverySlab(t *testing.T) {
	g := mustGraph(t, testParams2D())
	per := g.P.PerSlab()
	w := g.P.W
	box := &faultBox{lo: []int{0, 0}, ext: []int{3, 1}}
	box.faultRows = []int{5, 40, 90} // a few sparse faults
	if err := g.pigeonholeSegments(box, nil); err != nil {
		t.Fatal(err)
	}
	added, err := g.padBox(box, nil)
	if err != nil {
		t.Fatal(err)
	}
	if added != 3*per-len(box.segs)+added {
		// added = total - original segments
		t.Logf("added %d fillers", added)
	}
	if len(box.perSlab) != 3 {
		t.Fatalf("perSlab has %d slabs", len(box.perSlab))
	}
	for rs, list := range box.perSlab {
		if len(list) != per {
			t.Errorf("slab %d has %d segments, want %d", rs, len(list), per)
		}
	}
	for i := 1; i < len(box.segs); i++ {
		if box.segs[i]-box.segs[i-1] < w+1 {
			t.Errorf("padding broke untouching: %d then %d", box.segs[i-1], box.segs[i])
		}
	}
}

func TestPadBoxOverfullSlabUnhealthy(t *testing.T) {
	g := mustGraph(t, testParams2D())
	per := g.P.PerSlab()
	w := g.P.W
	box := &faultBox{lo: []int{0, 0}, ext: []int{1, 1}}
	// More untouching segments in one slab than capacity.
	for i := 0; i <= per; i++ {
		box.segs = append(box.segs, i*(w+1))
	}
	if _, err := g.padBox(box, nil); err == nil {
		t.Error("overfull slab not rejected")
	}
}

// TestPlacementInvariantsRandom is the main property test: for random
// sparse fault sets, successful placements always yield a valid family
// masking every fault, with exactly K bands.
func TestPlacementInvariantsRandom(t *testing.T) {
	g := mustGraph(t, testParams2D())
	f := func(seed uint64, densityByte uint8) bool {
		density := 2e-5 + float64(densityByte)*2e-6 // up to ~25x theorem rate
		faults := fault.NewSet(g.NumNodes())
		faults.Bernoulli(rng.New(seed), density)
		bs, rep, err := g.PlaceBands(faults)
		if err != nil {
			_, isUnhealthy := err.(*UnhealthyError)
			return isUnhealthy // failures must be typed, never panics/bugs
		}
		if bs.K() != g.P.K() {
			return false
		}
		if bs.Validate() != nil {
			return false
		}
		masked := true
		faults.ForEach(func(idx int) {
			i, z := g.NodeOf(idx)
			if bs.MaskedBy(z, i) < 0 {
				masked = false
			}
		})
		return masked && rep.Faults == faults.Count()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestExtractionOrderPreserved checks the structural property behind
// Lemma 7: along any single column step, the cyclic order of unmasked
// rows is preserved by the transfer (psi is a cyclic-order isomorphism).
func TestExtractionOrderPreserved(t *testing.T) {
	g := mustGraph(t, testParams2D())
	faults := fault.NewSet(g.NumNodes())
	faults.Add(g.NodeIndex(100, 100))
	faults.Add(g.NodeIndex(130, 130))
	res, err := g.ContainTorus(faults, core_extract_opts())
	if err != nil {
		t.Fatal(err)
	}
	numCols := g.NumCols
	n := g.P.N()
	m := g.P.M()
	for _, z := range []int{0, 50, 100, numCols - 1} {
		zn := (z + 1) % numCols
		// Images of consecutive guest rows must stay in increasing cyclic
		// order with unit gaps in the cyclic ordering of unmasked rows.
		prev := res.Embedding.Map[0*numCols+zn] / numCols
		total := 0
		for i := 1; i <= n; i++ {
			cur := res.Embedding.Map[(i%n)*numCols+zn] / numCols
			gap := grid.FwdGap(prev, cur, m)
			if gap == 0 {
				t.Fatalf("column %d: duplicate row image", zn)
			}
			total += gap
			prev = cur
		}
		if total != m {
			t.Fatalf("column %d: row images wind %d times around the cycle", zn, total/m)
		}
	}
}

func core_extract_opts() ExtractOptions { return ExtractOptions{CheckConsistency: true} }

// BenchmarkPadBox measures the sorted-merge filler insertion on a
// realistically sparse box (the hot shape: a few pigeonhole segments,
// many fillers). The previous implementation re-sorted the whole list
// and rescanned every segment per candidate position.
func BenchmarkPadBox(b *testing.B) {
	g, err := NewGraph(testParams2D())
	if err != nil {
		b.Fatal(err)
	}
	sc := NewScratch(1)
	base := &faultBox{lo: []int{0, 0}, ext: []int{3, 1}}
	base.faultRows = []int{5, 40, 75, 100}
	if err := g.pigeonholeSegments(base, sc); err != nil {
		b.Fatal(err)
	}
	segs := append([]int(nil), base.segs...)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		box := *base
		box.segs = append(box.segs[:0], segs...)
		if _, err := g.padBox(&box, sc); err != nil {
			b.Fatal(err)
		}
	}
}

// TestToleratesNotMonotone pins the counterexample that rules out any
// "evaluate the batch end, infer the prefixes" scheme in the churn
// layer: the health classification is not monotone in the fault set.
// On this host, three spread-out faults need two pigeonhole segments in
// a shared slab (capacity 1 — condition 2 rejects), while ADDING a
// fourth fault between them merges the boxes into one that needs a
// single segment (tolerated again). The test also pins that the
// placement-only probe agrees with the full pipeline on both states —
// the equivalence the batched churn evaluator is built on.
func TestToleratesNotMonotone(t *testing.T) {
	g := mustGraph(t, Params{D: 2, W: 4, Pitch: 16, Scale: 1})
	smaller := []int{1278, 20426, 21974}
	larger := []int{1278, 20426, 21974, 20648}
	sc := NewScratch(1)

	class := func(idxs []int) bool {
		faults := fault.NewSet(g.NumNodes())
		for _, u := range idxs {
			faults.Add(u)
		}
		probeErr := g.Tolerates(faults, sc)
		_, fullErr := g.ContainTorus(faults, ExtractOptions{Dense: true})
		for _, err := range []error{probeErr, fullErr} {
			if err != nil {
				if _, ok := err.(*UnhealthyError); !ok {
					t.Fatalf("faults %v: bug-class error: %v", idxs, err)
				}
			}
		}
		if (probeErr == nil) != (fullErr == nil) {
			t.Fatalf("faults %v: probe says %v, full pipeline says %v", idxs, probeErr, fullErr)
		}
		return probeErr == nil
	}
	if class(smaller) {
		t.Fatalf("faults %v unexpectedly tolerated; the counterexample host drifted", smaller)
	}
	if !class(larger) {
		t.Fatalf("faults %v (a superset!) unexpectedly rejected; the counterexample host drifted", larger)
	}
}
