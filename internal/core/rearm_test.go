package core

import (
	"errors"
	"fmt"
	"testing"

	"ftnet/internal/fault"
	"ftnet/internal/rng"
)

// Regression suite for the fast-path re-arm: a fault that genuinely
// rotates the anchor at a cold evaluation used to drop Scratch.fastInit
// forever, parking the session on the dense path (and the daemon's delta
// ring on 410 resyncs) for the rest of its life. After rearmRotated the
// session must return to warm incremental evaluation on the very next
// commit, stay bit-identical to the dense pipeline throughout, and
// resume emitting real column deltas.

// TestSessionRearmAfterRotation drives the exact cliff scenario: rotating
// fault at cold eval, then churn on the warm rotated state, then healing
// the rotation away.
func TestSessionRearmAfterRotation(t *testing.T) {
	g := mustGraph(t, testParams2D())
	rot := g.FindAnchorRotatingFault()
	if rot < 0 {
		t.Fatal("no single-node anchor-rotating fault on the test host; pick a different host")
	}

	sc := NewScratch(1)
	ses := g.NewSession(sc, ExtractOptions{})
	faults := fault.NewSet(g.NumNodes())

	faults.Add(rot)
	ses.NoteAdded([]int{rot})
	evalSessionBoth(t, g, ses, faults, "rotated cold eval")
	if sc.rotated {
		t.Fatal("scratch still flagged rotated after the re-arm")
	}
	if !sc.fastInit {
		t.Fatal("re-arm did not restore fastInit after the rotated extraction")
	}
	if !ses.warm {
		t.Fatal("session not warm after the rotated cold eval: the dense cliff is back")
	}
	if _, full := ses.DrainDelta(); !full {
		t.Fatal("rotated cold eval must report a full delta (resync boundary)")
	}

	// The very next commit must be a warm incremental one with a real
	// column delta — this is what lets the daemon serve ?since= again.
	far := g.NodeIndex(300, 250)
	faults.Add(far)
	ses.NoteAdded([]int{far})
	evalSessionBoth(t, g, ses, faults, "warm step on rotated state")
	if !ses.warm {
		t.Fatal("session fell off the warm path on the first post-rotation step")
	}
	cols, full := ses.DrainDelta()
	if full {
		t.Fatal("post-rotation step still reports Full: delta ring would 410 forever")
	}
	if len(cols) == 0 {
		t.Fatal("post-rotation step reported no candidate columns")
	}

	// An unhealthy episode on the rotated state must leave it intact.
	var killer []int
	for r := 0; r < g.P.M(); r++ {
		u := g.NodeIndex(r, 150)
		if !faults.Has(u) {
			faults.Add(u)
			killer = append(killer, u)
		}
	}
	ses.NoteAdded(killer)
	if _, err := ses.Eval(faults); err == nil {
		t.Fatal("full-column pattern unexpectedly tolerated")
	} else {
		var ue *UnhealthyError
		if !errors.As(err, &ue) {
			t.Fatalf("expected UnhealthyError, got %v", err)
		}
	}
	faults.RemoveAll(killer)
	ses.NoteCleared(killer)
	evalSessionBoth(t, g, ses, faults, "healed after unhealthy on rotated state")
	if !ses.warm {
		t.Fatal("session went cold across the unhealthy episode on the rotated state")
	}

	// Healing the rotating fault walks the state back to the default
	// anchor, still warm and still exact.
	faults.Remove(rot)
	ses.NoteCleared([]int{rot})
	evalSessionBoth(t, g, ses, faults, "rotation healed")
	if !ses.warm {
		t.Fatal("session went cold healing the rotating fault")
	}
	faults.Remove(far)
	ses.NoteCleared([]int{far})
	evalSessionBoth(t, g, ses, faults, "fully healed")
}

// TestSessionRotationWhileWarm adds the rotating fault to an
// already-warm session: the anchor-changed incremental path re-derives
// the whole map in one warm step (no cold rebuild, no Full delta), and
// subsequent churn keeps diffing against the rotated state.
func TestSessionRotationWhileWarm(t *testing.T) {
	g := mustGraph(t, testParams2D())
	rot := g.FindAnchorRotatingFault()
	if rot < 0 {
		t.Fatal("no single-node anchor-rotating fault on the test host")
	}
	sc := NewScratch(1)
	ses := g.NewSession(sc, ExtractOptions{})
	faults := fault.NewSet(g.NumNodes())

	far := g.NodeIndex(300, 250)
	faults.Add(far)
	ses.NoteAdded([]int{far})
	evalSessionBoth(t, g, ses, faults, "warm base")
	ses.DrainDelta()

	faults.Add(rot)
	ses.NoteAdded([]int{rot})
	evalSessionBoth(t, g, ses, faults, "rotation while warm")
	if !ses.warm {
		t.Fatal("session went cold rotating while warm")
	}
	if _, full := ses.DrainDelta(); full {
		t.Fatal("warm rotation reported a Full delta; expected a (large) column delta")
	}

	// Random churn on top of the rotated state stays bit-identical.
	r := rng.NewPCG(77, 1)
	var buf []int
	for step := 0; step < 8; step++ {
		move := churnStep(r, faults, ses, g.P.TheoremFailureProb(), &buf)
		if !faults.Has(rot) {
			faults.Add(rot)
			ses.NoteAdded([]int{rot})
		}
		evalSessionBoth(t, g, ses, faults,
			fmt.Sprintf("rotated churn step=%d (%s, %d faults)", step, move, faults.Count()))
	}
}

// TestRearmInterleavingEquivalence is the golden interleaving suite with
// the rotating fault forced into the mix: arbitrary add/remove churn in
// and out of the rotated regime must stay bit-identical to the dense
// pipeline at every state.
func TestRearmInterleavingEquivalence(t *testing.T) {
	g := mustGraph(t, testParams2D())
	rot := g.FindAnchorRotatingFault()
	if rot < 0 {
		t.Fatal("no single-node anchor-rotating fault on the test host")
	}
	sc := NewScratch(1)
	ses := g.NewSession(sc, ExtractOptions{})
	pThm := g.P.TheoremFailureProb()
	var buf []int
	for seed := uint64(0); seed < 10; seed++ {
		ses.Reset()
		faults := sc.Faults(g.NumNodes())
		r := rng.NewPCG(4024, seed)
		addRate := pThm * (1 + float64(seed%4)*8)
		for step := 0; step < 10; step++ {
			move := churnStep(r, faults, ses, addRate, &buf)
			// Toggle the rotating fault on a fixed cadence so the walk
			// keeps crossing the rotation boundary in both directions.
			if step%3 == 0 {
				if faults.Has(rot) {
					faults.Remove(rot)
					ses.NoteCleared([]int{rot})
				} else {
					faults.Add(rot)
					ses.NoteAdded([]int{rot})
				}
			}
			evalSessionBoth(t, g, ses, faults,
				fmt.Sprintf("rearm seed=%d step=%d (%s, %d faults)", seed, step, move, faults.Count()))
		}
	}
}
