package core

import (
	"ftnet/internal/embed"
	"ftnet/internal/fault"
	"ftnet/internal/torus"
)

// Scratch holds the per-trial working memory of the Theorem 2 pipeline —
// the fault bitset, the extraction's row maps and BFS queue, the guest
// torus, the embedding, and the verifier's injectivity bitmap — so a
// Monte-Carlo worker can run trials back to back without re-allocating
// the ~N-sized buffers each time. The parallel trial engine creates one
// Scratch per worker (Options.NewScratch) and hands it to every trial.
//
// Ownership: a Result produced with a Scratch aliases its buffers and
// is valid only until the next call that uses the same Scratch; clone
// anything that must outlive the trial. A Scratch must never be shared
// by concurrently running calls.
//
// All methods accept a nil receiver and then allocate fresh buffers, so
// pipeline code calls them unconditionally whether or not the caller
// supplied a scratch.
type Scratch struct {
	// Workers bounds the *inner* parallelism of band interpolation.
	// Trials dispatched by the parallel engine should set it to 1: the
	// pool already saturates the CPUs, and per-trial goroutine fan-out
	// would only add oversubscription. 0 means GOMAXPROCS (the default
	// serial-caller behavior).
	Workers int

	faults  *fault.Set
	rowflat []int32
	rowmap  [][]int32
	queue   []int
	seen    []bool
	guest   *torus.Graph
	emb     *embed.Embedding
}

// NewScratch returns a Scratch whose interpolation stage uses at most
// workers goroutines (0 = GOMAXPROCS).
func NewScratch(workers int) *Scratch { return &Scratch{Workers: workers} }

// Faults returns an empty fault set over n nodes, reusing the previous
// allocation when the universe size matches.
func (sc *Scratch) Faults(n int) *fault.Set {
	if sc == nil {
		return fault.NewSet(n)
	}
	if sc.faults == nil || sc.faults.Len() != n {
		sc.faults = fault.NewSet(n)
	} else {
		sc.faults.Clear()
	}
	return sc.faults
}

// rowBuffers returns numCols nil'd row-map headers plus their flat
// backing array of numCols*n int32s.
func (sc *Scratch) rowBuffers(numCols, n int) ([][]int32, []int32) {
	if sc == nil {
		return make([][]int32, numCols), make([]int32, numCols*n)
	}
	if cap(sc.rowmap) < numCols {
		sc.rowmap = make([][]int32, numCols)
	}
	sc.rowmap = sc.rowmap[:numCols]
	for i := range sc.rowmap {
		sc.rowmap[i] = nil
	}
	if cap(sc.rowflat) < numCols*n {
		sc.rowflat = make([]int32, numCols*n)
	}
	return sc.rowmap, sc.rowflat[:numCols*n]
}

// queueBuf returns an empty int slice with at least the given capacity.
func (sc *Scratch) queueBuf(capacity int) []int {
	if sc == nil {
		return make([]int, 0, capacity)
	}
	if cap(sc.queue) < capacity {
		sc.queue = make([]int, 0, capacity)
	}
	return sc.queue[:0]
}

// seenBuf returns a false-filled bool slice of length n for the
// verifier's injectivity check.
// A nil receiver returns nil: VerifyBuf allocates its own bitmap then.
func (sc *Scratch) seenBuf(n int) []bool {
	if sc == nil {
		return nil
	}
	if cap(sc.seen) < n {
		sc.seen = make([]bool, n)
		return sc.seen
	}
	sc.seen = sc.seen[:n]
	for i := range sc.seen {
		sc.seen[i] = false
	}
	return sc.seen
}

// guestTorus returns the cached d-dimensional side-n guest torus,
// building it on first use or when the shape changed.
func (sc *Scratch) guestTorus(d, n int) (*torus.Graph, error) {
	if sc == nil {
		return torus.NewUniform(torus.TorusKind, d, n)
	}
	g := sc.guest
	if g != nil && g.Kind == torus.TorusKind && len(g.Shape) == d {
		ok := true
		for _, s := range g.Shape {
			if s != n {
				ok = false
				break
			}
		}
		if ok {
			return g, nil
		}
	}
	g, err := torus.NewUniform(torus.TorusKind, d, n)
	if err != nil {
		return nil, err
	}
	sc.guest = g
	return g, nil
}

// embedding returns a reusable embedding onto guest.
func (sc *Scratch) embedding(guest *torus.Graph) *embed.Embedding {
	if sc == nil {
		return embed.New(guest)
	}
	if sc.emb == nil || sc.emb.Guest != guest || len(sc.emb.Map) != guest.N() {
		sc.emb = embed.New(guest)
	}
	return sc.emb
}
