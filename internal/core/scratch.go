package core

import (
	"ftnet/internal/bands"
	"ftnet/internal/embed"
	"ftnet/internal/fault"
	"ftnet/internal/grid"
	"ftnet/internal/torus"
)

// Scratch holds the per-trial working memory of the Theorem 2 pipeline —
// the fault bitset, the copy-on-write band family, the extraction's row
// maps and BFS queue, the guest torus, the embedding, and the verifiers'
// bitmaps — so a Monte-Carlo worker can run trials back to back without
// re-allocating the ~N-sized buffers each time. The parallel trial engine
// creates one Scratch per worker (Options.NewScratch) and hands it to
// every trial.
//
// Beyond buffer reuse, a Scratch is what makes the locality-aware fast
// path (see locality.go) O(fault footprint): it keeps the row-map headers
// and the embedding seeded with the graph's default template between
// trials, and each trial restores only the columns the previous trial
// dirtied before writing its own.
//
// Ownership: a Result produced with a Scratch aliases its buffers —
// including Result.Bands and Result.Embedding — and is valid only until
// the next call that uses the same Scratch; clone anything that must
// outlive the trial. A Scratch must never be shared by concurrently
// running calls.
//
// All methods accept a nil receiver and then allocate fresh buffers, so
// pipeline code calls them unconditionally whether or not the caller
// supplied a scratch.
type Scratch struct {
	// Workers bounds the *inner* parallelism of the dense band
	// interpolation. Trials dispatched by the parallel engine should set
	// it to 1: the pool already saturates the CPUs, and per-trial
	// goroutine fan-out would only add oversubscription. 0 means
	// GOMAXPROCS (the default serial-caller behavior). The locality fast
	// path is always serial (its work is footprint-sized).
	Workers int

	faults  *fault.Set
	rowflat []int32
	rowmap  [][]int32
	queue   []int
	seen    []bool
	guest   *torus.Graph
	emb     *embed.Embedding

	// Placement buffers.
	ws          *bands.Set // copy-on-write band family, seeded per trial
	tileSeen    []bool     // faultyTiles dedupe bitmap (kept all-false)
	tileList    []int
	pinnedVals  [][]float64 // dense pinned-corner table (kept all-nil)
	pinnedKeys  []int
	localsArena []float64 // backing for the per-(box,slab) pinned locals
	usedRes     []bool    // pigeonhole residue classes
	segMerge    []int     // padBox sorted-merge buffer
	eval        *colEval
	fpStarts    []int
	fpCounts    []int
	fpCoord     []int
	cornerCoord []int // buildPinned corner odometer

	// Extraction buffers.
	nbuf     []int
	ncoord   []int
	consDst  []int32
	movedBuf []movedBand

	// Locality fast-path state. Valid only while fastGraph matches the
	// current graph and no dense extraction has clobbered the buffers:
	// rowmap points every column at the template's default rows except
	// the prevDirty ones, emb holds the default map except the previously
	// deviating columns, and devCols is all-false outside prevDirty.
	fastGraph *Graph
	fastInit  bool
	rotated   bool // last extractFast left a rotated (whole-host) state
	prevDirty []int32
	devCols   []bool
	cleanVec  []int32
	colSeen   []int32 // per-column verify bitmap, generation-counted
	colGen    int32
	faultCol  []int32 // per-column fault marker, generation-counted
	faultGen  int32
}

// NewScratch returns a Scratch whose dense interpolation stage uses at
// most workers goroutines (0 = GOMAXPROCS).
func NewScratch(workers int) *Scratch { return &Scratch{Workers: workers} }

// Faults returns an empty fault set over n nodes, reusing the previous
// allocation when the universe size matches.
func (sc *Scratch) Faults(n int) *fault.Set {
	if sc == nil {
		return fault.NewSet(n)
	}
	if sc.faults == nil || sc.faults.Len() != n {
		sc.faults = fault.NewSet(n)
	} else {
		sc.faults.Clear()
	}
	return sc.faults
}

// rowBuffers returns numCols nil'd row-map headers plus their flat
// backing array of numCols*n int32s. Used by the dense extraction, which
// overwrites every header — so any fast-path state is invalidated.
func (sc *Scratch) rowBuffers(numCols, n int) ([][]int32, []int32) {
	if sc == nil {
		return make([][]int32, numCols), make([]int32, numCols*n)
	}
	sc.fastInit = false
	sc.rotated = false
	if cap(sc.rowmap) < numCols {
		sc.rowmap = make([][]int32, numCols)
	}
	sc.rowmap = sc.rowmap[:numCols]
	for i := range sc.rowmap {
		sc.rowmap[i] = nil
	}
	if cap(sc.rowflat) < numCols*n {
		sc.rowflat = make([]int32, numCols*n)
	}
	return sc.rowmap, sc.rowflat[:numCols*n]
}

// queueBuf returns an empty int slice with at least the given capacity.
func (sc *Scratch) queueBuf(capacity int) []int {
	if sc == nil {
		return make([]int, 0, capacity)
	}
	if cap(sc.queue) < capacity {
		sc.queue = make([]int, 0, capacity)
	}
	return sc.queue[:0]
}

// seenBuf returns a false-filled bool slice of length n for the dense
// verifier's injectivity check.
// A nil receiver returns nil: VerifyBuf allocates its own bitmap then.
func (sc *Scratch) seenBuf(n int) []bool {
	if sc == nil {
		return nil
	}
	if cap(sc.seen) < n {
		sc.seen = make([]bool, n)
		return sc.seen
	}
	sc.seen = sc.seen[:n]
	for i := range sc.seen {
		sc.seen[i] = false
	}
	return sc.seen
}

// guestTorus returns the cached d-dimensional side-n guest torus,
// building it on first use or when the shape changed.
func (sc *Scratch) guestTorus(d, n int) (*torus.Graph, error) {
	if sc == nil {
		return torus.NewUniform(torus.TorusKind, d, n)
	}
	g := sc.guest
	if g != nil && g.Kind == torus.TorusKind && len(g.Shape) == d {
		ok := true
		for _, s := range g.Shape {
			if s != n {
				ok = false
				break
			}
		}
		if ok {
			return g, nil
		}
	}
	g, err := torus.NewUniform(torus.TorusKind, d, n)
	if err != nil {
		return nil, err
	}
	sc.guest = g
	return g, nil
}

// embedding returns a reusable embedding onto guest.
func (sc *Scratch) embedding(guest *torus.Graph) *embed.Embedding {
	if sc == nil {
		return embed.New(guest)
	}
	if sc.emb == nil || sc.emb.Guest != guest || len(sc.emb.Map) != guest.N() {
		sc.emb = embed.New(guest)
	}
	return sc.emb
}

// bandsBuf returns the reusable copy-on-write band family, reallocating
// when the geometry changed. SeedFrom pays the full template copy on a
// fresh set and an O(previous footprint) restore afterwards.
func (sc *Scratch) bandsBuf(m, w int, colShape grid.Shape, k int) *bands.Set {
	if sc == nil {
		return bands.NewSet(m, w, colShape, k)
	}
	ws := sc.ws
	if ws == nil || ws.M != m || ws.Width != w || ws.K() != k || ws.NumColumns() != colShape.Size() {
		sc.ws = bands.NewSet(m, w, colShape, k)
	}
	return sc.ws
}

// tileSeenBuf returns an all-false bitmap over the tile grid. Callers
// must clear the bits they set before returning (faultyTiles does), so
// the all-false invariant costs O(faulty tiles), not O(tiles).
func (sc *Scratch) tileSeenBuf(numTiles int) []bool {
	if sc == nil {
		return make([]bool, numTiles)
	}
	if cap(sc.tileSeen) < numTiles {
		sc.tileSeen = make([]bool, numTiles)
	}
	return sc.tileSeen[:numTiles]
}

// tileListBuf returns an empty reusable slice for the faulty-tile list.
func (sc *Scratch) tileListBuf() []int {
	if sc == nil {
		return nil
	}
	return sc.tileList[:0]
}

// usedBuf returns a false-filled bool slice of length n for the
// pigeonhole residue-class scan.
func (sc *Scratch) usedBuf(n int) []bool {
	if sc == nil {
		return make([]bool, n)
	}
	if cap(sc.usedRes) < n {
		sc.usedRes = make([]bool, n)
		return sc.usedRes[:n]
	}
	buf := sc.usedRes[:n]
	for i := range buf {
		buf[i] = false
	}
	return buf
}

// pinnedBuf returns the all-nil pinned-corner table of the given size
// plus the empty key list used to re-clear it next trial. The caller
// stores the grown key list back via setPinnedKeys. The previous trial's
// keys are cleared against the table's full capacity, not the requested
// size: a Scratch may move to a smaller graph, whose table reuses the
// same backing while stale keys still point above it.
func (sc *Scratch) pinnedBuf(size int) ([][]float64, []int) {
	if sc == nil {
		return make([][]float64, size), nil
	}
	if cap(sc.pinnedVals) < size {
		sc.pinnedVals = make([][]float64, size)
		sc.pinnedKeys = sc.pinnedKeys[:0]
	}
	sc.pinnedVals = sc.pinnedVals[:cap(sc.pinnedVals)]
	for _, k := range sc.pinnedKeys {
		sc.pinnedVals[k] = nil
	}
	sc.pinnedKeys = sc.pinnedKeys[:0]
	sc.localsArena = sc.localsArena[:0]
	return sc.pinnedVals[:size], sc.pinnedKeys
}

func (sc *Scratch) setPinnedKeys(keys []int) {
	if sc != nil {
		sc.pinnedKeys = keys
	}
}

// localsSlice returns a zeroed float64 slice of length per from the
// trial-lifetime arena. Slices stay valid after arena growth (old
// backing arrays are simply retired).
func (sc *Scratch) localsSlice(per int) []float64 {
	if sc == nil {
		return make([]float64, per)
	}
	n := len(sc.localsArena)
	if n+per > cap(sc.localsArena) {
		grown := make([]float64, n, 2*(n+per))
		copy(grown, sc.localsArena)
		sc.localsArena = grown
	}
	sc.localsArena = sc.localsArena[:n+per]
	out := sc.localsArena[n : n+per : n+per]
	for i := range out {
		out[i] = 0
	}
	return out
}

// colEvalBuf returns a reusable column evaluator rebound to this trial's
// pinned table and defaults.
func (sc *Scratch) colEvalBuf(g *Graph, defaults []float64, pinned [][]float64, cornerShape grid.Shape) *colEval {
	if sc == nil {
		return newColEval(g, defaults, pinned, cornerShape)
	}
	ev := sc.eval
	if ev == nil || ev.d1 != g.P.D-1 || ev.per != g.P.PerSlab() || ev.t != g.P.Tile() || ev.numCorners != cornerShape.Size() {
		sc.eval = newColEval(g, defaults, pinned, cornerShape)
		return sc.eval
	}
	ev.defaults = defaults
	ev.pinned = pinned
	ev.colShape = g.ColShape
	ev.cornerShape = cornerShape
	ev.colTiles = g.P.ColTiles()
	return ev
}

// cornerCoordBuf returns the (d-1)-sized work slice for buildPinned's
// corner odometer.
func (sc *Scratch) cornerCoordBuf(d1 int) []int {
	if sc == nil {
		return make([]int, d1)
	}
	if cap(sc.cornerCoord) < d1 {
		sc.cornerCoord = make([]int, d1)
	}
	return sc.cornerCoord[:d1]
}

// footprintBufs returns three d1-sized work slices for the footprint
// odometer.
func (sc *Scratch) footprintBufs(d1 int) (starts, counts, coord []int) {
	if sc == nil {
		return make([]int, d1), make([]int, d1), make([]int, d1)
	}
	if cap(sc.fpStarts) < d1 {
		sc.fpStarts = make([]int, d1)
		sc.fpCounts = make([]int, d1)
		sc.fpCoord = make([]int, d1)
	}
	return sc.fpStarts[:d1], sc.fpCounts[:d1], sc.fpCoord[:d1]
}

// nbufBuf returns the reusable column-neighbor buffer (emptied).
func (sc *Scratch) nbufBuf() []int {
	if sc == nil {
		return nil
	}
	return sc.nbuf[:0]
}

// ncoordBuf returns the reusable coordinate buffer for columnNeighbors,
// sized on first use by the column-space dimensionality.
func (sc *Scratch) ncoordBuf(d1 int) []int {
	if sc == nil {
		return make([]int, d1)
	}
	if cap(sc.ncoord) < d1 {
		sc.ncoord = make([]int, d1)
	}
	return sc.ncoord[:d1]
}

// dstBuf returns a length-n int32 buffer for the consistency check.
func (sc *Scratch) dstBuf(n int) []int32 {
	if sc == nil {
		return make([]int32, n)
	}
	if cap(sc.consDst) < n {
		sc.consDst = make([]int32, n)
	}
	return sc.consDst[:n]
}

// cleanVecBuf returns the length-n buffer holding the clean-region row
// vector when the anchor column is dirty (see extractFast).
func (sc *Scratch) cleanVecBuf(n int) []int32 {
	if cap(sc.cleanVec) < n {
		sc.cleanVec = make([]int32, n)
	}
	return sc.cleanVec[:n]
}

// colSeenBuf returns the generation-counted per-column bitmap over host
// rows; the verifier bumps colGen instead of clearing it.
func (sc *Scratch) colSeenBuf(m int) []int32 {
	if sc == nil {
		return make([]int32, m)
	}
	if cap(sc.colSeen) < m {
		sc.colSeen = make([]int32, m)
		sc.colGen = 0
	}
	return sc.colSeen[:m]
}

// faultColBuf returns the generation-counted per-column fault marker used
// by the verifiers' single fault pass, freshly bumped: entries equal to
// the returned generation mark columns holding at least one fault.
func (sc *Scratch) faultColBuf(numCols int) ([]int32, int32) {
	if cap(sc.faultCol) < numCols {
		sc.faultCol = make([]int32, numCols)
		sc.faultGen = 0
	}
	sc.faultGen++
	return sc.faultCol[:numCols], sc.faultGen
}

// ensureFast prepares the persistent fast-path state for one trial on
// graph g: on first use (or after a graph switch or a dense extraction)
// it points every row-map header at the template's default rows and fills
// the embedding with the default map (O(N), paid once); afterwards it
// restores only the columns the previous trial dirtied, in O(previous
// footprint).
func (sc *Scratch) ensureFast(g *Graph, tpl *template) (rowmap [][]int32, rowflat []int32, dev []bool, e *embed.Embedding, err error) {
	p := g.P
	n := p.N()
	numCols := g.NumCols
	guest, err := sc.guestTorus(p.D, n)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	e = sc.embedding(guest)
	if cap(sc.rowmap) < numCols {
		sc.rowmap = make([][]int32, numCols)
		sc.fastInit = false
	}
	sc.rowmap = sc.rowmap[:numCols]
	if cap(sc.rowflat) < numCols*n {
		sc.rowflat = make([]int32, numCols*n)
		sc.fastInit = false
	}
	if cap(sc.devCols) < numCols {
		sc.devCols = make([]bool, numCols)
		sc.fastInit = false
	}
	sc.devCols = sc.devCols[:numCols]
	if sc.fastGraph != g {
		sc.fastGraph = g
		sc.fastInit = false
	}
	if !sc.fastInit {
		for z := 0; z < numCols; z++ {
			sc.rowmap[z] = tpl.defaultRows
			sc.devCols[z] = false
		}
		for i := 0; i < n; i++ {
			base := i * numCols
			host := int(tpl.defaultRows[i]) * numCols
			for z := 0; z < numCols; z++ {
				e.Map[base+z] = host + z
			}
		}
		sc.prevDirty = sc.prevDirty[:0]
		sc.fastInit = true
	} else {
		for _, z32 := range sc.prevDirty {
			z := int(z32)
			sc.rowmap[z] = tpl.defaultRows
			if sc.devCols[z] {
				sc.devCols[z] = false
				for i := 0; i < n; i++ {
					e.Map[i*numCols+z] = int(tpl.defaultRows[i])*numCols + z
				}
			}
		}
		sc.prevDirty = sc.prevDirty[:0]
	}
	return sc.rowmap, sc.rowflat[:numCols*n], sc.devCols, e, nil
}

// notePrevDirty records the columns this trial overwrote, for the next
// trial's restore.
func (sc *Scratch) notePrevDirty(dirty []int32) {
	sc.prevDirty = append(sc.prevDirty[:0], dirty...)
}
