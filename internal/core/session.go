// Bidirectional delta evaluation for the Theorem 2 pipeline.
//
// A Session carries the pipeline state — copy-on-write band families,
// row vectors, embedding, certification — across a sequence of Evals
// whose fault sets differ by arbitrary mutations: additions, removals,
// or both at once. Each Eval re-derives only the columns whose band
// values actually changed since the last successful Eval, and its result
// is bit-identical to a from-scratch dense evaluation of the same fault
// set (the golden interleaving suite pins this). The monotone rate-ladder
// sweep (SweepTrial) and the dynamic churn workloads (internal/churn) are
// both thin clients of this engine.
//
// The reuse argument is the locality/path-independence argument the
// per-trial fast path (locality.go) makes against the all-defaults
// template, applied between two consecutive band families instead:
//
//   - Placement (Lemmas 5, 9-11) makes every column's band values a pure
//     function of the pinned corners in its own tile cell, so two
//     families differ only inside the footprints of the boxes that
//     changed. Eval detects those columns by value diff over the two
//     families' dirty sets — bit-exact, independent of how boxes moved —
//     and revalidates only them (bands.ValidateColumns).
//   - Extraction (Lemmas 6-7): the canonical row vector of a column whose
//     bands did not change, connected to the anchor column 0 through
//     unchanged columns, is itself unchanged (every transfer along the
//     path is identical). Vectors are re-derived only for changed columns
//     and for unchanged "island" components whose first re-derived contact
//     disagrees with the kept vector (Lemma 7 makes each island
//     all-or-nothing, so one O(n) comparison per boundary contact
//     decides the whole component).
//   - Verification re-certifies exactly the deviating columns whose
//     vector was re-derived, the deviating neighbors of re-derived
//     columns (their cross-column edges face new vectors), and the
//     deviating columns whose fault membership changed; everything else
//     is covered by the previous Eval's certification plus the template
//     certificate.
//
// Removal is where the two-sided diff earns its keep. A cleared fault
// lets placement release the bands around its box, *healing* columns
// back toward the template. Such a column is dirty in the previous
// committed family (it deviated from the template) but clean in the new
// one (SeedFrom restored it), so diffing either dirty set alone would
// miss it; Eval diffs over the union — previous-commit dirt plus
// new-placement dirt — which is exactly "may differ from the template on
// either side". The healed column's vector is then re-derived from a
// trusted frontier like any changed column, and if it returns to the
// default base its embedding slice falls back to the template map (the
// oldDev bookkeeping). No certification work is lost to removals that
// leave the bands alone: an embedding certified against a fault set
// remains valid for every subset, and the per-Eval fault pass
// (verifyFaultPass) re-checks the surviving faults against the current
// deviation state anyway.
package core

import (
	"fmt"
	"slices"

	"ftnet/internal/bands"
	"ftnet/internal/fault"
	"ftnet/internal/fterr"
	"ftnet/internal/grid"
)

// Column states during one Eval's incremental extraction.
const (
	swKept      uint8 = iota // bands unchanged, vector provisionally kept
	swChanged                // band values changed, vector must be re-derived
	swAnchor                 // unchanged and connected to column 0: trusted
	swConfirmed              // unchanged island column whose kept vector was re-derived and matched
	swAssigned               // vector re-derived this Eval
)

// Session is the bidirectional delta-evaluation engine. It owns two
// copy-on-write band families (successive Evals alternate between them
// so the previous state's values survive for diffing) and the
// bookkeeping of which columns each Eval actually recomputed. A Session
// wraps one Scratch and, like it, must never be shared by concurrent
// trials; it stays valid across trials (call Reset at each trial start).
type Session struct {
	g    *Graph
	sc   *Scratch
	opts ExtractOptions

	bsA, bsB *bands.Set
	cur      *bands.Set // family described by the scratch's rowmap/embedding state
	warm     bool       // scratch state valid for incremental reuse against cur

	touched   []int32 // columns re-derived at any Eval since Reset (== sc.prevDirty)
	churnCols []int32 // columns whose fault membership changed since the last successful Eval

	// Wire-delta accounting (DrainDelta): every embedding write since the
	// previous drain is covered either by a column in deltaCand or by
	// deltaFull. Failed Evals accumulate too — extraction can write
	// embedding entries before verification rejects the state, and those
	// columns may not be re-derived by the next successful Eval.
	deltaCand []int32
	deltaFull bool

	// Box-level placement diff: the previous successful Eval's box list
	// and the per-box classification buffers of the current one (see
	// interpolateDelta; session-owned so the per-event hot path does not
	// allocate).
	prevBoxes []*faultBox
	copyable  []bool
	matchedA  []bool
	matchedB  []bool

	mark    []int32 // per-column generation stamps (diff and verify-set dedup)
	gen     int32
	state   []uint8
	changed []int32
	queue   []int
	recomp  []int32 // columns whose vector was re-derived this Eval
	oldDev  []bool  // dev flag each recomp column had before re-derivation
	pending []int32
	verify  []int32
	nbuf    []int
	ncoord  []int
}

// NewSession wraps sc for delta evaluation on g. opts.Scratch is forced
// to sc; opts.Dense degrades every Eval to the independent dense
// pipeline (the ablation mode).
func (g *Graph) NewSession(sc *Scratch, opts ExtractOptions) *Session {
	opts.Scratch = sc
	return &Session{g: g, sc: sc, opts: opts}
}

// Reset starts a new trial: the next Eval rebuilds the pipeline state
// from scratch instead of diffing against the previous trial's state.
func (s *Session) Reset() {
	s.warm = false
	s.churnCols = s.churnCols[:0]
}

// NoteAdded records newly added fault indices (as returned by
// fault.Set.Extend or BernoulliRecord) so the next Eval re-certifies
// their columns even when no band moved — e.g. a fault landing on an
// already-masked row.
func (s *Session) NoteAdded(added []int) {
	for _, idx := range added {
		s.churnCols = append(s.churnCols, int32(idx%s.g.NumCols))
	}
}

// NoteCleared records removed fault indices (as returned by
// fault.Set.RemoveRecord). Clearing a fault can never invalidate the
// previous certification — an embedding certified against a fault set
// remains valid for every subset — but the columns are recorded anyway
// so every certified state has been checked against exactly its own
// fault set, keeping each Eval's certificate self-contained instead of
// resting on a subset argument. The cost is one extra column visit per
// cleared fault, and only when the column deviates.
func (s *Session) NoteCleared(cleared []int) {
	for _, idx := range cleared {
		s.churnCols = append(s.churnCols, int32(idx%s.g.NumCols))
	}
}

// Eval runs the full pipeline — place, extract, verify — on the given
// fault set and returns the survival proof, reusing as much of the
// previous successful Eval's work as the band-value diff allows. The
// fault set may differ from the previous Eval's by any mixture of
// additions and removals, as long as every mutation since the last
// successful Eval was reported through NoteAdded/NoteCleared. The Result
// aliases the Session and is valid only until the next Eval or Reset.
// An *UnhealthyError is a survival failure (state stays warm: the next
// Eval diffs against the last healthy state); other errors are bugs.
//
//ftnet:hotpath
func (s *Session) Eval(faults *fault.Set) (*Result, error) {
	g, sc := s.g, s.sc
	if s.opts.Dense || sc == nil {
		s.deltaFull = true
		return g.ContainTorus(faults, s.opts)
	}
	tpl, err := g.template()
	if err != nil {
		// No usable template (e.g. ablated edge classes): every Eval runs
		// the standalone pipeline, which reports such failures on its own
		// terms.
		s.deltaFull = true
		return g.ContainTorus(faults, s.opts)
	}
	s.ensureBuffers()
	target := s.bsA
	if s.cur == s.bsA {
		target = s.bsB
	}
	boxes, rep, err := g.buildBoxes(faults, sc)
	if err != nil {
		return nil, err // unhealthy box structure leaves the warm state untouched
	}
	warm := s.warm && sc.fastInit && sc.fastGraph == g && s.cur != nil
	var bs *bands.Set
	if warm {
		bs, err = s.interpolateDelta(boxes, tpl, target)
	} else {
		bs, err = g.interpolateFast(boxes, sc, tpl, target)
	}
	if err != nil {
		return nil, err // unhealthy placements leave the warm state untouched
	}
	res := &Result{Bands: bs, Report: rep}

	if !warm {
		return s.evalCold(bs, boxes, faults, tpl, res)
	}

	// Diff the new family against the last successful Eval's: every value
	// difference lies inside the union of the two dirty sets (see the
	// package comment — the union is what catches healed columns).
	s.gen++
	s.changed = s.changed[:0]
	for _, list := range [2][]int32{s.cur.DirtyColumns(), bs.DirtyColumns()} {
		for _, z32 := range list {
			if s.mark[z32] == s.gen {
				continue
			}
			s.mark[z32] = s.gen
			if !bs.ColumnEqual(s.cur, int(z32)) {
				s.changed = append(s.changed, z32)
			}
		}
	}
	if err := bs.ValidateColumns(s.changed); err != nil {
		return nil, fterr.Wrapf(fterr.Internal, "core", err, "placed bands invalid")
	}
	if err := g.checkAllMasked(bs, faults); err != nil {
		return nil, err
	}
	if err := s.extractIncremental(bs, tpl); err != nil {
		return nil, err
	}
	if err := s.verifyIncremental(faults, tpl); err != nil {
		return nil, err
	}
	res.Embedding = sc.emb
	s.commit(bs, boxes)
	return res, nil
}

// interpolateDelta is the placement half of the delta evaluation: it
// seeds target from the template and then, box by box, either copies the
// box's footprint values from the last committed family (when the box
// and every box that can influence its footprint are unchanged — values
// are then bit-identical by construction) or re-interpolates it with the
// fresh pinned table. A box is "unchanged" when its tile geometry and
// padded segment list match a previous box exactly; it is demoted to
// re-interpolation when any added or removed box sits close enough
// (expanded footprints intersecting in every dimension) for its pins to
// reach into a shared tile cell. The result is bit-identical to
// interpolateFast on the same boxes; only the cost differs — a churn
// event pays for the toggled box, not the standing population.
//
//ftnet:hotpath
func (s *Session) interpolateDelta(boxes []*faultBox, tpl *template, dst *bands.Set) (*bands.Set, error) {
	g, sc := s.g, s.sc
	p := g.P
	d1 := p.D - 1
	per := p.PerSlab()
	numSlabs := p.NumSlabs()
	cornerShape := g.cornerShape
	tileShape := g.TileShape()

	// Classify: copyable[i] means boxes[i] has an identical predecessor.
	// matched[j] marks predecessors that found a successor; the rest were
	// removed and count as perturbing.
	copyable, matched := s.boxClassifyBufs(len(boxes), len(s.prevBoxes))
	for j := range matched {
		matched[j] = false
	}
	for i, b := range boxes {
		copyable[i] = false
		for j, pb := range s.prevBoxes {
			if !matched[j] && sameBox(b, pb) {
				copyable[i] = true
				matched[j] = true
				break
			}
		}
	}
	// Demote matched boxes within reach of a perturber: an added or
	// changed new box (unmatched above) or a removed predecessor. The
	// perturber set is fixed before demotion — a demoted-but-matched box
	// keeps its pins, so demotion does not cascade through it.
	isMatched := append(s.matchedB[:0], copyable...)
	s.matchedB = isMatched
	for i, b := range boxes {
		if !copyable[i] {
			continue
		}
		for k, nb := range boxes {
			if k != i && !isMatched[k] && boxesInfluence(b, nb, tileShape) {
				copyable[i] = false
				break
			}
		}
		if !copyable[i] {
			continue
		}
		for j, pb := range s.prevBoxes {
			if !matched[j] && boxesInfluence(b, pb, tileShape) {
				copyable[i] = false
				break
			}
		}
	}

	if err := dst.SeedFrom(tpl.bs); err != nil {
		return nil, err
	}
	pinned, err := g.buildPinned(boxes, sc, cornerShape)
	if err != nil {
		return nil, err
	}
	ev := sc.colEvalBuf(g, tpl.defaults, pinned, cornerShape)
	starts, counts, coord := sc.footprintBufs(d1)
	cur := s.cur
	for i, b := range boxes {
		if copyable[i] {
			g.footprintColumns(b, starts, counts, coord,
				//lint:allow hotpath the copy callback is consumed inside footprintColumns and never escapes, so it stays on the stack
				func(z int) {
					for rs := 0; rs < b.ext[0]; rs++ {
						gLo := grid.Add(b.lo[0], rs, numSlabs) * per
						dst.CopyBandRange(cur, gLo, gLo+per, z)
					}
				})
			continue
		}
		g.footprintColumns(b, starts, counts, coord,
			//lint:allow hotpath the eval callback is consumed inside footprintColumns and never escapes, so it stays on the stack
			func(z int) {
				ev.setColumn(z)
				for rs := 0; rs < b.ext[0]; rs++ {
					ev.evalSlab(dst, grid.Add(b.lo[0], rs, numSlabs), z)
				}
			})
	}
	return dst, nil
}

// boxClassifyBufs sizes the session's box-classification scratch (grown
// geometrically off the hot path) and hands out the sliced views.
func (s *Session) boxClassifyBufs(nBoxes, nPrev int) (copyable, matched []bool) {
	if cap(s.copyable) < nBoxes {
		s.copyable = make([]bool, nBoxes)
		s.matchedB = make([]bool, nBoxes)
	}
	if cap(s.matchedA) < nPrev {
		s.matchedA = make([]bool, nPrev)
	}
	return s.copyable[:nBoxes], s.matchedA[:nPrev]
}

// sameBox reports whether two fault boxes are identical in tile geometry
// and padded segment layout — the inputs the interpolation's pinned
// corners are a pure function of.
func sameBox(a, b *faultBox) bool {
	if len(a.lo) != len(b.lo) || len(a.segs) != len(b.segs) {
		return false
	}
	for d := range a.lo {
		if a.lo[d] != b.lo[d] || a.ext[d] != b.ext[d] {
			return false
		}
	}
	for i := range a.segs {
		if a.segs[i] != b.segs[i] {
			return false
		}
	}
	return true
}

// boxesInfluence reports whether box p's pins can reach a tile cell that
// box b's footprint columns interpolate over: their expanded footprints
// (±1 tile) must intersect in every dimension. Slab ranges interact
// without the ±1 (pins exist only at spanned slabs), so expanding
// dimension 0 too is conservative, never unsound.
func boxesInfluence(b, p *faultBox, tileShape grid.Shape) bool {
	for d := range tileShape {
		if !grid.IntervalsIntersect(
			grid.Sub(b.lo[d], 1, tileShape[d]), b.ext[d]+2,
			grid.Sub(p.lo[d], 1, tileShape[d]), p.ext[d]+2, tileShape[d]) {
			return false
		}
	}
	return true
}

// ensureBuffers sizes the per-column working state to the graph.
func (s *Session) ensureBuffers() {
	g := s.g
	numCols := g.NumCols
	if s.bsA == nil || s.bsA.K() != g.P.K() || s.bsA.M != g.P.M() || s.bsA.NumColumns() != numCols {
		p := g.P
		s.bsA = bands.NewSet(p.M(), p.W, g.ColShape, p.K())
		s.bsB = bands.NewSet(p.M(), p.W, g.ColShape, p.K())
		s.cur = nil
		s.warm = false
	}
	if cap(s.mark) < numCols {
		s.mark = make([]int32, numCols)
		s.state = make([]uint8, numCols)
		s.gen = 0
	}
	s.mark = s.mark[:numCols]
	s.state = s.state[:numCols]
	if cap(s.ncoord) < g.P.D-1 {
		s.ncoord = make([]int, g.P.D-1)
	}
	s.ncoord = s.ncoord[:g.P.D-1]
}

// evalCold runs the standalone extract+verify path (exactly ContainTorus
// after placement) and, when it leaves the scratch in the reusable
// fast-path state, marks the session warm for the next Eval.
func (s *Session) evalCold(bs *bands.Set, boxes []*faultBox, faults *fault.Set, tpl *template, res *Result) (*Result, error) {
	g, sc := s.g, s.sc
	s.deltaFull = true // extractFast rebuilds the whole embedding
	if err := bs.ValidateDirty(); err != nil {
		return nil, fmt.Errorf("core: placed bands invalid: %w", err)
	}
	if err := g.checkAllMasked(bs, faults); err != nil {
		return nil, err
	}
	emb, err := g.extractFast(bs, tpl, s.opts)
	if err != nil {
		return nil, err
	}
	if err := g.verifyFast(emb, bs, faults, tpl, sc); err != nil {
		return nil, err
	}
	if sc.rotated {
		// The anchor genuinely rotated and the extraction rewrote the
		// whole host map. Re-arm the fast path from the just-verified
		// state: the next Eval diffs against the rotated embedding
		// incrementally instead of paying the dense rebuild forever.
		g.rearmRotated(tpl, sc)
	}
	res.Embedding = emb
	s.commit(bs, boxes)
	return res, nil
}

// commit records a successful Eval: the scratch's rowmap/dev/embedding
// state now describes bs (placed from boxes), and sc.prevDirty (the
// inter-trial restore list) must cover every column deviating from the
// template — the union of everything any Eval since Reset re-derived.
func (s *Session) commit(bs *bands.Set, boxes []*faultBox) {
	sc := s.sc
	s.cur = bs
	s.prevBoxes = boxes
	s.warm = sc.fastInit && sc.fastGraph == s.g
	s.touched = append(s.touched[:0], sc.prevDirty...)
	s.churnCols = s.churnCols[:0]
	if len(s.recomp) > 0 {
		s.recomp = s.recomp[:0]
		s.oldDev = s.oldDev[:0]
	}
}

// DrainDelta reports which embedding columns may have been rewritten
// since the previous drain, accumulated across every Eval in between —
// including failed ones, whose extractions can write embedding entries
// before verification rejects the state. full reports that a
// non-incremental rewrite happened (cold start, dense mode, template
// fallback); cols is then nil and the caller must treat every column as
// changed. Otherwise cols is sorted, deduplicated, caller-owned, and a
// superset of the truly changed columns (callers comparing maps filter
// it exactly). Draining resets the accumulator.
func (s *Session) DrainDelta() (cols []int32, full bool) {
	full = s.deltaFull
	s.deltaFull = false
	cand := s.deltaCand
	s.deltaCand = cand[:0]
	if full || len(cand) == 0 {
		return nil, full
	}
	slices.Sort(cand)
	return slices.Clone(slices.Compact(cand)), false
}

// extractIncremental re-derives row vectors for exactly the columns that
// need it: the changed columns, plus any unchanged island whose kept
// vectors no longer match a re-derived boundary contact. Kept columns'
// vectors stay canonical by Lemma 7 (see the package comment), so the
// embedding is bit-identical to a from-scratch extraction.
//
//ftnet:hotpath
func (s *Session) extractIncremental(bs *bands.Set, tpl *template) error {
	g, sc := s.g, s.sc
	n := g.P.N()
	numCols := g.NumCols
	rowmap, rowflat, dev := sc.rowmap, sc.rowflat, sc.devCols
	base := tpl.defaultRows

	state := s.state
	for z := range state {
		state[z] = swKept
	}
	for _, z32 := range s.changed {
		state[z32] = swChanged
	}
	s.recomp = s.recomp[:0]
	s.oldDev = s.oldDev[:0]

	queue := s.queue[:0]
	nbuf := s.nbuf
	if state[0] == swChanged {
		// The anchor's own bands changed. Its canonical vector is directly
		// recomputable (Lemma 6 anchors guest row 0 just above band 0 of
		// column 0), so it seeds the flood pre-assigned; no free trust
		// region exists, and every kept component is validated through
		// island probes on first contact.
		anchor := bs.UnmaskedRows(0, rowflat[:0:n])
		if len(anchor) != n {
			return fterr.New(fterr.Internal, "core", "column 0 has %d unmasked rows, want %d", len(anchor), n)
		}
		s.oldDev = append(s.oldDev, dev[0])
		rowmap[0] = anchor
		dev[0] = !int32Equal(anchor, base)
		state[0] = swAssigned
		s.recomp = append(s.recomp, 0)
		queue = append(queue, 0)
	} else {
		// Trust region: the component of unchanged columns containing the
		// anchor column 0 keeps its vectors verbatim.
		state[0] = swAnchor
		queue = append(queue, 0)
		for head := 0; head < len(queue); head++ {
			z := queue[head]
			nbuf = g.columnNeighbors(z, nbuf[:0], s.ncoord)
			for _, zn := range nbuf {
				if state[zn] == swKept {
					state[zn] = swAnchor
					queue = append(queue, zn)
				}
			}
		}
		queue = queue[:0]
	}

	// Re-derive the changed region, flooding BFS out of trusted columns.
	// Seeding may need several passes: a changed component enclosed by
	// not-yet-confirmed islands becomes seedable only after those islands
	// are contacted. assign transfers zFrom -> zTo into zTo's backing slot.
	//lint:allow hotpath assign is called only inside this function and never escapes; one stack closure per Eval, not per column
	assign := func(zFrom, zTo int) error {
		dst := rowflat[zTo*n : (zTo+1)*n]
		s.oldDev = append(s.oldDev, dev[zTo])
		if err := g.transferFast(bs, base, sc, zFrom, zTo, rowmap[zFrom], dst, dev); err != nil {
			return err
		}
		rowmap[zTo] = dst
		state[zTo] = swAssigned
		s.recomp = append(s.recomp, int32(zTo))
		queue = append(queue, zTo)
		return nil
	}
	s.pending = append(s.pending[:0], s.changed...)
	for len(s.pending) > 0 {
		// Seed every pending changed column that touches a trusted one.
		rest := s.pending[:0]
		progress := false
		for _, z32 := range s.pending {
			z := int(z32)
			if state[z] != swChanged {
				progress = true // assigned by an earlier flood
				continue
			}
			seeded := false
			nbuf = g.columnNeighbors(z, nbuf[:0], s.ncoord)
			for _, zn := range nbuf {
				if st := state[zn]; st == swAnchor || st == swConfirmed || st == swAssigned {
					if err := assign(zn, z); err != nil {
						return err
					}
					seeded = true
					break
				}
			}
			if seeded {
				progress = true
			} else {
				rest = append(rest, z32)
			}
		}
		s.pending = rest
		if !progress && len(s.pending) > 0 {
			return fterr.New(fterr.Internal, "core", "%d changed columns unreachable from any trusted column", len(s.pending))
		}
		// Flood: walk the frontier of trusted vectors, re-deriving changed
		// columns and probing kept islands on first contact. A confirmed
		// island column spreads confirmation through its whole component
		// without further O(n) comparisons (Lemma 7 makes the component
		// all-or-nothing) and is itself a valid transfer source, so trust
		// crosses islands to reach changed regions on their far side.
		for head := 0; head < len(queue); head++ {
			z := queue[head]
			confirmed := state[z] == swConfirmed
			nbuf = g.columnNeighbors(z, nbuf[:0], s.ncoord)
			for _, zn := range nbuf {
				switch state[zn] {
				case swChanged:
					if err := assign(z, zn); err != nil {
						return err
					}
				case swKept:
					if confirmed {
						// Same island as an already-validated column.
						state[zn] = swConfirmed
						queue = append(queue, zn)
						continue
					}
					// First contact with a kept island: re-derive its vector
					// once. If it matches, the whole component is valid; if
					// not, the island genuinely shifted — flood into it.
					tmp := sc.cleanVecBuf(n)
					oldDev := dev[zn]
					if err := g.transferFast(bs, base, sc, z, zn, rowmap[z], tmp, dev); err != nil {
						return err
					}
					if int32Equal(tmp, rowmap[zn]) {
						dev[zn] = oldDev
						state[zn] = swConfirmed
						queue = append(queue, zn)
						continue
					}
					dst := rowflat[zn*n : (zn+1)*n]
					copy(dst, tmp)
					rowmap[zn] = dst
					s.oldDev = append(s.oldDev, oldDev)
					state[zn] = swAssigned
					s.recomp = append(s.recomp, int32(zn))
					queue = append(queue, zn)
				}
			}
		}
		queue = queue[:0]
	}
	s.queue = queue
	s.nbuf = nbuf

	// Sync the embedding for re-derived columns: deviating vectors are
	// written out, restored-to-base vectors fall back to the default map.
	e := sc.emb
	for i, z32 := range s.recomp {
		z := int(z32)
		switch {
		case dev[z]:
			rows := rowmap[z]
			for j := 0; j < n; j++ {
				e.Map[j*numCols+z] = int(rows[j])*numCols + z
			}
			s.deltaCand = append(s.deltaCand, z32)
		case s.oldDev[i]:
			for j := 0; j < n; j++ {
				e.Map[j*numCols+z] = int(base[j])*numCols + z
			}
			s.deltaCand = append(s.deltaCand, z32)
		}
	}
	// Extend the inter-trial restore set: anything re-derived this Eval
	// may now deviate from the template.
	s.gen++
	for _, z32 := range sc.prevDirty {
		s.mark[z32] = s.gen
	}
	for _, z32 := range s.recomp {
		if s.mark[z32] != s.gen {
			s.mark[z32] = s.gen
			sc.prevDirty = append(sc.prevDirty, z32)
		}
	}
	return nil
}

// verifyIncremental re-certifies the Eval: every deviating column whose
// vector was re-derived, every deviating neighbor of a re-derived column
// (its cross-column edges face new vectors), and every deviating column
// whose fault membership changed since the last certified state; plus
// the masked-under-default check for all faults in non-deviating columns.
//
//ftnet:hotpath
func (s *Session) verifyIncremental(faults *fault.Set, tpl *template) error {
	g, sc := s.g, s.sc
	dev := sc.devCols
	e := sc.emb
	faultCol, fgen, err := g.verifyFaultPass(faults, tpl, sc, dev)
	if err != nil {
		return err
	}

	s.gen++
	gen := s.gen
	s.verify = s.verify[:0]
	//lint:allow hotpath add never escapes verifyIncremental; one stack closure per Eval, not per column
	add := func(z int) {
		if s.mark[z] != gen && dev[z] {
			s.mark[z] = gen
			s.verify = append(s.verify, int32(z))
		}
	}
	nbuf := s.nbuf
	for _, z32 := range s.recomp {
		z := int(z32)
		add(z)
		nbuf = g.columnNeighbors(z, nbuf[:0], s.ncoord)
		for _, zn := range nbuf {
			add(zn)
		}
	}
	for _, z32 := range s.churnCols {
		add(int(z32))
	}
	s.nbuf = nbuf

	//lint:allow hotpath inSet never escapes verifyIncremental; one stack closure per Eval, not per column
	inSet := func(z int) bool { return s.mark[z] == gen }
	for _, z32 := range s.verify {
		z := int(z32)
		if err := g.verifyColumn(e, faults, sc, z, faultCol[z] == fgen,
			//lint:allow hotpath the skipPair predicate is consumed inside verifyColumn and never escapes; it stays on the stack
			func(zn int) bool { return inSet(zn) && zn < z }); err != nil {
			return err
		}
	}
	return nil
}
