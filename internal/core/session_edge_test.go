package core

import (
	"fmt"
	"testing"

	"ftnet/internal/fault"
	"ftnet/internal/rng"
)

// Golden equivalence suite for the edge-fault charging pass (Theorem 2's
// edge model): a mixed node+edge churn sequence driven through a
// fault.Charger and a Session must be bit-identical, at every step, to a
// dense from-scratch evaluation of the charged (effective) fault set —
// and the committed embedding must independently verify against an
// edge-aware HostView, proving that avoiding every charged node really
// does avoid every faulty edge.

// randomHostEdge draws a uniformly random host edge: a uniform node and
// a uniform neighbor slot (the host degree is uniform, so after
// canonicalization every undirected edge has equal mass).
func randomHostEdge(r rng.Source, g *Graph, buf []int) (int, int, []int) {
	u := r.Intn(g.NumNodes())
	buf = g.Neighbors(u, buf[:0])
	return u, buf[r.Intn(len(buf))], buf
}

// edgeChurnStep mutates the charger by one random mixed move and reports
// the effective deltas to the session. Returns a label for failures.
func edgeChurnStep(r rng.Source, g *Graph, c *fault.Charger, ses *Session, nbuf *[]int, eff *[]int) string {
	*eff = (*eff)[:0]
	kind := r.Intn(4)
	// Degenerate cases fall forward to an add of the same flavor.
	switch {
	case kind == 1 && c.Nodes().Count() == 0:
		kind = 0
	case kind == 3 && c.Edges().Count() == 0:
		kind = 2
	}
	switch kind {
	case 0: // add a batch of node faults
		k := 1 + r.Intn(4)
		for i := 0; i < k; i++ {
			if _, e := c.AddNode(r.Intn(g.NumNodes())); e >= 0 {
				*eff = append(*eff, e)
			}
		}
		ses.NoteAdded(*eff)
		return fmt.Sprintf("add-nodes %d", len(*eff))
	case 1: // clear a random known node fault
		v := c.Nodes().Nth(r.Intn(c.Nodes().Count()))
		if _, e := c.ClearNode(v); e >= 0 {
			*eff = append(*eff, e)
		}
		ses.NoteCleared(*eff)
		return fmt.Sprintf("clear-node %d", v)
	case 2: // add a batch of edge faults
		k := 1 + r.Intn(5)
		for i := 0; i < k; i++ {
			var u, v int
			u, v, *nbuf = randomHostEdge(r, g, *nbuf)
			if _, e := c.AddEdge(u, v); e >= 0 {
				*eff = append(*eff, e)
			}
		}
		ses.NoteAdded(*eff)
		return fmt.Sprintf("add-edges %d", len(*eff))
	default: // clear a random known edge fault
		ed := c.Edges().Nth(r.Intn(c.Edges().Count()))
		if _, e := c.ClearEdge(ed.U, ed.V); e >= 0 {
			*eff = append(*eff, e)
		}
		ses.NoteCleared(*eff)
		return fmt.Sprintf("clear-edge {%d,%d}", ed.U, ed.V)
	}
}

// evalSessionCharged compares one Session.Eval of the effective set
// against the dense pipeline, then re-verifies the committed embedding
// against the edge-aware host view.
func evalSessionCharged(t *testing.T, g *Graph, ses *Session, c *fault.Charger, scDense *Scratch, label string) {
	t.Helper()
	sessionDenseStep(t, g, ses, c.Effective(), scDense, label)
	res, err := ses.Eval(c.Effective())
	if err != nil {
		return // unhealthy episode; equivalence already checked above
	}
	host := NewHostView(g, c.Effective(), c.Edges())
	if err := res.Embedding.Verify(host); err != nil {
		t.Fatalf("%s: embedding failed edge-aware verification: %v", label, err)
	}
}

// TestSessionEdgeChargingEquivalence2D: 12 seeds of mixed node+edge
// churn at d=2, every state bit-identical to the dense pipeline on the
// charged set and edge-fault-free under independent verification.
func TestSessionEdgeChargingEquivalence2D(t *testing.T) {
	g := mustGraph(t, testParams2D())
	sc := NewScratch(1)
	scDense := NewScratch(0)
	ses := g.NewSession(sc, ExtractOptions{})
	var nbuf, eff []int
	for seed := uint64(0); seed < 12; seed++ {
		ses.Reset()
		c := fault.NewCharger(g.NumNodes())
		r := rng.NewPCG(8024, seed)
		for step := 0; step < 10; step++ {
			move := edgeChurnStep(r, g, c, ses, &nbuf, &eff)
			evalSessionCharged(t, g, ses, c, scDense,
				fmt.Sprintf("seed=%d step=%d (%s, %d nodes + %d edges)",
					seed, step, move, c.Nodes().Count(), c.Edges().Count()))
		}
	}
}

// TestSessionEdgeChargingEquivalence3D is the same suite on the
// 9.4M-node d=3 host (fewer steps; the dense comparator dominates).
func TestSessionEdgeChargingEquivalence3D(t *testing.T) {
	if testing.Short() {
		t.Skip("9.4M-node instance")
	}
	g := mustGraph(t, Params{D: 3, W: 4, Pitch: 16, Scale: 1})
	sc := NewScratch(1)
	scDense := NewScratch(0)
	ses := g.NewSession(sc, ExtractOptions{})
	var nbuf, eff []int
	for seed := uint64(0); seed < 6; seed++ {
		ses.Reset()
		c := fault.NewCharger(g.NumNodes())
		r := rng.NewPCG(8324, seed)
		for step := 0; step < 3; step++ {
			move := edgeChurnStep(r, g, c, ses, &nbuf, &eff)
			evalSessionCharged(t, g, ses, c, scDense,
				fmt.Sprintf("d=3 seed=%d step=%d (%s)", seed, step, move))
		}
	}
}

// TestSessionEdgeOrderIndependence drives the same edge-fault set into
// two sessions in different report orders (and endpoint orientations):
// the committed embeddings must be bit-identical, because the charged
// set is a pure function of the fault sets.
func TestSessionEdgeOrderIndependence(t *testing.T) {
	g := mustGraph(t, testParams2D())
	r := rng.NewPCG(9024, 1)
	var nbuf []int
	edges := make([]fault.Edge, 0, 6)
	seen := map[fault.Edge]bool{}
	for len(edges) < 6 {
		var u, v int
		u, v, nbuf = randomHostEdge(r, g, nbuf)
		e := fault.CanonEdge(u, v)
		if !seen[e] {
			seen[e] = true
			edges = append(edges, e)
		}
	}
	nodes := []int{g.NodeIndex(40, 40), g.NodeIndex(300, 120)}

	run := func(order []fault.Edge, flip bool) []int {
		sc := NewScratch(1)
		ses := g.NewSession(sc, ExtractOptions{})
		c := fault.NewCharger(g.NumNodes())
		var eff []int
		for _, v := range nodes {
			if _, e := c.AddNode(v); e >= 0 {
				eff = append(eff, e)
			}
		}
		for _, ed := range order {
			u, v := ed.U, ed.V
			if flip {
				u, v = v, u
			}
			if _, e := c.AddEdge(u, v); e >= 0 {
				eff = append(eff, e)
			}
		}
		ses.NoteAdded(eff)
		res, err := ses.Eval(c.Effective())
		if err != nil {
			t.Fatalf("eval failed: %v", err)
		}
		return append([]int(nil), res.Embedding.Map...)
	}

	ref := run(edges, false)
	rev := make([]fault.Edge, len(edges))
	for i, e := range edges {
		rev[len(edges)-1-i] = e
	}
	if got := run(rev, true); !sliceEq(ref, got) {
		t.Fatal("embedding depends on edge-fault report order")
	}
}

func sliceEq(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
