package core

import (
	"errors"
	"fmt"
	"testing"

	"ftnet/internal/fault"
	"ftnet/internal/rng"
)

// Golden equivalence suite for the bidirectional delta-evaluation engine:
// every Session state reached through an arbitrary interleaving of fault
// additions and removals must be bit-identical — outcome class, bands,
// embedding — to a from-scratch dense evaluation of the same fault set.
// The removal direction is what PR 4 added: a cleared fault heals columns
// back toward the template, exercising the previous-commit side of the
// two-sided dirty diff.

// evalSessionBoth compares one Session.Eval against a from-scratch dense
// evaluation of the same fault set: outcome class, bands and embedding
// must be bit-identical.
func evalSessionBoth(t *testing.T, g *Graph, ses *Session, faults *fault.Set, label string) {
	t.Helper()
	resIncr, errIncr := ses.Eval(faults)
	resDense, errDense := g.ContainTorus(faults, ExtractOptions{Dense: true})
	if (errIncr == nil) != (errDense == nil) {
		t.Fatalf("%s: outcome mismatch: session err=%v, dense err=%v", label, errIncr, errDense)
	}
	if errIncr != nil {
		var us, ud *UnhealthyError
		if errors.As(errIncr, &us) != errors.As(errDense, &ud) {
			t.Fatalf("%s: error class mismatch: session %v, dense %v", label, errIncr, errDense)
		}
		return
	}
	for gi := 0; gi < resDense.Bands.K(); gi++ {
		for z := 0; z < g.NumCols; z++ {
			if resDense.Bands.Value(gi, z) != resIncr.Bands.Value(gi, z) {
				t.Fatalf("%s: band %d column %d: dense %d, session %d",
					label, gi, z, resDense.Bands.Value(gi, z), resIncr.Bands.Value(gi, z))
			}
		}
	}
	for i := range resDense.Embedding.Map {
		if resDense.Embedding.Map[i] != resIncr.Embedding.Map[i] {
			t.Fatalf("%s: embedding differs at guest node %d: dense %d, session %d",
				label, i, resDense.Embedding.Map[i], resIncr.Embedding.Map[i])
		}
	}
}

// churnStep mutates faults by one random churn move — a Bernoulli batch
// of additions or a random healing pass — reports the delta to the
// session, and returns a label describing the move.
func churnStep(r rng.Source, faults *fault.Set, ses *Session, addRate float64, buf *[]int) string {
	if r.Float64() < 0.55 || faults.Count() == 0 {
		*buf = faults.BernoulliRecord(r, addRate, (*buf)[:0])
		ses.NoteAdded(*buf)
		return fmt.Sprintf("add %d", len(*buf))
	}
	*buf = faults.RemoveRecord(r, 0.2+0.6*r.Float64(), (*buf)[:0])
	ses.NoteCleared(*buf)
	return fmt.Sprintf("clear %d", len(*buf))
}

// TestSessionInterleavingEquivalence2D is the golden removal-path suite
// at d=2: 20 seeds of random add/remove interleavings, every state
// checked bit-identical against the dense pipeline.
func TestSessionInterleavingEquivalence2D(t *testing.T) {
	g := mustGraph(t, testParams2D())
	sc := NewScratch(1)
	ses := g.NewSession(sc, ExtractOptions{})
	pThm := g.P.TheoremFailureProb()
	var buf []int
	for seed := uint64(0); seed < 20; seed++ {
		ses.Reset()
		faults := sc.Faults(g.NumNodes())
		r := rng.NewPCG(2024, seed)
		// Mix sparse and heavy regimes so interleavings cross the
		// unhealthy boundary in both directions.
		addRate := pThm * (1 + float64(seed%4)*8)
		for step := 0; step < 12; step++ {
			move := churnStep(r, faults, ses, addRate, &buf)
			evalSessionBoth(t, g, ses, faults,
				fmt.Sprintf("seed=%d step=%d (%s, %d faults)", seed, step, move, faults.Count()))
		}
	}
}

// TestSessionInterleavingEquivalence3D is the same suite on the
// 9.4M-node d=3 host (fewer steps per seed; the dense comparator
// dominates the cost).
func TestSessionInterleavingEquivalence3D(t *testing.T) {
	if testing.Short() {
		t.Skip("9.4M-node instance")
	}
	g := mustGraph(t, Params{D: 3, W: 4, Pitch: 16, Scale: 1})
	sc := NewScratch(1)
	scDense := NewScratch(0)
	ses := g.NewSession(sc, ExtractOptions{})
	var buf, cleared []int
	for seed := uint64(0); seed < 20; seed++ {
		ses.Reset()
		faults := sc.Faults(g.NumNodes())
		r := rng.NewPCG(3024, seed)
		// Three moves per seed: add a handful, churn once, heal fully —
		// the heal exercises whole-footprint restoration at d=3.
		for i := 0; i < 3+int(seed%3); i++ {
			buf = append(buf[:0], r.Intn(g.NumNodes()))
			faults.Add(buf[0])
			ses.NoteAdded(buf)
		}
		sessionDenseStep(t, g, ses, faults, scDense, fmt.Sprintf("d=3 seed=%d grown", seed))
		cleared = faults.RemoveRecord(r, 0.6, cleared[:0])
		ses.NoteCleared(cleared)
		sessionDenseStep(t, g, ses, faults, scDense, fmt.Sprintf("d=3 seed=%d healed", seed))
	}
}

// sessionDenseStep is evalSessionBoth with a reusable dense-side scratch:
// at d=3 the dense comparator would otherwise allocate ~100 MB per step.
func sessionDenseStep(t *testing.T, g *Graph, ses *Session, faults *fault.Set, scDense *Scratch, label string) {
	t.Helper()
	resIncr, errIncr := ses.Eval(faults)
	resDense, errDense := g.ContainTorus(faults, ExtractOptions{Dense: true, Scratch: scDense})
	if (errIncr == nil) != (errDense == nil) {
		t.Fatalf("%s: outcome mismatch: session err=%v, dense err=%v", label, errIncr, errDense)
	}
	if errIncr != nil {
		var us, ud *UnhealthyError
		if errors.As(errIncr, &us) != errors.As(errDense, &ud) {
			t.Fatalf("%s: error class mismatch: session %v, dense %v", label, errIncr, errDense)
		}
		return
	}
	for i := range resDense.Embedding.Map {
		if resDense.Embedding.Map[i] != resIncr.Embedding.Map[i] {
			t.Fatalf("%s: embedding differs at guest node %d: dense %d, session %d",
				label, i, resDense.Embedding.Map[i], resIncr.Embedding.Map[i])
		}
	}
}

// TestSessionHealToTemplate drives explicit heal-to-empty transitions:
// after clearing every fault the session state must be value-identical
// to the all-defaults template, and a subsequent add must still be
// incremental (warm diff, not a cold rebuild).
func TestSessionHealToTemplate(t *testing.T) {
	g := mustGraph(t, testParams2D())
	sc := NewScratch(1)
	ses := g.NewSession(sc, ExtractOptions{})
	faults := fault.NewSet(g.NumNodes())
	nodes := []int{g.NodeIndex(100, 100), g.NodeIndex(400, 300), g.NodeIndex(250, 200)}
	for _, u := range nodes {
		faults.Add(u)
	}
	ses.NoteAdded(nodes)
	evalSessionBoth(t, g, ses, faults, "grown")
	if !ses.warm {
		t.Fatal("session not warm after first Eval")
	}
	// Heal one at a time down to empty; every intermediate state must be
	// exact, and the engine must stay on the warm diff path throughout.
	for i, u := range nodes {
		faults.Remove(u)
		ses.NoteCleared(nodes[i : i+1])
		evalSessionBoth(t, g, ses, faults, fmt.Sprintf("healed %d", i))
		if !ses.warm {
			t.Fatalf("session went cold healing fault %d", i)
		}
	}
	if got := ses.cur.DirtyCount(); got != 0 {
		t.Fatalf("fully healed session still has %d dirty columns", got)
	}
	// Forward again: the empty-state diff must rebuild the footprint.
	faults.Add(nodes[0])
	ses.NoteAdded(nodes[:1])
	evalSessionBoth(t, g, ses, faults, "re-grown")
}

// TestSessionUnhealthyRecovery pins the warm-state contract across
// failures in both directions: an unhealthy Eval (too-dense cluster)
// leaves the last healthy state intact, and a removal that heals the
// cluster back below the threshold must produce the exact dense result
// by diffing against that retained state.
func TestSessionUnhealthyRecovery(t *testing.T) {
	g := mustGraph(t, testParams2D())
	sc := NewScratch(1)
	ses := g.NewSession(sc, ExtractOptions{})
	faults := fault.NewSet(g.NumNodes())

	base := []int{g.NodeIndex(100, 100)}
	faults.Add(base[0])
	ses.NoteAdded(base)
	evalSessionBoth(t, g, ses, faults, "healthy base")

	// A full row of one tile violates the pigeonhole residue condition.
	var cluster []int
	row := 300
	for c := 200; c < 200+g.P.Tile(); c++ {
		u := g.NodeIndex(row, c)
		if !faults.Has(u) {
			faults.Add(u)
			cluster = append(cluster, u)
		}
	}
	for r := row; r < row+2*g.P.W; r++ {
		u := g.NodeIndex(r, 210)
		if !faults.Has(u) {
			faults.Add(u)
			cluster = append(cluster, u)
		}
	}
	ses.NoteAdded(cluster)
	if _, err := ses.Eval(faults); err == nil {
		t.Fatal("dense cluster unexpectedly healthy; strengthen the pattern")
	} else {
		var ue *UnhealthyError
		if !errors.As(err, &ue) {
			t.Fatalf("expected UnhealthyError, got %v", err)
		}
	}
	// Heal the cluster: back to the single-fault state, evaluated warm.
	faults.RemoveAll(cluster)
	ses.NoteCleared(cluster)
	evalSessionBoth(t, g, ses, faults, "healed after unhealthy")
	if !ses.warm {
		t.Fatal("session went cold across the unhealthy episode")
	}
}

// TestSessionChurnSurvivesFailedEval pins the bookkeeping behind the
// fail -> heal -> Reembed contract: churn columns reported through
// NoteAdded/NoteCleared must survive a failed (unhealthy) Eval — they
// are consumed only by a successful commit — so the eventual successful
// Eval re-verifies every column mutated since the last commit against
// exactly its own fault set.
func TestSessionChurnSurvivesFailedEval(t *testing.T) {
	g := mustGraph(t, testParams2D())
	sc := NewScratch(1)
	ses := g.NewSession(sc, ExtractOptions{})
	faults := fault.NewSet(g.NumNodes())

	base := []int{g.NodeIndex(100, 100)}
	faults.Add(base[0])
	ses.NoteAdded(base)
	if _, err := ses.Eval(faults); err != nil {
		t.Fatal(err)
	}
	if len(ses.churnCols) != 0 {
		t.Fatalf("successful Eval left %d churn columns pending", len(ses.churnCols))
	}

	// An unmaskable pattern: a full host column.
	var killer []int
	col := 150
	for r := 0; r < g.P.M(); r++ {
		u := g.NodeIndex(r, col)
		faults.Add(u)
		killer = append(killer, u)
	}
	ses.NoteAdded(killer)
	if _, err := ses.Eval(faults); err == nil {
		t.Fatal("full-column pattern unexpectedly tolerated")
	}
	if len(ses.churnCols) < len(killer) {
		t.Fatalf("failed Eval dropped churn: %d columns pending, want >= %d", len(ses.churnCols), len(killer))
	}

	// Churn reported *during* the failed episode accumulates too.
	extra := []int{g.NodeIndex(30, 60)}
	faults.Add(extra[0])
	ses.NoteAdded(extra)
	pending := len(ses.churnCols)
	if pending < len(killer)+1 {
		t.Fatalf("churn recorded during failure lost: %d pending", pending)
	}

	// Heal and commit: the pending churn is consumed by the successful
	// Eval, and the state matches the dense pipeline bit for bit.
	faults.RemoveAll(killer)
	ses.NoteCleared(killer)
	evalSessionBoth(t, g, ses, faults, "healed after failed eval")
	if len(ses.churnCols) != 0 {
		t.Fatalf("successful Eval left %d churn columns pending", len(ses.churnCols))
	}
}
