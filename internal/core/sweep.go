// Coupled rate-ladder support for the Theorem 2 pipeline.
//
// A SweepTrial threads ONE Monte-Carlo trial through an entire fault-rate
// ladder p_1 < p_2 < ... < p_k under nested common-random-numbers
// coupling: consecutive Eval calls see growing fault sets (fault.Set.
// Extend), and each rung reuses the previous rung's placement, extraction
// and verification state, paying only for the columns whose band values
// actually changed.
//
// All of the incremental machinery lives in the bidirectional
// delta-evaluation engine (Session, session.go); a SweepTrial is its
// monotone, grow-only client. The result of every rung is bit-identical
// to a from-scratch dense evaluation on the same fault set (the sweep
// equivalence tests pin this), which is what lets the curve engine skip
// early-stopped rungs without perturbing later ones.
package core

import "ftnet/internal/fault"

// SweepTrial carries one coupled rate-ladder trial through the pipeline:
// a Session driven with monotone, grow-only fault sets. It wraps one
// Scratch and, like it, must never be shared by concurrent trials; it
// stays valid across trials (call Reset at each trial start).
type SweepTrial struct {
	ses *Session
}

// NewSweepTrial wraps sc for coupled ladder evaluation on g. opts.Scratch
// is forced to sc; opts.Dense degrades every rung to the independent
// dense pipeline (the ablation mode).
func (g *Graph) NewSweepTrial(sc *Scratch, opts ExtractOptions) *SweepTrial {
	return &SweepTrial{ses: g.NewSession(sc, opts)}
}

// Reset starts a new trial: the next Eval rebuilds the pipeline state
// from scratch instead of diffing against the previous trial's last rung.
func (st *SweepTrial) Reset() { st.ses.Reset() }

// NoteFaults records newly added fault indices (as returned by
// fault.Set.Extend) so the next Eval re-certifies their columns even when
// no band moved — e.g. a fault landing on an already-masked row.
func (st *SweepTrial) NoteFaults(added []int) { st.ses.NoteAdded(added) }

// Eval runs the full pipeline — place, extract, verify — on the trial's
// current fault set and returns the survival proof, reusing as much of
// the previous rung's work as the band-value diff allows. The Result
// aliases the SweepTrial and is valid only until the next Eval or Reset.
// An *UnhealthyError is a survival failure (state stays warm: the next,
// larger rung diffs against the last healthy rung); other errors are bugs.
//
//ftnet:hotpath
func (st *SweepTrial) Eval(faults *fault.Set) (*Result, error) { return st.ses.Eval(faults) }
