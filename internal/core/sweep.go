// Coupled rate-ladder support for the Theorem 2 pipeline.
//
// A SweepTrial threads ONE Monte-Carlo trial through an entire fault-rate
// ladder p_1 < p_2 < ... < p_k under nested common-random-numbers
// coupling: consecutive Eval calls see growing fault sets (fault.Set.
// Extend), and each rung reuses the previous rung's placement, extraction
// and verification state, paying only for the columns whose band values
// actually changed.
//
// The reuse argument is the same locality/path-independence argument the
// per-trial fast path (locality.go) makes against the all-defaults
// template, applied between two consecutive band families instead:
//
//   - Placement (Lemmas 5, 9-11) makes every column's band values a pure
//     function of the pinned corners in its own tile cell, so two nested
//     rungs' families differ only inside the footprints of the boxes that
//     changed. Eval detects those columns by value diff over the two
//     families' dirty sets — bit-exact, independent of how boxes moved —
//     and revalidates only them (bands.ValidateColumns).
//   - Extraction (Lemmas 6-7): the canonical row vector of a column whose
//     bands did not change, connected to the anchor column 0 through
//     unchanged columns, is itself unchanged (every transfer along the
//     path is identical). Vectors are re-derived only for changed columns
//     and for unchanged "island" components whose first re-derived contact
//     disagrees with the kept vector (Lemma 7 makes each island
//     all-or-nothing, so one O(n) comparison per boundary contact
//     decides the whole component).
//   - Verification re-certifies exactly the deviating columns whose
//     vector was re-derived, the deviating neighbors of re-derived
//     columns (their cross-column edges face new vectors), and the
//     deviating columns that received new faults; everything else is
//     covered by the previous rung's certification plus the template
//     certificate.
//
// The result of every rung is bit-identical to a from-scratch dense
// evaluation on the same fault set (the sweep equivalence tests pin
// this), which is what lets the curve engine skip early-stopped rungs
// without perturbing later ones.
package core

import (
	"fmt"

	"ftnet/internal/bands"
	"ftnet/internal/fault"
)

// Column states during one Eval's incremental extraction.
const (
	swKept      uint8 = iota // bands unchanged, vector provisionally kept
	swChanged                // band values changed, vector must be re-derived
	swAnchor                 // unchanged and connected to column 0: trusted
	swConfirmed              // unchanged island column whose kept vector was re-derived and matched
	swAssigned               // vector re-derived this rung
)

// SweepTrial carries one coupled rate-ladder trial through the pipeline.
// It owns two copy-on-write band families (rungs alternate between them
// so the previous rung's values survive for diffing) and the bookkeeping
// of which columns each rung actually recomputed. A SweepTrial wraps one
// Scratch and, like it, must never be shared by concurrent trials; it
// stays valid across trials (call Reset at each trial start).
type SweepTrial struct {
	g    *Graph
	sc   *Scratch
	opts ExtractOptions

	bsA, bsB *bands.Set
	cur      *bands.Set // family described by the scratch's rowmap/embedding state
	warm     bool       // scratch state valid for incremental reuse against cur

	touched   []int32 // columns re-derived at any rung of this trial (== sc.prevDirty)
	deltaCols []int32 // columns of faults added since the last successful rung

	mark    []int32 // per-column generation stamps (diff and verify-set dedup)
	gen     int32
	state   []uint8
	changed []int32
	queue   []int
	recomp  []int32 // columns whose vector was re-derived this rung
	oldDev  []bool  // dev flag each recomp column had before re-derivation
	pending []int32
	verify  []int32
	nbuf    []int
	ncoord  []int
}

// NewSweepTrial wraps sc for coupled ladder evaluation on g. opts.Scratch
// is forced to sc; opts.Dense degrades every rung to the independent
// dense pipeline (the ablation mode).
func (g *Graph) NewSweepTrial(sc *Scratch, opts ExtractOptions) *SweepTrial {
	opts.Scratch = sc
	return &SweepTrial{g: g, sc: sc, opts: opts}
}

// Reset starts a new trial: the next Eval rebuilds the pipeline state
// from scratch instead of diffing against the previous trial's last rung.
func (st *SweepTrial) Reset() {
	st.warm = false
	st.deltaCols = st.deltaCols[:0]
}

// NoteFaults records newly added fault indices (as returned by
// fault.Set.Extend) so the next Eval re-certifies their columns even when
// no band moved — e.g. a fault landing on an already-masked row.
func (st *SweepTrial) NoteFaults(added []int) {
	for _, idx := range added {
		st.deltaCols = append(st.deltaCols, int32(idx%st.g.NumCols))
	}
}

// Eval runs the full pipeline — place, extract, verify — on the trial's
// current fault set and returns the survival proof, reusing as much of
// the previous rung's work as the band-value diff allows. The Result
// aliases the SweepTrial and is valid only until the next Eval or Reset.
// An *UnhealthyError is a survival failure (state stays warm: the next,
// larger rung diffs against the last healthy rung); other errors are bugs.
func (st *SweepTrial) Eval(faults *fault.Set) (*Result, error) {
	g, sc := st.g, st.sc
	if st.opts.Dense || sc == nil {
		return g.ContainTorus(faults, st.opts)
	}
	tpl, err := g.template()
	if err != nil {
		// No usable template (e.g. ablated edge classes): every rung runs
		// the standalone pipeline, which reports such failures on its own
		// terms.
		return g.ContainTorus(faults, st.opts)
	}
	st.ensureBuffers()
	target := st.bsA
	if st.cur == st.bsA {
		target = st.bsB
	}
	bs, rep, err := g.placeBandsInto(faults, st.opts, target, true)
	if err != nil {
		return nil, err // unhealthy placements leave the warm state untouched
	}
	res := &Result{Bands: bs, Report: rep}

	if !st.warm || !sc.fastInit || sc.fastGraph != g {
		return st.evalCold(bs, faults, tpl, res)
	}

	// Diff the new family against the last successful rung's: every value
	// difference lies inside the union of the two dirty sets.
	st.gen++
	st.changed = st.changed[:0]
	for _, list := range [2][]int32{st.cur.DirtyColumns(), bs.DirtyColumns()} {
		for _, z32 := range list {
			if st.mark[z32] == st.gen {
				continue
			}
			st.mark[z32] = st.gen
			if !bs.ColumnEqual(st.cur, int(z32)) {
				st.changed = append(st.changed, z32)
			}
		}
	}
	if err := bs.ValidateColumns(st.changed); err != nil {
		return nil, fmt.Errorf("core: placed bands invalid: %w", err)
	}
	if err := g.checkAllMasked(bs, faults); err != nil {
		return nil, err
	}
	if err := st.extractIncremental(bs, tpl); err != nil {
		return nil, err
	}
	if err := st.verifyIncremental(faults, tpl); err != nil {
		return nil, err
	}
	res.Embedding = sc.emb
	st.commit(bs)
	return res, nil
}

// ensureBuffers sizes the per-column working state to the graph.
func (st *SweepTrial) ensureBuffers() {
	g := st.g
	numCols := g.NumCols
	if st.bsA == nil || st.bsA.K() != g.P.K() || st.bsA.M != g.P.M() || st.bsA.NumColumns() != numCols {
		p := g.P
		st.bsA = bands.NewSet(p.M(), p.W, g.ColShape, p.K())
		st.bsB = bands.NewSet(p.M(), p.W, g.ColShape, p.K())
		st.cur = nil
		st.warm = false
	}
	if cap(st.mark) < numCols {
		st.mark = make([]int32, numCols)
		st.state = make([]uint8, numCols)
		st.gen = 0
	}
	st.mark = st.mark[:numCols]
	st.state = st.state[:numCols]
	if cap(st.ncoord) < g.P.D-1 {
		st.ncoord = make([]int, g.P.D-1)
	}
	st.ncoord = st.ncoord[:g.P.D-1]
}

// evalCold runs the standalone extract+verify path (exactly ContainTorus
// after placement) and, when it leaves the scratch in the reusable
// fast-path state, marks the trial warm for the next rung.
func (st *SweepTrial) evalCold(bs *bands.Set, faults *fault.Set, tpl *template, res *Result) (*Result, error) {
	g, sc := st.g, st.sc
	if err := bs.ValidateDirty(); err != nil {
		return nil, fmt.Errorf("core: placed bands invalid: %w", err)
	}
	if err := g.checkAllMasked(bs, faults); err != nil {
		return nil, err
	}
	emb, err := g.extractFast(bs, tpl, st.opts)
	if err != nil {
		return nil, err
	}
	if err := g.verifyFast(emb, bs, faults, tpl, sc); err != nil {
		return nil, err
	}
	res.Embedding = emb
	st.commit(bs)
	return res, nil
}

// commit records a successful rung: the scratch's rowmap/dev/embedding
// state now describes bs, and sc.prevDirty (the inter-trial restore list)
// must cover every column deviating from the template — the union of
// everything any rung of this trial re-derived.
func (st *SweepTrial) commit(bs *bands.Set) {
	sc := st.sc
	st.cur = bs
	st.warm = sc.fastInit && sc.fastGraph == st.g
	st.touched = append(st.touched[:0], sc.prevDirty...)
	st.deltaCols = st.deltaCols[:0]
	if len(st.recomp) > 0 {
		st.recomp = st.recomp[:0]
		st.oldDev = st.oldDev[:0]
	}
}

// extractIncremental re-derives row vectors for exactly the columns that
// need it: the changed columns, plus any unchanged island whose kept
// vectors no longer match a re-derived boundary contact. Kept columns'
// vectors stay canonical by Lemma 7 (see the package comment), so the
// embedding is bit-identical to a from-scratch extraction.
func (st *SweepTrial) extractIncremental(bs *bands.Set, tpl *template) error {
	g, sc := st.g, st.sc
	n := g.P.N()
	numCols := g.NumCols
	rowmap, rowflat, dev := sc.rowmap, sc.rowflat, sc.devCols
	base := tpl.defaultRows

	state := st.state
	for z := range state {
		state[z] = swKept
	}
	for _, z32 := range st.changed {
		state[z32] = swChanged
	}
	st.recomp = st.recomp[:0]
	st.oldDev = st.oldDev[:0]

	queue := st.queue[:0]
	nbuf := st.nbuf
	if state[0] == swChanged {
		// The anchor's own bands changed. Its canonical vector is directly
		// recomputable (Lemma 6 anchors guest row 0 just above band 0 of
		// column 0), so it seeds the flood pre-assigned; no free trust
		// region exists, and every kept component is validated through
		// island probes on first contact.
		anchor := bs.UnmaskedRows(0, rowflat[:0:n])
		if len(anchor) != n {
			return fmt.Errorf("core: column 0 has %d unmasked rows, want %d", len(anchor), n)
		}
		st.oldDev = append(st.oldDev, dev[0])
		rowmap[0] = anchor
		dev[0] = !int32Equal(anchor, base)
		state[0] = swAssigned
		st.recomp = append(st.recomp, 0)
		queue = append(queue, 0)
	} else {
		// Trust region: the component of unchanged columns containing the
		// anchor column 0 keeps its vectors verbatim.
		state[0] = swAnchor
		queue = append(queue, 0)
		for head := 0; head < len(queue); head++ {
			z := queue[head]
			nbuf = g.columnNeighbors(z, nbuf[:0], st.ncoord)
			for _, zn := range nbuf {
				if state[zn] == swKept {
					state[zn] = swAnchor
					queue = append(queue, zn)
				}
			}
		}
		queue = queue[:0]
	}

	// Re-derive the changed region, flooding BFS out of trusted columns.
	// Seeding may need several passes: a changed component enclosed by
	// not-yet-confirmed islands becomes seedable only after those islands
	// are contacted. assign transfers zFrom -> zTo into zTo's backing slot.
	assign := func(zFrom, zTo int) error {
		dst := rowflat[zTo*n : (zTo+1)*n]
		st.oldDev = append(st.oldDev, dev[zTo])
		if err := g.transferFast(bs, base, sc, zFrom, zTo, rowmap[zFrom], dst, dev); err != nil {
			return err
		}
		rowmap[zTo] = dst
		state[zTo] = swAssigned
		st.recomp = append(st.recomp, int32(zTo))
		queue = append(queue, zTo)
		return nil
	}
	st.pending = append(st.pending[:0], st.changed...)
	for len(st.pending) > 0 {
		// Seed every pending changed column that touches a trusted one.
		rest := st.pending[:0]
		progress := false
		for _, z32 := range st.pending {
			z := int(z32)
			if state[z] != swChanged {
				progress = true // assigned by an earlier flood
				continue
			}
			seeded := false
			nbuf = g.columnNeighbors(z, nbuf[:0], st.ncoord)
			for _, zn := range nbuf {
				if s := state[zn]; s == swAnchor || s == swConfirmed || s == swAssigned {
					if err := assign(zn, z); err != nil {
						return err
					}
					seeded = true
					break
				}
			}
			if seeded {
				progress = true
			} else {
				rest = append(rest, z32)
			}
		}
		st.pending = rest
		if !progress && len(st.pending) > 0 {
			return fmt.Errorf("core: internal: %d changed columns unreachable from any trusted column", len(st.pending))
		}
		// Flood: walk the frontier of trusted vectors, re-deriving changed
		// columns and probing kept islands on first contact. A confirmed
		// island column spreads confirmation through its whole component
		// without further O(n) comparisons (Lemma 7 makes the component
		// all-or-nothing) and is itself a valid transfer source, so trust
		// crosses islands to reach changed regions on their far side.
		for head := 0; head < len(queue); head++ {
			z := queue[head]
			confirmed := state[z] == swConfirmed
			nbuf = g.columnNeighbors(z, nbuf[:0], st.ncoord)
			for _, zn := range nbuf {
				switch state[zn] {
				case swChanged:
					if err := assign(z, zn); err != nil {
						return err
					}
				case swKept:
					if confirmed {
						// Same island as an already-validated column.
						state[zn] = swConfirmed
						queue = append(queue, zn)
						continue
					}
					// First contact with a kept island: re-derive its vector
					// once. If it matches, the whole component is valid; if
					// not, the island genuinely shifted — flood into it.
					tmp := sc.cleanVecBuf(n)
					oldDev := dev[zn]
					if err := g.transferFast(bs, base, sc, z, zn, rowmap[z], tmp, dev); err != nil {
						return err
					}
					if int32Equal(tmp, rowmap[zn]) {
						dev[zn] = oldDev
						state[zn] = swConfirmed
						queue = append(queue, zn)
						continue
					}
					dst := rowflat[zn*n : (zn+1)*n]
					copy(dst, tmp)
					rowmap[zn] = dst
					st.oldDev = append(st.oldDev, oldDev)
					state[zn] = swAssigned
					st.recomp = append(st.recomp, int32(zn))
					queue = append(queue, zn)
				}
			}
		}
		queue = queue[:0]
	}
	st.queue = queue
	st.nbuf = nbuf

	// Sync the embedding for re-derived columns: deviating vectors are
	// written out, restored-to-base vectors fall back to the default map.
	e := sc.emb
	for i, z32 := range st.recomp {
		z := int(z32)
		switch {
		case dev[z]:
			rows := rowmap[z]
			for j := 0; j < n; j++ {
				e.Map[j*numCols+z] = int(rows[j])*numCols + z
			}
		case st.oldDev[i]:
			for j := 0; j < n; j++ {
				e.Map[j*numCols+z] = int(base[j])*numCols + z
			}
		}
	}
	// Extend the inter-trial restore set: anything re-derived this rung
	// may now deviate from the template.
	st.gen++
	for _, z32 := range sc.prevDirty {
		st.mark[z32] = st.gen
	}
	for _, z32 := range st.recomp {
		if st.mark[z32] != st.gen {
			st.mark[z32] = st.gen
			sc.prevDirty = append(sc.prevDirty, z32)
		}
	}
	return nil
}

// verifyIncremental re-certifies the rung: every deviating column whose
// vector was re-derived, every deviating neighbor of a re-derived column
// (its cross-column edges face new vectors), and every deviating column
// that received a new fault since the last certified rung; plus the
// masked-under-default check for all faults in non-deviating columns.
func (st *SweepTrial) verifyIncremental(faults *fault.Set, tpl *template) error {
	g, sc := st.g, st.sc
	dev := sc.devCols
	e := sc.emb
	faultCol, fgen, err := g.verifyFaultPass(faults, tpl, sc, dev)
	if err != nil {
		return err
	}

	st.gen++
	gen := st.gen
	st.verify = st.verify[:0]
	add := func(z int) {
		if st.mark[z] != gen && dev[z] {
			st.mark[z] = gen
			st.verify = append(st.verify, int32(z))
		}
	}
	nbuf := st.nbuf
	for _, z32 := range st.recomp {
		z := int(z32)
		add(z)
		nbuf = g.columnNeighbors(z, nbuf[:0], st.ncoord)
		for _, zn := range nbuf {
			add(zn)
		}
	}
	for _, z32 := range st.deltaCols {
		add(int(z32))
	}
	st.nbuf = nbuf

	inSet := func(z int) bool { return st.mark[z] == gen }
	for _, z32 := range st.verify {
		z := int(z32)
		if err := g.verifyColumn(e, faults, sc, z, faultCol[z] == fgen,
			func(zn int) bool { return inSet(zn) && zn < z }); err != nil {
			return err
		}
	}
	return nil
}
