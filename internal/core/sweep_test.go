package core

import (
	"errors"
	"fmt"
	"testing"

	"ftnet/internal/fault"
	"ftnet/internal/rng"
)

// sweepRates is the E2-shaped 9-rung ladder used throughout the sweep
// tests: multiples of the theorem probability from well below threshold
// to deep collapse.
func sweepRates(g *Graph) []float64 {
	pThm := g.P.TheoremFailureProb()
	mults := []float64{0.5, 1, 2, 5, 10, 25, 50, 100, 250}
	out := make([]float64, len(mults))
	for i, m := range mults {
		out[i] = pThm * m
	}
	return out
}

// evalBoth compares one SweepTrial rung against a from-scratch dense
// evaluation of the same fault set: outcome class, bands and embedding
// must be bit-identical. The comparison itself lives with the Session
// engine (evalSessionBoth, session_test.go).
func evalBoth(t *testing.T, g *Graph, st *SweepTrial, faults *fault.Set, label string) {
	t.Helper()
	evalSessionBoth(t, g, st.ses, faults, label)
}

// TestSweepLadderEquivalence walks coupled 9-rung ladders across many
// trial streams and pins every rung's result to the dense pipeline —
// the golden test of the incremental placement/extraction/verification
// reuse between nested fault sets.
func TestSweepLadderEquivalence(t *testing.T) {
	g := mustGraph(t, testParams2D())
	rates := sweepRates(g)
	sc := NewScratch(1)
	st := g.NewSweepTrial(sc, ExtractOptions{})
	var added []int
	for seed := uint64(0); seed < 12; seed++ {
		st.Reset()
		faults := sc.Faults(g.NumNodes())
		stream := rng.NewPCG(seed, 1)
		prev := 0.0
		for r, rate := range rates {
			var err error
			added, err = faults.Extend(stream, prev, rate, added[:0])
			if err != nil {
				t.Fatal(err)
			}
			st.NoteFaults(added)
			prev = rate
			evalBoth(t, g, st, faults, fmt.Sprintf("seed=%d rung=%d (%d faults)", seed, r, faults.Count()))
		}
	}
}

// TestSweepSkippedRungEquivalence checks the contract the curve engine's
// per-rung early stopping relies on: evaluating only a subset of the
// rungs must leave the evaluated rungs' results bit-identical to a full
// walk, because each Eval is bit-exact regardless of the previous
// evaluation point.
func TestSweepSkippedRungEquivalence(t *testing.T) {
	g := mustGraph(t, testParams2D())
	rates := sweepRates(g)
	sc := NewScratch(1)
	st := g.NewSweepTrial(sc, ExtractOptions{})
	var added []int
	for seed := uint64(100); seed < 106; seed++ {
		st.Reset()
		faults := sc.Faults(g.NumNodes())
		stream := rng.NewPCG(seed, 1)
		prev := 0.0
		for r, rate := range rates {
			var err error
			added, err = faults.Extend(stream, prev, rate, added[:0])
			if err != nil {
				t.Fatal(err)
			}
			st.NoteFaults(added)
			prev = rate
			if r%2 == 1 {
				continue // skipped rung: sampling advanced, pipeline not run
			}
			evalBoth(t, g, st, faults, fmt.Sprintf("skip seed=%d rung=%d", seed, r))
		}
	}
}

// TestSweepCraftedTransitions drives rung transitions that target the
// incremental machinery's corner cases: a new box far from the old one
// (island between two changed regions on the d=2 column cycle), growth
// that merges two boxes, a fault added on an already-masked row (bands
// unchanged, fault check only), and a change touching the anchor
// column 0.
func TestSweepCraftedTransitions(t *testing.T) {
	g := mustGraph(t, testParams2D())
	tile := g.P.Tile()
	n := g.P.N()
	cases := []struct {
		label string
		rungs [][]int // cumulative fault nodes added per rung
	}{
		{"two-boxes-then-island-check", [][]int{
			{g.NodeIndex(100, 100)},
			{g.NodeIndex(400, 300)},
			{g.NodeIndex(250, 200)},
		}},
		{"merge", [][]int{
			{g.NodeIndex(100, 100)},
			{g.NodeIndex(100+tile, 100+tile)},
			{g.NodeIndex(100, 100+2*tile)},
		}},
		{"same-row-refault", [][]int{
			{g.NodeIndex(100, 100)},
			{g.NodeIndex(100, 101)}, // same tile, same masked row region
			{g.NodeIndex(100, 100+1)},
		}},
		{"anchor-touch", [][]int{
			{g.NodeIndex(200, 200)},
			{g.NodeIndex(300, 0)},
			{g.NodeIndex(300, n-1)},
		}},
		{"extension-then-growth", [][]int{
			{g.NodeIndex(2*tile, 200)}, // forces box extension
			{g.NodeIndex(2*tile+3, 200)},
			{g.NodeIndex(5*tile, 40)},
		}},
	}
	sc := NewScratch(1)
	st := g.NewSweepTrial(sc, ExtractOptions{})
	for _, c := range cases {
		st.Reset()
		faults := sc.Faults(g.NumNodes())
		for r, nodes := range c.rungs {
			for _, u := range nodes {
				faults.Add(u)
			}
			st.NoteFaults(nodes)
			evalBoth(t, g, st, faults, fmt.Sprintf("%s rung=%d", c.label, r))
		}
	}
}

// TestSweepNonMonotone drives Eval with a shrinking then shifting fault
// set: nothing in the diff machinery assumes nested rungs, and a column
// whose vector returns to the default base must restore its embedding
// slice (the oldDev path). This is the access pattern a coupled
// bisection would generate.
func TestSweepNonMonotone(t *testing.T) {
	g := mustGraph(t, testParams2D())
	sc := NewScratch(1)
	st := g.NewSweepTrial(sc, ExtractOptions{})
	st.Reset()
	x := g.NodeIndex(100, 100)
	y := g.NodeIndex(400, 300)
	steps := []struct {
		label string
		nodes []int
	}{
		{"both", []int{x, y}},
		{"drop-x", []int{y}},   // x's footprint returns to defaults
		{"swap", []int{x}},     // y's returns, x's comes back
		{"empty", nil},         // everything back to the template
		{"again", []int{x, y}}, // and forward again
	}
	for _, s := range steps {
		faults := fault.NewSet(g.NumNodes())
		for _, u := range s.nodes {
			faults.Add(u)
		}
		st.NoteFaults(s.nodes)
		evalBoth(t, g, st, faults, "non-monotone "+s.label)
	}
}

// TestSweepTrialReuseAcrossTrials runs several coupled trials back to
// back on one SweepTrial: the Reset + inter-trial restore path must leave
// no residue from the previous trial's ladder.
func TestSweepTrialReuseAcrossTrials(t *testing.T) {
	g := mustGraph(t, testParams2D())
	rates := sweepRates(g)
	sc := NewScratch(1)
	st := g.NewSweepTrial(sc, ExtractOptions{})
	var added []int
	for trial := uint64(0); trial < 6; trial++ {
		st.Reset()
		faults := sc.Faults(g.NumNodes())
		stream := rng.NewPCG(7, trial)
		prev := 0.0
		for r, rate := range rates {
			var err error
			added, err = faults.Extend(stream, prev, rate, added[:0])
			if err != nil {
				t.Fatal(err)
			}
			st.NoteFaults(added)
			prev = rate
			if r == 4 || r == 8 {
				// Only spot-check two rungs per trial; the cross-trial state
				// reuse is what is under test here.
				evalBoth(t, g, st, faults, fmt.Sprintf("trial=%d rung=%d", trial, r))
			} else if _, err := st.Eval(faults); err != nil {
				var ue *UnhealthyError
				if !errors.As(err, &ue) {
					t.Fatalf("trial=%d rung=%d: %v", trial, r, err)
				}
			}
		}
	}
}

// TestSweepFullFootprint pins the fast path's full-footprint mode (no
// clean frontier anywhere): dense equivalence at a rate whose boxes cover
// every column tile.
func TestSweepFullFootprint(t *testing.T) {
	g := mustGraph(t, testParams2D())
	sc := NewScratch(1)
	full := 0
	for seed := uint64(0); seed < 10; seed++ {
		faults := fault.NewSet(g.NumNodes())
		faults.Bernoulli(rng.New(9000+seed), 4e-5)
		resFast, errFast := g.ContainTorus(faults, ExtractOptions{Scratch: sc})
		resDense, errDense := g.ContainTorus(faults, ExtractOptions{Dense: true})
		if (errFast == nil) != (errDense == nil) {
			t.Fatalf("seed=%d: outcome mismatch: fast %v dense %v", seed, errFast, errDense)
		}
		if errFast != nil {
			continue
		}
		if resFast.Bands.DirtyCount() == g.NumCols {
			full++
		}
		for i := range resDense.Embedding.Map {
			if resDense.Embedding.Map[i] != resFast.Embedding.Map[i] {
				t.Fatalf("seed=%d: embedding differs at %d", seed, i)
			}
		}
	}
	if full == 0 {
		t.Error("no seed produced a full-footprint trial; raise the rate")
	}
}
