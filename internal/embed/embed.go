// Package embed represents guest-into-host embeddings and verifies them
// independently of the algorithms that produced them.
//
// Every construction in the paper claims that, after faults, the host still
// *contains* a fault-free torus or mesh as a subgraph. Verify checks that
// claim directly from first principles: the mapping must be injective, its
// image must avoid faulty nodes, and every guest edge must map to an
// existing, fault-free host edge. The verifier deliberately knows nothing
// about bands, supernodes or pigeonholes, so it cannot share a bug with the
// extraction logic.
package embed

import (
	"fmt"

	"ftnet/internal/torus"
)

// Host is the minimal host-network view required for verification.
type Host interface {
	// NumNodes returns the number of host nodes.
	NumNodes() int
	// Adjacent reports whether u and v are connected by a host edge.
	Adjacent(u, v int) bool
	// NodeFaulty reports whether host node u is faulty.
	NodeFaulty(u int) bool
	// EdgeFaulty reports whether host edge {u, v} is faulty. Hosts with
	// reliable edges return false.
	EdgeFaulty(u, v int) bool
}

// Embedding maps each node of a guest torus/mesh to a host node.
type Embedding struct {
	Guest *torus.Graph
	// Map[g] is the host node hosting guest node g.
	Map []int
}

// New allocates an embedding for the guest with an all-zero map.
func New(guest *torus.Graph) *Embedding {
	return &Embedding{Guest: guest, Map: make([]int, guest.N())}
}

// MeshRestriction converts a torus embedding into a mesh embedding of the
// same shape: the mesh's edges are a subset of the torus's (the paper's
// "and hence a fault-free d-dimensional mesh of the same size"), so the
// node map carries over verbatim.
func (e *Embedding) MeshRestriction() (*Embedding, error) {
	if e.Guest.Kind != torus.TorusKind {
		return nil, fmt.Errorf("embed: guest is already a %v", e.Guest.Kind)
	}
	mesh, err := torus.New(torus.MeshKind, e.Guest.Shape)
	if err != nil {
		return nil, err
	}
	return &Embedding{Guest: mesh, Map: append([]int(nil), e.Map...)}, nil
}

// Verify checks that the embedding realizes a fault-free copy of the guest
// inside the host. It returns nil on success and a descriptive error
// naming the first violated condition otherwise.
func (e *Embedding) Verify(h Host) error { return e.VerifyBuf(h, nil) }

// VerifyBuf is Verify with a caller-provided injectivity bitmap: seen
// must be all-false with length h.NumNodes() (nil allocates one).
// Monte-Carlo workers pass a per-worker buffer to avoid an N-sized
// allocation per trial; the check itself is identical.
func (e *Embedding) VerifyBuf(h Host, seen []bool) error {
	n := e.Guest.N()
	if len(e.Map) != n {
		return fmt.Errorf("embed: map has %d entries, guest has %d nodes", len(e.Map), n)
	}
	hostN := h.NumNodes()
	if len(seen) != hostN {
		seen = make([]bool, hostN)
	}
	for g, u := range e.Map {
		if u < 0 || u >= hostN {
			return fmt.Errorf("embed: guest node %d maps to out-of-range host node %d", g, u)
		}
		if seen[u] {
			return fmt.Errorf("embed: host node %d hosts two guest nodes (not injective)", u)
		}
		seen[u] = true
		if h.NodeFaulty(u) {
			return fmt.Errorf("embed: guest node %d maps to faulty host node %d", g, u)
		}
	}
	var badEdge error
	e.Guest.EachEdge(func(a, b int) {
		if badEdge != nil {
			return
		}
		u, v := e.Map[a], e.Map[b]
		if !h.Adjacent(u, v) {
			badEdge = fmt.Errorf("embed: guest edge (%d,%d) maps to non-adjacent host pair (%d,%d)", a, b, u, v)
			return
		}
		if h.EdgeFaulty(u, v) {
			badEdge = fmt.Errorf("embed: guest edge (%d,%d) maps to faulty host edge (%d,%d)", a, b, u, v)
		}
	})
	return badEdge
}
