package embed

import (
	"strings"
	"testing"

	"ftnet/internal/torus"
)

// ringHost is a cycle host with optional faulty nodes/edges for testing
// the verifier.
type ringHost struct {
	n          int
	faultyNode map[int]bool
	faultyEdge map[[2]int]bool
}

func (h *ringHost) NumNodes() int { return h.n }
func (h *ringHost) Adjacent(u, v int) bool {
	d := u - v
	if d < 0 {
		d = -d
	}
	return d == 1 || d == h.n-1
}
func (h *ringHost) NodeFaulty(u int) bool { return h.faultyNode[u] }
func (h *ringHost) EdgeFaulty(u, v int) bool {
	if u > v {
		u, v = v, u
	}
	return h.faultyEdge[[2]int{u, v}]
}

func ring(n int) *ringHost {
	return &ringHost{n: n, faultyNode: map[int]bool{}, faultyEdge: map[[2]int]bool{}}
}

func identityEmbedding(t *testing.T, n int) *Embedding {
	t.Helper()
	guest, err := torus.NewUniform(torus.TorusKind, 1, n)
	if err != nil {
		t.Fatal(err)
	}
	e := New(guest)
	for i := range e.Map {
		e.Map[i] = i
	}
	return e
}

func TestVerifyAccepts(t *testing.T) {
	e := identityEmbedding(t, 8)
	if err := e.Verify(ring(8)); err != nil {
		t.Errorf("identity embedding rejected: %v", err)
	}
}

func TestVerifyRejectsFaultyNode(t *testing.T) {
	e := identityEmbedding(t, 8)
	h := ring(8)
	h.faultyNode[3] = true
	if err := e.Verify(h); err == nil || !strings.Contains(err.Error(), "faulty host node") {
		t.Errorf("faulty node not caught: %v", err)
	}
}

func TestVerifyRejectsFaultyEdge(t *testing.T) {
	e := identityEmbedding(t, 8)
	h := ring(8)
	h.faultyEdge[[2]int{2, 3}] = true
	if err := e.Verify(h); err == nil || !strings.Contains(err.Error(), "faulty host edge") {
		t.Errorf("faulty edge not caught: %v", err)
	}
}

func TestVerifyRejectsNonInjective(t *testing.T) {
	e := identityEmbedding(t, 8)
	e.Map[1] = 0
	if err := e.Verify(ring(8)); err == nil || !strings.Contains(err.Error(), "injective") {
		t.Errorf("non-injective map not caught: %v", err)
	}
}

func TestVerifyRejectsNonEdge(t *testing.T) {
	e := identityEmbedding(t, 8)
	// Swap two distant images: breaks adjacency but stays injective.
	e.Map[0], e.Map[4] = e.Map[4], e.Map[0]
	if err := e.Verify(ring(8)); err == nil || !strings.Contains(err.Error(), "non-adjacent") {
		t.Errorf("broken adjacency not caught: %v", err)
	}
}

func TestVerifyRejectsOutOfRange(t *testing.T) {
	e := identityEmbedding(t, 8)
	e.Map[2] = 99
	if err := e.Verify(ring(8)); err == nil || !strings.Contains(err.Error(), "out-of-range") {
		t.Errorf("out-of-range map not caught: %v", err)
	}
}

func TestVerifyRejectsWrongLength(t *testing.T) {
	e := identityEmbedding(t, 8)
	e.Map = e.Map[:5]
	if err := e.Verify(ring(8)); err == nil {
		t.Error("short map not caught")
	}
}

func TestMeshRestriction(t *testing.T) {
	e := identityEmbedding(t, 8)
	mesh, err := e.MeshRestriction()
	if err != nil {
		t.Fatal(err)
	}
	if mesh.Guest.Kind != torus.MeshKind {
		t.Fatal("restriction did not produce a mesh")
	}
	// The mesh embedding verifies against the same host (fewer edges).
	if err := mesh.Verify(ring(8)); err != nil {
		t.Errorf("mesh restriction rejected: %v", err)
	}
	// The map is a copy, not an alias.
	mesh.Map[0] = 99
	if e.Map[0] == 99 {
		t.Error("MeshRestriction aliases the torus map")
	}
	// Restricting a mesh again fails.
	if _, err := mesh.MeshRestriction(); err == nil {
		t.Error("double restriction accepted")
	}
}
