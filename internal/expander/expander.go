// Package expander provides the expander-based baseline of the paper's
// Section 5: Alon and Chung's linear-sized fault-tolerant networks for the
// path (Theorem 12), generalized to the d-dimensional mesh by taking the
// direct product with a (d-1)-dimensional mesh of supernodes.
//
// The explicit expander is the Margulis-Gabber-Galil degree-8 graph on
// Z_q x Z_q. Alon-Chung's theorem is existential ("a long path survives");
// the constructive companion used here is the standard DFS + Posa-rotation
// long-path heuristic, whose success is asserted per trial by the
// experiment harness.
package expander

import (
	"fmt"
	"math"

	"ftnet/internal/rng"
)

// Graph is an undirected multigraph with materialized adjacency, used for
// the expander (whose adjacency is irregular enough that on-the-fly
// generation buys nothing).
type Graph struct {
	N   int
	adj [][]int32
}

// NewGabberGalil builds the Margulis-Gabber-Galil expander on Z_q x Z_q:
// node (x, y) connects to (x+y, y), (x+y+1, y), (x, y+x), (x, y+x+1) and
// the four inverses, all mod q. Degree 8 (as a multigraph; parallel edges
// and self-loops are kept, matching the standard analysis, but listed
// neighbors are deduplicated for simple-graph consumers).
func NewGabberGalil(q int) (*Graph, error) {
	if q < 2 {
		return nil, fmt.Errorf("expander: q = %d < 2", q)
	}
	n := q * q
	g := &Graph{N: n, adj: make([][]int32, n)}
	idx := func(x, y int) int32 { return int32(x*q + y) }
	seen := make(map[int32]struct{}, 8)
	for x := 0; x < q; x++ {
		for y := 0; y < q; y++ {
			u := idx(x, y)
			cands := []int32{
				idx((x+y)%q, y),
				idx((x+y+1)%q, y),
				idx((x-y+2*q)%q, y),
				idx((x-y-1+2*q)%q, y),
				idx(x, (y+x)%q),
				idx(x, (y+x+1)%q),
				idx(x, (y-x+2*q)%q),
				idx(x, (y-x-1+2*q)%q),
			}
			clear(seen)
			for _, v := range cands {
				if v == u {
					continue
				}
				if _, dup := seen[v]; dup {
					continue
				}
				seen[v] = struct{}{}
				g.adj[u] = append(g.adj[u], v)
			}
		}
	}
	// Symmetrize: T1 and its inverse generate each other's edges, but make
	// the invariant explicit and deduplicated.
	g.symmetrize()
	return g, nil
}

func (g *Graph) symmetrize() {
	for u := range g.adj {
		for _, v := range g.adj[u] {
			found := false
			for _, w := range g.adj[v] {
				if int(w) == u {
					found = true
					break
				}
			}
			if !found {
				g.adj[v] = append(g.adj[v], int32(u))
			}
		}
	}
}

// Neighbors returns the (deduplicated) neighbor list of u. The slice is
// owned by the graph; callers must not modify it.
func (g *Graph) Neighbors(u int) []int32 { return g.adj[u] }

// MaxDegree returns the largest neighbor-list length.
func (g *Graph) MaxDegree() int {
	max := 0
	for _, l := range g.adj {
		if len(l) > max {
			max = len(l)
		}
	}
	return max
}

// SecondEigenvalue estimates the normalized second eigenvalue via power
// iteration on the component orthogonal to the all-ones vector. A value
// bounded away from 1 certifies expansion (Gabber-Galil proves
// lambda <= 5*sqrt(2)/8 ~ 0.884 for the multigraph normalization).
func (g *Graph) SecondEigenvalue(iters int, r rng.Source) float64 {
	n := g.N
	v := make([]float64, n)
	for i := range v {
		v[i] = r.Float64() - 0.5
	}
	w := make([]float64, n)
	lambda := 0.0
	for it := 0; it < iters; it++ {
		// Project out the all-ones direction.
		mean := 0.0
		for _, x := range v {
			mean += x
		}
		mean /= float64(n)
		norm := 0.0
		for i := range v {
			v[i] -= mean
			norm += v[i] * v[i]
		}
		norm = math.Sqrt(norm)
		if norm == 0 {
			return 0
		}
		for i := range v {
			v[i] /= norm
		}
		// w = (A / deg) v, using each node's own degree as normalizer.
		for i := range w {
			sum := 0.0
			for _, nb := range g.adj[i] {
				sum += v[nb]
			}
			w[i] = sum / float64(len(g.adj[i]))
		}
		// Rayleigh quotient.
		num := 0.0
		for i := range v {
			num += v[i] * w[i]
		}
		lambda = math.Abs(num)
		v, w = w, v
	}
	return lambda
}

// LongestPath searches for a simple path of target alive vertices using
// greedy DFS extension plus Posa rotations. alive(v) filters usable
// vertices. Returns the best path found (possibly shorter than target if
// the step budget runs out).
func (g *Graph) LongestPath(alive func(int) bool, target int, r rng.Source, maxSteps int) []int {
	n := g.N
	pos := make([]int32, n) // position in path + 1; 0 = not on path
	var path []int32
	var best []int32

	reset := func() {
		for _, v := range path {
			pos[v] = 0
		}
		path = path[:0]
		// Random alive start.
		for try := 0; try < 64; try++ {
			s := r.Intn(n)
			if alive(s) {
				path = append(path, int32(s))
				pos[s] = 1
				return
			}
		}
		for s := 0; s < n; s++ {
			if alive(s) {
				path = append(path, int32(s))
				pos[s] = 1
				return
			}
		}
	}
	reset()
	if len(path) == 0 {
		return nil
	}

	stall := 0
	for step := 0; step < maxSteps && len(path) < target; step++ {
		end := path[len(path)-1]
		nbrs := g.adj[end]
		// Try to extend with an unused alive neighbor (random start point
		// so rotations explore different directions).
		off := r.Intn(len(nbrs))
		extended := false
		for i := 0; i < len(nbrs); i++ {
			w := nbrs[(i+off)%len(nbrs)]
			if pos[w] == 0 && alive(int(w)) {
				path = append(path, w)
				pos[w] = int32(len(path))
				extended = true
				stall = 0
				break
			}
		}
		if extended {
			continue
		}
		// Posa rotation: pick a neighbor w on the path at position i;
		// reverse the suffix after i, making path[i+1] the new endpoint.
		w := nbrs[r.Intn(len(nbrs))]
		if pos[w] == 0 || int(pos[w]) >= len(path) {
			stall++
			if stall > 4*len(nbrs) {
				if len(path) > len(best) {
					best = append(best[:0], path...)
				}
				reset()
				stall = 0
			}
			continue
		}
		i := int(pos[w]) // path index of w plus 1 == first index of suffix
		for lo, hi := i, len(path)-1; lo < hi; lo, hi = lo+1, hi-1 {
			path[lo], path[hi] = path[hi], path[lo]
			pos[path[lo]] = int32(lo + 1)
			pos[path[hi]] = int32(hi + 1)
		}
		if i < len(path) {
			pos[path[i]] = int32(i + 1)
		}
		stall++
		if stall > 8*len(nbrs) {
			if len(path) > len(best) {
				best = append(best[:0], path...)
			}
			reset()
			stall = 0
		}
	}
	if len(path) > len(best) {
		best = path
	}
	out := make([]int, len(best))
	for i, v := range best {
		out[i] = int(v)
	}
	return out
}

// VerifyPath checks that p is a simple path in g with every vertex alive.
func (g *Graph) VerifyPath(p []int, alive func(int) bool) error {
	seen := make(map[int]struct{}, len(p))
	for i, v := range p {
		if v < 0 || v >= g.N {
			return fmt.Errorf("expander: path vertex %d out of range", v)
		}
		if !alive(v) {
			return fmt.Errorf("expander: path vertex %d not alive", v)
		}
		if _, dup := seen[v]; dup {
			return fmt.Errorf("expander: path revisits vertex %d", v)
		}
		seen[v] = struct{}{}
		if i == 0 {
			continue
		}
		ok := false
		for _, w := range g.adj[p[i-1]] {
			if int(w) == v {
				ok = true
				break
			}
		}
		if !ok {
			return fmt.Errorf("expander: path step %d-%d is not an edge", p[i-1], v)
		}
	}
	return nil
}

// SmallestQ returns the smallest q with q*q >= minNodes.
func SmallestQ(minNodes int) int {
	q := int(math.Sqrt(float64(minNodes)))
	for q*q < minNodes {
		q++
	}
	if q < 2 {
		q = 2
	}
	return q
}
