package expander

import (
	"testing"

	"ftnet/internal/fault"
	"ftnet/internal/rng"
)

func TestGabberGalilBasics(t *testing.T) {
	g, err := NewGabberGalil(13)
	if err != nil {
		t.Fatal(err)
	}
	if g.N != 169 {
		t.Fatalf("N = %d", g.N)
	}
	if d := g.MaxDegree(); d > 16 || d < 4 {
		t.Errorf("MaxDegree = %d, want within [4,16]", d)
	}
	// Symmetry.
	for u := 0; u < g.N; u++ {
		for _, v := range g.Neighbors(u) {
			found := false
			for _, w := range g.Neighbors(int(v)) {
				if int(w) == u {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("edge %d-%d not symmetric", u, v)
			}
		}
	}
}

func TestGabberGalilRejectsTiny(t *testing.T) {
	if _, err := NewGabberGalil(1); err == nil {
		t.Error("q=1 should be rejected")
	}
}

func TestSpectralGap(t *testing.T) {
	g, err := NewGabberGalil(23)
	if err != nil {
		t.Fatal(err)
	}
	lambda := g.SecondEigenvalue(200, rng.New(5))
	if lambda >= 0.95 {
		t.Errorf("second eigenvalue %v too close to 1: no expansion", lambda)
	}
	if lambda < 0 {
		t.Errorf("eigenvalue estimate negative: %v", lambda)
	}
}

func TestLongestPathNoFaults(t *testing.T) {
	g, err := NewGabberGalil(17) // 289 nodes
	if err != nil {
		t.Fatal(err)
	}
	alive := func(int) bool { return true }
	path := g.LongestPath(alive, 200, rng.New(1), 200_000)
	if err := g.VerifyPath(path, alive); err != nil {
		t.Fatal(err)
	}
	if len(path) < 200 {
		t.Errorf("found path of %d < 200 on a fault-free expander", len(path))
	}
}

func TestLongestPathWithDeletions(t *testing.T) {
	g, err := NewGabberGalil(20) // 400 nodes
	if err != nil {
		t.Fatal(err)
	}
	dead := fault.NewSet(g.N)
	if err := dead.ExactRandom(rng.New(3), 100); err != nil { // 25% removed
		t.Fatal(err)
	}
	alive := func(v int) bool { return !dead.Has(v) }
	path := g.LongestPath(alive, 200, rng.New(4), 400_000)
	if err := g.VerifyPath(path, alive); err != nil {
		t.Fatal(err)
	}
	if len(path) < 200 {
		t.Errorf("Alon-Chung regime: path %d < 200 after 25%% deletions", len(path))
	}
}

func TestLongestPathAllDead(t *testing.T) {
	g, _ := NewGabberGalil(5)
	path := g.LongestPath(func(int) bool { return false }, 5, rng.New(1), 1000)
	if len(path) != 0 {
		t.Errorf("path on dead graph has %d vertices", len(path))
	}
}

func TestVerifyPathCatchesBadPaths(t *testing.T) {
	g, _ := NewGabberGalil(7)
	alive := func(int) bool { return true }
	if err := g.VerifyPath([]int{0, 0}, alive); err == nil {
		t.Error("revisit not caught")
	}
	if err := g.VerifyPath([]int{0, 9999}, alive); err == nil {
		t.Error("out of range not caught")
	}
	// Two non-adjacent vertices (distance likely > 1 for specific picks).
	u := 0
	v := -1
	isNbr := map[int]bool{}
	for _, w := range g.Neighbors(u) {
		isNbr[int(w)] = true
	}
	for c := 1; c < g.N; c++ {
		if !isNbr[c] {
			v = c
			break
		}
	}
	if v >= 0 {
		if err := g.VerifyPath([]int{u, v}, alive); err == nil {
			t.Error("non-edge not caught")
		}
	}
}

func TestSmallestQ(t *testing.T) {
	if q := SmallestQ(100); q != 10 {
		t.Errorf("SmallestQ(100) = %d", q)
	}
	if q := SmallestQ(101); q != 11 {
		t.Errorf("SmallestQ(101) = %d", q)
	}
	if q := SmallestQ(1); q != 2 {
		t.Errorf("SmallestQ(1) = %d", q)
	}
}

func TestProductEmbed2D(t *testing.T) {
	p, err := NewProduct(2, 24, 2.5)
	if err != nil {
		t.Fatal(err)
	}
	faults := fault.NewSet(p.NumNodes())
	if err := faults.ExactRandom(rng.New(9), 24); err != nil { // O(n) faults
		t.Fatal(err)
	}
	emb, err := p.Embed(faults, rng.New(10), 500_000)
	if err != nil {
		t.Fatal(err)
	}
	if len(emb.Map) != 24*24 {
		t.Errorf("embedding size %d", len(emb.Map))
	}
}

func TestProductEmbed1D(t *testing.T) {
	p, err := NewProduct(1, 50, 3)
	if err != nil {
		t.Fatal(err)
	}
	faults := fault.NewSet(p.NumNodes())
	if err := faults.ExactRandom(rng.New(11), 20); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Embed(faults, rng.New(12), 500_000); err != nil {
		t.Fatal(err)
	}
}

func TestProductDegreeConstant(t *testing.T) {
	p, err := NewProduct(3, 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	if d := p.MaxDegree(); d > 16+4 {
		t.Errorf("product degree %d not constant-ish", d)
	}
}

func TestProductRejectsBadParams(t *testing.T) {
	if _, err := NewProduct(0, 10, 2); err == nil {
		t.Error("d=0 accepted")
	}
	if _, err := NewProduct(2, 1, 2); err == nil {
		t.Error("n=1 accepted")
	}
	if _, err := NewProduct(2, 10, 0.5); err == nil {
		t.Error("c<1 accepted")
	}
}

func TestProductEmbed3D(t *testing.T) {
	p, err := NewProduct(3, 10, 3)
	if err != nil {
		t.Fatal(err)
	}
	faults := fault.NewSet(p.NumNodes())
	if err := faults.ExactRandom(rng.New(21), 10); err != nil {
		t.Fatal(err)
	}
	emb, err := p.Embed(faults, rng.New(22), 500_000)
	if err != nil {
		t.Fatal(err)
	}
	if len(emb.Map) != 1000 {
		t.Errorf("3D mesh embedding size %d", len(emb.Map))
	}
}

func TestProductAdjacency(t *testing.T) {
	p, err := NewProduct(2, 6, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Same supernode, mesh-adjacent positions.
	if !p.Adjacent(0, 1) {
		t.Error("intra-supernode mesh edge missing")
	}
	// Same supernode, non-adjacent positions.
	if p.Adjacent(0, 2) {
		t.Error("spurious intra-supernode edge")
	}
	// Different supernodes, same position: adjacent iff F-adjacent.
	f0 := p.F.Neighbors(0)[0]
	if !p.Adjacent(0, int(f0)*p.meshSize) {
		t.Error("inter-supernode edge missing")
	}
	// Different supernodes, different positions: never adjacent.
	if p.Adjacent(0, int(f0)*p.meshSize+1) {
		t.Error("cross edge with differing mesh position")
	}
}

func TestProductEmbedFailsWhenSwamped(t *testing.T) {
	p, err := NewProduct(2, 20, 1.2)
	if err != nil {
		t.Fatal(err)
	}
	// Kill nearly all supernodes.
	faults := fault.NewSet(p.NumNodes())
	for s := 0; s < p.F.N-10; s++ {
		faults.Add(s * p.meshSize)
	}
	if _, err := p.Embed(faults, rng.New(2), 50_000); err == nil {
		t.Error("embedding should fail with almost every supernode dead")
	}
}
