package expander

import (
	"fmt"

	"ftnet/internal/embed"
	"ftnet/internal/fault"
	"ftnet/internal/grid"
	"ftnet/internal/rng"
	"ftnet/internal/torus"
)

// Product is the Section 5 construction: the direct product of an expander
// F (standing in for the 1-dimensional Alon-Chung network) with the
// (d-1)-dimensional n x ... x n mesh. Each copy of the mesh is a
// supernode; a supernode is faulty if it contains any faulty node; a
// surviving path of n supernodes in F yields a fault-free d-dimensional
// mesh. The construction tolerates O(n) worst-case faults with constant
// degree — but only for the mesh, not the torus (a surviving path, unlike
// a cycle, is all the expander guarantees).
type Product struct {
	F         *Graph
	D         int // guest mesh dimension (>= 1)
	N         int // guest mesh side
	MeshShape grid.Shape
	meshSize  int
}

// NewProduct builds the product host for the d-dimensional n-mesh with
// redundancy factor c: the expander has ~c*n supernodes.
func NewProduct(d, n int, c float64) (*Product, error) {
	if d < 1 {
		return nil, fmt.Errorf("expander: product dimension %d < 1", d)
	}
	if n < 2 {
		return nil, fmt.Errorf("expander: side %d < 2", n)
	}
	if c < 1 {
		return nil, fmt.Errorf("expander: redundancy %v < 1", c)
	}
	q := SmallestQ(int(c * float64(n)))
	f, err := NewGabberGalil(q)
	if err != nil {
		return nil, err
	}
	var meshShape grid.Shape
	if d > 1 {
		meshShape = grid.Uniform(d-1, n)
	} else {
		meshShape = grid.Shape{1}
	}
	return &Product{F: f, D: d, N: n, MeshShape: meshShape, meshSize: meshShape.Size()}, nil
}

// NumNodes returns |F| * n^{d-1}.
func (p *Product) NumNodes() int { return p.F.N * p.meshSize }

// MaxDegree returns the maximum host degree: expander degree plus 2(d-1).
func (p *Product) MaxDegree() int { return p.F.MaxDegree() + 2*(p.D-1) }

// Supernode returns the expander vertex owning host node v.
func (p *Product) Supernode(v int) int { return v / p.meshSize }

// Adjacent reports product adjacency: either the same supernode with
// mesh-adjacent positions, or F-adjacent supernodes with equal positions.
func (p *Product) Adjacent(u, v int) bool {
	if u == v {
		return false
	}
	su, sv := u/p.meshSize, v/p.meshSize
	mu, mv := u%p.meshSize, v%p.meshSize
	if su == sv {
		return p.meshAdjacent(mu, mv)
	}
	if mu != mv {
		return false
	}
	for _, w := range p.F.Neighbors(su) {
		if int(w) == sv {
			return true
		}
	}
	return false
}

func (p *Product) meshAdjacent(a, b int) bool {
	ca := p.MeshShape.Coord(a, nil)
	cb := p.MeshShape.Coord(b, nil)
	diff := -1
	for i := range ca {
		if ca[i] != cb[i] {
			if diff >= 0 {
				return false
			}
			diff = i
		}
	}
	if diff < 0 {
		return false
	}
	d := ca[diff] - cb[diff]
	return d == 1 || d == -1
}

// Embed extracts a fault-free d-dimensional n-mesh: it marks supernodes
// containing faults as dead, finds a surviving path of n supernodes in the
// expander (Posa heuristic with the given step budget), and maps mesh row
// i to the i-th path vertex. Returns an error if no long-enough path was
// found within the budget.
func (p *Product) Embed(faults *fault.Set, r rng.Source, maxSteps int) (*embed.Embedding, error) {
	deadSuper := make([]bool, p.F.N)
	faults.ForEach(func(v int) { deadSuper[p.Supernode(v)] = true })
	alive := func(s int) bool { return !deadSuper[s] }
	path := p.F.LongestPath(alive, p.N, r, maxSteps)
	if len(path) < p.N {
		return nil, fmt.Errorf("expander: found surviving path of %d < %d supernodes", len(path), p.N)
	}
	path = path[:p.N]
	if err := p.F.VerifyPath(path, alive); err != nil {
		return nil, err
	}
	guestShape := make(grid.Shape, p.D)
	guestShape[0] = p.N
	for i := 1; i < p.D; i++ {
		guestShape[i] = p.N
	}
	guest, err := torus.New(torus.MeshKind, guestShape)
	if err != nil {
		return nil, err
	}
	e := embed.New(guest)
	gc := make([]int, p.D)
	for gi := 0; gi < guest.N(); gi++ {
		guest.Shape.Coord(gi, gc)
		mi := 0
		if p.D > 1 {
			mi = p.MeshShape.Index(gc[1:])
		}
		e.Map[gi] = path[gc[0]]*p.meshSize + mi
	}
	if err := e.Verify(productHost{p: p, faults: faults}); err != nil {
		return nil, err
	}
	return e, nil
}

type productHost struct {
	p      *Product
	faults *fault.Set
}

func (h productHost) NumNodes() int            { return h.p.NumNodes() }
func (h productHost) Adjacent(u, v int) bool   { return h.p.Adjacent(u, v) }
func (h productHost) NodeFaulty(u int) bool    { return h.faults.Has(u) }
func (h productHost) EdgeFaulty(u, v int) bool { return false }
