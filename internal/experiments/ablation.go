package experiments

import (
	"fmt"

	"ftnet/internal/rng"
	"ftnet/internal/stats"
)

// runA3Impl sweeps the supernode size h at fixed p and shows the sharp
// Chernoff knee in survival probability that Theorem 1's h = Theta(k^2)
// choice sits above.
func runA3Impl(cfg Config) error {
	const pNode = 0.25
	trials := cfg.trials(8, 30)
	hs := []int{4, 5, 6, 8, 10, 12, 16, 20}
	if cfg.Quick {
		hs = []int{4, 6, 10, 16}
	}
	t := stats.NewTable(cfg.Out, "h", "degree", "trials", "survived", "rate")
	for _, h := range hs {
		g, err := e5Graph(0, h)
		if err != nil {
			return err
		}
		res, err := cfg.monteCarlo(trials, cfg.cellSeed("A", uint64(h)), nil,
			func(trial int, stream *rng.PCG, _ any) (stats.Outcome, error) {
				fs := g.NewFaultState(stream.Uint64(), pNode, stream)
				_, _, err := g.Embed(fs)
				return classify(err)
			})
		if err != nil {
			return err
		}
		t.Row(h, g.P.Degree(), res.Trials, res.Successes, fmt.Sprintf("%.2f", res.Rate))
	}
	fmt.Fprintf(cfg.Out, "p=%.2f, k=2 (k^2=4 nodes needed per supernode)\n", pNode)
	return t.Flush()
}
