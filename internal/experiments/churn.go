package experiments

import (
	"fmt"

	"ftnet/internal/churn"
	"ftnet/internal/core"
	"ftnet/internal/stats"
)

func init() {
	register(Experiment{
		ID:    "E16",
		Title: "B^2_n lifetime under fault churn: mean faults and time to death",
		PaperClaim: "beyond the paper (dynamic extension): Theorem 2 tolerates random static faults at " +
			"p = log^-6 n; under continuous per-node fault arrivals the mean fault count at the first " +
			"unembeddable state must exceed the theorem's expected static load, and the death time must " +
			"scale as 1/rate while the death size stays rate-invariant",
		Run: runE16,
	})
	register(Experiment{
		ID:    "E17",
		Title: "steady-state availability vs repair rate under fault churn",
		PaperClaim: "beyond the paper (dynamic extension): with per-node failure rate lambda and per-fault " +
			"repair rate rho, the stationary faulty fraction is lambda/(lambda+rho); availability must " +
			"climb from collapse to ~1 as rho crosses the rate that pins that fraction at the " +
			"Theorem 2 threshold",
		Run: runE17,
	})
}

// churnParams is the churn-experiment instance: smaller than the E2 host
// (n=192, 49k nodes) because every churn event re-enters the pipeline.
func churnParams() core.Params { return core.Params{D: 2, W: 4, Pitch: 16, Scale: 1} }

func runE16(cfg Config) error {
	g, err := core.NewGraph(churnParams())
	if err != nil {
		return err
	}
	pThm := g.P.TheoremFailureProb()
	thmLoad := pThm * float64(g.NumNodes())
	fmt.Fprintf(cfg.Out, "host: %d nodes, theorem static load E|F| = %.1f faults\n", g.NumNodes(), thmLoad)

	mults := []float64{1, 4, 16}
	if cfg.Quick {
		mults = []float64{4, 16}
	}
	trials := cfg.trials(4, 16)
	t := stats.NewTable(cfg.Out, "lambda/p_thm", "trials", "death rate", "mean t_death", "se", "mean |F|_death", "events/trial")
	var firstDeathFaults float64
	for i, mult := range mults {
		lambda := pThm * mult
		res, err := churn.Simulate(g, churn.Process{Arrival: lambda}, trials, cfg.cellSeed("E16", uint64(i)), churn.Options{
			Workers:     cfg.Parallel,
			TargetCI:    cfg.TargetCI,
			Horizon:     1e9, // pure aging always dies; StopAtDeath ends the trial there
			StopAtDeath: true,
			Independent: cfg.Independent,
			Dense:       cfg.Dense,
		})
		if err != nil {
			return err
		}
		dt, se := res.MeanDeathTime()
		t.Row(fmt.Sprintf("%.0fx", mult), res.Trials, fmt.Sprintf("%.2f", res.DeathRate()),
			fmt.Sprintf("%.1f", dt), fmt.Sprintf("%.1f", se),
			fmt.Sprintf("%.0f", res.MeanDeathFaults()), fmt.Sprintf("%.0f", res.Mean[churn.MetricEvents]))
		if res.DeathRate() != 1 {
			return fmt.Errorf("E16: pure aging left %.0f%% of trials alive", 100*(1-res.DeathRate()))
		}
		if res.MeanDeathFaults() < thmLoad {
			return fmt.Errorf("E16: mean death size %.0f below the theorem's static load %.1f",
				res.MeanDeathFaults(), thmLoad)
		}
		if i == 0 {
			firstDeathFaults = res.MeanDeathFaults()
		} else if ratio := res.MeanDeathFaults() / firstDeathFaults; ratio < 0.5 || ratio > 2 {
			return fmt.Errorf("E16: death size not rate-invariant (%.0f vs %.0f)", res.MeanDeathFaults(), firstDeathFaults)
		}
	}
	if err := t.Flush(); err != nil {
		return err
	}
	fmt.Fprintln(cfg.Out, "death size is rate-invariant; death time scales ~1/lambda (columns above)")
	return nil
}

func runE17(cfg Config) error {
	g, err := core.NewGraph(churnParams())
	if err != nil {
		return err
	}
	pThm := g.P.TheoremFailureProb()
	// Per-node failure rate pinned well above the static threshold: with
	// no repair this host collapses (E16); repair must rescue it once
	// lambda/(lambda+rho) drops to the tolerated regime.
	lambda := 40 * pThm
	rhos := []float64{0.05, 0.2, 0.8, 3.2, 12.8}
	horizon := 12.0
	trials := cfg.trials(3, 10)
	if cfg.Quick {
		rhos = []float64{0.05, 0.8, 12.8}
		horizon = 6
	}
	fmt.Fprintf(cfg.Out, "host: %d nodes, lambda = 40 p_thm = %.2e per node\n", g.NumNodes(), lambda)
	t := stats.NewTable(cfg.Out, "rho", "stationary p", "p/p_thm", "trials", "availability", "se", "death rate")
	type rung struct {
		avail, se, deathRate float64
		trials               int
	}
	rungs := make([]rung, len(rhos))
	if cfg.Independent || cfg.Dense {
		// Ablation: one independent per-event simulation per rung, each on
		// its own event stream.
		for i, rho := range rhos {
			res, err := churn.Simulate(g, churn.Process{Arrival: lambda, Repair: rho}, trials,
				cfg.cellSeed("E17", uint64(i)), churn.Options{
					Workers:     cfg.Parallel,
					TargetCI:    cfg.TargetCI,
					Horizon:     horizon,
					Independent: cfg.Independent,
					Dense:       cfg.Dense,
				})
			if err != nil {
				return err
			}
			avail, se := res.Availability()
			rungs[i] = rung{avail: avail, se: se, deathRate: res.DeathRate(), trials: res.Trials}
		}
	} else {
		// One coupled event stream per trial serves the whole ladder: the
		// rungs share arrivals and thin a common repair clock, so a trial
		// costs little more than its slowest rung and the rung-to-rung
		// differences are common-random-numbers smooth.
		res, err := churn.SimulateRepairLadder(g, lambda, rhos, trials, cfg.cellSeed("E17", 0),
			churn.LadderOptions{
				Workers:  cfg.Parallel,
				TargetCI: cfg.TargetCI,
				Horizon:  horizon,
			})
		if err != nil {
			return err
		}
		for i := range rhos {
			avail, se := res.Availability(i)
			rungs[i] = rung{avail: avail, se: se, deathRate: res.DeathRate(i), trials: res.Trials}
		}
	}
	var lo, hi float64
	for i, rho := range rhos {
		stationary := lambda / (lambda + rho)
		t.Row(fmt.Sprintf("%.2f", rho), fmt.Sprintf("%.1e", stationary),
			fmt.Sprintf("%.1fx", stationary/pThm), rungs[i].trials,
			fmt.Sprintf("%.3f", rungs[i].avail), fmt.Sprintf("%.3f", rungs[i].se), fmt.Sprintf("%.2f", rungs[i].deathRate))
		if i == 0 {
			lo = rungs[i].avail
		}
		hi = rungs[i].avail
	}
	if err := t.Flush(); err != nil {
		return err
	}
	if hi < 0.9 {
		return fmt.Errorf("E17: fast repair should hold availability near 1, got %.3f", hi)
	}
	if lo > hi-0.2 {
		return fmt.Errorf("E17: no repair-rate threshold visible (availability %.3f -> %.3f)", lo, hi)
	}
	fmt.Fprintln(cfg.Out, "availability crosses from collapse to ~1 as rho pushes the stationary rate under the threshold")
	return nil
}
