package experiments

import (
	"fmt"
	"math"

	"ftnet/internal/baseline"
	"ftnet/internal/core"
	"ftnet/internal/fault"
	"ftnet/internal/rng"
	"ftnet/internal/stats"
	"ftnet/internal/sweep"
	"ftnet/internal/worstcase"
)

func init() {
	register(Experiment{
		ID:    "E9",
		Title: "worst-case faults at linear redundancy: D^2 vs BCH93b vs spare grid",
		PaperClaim: "intro: with O(n^2) nodes, D^2 tolerates O(n^{3/4}) worst-case faults " +
			"while BCH93b tolerates only O(n^{2/3}); BCH wins for small k (n^2 + O(k^3) nodes, degree 13)",
		Run: runE9,
	})
	register(Experiment{
		ID:    "E10",
		Title: "random faults tolerated: B^2_n vs best prior constant-degree construction",
		PaperClaim: "Section 1: B^d_n tolerates Theta(N/log^{3d} N) random faults vs " +
			"Theta(N^{1/3}) for BCH93b (two-dimensional case)",
		Run: runE10,
	})
}

func runE9(cfg Config) error {
	sides := []int{100, 200, 400, 800}
	if cfg.Quick {
		sides = []int{100, 300}
	}
	t := stats.NewTable(cfg.Out, "n", "ours k=n^{3/4}", "ours nodes", "ours ok",
		"BCH k=n^{2/3} (analytic)", "BCH nodes (analytic)", "spare-grid k (clustered attack)")
	r := rng.New(cfg.cellSeed("E9"))
	for _, n := range sides {
		kOurs := int(math.Pow(float64(n), 0.75))
		g, err := worstcase.NewGraph(worstcase.Params{D: 2, N: n, K: kOurs})
		if err != nil {
			return err
		}
		// Exercise the guarantee at full budget on the nastiest patterns.
		ok := true
		for i, pat := range []fault.Pattern{fault.Cluster, fault.ClassSpread, fault.RowSweep} {
			faults, err := adversarial(pat, g, g.P.Capacity(), r.Split(uint64(n*10+i)))
			if err != nil {
				return err
			}
			if _, _, err := g.Tolerate(faults, nil); err != nil {
				ok = false
				break
			}
		}
		kBCH := int(math.Pow(float64(n), 2.0/3.0))
		_, bchNodes := baseline.AnalyticBCH(n, kBCH)
		// Spare grid with linear redundancy (s = n/4 spares, reach 3):
		// a clustered attack kills it at L = reach faults in adjacent rows.
		sg, err := baseline.NewSpareGrid(n, n/4, 3)
		if err != nil {
			return err
		}
		sgTolerated := clusteredTolerance(sg)
		t.Row(g.P.Side(), g.P.Capacity(), g.P.NumNodes(), ok, kBCH, bchNodes, sgTolerated)
	}
	fmt.Fprintln(cfg.Out, "spare-grid column: largest run of adjacent faulty rows survived (bypass reach - 1);")
	fmt.Fprintln(cfg.Out, "shows why naive sparing cannot trade redundancy for worst-case tolerance the way D^2 does.")
	return t.Flush()
}

// clusteredTolerance finds the largest c such that c adjacent faulty rows
// are still recoverable by the spare grid.
func clusteredTolerance(sg *baseline.SpareGrid) int {
	for c := 1; ; c++ {
		faults := fault.NewSet(sg.NumNodes())
		for i := 0; i < c; i++ {
			faults.Add((10 + i) * sg.Side())
		}
		if _, err := sg.Recover(faults); err != nil {
			return c - 1
		}
		if c > sg.S {
			return sg.S
		}
	}
}

func runE10(cfg Config) error {
	p := core.Params{D: 2, W: 6, Pitch: 18, Scale: 1} // n=432, N=280k nodes
	if !cfg.Quick {
		p = core.Params{D: 2, W: 8, Pitch: 32, Scale: 1} // n=1536, N=3.1M nodes
	}
	g, err := core.NewGraph(p)
	if err != nil {
		return err
	}
	trials := cfg.trials(20, 40)
	bigN := float64(g.NumNodes())
	theoryOurs := bigN / math.Pow(math.Log2(float64(p.N())), 6)
	theoryBCH := math.Pow(bigN, 1.0/3.0)

	// Find the largest fault count with >= 95% survival by doubling then
	// bisecting on the fault count. Probes couple the counts: each trial
	// owns one random injection order and F(k) is its k-prefix, so the
	// measured rate is monotone in k on the shared trial set.
	probes, err := sweep.NewProbes(g, trials, cfg.cellSeed("E10"), p.TheoremFailureProb(), cfg.sweepConfig())
	if err != nil {
		return err
	}
	rate := func(k int) (float64, error) {
		res, err := probes.Count(k)
		if err != nil {
			return 0, err
		}
		return res.Rate, nil
	}
	lo, hi := 1, 2
	for {
		r, err := rate(hi)
		if err != nil {
			return err
		}
		if r < 0.95 || hi > g.NumNodes()/4 {
			break
		}
		lo = hi
		hi *= 2
	}
	for hi-lo > max(1, lo/8) {
		mid := (lo + hi) / 2
		r, err := rate(mid)
		if err != nil {
			return err
		}
		if r >= 0.95 {
			lo = mid
		} else {
			hi = mid
		}
	}

	// The asymptotic claim Theta(N/log^6 N) >> Theta(N^{1/3}) only bites
	// past the crossover N* with N*^{2/3} = log^6 N*; compute it so the
	// table makes the scale regime explicit.
	crossover := 1.0
	for i := 0; i < 200; i++ {
		crossover = math.Pow(math.Pow(math.Log2(crossover+2), 6), 1.5)
	}

	t := stats.NewTable(cfg.Out, "quantity", "value")
	t.Row("host nodes N", g.NumNodes())
	t.Row("measured max faults @95% survival", lo)
	t.Row("theory ours: N/log^6 N", fmt.Sprintf("%.1f", theoryOurs))
	t.Row("theory BCH93b: N^(1/3)", fmt.Sprintf("%.0f", theoryBCH))
	t.Row("asymptotic crossover N*", fmt.Sprintf("%.1e", crossover))
	if err := t.Flush(); err != nil {
		return err
	}
	fmt.Fprintf(cfg.Out, "shape check: below N* ~ %.0e the BCH curve is higher, as measured here; ours dominates its\n"+
		"own theory curve (%d >= %.1f) and grows with N while N^{1/3} stays cube-root (see EXPERIMENTS.md).\n",
		crossover, lo, theoryOurs)
	if float64(lo) < theoryOurs {
		return fmt.Errorf("E10: measured tolerance %d below our own theory curve %.1f", lo, theoryOurs)
	}
	return nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
