package experiments

import (
	"fmt"

	"ftnet/internal/core"
	"ftnet/internal/fault"
	"ftnet/internal/pathfind"
	"ftnet/internal/rng"
	"ftnet/internal/stats"
	"ftnet/internal/torus"
)

func init() {
	register(Experiment{
		ID:    "E15",
		Title: "host distance structure and routing-around-faults comparison",
		PaperClaim: "Section 1 (related work): the alternative approach keeps the conventional network " +
			"and routes around faults [Rag89, LM92]; the paper's approach extracts a pristine torus. " +
			"Quantify both on the same host: B's jump edges shrink distances, extracted-torus routes " +
			"have stretch exactly 1 by construction, and fault-avoiding host routes pay a measurable stretch",
		Run: runE15,
	})
}

func runE15(cfg Config) error {
	p := core.Params{D: 2, W: 4, Pitch: 16, Scale: 1}
	g, err := core.NewGraph(p)
	if err != nil {
		return err
	}
	guest, err := torus.NewUniform(torus.TorusKind, 2, p.N())
	if err != nil {
		return err
	}
	r := rng.New(cfg.cellSeed("E15"))
	sources := 4
	if !cfg.Quick {
		sources = 10
	}

	// Distance profiles: plain guest torus vs the augmented host.
	guestProf, err := pathfind.Sample(guest, sources, nil, r.Split(1))
	if err != nil {
		return err
	}
	hostProf, err := pathfind.Sample(g, sources, nil, r.Split(2))
	if err != nil {
		return err
	}
	t := stats.NewTable(cfg.Out, "graph", "nodes", "mean distance", "max observed")
	t.Row(fmt.Sprintf("torus %dx%d", p.N(), p.N()), guest.N(), fmt.Sprintf("%.1f", guestProf.Mean), guestProf.Max)
	t.Row("B^2_n host (jump edges)", g.NumNodes(), fmt.Sprintf("%.1f", hostProf.Mean), hostProf.Max)
	if err := t.Flush(); err != nil {
		return err
	}
	if hostProf.Mean >= guestProf.Mean {
		return fmt.Errorf("E15: jump edges failed to shrink mean distance (%.1f vs %.1f)", hostProf.Mean, guestProf.Mean)
	}

	// Routing-around-faults on the host vs extraction.
	faults := fault.NewSet(g.NumNodes())
	faults.Bernoulli(r.Split(3), 20*p.TheoremFailureProb())
	alive := func(v int) bool { return !faults.Has(v) }
	pairs := 20
	if !cfg.Quick {
		pairs = 60
	}
	stretch, disconnected, err := pathfind.Stretch(g, alive, pairs, r.Split(4))
	if err != nil {
		return err
	}
	fmt.Fprintf(cfg.Out, "with %d random faults on the host:\n", faults.Count())
	fmt.Fprintf(cfg.Out, "  route-around-faults (related-work approach): mean stretch %.3f, %d/%d pairs disconnected\n",
		stretch, disconnected, pairs)
	if _, err := g.ContainTorus(faults, core.ExtractOptions{}); err != nil {
		fmt.Fprintf(cfg.Out, "  extraction (this paper): failed for this pattern (%v)\n", err)
		return nil
	}
	fmt.Fprintln(cfg.Out, "  extraction (this paper): succeeded; every logical route has stretch exactly 1")
	fmt.Fprintln(cfg.Out, "  (the extracted torus is a subgraph: neighbors stay neighbors, no route inflation ever)")
	return nil
}
