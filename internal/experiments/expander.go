package experiments

import (
	"fmt"
	"math"

	"ftnet/internal/expander"
	"ftnet/internal/fault"
	"ftnet/internal/rng"
	"ftnet/internal/stats"
)

func init() {
	register(Experiment{
		ID:    "E11",
		Title: "Section 5 baseline: Alon-Chung expander product for the mesh",
		PaperClaim: "Theorem 12 + Section 5: a constant-degree O(n)-node expander keeps a " +
			"length-n path after deleting any constant fraction of nodes, giving a " +
			"d-dimensional mesh construction tolerating O(n) worst-case faults",
		Run: runE11,
	})
}

func runE11(cfg Config) error {
	// Part 1: spectral certificate for the explicit expander.
	q := 31
	if cfg.Quick {
		q = 19
	}
	g, err := expander.NewGabberGalil(q)
	if err != nil {
		return err
	}
	lambda := g.SecondEigenvalue(300, rng.New(cfg.cellSeed("E11", 0)))
	fmt.Fprintf(cfg.Out, "Gabber-Galil q=%d: %d nodes, max degree %d, lambda2 ~= %.3f (< 1: expansion certified)\n",
		q, g.N, g.MaxDegree(), lambda)
	if lambda >= 0.97 {
		return fmt.Errorf("E11: no spectral gap (lambda = %v)", lambda)
	}

	// Part 2: path survival under c-fraction worst-case deletions.
	trials := cfg.trials(5, 20)
	target := g.N / 3
	t := stats.NewTable(cfg.Out, "deleted fraction", "target path", "trials", "found", "rate")
	for _, frac := range []float64{0.1, 0.25, 0.4} {
		res, err := cfg.monteCarlo(trials, cfg.cellSeed("E11", math.Float64bits(frac)), nil,
			func(trial int, stream *rng.PCG, _ any) (stats.Outcome, error) {
				dead := fault.NewSet(g.N)
				if err := dead.ExactRandom(stream, int(frac*float64(g.N))); err != nil {
					return stats.Failure, err
				}
				alive := func(v int) bool { return !dead.Has(v) }
				path := g.LongestPath(alive, target, stream, 400_000)
				if len(path) < target {
					return stats.Failure, nil
				}
				if err := g.VerifyPath(path[:target], alive); err != nil {
					return stats.Failure, err
				}
				return stats.Success, nil
			})
		if err != nil {
			return err
		}
		t.Row(frac, target, res.Trials, res.Successes, fmt.Sprintf("%.2f", res.Rate))
	}
	if err := t.Flush(); err != nil {
		return err
	}

	// Part 3: the product construction embedding a 2-D mesh.
	n := 24
	if !cfg.Quick {
		n = 40
	}
	prod, err := expander.NewProduct(2, n, 2.5)
	if err != nil {
		return err
	}
	faults := fault.NewSet(prod.NumNodes())
	if err := faults.ExactRandom(rng.New(cfg.cellSeed("E11", 1)), n); err != nil { // O(n) faults
		return err
	}
	if _, err := prod.Embed(faults, rng.New(cfg.cellSeed("E11", 2)), 800_000); err != nil {
		return fmt.Errorf("E11: product embed failed: %w", err)
	}
	fmt.Fprintf(cfg.Out, "product construction: %d-node host, degree <= %d, embedded fault-free %dx%d mesh around %d worst-case faults\n",
		prod.NumNodes(), prod.MaxDegree(), n, n, n)
	return nil
}
