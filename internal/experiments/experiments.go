// Package experiments regenerates every quantitative claim of the paper:
// the resource/tolerance statements of Theorems 1-3 (and 13), the
// healthiness analysis of Lemma 4, the comparisons against FKP93 and
// BCH93b from the introduction, the Section 5 expander baseline, and the
// two figures. Each experiment is a self-contained driver printing a
// table (or figure) to the configured writer; EXPERIMENTS.md records the
// paper-vs-measured outcome for each.
package experiments

import (
	"fmt"
	"io"
	"sort"

	"ftnet/internal/core"
	"ftnet/internal/parallel"
	"ftnet/internal/rng"
	"ftnet/internal/sweep"
)

// Config tunes an experiment run.
type Config struct {
	Out      io.Writer
	Quick    bool   // smaller sweeps and trial counts
	Seed     uint64 // master seed; per-trial PCG streams derive deterministically
	Parallel int    // worker bound for Monte-Carlo trials (0 = GOMAXPROCS)
	// TargetCI, when positive, lets every Monte-Carlo sweep stop early
	// once its 95% Wilson interval is narrower than this width.
	TargetCI float64
	// Dense forces the legacy whole-host Theorem 2 pipeline in every
	// trial (ExtractOptions.Dense), disabling the locality-aware fast
	// path. Results are bit-identical either way (the golden equivalence
	// tests pin that); the flag exists for perf ablations.
	Dense bool
	// Independent disables the nested coupling of the rate-ladder sweeps
	// and threshold searches (internal/sweep): every rung or probe then
	// draws fresh independent samples, reproducing the legacy
	// one-Monte-Carlo-cell-per-rate behavior. Ablation flag.
	Independent bool
}

func (c Config) trials(quick, full int) int {
	if c.Quick {
		return quick
	}
	return full
}

// cellSeed derives the Monte-Carlo seed of one table cell by hashing the
// master seed with the experiment ID and the cell's coordinates
// (rng.Hash64). Every driver must use it instead of ad-hoc arithmetic
// like Seed+uint64(prob*1e9), whose truncations can collide across cells
// and whose nearby seeds rely on the generator's seeding avalanche.
func (c Config) cellSeed(expID string, cells ...uint64) uint64 {
	var idHash uint64
	for _, ch := range []byte(expID) {
		idHash = idHash<<8 | uint64(ch)
	}
	parts := make([]uint64, 0, 8)
	parts = append(parts, c.Seed, idHash)
	parts = append(parts, cells...)
	return rng.Hash64(parts...)
}

// monteCarlo runs one Monte-Carlo table cell on the parallel engine with
// the experiment-level worker bound and early-stopping target. Results
// are bit-identical for every worker count (see internal/parallel).
func (c Config) monteCarlo(trials int, seed uint64, newScratch func() any, fn parallel.Trial) (parallel.Report, error) {
	return parallel.Run(trials, seed, parallel.Options{
		Workers:    c.Parallel,
		NewScratch: newScratch,
		TargetCI:   c.TargetCI,
	}, fn)
}

// ladder runs one coupled vector cell (rungs sharing trials) with the
// experiment-level worker bound and per-rung early stopping.
func (c Config) ladder(trials, k int, seed uint64, newScratch func() any, fn parallel.LadderTrial) (parallel.LadderReport, error) {
	return parallel.RunLadder(trials, k, seed, parallel.Options{
		Workers:    c.Parallel,
		NewScratch: newScratch,
		TargetCI:   c.TargetCI,
	}, fn)
}

// sweepConfig maps the experiment configuration onto the curve engine's.
func (c Config) sweepConfig() sweep.Config {
	return sweep.Config{
		Workers:     c.Parallel,
		TargetCI:    c.TargetCI,
		Independent: c.Independent,
		Dense:       c.Dense,
	}
}

// coreScratch is the standard per-worker scratch factory for trials
// running the Theorem 2 pipeline: pooled buffers with inner parallelism
// pinned to 1 so the trial pool owns all concurrency. The scratch also
// enables the locality-aware fast path (unless Config.Dense disables it).
func coreScratch() any { return core.NewScratch(1) }

// extractOpts is the standard per-trial pipeline options for a worker's
// scratch, honoring the experiment-level Dense override.
func (c Config) extractOpts(sc *core.Scratch) core.ExtractOptions {
	return core.ExtractOptions{Scratch: sc, Dense: c.Dense}
}

// Experiment is a runnable reproduction of one paper claim.
type Experiment struct {
	ID         string
	Title      string
	PaperClaim string
	Run        func(Config) error
}

var registry []Experiment

func register(e Experiment) { registry = append(registry, e) }

// All returns every experiment, sorted by ID.
func All() []Experiment {
	out := append([]Experiment(nil), registry...)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Lookup finds an experiment by ID.
func Lookup(id string) (Experiment, bool) {
	for _, e := range registry {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// Run executes the experiments with the given IDs ("all" runs everything).
func Run(cfg Config, ids ...string) error {
	var todo []Experiment
	if len(ids) == 1 && ids[0] == "all" {
		todo = All()
	} else {
		for _, id := range ids {
			e, ok := Lookup(id)
			if !ok {
				return fmt.Errorf("experiments: unknown id %q", id)
			}
			todo = append(todo, e)
		}
	}
	for _, e := range todo {
		fmt.Fprintf(cfg.Out, "== %s: %s ==\n", e.ID, e.Title)
		fmt.Fprintf(cfg.Out, "paper: %s\n", e.PaperClaim)
		if err := e.Run(cfg); err != nil {
			return fmt.Errorf("experiments: %s: %w", e.ID, err)
		}
		fmt.Fprintln(cfg.Out)
	}
	return nil
}
