package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func quickConfig(buf *bytes.Buffer) Config {
	return Config{Out: buf, Quick: true, Seed: 12345}
}

func TestRegistryComplete(t *testing.T) {
	want := []string{"A1", "A3", "A4", "E1", "E10", "E11", "E12", "E13", "E14", "E15", "E16", "E17", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9"}
	all := All()
	if len(all) != len(want) {
		ids := make([]string, len(all))
		for i, e := range all {
			ids[i] = e.ID
		}
		t.Fatalf("registry has %v, want %v", ids, want)
	}
	for i, e := range all {
		if e.ID != want[i] {
			t.Errorf("registry[%d] = %s, want %s", i, e.ID, want[i])
		}
		if e.Title == "" || e.PaperClaim == "" || e.Run == nil {
			t.Errorf("experiment %s incomplete", e.ID)
		}
	}
}

func TestLookup(t *testing.T) {
	if _, ok := Lookup("E1"); !ok {
		t.Error("E1 not found")
	}
	if _, ok := Lookup("nope"); ok {
		t.Error("bogus id found")
	}
}

func TestRunUnknownID(t *testing.T) {
	var buf bytes.Buffer
	if err := Run(quickConfig(&buf), "EXX"); err == nil {
		t.Error("unknown id should error")
	}
}

// Each experiment runs end-to-end in quick mode. These are the paper's
// tables; failures mean a claim stopped reproducing.

func runOne(t *testing.T, id string) string {
	t.Helper()
	var buf bytes.Buffer
	if err := Run(quickConfig(&buf), id); err != nil {
		t.Fatalf("%s: %v\noutput so far:\n%s", id, err, buf.String())
	}
	return buf.String()
}

func TestE1(t *testing.T) {
	out := runOne(t, "E1")
	if !strings.Contains(out, "6d-2") {
		t.Errorf("E1 output missing degree column:\n%s", out)
	}
}

func TestE2(t *testing.T) {
	if testing.Short() {
		t.Skip("Monte Carlo sweep")
	}
	out := runOne(t, "E2")
	if !strings.Contains(out, "p_thm") {
		t.Errorf("E2 output:\n%s", out)
	}
}

func TestE3(t *testing.T) {
	if testing.Short() {
		t.Skip("Monte Carlo sweep")
	}
	runOne(t, "E3")
}

func TestE4(t *testing.T) {
	runOne(t, "E4")
}

func TestE5(t *testing.T) {
	if testing.Short() {
		t.Skip("Monte Carlo sweep")
	}
	runOne(t, "E5")
}

func TestE7(t *testing.T) {
	out := runOne(t, "E7")
	if !strings.Contains(out, "6/6") {
		t.Errorf("E7 should tolerate all six adversaries:\n%s", out)
	}
}

func TestE8(t *testing.T) {
	runOne(t, "E8")
}

func TestE9(t *testing.T) {
	out := runOne(t, "E9")
	if !strings.Contains(out, "true") {
		t.Errorf("E9 should report tolerance:\n%s", out)
	}
}

func TestE11(t *testing.T) {
	if testing.Short() {
		t.Skip("path search")
	}
	out := runOne(t, "E11")
	if !strings.Contains(out, "expansion certified") {
		t.Errorf("E11 output:\n%s", out)
	}
}

func TestE12Figures(t *testing.T) {
	out := runOne(t, "E12")
	if !strings.Contains(out, "Figure 1") || !strings.Contains(out, "Figure 2") {
		t.Errorf("E12 output missing figures:\n%s", out)
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "X") {
		t.Errorf("E12 figures missing glyphs:\n%s", out)
	}
}

func TestA1Ablation(t *testing.T) {
	out := runOne(t, "A1")
	if !strings.Contains(out, "fails (as predicted)") {
		t.Errorf("A1 output:\n%s", out)
	}
}

func TestE13(t *testing.T) {
	if testing.Short() {
		t.Skip("Monte Carlo sweep")
	}
	out := runOne(t, "E13")
	if !strings.Contains(out, "constant") {
		t.Errorf("E13 output:\n%s", out)
	}
}

func TestE14(t *testing.T) {
	out := runOne(t, "E14")
	if !strings.Contains(out, "area factor") {
		t.Errorf("E14 output:\n%s", out)
	}
}

func TestE15(t *testing.T) {
	if testing.Short() {
		t.Skip("BFS sampling")
	}
	out := runOne(t, "E15")
	if !strings.Contains(out, "stretch") {
		t.Errorf("E15 output:\n%s", out)
	}
}

func TestE16(t *testing.T) {
	if testing.Short() {
		t.Skip("churn lifetime sweep")
	}
	out := runOne(t, "E16")
	if !strings.Contains(out, "rate-invariant") {
		t.Errorf("E16 output:\n%s", out)
	}
}

func TestE17(t *testing.T) {
	if testing.Short() {
		t.Skip("churn availability sweep")
	}
	out := runOne(t, "E17")
	if !strings.Contains(out, "availability crosses") {
		t.Errorf("E17 output:\n%s", out)
	}
}
