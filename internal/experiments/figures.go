package experiments

import (
	"fmt"

	"ftnet/internal/core"
	"ftnet/internal/fault"
	"ftnet/internal/viz"
)

func init() {
	register(Experiment{
		ID:         "E12",
		Title:      "Figures 1 and 2: bands on B^2_n and a row jumping over them",
		PaperClaim: "Fig 1: bands wind around faults; Fig 2: a row of the extracted torus crosses bands via diagonal jumps",
		Run:        runE12,
	})
	register(Experiment{
		ID:         "A1",
		Title:      "ablation: remove the jump edge classes of B^2_n",
		PaperClaim: "the vertical jumps close columns over bands and the diagonal jumps close rows; without either the torus cannot be extracted",
		Run:        runA1,
	})
	register(Experiment{
		ID:         "A3",
		Title:      "ablation: supernode size h vs survival (Chernoff knee)",
		PaperClaim: "Section 4: P(supernode bad) = 2^-Omega(h); survival turns on sharply once h clears k^2/(1-p')",
		Run:        runA3,
	})
}

func runE12(cfg Config) error {
	p := core.Params{D: 2, W: 4, Pitch: 16, Scale: 1}
	g, err := core.NewGraph(p)
	if err != nil {
		return err
	}
	faults := fault.NewSet(g.NumNodes())
	// A small diagonal cluster, like the blob Figure 1 masks.
	base := g.NodeIndex(44, 40)
	faults.Add(base)
	faults.Add(g.NodeIndex(45, 41))
	faults.Add(g.NodeIndex(46, 41))
	res, err := g.ContainTorus(faults, core.ExtractOptions{CheckConsistency: true})
	if err != nil {
		return err
	}
	fmt.Fprintln(cfg.Out, viz.Legend)
	fmt.Fprintln(cfg.Out, "--- Figure 1: bands masking a fault cluster ---")
	rowLo, colLo := viz.FaultWindow(g, faults, 28, 64)
	fig1, err := viz.Bands(g, res.Bands, faults, rowLo, colLo, 28, 64)
	if err != nil {
		return err
	}
	fmt.Fprint(cfg.Out, fig1)
	fmt.Fprintln(cfg.Out, "--- Figure 2: one extracted row crossing the bands ---")
	fig2, err := viz.RowTrace(g, res.Bands, faults, res.Embedding, jumpingRow(g, res, colLo, 64), colLo, 64, 2)
	if err != nil {
		return err
	}
	fmt.Fprint(cfg.Out, fig2)
	return nil
}

// jumpingRow picks a guest row whose host image crosses a band inside the
// rendered window, so Figure 2 actually shows the diagonal jumps.
func jumpingRow(g *core.Graph, res *core.Result, colLo, width int) int {
	numCols := g.NumCols
	n := g.P.N()
	for row := 0; row < n; row++ {
		first := res.Embedding.Map[row*numCols+colLo%n] / numCols
		for dc := 1; dc < width; dc++ {
			col := (colLo + dc) % n
			if res.Embedding.Map[row*numCols+col]/numCols != first {
				return row
			}
		}
	}
	return 0
}

func runA1(cfg Config) error {
	p := core.Params{D: 2, W: 4, Pitch: 16, Scale: 1}
	for _, variant := range []struct {
		name          string
		vjump, djump  bool
		needFault     bool
		expectSuccess bool
	}{
		{"full construction", false, false, true, true},
		{"no vertical jumps", true, false, false, false},
		{"no diagonal jumps", false, true, true, false},
	} {
		g, err := core.NewGraph(p)
		if err != nil {
			return err
		}
		g.DisableVJump = variant.vjump
		g.DisableDJump = variant.djump
		faults := fault.NewSet(g.NumNodes())
		if variant.needFault {
			faults.Add(g.NodeIndex(50, 50))
		}
		_, err = g.ContainTorus(faults, core.ExtractOptions{})
		ok := err == nil
		fmt.Fprintf(cfg.Out, "%-20s degree %2d: extraction %v\n", variant.name, g.Degree(), okString(ok))
		if ok != variant.expectSuccess {
			return fmt.Errorf("A1: %s: extraction ok=%v, expected %v", variant.name, ok, variant.expectSuccess)
		}
	}
	return nil
}

func okString(ok bool) string {
	if ok {
		return "succeeds"
	}
	return "fails (as predicted)"
}

func runA3(cfg Config) error {
	return runA3Impl(cfg)
}
