package experiments

import (
	"ftnet/internal/baseline"
	"ftnet/internal/fault"
	"ftnet/internal/rng"
	"ftnet/internal/worstcase"
)

func allPatterns() []fault.Pattern { return fault.AllPatterns() }

func newCluster(side, g int) (*baseline.ClusterTorus, error) {
	return baseline.NewClusterTorus(2, side, g)
}

// adversarial places k faults on a worst-case host with the pattern's
// class modulus tuned to attack the first pigeonhole stage.
func adversarial(p fault.Pattern, g *worstcase.Graph, k int, r rng.Source) (*fault.Set, error) {
	return fault.Adversarial(p, g.Shape, k, g.P.B()+1, r)
}
