package experiments

import (
	"fmt"

	"ftnet/internal/core"
	"ftnet/internal/layout"
	"ftnet/internal/stats"
	"ftnet/internal/supernode"
	"ftnet/internal/worstcase"
)

func init() {
	register(Experiment{
		ID:    "E14",
		Title: "layout-area estimate (the introduction's open issue)",
		PaperClaim: "intro: \"if the current VLSI or similar technology is used ... the layout area is of " +
			"particular importance. Deciding the amount of area redundancy needed to tolerate a linear " +
			"number of faults is an interesting research issue\" — first-order wire-length accounting",
		Run: runE14,
	})
}

func runE14(cfg Config) error {
	side := 432
	bParams := core.Params{D: 2, W: 6, Pitch: 18, Scale: 1}
	aParams := supernode.Params{Base: core.Params{D: 2, W: 4, Pitch: 16, Scale: 1}, K: 2, H: 10, Q: 0}
	if err := aParams.Validate(); err != nil {
		return err
	}
	dParams := worstcase.Params{D: 2, N: side, K: 100}
	if err := dParams.Resolve(); err != nil {
		return err
	}

	plain := layout.Torus(2, side)
	rows := []struct {
		name string
		s    layout.Stats
		note string
	}{
		{"plain torus (reference)", plain, "no fault tolerance"},
		{"B^2_n (Thm 2)", layout.B(bParams), "log^-6 n random faults"},
		{"A^2_n (Thm 1)", layout.A(aParams), "constant p (upper bound)"},
		{"D^2_{n,k} (Thm 3)", layout.D(dParams), fmt.Sprintf("any %d faults", dParams.Capacity())},
	}
	t := stats.NewTable(cfg.Out, "host", "nodes", "edges", "wire length", "wire/node", "max wire", "area factor", "tolerates")
	for _, r := range rows {
		t.Row(r.name, r.s.Nodes, r.s.Edges,
			fmt.Sprintf("%.3g", r.s.WireLength),
			fmt.Sprintf("%.1f", r.s.PerNode()),
			fmt.Sprintf("%.0f", r.s.MaxWire),
			fmt.Sprintf("%.1fx", r.s.WireLength/plain.WireLength),
			r.note)
	}
	if err := t.Flush(); err != nil {
		return err
	}
	fmt.Fprintln(cfg.Out, "folded-layout model at unit wire pitch; area factor = wire length relative to the")
	fmt.Fprintln(cfg.Out, "plain torus of the same guest side. Constant-degree tolerance costs O(b) wire per node;")
	fmt.Fprintln(cfg.Out, "the O(log log N)-degree host pays Theta(h^2) — consistent with the paper deferring the area question.")
	return nil
}
