package experiments

import (
	"fmt"

	"ftnet/internal/core"
	"ftnet/internal/stats"
	"ftnet/internal/sweep"
)

func init() {
	register(Experiment{
		ID:    "E13",
		Title: "Section 6 open problem probe: constant-degree hosts under constant p",
		PaperClaim: "open question: is there a constant-degree O(N)-node construction tolerating " +
			"constant-probability node failures? B^d_n (constant degree) visibly is not it: " +
			"at constant p its survival collapses for every n, which is why Theorem 1 pays " +
			"O(log log N) degree",
		Run: runE13,
	})
}

func runE13(cfg Config) error {
	instances := []core.Params{
		{D: 2, W: 4, Pitch: 16, Scale: 1}, // n=192
		{D: 2, W: 6, Pitch: 18, Scale: 1}, // n=432
	}
	if !cfg.Quick {
		instances = append(instances, core.Params{D: 2, W: 8, Pitch: 32, Scale: 1}) // n=1536
	}
	trials := cfg.trials(10, 30)
	probs := []float64{0.001, 0.01}
	t := stats.NewTable(cfg.Out, "n", "degree", "p (constant)", "trials", "survived")
	for _, params := range instances {
		g, err := core.NewGraph(params)
		if err != nil {
			return err
		}
		// Both constant rates ride one coupled sweep per instance.
		curve, err := sweep.SurvivalCurve(g, probs, trials, cfg.cellSeed("E13", uint64(params.W)), cfg.sweepConfig())
		if err != nil {
			return err
		}
		for i, prob := range probs {
			res := curve.Rungs[i].Result
			t.Row(params.N(), g.Degree(), prob, res.Trials, res.Successes)
			if res.Successes > 0 {
				fmt.Fprintf(cfg.Out, "note: n=%d survived some trials at p=%g — below its threshold, fine\n",
					params.N(), prob)
			}
		}
	}
	if err := t.Flush(); err != nil {
		return err
	}
	fmt.Fprintln(cfg.Out, "at fixed constant p, survival of the constant-degree host only degrades as n grows")
	fmt.Fprintln(cfg.Out, "(its threshold log^-6 n shrinks); the open problem asks for a host where it would not.")
	return nil
}
