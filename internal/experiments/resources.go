package experiments

import (
	"fmt"
	"math"

	"ftnet/internal/core"
	"ftnet/internal/rng"
	"ftnet/internal/stats"
	"ftnet/internal/supernode"
	"ftnet/internal/worstcase"
)

func init() {
	register(Experiment{
		ID:    "E1",
		Title: "B^d_n resource bounds",
		PaperClaim: "Theorem 2: B^d_n has at most (1+eps)n^d nodes and degree exactly 6d-2, " +
			"tolerating node-failure probability log^-3d(n)",
		Run: runE1,
	})
	register(Experiment{
		ID:    "E4",
		Title: "A^d_n resource bounds",
		PaperClaim: "Theorem 1: A^d_n has at most c*n^d nodes and degree O(log log n) " +
			"for any c > 1/(1-p)",
		Run: runE4,
	})
}

func runE1(cfg Config) error {
	sides := []int{200, 500, 1500, 4000}
	dims := []int{2, 3}
	if cfg.Quick {
		sides = []int{200, 1500}
		dims = []int{2}
	}
	t := stats.NewTable(cfg.Out, "d", "n", "m", "b", "eps", "nodes", "(1+eps)n^d", "degree", "6d-2")
	for _, d := range dims {
		for _, side := range sides {
			p, err := core.FitParams(d, side, 0.5)
			if err != nil {
				return err
			}
			g, err := core.NewGraph(p)
			if err != nil {
				return err
			}
			bound := float64(p.NumNodes())
			wantBound := (1 + p.Eps()) * math.Pow(float64(p.N()), float64(d))
			// Measure the degree on a node sample.
			r := rng.New(cfg.cellSeed("E1"))
			deg := -1
			for i := 0; i < 20; i++ {
				l := len(g.Neighbors(r.Intn(g.NumNodes()), nil))
				if deg >= 0 && l != deg {
					return fmt.Errorf("E1: non-uniform degree %d vs %d", l, deg)
				}
				deg = l
			}
			if bound > wantBound+0.5 {
				return fmt.Errorf("E1: node bound violated: %v > %v", bound, wantBound)
			}
			t.Row(d, p.N(), p.M(), p.W, fmt.Sprintf("%.3f", p.Eps()),
				p.NumNodes(), int(wantBound), deg, 6*d-2)
		}
	}
	return t.Flush()
}

func runE4(cfg Config) error {
	sides := []int{200, 400, 800, 1600}
	if cfg.Quick {
		sides = []int{200, 800}
	}
	const (
		pNode = 0.1
		q     = 1e-6
		c     = 2.0
	)
	t := stats.NewTable(cfg.Out, "n", "k", "h", "nodes", "c*n^2", "degree", "log2(n)", "log2log2(n)")
	seen := map[int]bool{}
	for _, side := range sides {
		p, err := supernode.FitParams(2, side, pNode, q, c)
		if err != nil {
			return err
		}
		n := p.Side()
		if seen[n] {
			continue // distinct requested sides can round to the same instance
		}
		seen[n] = true
		t.Row(n, p.K, p.H, p.NumNodes(), int(p.C()*float64(n)*float64(n)),
			p.Degree(),
			fmt.Sprintf("%.1f", math.Log2(float64(n))),
			fmt.Sprintf("%.2f", math.Log2(math.Log2(float64(n)))))
	}
	fmt.Fprintln(cfg.Out, "note: degree tracks h = Theta(k^2) = Theta(log log n), versus Theta(log n) for FKP-style hosts (see E6)")
	return t.Flush()
}

func init() {
	register(Experiment{
		ID:    "E7",
		Title: "D^2_{n,k} worst-case tolerance across adversaries",
		PaperClaim: "Theorem 13: degree 8, (n+k^{4/3})^2 nodes, and ANY k node+edge faults " +
			"leave a fault-free n x n torus",
		Run: runE7,
	})
	register(Experiment{
		ID:         "E8",
		Title:      "D^d_{n,k} pigeonhole cascade across dimensions",
		PaperClaim: "Theorem 3: dimension i receives at most k_i = b^{2^d-2^{i-1}} faults and passes at most k_{i+1} on",
		Run:        runE8,
	})
}

func runE7(cfg Config) error {
	type row struct{ n, k int }
	rows := []row{{60, 8}, {100, 27}, {200, 64}, {400, 125}}
	if cfg.Quick {
		rows = []row{{60, 8}, {100, 27}}
	}
	t := stats.NewTable(cfg.Out, "n", "k", "b", "m", "nodes", "degree", "patterns", "tolerated")
	r := rng.New(cfg.cellSeed("E7"))
	for _, rw := range rows {
		g, err := worstcase.NewGraph(worstcase.Params{D: 2, N: rw.n, K: rw.k})
		if err != nil {
			return err
		}
		pats := 0
		ok := 0
		for _, pat := range allPatterns() {
			faults, err := adversarial(pat, g, g.P.Capacity(), r.Split(uint64(pats)))
			if err != nil {
				return err
			}
			pats++
			if _, _, err := g.Tolerate(faults, nil); err == nil {
				ok++
			}
		}
		if ok != pats {
			return fmt.Errorf("E7: n=%d k=%d tolerated only %d/%d adversaries (Theorem 13 violated)", rw.n, rw.k, ok, pats)
		}
		t.Row(g.P.Side(), g.P.Capacity(), g.P.B(), g.P.M(), g.P.NumNodes(), g.P.Degree(),
			pats, fmt.Sprintf("%d/%d", ok, pats))
	}
	return t.Flush()
}

func runE8(cfg Config) error {
	dims := []int{1, 2, 3}
	if cfg.Quick {
		dims = []int{1, 2}
	}
	t := stats.NewTable(cfg.Out, "d", "b", "n", "m", "dim", "k_i (bound)", "received", "bands used")
	r := rng.New(cfg.cellSeed("E8"))
	for _, d := range dims {
		k := []int{16, 27, 128}[d-1]
		nReq := []int{300, 100, 16}[d-1]
		g, err := worstcase.NewGraph(worstcase.Params{D: d, N: nReq, K: k})
		if err != nil {
			return err
		}
		faults, err := adversarial(0, g, g.P.Capacity(), r.Split(uint64(d)))
		if err != nil {
			return err
		}
		mk, err := g.Mask(faults)
		if err != nil {
			return err
		}
		b := g.P.B()
		for dim := 0; dim < d; dim++ {
			// k_i = b^{2^d - 2^{i-1}} with 1-indexed i.
			bound := ipow(b, (1<<uint(d))-(1<<uint(dim)))
			if mk.Passed[dim] > bound {
				return fmt.Errorf("E8: d=%d dim %d received %d > bound %d", d, dim, mk.Passed[dim], bound)
			}
			t.Row(d, b, g.P.Side(), g.P.M(), dim, bound, mk.Passed[dim], len(mk.Bottoms[dim]))
		}
	}
	return t.Flush()
}

func ipow(b, e int) int {
	out := 1
	for i := 0; i < e; i++ {
		out *= b
	}
	return out
}
