package experiments

import (
	"errors"
	"fmt"

	"ftnet/internal/core"
	"ftnet/internal/fault"
	"ftnet/internal/rng"
	"ftnet/internal/stats"
	"ftnet/internal/supernode"
)

func init() {
	register(Experiment{
		ID:    "E2",
		Title: "B^2_n survival vs node-failure probability",
		PaperClaim: "Theorem 2: at p = log^-6(n) the n-torus survives with probability " +
			"1 - n^-Omega(log log n); survival must collapse only well above that threshold",
		Run: runE2,
	})
	register(Experiment{
		ID:         "E3",
		Title:      "Lemma 4 healthiness conditions under increasing p",
		PaperClaim: "Lemma 4: each of the three healthiness conditions fails with probability n^-Omega(log log n) at p = log^-6(n)",
		Run:        runE3,
	})
	register(Experiment{
		ID:         "E5",
		Title:      "A^2_n survival under constant node and edge failure probabilities",
		PaperClaim: "Theorem 1: constant p (and q) are survivable with probability 1 - n^-Omega(log log n)",
		Run:        runE5,
	})
	register(Experiment{
		ID:         "E6",
		Title:      "degree needed for >=95% survival: A^2_n vs FKP-style clusters",
		PaperClaim: "intro: FKP93 needs degree O(log N); Theorem 1 achieves O(log log N)",
		Run:        runE6,
	})
}

// e2Params is the standard survival-sweep instance: n=432, 280k nodes.
func e2Params() core.Params { return core.Params{D: 2, W: 6, Pitch: 18, Scale: 1} }

func runE2(cfg Config) error {
	p := e2Params()
	g, err := core.NewGraph(p)
	if err != nil {
		return err
	}
	pThm := p.TheoremFailureProb()
	multipliers := []float64{0.5, 1, 2, 5, 10, 25, 50, 100, 250}
	trials := cfg.trials(30, 150)
	if cfg.Quick {
		multipliers = []float64{1, 10, 50, 250}
	}
	t := stats.NewTable(cfg.Out, "p", "p/p_thm", "trials", "survived", "rate", "95% CI")
	for _, mult := range multipliers {
		prob := pThm * mult
		res, err := cfg.monteCarlo(trials, cfg.Seed+uint64(mult*1000), coreScratch,
			func(trial int, stream *rng.PCG, scratch any) (stats.Outcome, error) {
				sc := scratch.(*core.Scratch)
				faults := sc.Faults(g.NumNodes())
				faults.Bernoulli(stream, prob)
				_, err := g.ContainTorus(faults, cfg.extractOpts(sc))
				return classify(err)
			})
		if err != nil {
			return err
		}
		t.Row(fmt.Sprintf("%.2e", prob), fmt.Sprintf("%.1fx", mult), res.Trials, res.Successes,
			fmt.Sprintf("%.3f", res.Rate), fmt.Sprintf("[%.2f,%.2f]", res.Lo, res.Hi))
		// Gate on the CI upper bound, not the point estimate: an
		// early-stopped cell (-ci) may hold few trials, and one unlucky
		// failure must not abort a run whose interval still admits the
		// claimed >= 0.99 survival.
		if mult <= 1 && res.Hi < 0.99 {
			return fmt.Errorf("E2: survival %s excludes 0.99 at the theorem's own probability", res)
		}
	}
	fmt.Fprintf(cfg.Out, "n=%d, nodes=%d, p_thm=log^-6(n)=%.2e\n", p.N(), p.NumNodes(), pThm)
	return t.Flush()
}

// classify maps pipeline errors to Monte-Carlo outcomes: unhealthy fault
// patterns are survival failures; anything else is a bug.
func classify(err error) (stats.Outcome, error) {
	if err == nil {
		return stats.Success, nil
	}
	var ue *core.UnhealthyError
	if errors.As(err, &ue) {
		return stats.Failure, nil
	}
	return stats.Failure, err
}

func runE3(cfg Config) error {
	p := e2Params()
	g, err := core.NewGraph(p)
	if err != nil {
		return err
	}
	pThm := p.TheoremFailureProb()
	multipliers := []float64{1, 10, 50, 100, 250, 500}
	if cfg.Quick {
		multipliers = []float64{1, 50, 500}
	}
	trials := cfg.trials(25, 100)
	t := stats.NewTable(cfg.Out, "p/p_thm", "cond1 fail", "cond2 fail", "cond3 fail", "healthy", "placement ok")
	for _, mult := range multipliers {
		prob := pThm * mult
		var c1, c2, c3, healthy, placed int
		r := rng.New(cfg.Seed + uint64(mult*7))
		for trial := 0; trial < trials; trial++ {
			faults := fault.NewSet(g.NumNodes())
			faults.Bernoulli(r.Split(uint64(trial)), prob)
			h := g.CheckHealth(faults)
			if !h.Cond1OK {
				c1++
			}
			if !h.Cond2OK {
				c2++
			}
			if !h.Cond3OK {
				c3++
			}
			if h.Healthy() {
				healthy++
			}
			if _, _, err := g.PlaceBands(faults); err == nil {
				placed++
			} else {
				var ue *core.UnhealthyError
				if !errors.As(err, &ue) {
					return err
				}
			}
		}
		pct := func(x int) string { return fmt.Sprintf("%d/%d", x, trials) }
		t.Row(fmt.Sprintf("%.0fx", mult), pct(c1), pct(c2), pct(c3), pct(healthy), pct(placed))
	}
	return t.Flush()
}

func e5Graph(q float64, h int) (*supernode.Graph, error) {
	return e6Graph(1, q, h)
}

// e6Graph builds A^2 over a base scaled by kappa: guest side 384*kappa.
func e6Graph(scale int, q float64, h int) (*supernode.Graph, error) {
	base := core.Params{D: 2, W: 4, Pitch: 16, Scale: scale}
	return supernode.NewGraph(supernode.Params{Base: base, K: 2, H: h, Q: q})
}

func runE5(cfg Config) error {
	trials := cfg.trials(10, 40)
	type scenario struct {
		p, q float64
		h    int
	}
	scenarios := []scenario{
		{0.05, 0, 10}, {0.10, 0, 10}, {0.20, 0, 16}, {0.30, 0, 24}, {0.10, 1e-6, 16},
	}
	if cfg.Quick {
		scenarios = []scenario{{0.10, 0, 10}, {0.30, 0, 24}}
	}
	t := stats.NewTable(cfg.Out, "p", "q", "h", "degree", "n", "trials", "survived", "rate")
	for i, sc := range scenarios {
		g, err := e5Graph(sc.q, sc.h)
		if err != nil {
			return err
		}
		res, err := cfg.monteCarlo(trials, cfg.Seed+uint64(i*131), nil,
			func(trial int, stream *rng.PCG, _ any) (stats.Outcome, error) {
				fs := g.NewFaultState(stream.Uint64(), sc.p, stream)
				_, _, err := g.Embed(fs)
				if err == nil {
					return stats.Success, nil
				}
				var ue *core.UnhealthyError
				if errors.As(err, &ue) {
					return stats.Failure, nil
				}
				return stats.Failure, err
			})
		if err != nil {
			return err
		}
		t.Row(sc.p, sc.q, sc.h, g.P.Degree(), g.P.Side(), res.Trials, res.Successes,
			fmt.Sprintf("%.2f", res.Rate))
	}
	return t.Flush()
}
func runE6(cfg Config) error {
	// For a sweep of guest sides, find the smallest supernode size h
	// (ours) and cluster size g (FKP style) reaching >= 95% survival at
	// p = 0.2, then compare the degrees and their growth.
	const pNode = 0.2
	scales := []int{1, 2}
	if !cfg.Quick {
		scales = []int{1, 2, 4}
	}

	findOursH := func(scale, trials int) (int, int, error) {
		for h := 5; h <= 40; h++ {
			g, err := e6Graph(scale, 0, h)
			if err != nil {
				continue
			}
			res, err := cfg.monteCarlo(trials, cfg.Seed+uint64(scale*100+h), nil,
				func(trial int, stream *rng.PCG, _ any) (stats.Outcome, error) {
					fs := g.NewFaultState(stream.Uint64(), pNode, stream)
					_, _, err := g.Embed(fs)
					return classify(err)
				})
			if err != nil {
				return 0, 0, err
			}
			if res.Rate >= 0.95 {
				return h, g.P.Degree(), nil
			}
		}
		return 0, 0, fmt.Errorf("E6: no h <= 40 reaches 95%%")
	}

	findClusterG := func(side, trials int) (int, int, error) {
		for g := 2; g <= 40; g++ {
			ct, err := newCluster(side, g)
			if err != nil {
				return 0, 0, err
			}
			res, err := cfg.monteCarlo(trials, cfg.Seed+uint64(side*10+g), nil,
				func(trial int, stream *rng.PCG, _ any) (stats.Outcome, error) {
					faults := fault.NewSet(ct.NumNodes())
					faults.Bernoulli(stream, pNode)
					if _, err := ct.Embed(faults, nil); err != nil {
						return stats.Failure, nil
					}
					return stats.Success, nil
				})
			if err != nil {
				return 0, 0, err
			}
			if res.Rate >= 0.95 {
				return g, ct.Degree(), nil
			}
		}
		return 0, 0, fmt.Errorf("E6: no cluster size <= 40 reaches 95%%")
	}

	t := stats.NewTable(cfg.Out, "side n", "ours h", "ours degree", "cluster g", "cluster degree")
	for _, scale := range scales {
		side := 384 * scale
		trials := cfg.trials(8, 20)
		if scale >= 4 {
			trials = cfg.trials(5, 10)
		}
		hOurs, degOurs, err := findOursH(scale, trials)
		if err != nil {
			return err
		}
		gBase, degBase, err := findClusterG(side, trials)
		if err != nil {
			return err
		}
		t.Row(side, hOurs, degOurs, gBase, degBase)
	}
	fmt.Fprintf(cfg.Out, "p=%.2f; the cluster size g tracks log(n) (theory: g >= 2*ln(n)/ln(1/p))\n"+
		"while ours stays pinned near h = Theta(k^2), k^2=4 — the paper's O(log N) vs O(log log N) gap.\n"+
		"Ours pays a larger constant (11h vs (2d+1)g per node), which dominates at these small sides.\n", pNode)
	return t.Flush()
}
