package experiments

import (
	"errors"
	"fmt"

	"ftnet/internal/core"
	"ftnet/internal/fault"
	"ftnet/internal/rng"
	"ftnet/internal/stats"
	"ftnet/internal/supernode"
	"ftnet/internal/sweep"
)

func init() {
	register(Experiment{
		ID:    "E2",
		Title: "B^2_n survival vs node-failure probability",
		PaperClaim: "Theorem 2: at p = log^-6(n) the n-torus survives with probability " +
			"1 - n^-Omega(log log n); survival must collapse only well above that threshold",
		Run: runE2,
	})
	register(Experiment{
		ID:         "E3",
		Title:      "Lemma 4 healthiness conditions under increasing p",
		PaperClaim: "Lemma 4: each of the three healthiness conditions fails with probability n^-Omega(log log n) at p = log^-6(n)",
		Run:        runE3,
	})
	register(Experiment{
		ID:         "E5",
		Title:      "A^2_n survival under constant node and edge failure probabilities",
		PaperClaim: "Theorem 1: constant p (and q) are survivable with probability 1 - n^-Omega(log log n)",
		Run:        runE5,
	})
	register(Experiment{
		ID:         "E6",
		Title:      "degree needed for >=95% survival: A^2_n vs FKP-style clusters",
		PaperClaim: "intro: FKP93 needs degree O(log N); Theorem 1 achieves O(log log N)",
		Run:        runE6,
	})
}

// e2Params is the standard survival-sweep instance: n=432, 280k nodes.
func e2Params() core.Params { return core.Params{D: 2, W: 6, Pitch: 18, Scale: 1} }

func runE2(cfg Config) error {
	p := e2Params()
	g, err := core.NewGraph(p)
	if err != nil {
		return err
	}
	pThm := p.TheoremFailureProb()
	multipliers := []float64{0.5, 1, 2, 5, 10, 25, 50, 100, 250}
	trials := cfg.trials(30, 150)
	if cfg.Quick {
		multipliers = []float64{1, 10, 50, 250}
	}
	rates := make([]float64, len(multipliers))
	for i, mult := range multipliers {
		rates[i] = pThm * mult
	}
	// The whole curve is one coupled sweep: every trial walks the rate
	// ladder on nested fault sets, so the nine rungs cost little more
	// than the most expensive one (see internal/sweep; Config.Independent
	// restores the legacy one-cell-per-rate evaluation).
	curve, err := sweep.SurvivalCurve(g, rates, trials, cfg.cellSeed("E2"), cfg.sweepConfig())
	if err != nil {
		return err
	}
	t := stats.NewTable(cfg.Out, "p", "p/p_thm", "trials", "survived", "rate", "95% CI")
	for i, rung := range curve.Rungs {
		res := rung.Result
		t.Row(fmt.Sprintf("%.2e", rung.Rate), fmt.Sprintf("%.1fx", multipliers[i]), res.Trials, res.Successes,
			fmt.Sprintf("%.3f", res.Rate), fmt.Sprintf("[%.2f,%.2f]", res.Lo, res.Hi))
		// Gate on the CI upper bound, not the point estimate: an
		// early-stopped cell (-ci) may hold few trials, and one unlucky
		// failure must not abort a run whose interval still admits the
		// claimed >= 0.99 survival.
		if multipliers[i] <= 1 && res.Hi < 0.99 {
			return fmt.Errorf("E2: survival %s excludes 0.99 at the theorem's own probability", res)
		}
	}
	fmt.Fprintf(cfg.Out, "n=%d, nodes=%d, p_thm=log^-6(n)=%.2e\n", p.N(), p.NumNodes(), pThm)
	return t.Flush()
}

// classify maps pipeline errors to Monte-Carlo outcomes: unhealthy fault
// patterns are survival failures; anything else is a bug.
func classify(err error) (stats.Outcome, error) {
	if err == nil {
		return stats.Success, nil
	}
	var ue *core.UnhealthyError
	if errors.As(err, &ue) {
		return stats.Failure, nil
	}
	return stats.Failure, err
}

func runE3(cfg Config) error {
	p := e2Params()
	g, err := core.NewGraph(p)
	if err != nil {
		return err
	}
	pThm := p.TheoremFailureProb()
	multipliers := []float64{1, 10, 50, 100, 250, 500}
	if cfg.Quick {
		multipliers = []float64{1, 50, 500}
	}
	trials := cfg.trials(25, 100)
	rates := make([]float64, len(multipliers))
	for i, mult := range multipliers {
		rates[i] = pThm * mult
	}
	// One coupled ladder cell: each trial walks all rates on nested fault
	// sets (previously a fresh serial Monte-Carlo loop per rate), and the
	// five diagnostics of a rate share its health check and placement.
	const slots = 5 // cond1 fail, cond2 fail, cond3 fail, healthy, placement ok
	type e3Scratch struct {
		sc    *core.Scratch
		added []int
	}
	outcome := func(b bool) stats.Outcome {
		if b {
			return stats.Success
		}
		return stats.Failure
	}
	rep, err := cfg.ladder(trials, len(rates)*slots, cfg.cellSeed("E3"),
		func() any { return &e3Scratch{sc: core.NewScratch(1)} },
		func(trial int, stream *rng.PCG, scratch any, stopped []bool, out []stats.Outcome) error {
			es := scratch.(*e3Scratch)
			faults := es.sc.Faults(g.NumNodes())
			prev := 0.0
			for r, rate := range rates {
				var err error
				es.added, err = faults.Extend(stream, prev, rate, es.added[:0])
				if err != nil {
					return err
				}
				prev = rate
				base := r * slots
				live := false
				for s := 0; s < slots; s++ {
					if !stopped[base+s] {
						live = true
						break
					}
				}
				if !live {
					continue
				}
				h := g.CheckHealth(faults)
				out[base+0] = outcome(!h.Cond1OK)
				out[base+1] = outcome(!h.Cond2OK)
				out[base+2] = outcome(!h.Cond3OK)
				out[base+3] = outcome(h.Healthy())
				placed := false
				var placeErr error
				if cfg.Dense {
					// Honor the -dense ablation: the scratch-backed call
					// below always takes the locality fast path.
					_, _, placeErr = g.PlaceBands(faults)
				} else {
					_, _, placeErr = g.PlaceBandsScratch(faults, es.sc)
				}
				if placeErr == nil {
					placed = true
				} else {
					var ue *core.UnhealthyError
					if !errors.As(placeErr, &ue) {
						return placeErr
					}
				}
				out[base+4] = outcome(placed)
			}
			return nil
		})
	if err != nil {
		return err
	}
	t := stats.NewTable(cfg.Out, "p/p_thm", "cond1 fail", "cond2 fail", "cond3 fail", "healthy", "placement ok")
	for i, mult := range multipliers {
		cells := make([]any, 0, slots+1)
		cells = append(cells, fmt.Sprintf("%.0fx", mult))
		for s := 0; s < slots; s++ {
			res := rep.Rungs[i*slots+s].Result
			cells = append(cells, fmt.Sprintf("%d/%d", res.Successes, res.Trials))
		}
		t.Row(cells...)
	}
	return t.Flush()
}

func e5Graph(q float64, h int) (*supernode.Graph, error) {
	return e6Graph(1, q, h)
}

// e6Graph builds A^2 over a base scaled by kappa: guest side 384*kappa.
func e6Graph(scale int, q float64, h int) (*supernode.Graph, error) {
	base := core.Params{D: 2, W: 4, Pitch: 16, Scale: scale}
	return supernode.NewGraph(supernode.Params{Base: base, K: 2, H: h, Q: q})
}

func runE5(cfg Config) error {
	trials := cfg.trials(10, 40)
	type scenario struct {
		p, q float64
		h    int
	}
	scenarios := []scenario{
		{0.05, 0, 10}, {0.10, 0, 10}, {0.20, 0, 16}, {0.30, 0, 24}, {0.10, 1e-6, 16},
	}
	if cfg.Quick {
		scenarios = []scenario{{0.10, 0, 10}, {0.30, 0, 24}}
	}
	graphs := make([]*supernode.Graph, len(scenarios))
	for i, sc := range scenarios {
		g, err := e5Graph(sc.q, sc.h)
		if err != nil {
			return err
		}
		graphs[i] = g
	}
	// All scenarios share one vector cell: a trial evaluates every
	// scenario under common random numbers (one per-trial key, one
	// substream per scenario, so a scenario early-stopping never perturbs
	// the others' draws), and each scenario keeps its own Wilson stop.
	rep, err := cfg.ladder(trials, len(scenarios), cfg.cellSeed("E5"), nil,
		func(trial int, stream *rng.PCG, _ any, stopped []bool, out []stats.Outcome) error {
			tkey := stream.Uint64()
			for i, sc := range scenarios {
				if stopped[i] {
					continue
				}
				sub := rng.NewPCG(tkey, uint64(i))
				fs := graphs[i].NewFaultState(sub.Uint64(), sc.p, sub)
				_, _, err := graphs[i].Embed(fs)
				if err != nil {
					var ue *core.UnhealthyError
					if !errors.As(err, &ue) {
						return err
					}
					out[i] = stats.Failure
					continue
				}
				out[i] = stats.Success
			}
			return nil
		})
	if err != nil {
		return err
	}
	t := stats.NewTable(cfg.Out, "p", "q", "h", "degree", "n", "trials", "survived", "rate")
	for i, sc := range scenarios {
		res := rep.Rungs[i].Result
		t.Row(sc.p, sc.q, sc.h, graphs[i].P.Degree(), graphs[i].P.Side(), res.Trials, res.Successes,
			fmt.Sprintf("%.2f", res.Rate))
	}
	return t.Flush()
}
func runE6(cfg Config) error {
	// For a sweep of guest sides, find the smallest supernode size h
	// (ours) and cluster size g (FKP style) reaching >= 95% survival at
	// p = 0.2, then compare the degrees and their growth.
	const pNode = 0.2
	scales := []int{1, 2}
	if !cfg.Quick {
		scales = []int{1, 2, 4}
	}

	findOursH := func(scale, trials int) (int, int, error) {
		for h := 5; h <= 40; h++ {
			g, err := e6Graph(scale, 0, h)
			if err != nil {
				continue
			}
			res, err := cfg.monteCarlo(trials, cfg.cellSeed("E6", 0, uint64(scale), uint64(h)), nil,
				func(trial int, stream *rng.PCG, _ any) (stats.Outcome, error) {
					fs := g.NewFaultState(stream.Uint64(), pNode, stream)
					_, _, err := g.Embed(fs)
					return classify(err)
				})
			if err != nil {
				return 0, 0, err
			}
			if res.Rate >= 0.95 {
				return h, g.P.Degree(), nil
			}
		}
		return 0, 0, fmt.Errorf("E6: no h <= 40 reaches 95%%")
	}

	findClusterG := func(side, trials int) (int, int, error) {
		for g := 2; g <= 40; g++ {
			ct, err := newCluster(side, g)
			if err != nil {
				return 0, 0, err
			}
			res, err := cfg.monteCarlo(trials, cfg.cellSeed("E6", 1, uint64(side), uint64(g)), nil,
				func(trial int, stream *rng.PCG, _ any) (stats.Outcome, error) {
					faults := fault.NewSet(ct.NumNodes())
					faults.Bernoulli(stream, pNode)
					if _, err := ct.Embed(faults, nil); err != nil {
						return stats.Failure, nil
					}
					return stats.Success, nil
				})
			if err != nil {
				return 0, 0, err
			}
			if res.Rate >= 0.95 {
				return g, ct.Degree(), nil
			}
		}
		return 0, 0, fmt.Errorf("E6: no cluster size <= 40 reaches 95%%")
	}

	t := stats.NewTable(cfg.Out, "side n", "ours h", "ours degree", "cluster g", "cluster degree")
	for _, scale := range scales {
		side := 384 * scale
		trials := cfg.trials(8, 20)
		if scale >= 4 {
			trials = cfg.trials(5, 10)
		}
		hOurs, degOurs, err := findOursH(scale, trials)
		if err != nil {
			return err
		}
		gBase, degBase, err := findClusterG(side, trials)
		if err != nil {
			return err
		}
		t.Row(side, hOurs, degOurs, gBase, degBase)
	}
	fmt.Fprintf(cfg.Out, "p=%.2f; the cluster size g tracks log(n) (theory: g >= 2*ln(n)/ln(1/p))\n"+
		"while ours stays pinned near h = Theta(k^2), k^2=4 — the paper's O(log N) vs O(log log N) gap.\n"+
		"Ours pays a larger constant (11h vs (2d+1)g per node), which dominates at these small sides.\n", pNode)
	return t.Flush()
}
