package experiments

import (
	"fmt"

	"ftnet/internal/core"
	"ftnet/internal/stats"
	"ftnet/internal/sweep"
)

func init() {
	register(Experiment{
		ID:    "A4",
		Title: "ablation: survival threshold location vs band width b",
		PaperClaim: "Theorem 2's tolerated probability is log^-3d(n) with b ~ log n; the measured " +
			"50%-survival point should track (a constant multiple of) that prediction as b and n grow",
		Run: runA4,
	})
}

func runA4(cfg Config) error {
	instances := []core.Params{
		{D: 2, W: 4, Pitch: 16, Scale: 1}, // n=192
		{D: 2, W: 6, Pitch: 18, Scale: 1}, // n=432
		{D: 2, W: 8, Pitch: 32, Scale: 1}, // n=1536
	}
	if cfg.Quick {
		instances = instances[:2]
	}
	trials := cfg.trials(12, 30)
	t := stats.NewTable(cfg.Out, "b", "n", "nodes", "p_thm=log^-6 n", "p50 (measured)", "p50/p_thm")
	for _, params := range instances {
		g, err := core.NewGraph(params)
		if err != nil {
			return err
		}
		pThm := params.TheoremFailureProb()
		// Every probe of the bracket/bisection re-evaluates the same
		// coupled per-trial fault universes (sweep.Probes): the measured
		// rate is monotone in p on the shared trial set, so bisection
		// decisions compare the same randomness instead of resampling
		// noise at every probe. The grid base pThm matches the doubling
		// bracket below.
		probes, err := sweep.NewProbes(g, trials, cfg.cellSeed("A4", uint64(params.W)), pThm, cfg.sweepConfig())
		if err != nil {
			return err
		}
		rate := func(prob float64) (float64, error) {
			res, err := probes.Rate(prob)
			if err != nil {
				return 0, err
			}
			return res.Rate, nil
		}
		// Bracket the 50% point by doubling, then bisect a few times.
		lo, hi := pThm, 2*pThm
		for {
			r, err := rate(hi)
			if err != nil {
				return err
			}
			if r < 0.5 || hi > 0.5 {
				break
			}
			lo = hi
			hi *= 2
		}
		for i := 0; i < 5; i++ {
			mid := (lo + hi) / 2
			r, err := rate(mid)
			if err != nil {
				return err
			}
			if r >= 0.5 {
				lo = mid
			} else {
				hi = mid
			}
		}
		p50 := (lo + hi) / 2
		t.Row(params.W, params.N(), params.NumNodes(),
			fmt.Sprintf("%.2e", pThm), fmt.Sprintf("%.2e", p50), fmt.Sprintf("%.0fx", p50/pThm))
	}
	fmt.Fprintln(cfg.Out, "the measured knee sits a constant factor above log^-6(n) across widths,")
	fmt.Fprintln(cfg.Out, "confirming the threshold's scaling (the constant is the paper's hidden Omega).")
	return t.Flush()
}
