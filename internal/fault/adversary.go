package fault

import (
	"fmt"

	"ftnet/internal/fterr"
	"ftnet/internal/grid"
	"ftnet/internal/rng"
)

// Pattern names an adversarial fault placement strategy used to stress the
// worst-case construction D^d_{n,k} (paper, Theorem 3). The guarantee of
// Theorem 3 is for *any* fault set of size k, so the test suite exercises a
// spread of qualitatively different adversaries.
type Pattern int

const (
	// Uniform places k faults uniformly at random.
	Uniform Pattern = iota
	// Cluster packs all faults into the densest possible axis-aligned box.
	Cluster
	// RowSweep concentrates faults on as few dimension-0 rows as possible,
	// attacking the first pigeonhole stage.
	RowSweep
	// Diagonal places faults along a wrapped diagonal, touching as many
	// distinct rows, columns and residue classes as possible.
	Diagonal
	// ClassSpread spreads faults evenly across the cyclic residue classes
	// mod (b+1) of dimension 0, maximizing the per-class minimum the
	// pigeonhole argument must beat.
	ClassSpread
	// ColumnSweep concentrates faults on as few last-dimension columns as
	// possible, attacking the final pigeonhole stage.
	ColumnSweep
)

var patternNames = map[Pattern]string{
	Uniform:     "uniform",
	Cluster:     "cluster",
	RowSweep:    "rowsweep",
	Diagonal:    "diagonal",
	ClassSpread: "classspread",
	ColumnSweep: "columnsweep",
}

func (p Pattern) String() string {
	if s, ok := patternNames[p]; ok {
		return s
	}
	return fmt.Sprintf("pattern(%d)", int(p))
}

// AllPatterns lists every adversarial pattern.
func AllPatterns() []Pattern {
	return []Pattern{Uniform, Cluster, RowSweep, Diagonal, ClassSpread, ColumnSweep}
}

// Adversarial places k faults on a host with the given node shape following
// the pattern. classMod is the residue modulus attacked by ClassSpread
// (pass b+1 from the construction; any value >= 2 is accepted).
func Adversarial(p Pattern, shape grid.Shape, k int, classMod int, r rng.Source) (*Set, error) {
	n := shape.Size()
	if k > n {
		return nil, fterr.New(fterr.Invalid, "fault", "%d faults exceed %d nodes", k, n)
	}
	s := NewSet(n)
	d := len(shape)
	coord := make([]int, d)
	switch p {
	case Uniform:
		if err := s.ExactRandom(r, k); err != nil {
			return nil, err
		}
	case Cluster:
		// Fill a near-cubical box anchored at a random corner.
		side := 1
		for pow(side+1, d) <= k {
			side++
		}
		anchor := make([]int, d)
		for i := range anchor {
			anchor[i] = r.Intn(shape[i])
		}
		placed := 0
		for idx := 0; placed < k && idx < n; idx++ {
			// Enumerate the box row-major in local coordinates.
			rem := idx
			ok := true
			for i := d - 1; i >= 0; i-- {
				c := rem % (side + 1)
				rem /= (side + 1)
				if c >= shape[i] {
					ok = false
					break
				}
				coord[i] = grid.Add(anchor[i], c, shape[i])
			}
			if rem != 0 || !ok {
				break
			}
			s.Add(shape.Index(coord))
			placed++
		}
		// Top up with random faults if the box enumeration ran out.
		if placed < k {
			if err := s.ExactRandom(r, k-placed); err != nil {
				return nil, err
			}
		}
	case RowSweep:
		cols := 1
		for i := 1; i < d; i++ {
			cols *= shape[i]
		}
		colShape := grid.Shape(shape[1:])
		row := r.Intn(shape[0])
		placed := 0
		for placed < k {
			for z := 0; z < cols && placed < k; z++ {
				coord[0] = row
				if d > 1 {
					colShape.Coord(z, coord[1:])
				}
				idx := shape.Index(coord)
				if !s.Has(idx) {
					s.Add(idx)
					placed++
				}
			}
			row = grid.Add(row, 1, shape[0])
		}
	case ColumnSweep:
		perCol := shape[d-1]
		col := r.Intn(n / max(1, perCol))
		placed := 0
		for placed < k {
			base := col * perCol
			for j := 0; j < perCol && placed < k; j++ {
				idx := base + j
				if !s.Has(idx) {
					s.Add(idx)
					placed++
				}
			}
			col = (col + 1) % (n / max(1, perCol))
		}
	case Diagonal:
		start := make([]int, d)
		for i := range start {
			start[i] = r.Intn(shape[i])
		}
		// Walk wrapped diagonals; when one diagonal is exhausted, shift to
		// the next (offset the first coordinate by one).
		placed := 0
		for diag := 0; placed < k && diag < shape[0]; diag++ {
			span := shape[0]
			for _, v := range shape {
				if v > span {
					span = v
				}
			}
			for step := 0; step < span && placed < k; step++ {
				coord[0] = grid.Add(start[0]+diag, step, shape[0])
				for i := 1; i < d; i++ {
					coord[i] = grid.Add(start[i], step, shape[i])
				}
				idx := shape.Index(coord)
				if !s.Has(idx) {
					s.Add(idx)
					placed++
				}
			}
		}
		if placed < k {
			if err := s.ExactRandom(r, k-placed); err != nil {
				return nil, err
			}
		}
	case ClassSpread:
		if classMod < 2 {
			classMod = 2
		}
		placed := 0
		for round := 0; placed < k; round++ {
			for c := 0; c < classMod && placed < k; c++ {
				// Random column, row pinned to residue class c.
				for i := 1; i < d; i++ {
					coord[i] = r.Intn(shape[i])
				}
				base := c + (round*(classMod))%shape[0]
				coord[0] = base % shape[0]
				idx := shape.Index(coord)
				if !s.Has(idx) {
					s.Add(idx)
					placed++
				}
			}
			if round > 4*n {
				return nil, fterr.New(fterr.Internal, "fault", "classspread pattern failed to place %d faults", k)
			}
		}
	default:
		return nil, fterr.New(fterr.Invalid, "fault", "unknown pattern %v", p)
	}
	if s.Count() != k {
		return nil, fterr.New(fterr.Internal, "fault", "pattern %v placed %d faults, want %d", p, s.Count(), k)
	}
	return s, nil
}

func pow(base, exp int) int {
	out := 1
	for i := 0; i < exp; i++ {
		out *= base
	}
	return out
}
