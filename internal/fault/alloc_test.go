package fault

import (
	"testing"

	"ftnet/internal/rng"
)

// TestHotPathAllocs is the runtime counterpart of the hotpath analyzer
// (internal/analysis/hotpath) for the //ftnet:hotpath-annotated
// record/skip samplers: with caller-sized record slices they must run
// allocation-free. The static rule and this measurement cross-check
// each other — break either and the other still fails.
func TestHotPathAllocs(t *testing.T) {
	const n = 1 << 12
	s := NewSet(n)
	r := rng.NewPCG(7, 11)
	buf := make([]int, 0, n)

	if a := testing.AllocsPerRun(100, func() {
		s.Clear()
		buf = s.BernoulliRecord(r, 0.02, buf[:0])
	}); a > 0 {
		t.Errorf("BernoulliRecord: %v allocs/op, want 0", a)
	}

	// Re-sampling the base set inside the measured closure would charge
	// Bernoulli's internal nil-slice growth to the target, so each run
	// instead reverts its own recorded delta: RemoveAll undoes Extend
	// exactly, and re-adding undoes RemoveRecord.
	s.Clear()
	s.Bernoulli(r, 0.02)
	if a := testing.AllocsPerRun(100, func() {
		var err error
		buf, err = s.Extend(r, 0.02, 0.05, buf[:0])
		if err != nil {
			t.Fatalf("Extend: %v", err)
		}
		s.RemoveAll(buf)
	}); a > 0 {
		t.Errorf("Extend: %v allocs/op, want 0", a)
	}

	s.Clear()
	s.Bernoulli(r, 0.05)
	if a := testing.AllocsPerRun(100, func() {
		buf = s.RemoveRecord(r, 0.5, buf[:0])
		for _, i := range buf {
			s.Add(i)
		}
	}); a > 0 {
		t.Errorf("RemoveRecord: %v allocs/op, want 0", a)
	}
}
