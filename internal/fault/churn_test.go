package fault

import (
	"math"
	"sort"
	"testing"

	"ftnet/internal/rng"
)

// TestAddThenClearRoundTrip pins the undo path the churn engine relies
// on: a batch added through BernoulliRecord is exactly reverted by
// RemoveAll of the recorded delta, and the touched-word list still
// covers precisely the words the batch occupied — no missing word (Clear
// would leave stale bits) and no extraneous word (Clear would scrub
// words it never needed to).
func TestAddThenClearRoundTrip(t *testing.T) {
	const n = 1 << 14
	s := NewSet(n)
	s.Clear() // establish the touched-word list
	for seed := uint64(0); seed < 30; seed++ {
		r := rng.NewPCG(41, seed)
		added := s.BernoulliRecord(r, 0.002+0.01*float64(seed%5), nil)

		wantWords := map[int32]bool{}
		for _, i := range added {
			wantWords[int32(i>>6)] = true
		}
		gotWords := map[int32]bool{}
		for _, w := range s.touched {
			gotWords[w] = true
		}
		if len(gotWords) != len(wantWords) {
			t.Fatalf("seed %d: touched covers %d distinct words, want %d", seed, len(gotWords), len(wantWords))
		}
		for w := range wantWords {
			if !gotWords[w] {
				t.Fatalf("seed %d: word %d holds faults but is not in the touched list", seed, w)
			}
		}

		s.RemoveAll(added)
		if s.Count() != 0 {
			t.Fatalf("seed %d: add-then-undo leaves %d faults", seed, s.Count())
		}
		for _, i := range added {
			if s.Has(i) {
				t.Fatalf("seed %d: node %d still faulty after undo", seed, i)
			}
		}
		// The words are zero again, so Clear's touched-list scrub must
		// restore a state indistinguishable from a fresh set.
		s.Clear()
		if len(s.touched) != 0 {
			t.Fatalf("seed %d: touched list not emptied by Clear", seed)
		}
		for w, word := range s.bits {
			if word != 0 {
				t.Fatalf("seed %d: word %d nonzero after undo+Clear", seed, w)
			}
		}
	}
}

// TestRemoveRecordExactDelta drives random add/remove interleavings
// against a plain map model: RemoveRecord must report exactly the nodes
// that transitioned faulty -> healthy, in increasing order, and leave
// every other node untouched.
func TestRemoveRecordExactDelta(t *testing.T) {
	const n = 5000
	for seed := uint64(0); seed < 10; seed++ {
		r := rng.NewPCG(99, seed)
		s := NewSet(n)
		model := map[int]bool{}
		for step := 0; step < 40; step++ {
			if r.Float64() < 0.5 || len(model) == 0 {
				added := s.BernoulliRecord(r, 0.01, nil)
				for _, i := range added {
					if model[i] {
						t.Fatalf("seed %d step %d: node %d reported added but already faulty", seed, step, i)
					}
					model[i] = true
				}
			} else {
				removed := s.RemoveRecord(r, 0.3, nil)
				if !sort.IntsAreSorted(removed) {
					t.Fatalf("seed %d step %d: removed list not increasing: %v", seed, step, removed)
				}
				for _, i := range removed {
					if !model[i] {
						t.Fatalf("seed %d step %d: node %d reported removed but was healthy", seed, step, i)
					}
					delete(model, i)
				}
			}
			if s.Count() != len(model) {
				t.Fatalf("seed %d step %d: count %d, model %d", seed, step, s.Count(), len(model))
			}
			for _, i := range s.Slice() {
				if !model[i] {
					t.Fatalf("seed %d step %d: node %d faulty in set, healthy in model", seed, step, i)
				}
			}
		}
	}
}

// TestRemoveRecordMarginals checks the healing probability: over many
// independent passes at rate p, each faulty node must be removed with
// marginal probability p (binomial confidence band), mirroring the
// Extend marginal test on the additive side.
func TestRemoveRecordMarginals(t *testing.T) {
	const n = 20000
	const walks = 400
	p := 0.2
	removedTotal := 0
	faultyTotal := 0
	for w := uint64(0); w < walks; w++ {
		r := rng.NewPCG(7, w)
		s := NewSet(n)
		s.Bernoulli(r, 0.05)
		faultyTotal += s.Count()
		before := s.Count()
		rem := s.RemoveRecord(r, p, nil)
		removedTotal += len(rem)
		if s.Count()+len(rem) != before {
			t.Fatalf("walk %d: %d + %d removed != %d before", w, s.Count(), len(rem), before)
		}
	}
	mean := float64(removedTotal) / float64(faultyTotal)
	sigma := math.Sqrt(p * (1 - p) / float64(faultyTotal))
	if math.Abs(mean-p) > 5*sigma {
		t.Fatalf("healing rate %.4f, want %.4f +- %.4f", mean, p, 5*sigma)
	}
	// Edge rates: p=0 removes nothing, p=1 removes everything.
	s := NewSet(100)
	s.Bernoulli(rng.New(3), 0.3)
	before := s.Count()
	if got := s.RemoveRecord(rng.New(4), 0, nil); len(got) != 0 || s.Count() != before {
		t.Fatal("p=0 must be a no-op")
	}
	if got := s.RemoveRecord(rng.New(5), 1, nil); len(got) != before || s.Count() != 0 {
		t.Fatalf("p=1 removed %d of %d", len(got), before)
	}
}

// TestNth pins the rank-select helper against the sorted slice view.
func TestNth(t *testing.T) {
	for seed := uint64(0); seed < 5; seed++ {
		s := NewSet(3000)
		s.Bernoulli(rng.NewPCG(11, seed), 0.02)
		want := s.Slice()
		for k, idx := range want {
			if got := s.Nth(k); got != idx {
				t.Fatalf("seed %d: Nth(%d) = %d, want %d", seed, k, got, idx)
			}
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Nth out of range must panic")
		}
	}()
	NewSet(10).Nth(0)
}
