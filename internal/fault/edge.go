package fault

import "sort"

// Edge is an undirected host edge in canonical orientation: U < V. Build
// one with CanonEdge so the invariant holds regardless of the order the
// endpoints were reported in.
type Edge struct {
	U, V int
}

// CanonEdge returns the canonical (sorted) form of the edge {u, v}.
func CanonEdge(u, v int) Edge {
	if u > v {
		u, v = v, u
	}
	return Edge{U: u, V: v}
}

// EdgeSet is a sparse set of faulty host edges, the edge-fault analogue
// of Set. Edges are stored canonically (U < V); Add and Remove accept
// either endpoint order and report whether the set changed, mirroring
// Set's add/remove/record style. The zero density assumption is baked
// in: edge faults are sparse (O(faults)), so a map + dense list beats a
// bitset over the Theta(n * degree) edge universe.
//
// Nth indexes the internal list, whose order depends on the mutation
// history (removal swaps the last edge into the hole) — deterministic
// for a deterministic caller, but not sorted. Slice and ForEach are the
// canonical views: always lexicographically sorted by (U, V).
type EdgeSet struct {
	idx  map[Edge]int
	list []Edge
}

// NewEdgeSet returns an empty edge-fault set.
func NewEdgeSet() *EdgeSet {
	return &EdgeSet{idx: make(map[Edge]int)}
}

// Count returns the number of faulty edges.
func (s *EdgeSet) Count() int { return len(s.list) }

// Has reports whether the edge {u, v} is faulty (either endpoint order).
func (s *EdgeSet) Has(u, v int) bool {
	_, ok := s.idx[CanonEdge(u, v)]
	return ok
}

// Add marks the edge {u, v} faulty and reports whether the set changed
// (false when the edge was already faulty).
func (s *EdgeSet) Add(u, v int) bool {
	e := CanonEdge(u, v)
	if _, ok := s.idx[e]; ok {
		return false
	}
	s.idx[e] = len(s.list)
	s.list = append(s.list, e)
	return true
}

// Remove marks the edge {u, v} repaired and reports whether the set
// changed (false when the edge was not faulty).
func (s *EdgeSet) Remove(u, v int) bool {
	e := CanonEdge(u, v)
	i, ok := s.idx[e]
	if !ok {
		return false
	}
	last := len(s.list) - 1
	moved := s.list[last]
	s.list[i] = moved
	s.idx[moved] = i
	s.list = s.list[:last]
	delete(s.idx, e)
	return true
}

// Clear empties the set, retaining capacity.
func (s *EdgeSet) Clear() {
	for _, e := range s.list {
		delete(s.idx, e)
	}
	s.list = s.list[:0]
}

// Clone returns an independent copy.
func (s *EdgeSet) Clone() *EdgeSet {
	c := &EdgeSet{
		idx:  make(map[Edge]int, len(s.idx)),
		list: append([]Edge(nil), s.list...),
	}
	for e, i := range s.idx {
		c.idx[e] = i
	}
	return c
}

// Nth returns the i-th edge of the internal list (0 <= i < Count). The
// order is mutation-history dependent; use it only for uniform random
// draws with an index the caller chose (e.g. Gillespie repair events).
func (s *EdgeSet) Nth(i int) Edge { return s.list[i] }

// Slice returns the faulty edges sorted lexicographically by (U, V), as
// a fresh slice. This is the canonical order used by snapshots and the
// wire format.
func (s *EdgeSet) Slice() []Edge {
	out := append([]Edge(nil), s.list...)
	sort.Slice(out, func(a, b int) bool {
		if out[a].U != out[b].U {
			return out[a].U < out[b].U
		}
		return out[a].V < out[b].V
	})
	return out
}

// ForEach calls fn for every faulty edge in canonical sorted order.
func (s *EdgeSet) ForEach(fn func(Edge)) {
	for _, e := range s.Slice() {
		fn(e)
	}
}

// Charger maintains the paper's Theorem 2 edge-fault reduction as an
// incrementally updated view: each faulty edge is charged to its
// canonical endpoint (the smaller index), and the *effective* fault set
// — user-reported node faults plus charged endpoints — is what the
// placement pipeline evaluates. An embedding verified against the
// effective set touches no charged node, hence no host edge incident to
// one, hence no faulty edge.
//
// The charge rule is a pure function of the edge set (min endpoint,
// unconditionally), so the effective set is deterministic and
// order-independent: any mutation order producing the same node and
// edge sets yields the same effective set, and therefore a bit-identical
// embedding.
//
// Every mutation reports the single effective-set index it changed (or
// -1), exactly what core.Session.NoteAdded/NoteCleared need to keep the
// dirty-column delta machinery in sync. Reference counts (charges per
// node) make clears exact: repairing one of two edges charged to the
// same node leaves the node effectively faulty, and repairing an edge
// charged to a user-faulty node never un-faults it.
type Charger struct {
	nodes  *Set
	edges  *EdgeSet
	eff    *Set
	charge map[int]int // node -> number of faulty edges charged to it
}

// NewCharger returns a charger over a host with n nodes, with no faults.
func NewCharger(n int) *Charger {
	return &Charger{
		nodes:  NewSet(n),
		edges:  NewEdgeSet(),
		eff:    NewSet(n),
		charge: make(map[int]int),
	}
}

// Reset empties all three sets and the charge counts, retaining
// capacity — the per-trial scratch pattern of the Monte-Carlo engines
// (cost O(faults), like Set.Clear, not O(n)).
func (c *Charger) Reset() {
	c.nodes.Clear()
	c.edges.Clear()
	c.eff.Clear()
	clear(c.charge)
}

// ChargedEndpoint returns the node the edge {u, v} is charged to: the
// smaller endpoint index.
func ChargedEndpoint(u, v int) int {
	if u < v {
		return u
	}
	return v
}

// Nodes returns the user-reported node-fault set. Read-only: mutate
// through AddNode/ClearNode so the effective set stays consistent.
func (c *Charger) Nodes() *Set { return c.nodes }

// Edges returns the edge-fault set. Read-only: mutate through
// AddEdge/ClearEdge so the effective set stays consistent.
func (c *Charger) Edges() *EdgeSet { return c.edges }

// Effective returns the charged fault set: user node faults plus the
// charged endpoint of every faulty edge. This is the set the placement
// pipeline evaluates. Read-only.
func (c *Charger) Effective() *Set { return c.eff }

// AddNode marks node v faulty. changed reports whether the node set
// changed; eff is the index added to the effective set, or -1 when the
// effective set did not change (v was already charged by an edge).
func (c *Charger) AddNode(v int) (changed bool, eff int) {
	if c.nodes.Has(v) {
		return false, -1
	}
	c.nodes.Add(v)
	if c.eff.Has(v) {
		return true, -1
	}
	c.eff.Add(v)
	return true, v
}

// ClearNode marks node v repaired. changed reports whether the node set
// changed; eff is the index removed from the effective set, or -1 when
// the effective set did not change (edges still charge v).
func (c *Charger) ClearNode(v int) (changed bool, eff int) {
	if !c.nodes.Has(v) {
		return false, -1
	}
	c.nodes.Remove(v)
	if c.charge[v] > 0 {
		return true, -1
	}
	c.eff.Remove(v)
	return true, v
}

// AddEdge marks the edge {u, v} faulty. changed reports whether the
// edge set changed; eff is the index added to the effective set, or -1
// when the effective set did not change (the charged endpoint was
// already faulty or already charged).
func (c *Charger) AddEdge(u, v int) (changed bool, eff int) {
	if !c.edges.Add(u, v) {
		return false, -1
	}
	w := ChargedEndpoint(u, v)
	c.charge[w]++
	if c.charge[w] > 1 || c.nodes.Has(w) {
		return true, -1
	}
	c.eff.Add(w)
	return true, w
}

// ClearEdge marks the edge {u, v} repaired. changed reports whether the
// edge set changed; eff is the index removed from the effective set, or
// -1 when the effective set did not change (other edges still charge the
// endpoint, or it is user-faulty).
func (c *Charger) ClearEdge(u, v int) (changed bool, eff int) {
	if !c.edges.Remove(u, v) {
		return false, -1
	}
	w := ChargedEndpoint(u, v)
	c.charge[w]--
	if c.charge[w] > 0 {
		return true, -1
	}
	delete(c.charge, w)
	if c.nodes.Has(w) {
		return true, -1
	}
	c.eff.Remove(w)
	return true, w
}

// ChargeEdges is the batch (from-scratch) form of the charging pass: it
// returns the effective fault set for the given node faults and edge
// list — nodes ∪ {ChargedEndpoint(e) : e in edges} — as a fresh set.
// Deterministic and order-independent by construction (a pure function
// of the two sets). The incremental Charger maintains exactly this set.
func ChargeEdges(nodes *Set, edges []Edge) *Set {
	eff := nodes.Clone()
	for _, e := range edges {
		eff.Add(ChargedEndpoint(e.U, e.V))
	}
	return eff
}
