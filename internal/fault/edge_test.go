package fault

import (
	"testing"

	"ftnet/internal/rng"
)

// randomEdges draws k distinct random edges over n nodes (arbitrary
// endpoint pairs — the set layer does not know adjacency).
func randomEdges(r rng.Source, n, k int) []Edge {
	seen := map[Edge]bool{}
	out := make([]Edge, 0, k)
	for len(out) < k {
		u, v := r.Intn(n), r.Intn(n)
		if u == v {
			continue
		}
		e := CanonEdge(u, v)
		if seen[e] {
			continue
		}
		seen[e] = true
		out = append(out, e)
	}
	return out
}

func shuffleEdges(r rng.Source, edges []Edge) []Edge {
	out := append([]Edge(nil), edges...)
	for i := len(out) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		out[i], out[j] = out[j], out[i]
	}
	return out
}

func TestEdgeSetBasics(t *testing.T) {
	s := NewEdgeSet()
	if s.Count() != 0 || s.Has(1, 2) {
		t.Fatal("fresh set not empty")
	}
	if !s.Add(5, 3) {
		t.Fatal("first Add reported no change")
	}
	if s.Add(3, 5) {
		t.Fatal("Add of the same edge (reversed order) reported a change")
	}
	if !s.Has(3, 5) || !s.Has(5, 3) {
		t.Fatal("Has must accept either endpoint order")
	}
	if s.Count() != 1 {
		t.Fatalf("Count = %d, want 1", s.Count())
	}
	if !s.Remove(5, 3) {
		t.Fatal("Remove reported no change")
	}
	if s.Remove(5, 3) {
		t.Fatal("second Remove reported a change")
	}
	if s.Count() != 0 {
		t.Fatalf("Count after remove = %d, want 0", s.Count())
	}
}

func TestEdgeSetSliceSorted(t *testing.T) {
	r := rng.New(11)
	s := NewEdgeSet()
	for _, e := range randomEdges(r, 500, 64) {
		s.Add(e.V, e.U) // reversed on purpose; canonicalization is the set's job
	}
	sl := s.Slice()
	if len(sl) != s.Count() {
		t.Fatalf("Slice len %d != Count %d", len(sl), s.Count())
	}
	for i, e := range sl {
		if e.U >= e.V {
			t.Fatalf("edge %v not canonical", e)
		}
		if i > 0 {
			p := sl[i-1]
			if p.U > e.U || (p.U == e.U && p.V >= e.V) {
				t.Fatalf("Slice not strictly sorted at %d: %v then %v", i, p, e)
			}
		}
	}
}

func TestEdgeSetCloneIndependent(t *testing.T) {
	s := NewEdgeSet()
	s.Add(1, 2)
	s.Add(3, 4)
	c := s.Clone()
	c.Remove(1, 2)
	c.Add(5, 6)
	if !s.Has(1, 2) || s.Has(5, 6) {
		t.Fatal("mutating the clone leaked into the original")
	}
	if c.Has(1, 2) || !c.Has(5, 6) || !c.Has(3, 4) {
		t.Fatal("clone state wrong")
	}
}

// TestChargerOrderIndependence is the charging pass's core property:
// reporting the same node and edge faults in any interleaved order
// produces the identical effective (charged) node set. The effective set
// is what the placement pipeline evaluates, so identical effective sets
// mean bit-identical embeddings (the pipeline is deterministic).
func TestChargerOrderIndependence(t *testing.T) {
	const n = 2000
	r := rng.New(42)
	for trial := 0; trial < 20; trial++ {
		nodes := make([]int, 0, 30)
		for len(nodes) < 30 {
			nodes = append(nodes, r.Intn(n))
		}
		edges := randomEdges(r, n, 40)

		var ref []int
		for perm := 0; perm < 5; perm++ {
			c := NewCharger(n)
			// Interleave node and edge mutations in a fresh random order.
			type op struct {
				node int
				edge Edge
				isE  bool
			}
			ops := make([]op, 0, len(nodes)+len(edges))
			for _, v := range nodes {
				ops = append(ops, op{node: v})
			}
			for _, e := range shuffleEdges(r, edges) {
				if r.Intn(2) == 0 {
					e.U, e.V = e.V, e.U // either endpoint order must work
				}
				ops = append(ops, op{edge: e, isE: true})
			}
			for i := len(ops) - 1; i > 0; i-- {
				j := r.Intn(i + 1)
				ops[i], ops[j] = ops[j], ops[i]
			}
			for _, o := range ops {
				if o.isE {
					c.AddEdge(o.edge.U, o.edge.V)
				} else {
					c.AddNode(o.node)
				}
			}
			got := c.Effective().Slice()
			if perm == 0 {
				ref = got
				// The incremental charger must agree with the batch pass.
				batch := ChargeEdges(c.Nodes(), c.Edges().Slice()).Slice()
				if !intsEq(got, batch) {
					t.Fatalf("trial %d: incremental effective %v != batch charge %v", trial, got, batch)
				}
				continue
			}
			if !intsEq(got, ref) {
				t.Fatalf("trial %d perm %d: effective set depends on mutation order", trial, perm)
			}
		}
	}
}

// TestChargerAddClearRoundTrip mirrors fault.Set's add-then-clear
// round-trip: applying a mutation sequence and then undoing it in a
// different order returns the charger (node, edge, and effective sets)
// to its starting state, with every reported effective delta consistent.
func TestChargerAddClearRoundTrip(t *testing.T) {
	const n = 1000
	r := rng.New(7)
	c := NewCharger(n)

	// Seed a baseline population that must survive the round trip.
	base := NewSet(n)
	for i := 0; i < 10; i++ {
		v := r.Intn(n)
		c.AddNode(v)
		base.Add(v)
	}
	baseEdges := randomEdges(r, n, 12)
	for _, e := range baseEdges {
		c.AddEdge(e.U, e.V)
	}
	want := c.Effective().Slice()
	wantEdges := c.Edges().Count()
	wantNodes := c.Nodes().Count()

	// Shadow set replays every reported effective delta; it must track
	// Effective() exactly through the whole churn.
	shadow := c.Effective().Clone()
	apply := func(eff int, add bool) {
		if eff < 0 {
			return
		}
		if add {
			shadow.Add(eff)
		} else {
			shadow.Remove(eff)
		}
	}

	nodes := make([]int, 0, 25)
	for len(nodes) < 25 {
		nodes = append(nodes, r.Intn(n))
	}
	edges := randomEdges(r, n, 30)
	for _, v := range nodes {
		_, eff := c.AddNode(v)
		apply(eff, true)
	}
	for _, e := range edges {
		_, eff := c.AddEdge(e.U, e.V)
		apply(eff, true)
	}
	if !intsEq(shadow.Slice(), c.Effective().Slice()) {
		t.Fatal("effective deltas out of sync with Effective() after adds")
	}

	// Undo in a different order (edges first, shuffled), skipping
	// anything that was part of the baseline or a duplicate report.
	for _, e := range shuffleEdges(r, edges) {
		dup := false
		for _, b := range baseEdges {
			if b == e {
				dup = true
			}
		}
		if dup {
			continue
		}
		_, eff := c.ClearEdge(e.V, e.U)
		apply(eff, false)
	}
	cleared := map[int]bool{}
	for i := len(nodes) - 1; i >= 0; i-- {
		v := nodes[i]
		if base.Has(v) || cleared[v] {
			continue
		}
		cleared[v] = true
		_, eff := c.ClearNode(v)
		apply(eff, false)
	}

	if got := c.Effective().Slice(); !intsEq(got, want) {
		t.Fatalf("round trip changed the effective set:\n got %v\nwant %v", got, want)
	}
	if c.Edges().Count() != wantEdges || c.Nodes().Count() != wantNodes {
		t.Fatalf("round trip changed set sizes: edges %d want %d, nodes %d want %d",
			c.Edges().Count(), wantEdges, c.Nodes().Count(), wantNodes)
	}
	if !intsEq(shadow.Slice(), c.Effective().Slice()) {
		t.Fatal("effective deltas out of sync with Effective() after clears")
	}
}

// TestChargerRefcounts pins the two subtle clear cases: repairing one of
// two edges charged to the same node keeps the node effectively faulty,
// and repairing an edge charged to a user-faulty node never un-faults it.
func TestChargerRefcounts(t *testing.T) {
	c := NewCharger(100)

	// Two edges charged to node 3.
	if _, eff := c.AddEdge(3, 7); eff != 3 {
		t.Fatalf("first edge: eff = %d, want 3", eff)
	}
	if _, eff := c.AddEdge(3, 9); eff != -1 {
		t.Fatalf("second edge on same charge: eff = %d, want -1", eff)
	}
	if _, eff := c.ClearEdge(3, 7); eff != -1 {
		t.Fatal("clearing one of two charged edges must not un-fault the node")
	}
	if !c.Effective().Has(3) {
		t.Fatal("node 3 lost effective fault while still charged")
	}
	if _, eff := c.ClearEdge(3, 9); eff != 3 {
		t.Fatal("clearing the last charged edge must un-fault the node")
	}

	// Edge charged to a user-faulty node.
	c.AddNode(5)
	if _, eff := c.AddEdge(5, 8); eff != -1 {
		t.Fatal("edge charged to an already-faulty node must not re-add it")
	}
	if _, eff := c.ClearEdge(5, 8); eff != -1 {
		t.Fatal("clearing an edge charged to a user-faulty node must not un-fault it")
	}
	if !c.Effective().Has(5) {
		t.Fatal("user node fault lost by an edge repair")
	}
	// And the mirror: node cleared while an edge still charges it.
	c.AddEdge(5, 8)
	if _, eff := c.ClearNode(5); eff != -1 {
		t.Fatal("clearing a node still charged by an edge must keep it effective")
	}
	if !c.Effective().Has(5) {
		t.Fatal("charged node lost effective fault on user repair")
	}
	if _, eff := c.ClearEdge(5, 8); eff != 5 {
		t.Fatal("last charge gone and node not user-faulty: must clear")
	}
	if c.Effective().Count() != 0 {
		t.Fatalf("effective set not empty at the end: %v", c.Effective().Slice())
	}
}

func intsEq(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
