// Package fault provides fault sets over node indices, random and
// adversarial fault generators, and a lazily evaluated edge-fault oracle.
//
// Node fault sets are dense bitsets: every construction in the paper works
// with networks of up to a few million nodes, for which a bitset is both
// the most compact and the fastest representation. Edge faults for the
// supernode construction A^d_n are never materialized (the host has
// Θ(N·h) edges); instead Oracle answers per-edge queries from a
// deterministic hash of the edge identity.
package fault

import (
	"fmt"
	"math"
	"math/bits"

	"ftnet/internal/rng"
)

// Set is a set of faulty node indices in [0, n).
type Set struct {
	bits  []uint64
	n     int
	count int
}

// NewSet returns an empty fault set over n nodes.
func NewSet(n int) *Set {
	if n < 0 {
		panic("fault: negative universe size")
	}
	return &Set{bits: make([]uint64, (n+63)/64), n: n}
}

// Len returns the universe size n.
func (s *Set) Len() int { return s.n }

// Count returns the number of faulty nodes.
func (s *Set) Count() int { return s.count }

// Has reports whether node i is faulty.
func (s *Set) Has(i int) bool {
	return s.bits[i>>6]&(1<<(uint(i)&63)) != 0
}

// Add marks node i faulty. Adding an already-faulty node is a no-op.
func (s *Set) Add(i int) {
	w, b := i>>6, uint(i)&63
	if s.bits[w]&(1<<b) == 0 {
		s.bits[w] |= 1 << b
		s.count++
	}
}

// Remove clears node i. Removing a non-faulty node is a no-op.
func (s *Set) Remove(i int) {
	w, b := i>>6, uint(i)&63
	if s.bits[w]&(1<<b) != 0 {
		s.bits[w] &^= 1 << b
		s.count--
	}
}

// Clear empties the set, retaining the universe size.
func (s *Set) Clear() {
	for i := range s.bits {
		s.bits[i] = 0
	}
	s.count = 0
}

// Clone returns a deep copy.
func (s *Set) Clone() *Set {
	c := &Set{bits: make([]uint64, len(s.bits)), n: s.n, count: s.count}
	copy(c.bits, s.bits)
	return c
}

// ForEach calls fn for every faulty node in increasing order.
func (s *Set) ForEach(fn func(i int)) {
	for w, word := range s.bits {
		for word != 0 {
			b := bits.TrailingZeros64(word)
			fn(w<<6 + b)
			word &= word - 1
		}
	}
}

// Slice returns the faulty indices in increasing order.
func (s *Set) Slice() []int {
	out := make([]int, 0, s.count)
	s.ForEach(func(i int) { out = append(out, i) })
	return out
}

// CountRange returns the number of faulty nodes in the half-open index
// interval [lo, hi).
func (s *Set) CountRange(lo, hi int) int {
	if lo >= hi {
		return 0
	}
	c := 0
	wLo, wHi := lo>>6, (hi-1)>>6
	for w := wLo; w <= wHi; w++ {
		word := s.bits[w]
		if w == wLo {
			word &= ^uint64(0) << (uint(lo) & 63)
		}
		if w == wHi {
			top := uint(hi-1)&63 + 1
			if top < 64 {
				word &= (1 << top) - 1
			}
		}
		c += bits.OnesCount64(word)
	}
	return c
}

// Bernoulli adds each node of the universe independently with probability p,
// using geometric skip sampling so sparse fault rates cost O(np) not O(n).
func (s *Set) Bernoulli(r rng.Source, p float64) {
	if p <= 0 {
		return
	}
	if p >= 1 {
		for i := 0; i < s.n; i++ {
			s.Add(i)
		}
		return
	}
	i := r.Geometric(p)
	for i < s.n {
		s.Add(i)
		i += 1 + r.Geometric(p)
	}
}

// ExactRandom adds exactly k distinct uniformly random nodes. It returns an
// error if k exceeds the number of currently non-faulty nodes.
func (s *Set) ExactRandom(r rng.Source, k int) error {
	free := s.n - s.count
	if k > free {
		return fmt.Errorf("fault: cannot place %d faults among %d free nodes", k, free)
	}
	// Rejection sampling is fine while the set stays sparse; fall back to a
	// reservoir scan when k is a large fraction of the universe.
	if k*3 < free {
		for placed := 0; placed < k; {
			i := r.Intn(s.n)
			if !s.Has(i) {
				s.Add(i)
				placed++
			}
		}
		return nil
	}
	remaining := k
	for i := 0; i < s.n && remaining > 0; i++ {
		if s.Has(i) {
			continue
		}
		if r.Intn(free) < remaining {
			s.Add(i)
			remaining--
		}
		free--
	}
	return nil
}

// Oracle answers whether an implicit edge (u, v) is faulty, deterministically
// for a given seed, with marginal probability Q per edge. The orientation of
// the edge does not matter. It also exposes the half-edge view used by the
// paper's Section 4 analysis: each edge consists of two half-edges failing
// independently with probability sqrt(Q), and the edge is faulty iff both
// half-edges are.
type Oracle struct {
	seed  uint64
	sqrtQ float64
	// Q == sqrtQ² is the effective per-edge failure probability.
}

// NewOracle returns an edge-fault oracle with per-edge failure probability q.
func NewOracle(seed uint64, q float64) *Oracle {
	if q < 0 || q > 1 {
		panic("fault: edge probability out of range")
	}
	return &Oracle{seed: seed, sqrtQ: math.Sqrt(q)}
}

// HalfEdgeFaulty reports whether the half-edge incident to u on edge {u,v}
// is faulty. Independent across the two orientations.
func (o *Oracle) HalfEdgeFaulty(u, v int) bool {
	if o.sqrtQ == 0 {
		return false
	}
	return rng.HashFloat(o.seed, uint64(u), uint64(v)) < o.sqrtQ
}

// EdgeFaulty reports whether edge {u,v} is faulty: both half-edges faulty.
// Symmetric in u, v.
func (o *Oracle) EdgeFaulty(u, v int) bool {
	return o.HalfEdgeFaulty(u, v) && o.HalfEdgeFaulty(v, u)
}
