// Package fault provides fault sets over node indices, random and
// adversarial fault generators, and a lazily evaluated edge-fault oracle.
//
// Node fault sets are dense bitsets: every construction in the paper works
// with networks of up to a few million nodes, for which a bitset is both
// the most compact and the fastest representation. Edge faults for the
// supernode construction A^d_n are never materialized (the host has
// Θ(N·h) edges); instead Oracle answers per-edge queries from a
// deterministic hash of the edge identity.
package fault

import (
	"math"
	"math/bits"

	"ftnet/internal/fterr"
	"ftnet/internal/rng"
)

// Set is a set of faulty node indices in [0, n).
type Set struct {
	bits  []uint64
	n     int
	count int
	// touched lists the words of bits that may be nonzero, so Clear costs
	// O(faults), not O(n/64). It may contain words that Remove has zeroed
	// again; it is reset wholesale when it grows past half the word array
	// (at that density a memset is cheaper anyway).
	touched []int32
}

// NewSet returns an empty fault set over n nodes.
func NewSet(n int) *Set {
	if n < 0 {
		panic("fault: negative universe size")
	}
	return &Set{bits: make([]uint64, (n+63)/64), n: n}
}

// Len returns the universe size n.
func (s *Set) Len() int { return s.n }

// Count returns the number of faulty nodes.
func (s *Set) Count() int { return s.count }

// Has reports whether node i is faulty.
func (s *Set) Has(i int) bool {
	return s.bits[i>>6]&(1<<(uint(i)&63)) != 0
}

// Add marks node i faulty. Adding an already-faulty node is a no-op.
func (s *Set) Add(i int) {
	w, b := i>>6, uint(i)&63
	if s.bits[w]&(1<<b) == 0 {
		if s.bits[w] == 0 && s.touched != nil {
			s.touched = append(s.touched, int32(w))
		}
		s.bits[w] |= 1 << b
		s.count++
	}
}

// Remove clears node i. Removing a non-faulty node is a no-op.
func (s *Set) Remove(i int) {
	w, b := i>>6, uint(i)&63
	if s.bits[w]&(1<<b) != 0 {
		s.bits[w] &^= 1 << b
		s.count--
	}
}

// Clear empties the set, retaining the universe size. From the second
// call on it runs in O(words actually touched since the previous Clear)
// rather than O(n/64): the first Clear pays one full memset to establish
// the touched-word list, and a list that has grown past half the word
// array falls back to the memset (at that density it is the cheaper of
// the two).
func (s *Set) Clear() {
	if s.touched == nil || len(s.touched) > len(s.bits)/2 {
		for i := range s.bits {
			s.bits[i] = 0
		}
		if s.touched == nil {
			s.touched = make([]int32, 0, 16)
		}
	} else {
		for _, w := range s.touched {
			s.bits[w] = 0
		}
	}
	s.touched = s.touched[:0]
	s.count = 0
}

// Clone returns a deep copy.
func (s *Set) Clone() *Set {
	c := &Set{bits: make([]uint64, len(s.bits)), n: s.n, count: s.count}
	copy(c.bits, s.bits)
	if s.touched != nil {
		c.touched = append([]int32(nil), s.touched...)
	}
	return c
}

// ForEach calls fn for every faulty node in increasing order.
func (s *Set) ForEach(fn func(i int)) {
	for w, word := range s.bits {
		for word != 0 {
			b := bits.TrailingZeros64(word)
			fn(w<<6 + b)
			word &= word - 1
		}
	}
}

// Slice returns the faulty indices in increasing order.
func (s *Set) Slice() []int {
	out := make([]int, 0, s.count)
	s.ForEach(func(i int) { out = append(out, i) })
	return out
}

// CountRange returns the number of faulty nodes in the half-open index
// interval [lo, hi).
func (s *Set) CountRange(lo, hi int) int {
	if lo >= hi {
		return 0
	}
	c := 0
	wLo, wHi := lo>>6, (hi-1)>>6
	for w := wLo; w <= wHi; w++ {
		word := s.bits[w]
		if w == wLo {
			word &= ^uint64(0) << (uint(lo) & 63)
		}
		if w == wHi {
			top := uint(hi-1)&63 + 1
			if top < 64 {
				word &= (1 << top) - 1
			}
		}
		c += bits.OnesCount64(word)
	}
	return c
}

// Bernoulli adds each node of the universe independently with probability p,
// using geometric skip sampling so sparse fault rates cost O(np) not O(n).
func (s *Set) Bernoulli(r rng.Source, p float64) {
	s.BernoulliRecord(r, p, nil)
}

// BernoulliRecord is Bernoulli, additionally appending to added every node
// that actually transitioned from healthy to faulty, in increasing order,
// and returning the grown slice. Nodes that were already faulty consume
// the same random skips but are not recorded, so the marginal inclusion
// probability of every healthy node is exactly p regardless of the set's
// prior contents — the property the nested ladder sampler relies on.
//
//ftnet:hotpath
func (s *Set) BernoulliRecord(r rng.Source, p float64, added []int) []int {
	if p <= 0 {
		return added
	}
	if p >= 1 {
		for i := 0; i < s.n; i++ {
			if !s.Has(i) {
				s.Add(i)
				added = append(added, i)
			}
		}
		return added
	}
	i := r.Geometric(p)
	for i < s.n {
		if !s.Has(i) {
			s.Add(i)
			added = append(added, i)
		}
		i += 1 + r.Geometric(p)
	}
	return added
}

// RemoveRecord is the healing mirror of BernoulliRecord: each currently
// faulty node returns to health independently with probability p. Every
// healed node is appended to removed in increasing order and the grown
// slice returned. Skips between removals are sampled geometrically over
// the rank sequence of faulty nodes, so the random-stream consumption is
// O(count·p) — symmetric to BernoulliRecord's O(n·p) — and the walk
// itself costs one pass over the bitset words. The churn engine uses the
// returned delta to tell the incremental pipeline which columns lost a
// fault, exactly as Extend's added list reports which gained one.
//
//ftnet:hotpath
func (s *Set) RemoveRecord(r rng.Source, p float64, removed []int) []int {
	if p <= 0 || s.count == 0 {
		return removed
	}
	if p >= 1 {
		start := len(removed)
		//lint:allow hotpath the p>=1 full-heal branch is cold (never taken by the churn samplers), so its visitor closure may allocate
		s.ForEach(func(i int) { removed = append(removed, i) })
		for _, i := range removed[start:] {
			s.Remove(i)
		}
		return removed
	}
	next := r.Geometric(p) // rank of the next healed node among the faulty
	rank := 0
	for w, word := range s.bits {
		if word == 0 {
			continue
		}
		if rank+bits.OnesCount64(word) <= next {
			rank += bits.OnesCount64(word)
			continue
		}
		for word != 0 {
			if rank == next {
				b := bits.TrailingZeros64(word)
				i := w<<6 + b
				s.Remove(i)
				removed = append(removed, i)
				next += 1 + r.Geometric(p)
			}
			rank++
			word &= word - 1
		}
	}
	return removed
}

// RemoveAll clears every node in the list (the undo path of a recorded
// addition batch: RemoveAll(added) exactly reverts BernoulliRecord or
// Extend, because those lists contain only genuinely-new nodes). Nodes
// that are already healthy are skipped.
func (s *Set) RemoveAll(nodes []int) {
	for _, i := range nodes {
		s.Remove(i)
	}
}

// Nth returns the index of the k-th faulty node in increasing order,
// 0 <= k < Count. It pops word-level counts, so the cost is O(n/64), not
// O(n); the churn engine uses it to draw uniform repair targets.
func (s *Set) Nth(k int) int {
	if k < 0 || k >= s.count {
		panic("fault: Nth out of range")
	}
	for w, word := range s.bits {
		c := bits.OnesCount64(word)
		if k >= c {
			k -= c
			continue
		}
		for ; ; k-- {
			b := bits.TrailingZeros64(word)
			if k == 0 {
				return w<<6 + b
			}
			word &= word - 1
		}
	}
	panic("fault: internal: count out of sync with bitset")
}

// Extend grows a Bernoulli(pFrom) sample into a Bernoulli(pTo) sample,
// pTo >= pFrom, by skip-sampling only the delta: every currently healthy
// node joins independently with the conditional rate (pTo-pFrom)/(1-pFrom),
// which is exactly P(faulty at pTo | healthy at pFrom) under the canonical
// coupling F(p) = {i : U_i < p}. Starting from a set drawn at pFrom this
// yields F(pFrom) ⊆ F(pTo) with the exact Bernoulli(pTo) marginal, at
// O(n·(pTo-pFrom)) cost. Newly added nodes are appended to added (in
// increasing order) and the grown slice returned.
//
//ftnet:hotpath
func (s *Set) Extend(r rng.Source, pFrom, pTo float64, added []int) ([]int, error) {
	if pTo < pFrom {
		return added, fterr.New(fterr.Invalid, "fault", "Extend from p=%v down to p=%v", pFrom, pTo)
	}
	if pFrom < 0 || pTo > 1 {
		return added, fterr.New(fterr.Invalid, "fault", "Extend probabilities [%v, %v] out of range", pFrom, pTo)
	}
	if pFrom >= 1 {
		return added, nil
	}
	q := (pTo - pFrom) / (1 - pFrom)
	return s.BernoulliRecord(r, q, added), nil
}

// ExactRandom adds exactly k distinct uniformly random nodes. It returns an
// error if k exceeds the number of currently non-faulty nodes.
func (s *Set) ExactRandom(r rng.Source, k int) error {
	free := s.n - s.count
	if k > free {
		return fterr.New(fterr.Invalid, "fault", "cannot place %d faults among %d free nodes", k, free)
	}
	// Rejection sampling is fine while the set stays sparse; fall back to a
	// reservoir scan when k is a large fraction of the universe.
	if k*3 < free {
		for placed := 0; placed < k; {
			i := r.Intn(s.n)
			if !s.Has(i) {
				s.Add(i)
				placed++
			}
		}
		return nil
	}
	remaining := k
	for i := 0; i < s.n && remaining > 0; i++ {
		if s.Has(i) {
			continue
		}
		if r.Intn(free) < remaining {
			s.Add(i)
			remaining--
		}
		free--
	}
	return nil
}

// Oracle answers whether an implicit edge (u, v) is faulty, deterministically
// for a given seed, with marginal probability Q per edge. The orientation of
// the edge does not matter. It also exposes the half-edge view used by the
// paper's Section 4 analysis: each edge consists of two half-edges failing
// independently with probability sqrt(Q), and the edge is faulty iff both
// half-edges are.
type Oracle struct {
	seed  uint64
	sqrtQ float64
	// Q == sqrtQ² is the effective per-edge failure probability.
}

// NewOracle returns an edge-fault oracle with per-edge failure probability q.
func NewOracle(seed uint64, q float64) *Oracle {
	if q < 0 || q > 1 {
		panic("fault: edge probability out of range")
	}
	return &Oracle{seed: seed, sqrtQ: math.Sqrt(q)}
}

// HalfEdgeFaulty reports whether the half-edge incident to u on edge {u,v}
// is faulty. Independent across the two orientations.
func (o *Oracle) HalfEdgeFaulty(u, v int) bool {
	if o.sqrtQ == 0 {
		return false
	}
	return rng.HashFloat(o.seed, uint64(u), uint64(v)) < o.sqrtQ
}

// EdgeFaulty reports whether edge {u,v} is faulty: both half-edges faulty.
// Symmetric in u, v.
func (o *Oracle) EdgeFaulty(u, v int) bool {
	return o.HalfEdgeFaulty(u, v) && o.HalfEdgeFaulty(v, u)
}
