package fault

import (
	"testing"
	"testing/quick"

	"ftnet/internal/grid"
	"ftnet/internal/rng"
)

func TestSetBasics(t *testing.T) {
	s := NewSet(100)
	if s.Count() != 0 || s.Len() != 100 {
		t.Fatal("empty set wrong")
	}
	s.Add(5)
	s.Add(5)
	s.Add(99)
	if s.Count() != 2 || !s.Has(5) || !s.Has(99) || s.Has(4) {
		t.Fatal("Add/Has wrong")
	}
	s.Remove(5)
	s.Remove(5)
	if s.Count() != 1 || s.Has(5) {
		t.Fatal("Remove wrong")
	}
	c := s.Clone()
	c.Add(1)
	if s.Has(1) {
		t.Fatal("Clone aliases parent")
	}
	s.Clear()
	if s.Count() != 0 || s.Has(99) {
		t.Fatal("Clear wrong")
	}
}

func TestSetForEachOrder(t *testing.T) {
	s := NewSet(200)
	want := []int{0, 63, 64, 127, 128, 199}
	for _, v := range want {
		s.Add(v)
	}
	got := s.Slice()
	if len(got) != len(want) {
		t.Fatalf("Slice = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Slice[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestCountRange(t *testing.T) {
	s := NewSet(300)
	for _, v := range []int{0, 10, 63, 64, 65, 128, 299} {
		s.Add(v)
	}
	cases := []struct{ lo, hi, want int }{
		{0, 300, 7}, {0, 1, 1}, {1, 10, 0}, {10, 66, 4}, {64, 129, 3}, {299, 300, 1}, {5, 5, 0},
	}
	for _, c := range cases {
		if got := s.CountRange(c.lo, c.hi); got != c.want {
			t.Errorf("CountRange(%d,%d) = %d, want %d", c.lo, c.hi, got, c.want)
		}
	}
}

func TestCountRangeMatchesNaive(t *testing.T) {
	f := func(seed uint64, lo8, hi8 uint8) bool {
		s := NewSet(137)
		s.Bernoulli(rng.New(seed), 0.3)
		lo, hi := int(lo8)%137, int(hi8)%137
		if lo > hi {
			lo, hi = hi, lo
		}
		naive := 0
		for i := lo; i < hi; i++ {
			if s.Has(i) {
				naive++
			}
		}
		return s.CountRange(lo, hi) == naive
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBernoulliRate(t *testing.T) {
	s := NewSet(100000)
	s.Bernoulli(rng.New(1), 0.01)
	if c := s.Count(); c < 800 || c > 1200 {
		t.Errorf("Bernoulli(0.01) produced %d faults, want ~1000", c)
	}
	s2 := NewSet(1000)
	s2.Bernoulli(rng.New(2), 0)
	if s2.Count() != 0 {
		t.Error("Bernoulli(0) added faults")
	}
	s3 := NewSet(50)
	s3.Bernoulli(rng.New(3), 1)
	if s3.Count() != 50 {
		t.Error("Bernoulli(1) missed nodes")
	}
}

func TestExactRandom(t *testing.T) {
	s := NewSet(1000)
	if err := s.ExactRandom(rng.New(4), 100); err != nil {
		t.Fatal(err)
	}
	if s.Count() != 100 {
		t.Fatalf("ExactRandom placed %d, want 100", s.Count())
	}
	// Dense case goes through the reservoir path.
	s2 := NewSet(100)
	if err := s2.ExactRandom(rng.New(5), 90); err != nil {
		t.Fatal(err)
	}
	if s2.Count() != 90 {
		t.Fatalf("ExactRandom placed %d, want 90", s2.Count())
	}
	if err := s2.ExactRandom(rng.New(6), 11); err == nil {
		t.Error("overfull ExactRandom should fail")
	}
}

func TestOracleDeterministicSymmetric(t *testing.T) {
	o := NewOracle(7, 0.25)
	for u := 0; u < 50; u++ {
		for v := u + 1; v < 50; v++ {
			a := o.EdgeFaulty(u, v)
			if b := o.EdgeFaulty(v, u); a != b {
				t.Fatalf("EdgeFaulty not symmetric for (%d,%d)", u, v)
			}
			if a != o.EdgeFaulty(u, v) {
				t.Fatalf("EdgeFaulty not deterministic for (%d,%d)", u, v)
			}
		}
	}
}

func TestOracleRate(t *testing.T) {
	q := 0.09
	o := NewOracle(11, q)
	edges, faulty := 0, 0
	for u := 0; u < 400; u++ {
		for v := u + 1; v < u+20; v++ {
			edges++
			if o.EdgeFaulty(u, v) {
				faulty++
			}
		}
	}
	rate := float64(faulty) / float64(edges)
	if rate < q*0.7 || rate > q*1.3 {
		t.Errorf("edge fault rate = %v, want ~%v", rate, q)
	}
	// Half-edge rate should be ~sqrt(q) = 0.3.
	half := 0
	for u := 0; u < 4000; u++ {
		if o.HalfEdgeFaulty(u, u+1) {
			half++
		}
	}
	hrate := float64(half) / 4000
	if hrate < 0.25 || hrate > 0.35 {
		t.Errorf("half-edge rate = %v, want ~0.3", hrate)
	}
}

func TestOracleZeroQ(t *testing.T) {
	o := NewOracle(1, 0)
	for u := 0; u < 100; u++ {
		if o.EdgeFaulty(u, u+1) || o.HalfEdgeFaulty(u, u+1) {
			t.Fatal("q=0 oracle produced a fault")
		}
	}
}

func TestAdversarialPatternsPlaceExactly(t *testing.T) {
	shape := grid.Shape{40, 40}
	r := rng.New(21)
	for _, p := range AllPatterns() {
		for _, k := range []int{1, 7, 64, 200} {
			s, err := Adversarial(p, shape, k, 5, r.Split(uint64(k)))
			if err != nil {
				t.Fatalf("%v k=%d: %v", p, k, err)
			}
			if s.Count() != k {
				t.Fatalf("%v k=%d placed %d", p, k, s.Count())
			}
			if s.Len() != shape.Size() {
				t.Fatalf("%v universe size wrong", p)
			}
		}
	}
}

func TestAdversarialTooMany(t *testing.T) {
	if _, err := Adversarial(Uniform, grid.Shape{3, 3}, 10, 2, rng.New(1)); err == nil {
		t.Error("placing 10 faults on 9 nodes should fail")
	}
}

func TestRowSweepConcentration(t *testing.T) {
	shape := grid.Shape{30, 30}
	s, err := Adversarial(RowSweep, shape, 45, 4, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	rows := map[int]int{}
	s.ForEach(func(idx int) { rows[idx/30]++ })
	if len(rows) > 2 {
		t.Errorf("RowSweep spread over %d rows, want <= 2", len(rows))
	}
}

func TestPatternStrings(t *testing.T) {
	for _, p := range AllPatterns() {
		if p.String() == "" {
			t.Errorf("pattern %d has empty name", int(p))
		}
	}
	if Pattern(99).String() != "pattern(99)" {
		t.Error("unknown pattern string wrong")
	}
}
