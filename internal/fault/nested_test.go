package fault

import (
	"math"
	"testing"

	"ftnet/internal/rng"
)

// TestExtendNesting is the coupled-ladder sampler's core property test:
// walking a rate ladder with Extend must keep every rung a superset of
// the previous one, report exactly the delta through added, and leave
// each rung's marginal fault count consistent with an exact
// Bernoulli(p_k) sample (checked against binomial confidence bands over
// many walks).
func TestExtendNesting(t *testing.T) {
	const n = 20000
	rates := []float64{1e-4, 5e-4, 2e-3, 1e-2, 5e-2}
	const walks = 200
	counts := make([]float64, len(rates))
	s := NewSet(n)
	for w := 0; w < walks; w++ {
		s.Clear()
		r := rng.NewPCG(77, uint64(w))
		prev := 0.0
		var prevSet *Set
		for k, rate := range rates {
			before := s.Count()
			added, err := s.Extend(r, prev, rate, nil)
			if err != nil {
				t.Fatal(err)
			}
			if s.Count() != before+len(added) {
				t.Fatalf("walk %d rung %d: count grew by %d, added reports %d",
					w, k, s.Count()-before, len(added))
			}
			for i := 1; i < len(added); i++ {
				if added[i] <= added[i-1] {
					t.Fatalf("walk %d rung %d: added not strictly increasing", w, k)
				}
			}
			if prevSet != nil {
				prevSet.ForEach(func(i int) {
					if !s.Has(i) {
						t.Fatalf("walk %d rung %d: nesting violated at node %d", w, k, i)
					}
				})
			}
			prevSet = s.Clone()
			prev = rate
			counts[k] += float64(s.Count())
		}
	}
	for k, rate := range rates {
		mean := counts[k] / walks
		want := float64(n) * rate
		// 5-sigma band on the mean of `walks` binomial draws.
		sigma := math.Sqrt(float64(n)*rate*(1-rate)) / math.Sqrt(walks)
		if math.Abs(mean-want) > 5*sigma+1 {
			t.Errorf("rung %d (p=%g): mean count %.2f, want %.2f +- %.2f", k, rate, mean, want, 5*sigma)
		}
	}
}

// TestExtendMatchesCanonicalCoupling cross-checks the conditional-rate
// construction against the canonical F(p) = {i : U_i < p} coupling: the
// distribution of |F(p2) \ F(p1)| must center on n*(p2-p1).
func TestExtendMatchesCanonicalCoupling(t *testing.T) {
	const n = 50000
	const p1, p2 = 0.01, 0.03
	const walks = 100
	var delta float64
	s := NewSet(n)
	for w := 0; w < walks; w++ {
		s.Clear()
		r := rng.NewPCG(5, uint64(w))
		s.Bernoulli(r, p1)
		before := s.Count()
		if _, err := s.Extend(r, p1, p2, nil); err != nil {
			t.Fatal(err)
		}
		delta += float64(s.Count() - before)
	}
	mean := delta / walks
	want := float64(n) * (p2 - p1)
	sigma := math.Sqrt(float64(n)*(p2-p1)) / math.Sqrt(walks)
	if math.Abs(mean-want) > 5*sigma {
		t.Errorf("delta mean %.1f, want %.1f +- %.1f", mean, want, 5*sigma)
	}
}

func TestExtendRejectsDescendingRates(t *testing.T) {
	s := NewSet(10)
	if _, err := s.Extend(rng.New(1), 0.5, 0.1, nil); err == nil {
		t.Error("descending Extend accepted")
	}
	if _, err := s.Extend(rng.New(1), -0.1, 0.5, nil); err == nil {
		t.Error("negative rate accepted")
	}
}

// TestSparseClear pins the touched-word Clear: after the first (memset)
// Clear, repeated fill/clear cycles must fully empty the set, including
// around Remove churn and the dense fallback threshold.
func TestSparseClear(t *testing.T) {
	const n = 4096
	s := NewSet(n)
	r := rng.New(3)
	for round := 0; round < 20; round++ {
		p := 1e-3
		if round%5 == 4 {
			p = 0.9 // dense round: exercises the memset fallback
		}
		s.Bernoulli(r, p)
		if round%3 == 1 && s.Count() > 0 {
			s.Remove(s.Slice()[0])
		}
		s.Clear()
		if s.Count() != 0 {
			t.Fatalf("round %d: count %d after Clear", round, s.Count())
		}
		for i := 0; i < n; i++ {
			if s.Has(i) {
				t.Fatalf("round %d: node %d still set after Clear", round, i)
			}
		}
	}
}

// TestBernoulliRecordMatchesBernoulli pins that the recording variant
// draws the identical stream and produces the identical set.
func TestBernoulliRecordMatchesBernoulli(t *testing.T) {
	const n = 10000
	a, b := NewSet(n), NewSet(n)
	a.Bernoulli(rng.New(9), 0.01)
	added := b.BernoulliRecord(rng.New(9), 0.01, nil)
	if a.Count() != b.Count() || a.Count() != len(added) {
		t.Fatalf("counts differ: %d vs %d (added %d)", a.Count(), b.Count(), len(added))
	}
	for _, i := range added {
		if !a.Has(i) {
			t.Fatalf("node %d recorded but not in plain Bernoulli set", i)
		}
	}
}
