// Package fterr is the repo-wide structured error taxonomy: every
// public failure carries a stable Code, and a code determines — once,
// here, mechanically — the retry class a client should apply and the
// HTTP status the daemon maps it to. Handlers and SDKs never invent
// status codes or guess retryability from error strings again.
//
// The unit of the taxonomy is *E: a code, the operation that failed,
// an optional human message, and the wrapped cause. E satisfies the
// errors.Is/As chain contract, so sentinel comparisons
// (errors.Is(err, ftnet.ErrNotTolerated)) keep working across the
// wrapping; CodeOf walks the same chain to find the innermost code.
//
// The errcodes analyzer (internal/analysis/errcodes, run by the
// ftnetvet CI step) enforces adoption: public packages must not
// construct bare fmt.Errorf/errors.New errors.
package fterr

import (
	"errors"
	"fmt"
)

// Code is a stable, wire-visible error code. Codes are append-only:
// clients program against them (retry classes, resync triggers), so a
// released code never changes meaning or disappears.
type Code string

const (
	// Invalid: the request itself is malformed — out-of-range node
	// index, bad parameter, undecodable body. Retrying the identical
	// input cannot succeed.
	Invalid Code = "invalid_argument"
	// NotFound: the addressed resource (topology) does not exist.
	NotFound Code = "not_found"
	// NotTolerated: the fault pattern exceeds what the construction
	// tolerates (the paper's low-probability failure event, or an
	// exhausted worst-case budget). Not a server failure and not
	// retryable as-is: the state must heal (faults repaired) before a
	// re-evaluation can commit. The daemon keeps serving the last good
	// generation.
	NotTolerated Code = "not_tolerated"
	// ResyncRequired: the requested incremental state no longer exists
	// (generation evicted from the delta ring, or a full-rewrite
	// boundary in between). The client recovers by refetching the full
	// state, then resumes incrementally.
	ResyncRequired Code = "resync_required"
	// Conflict: the operation is valid but the server's configuration
	// refuses it (e.g. snapshots requested with no snapshot dir).
	Conflict Code = "conflict"
	// Unavailable: transient server condition — shutting down,
	// overloaded, request canceled. Retry with backoff.
	Unavailable Code = "unavailable"
	// Internal: an invariant broke server-side. Retryable with backoff
	// (the daemon may recover), but bounded: persistent Internal means
	// a bug, not load.
	Internal Code = "internal"
	// Corrupt: a payload failed integrity verification — bad magic,
	// truncated varints, checksum mismatch. The holder's copy is
	// untrustworthy; recover by refetching (resync class).
	Corrupt Code = "corrupt_payload"
	// Unknown is the conservative default for errors without a code
	// (and for wire codes this build does not know): terminal, never
	// retried blindly.
	Unknown Code = "unknown"
)

// AllCodes lists every code in the taxonomy, for exhaustive mapping
// tests and metrics pre-registration. Append-only, like the taxonomy.
func AllCodes() []Code {
	return []Code{
		Invalid, NotFound, NotTolerated, ResyncRequired,
		Conflict, Unavailable, Internal, Corrupt, Unknown,
	}
}

// Class is the recovery action a code prescribes to clients.
type Class uint8

const (
	// ClassTerminal: retrying the same request cannot help; fix the
	// input or the state first.
	ClassTerminal Class = iota
	// ClassRetryable: transient; retry the identical request with
	// jittered backoff.
	ClassRetryable
	// ClassResync: local incremental state diverged or is untrusted;
	// drop it, refetch the full state, then continue.
	ClassResync
)

func (c Class) String() string {
	switch c {
	case ClassRetryable:
		return "retryable"
	case ClassResync:
		return "resync"
	default:
		return "terminal"
	}
}

// Class returns the code's recovery class. Codes outside the taxonomy
// degrade to terminal — the conservative default.
func (c Code) Class() Class {
	switch c {
	case Unavailable, Internal:
		return ClassRetryable
	case ResyncRequired, Corrupt:
		return ClassResync
	default:
		return ClassTerminal
	}
}

// Retryable reports whether a client is allowed to act again without
// new input: plain retry or resync-then-retry.
func (c Code) Retryable() bool { return c.Class() != ClassTerminal }

// HTTPStatus is the daemon's mechanical code→status mapping, total
// over AllCodes (the server test enumerates it exhaustively).
func (c Code) HTTPStatus() int {
	switch c {
	case Invalid, Corrupt:
		return 400
	case NotFound:
		return 404
	case Conflict:
		return 409
	case ResyncRequired:
		return 410
	case NotTolerated:
		return 422
	case Unavailable:
		return 503
	default: // Internal, Unknown, and anything off-taxonomy
		return 500
	}
}

// CodeForStatus is the client-side fallback when a response carries no
// decodable typed body (a proxy's bare 502, a truncated reply): the
// most conservative code consistent with the status class.
func CodeForStatus(status int) Code {
	switch {
	case status == 404:
		return NotFound
	case status == 409:
		return Conflict
	case status == 410:
		return ResyncRequired
	case status == 422:
		return NotTolerated
	case status == 429 || status == 503:
		return Unavailable
	case status >= 500:
		return Internal
	case status >= 400:
		return Invalid
	default:
		return Unknown
	}
}

// E is one coded failure: what failed (Op), how it is classified
// (Code), an optional human message, and the wrapped cause.
type E struct {
	Code Code
	Op   string
	Msg  string
	Err  error
}

func (e *E) Error() string {
	s := e.Op
	if s != "" {
		s += ": "
	}
	s += "[" + string(e.Code) + "]"
	if e.Msg != "" {
		s += " " + e.Msg
	}
	if e.Err != nil {
		s += ": " + e.Err.Error()
	}
	return s
}

func (e *E) Unwrap() error { return e.Err }

// New builds a coded error with a formatted message and no cause.
func New(code Code, op, format string, args ...any) error {
	return &E{Code: code, Op: op, Msg: fmt.Sprintf(format, args...)}
}

// Wrap attaches a code and op to a cause. A nil cause returns nil, so
// call sites can wrap unconditionally.
func Wrap(code Code, op string, err error) error {
	if err == nil {
		return nil
	}
	return &E{Code: code, Op: op, Err: err}
}

// Wrapf is Wrap with an additional formatted message.
func Wrapf(code Code, op string, err error, format string, args ...any) error {
	if err == nil {
		return nil
	}
	return &E{Code: code, Op: op, Msg: fmt.Sprintf(format, args...), Err: err}
}

// Coder is implemented by error types outside this package that carry
// their own code (e.g. core.UnhealthyError), so domain types adopt the
// taxonomy without depending on fterr's wrapper.
type Coder interface{ FtCode() Code }

// CodeOf extracts the outermost code on err's chain: the first *E or
// Coder found. nil errors have no code (empty string); errors without
// any code are Unknown — conservative, terminal.
func CodeOf(err error) Code {
	if err == nil {
		return ""
	}
	for e := err; e != nil; {
		if fe, ok := e.(*E); ok {
			return fe.Code
		}
		if c, ok := e.(Coder); ok {
			return c.FtCode()
		}
		switch x := e.(type) {
		case interface{ Unwrap() error }:
			e = x.Unwrap()
		case interface{ Unwrap() []error }:
			for _, sub := range x.Unwrap() {
				if c := CodeOf(sub); c != Unknown && c != "" {
					return c
				}
			}
			return Unknown
		default:
			e = nil
		}
	}
	return Unknown
}

// ClassOf returns the recovery class of err's code (terminal for nil
// and uncoded errors).
func ClassOf(err error) Class { return CodeOf(err).Class() }

// Retryable reports whether err's code permits acting again without
// new input (retry or resync). Uncoded errors are not retryable.
func Retryable(err error) bool {
	if err == nil {
		return false
	}
	return CodeOf(err).Retryable()
}

// Is reports whether err carries the given code.
func Is(err error, code Code) bool { return err != nil && CodeOf(err) == code }

// Op returns the outermost op annotation on err's chain, or "".
func Op(err error) string {
	var e *E
	for errors.As(err, &e) {
		return e.Op
	}
	return ""
}

// Wire is the typed JSON error body every ftnetd error response
// carries (and every SDK decodes): {code, message, retryable,
// resync_from}. Responses may extend it (the 422 body embeds the
// last-good committed state alongside).
type Wire struct {
	// Code is the stable taxonomy code.
	Code Code `json:"code"`
	// Message is the human-readable failure description.
	Message string `json:"message"`
	// Retryable mirrors Code's class so shell scripts can branch
	// without embedding the taxonomy; SDKs with the taxonomy compiled
	// in trust the code, not this flag.
	Retryable bool `json:"retryable"`
	// ResyncFrom, on resync_required responses, is the head generation
	// the client should refetch in full (0 otherwise).
	ResyncFrom int64 `json:"resync_from,omitempty"`
}
