package fterr

import (
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"testing"
)

// Every code must have exactly one class and one status; the switch
// defaults make the functions total, but the taxonomy itself must not
// silently rely on them for known codes.
func TestCodeClassAndStatusTotal(t *testing.T) {
	wantStatus := map[Code]int{
		Invalid:        400,
		Corrupt:        400,
		NotFound:       404,
		Conflict:       409,
		ResyncRequired: 410,
		NotTolerated:   422,
		Unavailable:    503,
		Internal:       500,
		Unknown:        500,
	}
	wantClass := map[Code]Class{
		Invalid:        ClassTerminal,
		NotFound:       ClassTerminal,
		NotTolerated:   ClassTerminal,
		Conflict:       ClassTerminal,
		Unknown:        ClassTerminal,
		Unavailable:    ClassRetryable,
		Internal:       ClassRetryable,
		ResyncRequired: ClassResync,
		Corrupt:        ClassResync,
	}
	codes := AllCodes()
	if len(codes) != len(wantStatus) {
		t.Fatalf("AllCodes has %d codes, mapping table has %d", len(codes), len(wantStatus))
	}
	seen := map[Code]bool{}
	for _, c := range codes {
		if seen[c] {
			t.Fatalf("duplicate code %q in AllCodes", c)
		}
		seen[c] = true
		if got := c.HTTPStatus(); got != wantStatus[c] {
			t.Errorf("%s: HTTPStatus = %d, want %d", c, got, wantStatus[c])
		}
		if got := c.Class(); got != wantClass[c] {
			t.Errorf("%s: Class = %v, want %v", c, got, wantClass[c])
		}
		if got, want := c.Retryable(), wantClass[c] != ClassTerminal; got != want {
			t.Errorf("%s: Retryable = %v, want %v", c, got, want)
		}
	}
}

func TestCodeForStatusRoundTrip(t *testing.T) {
	// The status a code maps to must fall back to a code of the same
	// class (the conservative-client contract): a lost body never
	// upgrades a terminal failure to retryable.
	for _, c := range AllCodes() {
		back := CodeForStatus(c.HTTPStatus())
		if back.Class() == ClassTerminal && c.Class() != ClassTerminal {
			// 400 covers both Invalid (terminal) and Corrupt (resync);
			// losing the body downgrades Corrupt to terminal — allowed
			// (conservative), the reverse is not.
			if c != Corrupt {
				t.Errorf("%s (class %v) -> status %d -> %s (terminal): retryability lost non-conservatively",
					c, c.Class(), c.HTTPStatus(), back)
			}
			continue
		}
		if c.Class() == ClassTerminal && back.Class() != ClassTerminal {
			// Unknown shares 500 with Internal; a bodyless 500 is
			// indistinguishable from a server crash, so the fallback
			// treats it as one. Every other terminal code must stay
			// terminal through a lost body.
			if c != Unknown {
				t.Errorf("%s (terminal) -> status %d -> %s (class %v): terminal failure became actionable",
					c, c.HTTPStatus(), back, back.Class())
			}
		}
	}
	if got := CodeForStatus(200); got != Unknown {
		t.Errorf("CodeForStatus(200) = %s, want unknown", got)
	}
	if got := CodeForStatus(502); got != Internal {
		t.Errorf("CodeForStatus(502) = %s, want internal", got)
	}
	if got := CodeForStatus(429); got != Unavailable {
		t.Errorf("CodeForStatus(429) = %s, want unavailable", got)
	}
}

func TestCodeOfWalksChain(t *testing.T) {
	base := errors.New("disk on fire")
	err := Wrap(Internal, "server.eval", base)
	if got := CodeOf(err); got != Internal {
		t.Fatalf("CodeOf = %s, want internal", got)
	}
	// fmt.Errorf %w wrapping above an E keeps the code reachable.
	wrapped := fmt.Errorf("context: %w", err)
	if got := CodeOf(wrapped); got != Internal {
		t.Fatalf("CodeOf through %%w = %s, want internal", got)
	}
	if !errors.Is(wrapped, base) {
		t.Fatal("errors.Is lost the cause through E")
	}
	// Outermost code wins when codes are layered (re-classification at
	// a boundary is intentional).
	reclassified := Wrap(Unavailable, "client.do", err)
	if got := CodeOf(reclassified); got != Unavailable {
		t.Fatalf("CodeOf layered = %s, want unavailable (outermost)", got)
	}
	if CodeOf(nil) != "" {
		t.Fatal("CodeOf(nil) must be empty")
	}
	if got := CodeOf(errors.New("bare")); got != Unknown {
		t.Fatalf("CodeOf(bare) = %s, want unknown", got)
	}
	// Joined errors: first coded branch wins.
	joined := errors.Join(errors.New("bare"), New(NotFound, "lookup", "no such topology"))
	if got := CodeOf(joined); got != NotFound {
		t.Fatalf("CodeOf(join) = %s, want not_found", got)
	}
}

type coderErr struct{ c Code }

func (e coderErr) Error() string { return "domain error" }
func (e coderErr) FtCode() Code  { return e.c }

func TestCoderInterface(t *testing.T) {
	err := fmt.Errorf("boundary: %w", coderErr{c: NotTolerated})
	if got := CodeOf(err); got != NotTolerated {
		t.Fatalf("CodeOf(Coder) = %s, want not_tolerated", got)
	}
	if Retryable(err) {
		t.Fatal("not_tolerated must not be retryable")
	}
}

func TestRetryableAndIs(t *testing.T) {
	if Retryable(nil) {
		t.Fatal("nil is not retryable")
	}
	if Retryable(errors.New("bare")) {
		t.Fatal("uncoded errors must default to non-retryable")
	}
	if !Retryable(New(Unavailable, "op", "busy")) {
		t.Fatal("unavailable must be retryable")
	}
	if !Retryable(New(ResyncRequired, "op", "evicted")) {
		t.Fatal("resync class counts as retryable (actionable without new input)")
	}
	if !Is(New(Conflict, "op", "no dir"), Conflict) {
		t.Fatal("Is failed on direct code")
	}
	if Is(nil, Conflict) {
		t.Fatal("Is(nil) must be false")
	}
}

func TestWrapNilAndMessages(t *testing.T) {
	if Wrap(Internal, "op", nil) != nil {
		t.Fatal("Wrap(nil) must be nil")
	}
	if Wrapf(Internal, "op", nil, "x") != nil {
		t.Fatal("Wrapf(nil) must be nil")
	}
	err := New(Invalid, "ftnet.AddFaults", "node %d out of range [0,%d)", 42, 10)
	msg := err.Error()
	for _, want := range []string{"ftnet.AddFaults", "invalid_argument", "node 42 out of range [0,10)"} {
		if !strings.Contains(msg, want) {
			t.Errorf("Error() = %q, missing %q", msg, want)
		}
	}
	if got := Op(err); got != "ftnet.AddFaults" {
		t.Errorf("Op = %q", got)
	}
	if got := Op(errors.New("bare")); got != "" {
		t.Errorf("Op(bare) = %q, want empty", got)
	}
}

func TestWireJSONShape(t *testing.T) {
	data, err := json.Marshal(Wire{
		Code:      ResyncRequired,
		Message:   "generation 3 evicted",
		Retryable: true, ResyncFrom: 17,
	})
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"code", "message", "retryable", "resync_from"} {
		if _, ok := m[k]; !ok {
			t.Errorf("wire body missing key %q in %s", k, data)
		}
	}
	// resync_from omitted when zero — keeps non-resync bodies minimal.
	data, _ = json.Marshal(Wire{Code: Invalid, Message: "bad", Retryable: false})
	if strings.Contains(string(data), "resync_from") {
		t.Errorf("zero resync_from must be omitted: %s", data)
	}
}
