package grid

import "testing"

// FuzzCyclicCover feeds arbitrary byte strings as coordinate lists and
// checks the covering-interval contract. Runs its seed corpus under plain
// `go test`; explore further with `go test -fuzz FuzzCyclicCover`.
func FuzzCyclicCover(f *testing.F) {
	f.Add([]byte{1, 2, 3})
	f.Add([]byte{0})
	f.Add([]byte{9, 0, 1, 9, 0})
	f.Add([]byte{7, 7, 7, 7})
	f.Fuzz(func(t *testing.T, raw []byte) {
		if len(raw) == 0 {
			return
		}
		n := 11
		coords := make([]int, len(raw))
		orig := make([]int, len(raw))
		for i, b := range raw {
			coords[i] = int(b) % n
			orig[i] = coords[i]
		}
		lo, e := CyclicCover(coords, n)
		if e < 1 || e > n {
			t.Fatalf("extent %d out of range", e)
		}
		for _, c := range orig {
			if !InCyclicInterval(c, lo, e, n) {
				t.Fatalf("coordinate %d outside cover (%d,%d)", c, lo, e)
			}
		}
	})
}

// FuzzIntervalCover checks that the two-interval cover always contains
// both inputs and is minimal enough to fit in the cycle.
func FuzzIntervalCover(f *testing.F) {
	f.Add(uint8(0), uint8(2), uint8(8), uint8(3))
	f.Add(uint8(9), uint8(4), uint8(1), uint8(1))
	f.Fuzz(func(t *testing.T, a, b, c, d uint8) {
		n := 13
		lo1, lo2 := int(a)%n, int(c)%n
		e1, e2 := 1+int(b)%5, 1+int(d)%5
		lo, e := IntervalCover(lo1, e1, lo2, e2, n)
		if e < 1 || e > n {
			t.Fatalf("cover extent %d", e)
		}
		for o := 0; o < e1; o++ {
			if !InCyclicInterval(Add(lo1, o, n), lo, e, n) {
				t.Fatal("first interval escapes cover")
			}
		}
		for o := 0; o < e2; o++ {
			if !InCyclicInterval(Add(lo2, o, n), lo, e, n) {
				t.Fatal("second interval escapes cover")
			}
		}
	})
}
