// Package grid provides cyclic integer arithmetic and mixed-radix
// coordinate indexing for d-dimensional tori and meshes.
//
// Conventions: all coordinates are 0-indexed (the paper uses [n] = 1..n;
// we use 0..n-1 throughout). Cyclic addition and subtraction correspond to
// the paper's +_n and -_n operators.
package grid

import "fmt"

// Add returns i +_n j, the cyclic sum of i and j in 0..n-1.
// j may be negative or exceed n.
func Add(i, j, n int) int {
	s := (i + j) % n
	if s < 0 {
		s += n
	}
	return s
}

// Sub returns i -_n j, the cyclic difference of i and j in 0..n-1.
func Sub(i, j, n int) int {
	return Add(i, -j, n)
}

// Dist returns the cyclic distance between i and j on a cycle of length n,
// i.e. min(|i-j|, n-|i-j|).
func Dist(i, j, n int) int {
	d := i - j
	if d < 0 {
		d = -d
	}
	if n-d < d {
		d = n - d
	}
	return d
}

// FwdGap returns the forward (counterclockwise) gap from i to j on a cycle
// of length n: the unique g in 0..n-1 with i +_n g == j.
func FwdGap(i, j, n int) int {
	return Sub(j, i, n)
}

// InCyclicInterval reports whether x lies in the half-open cyclic interval
// [lo, lo+width) on a cycle of length n. width must be in 0..n.
func InCyclicInterval(x, lo, width, n int) bool {
	return FwdGap(lo, x, n) < width
}

// FloorDiv returns floor(a/b) for positive b, correct for negative a.
func FloorDiv(a, b int) int {
	q := a / b
	if a%b != 0 && (a < 0) != (b < 0) {
		q--
	}
	return q
}

// IntervalsIntersect reports whether the cyclic intervals [lo1, lo1+e1) and
// [lo2, lo2+e2) on a cycle of length n share a point. Extents of n or more
// cover the whole cycle.
func IntervalsIntersect(lo1, e1, lo2, e2, n int) bool {
	if e1 <= 0 || e2 <= 0 {
		return false
	}
	if e1 >= n || e2 >= n {
		return true
	}
	return FwdGap(lo1, lo2, n) < e1 || FwdGap(lo2, lo1, n) < e2
}

// IntervalCover returns the smallest cyclic interval containing both
// [lo1, lo1+e1) and [lo2, lo2+e2) on a cycle of length n. When no interval
// shorter than the full cycle works, it returns (0, n).
func IntervalCover(lo1, e1, lo2, e2, n int) (lo, e int) {
	if e1 >= n || e2 >= n {
		return 0, n
	}
	// Either candidate start covers both intervals; take the shorter cover.
	c1 := e1
	if g := FwdGap(lo1, lo2, n) + e2; g > c1 {
		c1 = g
	}
	c2 := e2
	if g := FwdGap(lo2, lo1, n) + e1; g > c2 {
		c2 = g
	}
	if c1 <= c2 {
		lo, e = lo1, c1
	} else {
		lo, e = lo2, c2
	}
	if e >= n {
		return 0, n
	}
	return lo, e
}

// CyclicCover returns the smallest cyclic interval [lo, lo+e) covering all
// the given coordinates on a cycle of length n. coords must be non-empty;
// it is modified (sorted, deduplicated) in place.
func CyclicCover(coords []int, n int) (lo, e int) {
	sortInts(coords)
	uniq := coords[:1]
	for _, c := range coords[1:] {
		if c != uniq[len(uniq)-1] {
			uniq = append(uniq, c)
		}
	}
	if len(uniq) == 1 {
		return uniq[0], 1
	}
	// The cover is the complement of the largest gap between consecutive
	// (cyclically ordered) coordinates.
	maxGap, maxAt := -1, 0
	for i := range uniq {
		next := uniq[(i+1)%len(uniq)]
		gap := FwdGap(uniq[i], next, n)
		if gap > maxGap {
			maxGap, maxAt = gap, i
		}
	}
	lo = uniq[(maxAt+1)%len(uniq)]
	e = n - maxGap + 1
	return lo, e
}

func sortInts(a []int) {
	// Insertion sort: coordinate lists here are tiny (bounded by box caps).
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

// Shape describes the side lengths of a d-dimensional box or torus and
// provides mixed-radix conversion between coordinate tuples and flat
// indices. Index order is row-major: the last coordinate varies fastest.
type Shape []int

// Size returns the total number of points, the product of all sides.
func (s Shape) Size() int {
	n := 1
	for _, v := range s {
		n *= v
	}
	return n
}

// Validate returns an error unless every side is positive.
func (s Shape) Validate() error {
	if len(s) == 0 {
		return fmt.Errorf("grid: empty shape")
	}
	for i, v := range s {
		if v <= 0 {
			return fmt.Errorf("grid: shape[%d] = %d, want > 0", i, v)
		}
	}
	return nil
}

// Index converts a coordinate tuple to a flat index. The tuple must have
// exactly len(s) entries, each within range.
func (s Shape) Index(coord []int) int {
	idx := 0
	for i, v := range coord {
		idx = idx*s[i] + v
	}
	return idx
}

// Coord converts a flat index back into a coordinate tuple, storing the
// result in buf (which must have length len(s)) and returning it. A nil
// buf allocates.
func (s Shape) Coord(idx int, buf []int) []int {
	if buf == nil {
		buf = make([]int, len(s))
	}
	for i := len(s) - 1; i >= 0; i-- {
		buf[i] = idx % s[i]
		idx /= s[i]
	}
	return buf
}

// Clone returns a copy of the shape.
func (s Shape) Clone() Shape {
	c := make(Shape, len(s))
	copy(c, s)
	return c
}

// Uniform returns a d-dimensional shape with every side equal to n.
func Uniform(d, n int) Shape {
	s := make(Shape, d)
	for i := range s {
		s[i] = n
	}
	return s
}

// TorusNeighbors appends to buf the flat indices of the 2d torus neighbors
// of the point with flat index idx (±1 in each dimension, cyclically) and
// returns the extended slice. Side lengths of 1 or 2 would create self
// loops or duplicate edges; callers requiring simple graphs should ensure
// all sides are at least 3.
func (s Shape) TorusNeighbors(idx int, buf []int) []int {
	coord := s.Coord(idx, make([]int, len(s)))
	for i := range s {
		orig := coord[i]
		coord[i] = Add(orig, 1, s[i])
		buf = append(buf, s.Index(coord))
		coord[i] = Sub(orig, 1, s[i])
		buf = append(buf, s.Index(coord))
		coord[i] = orig
	}
	return buf
}

// MeshNeighbors is like TorusNeighbors but without wraparound: neighbors
// outside the box are omitted.
func (s Shape) MeshNeighbors(idx int, buf []int) []int {
	coord := s.Coord(idx, make([]int, len(s)))
	for i := range s {
		orig := coord[i]
		if orig+1 < s[i] {
			coord[i] = orig + 1
			buf = append(buf, s.Index(coord))
		}
		if orig-1 >= 0 {
			coord[i] = orig - 1
			buf = append(buf, s.Index(coord))
		}
		coord[i] = orig
	}
	return buf
}

// ChebyshevDist returns the toroidal Chebyshev (king-move) distance between
// the points with flat indices a and b.
func (s Shape) ChebyshevDist(a, b int) int {
	ca := s.Coord(a, make([]int, len(s)))
	cb := s.Coord(b, make([]int, len(s)))
	max := 0
	for i := range s {
		d := Dist(ca[i], cb[i], s[i])
		if d > max {
			max = d
		}
	}
	return max
}
