package grid

import (
	"testing"
	"testing/quick"
)

func TestCyclicArithmetic(t *testing.T) {
	cases := []struct {
		i, j, n, add, sub int
	}{
		{0, 1, 5, 1, 4},
		{4, 1, 5, 0, 3},
		{4, -1, 5, 3, 0},
		{2, 13, 5, 0, 4},
		{0, -7, 5, 3, 2},
	}
	for _, c := range cases {
		if got := Add(c.i, c.j, c.n); got != c.add {
			t.Errorf("Add(%d,%d,%d) = %d, want %d", c.i, c.j, c.n, got, c.add)
		}
		if got := Sub(c.i, c.j, c.n); got != c.sub {
			t.Errorf("Sub(%d,%d,%d) = %d, want %d", c.i, c.j, c.n, got, c.sub)
		}
	}
}

func TestAddSubInverse(t *testing.T) {
	f := func(i, j uint8) bool {
		n := 17
		x := int(i) % n
		return Sub(Add(x, int(j), n), int(j), n) == x
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDistSymmetricBounded(t *testing.T) {
	f := func(i, j uint8) bool {
		n := 23
		a, b := int(i)%n, int(j)%n
		d := Dist(a, b, n)
		return d == Dist(b, a, n) && d >= 0 && d <= n/2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFwdGap(t *testing.T) {
	if got := FwdGap(8, 2, 10); got != 4 {
		t.Errorf("FwdGap(8,2,10) = %d, want 4", got)
	}
	if got := FwdGap(2, 8, 10); got != 6 {
		t.Errorf("FwdGap(2,8,10) = %d, want 6", got)
	}
	f := func(i, j uint8) bool {
		n := 31
		a, b := int(i)%n, int(j)%n
		return Add(a, FwdGap(a, b, n), n) == b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestInCyclicInterval(t *testing.T) {
	if !InCyclicInterval(1, 8, 5, 10) {
		t.Error("1 should be in wrap interval [8,13) mod 10")
	}
	if InCyclicInterval(3, 8, 5, 10) {
		t.Error("3 should not be in wrap interval [8,13) mod 10")
	}
	if !InCyclicInterval(4, 4, 1, 10) {
		t.Error("4 should be in [4,5)")
	}
	if InCyclicInterval(4, 4, 0, 10) {
		t.Error("empty interval contains nothing")
	}
}

func TestFloorDiv(t *testing.T) {
	cases := []struct{ a, b, want int }{
		{7, 3, 2}, {-7, 3, -3}, {-6, 3, -2}, {0, 5, 0}, {-1, 5, -1},
	}
	for _, c := range cases {
		if got := FloorDiv(c.a, c.b); got != c.want {
			t.Errorf("FloorDiv(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestShapeIndexRoundtrip(t *testing.T) {
	s := Shape{3, 5, 7}
	if s.Size() != 105 {
		t.Fatalf("Size = %d", s.Size())
	}
	for idx := 0; idx < s.Size(); idx++ {
		c := s.Coord(idx, nil)
		if got := s.Index(c); got != idx {
			t.Fatalf("Index(Coord(%d)) = %d", idx, got)
		}
		for i, v := range c {
			if v < 0 || v >= s[i] {
				t.Fatalf("Coord(%d)[%d] = %d out of range", idx, i, v)
			}
		}
	}
}

func TestShapeValidate(t *testing.T) {
	if err := (Shape{}).Validate(); err == nil {
		t.Error("empty shape should be invalid")
	}
	if err := (Shape{3, 0}).Validate(); err == nil {
		t.Error("zero side should be invalid")
	}
	if err := (Shape{3, 4}).Validate(); err != nil {
		t.Errorf("valid shape rejected: %v", err)
	}
}

func TestTorusNeighborsCount(t *testing.T) {
	s := Shape{4, 5}
	nbrs := s.TorusNeighbors(s.Index([]int{0, 0}), nil)
	if len(nbrs) != 4 {
		t.Fatalf("torus corner has %d neighbors, want 4", len(nbrs))
	}
	// Wrap: (0,0) connects to (3,0) and (0,4).
	want := map[int]bool{s.Index([]int{1, 0}): true, s.Index([]int{3, 0}): true,
		s.Index([]int{0, 1}): true, s.Index([]int{0, 4}): true}
	for _, v := range nbrs {
		if !want[v] {
			t.Errorf("unexpected neighbor %v", s.Coord(v, nil))
		}
	}
}

func TestMeshNeighborsCorner(t *testing.T) {
	s := Shape{4, 5}
	nbrs := s.MeshNeighbors(s.Index([]int{0, 0}), nil)
	if len(nbrs) != 2 {
		t.Fatalf("mesh corner has %d neighbors, want 2", len(nbrs))
	}
	center := s.MeshNeighbors(s.Index([]int{2, 2}), nil)
	if len(center) != 4 {
		t.Fatalf("mesh interior has %d neighbors, want 4", len(center))
	}
}

func TestChebyshevDist(t *testing.T) {
	s := Shape{10, 10}
	a := s.Index([]int{9, 9})
	b := s.Index([]int{0, 1})
	if got := s.ChebyshevDist(a, b); got != 2 {
		t.Errorf("ChebyshevDist = %d, want 2", got)
	}
}

func TestIntervalsIntersect(t *testing.T) {
	cases := []struct {
		lo1, e1, lo2, e2, n int
		want                bool
	}{
		{0, 3, 2, 2, 10, true},
		{0, 3, 3, 2, 10, false},
		{8, 4, 0, 2, 10, true},  // wrap overlap
		{8, 2, 0, 2, 10, false}, // wrap adjacent
		{0, 10, 5, 1, 10, true}, // full cycle
		{5, 0, 5, 5, 10, false}, // empty
	}
	for _, c := range cases {
		if got := IntervalsIntersect(c.lo1, c.e1, c.lo2, c.e2, c.n); got != c.want {
			t.Errorf("IntervalsIntersect(%+v) = %v", c, got)
		}
	}
}

func TestIntervalCoverMinimal(t *testing.T) {
	lo, e := IntervalCover(8, 2, 1, 2, 10)
	if lo != 8 || e != 5 {
		t.Errorf("IntervalCover wrap = (%d,%d), want (8,5)", lo, e)
	}
	lo, e = IntervalCover(2, 2, 5, 2, 10)
	if e != 5 {
		t.Errorf("IntervalCover = (%d,%d), want extent 5", lo, e)
	}
	// Property: cover contains both intervals.
	f := func(a, b, c, d uint8) bool {
		n := 13
		lo1, lo2 := int(a)%n, int(b)%n
		e1, e2 := 1+int(c)%4, 1+int(d)%4
		lo, e := IntervalCover(lo1, e1, lo2, e2, n)
		for o := 0; o < e1; o++ {
			if !InCyclicInterval(Add(lo1, o, n), lo, e, n) {
				return false
			}
		}
		for o := 0; o < e2; o++ {
			if !InCyclicInterval(Add(lo2, o, n), lo, e, n) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCyclicCoverProperties(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		n := 19
		coords := make([]int, len(raw))
		orig := make([]int, len(raw))
		for i, v := range raw {
			coords[i] = int(v) % n
			orig[i] = coords[i]
		}
		lo, e := CyclicCover(coords, n)
		if e < 1 || e > n {
			return false
		}
		for _, c := range orig {
			if !InCyclicInterval(c, lo, e, n) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestUniform(t *testing.T) {
	s := Uniform(3, 7)
	if len(s) != 3 || s[0] != 7 || s[2] != 7 {
		t.Errorf("Uniform(3,7) = %v", s)
	}
}

// TestTorusNeighborsSymmetric: u in N(v) iff v in N(u), for every pair on
// a small asymmetric shape.
func TestTorusNeighborsSymmetric(t *testing.T) {
	s := Shape{3, 4, 5}
	adj := make(map[[2]int]bool)
	for u := 0; u < s.Size(); u++ {
		for _, v := range s.TorusNeighbors(u, nil) {
			adj[[2]int{u, v}] = true
		}
	}
	for e := range adj {
		if !adj[[2]int{e[1], e[0]}] {
			t.Fatalf("edge %v not symmetric", e)
		}
	}
	// Degree 2d everywhere for sides >= 3.
	for u := 0; u < s.Size(); u++ {
		if got := len(s.TorusNeighbors(u, nil)); got != 6 {
			t.Fatalf("node %d degree %d", u, got)
		}
	}
}

func TestMeshNeighborsSymmetric(t *testing.T) {
	s := Shape{4, 5}
	adj := make(map[[2]int]bool)
	for u := 0; u < s.Size(); u++ {
		for _, v := range s.MeshNeighbors(u, nil) {
			adj[[2]int{u, v}] = true
		}
	}
	for e := range adj {
		if !adj[[2]int{e[1], e[0]}] {
			t.Fatalf("mesh edge %v not symmetric", e)
		}
	}
	// Total directed degree = 2 * edges = 2 * (3*5 + 4*4) = 62.
	if len(adj) != 62 {
		t.Errorf("mesh has %d directed edges, want 62", len(adj))
	}
}

func TestCoordBufferReuse(t *testing.T) {
	s := Shape{4, 5}
	buf := make([]int, 2)
	c := s.Coord(7, buf)
	if &c[0] != &buf[0] {
		t.Error("Coord ignored the provided buffer")
	}
	if c[0] != 1 || c[1] != 2 {
		t.Errorf("Coord(7) = %v", c)
	}
}
