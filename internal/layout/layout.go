// Package layout gives first-order VLSI layout estimates for the paper's
// hosts. The introduction flags layout area as "of particular importance"
// and leaves it open; this module provides the standard first-order
// accounting so the trade-off can at least be quantified:
//
//   - nodes sit on an integer grid in their natural coordinates, with the
//     folded (interleaved) torus layout, under which a cyclic step of
//     distance delta costs 2*delta in Manhattan wire length;
//   - supernode cliques occupy ceil(sqrt(h)) x ceil(sqrt(h)) blocks;
//   - wire area is proportional to total wire length at fixed pitch, so
//     the reported ratio (host wire length) / (plain torus wire length)
//     is the first-order area-redundancy factor.
//
// All quantities are closed-form per edge class; nothing is enumerated.
package layout

import (
	"math"

	"ftnet/internal/core"
	"ftnet/internal/supernode"
	"ftnet/internal/worstcase"
)

// Stats summarizes a host's first-order layout cost.
type Stats struct {
	Nodes      int
	Edges      int
	WireLength float64 // total Manhattan wire length, folded layout
	MaxWire    float64 // longest single wire
}

// PerNode returns wire length per node.
func (s Stats) PerNode() float64 {
	if s.Nodes == 0 {
		return 0
	}
	return s.WireLength / float64(s.Nodes)
}

// Torus returns the layout stats of the plain d-dimensional n-torus:
// d*n^d edges of folded length 2.
func Torus(d, n int) Stats {
	nodes := ipow(n, d)
	edges := d * nodes
	return Stats{Nodes: nodes, Edges: edges, WireLength: 2 * float64(edges), MaxWire: 2}
}

// B returns the layout stats of B^d_n: the torus edges plus vertical
// jumps (cyclic distance b+1 in dimension 0) and diagonal jumps
// (distance b in dimension 0 plus 1 in another dimension).
func B(p core.Params) Stats {
	nodes := p.NumNodes()
	b := float64(p.W)
	torusEdges := p.D * nodes
	vjumpEdges := nodes // 2 per node / 2
	djumpEdges := 2 * (p.D - 1) * nodes
	wire := 2*float64(torusEdges) + 2*(b+1)*float64(vjumpEdges) + (2*b+2)*float64(djumpEdges)
	return Stats{
		Nodes:      nodes,
		Edges:      torusEdges + vjumpEdges + djumpEdges,
		WireLength: wire,
		MaxWire:    2 * (b + 1),
	}
}

// A returns layout stats (upper bounds) for A^d_n: each supernode is a
// ceil(sqrt(h))-side block; intra-clique wires are bounded by the block
// semiperimeter, inter-supernode wires by the base wire length scaled by
// the block side.
func A(p supernode.Params) Stats {
	h := float64(p.H)
	side := math.Ceil(math.Sqrt(h))
	numSuper := float64(p.NumSupernodes())
	intraEdges := numSuper * h * (h - 1) / 2
	intraLen := 2 * (side - 1) // folded block diameter bound
	baseStats := B(p.Base)
	// Every base edge becomes h^2 wires whose length is the base wire
	// length scaled by the block side (blocks replace unit cells).
	interEdges := float64(baseStats.Edges) * h * h
	interLen := baseStats.WireLength / float64(baseStats.Edges) * side
	return Stats{
		Nodes:      p.NumNodes(),
		Edges:      int(intraEdges + interEdges),
		WireLength: intraEdges*intraLen + interEdges*interLen,
		MaxWire:    baseStats.MaxWire*side + 2*(side-1),
	}
}

// D returns layout stats for D^d_{n,k}: per dimension, torus edges of
// folded length 2 and jump edges over b_i nodes (distance b_i + 1).
func D(p worstcase.Params) Stats {
	nodes := p.NumNodes()
	widths := p.Widths()
	edges := 0
	wire := 0.0
	maxWire := 2.0
	for _, w := range widths {
		edges += 2 * nodes // torus + jump edges along this dimension
		wire += 2*float64(nodes) + 2*float64(w+1)*float64(nodes)
		if l := 2 * float64(w+1); l > maxWire {
			maxWire = l
		}
	}
	return Stats{Nodes: nodes, Edges: edges, WireLength: wire, MaxWire: maxWire}
}

func ipow(base, e int) int {
	out := 1
	for i := 0; i < e; i++ {
		out *= base
	}
	return out
}
