package layout

import (
	"testing"

	"ftnet/internal/core"
	"ftnet/internal/supernode"
	"ftnet/internal/worstcase"
)

func TestTorusStats(t *testing.T) {
	s := Torus(2, 10)
	if s.Nodes != 100 || s.Edges != 200 {
		t.Fatalf("torus stats %+v", s)
	}
	if s.WireLength != 400 || s.MaxWire != 2 {
		t.Errorf("torus wire %v max %v", s.WireLength, s.MaxWire)
	}
	if s.PerNode() != 4 {
		t.Errorf("per node %v", s.PerNode())
	}
}

func TestBStatsEdgeAccounting(t *testing.T) {
	p := core.Params{D: 2, W: 4, Pitch: 16, Scale: 1}
	s := B(p)
	// Edges must equal degree * nodes / 2 = (6d-2)/2 * N = 5N.
	if want := 5 * p.NumNodes(); s.Edges != want {
		t.Errorf("B edges = %d, want %d", s.Edges, want)
	}
	// Longest wire is the vertical jump.
	if s.MaxWire != 2*float64(p.W+1) {
		t.Errorf("B max wire = %v", s.MaxWire)
	}
	// Redundancy factor vs plain torus of the same guest: finite and > 1.
	base := Torus(2, p.N())
	ratio := s.WireLength / base.WireLength
	if ratio <= 1 || ratio > 20 {
		t.Errorf("B wire redundancy = %v, want in (1, 20]", ratio)
	}
}

func TestDStats(t *testing.T) {
	p := worstcase.Params{D: 2, N: 60, K: 27}
	if err := p.Resolve(); err != nil {
		t.Fatal(err)
	}
	s := D(p)
	if want := 4 * p.NumNodes(); s.Edges != want { // degree 4d / 2 * N = 2d*N
		t.Errorf("D edges = %d, want %d", s.Edges, want)
	}
	// Longest wire is the last dimension's jump: 2*(b^2+1).
	if s.MaxWire != 2*float64(9+1) {
		t.Errorf("D max wire = %v", s.MaxWire)
	}
}

func TestAStatsDominatesBase(t *testing.T) {
	p := supernode.Params{Base: core.Params{D: 2, W: 4, Pitch: 16, Scale: 1}, K: 2, H: 10, Q: 0}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	s := A(p)
	if s.Nodes != p.NumNodes() {
		t.Errorf("A nodes = %d", s.Nodes)
	}
	if s.WireLength <= B(p.Base).WireLength {
		t.Error("A wire must exceed its base's")
	}
	if s.MaxWire <= 0 {
		t.Error("A max wire not positive")
	}
}

func TestPerNodeEmpty(t *testing.T) {
	if (Stats{}).PerNode() != 0 {
		t.Error("empty stats per-node should be 0")
	}
}
