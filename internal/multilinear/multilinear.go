// Package multilinear implements multilinear polynomial interpolation on
// the unit hypercube, the tool the paper uses (Lemmas 9-11) to extend band
// segments from black tiles through white tiles:
//
//   - Lemma 9: corner values determine a unique multilinear interpolant.
//   - Lemma 10: corner-wise dominance implies dominance on the whole cube,
//     which is what keeps interpolated bands untouching.
//   - Lemma 11: corner values in [0,1] bound every partial derivative by 1,
//     which is what keeps band slopes legal after scaling by the tile side.
//
// The interpolant of corner values a_S is evaluated by iterated linear
// interpolation (tensor-product lerp), which is exactly the multilinear
// polynomial of Lemma 9.
package multilinear

import "fmt"

// Eval evaluates the multilinear interpolant of the 2^l corner values at
// point x in [0,1]^l. corners[s] is the value at the corner whose i-th
// coordinate is bit i of s (bit set means coordinate 1). len(corners) must
// be 1 << len(x); Eval panics otherwise.
//
// The scratch buffer buf, if non-nil and large enough (len >= len(corners)),
// avoids an allocation.
func Eval(corners []float64, x []float64, buf []float64) float64 {
	l := len(x)
	if len(corners) != 1<<uint(l) {
		panic(fmt.Sprintf("multilinear: %d corners for %d dims", len(corners), l))
	}
	if l == 0 {
		return corners[0]
	}
	var work []float64
	if cap(buf) >= len(corners) {
		work = buf[:len(corners)]
	} else {
		work = make([]float64, len(corners))
	}
	copy(work, corners)
	size := len(corners)
	// Collapse the highest remaining dimension each pass: corner s pairs
	// with corner s+half across bit i, so iterate dimensions from l-1 down.
	for i := l - 1; i >= 0; i-- {
		t := x[i]
		half := size >> 1
		for s := 0; s < half; s++ {
			lo := work[s]      // bit i = 0 corner block
			hi := work[s+half] // bit i = 1 corner block
			work[s] = lo + t*(hi-lo)
		}
		size = half
	}
	return work[0]
}

// Constant reports whether all corner values are equal, enabling a fast
// path for tiles far from any fault.
func Constant(corners []float64) bool {
	for _, v := range corners[1:] {
		if v != corners[0] {
			return false
		}
	}
	return true
}

// RoundHalfUp rounds to the nearest integer, halves away from the floor
// boundary upward: floor(x + 0.5). The band machinery relies on this being
// a single monotone map applied uniformly: if f - g >= c pointwise with c a
// positive integer, then RoundHalfUp(f) - RoundHalfUp(g) >= c as well,
// which preserves the untouching property after rounding (sharpening the
// paper's remark following Lemma 10).
func RoundHalfUp(x float64) int {
	f := int(floor(x + 0.5))
	return f
}

func floor(x float64) float64 {
	i := float64(int64(x))
	if x < 0 && x != i {
		return i - 1
	}
	return i
}
