package multilinear

import (
	"math"
	"testing"
	"testing/quick"
)

func TestEval1D(t *testing.T) {
	corners := []float64{2, 6}
	if got := Eval(corners, []float64{0.5}, nil); got != 4 {
		t.Errorf("midpoint = %v, want 4", got)
	}
	if got := Eval(corners, []float64{0}, nil); got != 2 {
		t.Errorf("corner 0 = %v", got)
	}
	if got := Eval(corners, []float64{1}, nil); got != 6 {
		t.Errorf("corner 1 = %v", got)
	}
}

func TestEval2DBilinear(t *testing.T) {
	// corners[s]: bit 0 -> x0, bit 1 -> x1.
	corners := []float64{0, 1, 2, 3} // f(x0,x1) = x0 + 2*x1
	for _, c := range []struct{ x0, x1, want float64 }{
		{0, 0, 0}, {1, 0, 1}, {0, 1, 2}, {1, 1, 3}, {0.5, 0.5, 1.5}, {0.25, 0.75, 1.75},
	} {
		if got := Eval(corners, []float64{c.x0, c.x1}, nil); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("f(%v,%v) = %v, want %v", c.x0, c.x1, got, c.want)
		}
	}
}

func TestEval3DCorners(t *testing.T) {
	corners := make([]float64, 8)
	for s := range corners {
		corners[s] = float64(s * s)
	}
	x := make([]float64, 3)
	for s := 0; s < 8; s++ {
		for i := 0; i < 3; i++ {
			if s&(1<<i) != 0 {
				x[i] = 1
			} else {
				x[i] = 0
			}
		}
		if got := Eval(corners, x, nil); math.Abs(got-corners[s]) > 1e-12 {
			t.Errorf("corner %d = %v, want %v", s, got, corners[s])
		}
	}
}

func TestEvalZeroDim(t *testing.T) {
	if got := Eval([]float64{7}, nil, nil); got != 7 {
		t.Errorf("0-dim Eval = %v", got)
	}
}

func TestEvalPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("mismatched corners should panic")
		}
	}()
	Eval([]float64{1, 2, 3}, []float64{0.5}, nil)
}

// TestLemma10Dominance: corner-wise dominance implies dominance everywhere.
func TestLemma10Dominance(t *testing.T) {
	f := func(raw [4]uint8, gap uint8, px, py uint8) bool {
		cf := make([]float64, 4)
		cg := make([]float64, 4)
		for i, v := range raw {
			cf[i] = float64(v)
			cg[i] = cf[i] + 1 + float64(gap%50)
		}
		x := []float64{float64(px%100) / 99, float64(py%100) / 99}
		return Eval(cg, x, nil)-Eval(cf, x, nil) >= 1+float64(gap%50)-1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestLemma11Slope: corner values spanning at most R bound the per-step
// change by R when steps are 1/t of the cube.
func TestLemma11Slope(t *testing.T) {
	f := func(raw [4]uint8, px, py uint8) bool {
		c := make([]float64, 4)
		for i, v := range raw {
			c[i] = float64(v % 16) // span < 16
		}
		tside := 16.0
		x0 := float64(px%15) / tside
		y0 := float64(py%15) / tside
		base := Eval(c, []float64{x0, y0}, nil)
		dx := Eval(c, []float64{x0 + 1/tside, y0}, nil)
		dy := Eval(c, []float64{x0, y0 + 1/tside}, nil)
		// Span 15 over 16 steps: per-step slope < 1.
		return math.Abs(dx-base) < 1 && math.Abs(dy-base) < 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestConstantFastPath(t *testing.T) {
	if !Constant([]float64{3, 3, 3, 3}) {
		t.Error("constant corners not detected")
	}
	if Constant([]float64{3, 3, 4, 3}) {
		t.Error("non-constant corners reported constant")
	}
}

func TestRoundHalfUpMonotoneGap(t *testing.T) {
	f := func(a int16, frac uint8, gap uint8) bool {
		x := float64(a)/8 + float64(frac)/256
		g := int(gap%10) + 1
		return RoundHalfUp(x+float64(g))-RoundHalfUp(x) == g
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	if RoundHalfUp(2.5) != 3 || RoundHalfUp(-2.5) != -2 || RoundHalfUp(2.49) != 2 {
		t.Error("RoundHalfUp values wrong")
	}
}

func TestEvalScratchReuse(t *testing.T) {
	corners := []float64{1, 2, 3, 4}
	scratch := make([]float64, 4)
	a := Eval(corners, []float64{0.3, 0.7}, scratch)
	b := Eval(corners, []float64{0.3, 0.7}, scratch)
	if a != b {
		t.Error("scratch reuse changed the result")
	}
	if corners[0] != 1 || corners[3] != 4 {
		t.Error("Eval mutated its input corners")
	}
}
