package parallel

import (
	"fmt"
	"runtime"
	"sync"

	"ftnet/internal/rng"
	"ftnet/internal/stats"
)

// LadderTrial runs one Monte-Carlo trial across all k rungs of a ladder,
// writing one outcome per rung into out (len(out) == k). t, stream and
// scratch follow the Trial contract. stopped[r] reports whether rung r's
// result is already committed (its Wilson interval met the target over an
// earlier shard prefix): the trial MAY skip the work for such a rung —
// its out entry is discarded — but everything it does for later rungs
// must be bit-identical whether or not earlier rungs were evaluated.
// Coupled sweep trials satisfy this by drawing all randomness during
// rung-independent sampling and keeping each rung's evaluation a pure
// function of the sampled state (core.SweepTrial's equivalence contract).
type LadderTrial func(t int, stream *rng.PCG, scratch any, stopped []bool, out []stats.Outcome) error

// RungReport is one rung's aggregated result.
type RungReport struct {
	stats.Result
	// Shards is the number of shards committed for this rung.
	Shards int
	// EarlyStopped reports whether TargetCI cut this rung short.
	EarlyStopped bool
}

// LadderReport aggregates a RunLadder execution.
type LadderReport struct {
	Rungs []RungReport
	// Requested is the trial count passed to RunLadder.
	Requested int
	// Workers is the worker count actually used.
	Workers int
}

// ladderShard is one shard's per-rung outcome tallies.
type ladderShard struct {
	successes []int
	trials    []int
	err       error
	done      bool
}

// RunLadder executes trials 0..trials-1, each evaluating all k rungs, and
// aggregates per-rung outcomes. It extends Run's determinism contract to
// vectors: shards are dispatched in index order, trial t draws only from
// its private (rootSeed, t) PCG stream, and each rung's committed prefix
// is the shortest shard prefix whose 95% Wilson interval is narrower than
// opts.TargetCI (once opts.MinTrials trials are in) — a pure function of
// outcomes in shard order, hence bit-identical for every worker count.
// Rungs that have stopped are advertised to later-dispatched trials via
// the stopped snapshot, so a coupled sweep trial can skip their pipeline
// work; outcomes reported for stopped rungs are discarded. The run ends
// when every rung has stopped or the trial budget is exhausted.
func RunLadder(trials, k int, rootSeed uint64, opts Options, fn LadderTrial) (LadderReport, error) {
	if trials <= 0 || k <= 0 {
		return LadderReport{}, fmt.Errorf("parallel: trials = %d, rungs = %d", trials, k)
	}
	shardSize := opts.ShardSize
	if shardSize <= 0 {
		shardSize = DefaultShardSize
		for (trials+shardSize-1)/shardSize > maxAutoShards {
			shardSize *= 2
		}
	}
	numShards := (trials + shardSize - 1) / shardSize
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > numShards {
		workers = numShards
	}
	minTrials := opts.MinTrials
	if minTrials <= 0 {
		minTrials = 4 * shardSize
	}

	shards := make([]ladderShard, numShards)
	commit := make([]int, k) // per-rung committed shard count; -1 = run to the end
	for r := range commit {
		commit[r] = -1
	}
	var (
		mu           sync.Mutex
		nextShard    int
		frontier     int
		prefixSucc   = make([]int, k)
		prefixTrials = make([]int, k)
		open         = k // rungs without a commit decision
		stopDispatch bool
		fatal        error
	)

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var scratch any
			if opts.NewScratch != nil {
				scratch = opts.NewScratch()
			}
			stopped := make([]bool, k)
			out := make([]stats.Outcome, k)
			for {
				mu.Lock()
				if stopDispatch || nextShard >= numShards {
					mu.Unlock()
					return
				}
				s := nextShard
				nextShard++
				// Snapshot the per-rung stop state for this shard: purely a
				// cost hint, never part of the committed result.
				for r := range stopped {
					stopped[r] = commit[r] >= 0
				}
				mu.Unlock()

				lo := s * shardSize
				hi := lo + shardSize
				if hi > trials {
					hi = trials
				}
				st := ladderShard{successes: make([]int, k), trials: make([]int, k)}
				for t := lo; t < hi; t++ {
					if err := fn(t, rng.NewPCG(rootSeed, uint64(t)), scratch, stopped, out); err != nil {
						st.err = fmt.Errorf("trial %d: %w", t, err)
						break
					}
					for r := 0; r < k; r++ {
						if stopped[r] {
							continue
						}
						st.trials[r]++
						if out[r] == stats.Success {
							st.successes[r]++
						}
					}
				}
				st.done = true

				mu.Lock()
				shards[s] = st
				if st.err != nil {
					stopDispatch = true
				}
				for frontier < numShards && shards[frontier].done && open > 0 && fatal == nil {
					if err := shards[frontier].err; err != nil {
						// The erroring shard would have contributed to every
						// still-open rung; abort the run with it.
						fatal = err
						stopDispatch = true
						break
					}
					for r := 0; r < k; r++ {
						if commit[r] >= 0 {
							continue
						}
						prefixSucc[r] += shards[frontier].successes[r]
						prefixTrials[r] += shards[frontier].trials[r]
					}
					frontier++
					if opts.TargetCI > 0 {
						for r := 0; r < k; r++ {
							if commit[r] >= 0 || prefixTrials[r] < minTrials {
								continue
							}
							if stats.NewResult(prefixSucc[r], prefixTrials[r]).Width() <= opts.TargetCI {
								commit[r] = frontier
								open--
							}
						}
						if open == 0 {
							stopDispatch = true
						}
					}
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()

	if fatal != nil {
		return LadderReport{}, fatal
	}
	rep := LadderReport{Rungs: make([]RungReport, k), Requested: trials, Workers: workers}
	for r := 0; r < k; r++ {
		committed := commit[r]
		early := committed >= 0 && committed < numShards
		if committed < 0 {
			committed = frontier // all error-free done shards, == numShards here
		}
		if committed != frontier && !early {
			return LadderReport{}, fmt.Errorf("parallel: internal: rung %d committed %d of %d shards", r, committed, numShards)
		}
		var succ, ran int
		for s := 0; s < committed; s++ {
			if !shards[s].done {
				return LadderReport{}, fmt.Errorf("parallel: internal: shard %d not run", s)
			}
			succ += shards[s].successes[r]
			ran += shards[s].trials[r]
		}
		rep.Rungs[r] = RungReport{Result: stats.NewResult(succ, ran), Shards: committed, EarlyStopped: early}
	}
	return rep, nil
}
