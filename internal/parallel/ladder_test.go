package parallel

import (
	"errors"
	"testing"

	"ftnet/internal/rng"
	"ftnet/internal/stats"
)

// synthLadder is a nontrivial vector trial: rung r succeeds with a
// probability that falls with r, and the work per trial varies.
func synthLadder(t int, stream *rng.PCG, _ any, stopped []bool, out []stats.Outcome) error {
	spin := stream.Intn(100)
	acc := uint64(0)
	for i := 0; i < spin; i++ {
		acc ^= stream.Uint64()
	}
	for r := range out {
		// Draw regardless of stopped[r]: rung outcomes must not depend on
		// which rungs were skipped, so the stream use is rung-independent.
		u := stream.Float64()
		if stopped[r] {
			continue
		}
		if u < 1.0/float64(r+1) {
			out[r] = stats.Success
		} else {
			out[r] = stats.Failure
		}
	}
	return nil
}

// TestParallelDeterminismLadder pins RunLadder's contract (the name keeps
// it inside CI's -race determinism sweep): per-rung committed counts and
// stopping points must be bit-identical for 1, 4 and 16 workers, with and
// without per-rung early stopping.
func TestParallelDeterminismLadder(t *testing.T) {
	const k = 6
	t.Run("full", func(t *testing.T) {
		var ref LadderReport
		for i, workers := range []int{1, 4, 16} {
			rep, err := RunLadder(400, k, 42, Options{Workers: workers}, synthLadder)
			if err != nil {
				t.Fatal(err)
			}
			for r, rung := range rep.Rungs {
				if rung.Trials != 400 {
					t.Fatalf("workers=%d rung=%d: ran %d/400 trials", workers, r, rung.Trials)
				}
			}
			if i == 0 {
				ref = rep
				continue
			}
			for r := range rep.Rungs {
				if rep.Rungs[r].Successes != ref.Rungs[r].Successes {
					t.Fatalf("workers=%d rung=%d: %d successes, want %d",
						workers, r, rep.Rungs[r].Successes, ref.Rungs[r].Successes)
				}
			}
		}
	})

	t.Run("per-rung-early-stop", func(t *testing.T) {
		var ref LadderReport
		for i, workers := range []int{1, 4, 16} {
			rep, err := RunLadder(200000, k, 42, Options{Workers: workers, TargetCI: 0.1}, synthLadder)
			if err != nil {
				t.Fatal(err)
			}
			stopped := 0
			for _, rung := range rep.Rungs {
				if rung.EarlyStopped {
					stopped++
				}
			}
			if stopped == 0 {
				t.Fatalf("workers=%d: no rung stopped early", workers)
			}
			if i == 0 {
				ref = rep
				continue
			}
			for r := range rep.Rungs {
				if rep.Rungs[r] != ref.Rungs[r] {
					t.Fatalf("workers=%d rung=%d: %+v, want %+v", workers, r, rep.Rungs[r], ref.Rungs[r])
				}
			}
		}
	})
}

// TestLadderRungsStopIndependently checks that an easy rung (always
// failing: zero-width interval once MinTrials are in) stops long before a
// hard 50/50 rung, and that committed counts differ accordingly.
func TestLadderRungsStopIndependently(t *testing.T) {
	rep, err := RunLadder(100000, 2, 7, Options{Workers: 8, TargetCI: 0.05},
		func(t int, stream *rng.PCG, _ any, stopped []bool, out []stats.Outcome) error {
			u := stream.Bernoulli(0.5)
			if !stopped[0] {
				out[0] = stats.Failure
			}
			if !stopped[1] {
				if u {
					out[1] = stats.Success
				} else {
					out[1] = stats.Failure
				}
			}
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Rungs[0].EarlyStopped || !rep.Rungs[1].EarlyStopped {
		t.Fatalf("expected both rungs to stop early: %+v", rep.Rungs)
	}
	if rep.Rungs[0].Trials >= rep.Rungs[1].Trials {
		t.Fatalf("degenerate rung (%d trials) should stop before the 50/50 rung (%d trials)",
			rep.Rungs[0].Trials, rep.Rungs[1].Trials)
	}
}

// TestLadderSkipHintReachesTrials checks that once a rung stops while
// others still run, later trials actually observe stopped[r] == true (the
// cost-skipping hint).
func TestLadderSkipHintReachesTrials(t *testing.T) {
	sawSkip := false
	_, err := RunLadder(50000, 2, 3, Options{Workers: 1, TargetCI: 0.02, ShardSize: 8},
		func(t int, stream *rng.PCG, _ any, stopped []bool, out []stats.Outcome) error {
			u := stream.Bernoulli(0.5)
			if stopped[0] && !stopped[1] {
				sawSkip = true // workers=1: no race on this flag
			}
			out[0] = stats.Failure // degenerate: stops as soon as MinTrials are in
			if u {
				out[1] = stats.Success
			} else {
				out[1] = stats.Failure
			}
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if !sawSkip {
		t.Error("stopped hint never reached a trial after the rung committed")
	}
}

func TestLadderPropagatesError(t *testing.T) {
	boom := errors.New("boom")
	_, err := RunLadder(1000, 3, 1, Options{Workers: 4},
		func(t int, stream *rng.PCG, _ any, stopped []bool, out []stats.Outcome) error {
			if t == 41 {
				return boom
			}
			for r := range out {
				out[r] = stats.Success
			}
			return nil
		})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
}

func TestLadderRejectsBadShape(t *testing.T) {
	if _, err := RunLadder(0, 3, 1, Options{}, nil); err == nil {
		t.Error("0 trials accepted")
	}
	if _, err := RunLadder(10, 0, 1, Options{}, nil); err == nil {
		t.Error("0 rungs accepted")
	}
}
