package parallel

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"ftnet/internal/rng"
)

// LifetimeTrial runs one Monte-Carlo trial with a vector-valued outcome,
// writing one real metric per component into out (len(out) == dims).
// t, stream and scratch follow the Trial contract. Unlike LadderTrial's
// per-rung successes, the components are arbitrary reals — lifetimes,
// fault counts at death, availability fractions — which is what the
// churn workloads produce.
type LifetimeTrial func(t int, stream *rng.PCG, scratch any, out []float64) error

// LifetimeReport aggregates a RunLifetime execution: per-component mean
// and standard error over the committed trial prefix.
type LifetimeReport struct {
	// Trials is the number of committed trials.
	Trials int
	// Requested is the trial count passed to RunLifetime.
	Requested int
	// Workers is the worker count actually used.
	Workers int
	// Shards is the number of committed shards.
	Shards int
	// EarlyStopped reports whether TargetCI cut the run short.
	EarlyStopped bool
	// Mean[c] is the sample mean of component c over the committed trials.
	Mean []float64
	// StdErr[c] is the standard error of Mean[c] (sample std / sqrt(n));
	// 0 when fewer than two trials committed.
	StdErr []float64
}

// lifetimeShard is one shard's per-component running sums, written once
// by the worker that ran it and folded by the commit scan in shard order
// (so the floating-point accumulation order is worker-count independent).
type lifetimeShard struct {
	sum, sumSq []float64
	trials     int
	err        error
	done       bool
}

// RunLifetime executes trials 0..trials-1, each producing a dims-vector
// of real metrics, and aggregates per-component means and standard
// errors. It extends Run's determinism contract to real vectors: shards
// are dispatched in index order, trial t draws only from its private
// (rootSeed, t) PCG stream, and sums are folded along the shard-ordered
// commit frontier, so every reported number — including the
// floating-point rounding — is bit-identical for every worker count.
//
// When opts.TargetCI is positive the run stops at the shortest shard
// prefix (of at least opts.MinTrials trials) on which EVERY component
// with a nonzero mean has relative 95% precision TargetCI:
// 1.96·stderr <= TargetCI·|mean|. Requiring all components prevents a
// degenerate metric from stopping the run — in a no-death churn regime
// the death time is constantly the horizon (stderr 0), and keying on it
// alone would commit the minimum trial count with the availability
// still unresolved. Zero-mean components are exempt (their relative
// precision is undefined; an all-zero metric is already exact). The
// rule reads only shard-ordered prefix sums, so the stopping point is
// as deterministic as the sums themselves.
func RunLifetime(trials, dims int, rootSeed uint64, opts Options, fn LifetimeTrial) (LifetimeReport, error) {
	if trials <= 0 || dims <= 0 {
		return LifetimeReport{}, fmt.Errorf("parallel: trials = %d, dims = %d", trials, dims)
	}
	shardSize := opts.ShardSize
	if shardSize <= 0 {
		shardSize = DefaultShardSize
		for (trials+shardSize-1)/shardSize > maxAutoShards {
			shardSize *= 2
		}
	}
	numShards := (trials + shardSize - 1) / shardSize
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > numShards {
		workers = numShards
	}
	minTrials := opts.MinTrials
	if minTrials <= 0 {
		minTrials = 4 * shardSize
	}

	shards := make([]lifetimeShard, numShards)
	var (
		mu           sync.Mutex
		nextShard    int
		frontier     int // first shard not yet committed
		prefixSum    = make([]float64, dims)
		prefixSumSq  = make([]float64, dims)
		prefixTrials int
		commit       = -1 // committed shard count; -1 = run to the end
		stopDispatch bool
	)

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var scratch any
			if opts.NewScratch != nil {
				scratch = opts.NewScratch()
			}
			out := make([]float64, dims)
			for {
				mu.Lock()
				if stopDispatch || nextShard >= numShards {
					mu.Unlock()
					return
				}
				s := nextShard
				nextShard++
				mu.Unlock()

				lo := s * shardSize
				hi := lo + shardSize
				if hi > trials {
					hi = trials
				}
				st := lifetimeShard{sum: make([]float64, dims), sumSq: make([]float64, dims)}
				for t := lo; t < hi; t++ {
					for c := range out {
						out[c] = 0
					}
					if err := fn(t, rng.NewPCG(rootSeed, uint64(t)), scratch, out); err != nil {
						st.err = fmt.Errorf("trial %d: %w", t, err)
						break
					}
					st.trials++
					for c, v := range out {
						st.sum[c] += v
						st.sumSq[c] += v * v
					}
				}
				st.done = true

				mu.Lock()
				shards[s] = st
				if st.err != nil {
					stopDispatch = true
				}
				for frontier < numShards && shards[frontier].done && commit < 0 {
					if shards[frontier].err != nil {
						frontier++
						commit = frontier
						stopDispatch = true
						break
					}
					for c := 0; c < dims; c++ {
						prefixSum[c] += shards[frontier].sum[c]
						prefixSumSq[c] += shards[frontier].sumSq[c]
					}
					prefixTrials += shards[frontier].trials
					frontier++
					if opts.TargetCI > 0 && prefixTrials >= minTrials {
						resolved := true
						for c := 0; c < dims; c++ {
							mean, se := meanStdErr(prefixSum[c], prefixSumSq[c], prefixTrials)
							if mean != 0 && 1.96*se > opts.TargetCI*math.Abs(mean) {
								resolved = false
								break
							}
						}
						if resolved {
							commit = frontier
							stopDispatch = true
						}
					}
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()

	committed := commit
	if committed < 0 {
		committed = numShards
	}
	rep := LifetimeReport{
		Requested:    trials,
		Workers:      workers,
		Shards:       committed,
		EarlyStopped: commit >= 0 && committed < numShards,
		Mean:         make([]float64, dims),
		StdErr:       make([]float64, dims),
	}
	sum := make([]float64, dims)
	sumSq := make([]float64, dims)
	for s := 0; s < committed; s++ {
		if err := shards[s].err; err != nil {
			return LifetimeReport{}, err
		}
		if !shards[s].done {
			return LifetimeReport{}, fmt.Errorf("parallel: internal: shard %d not run", s)
		}
		for c := 0; c < dims; c++ {
			sum[c] += shards[s].sum[c]
			sumSq[c] += shards[s].sumSq[c]
		}
		rep.Trials += shards[s].trials
	}
	for c := 0; c < dims; c++ {
		rep.Mean[c], rep.StdErr[c] = meanStdErr(sum[c], sumSq[c], rep.Trials)
	}
	return rep, nil
}

// meanStdErr derives (mean, standard error of the mean) from running
// sums. The variance clamp absorbs the tiny negative residues of
// catastrophic cancellation when all samples are (near-)identical.
func meanStdErr(sum, sumSq float64, n int) (mean, se float64) {
	if n == 0 {
		return 0, 0
	}
	mean = sum / float64(n)
	if n < 2 {
		return mean, 0
	}
	variance := (sumSq - sum*sum/float64(n)) / float64(n-1)
	if variance < 0 {
		variance = 0
	}
	return mean, math.Sqrt(variance / float64(n))
}
