package parallel

import (
	"errors"
	"fmt"
	"math"
	"testing"

	"ftnet/internal/rng"
)

// syntheticLifetime is a deterministic vector trial: component c of trial
// t is a pure function of the trial's private stream, so any two runs
// that commit the same prefix must agree bit for bit.
func syntheticLifetime(dims int) LifetimeTrial {
	return func(t int, stream *rng.PCG, scratch any, out []float64) error {
		for c := 0; c < dims; c++ {
			out[c] = float64(c+1) * stream.Float64()
		}
		return nil
	}
}

// TestParallelDeterminismLifetime pins the vector engine's contract: the
// full report — means, standard errors, trial counts, stopping point —
// is bit-identical for 1, 4 and 16 workers, with and without early
// stopping.
func TestParallelDeterminismLifetime(t *testing.T) {
	const dims = 4
	// Every component c is uniform [0, c+1): identical relative spread,
	// so the all-components rule resolves them together — relative
	// precision 0.1 needs ~130 of the 400 trials and early stop triggers.
	for _, targetCI := range []float64{0, 0.1} {
		var want LifetimeReport
		for i, workers := range []int{1, 4, 16} {
			rep, err := RunLifetime(400, dims, 77, Options{
				Workers:  workers,
				TargetCI: targetCI,
			}, syntheticLifetime(dims))
			if err != nil {
				t.Fatal(err)
			}
			if i == 0 {
				want = rep
				continue
			}
			if rep.Trials != want.Trials || rep.Shards != want.Shards || rep.EarlyStopped != want.EarlyStopped {
				t.Fatalf("ci=%g workers=%d: commit (%d trials, %d shards, early=%v), want (%d, %d, %v)",
					targetCI, workers, rep.Trials, rep.Shards, rep.EarlyStopped,
					want.Trials, want.Shards, want.EarlyStopped)
			}
			for c := 0; c < dims; c++ {
				if rep.Mean[c] != want.Mean[c] || rep.StdErr[c] != want.StdErr[c] {
					t.Fatalf("ci=%g workers=%d: component %d = (%v, %v), want (%v, %v)",
						targetCI, workers, c, rep.Mean[c], rep.StdErr[c], want.Mean[c], want.StdErr[c])
				}
			}
		}
		if targetCI > 0 && !want.EarlyStopped {
			t.Fatal("tight relative target did not stop early; weaken the trial variance")
		}
	}
}

// TestLifetimeMoments sanity-checks the aggregation: for uniform [0, k)
// components the mean must sit near k/2 with a credible standard error.
func TestLifetimeMoments(t *testing.T) {
	const dims = 3
	rep, err := RunLifetime(2000, dims, 12345, Options{Workers: 4}, syntheticLifetime(dims))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Trials != 2000 {
		t.Fatalf("committed %d trials, want 2000", rep.Trials)
	}
	for c := 0; c < dims; c++ {
		want := float64(c+1) / 2
		if math.Abs(rep.Mean[c]-want) > 6*rep.StdErr[c] {
			t.Fatalf("component %d mean %v, want %v +- %v", c, rep.Mean[c], want, 6*rep.StdErr[c])
		}
		wantSE := float64(c+1) / math.Sqrt(12) / math.Sqrt(2000)
		if rep.StdErr[c] < wantSE/2 || rep.StdErr[c] > 2*wantSE {
			t.Fatalf("component %d stderr %v, want about %v", c, rep.StdErr[c], wantSE)
		}
	}
}

// TestLifetimeTrialError pins error semantics: an error in the committed
// prefix aborts the run with the smallest-index trial error.
func TestLifetimeTrialError(t *testing.T) {
	boom := errors.New("boom")
	_, err := RunLifetime(100, 2, 9, Options{Workers: 4}, func(tr int, stream *rng.PCG, scratch any, out []float64) error {
		if tr == 13 {
			return fmt.Errorf("trial 13 exploded: %w", boom)
		}
		return nil
	})
	if err == nil || !errors.Is(err, boom) {
		t.Fatalf("error not propagated: %v", err)
	}
	if _, err := RunLifetime(0, 2, 9, Options{}, syntheticLifetime(2)); err == nil {
		t.Fatal("zero trials must error")
	}
	if _, err := RunLifetime(10, 0, 9, Options{}, syntheticLifetime(2)); err == nil {
		t.Fatal("zero dims must error")
	}
}

// TestLifetimeScratchReuse checks that each worker gets exactly one
// scratch and trials see it.
func TestLifetimeScratchReuse(t *testing.T) {
	rep, err := RunLifetime(64, 1, 5, Options{
		Workers:    3,
		NewScratch: func() any { return new(int) },
	}, func(tr int, stream *rng.PCG, scratch any, out []float64) error {
		c := scratch.(*int)
		*c++
		out[0] = 1
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Mean[0] != 1 {
		t.Fatalf("mean %v, want 1", rep.Mean[0])
	}
}
