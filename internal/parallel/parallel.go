// Package parallel is the Monte-Carlo trial engine for the experiment
// suite: it executes trials across a bounded worker pool and aggregates
// their outcomes into a stats.Result, with three properties the serial
// driver it replaces did not have.
//
// Determinism. The trial space is split into fixed-size shards that are
// dispatched to workers in index order. Every trial t draws randomness
// only from its private PCG stream keyed by (root seed, t)
// (rng.NewPCG), and outcomes are committed shard-by-shard in index
// order, so the aggregated counts — including the early-stopping
// decision — are bit-identical for every worker count and GOMAXPROCS
// setting. TestParallelDeterminism pins this contract.
//
// Bounded memory. Each worker owns one scratch value created by
// Options.NewScratch and hands it to every trial it runs, so per-trial
// allocations (fault bitsets, band/extraction buffers via core.Scratch)
// are paid once per worker, not once per trial.
//
// Early stopping. When Options.TargetCI is set, the engine commits the
// shortest shard prefix whose 95% Wilson interval is narrower than the
// target (once MinTrials trials are in). The stopping point is a pure
// function of outcomes in shard order, so it too is worker-count
// independent; shards that finished beyond the committed prefix are
// discarded.
package parallel

import (
	"fmt"
	"runtime"
	"sync"

	"ftnet/internal/rng"
	"ftnet/internal/stats"
)

// Trial runs one Monte-Carlo trial. t is the global trial index and
// stream is the trial's private random stream, a pure function of the
// engine's root seed and t — draw all randomness from it. scratch is
// the executing worker's scratch value (nil unless Options.NewScratch
// is set); it is never shared between concurrently running trials, so
// buffers inside it can be reused freely. A non-nil error from a trial
// in the committed prefix aborts the whole run: errors mean bugs, not
// survival failures. Errors from trials beyond an early-stop commit
// point are discarded by design — a serial run would never have
// executed those trials, and reporting them would make the outcome
// depend on the worker count.
type Trial func(t int, stream *rng.PCG, scratch any) (stats.Outcome, error)

// Options tunes an engine run. The zero value runs all trials on
// GOMAXPROCS workers with no scratch and no early stopping.
type Options struct {
	// Workers bounds the worker pool; 0 means GOMAXPROCS.
	Workers int
	// ShardSize is the number of consecutive trials a worker claims at
	// once; 0 picks DefaultShardSize, doubled as needed so the shard
	// table stays bounded (maxAutoShards) for huge trial budgets — a
	// deterministic function of the trial count. Results are independent
	// of the shard size only in the no-early-stop case: TargetCI commits
	// whole shards, so changing ShardSize can move the stopping point
	// (it never affects which stream trial t sees).
	ShardSize int
	// NewScratch, if set, is called once per worker to build its
	// scratch value.
	NewScratch func() any
	// TargetCI, if positive, stops the run once the 95% Wilson interval
	// over the committed prefix is narrower than this width.
	TargetCI float64
	// MinTrials is the minimum number of committed trials before early
	// stopping may trigger; 0 means 4 shards' worth.
	MinTrials int
}

// DefaultShardSize is the trials-per-shard granularity when
// Options.ShardSize is 0: small enough to load-balance trial counts in
// the tens, large enough that shard bookkeeping is noise.
const DefaultShardSize = 8

// maxAutoShards caps the shard table when the engine picks the shard
// size itself, so a huge trial budget (the natural pattern with
// TargetCI: "ask for millions, stop when tight") costs megabytes of
// bookkeeping, not gigabytes. Explicit Options.ShardSize is honored
// as given.
const maxAutoShards = 1 << 16

// Report is the outcome of a Run: the aggregated statistics plus how
// the engine got them.
type Report struct {
	stats.Result
	// Requested is the trial count passed to Run; Result.Trials can be
	// smaller when early stopping triggered.
	Requested int
	// Workers is the worker count actually used.
	Workers int
	// Shards is the number of committed shards.
	Shards int
	// EarlyStopped reports whether TargetCI cut the run short.
	EarlyStopped bool
}

// shardState is one shard's outcome, written once by the worker that
// ran it and read by the commit scan.
type shardState struct {
	successes int
	trials    int
	err       error
	done      bool
}

// Run executes trials 0..trials-1 and aggregates their outcomes. See
// the package comment for the determinism contract. The returned error
// is the recorded trial error with the smallest trial index among
// committed shards, if any.
func Run(trials int, rootSeed uint64, opts Options, fn Trial) (Report, error) {
	if trials <= 0 {
		return Report{}, fmt.Errorf("parallel: trials = %d", trials)
	}
	shardSize := opts.ShardSize
	if shardSize <= 0 {
		shardSize = DefaultShardSize
		for (trials+shardSize-1)/shardSize > maxAutoShards {
			shardSize *= 2
		}
	}
	numShards := (trials + shardSize - 1) / shardSize
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > numShards {
		workers = numShards
	}
	minTrials := opts.MinTrials
	if minTrials <= 0 {
		minTrials = 4 * shardSize
	}

	shards := make([]shardState, numShards)
	var (
		mu           sync.Mutex
		nextShard    int  // next shard index to dispatch
		frontier     int  // first shard not yet committed
		prefixSucc   int  // successes over shards[0:frontier]
		prefixTrials int  // trials over shards[0:frontier]
		commit       = -1 // committed shard count; -1 = run to the end
		stopDispatch bool
	)

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var scratch any
			if opts.NewScratch != nil {
				scratch = opts.NewScratch()
			}
			for {
				mu.Lock()
				if stopDispatch || nextShard >= numShards {
					mu.Unlock()
					return
				}
				s := nextShard
				nextShard++
				mu.Unlock()

				lo := s * shardSize
				hi := lo + shardSize
				if hi > trials {
					hi = trials
				}
				var st shardState
				for t := lo; t < hi; t++ {
					out, err := fn(t, rng.NewPCG(rootSeed, uint64(t)), scratch)
					if err != nil {
						st.err = fmt.Errorf("trial %d: %w", t, err)
						break
					}
					st.trials++
					if out == stats.Success {
						st.successes++
					}
				}
				st.done = true

				mu.Lock()
				shards[s] = st
				if st.err != nil {
					stopDispatch = true
				}
				// Advance the commit frontier over the contiguous done
				// prefix, checking the stopping rule after every shard so
				// the committed prefix is the shortest qualifying one.
				for frontier < numShards && shards[frontier].done && commit < 0 {
					if shards[frontier].err != nil {
						// The erroring shard is committed (so the error is
						// reported) and nothing after it is.
						frontier++
						commit = frontier
						stopDispatch = true
						break
					}
					prefixSucc += shards[frontier].successes
					prefixTrials += shards[frontier].trials
					frontier++
					if opts.TargetCI > 0 && prefixTrials >= minTrials &&
						stats.NewResult(prefixSucc, prefixTrials).Width() <= opts.TargetCI {
						commit = frontier
						stopDispatch = true
					}
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()

	committed := commit
	if committed < 0 {
		committed = numShards
	}
	var successes, ran int
	for s := 0; s < committed; s++ {
		if err := shards[s].err; err != nil {
			return Report{}, err
		}
		if !shards[s].done {
			// Only reachable if dispatch stopped early without a commit
			// decision, which the accounting above rules out.
			return Report{}, fmt.Errorf("parallel: internal: shard %d not run", s)
		}
		successes += shards[s].successes
		ran += shards[s].trials
	}
	return Report{
		Result:       stats.NewResult(successes, ran),
		Requested:    trials,
		Workers:      workers,
		Shards:       committed,
		EarlyStopped: commit >= 0 && committed < numShards,
	}, nil
}
