package parallel

import (
	"errors"
	"sync"
	"testing"

	"ftnet/internal/core"
	"ftnet/internal/rng"
	"ftnet/internal/stats"
)

// synthTrial is a nontrivial trial body: it draws a variable amount of
// randomness from the stream (so execution time varies across trials)
// and succeeds with probability ~0.7.
func synthTrial(t int, stream *rng.PCG, _ any) (stats.Outcome, error) {
	spin := stream.Intn(200)
	acc := uint64(0)
	for i := 0; i < spin; i++ {
		acc ^= stream.Uint64()
	}
	if stream.Bernoulli(0.7) {
		return stats.Success, nil
	}
	return stats.Failure, nil
}

// TestParallelDeterminism is the engine's core contract: the same root
// seed must produce bit-identical committed counts for 1, 4, and 16
// workers, with and without early stopping, and on the real Theorem 2
// survival workload.
func TestParallelDeterminism(t *testing.T) {
	t.Run("synthetic", func(t *testing.T) {
		var ref Report
		for i, workers := range []int{1, 4, 16} {
			rep, err := Run(500, 42, Options{Workers: workers}, synthTrial)
			if err != nil {
				t.Fatal(err)
			}
			if rep.Trials != 500 {
				t.Fatalf("workers=%d: ran %d/500 trials", workers, rep.Trials)
			}
			if i == 0 {
				ref = rep
				continue
			}
			if rep.Successes != ref.Successes || rep.Trials != ref.Trials {
				t.Fatalf("workers=%d: %d/%d successes, want %d/%d",
					workers, rep.Successes, rep.Trials, ref.Successes, ref.Trials)
			}
		}
	})

	t.Run("early-stop", func(t *testing.T) {
		var ref Report
		for i, workers := range []int{1, 4, 16} {
			rep, err := Run(100000, 42, Options{Workers: workers, TargetCI: 0.08}, synthTrial)
			if err != nil {
				t.Fatal(err)
			}
			if !rep.EarlyStopped || rep.Trials >= rep.Requested {
				t.Fatalf("workers=%d: expected early stop, got %+v", workers, rep)
			}
			if i == 0 {
				ref = rep
				continue
			}
			if rep.Successes != ref.Successes || rep.Trials != ref.Trials || rep.Shards != ref.Shards {
				t.Fatalf("workers=%d: stop point differs: %+v vs %+v", workers, rep, ref)
			}
		}
	})

	t.Run("survival-b2", func(t *testing.T) {
		g, err := core.NewGraph(core.Params{D: 2, W: 4, Pitch: 16, Scale: 1}) // n=192
		if err != nil {
			t.Fatal(err)
		}
		// Well above the theorem probability so both outcomes occur.
		prob := 40 * g.P.TheoremFailureProb()
		trial := func(tr int, stream *rng.PCG, scratch any) (stats.Outcome, error) {
			sc := scratch.(*core.Scratch)
			faults := sc.Faults(g.NumNodes())
			faults.Bernoulli(stream, prob)
			_, err := g.ContainTorus(faults, core.ExtractOptions{Scratch: sc})
			if err == nil {
				return stats.Success, nil
			}
			var ue *core.UnhealthyError
			if errors.As(err, &ue) {
				return stats.Failure, nil
			}
			return stats.Failure, err
		}
		var ref Report
		for i, workers := range []int{1, 4, 16} {
			// ShardSize 1 keeps 24 shards so the 4- and 16-worker runs
			// really use that many workers instead of clamping to the
			// shard count.
			rep, err := Run(24, 7, Options{Workers: workers, ShardSize: 1,
				NewScratch: func() any { return core.NewScratch(1) }}, trial)
			if err != nil {
				t.Fatal(err)
			}
			if i == 0 {
				ref = rep
				if ref.Successes == 0 || ref.Successes == ref.Trials {
					t.Logf("warning: degenerate survival count %d/%d", ref.Successes, ref.Trials)
				}
				continue
			}
			if rep.Successes != ref.Successes || rep.Trials != ref.Trials {
				t.Fatalf("workers=%d: %d/%d, want %d/%d",
					workers, rep.Successes, rep.Trials, ref.Successes, ref.Trials)
			}
		}
	})
}

// TestParallelRace exercises the pool with many tiny trials and shards
// so the race detector sees heavy dispatch/commit contention.
func TestParallelRace(t *testing.T) {
	rep, err := Run(4000, 3, Options{Workers: 16, ShardSize: 1,
		NewScratch: func() any { return new(int) }},
		func(tr int, stream *rng.PCG, scratch any) (stats.Outcome, error) {
			c := scratch.(*int)
			*c++
			if stream.Bernoulli(0.5) {
				return stats.Success, nil
			}
			return stats.Failure, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Trials != 4000 {
		t.Fatalf("ran %d trials", rep.Trials)
	}
}

func TestParallelScratchPerWorker(t *testing.T) {
	var mu sync.Mutex
	created := 0
	rep, err := Run(200, 1, Options{Workers: 4, NewScratch: func() any {
		mu.Lock()
		created++
		mu.Unlock()
		return new(int)
	}}, func(tr int, stream *rng.PCG, scratch any) (stats.Outcome, error) {
		if scratch == nil {
			return stats.Failure, errors.New("nil scratch")
		}
		return stats.Success, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Successes != 200 {
		t.Fatalf("got %+v", rep)
	}
	if created > 4 {
		t.Fatalf("NewScratch called %d times for 4 workers", created)
	}
}

func TestParallelPropagatesError(t *testing.T) {
	boom := errors.New("boom")
	_, err := Run(1000, 1, Options{Workers: 4},
		func(tr int, stream *rng.PCG, scratch any) (stats.Outcome, error) {
			if tr == 37 {
				return stats.Failure, boom
			}
			return stats.Success, nil
		})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
}

func TestParallelStreamsAreTrialKeyed(t *testing.T) {
	// The stream handed to trial t must depend only on (rootSeed, t):
	// record each trial's first draw and compare across worker counts.
	collect := func(workers int) []uint64 {
		draws := make([]uint64, 64)
		_, err := Run(64, 99, Options{Workers: workers},
			func(tr int, stream *rng.PCG, scratch any) (stats.Outcome, error) {
				draws[tr] = stream.Uint64()
				return stats.Success, nil
			})
		if err != nil {
			t.Fatal(err)
		}
		return draws
	}
	a, b := collect(1), collect(8)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("trial %d stream differs across worker counts", i)
		}
		if a[i] == rng.NewPCG(99, uint64(i+1)).Uint64() {
			t.Fatalf("trial %d appears to use the wrong stream key", i)
		}
	}
}

func TestParallelAutoShardSizeBounded(t *testing.T) {
	// Huge trial budgets must not blow up the shard table: the auto
	// shard size doubles until the shard count fits the cap.
	rep, err := Run(1_000_000, 2, Options{Workers: 4},
		func(tr int, stream *rng.PCG, scratch any) (stats.Outcome, error) {
			return stats.Success, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Trials != 1_000_000 || rep.Successes != 1_000_000 {
		t.Fatalf("got %+v", rep)
	}
	if rep.Shards > 1<<16 {
		t.Fatalf("auto shard size left %d shards, want <= %d", rep.Shards, 1<<16)
	}
}

func TestParallelRejectsZeroTrials(t *testing.T) {
	if _, err := Run(0, 1, Options{}, nil); err == nil {
		t.Error("0 trials accepted")
	}
}

func TestParallelShardRemainder(t *testing.T) {
	// Trial count not divisible by the shard size: every trial must
	// still run exactly once.
	seen := make([]int32, 101)
	var mu sync.Mutex
	rep, err := Run(101, 5, Options{Workers: 7, ShardSize: 8},
		func(tr int, stream *rng.PCG, scratch any) (stats.Outcome, error) {
			mu.Lock()
			seen[tr]++
			mu.Unlock()
			return stats.Success, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Trials != 101 || rep.Successes != 101 {
		t.Fatalf("got %+v", rep)
	}
	for tr, c := range seen {
		if c != 1 {
			t.Fatalf("trial %d ran %d times", tr, c)
		}
	}
}
