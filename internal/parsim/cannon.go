package parsim

import "fmt"

// Cannon multiplies two n x n matrices distributed one element per
// processor on a 2-dimensional n x n torus machine, using Cannon's
// algorithm: after the initial skew (row i of A rotated left by i, column
// j of B rotated up by j), n multiply-accumulate steps each followed by a
// unit rotation compute C = A*B with nearest-neighbor traffic only — the
// canonical demonstration that the extracted torus is a real parallel
// machine, not just a graph.
//
// a and b are row-major n x n. The returned c is row-major too. The
// second return value counts the synchronous communication steps
// (2 rotations per iteration plus the skew).
func (m *Machine) Cannon(a, b []float64) ([]float64, int, error) {
	if len(m.Shape) != 2 || m.Shape[0] != m.Shape[1] {
		return nil, 0, fmt.Errorf("parsim: Cannon needs a square 2-d torus, have %v", m.Shape)
	}
	n := m.Shape[0]
	if len(a) != n*n || len(b) != n*n {
		return nil, 0, fmt.Errorf("parsim: Cannon with %dx%d machine needs %d elements, have %d and %d",
			n, n, n*n, len(a), len(b))
	}
	// Local copies with the initial skew applied.
	la := make([]float64, n*n)
	lb := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			la[i*n+j] = a[i*n+(j+i)%n]   // row i shifted left by i
			lb[i*n+j] = b[((i+j)%n)*n+j] // column j shifted up by j
		}
	}
	c := make([]float64, n*n)
	steps := 2 * (n - 1) // skew cost (max rotation distance per phase)
	ta := make([]float64, n*n)
	tb := make([]float64, n*n)
	for step := 0; step < n; step++ {
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				c[i*n+j] += la[i*n+j] * lb[i*n+j]
			}
		}
		if step == n-1 {
			break
		}
		// Rotate A left, B up: two synchronous neighbor exchanges.
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				ta[i*n+j] = la[i*n+(j+1)%n]
				tb[i*n+j] = lb[((i+1)%n)*n+j]
			}
		}
		la, ta = ta, la
		lb, tb = tb, lb
		steps += 2
	}
	return c, steps, nil
}

// MatMulReference computes C = A*B directly, for checking Cannon runs.
func MatMulReference(a, b []float64, n int) []float64 {
	c := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for k := 0; k < n; k++ {
			aik := a[i*n+k]
			if aik == 0 {
				continue
			}
			for j := 0; j < n; j++ {
				c[i*n+j] += aik * b[k*n+j]
			}
		}
	}
	return c
}
