package parsim

import (
	"testing"

	"ftnet/internal/grid"
	"ftnet/internal/rng"
)

func TestCannonMatchesReference(t *testing.T) {
	n := 12
	m := NewIdeal(grid.Shape{n, n})
	r := rng.New(3)
	a := make([]float64, n*n)
	b := make([]float64, n*n)
	for i := range a {
		a[i] = r.Float64() - 0.5
		b[i] = r.Float64() - 0.5
	}
	got, steps, err := m.Cannon(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := MatMulReference(a, b, n)
	if d := MaxDiff(got, want); d > 1e-9 {
		t.Errorf("Cannon deviates from reference by %v", d)
	}
	if steps != 2*(n-1)+2*(n-1) {
		t.Errorf("steps = %d, want %d", steps, 4*(n-1))
	}
}

func TestCannonIdentity(t *testing.T) {
	n := 8
	m := NewIdeal(grid.Shape{n, n})
	id := make([]float64, n*n)
	for i := 0; i < n; i++ {
		id[i*n+i] = 1
	}
	b := make([]float64, n*n)
	for i := range b {
		b[i] = float64(i)
	}
	got, _, err := m.Cannon(id, b)
	if err != nil {
		t.Fatal(err)
	}
	if d := MaxDiff(got, b); d != 0 {
		t.Errorf("I*B != B (diff %v)", d)
	}
}

func TestCannonRejectsBadShapes(t *testing.T) {
	if _, _, err := NewIdeal(grid.Shape{4, 5}).Cannon(make([]float64, 20), make([]float64, 20)); err == nil {
		t.Error("non-square machine accepted")
	}
	if _, _, err := NewIdeal(grid.Shape{4}).Cannon(make([]float64, 16), make([]float64, 16)); err == nil {
		t.Error("1-d machine accepted")
	}
	if _, _, err := NewIdeal(grid.Shape{4, 4}).Cannon(make([]float64, 3), make([]float64, 16)); err == nil {
		t.Error("short matrix accepted")
	}
}
