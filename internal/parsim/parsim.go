// Package parsim simulates a synchronous message-passing parallel machine
// on a torus extracted from a faulty host: the paper's motivating setting
// ("a network of processors constituting a massively parallel computer").
//
// A Machine is built from a verified embedding; its processors are the
// guest torus nodes and every logical link is, by the embedding's
// contract, realized by a fault-free host edge. The package provides the
// standard torus kernels — dimension-ordered routing, nearest-neighbor
// stencil iteration, and dimension-wise all-reduce — with step and
// link-load accounting, so experiments can show that the reconfigured
// machine computes exactly what a pristine torus would.
package parsim

import (
	"fmt"

	"ftnet/internal/embed"
	"ftnet/internal/grid"
)

// Machine is a synchronous parallel machine on an extracted torus.
type Machine struct {
	Shape grid.Shape // logical torus shape
	// HostOf[i] is the host node carrying logical processor i; recorded
	// for reporting, not needed for the simulation semantics.
	HostOf []int
}

// New verifies the embedding against the host one more time and wraps it
// as a machine. A nil host skips re-verification (for already-verified
// embeddings).
func New(e *embed.Embedding, host embed.Host) (*Machine, error) {
	if host != nil {
		if err := e.Verify(host); err != nil {
			return nil, fmt.Errorf("parsim: embedding rejected: %w", err)
		}
	}
	m := &Machine{Shape: e.Guest.Shape.Clone(), HostOf: append([]int(nil), e.Map...)}
	return m, nil
}

// NewIdeal returns a machine on a pristine torus of the given shape: the
// reference every faulty-host run is compared against.
func NewIdeal(shape grid.Shape) *Machine {
	return &Machine{Shape: shape.Clone()}
}

// P returns the number of processors.
func (m *Machine) P() int { return m.Shape.Size() }

// Route returns the dimension-ordered route from src to dst (flat logical
// indices): hops along dimension 0 first (shorter way around the cycle),
// then dimension 1, and so on. The returned path includes both endpoints.
func (m *Machine) Route(src, dst int) []int {
	d := len(m.Shape)
	cur := m.Shape.Coord(src, make([]int, d))
	target := m.Shape.Coord(dst, make([]int, d))
	path := []int{src}
	for dim := 0; dim < d; dim++ {
		n := m.Shape[dim]
		for cur[dim] != target[dim] {
			fwd := grid.FwdGap(cur[dim], target[dim], n)
			if fwd <= n-fwd {
				cur[dim] = grid.Add(cur[dim], 1, n)
			} else {
				cur[dim] = grid.Sub(cur[dim], 1, n)
			}
			path = append(path, m.Shape.Index(cur))
		}
	}
	return path
}

// Hops returns the torus distance covered by Route.
func (m *Machine) Hops(src, dst int) int { return len(m.Route(src, dst)) - 1 }

// CongestionStats aggregates link loads from a traffic pattern.
type CongestionStats struct {
	Packets  int
	TotalHop int
	MaxLink  int // most-loaded directed link
	AvgHops  float64
}

// Permutation routes one packet per processor according to perm (packet i
// goes to perm[i]) with dimension-ordered routing and reports congestion.
func (m *Machine) Permutation(perm []int) (CongestionStats, error) {
	if len(perm) != m.P() {
		return CongestionStats{}, fmt.Errorf("parsim: permutation has %d entries for %d processors", len(perm), m.P())
	}
	load := make(map[[2]int]int)
	st := CongestionStats{Packets: m.P()}
	for src, dst := range perm {
		path := m.Route(src, dst)
		st.TotalHop += len(path) - 1
		for i := 1; i < len(path); i++ {
			l := [2]int{path[i-1], path[i]}
			load[l]++
			if load[l] > st.MaxLink {
				st.MaxLink = load[l]
			}
		}
	}
	st.AvgHops = float64(st.TotalHop) / float64(st.Packets)
	return st, nil
}

// Stencil runs steps of a synchronous nearest-neighbor relaxation: each
// processor replaces its value with the average of itself and its 2d
// torus neighbors, weighted (1-omega) self + omega * neighbor mean. It
// returns the final field. This is the Jacobi iteration kernel of the
// mesh-computation workloads the paper's introduction motivates.
func (m *Machine) Stencil(init []float64, steps int, omega float64) ([]float64, error) {
	p := m.P()
	if len(init) != p {
		return nil, fmt.Errorf("parsim: field has %d entries for %d processors", len(init), p)
	}
	cur := append([]float64(nil), init...)
	next := make([]float64, p)
	nbuf := make([]int, 0, 2*len(m.Shape))
	// Precompute the neighbor lists once: the machine is static.
	neighbors := make([][]int, p)
	for i := 0; i < p; i++ {
		nbuf = m.Shape.TorusNeighbors(i, nbuf[:0])
		neighbors[i] = append([]int(nil), nbuf...)
	}
	for s := 0; s < steps; s++ {
		for i := 0; i < p; i++ {
			sum := 0.0
			for _, nb := range neighbors[i] {
				sum += cur[nb]
			}
			next[i] = (1-omega)*cur[i] + omega*sum/float64(len(neighbors[i]))
		}
		cur, next = next, cur
	}
	return cur, nil
}

// AllReduceSum performs a dimension-wise ring all-reduce of one value per
// processor and returns the global sum along with the number of
// communication steps a synchronous implementation would take
// (sum of (n_i - 1) over dimensions).
func (m *Machine) AllReduceSum(vals []float64) (float64, int, error) {
	if len(vals) != m.P() {
		return 0, 0, fmt.Errorf("parsim: %d values for %d processors", len(vals), m.P())
	}
	// Simulate: reduce along each dimension in turn.
	cur := append([]float64(nil), vals...)
	steps := 0
	d := len(m.Shape)
	coord := make([]int, d)
	for dim := 0; dim < d; dim++ {
		n := m.Shape[dim]
		next := make([]float64, len(cur))
		for i := range cur {
			m.Shape.Coord(i, coord)
			sum := 0.0
			orig := coord[dim]
			for v := 0; v < n; v++ {
				coord[dim] = v
				sum += cur[m.Shape.Index(coord)]
			}
			coord[dim] = orig
			next[i] = sum
		}
		cur = next
		steps += n - 1
	}
	return cur[0], steps, nil
}

// MaxDiff returns the largest absolute elementwise difference between two
// fields, for comparing a reconfigured run against the ideal reference.
func MaxDiff(a, b []float64) float64 {
	max := 0.0
	for i := range a {
		d := a[i] - b[i]
		if d < 0 {
			d = -d
		}
		if d > max {
			max = d
		}
	}
	return max
}
