package parsim

import (
	"math"
	"testing"

	"ftnet/internal/core"
	"ftnet/internal/fault"
	"ftnet/internal/grid"
	"ftnet/internal/rng"
)

func idealMachine(t *testing.T, sides ...int) *Machine {
	t.Helper()
	return NewIdeal(grid.Shape(sides))
}

func TestRouteDimensionOrdered(t *testing.T) {
	m := idealMachine(t, 8, 8)
	path := m.Route(m.Shape.Index([]int{0, 0}), m.Shape.Index([]int{2, 3}))
	if len(path)-1 != 5 {
		t.Fatalf("hops = %d, want 5", len(path)-1)
	}
	// Dimension order: first two steps move dimension 0.
	c1 := m.Shape.Coord(path[1], nil)
	if c1[1] != 0 {
		t.Errorf("first hop moved dimension 1: %v", c1)
	}
	// Consecutive path nodes must be torus neighbors.
	for i := 1; i < len(path); i++ {
		found := false
		for _, nb := range m.Shape.TorusNeighbors(path[i-1], nil) {
			if nb == path[i] {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("path step %d-%d not a torus edge", path[i-1], path[i])
		}
	}
}

func TestRouteTakesShortWayAround(t *testing.T) {
	m := idealMachine(t, 10)
	if got := m.Hops(0, 9); got != 1 {
		t.Errorf("wraparound hop count = %d, want 1", got)
	}
	if got := m.Hops(0, 5); got != 5 {
		t.Errorf("antipodal hop count = %d, want 5", got)
	}
}

func TestRouteSelf(t *testing.T) {
	m := idealMachine(t, 5, 5)
	if got := m.Hops(7, 7); got != 0 {
		t.Errorf("self route hops = %d", got)
	}
}

func TestPermutationStats(t *testing.T) {
	m := idealMachine(t, 6, 6)
	perm := make([]int, m.P())
	for i := range perm {
		perm[i] = i // identity: zero traffic
	}
	st, err := m.Permutation(perm)
	if err != nil {
		t.Fatal(err)
	}
	if st.TotalHop != 0 || st.MaxLink != 0 {
		t.Errorf("identity permutation has traffic: %+v", st)
	}
	// A shift permutation: every packet moves one hop; every link used once.
	coord := make([]int, 2)
	for i := range perm {
		m.Shape.Coord(i, coord)
		coord[1] = grid.Add(coord[1], 1, 6)
		perm[i] = m.Shape.Index(coord)
	}
	st, err = m.Permutation(perm)
	if err != nil {
		t.Fatal(err)
	}
	if st.AvgHops != 1 || st.MaxLink != 1 {
		t.Errorf("shift permutation stats: %+v", st)
	}
}

func TestPermutationRejectsWrongLength(t *testing.T) {
	m := idealMachine(t, 4, 4)
	if _, err := m.Permutation([]int{0}); err == nil {
		t.Error("short permutation accepted")
	}
}

func TestStencilConservesConstantField(t *testing.T) {
	m := idealMachine(t, 8, 8)
	init := make([]float64, m.P())
	for i := range init {
		init[i] = 3.5
	}
	out, err := m.Stencil(init, 10, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if math.Abs(v-3.5) > 1e-12 {
			t.Fatalf("constant field drifted at %d: %v", i, v)
		}
	}
}

func TestStencilConvergesToMean(t *testing.T) {
	m := idealMachine(t, 6, 6)
	init := make([]float64, m.P())
	init[0] = float64(m.P()) // a single hot spot; mean = 1
	out, err := m.Stencil(init, 2000, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if math.Abs(v-1) > 1e-6 {
			t.Fatalf("diffusion did not converge at %d: %v", i, v)
		}
	}
}

func TestStencilRejectsWrongLength(t *testing.T) {
	m := idealMachine(t, 4, 4)
	if _, err := m.Stencil([]float64{1}, 1, 0.5); err == nil {
		t.Error("short field accepted")
	}
}

func TestAllReduceSum(t *testing.T) {
	m := idealMachine(t, 4, 5)
	vals := make([]float64, m.P())
	want := 0.0
	for i := range vals {
		vals[i] = float64(i)
		want += float64(i)
	}
	got, steps, err := m.AllReduceSum(vals)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("sum = %v, want %v", got, want)
	}
	if steps != 3+4 {
		t.Errorf("steps = %d, want 7", steps)
	}
	if _, _, err := m.AllReduceSum(vals[:3]); err == nil {
		t.Error("short input accepted")
	}
}

// TestReconfiguredMachineMatchesIdeal is the headline test: a machine
// extracted from a faulty B^2_n computes bit-identical results to a
// pristine torus of the same logical shape.
func TestReconfiguredMachineMatchesIdeal(t *testing.T) {
	p := core.Params{D: 2, W: 4, Pitch: 16, Scale: 1}
	g, err := core.NewGraph(p)
	if err != nil {
		t.Fatal(err)
	}
	faults := fault.NewSet(g.NumNodes())
	r := rng.New(77)
	for i := 0; i < 6; i++ {
		faults.Add(r.Intn(g.NumNodes()))
	}
	res, err := g.ContainTorus(faults, core.ExtractOptions{})
	if err != nil {
		t.Fatal(err)
	}
	recon, err := New(res.Embedding, core.HostView{G: g, Faults: faults})
	if err != nil {
		t.Fatal(err)
	}
	ideal := NewIdeal(recon.Shape)

	init := make([]float64, recon.P())
	rr := rng.New(5)
	for i := range init {
		init[i] = rr.Float64()
	}
	a, err := recon.Stencil(init, 25, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ideal.Stencil(init, 25, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	if d := MaxDiff(a, b); d != 0 {
		t.Errorf("reconfigured stencil differs from ideal by %v", d)
	}
	// The machine records where each logical processor physically lives.
	if len(recon.HostOf) != recon.P() {
		t.Errorf("HostOf has %d entries", len(recon.HostOf))
	}
	for _, h := range recon.HostOf {
		if faults.Has(h) {
			t.Fatalf("logical processor on faulty host node %d", h)
		}
	}
}

func TestNewRejectsBrokenEmbedding(t *testing.T) {
	p := core.Params{D: 2, W: 4, Pitch: 16, Scale: 1}
	g, err := core.NewGraph(p)
	if err != nil {
		t.Fatal(err)
	}
	faults := fault.NewSet(g.NumNodes())
	res, err := g.ContainTorus(faults, core.ExtractOptions{})
	if err != nil {
		t.Fatal(err)
	}
	res.Embedding.Map[0] = res.Embedding.Map[1] // break injectivity
	if _, err := New(res.Embedding, core.HostView{G: g, Faults: faults}); err == nil {
		t.Error("broken embedding accepted")
	}
}

func TestMaxDiff(t *testing.T) {
	if MaxDiff([]float64{1, 2}, []float64{1, 5}) != 3 {
		t.Error("MaxDiff wrong")
	}
	if MaxDiff(nil, nil) != 0 {
		t.Error("MaxDiff of empty should be 0")
	}
}
