// Package pathfind provides breadth-first search over the implicit host
// graphs, used to measure distances, eccentricities and fault-avoiding
// route stretch.
//
// The paper's related-work section contrasts two approaches to fault
// tolerance: routing around faults in a conventional network versus
// adding redundancy and extracting a pristine subnetwork (the paper's
// approach). This package implements enough of the former to quantify the
// comparison: BFS distances on the augmented hosts, with or without a
// liveness filter.
package pathfind

import (
	"fmt"

	"ftnet/internal/rng"
)

// Graph is any implicit graph with buffer-reusing neighbor enumeration;
// core.Graph, worstcase.Graph and torus.Graph all satisfy it.
type Graph interface {
	NumNodes() int
	Neighbors(u int, buf []int) []int
}

// BFS returns the distance from src to every node, or -1 where
// unreachable. alive filters usable nodes (nil means all alive); a dead
// src yields all -1.
func BFS(g Graph, src int, alive func(int) bool) []int32 {
	n := g.NumNodes()
	dist := make([]int32, n)
	for i := range dist {
		dist[i] = -1
	}
	if alive != nil && !alive(src) {
		return dist
	}
	dist[src] = 0
	queue := make([]int32, 0, 1024)
	queue = append(queue, int32(src))
	var buf []int
	for head := 0; head < len(queue); head++ {
		u := int(queue[head])
		du := dist[u]
		buf = g.Neighbors(u, buf[:0])
		for _, v := range buf {
			if dist[v] >= 0 {
				continue
			}
			if alive != nil && !alive(v) {
				continue
			}
			dist[v] = du + 1
			queue = append(queue, int32(v))
		}
	}
	return dist
}

// Distance returns the hop distance between src and dst (-1 if
// unreachable). For repeated queries from one source, use BFS directly.
func Distance(g Graph, src, dst int, alive func(int) bool) int {
	return int(BFS(g, src, alive)[dst])
}

// Profile summarizes the distance distribution from sampled sources.
type Profile struct {
	Sources     int
	Mean        float64
	Max         int // largest observed distance (eccentricity lower bound)
	Unreachable int // node-source pairs with no path
}

// Sample runs BFS from `sources` random sources and aggregates distances
// to every node.
func Sample(g Graph, sources int, alive func(int) bool, r rng.Source) (Profile, error) {
	n := g.NumNodes()
	if sources <= 0 || sources > n {
		return Profile{}, fmt.Errorf("pathfind: %d sources for %d nodes", sources, n)
	}
	p := Profile{Sources: sources}
	total := 0.0
	count := 0
	for s := 0; s < sources; s++ {
		src := r.Intn(n)
		if alive != nil {
			for tries := 0; tries < 64 && !alive(src); tries++ {
				src = r.Intn(n)
			}
			if !alive(src) {
				return Profile{}, fmt.Errorf("pathfind: could not sample a live source")
			}
		}
		dist := BFS(g, src, alive)
		for v, d := range dist {
			if alive != nil && !alive(v) {
				continue
			}
			if d < 0 {
				p.Unreachable++
				continue
			}
			total += float64(d)
			count++
			if int(d) > p.Max {
				p.Max = int(d)
			}
			_ = v
		}
	}
	if count > 0 {
		p.Mean = total / float64(count)
	}
	return p, nil
}

// Stretch measures fault-avoidance cost: for `pairs` random live pairs,
// the ratio of the fault-avoiding distance to the fault-free distance.
// Returns the mean ratio and the number of disconnected pairs.
func Stretch(g Graph, alive func(int) bool, pairs int, r rng.Source) (mean float64, disconnected int, err error) {
	n := g.NumNodes()
	total := 0.0
	counted := 0
	for i := 0; i < pairs; i++ {
		src := r.Intn(n)
		dst := r.Intn(n)
		if alive != nil && (!alive(src) || !alive(dst)) {
			i--
			continue
		}
		if src == dst {
			i--
			continue
		}
		free := Distance(g, src, dst, nil)
		avoid := Distance(g, src, dst, alive)
		if avoid < 0 {
			disconnected++
			continue
		}
		total += float64(avoid) / float64(free)
		counted++
	}
	if counted == 0 {
		return 0, disconnected, fmt.Errorf("pathfind: no connected pairs sampled")
	}
	return total / float64(counted), disconnected, nil
}
