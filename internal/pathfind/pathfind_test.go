package pathfind

import (
	"testing"

	"ftnet/internal/core"
	"ftnet/internal/fault"
	"ftnet/internal/grid"
	"ftnet/internal/rng"
	"ftnet/internal/torus"
)

func ring(t *testing.T, n int) *torus.Graph {
	t.Helper()
	g, err := torus.NewUniform(torus.TorusKind, 1, n)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestBFSRing(t *testing.T) {
	g := ring(t, 10)
	dist := BFS(g, 0, nil)
	want := []int32{0, 1, 2, 3, 4, 5, 4, 3, 2, 1}
	for i, d := range dist {
		if d != want[i] {
			t.Errorf("dist[%d] = %d, want %d", i, d, want[i])
		}
	}
}

func TestBFSWithDeadNodes(t *testing.T) {
	g := ring(t, 10)
	dead := map[int]bool{5: true}
	alive := func(v int) bool { return !dead[v] }
	dist := BFS(g, 0, alive)
	if dist[5] != -1 {
		t.Error("dead node reachable")
	}
	// Node 6 must now be reached the long way round: distance 4.
	if dist[6] != 4 {
		t.Errorf("dist[6] = %d, want 4", dist[6])
	}
	// Cutting both 3 and 7 disconnects 4..6.
	dead[3], dead[7] = true, true
	dist = BFS(g, 0, alive)
	if dist[4] != -1 || dist[6] != -1 {
		t.Error("cut segment still reachable")
	}
	if dist[2] != 2 {
		t.Errorf("dist[2] = %d", dist[2])
	}
}

func TestBFSDeadSource(t *testing.T) {
	g := ring(t, 6)
	dist := BFS(g, 0, func(v int) bool { return v != 0 })
	for _, d := range dist {
		if d != -1 {
			t.Fatal("dead source produced distances")
		}
	}
}

func TestDistanceTorus2D(t *testing.T) {
	g, err := torus.NewUniform(torus.TorusKind, 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	src := g.Shape.Index([]int{0, 0})
	dst := g.Shape.Index([]int{4, 4})
	if got := Distance(g, src, dst, nil); got != 8 {
		t.Errorf("antipodal distance = %d, want 8", got)
	}
	dst2 := g.Shape.Index([]int{7, 1})
	if got := Distance(g, src, dst2, nil); got != 2 {
		t.Errorf("wrap distance = %d, want 2", got)
	}
}

func TestJumpEdgesShrinkDistances(t *testing.T) {
	// The B host's jump edges must shorten dimension-0 travel roughly by
	// a factor of b relative to the plain torus.
	p := core.Params{D: 2, W: 4, Pitch: 16, Scale: 1}
	g, err := core.NewGraph(p)
	if err != nil {
		t.Fatal(err)
	}
	src := g.NodeIndex(0, 0)
	dst := g.NodeIndex(p.M()/2, 0) // half way around dimension 0 = 128 steps
	d := Distance(g, src, dst, nil)
	if d >= p.M()/2 {
		t.Errorf("host distance %d not shrunk below torus distance %d", d, p.M()/2)
	}
	if d > p.M()/(p.W+1)+2*p.W {
		t.Errorf("host distance %d exceeds jump-edge bound %d", d, p.M()/(p.W+1)+2*p.W)
	}
}

func TestSampleProfile(t *testing.T) {
	g, err := torus.NewUniform(torus.TorusKind, 2, 10)
	if err != nil {
		t.Fatal(err)
	}
	prof, err := Sample(g, 5, nil, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if prof.Max != 10 { // torus diameter = 2 * n/2
		t.Errorf("max distance %d, want 10", prof.Max)
	}
	// Mean distance of the 10x10 torus is 2 * (sum of cyclic distances)/n = 5.
	if prof.Mean < 4.9 || prof.Mean > 5.1 {
		t.Errorf("mean distance %v, want 5", prof.Mean)
	}
	if prof.Unreachable != 0 {
		t.Errorf("unreachable %d on a connected torus", prof.Unreachable)
	}
	if _, err := Sample(g, 0, nil, rng.New(1)); err == nil {
		t.Error("0 sources accepted")
	}
}

func TestStretchAroundFaults(t *testing.T) {
	g, err := torus.NewUniform(torus.TorusKind, 2, 16)
	if err != nil {
		t.Fatal(err)
	}
	faults := fault.NewSet(g.N())
	if err := faults.ExactRandom(rng.New(3), 12); err != nil {
		t.Fatal(err)
	}
	alive := func(v int) bool { return !faults.Has(v) }
	mean, disc, err := Stretch(g, alive, 30, rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	if mean < 1 {
		t.Errorf("stretch %v < 1", mean)
	}
	if mean > 3 {
		t.Errorf("stretch %v suspiciously large for 12 faults on 256 nodes", mean)
	}
	if disc > 5 {
		t.Errorf("%d disconnected pairs", disc)
	}
}

var _ Graph = (*torus.Graph)(nil)
var _ Graph = gridAdapter{}

// gridAdapter pins the Graph interface shape against grid-based hosts.
type gridAdapter struct{ s grid.Shape }

func (a gridAdapter) NumNodes() int                    { return a.s.Size() }
func (a gridAdapter) Neighbors(u int, buf []int) []int { return a.s.TorusNeighbors(u, buf) }
