package rng

import "math/bits"

// PCG is a PCG XSL-RR 128/64 generator (O'Neill's pcg64): 128 bits of
// LCG state advanced by a per-stream odd increment, folded to 64 output
// bits with an xor-shift-low + random rotation.
//
// Its distinguishing feature over Rand (xoshiro256**) is cheap, provably
// disjoint stream selection: two PCG generators with different stream
// keys traverse different permutations of the state space, so a root
// seed can be split into one independent stream per Monte-Carlo trial
// with no coordination. The parallel trial engine (internal/parallel)
// keys a stream by (root seed, trial index), which is what makes its
// results bit-identical for every worker count.
//
// The zero value is not valid; use NewPCG.
type PCG struct {
	hi, lo uint64 // 128-bit LCG state
	incHi  uint64 // 128-bit increment (odd); fixed per stream
	incLo  uint64
}

// NewPCG returns a generator on the stream selected by stream, seeded by
// seed. Distinct (seed, stream) pairs give independent sequences; the
// same pair always gives the same sequence.
func NewPCG(seed, stream uint64) *PCG {
	p := &PCG{}
	// Expand both 64-bit inputs to 128 bits via splitmix64 so that
	// low-entropy seeds and small consecutive stream keys still land on
	// well-separated streams.
	sLo := SplitMix64(stream)
	sHi := SplitMix64(sLo ^ 0xda3e39cb94b95bdb)
	p.incLo = sLo<<1 | 1 // increment must be odd
	p.incHi = sHi
	p.step()
	dLo := SplitMix64(seed)
	dHi := SplitMix64(dLo ^ 0x9e3779b97f4a7c15)
	var c uint64
	p.lo, c = bits.Add64(p.lo, dLo, 0)
	p.hi, _ = bits.Add64(p.hi, dHi, c)
	p.step()
	return p
}

// step advances the 128-bit LCG: state = state*mul + inc.
func (p *PCG) step() {
	const mulHi, mulLo = 0x2360ed051fc65da4, 0x4385df649fccf645
	hi, lo := bits.Mul64(p.lo, mulLo)
	hi += p.hi*mulLo + p.lo*mulHi
	var c uint64
	lo, c = bits.Add64(lo, p.incLo, 0)
	hi, _ = bits.Add64(hi, p.incHi, c)
	p.lo, p.hi = lo, hi
}

// Uint64 returns the next 64 random bits (XSL-RR output function).
func (p *PCG) Uint64() uint64 {
	p.step()
	return bits.RotateLeft64(p.hi^p.lo, -int(p.hi>>58))
}

// Intn returns a uniform integer in [0, n). n must be positive.
func (p *PCG) Intn(n int) int { return intn(p, n) }

// Float64 returns a uniform float64 in [0, 1).
func (p *PCG) Float64() float64 { return float64v(p) }

// Bernoulli returns true with probability pr.
func (p *PCG) Bernoulli(pr float64) bool { return bernoulli(p, pr) }

// Binomial returns a sample from Binomial(n, pr) by explicit trials.
func (p *PCG) Binomial(n int, pr float64) int { return binomial(p, n, pr) }

// Geometric returns the number of failures before the first success with
// success probability pr in (0,1].
func (p *PCG) Geometric(pr float64) int { return geometric(p, pr) }

// Perm returns a random permutation of [0, n) (Fisher-Yates).
func (p *PCG) Perm(n int) []int { return perm(p, n) }

// Shuffle permutes the first n elements using swap, Fisher-Yates style.
func (p *PCG) Shuffle(n int, swap func(i, j int)) { shuffle(p, n, swap) }
