package rng

import (
	"math"
	"testing"
)

func TestPCGDeterministic(t *testing.T) {
	a := NewPCG(42, 7)
	b := NewPCG(42, 7)
	for i := 0; i < 1000; i++ {
		if x, y := a.Uint64(), b.Uint64(); x != y {
			t.Fatalf("draw %d: %d != %d", i, x, y)
		}
	}
}

func TestPCGStreamsDiffer(t *testing.T) {
	// Same seed on adjacent streams, and adjacent seeds on the same
	// stream, must give unrelated sequences.
	pairs := [][2]*PCG{
		{NewPCG(42, 0), NewPCG(42, 1)},
		{NewPCG(42, 3), NewPCG(43, 3)},
	}
	for pi, p := range pairs {
		same := 0
		for i := 0; i < 1000; i++ {
			if p[0].Uint64() == p[1].Uint64() {
				same++
			}
		}
		if same > 2 {
			t.Fatalf("pair %d: %d/1000 identical draws between streams", pi, same)
		}
	}
}

func TestPCGUniformity(t *testing.T) {
	// Coarse chi-squared-ish check: 16 buckets over Float64.
	p := NewPCG(9, 1)
	const n = 160000
	var buckets [16]int
	for i := 0; i < n; i++ {
		f := p.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
		buckets[int(f*16)]++
	}
	want := float64(n) / 16
	for b, c := range buckets {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Fatalf("bucket %d: %d draws, want ~%.0f", b, c, want)
		}
	}
}

func TestPCGIntnBounds(t *testing.T) {
	p := NewPCG(1, 2)
	for _, n := range []int{1, 2, 3, 7, 64, 1000} {
		seen := make(map[int]bool)
		for i := 0; i < 50*n; i++ {
			v := p.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
			seen[v] = true
		}
		if len(seen) != n {
			t.Fatalf("Intn(%d) hit only %d values", n, len(seen))
		}
	}
}

func TestPCGMatchesRandDistributions(t *testing.T) {
	// The shared helpers must behave identically through both
	// generators; compare Bernoulli acceptance rates loosely.
	p := NewPCG(5, 5)
	r := New(5)
	const n = 100000
	cp, cr := 0, 0
	for i := 0; i < n; i++ {
		if p.Bernoulli(0.3) {
			cp++
		}
		if r.Bernoulli(0.3) {
			cr++
		}
	}
	if math.Abs(float64(cp)-0.3*n) > 4*math.Sqrt(0.21*n) {
		t.Fatalf("PCG Bernoulli rate off: %d/%d", cp, n)
	}
	if math.Abs(float64(cp-cr)) > 8*math.Sqrt(0.21*n) {
		t.Fatalf("PCG and Rand rates disagree: %d vs %d", cp, cr)
	}
}

func TestPCGPermValid(t *testing.T) {
	p := NewPCG(11, 13)
	perm := p.Perm(100)
	seen := make([]bool, 100)
	for _, v := range perm {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("invalid permutation: %v", perm)
		}
		seen[v] = true
	}
}
