// Package rng implements small, fast, deterministic random number
// generators — xoshiro256** (Rand) for sequential use and pcg64 (PCG)
// for splittable per-trial streams — plus a stateless splitmix64-based
// hash used for lazily evaluated per-edge fault decisions.
//
// The standard library's math/rand would work, but experiments need
// reproducible streams that are cheap to split by (trial, purpose) keys, and
// fault injection on implicit edge sets needs a pure function of the edge
// identity. Both are provided here with no external dependencies. The
// Source interface abstracts over the two generators so fault injection
// and search code can consume either.
package rng

import (
	"math"
	"math/bits"
)

// SplitMix64 advances x by the splitmix64 sequence and returns the next
// output. It is the standard seeding/hash finalizer from Vigna's splitmix64.
func SplitMix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	z := x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Hash64 mixes an arbitrary sequence of 64-bit parts into a single
// well-distributed 64-bit value. It is deterministic and order-sensitive.
func Hash64(parts ...uint64) uint64 {
	h := uint64(0x8824a3d79bc1a62b)
	for _, p := range parts {
		h = SplitMix64(h ^ p)
	}
	return h
}

// HashFloat maps Hash64(parts...) to [0,1).
func HashFloat(parts ...uint64) float64 {
	return float64(Hash64(parts...)>>11) / (1 << 53)
}

// Source is the generator interface shared by Rand (xoshiro256**) and
// PCG (pcg64). Consumers that only draw random values — fault
// generators, path searches, trial bodies — should accept a Source so
// they work with both the sequential generators and the per-trial PCG
// streams handed out by the parallel engine. It carries only the
// methods those consumers actually call; both concrete types offer
// more (Perm, Binomial).
type Source interface {
	Uint64() uint64
	Intn(n int) int
	Float64() float64
	Bernoulli(p float64) bool
	Geometric(p float64) int
	Shuffle(n int, swap func(i, j int))
}

var (
	_ Source = (*Rand)(nil)
	_ Source = (*PCG)(nil)
)

// Rand is a xoshiro256** generator. The zero value is not valid; use New.
type Rand struct {
	s [4]uint64
}

// New returns a generator seeded from seed via splitmix64.
func New(seed uint64) *Rand {
	var r Rand
	x := seed
	for i := range r.s {
		x = SplitMix64(x)
		r.s[i] = x
	}
	// xoshiro256** must not be seeded with all zeros.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 1
	}
	return &r
}

// Split returns a new independent generator derived from r's seed stream
// and the given key, without perturbing r. Use it to give each Monte-Carlo
// trial or subsystem its own stream.
func (r *Rand) Split(key uint64) *Rand {
	return New(Hash64(r.s[0], r.s[1], r.s[2], r.s[3], key))
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 random bits.
func (r *Rand) Uint64() uint64 {
	s := &r.s
	result := rotl(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)
	return result
}

// Intn returns a uniform integer in [0, n). n must be positive.
func (r *Rand) Intn(n int) int { return intn(r, n) }

// Float64 returns a uniform float64 in [0, 1).
func (r *Rand) Float64() float64 { return float64v(r) }

// Bernoulli returns true with probability p.
func (r *Rand) Bernoulli(p float64) bool { return bernoulli(r, p) }

// Perm returns a random permutation of [0, n) (Fisher–Yates).
func (r *Rand) Perm(n int) []int { return perm(r, n) }

// Shuffle permutes the first n elements using swap, Fisher–Yates style.
func (r *Rand) Shuffle(n int, swap func(i, j int)) { shuffle(r, n, swap) }

// Binomial returns a sample from Binomial(n, p). It uses explicit trials
// for small n·p and a normal approximation fallback is intentionally
// avoided to keep determinism exact across platforms.
func (r *Rand) Binomial(n int, p float64) int { return binomial(r, n, p) }

// Geometric returns a sample of the number of failures before the first
// success with success probability p in (0,1]. Used for fast sparse
// Bernoulli sampling via skip distances.
func (r *Rand) Geometric(p float64) int { return geometric(r, p) }

// bitSource is the raw-bits view the shared distribution helpers draw
// from; both Rand and PCG provide it.
type bitSource interface{ Uint64() uint64 }

func intn(r bitSource, n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	// Lemire's multiply-shift rejection method for unbiased bounded values.
	bound := uint64(n)
	threshold := (-bound) % bound
	for {
		hi, lo := bits.Mul64(r.Uint64(), bound)
		if lo >= threshold {
			return int(hi)
		}
	}
}

func float64v(r bitSource) float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

func bernoulli(r bitSource, p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return float64v(r) < p
}

func perm(r bitSource, n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := intn(r, i+1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

func shuffle(r bitSource, n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := intn(r, i+1)
		swap(i, j)
	}
}

func binomial(r bitSource, n int, p float64) int {
	k := 0
	for i := 0; i < n; i++ {
		if bernoulli(r, p) {
			k++
		}
	}
	return k
}

func geometric(r bitSource, p float64) int {
	if p >= 1 {
		return 0
	}
	if p <= 0 {
		panic("rng: Geometric with non-positive p")
	}
	u := float64v(r)
	// Avoid log(0).
	if u == 0 {
		u = math.SmallestNonzeroFloat64
	}
	return int(math.Floor(math.Log(u) / math.Log1p(-p)))
}
