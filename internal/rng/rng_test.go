package rng

import (
	"math"
	"testing"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed, different streams")
		}
	}
	c := New(43)
	same := 0
	for i := 0; i < 100; i++ {
		if New(42).Split(uint64(i)).Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("different seeds collide too often: %d/100", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	r := New(1)
	s1 := r.Split(1)
	s2 := r.Split(2)
	if s1.Uint64() == s2.Uint64() {
		t.Error("splits with different keys produced identical output")
	}
	// Split must not perturb the parent.
	r2 := New(1)
	r2.Split(1)
	r2.Split(2)
	a, b := New(1), r2
	for i := 0; i < 10; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("Split perturbed parent stream")
		}
	}
}

func TestIntnRange(t *testing.T) {
	r := New(7)
	counts := make([]int, 10)
	for i := 0; i < 10000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn(10) = %d", v)
		}
		counts[v]++
	}
	for v, c := range counts {
		if c < 800 || c > 1200 {
			t.Errorf("Intn(10) bucket %d has %d/10000 hits (expect ~1000)", v, c)
		}
	}
}

func TestIntnPanicsOnBadInput(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) should panic")
		}
	}()
	New(1).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	sum := 0.0
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 = %v", v)
		}
		sum += v
	}
	if mean := sum / 10000; mean < 0.48 || mean > 0.52 {
		t.Errorf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestBernoulliExtremes(t *testing.T) {
	r := New(5)
	if r.Bernoulli(0) {
		t.Error("Bernoulli(0) returned true")
	}
	if !r.Bernoulli(1) {
		t.Error("Bernoulli(1) returned false")
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(11)
	p := r.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("Perm invalid at %d", v)
		}
		seen[v] = true
	}
}

func TestGeometricMean(t *testing.T) {
	r := New(13)
	p := 0.01
	sum := 0.0
	n := 20000
	for i := 0; i < n; i++ {
		sum += float64(r.Geometric(p))
	}
	mean := sum / float64(n)
	want := (1 - p) / p
	if math.Abs(mean-want)/want > 0.1 {
		t.Errorf("Geometric(%v) mean = %v, want ~%v", p, mean, want)
	}
}

func TestBinomialMean(t *testing.T) {
	r := New(17)
	sum := 0
	for i := 0; i < 2000; i++ {
		sum += r.Binomial(100, 0.3)
	}
	mean := float64(sum) / 2000
	if mean < 28 || mean > 32 {
		t.Errorf("Binomial(100,0.3) mean = %v, want ~30", mean)
	}
}

func TestHash64Sensitivity(t *testing.T) {
	if Hash64(1, 2) == Hash64(2, 1) {
		t.Error("Hash64 should be order sensitive")
	}
	if Hash64(1) == Hash64(1, 0) {
		t.Error("Hash64 should be length sensitive")
	}
}

func TestHashFloatRange(t *testing.T) {
	for i := uint64(0); i < 1000; i++ {
		v := HashFloat(i, i*3)
		if v < 0 || v >= 1 {
			t.Fatalf("HashFloat out of range: %v", v)
		}
	}
}

func TestShuffle(t *testing.T) {
	r := New(19)
	a := []int{0, 1, 2, 3, 4, 5, 6, 7}
	r.Shuffle(len(a), func(i, j int) { a[i], a[j] = a[j], a[i] })
	seen := make([]bool, 8)
	for _, v := range a {
		seen[v] = true
	}
	for i, ok := range seen {
		if !ok {
			t.Fatalf("Shuffle lost element %d", i)
		}
	}
}
