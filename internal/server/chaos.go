package server

import (
	"bytes"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ftnet/internal/fterr"
	"ftnet/internal/rng"
	"ftnet/internal/validate"
	"ftnet/internal/wire"
)

// ChaosConfig parameterizes the daemon's fault-injection middleware —
// the harness that lets the resilience layer be tested against the
// failures it claims to absorb, on a real serve path instead of mocks.
// All probabilities are per-request in [0, 1]; zero disables that
// injection. The zero value disables everything.
type ChaosConfig struct {
	// LatencyP injects Latency of added delay before the handler runs.
	LatencyP float64
	// Latency is the injected delay (default 50ms when LatencyP > 0).
	Latency time.Duration
	// ErrorP replaces the response with an injected 503 burst error.
	ErrorP float64
	// DropP severs the connection midway through the response body: the
	// client sees a truncated read, not a clean status.
	DropP float64
	// CorruptP flips one byte of a binary wire payload (JSON responses
	// are left alone: corruption targets the checksum-verified path).
	CorruptP float64
	// EvictP answers a ?since= delta request with an injected 410, as if
	// the generation had fallen off the delta ring.
	EvictP float64
	// Seed makes the injection sequence reproducible (0 picks 1).
	Seed uint64
}

// Enabled reports whether any injection can fire.
func (c ChaosConfig) Enabled() bool {
	return c.LatencyP > 0 || c.ErrorP > 0 || c.DropP > 0 || c.CorruptP > 0 || c.EvictP > 0
}

// Validate bounds every probability.
func (c ChaosConfig) Validate() error {
	for _, p := range []struct {
		name string
		v    float64
	}{
		{"chaos latency-p", c.LatencyP},
		{"chaos error-p", c.ErrorP},
		{"chaos drop-p", c.DropP},
		{"chaos corrupt-p", c.CorruptP},
		{"chaos evict-p", c.EvictP},
	} {
		if err := validate.Rate(p.name, p.v); err != nil {
			return err
		}
		if p.v > 1 {
			return fterr.New(fterr.Invalid, "server.chaos", "%s must be <= 1, got %v", p.name, p.v)
		}
	}
	if c.Latency < 0 {
		return fterr.New(fterr.Invalid, "server.chaos", "chaos latency must be >= 0, got %v", c.Latency)
	}
	return nil
}

// ParseChaos parses the -chaos flag / FTNET_CHAOS env form: a comma
// list of key=value pairs, e.g.
//
//	latency-p=0.2,latency=30ms,error-p=0.1,drop-p=0.05,corrupt-p=0.05,evict-p=0.1,seed=7
//
// An empty spec returns the disabled zero config.
func ParseChaos(spec string) (ChaosConfig, error) {
	var c ChaosConfig
	if strings.TrimSpace(spec) == "" {
		return c, nil
	}
	for _, part := range strings.Split(spec, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return c, fterr.New(fterr.Invalid, "server.chaos", "chaos spec %q: %q is not key=value", spec, part)
		}
		var err error
		switch key {
		case "latency-p":
			c.LatencyP, err = strconv.ParseFloat(val, 64)
		case "latency":
			c.Latency, err = time.ParseDuration(val)
		case "error-p":
			c.ErrorP, err = strconv.ParseFloat(val, 64)
		case "drop-p":
			c.DropP, err = strconv.ParseFloat(val, 64)
		case "corrupt-p":
			c.CorruptP, err = strconv.ParseFloat(val, 64)
		case "evict-p":
			c.EvictP, err = strconv.ParseFloat(val, 64)
		case "seed":
			c.Seed, err = strconv.ParseUint(val, 10, 64)
		default:
			return c, fterr.New(fterr.Invalid, "server.chaos", "chaos spec %q: unknown key %q (want latency-p, latency, error-p, drop-p, corrupt-p, evict-p, seed)", spec, key)
		}
		if err != nil {
			return c, fterr.New(fterr.Invalid, "server.chaos", "chaos spec %q: bad %s: %v", spec, key, err)
		}
	}
	if c.LatencyP > 0 && c.Latency == 0 {
		c.Latency = 50 * time.Millisecond
	}
	return c, c.Validate()
}

// chaosInjector is the middleware state: a seeded, mutex-guarded PCG
// (deterministic injection sequences for a given request order) and one
// counter per injection kind, exposed on /metrics so a test or smoke
// script can assert that faults actually fired.
type chaosInjector struct {
	cfg ChaosConfig

	mu  sync.Mutex
	rng *rng.PCG

	latency  atomic.Int64
	errors   atomic.Int64
	drops    atomic.Int64
	corrupts atomic.Int64
	evicts   atomic.Int64
}

func newChaosInjector(cfg ChaosConfig) *chaosInjector {
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	return &chaosInjector{cfg: cfg, rng: rng.NewPCG(seed, 0)}
}

// roll draws one Bernoulli per injection decision.
func (c *chaosInjector) roll(p float64) bool {
	if p <= 0 {
		return false
	}
	c.mu.Lock()
	hit := c.rng.Bernoulli(p)
	c.mu.Unlock()
	return hit
}

func (c *chaosInjector) writeMetrics(b *strings.Builder) {
	kinds := []struct {
		kind string
		n    *atomic.Int64
	}{
		{"latency", &c.latency},
		{"error", &c.errors},
		{"drop", &c.drops},
		{"corrupt", &c.corrupts},
		{"evict", &c.evicts},
	}
	b.WriteString("# HELP ftnetd_chaos_injections_total Faults injected by the chaos middleware.\n# TYPE ftnetd_chaos_injections_total counter\n")
	for _, k := range kinds {
		b.WriteString("ftnetd_chaos_injections_total{kind=\"" + k.kind + "\"} " + strconv.FormatInt(k.n.Load(), 10) + "\n")
	}
}

// chaosRecorder buffers a response so the middleware can truncate or
// corrupt it after the handler ran.
type chaosRecorder struct {
	header http.Header
	status int
	body   bytes.Buffer
}

func (r *chaosRecorder) Header() http.Header { return r.header }
func (r *chaosRecorder) WriteHeader(s int) {
	if r.status == 0 {
		r.status = s
	}
}
func (r *chaosRecorder) Write(b []byte) (int, error) {
	r.WriteHeader(http.StatusOK)
	return r.body.Write(b)
}

// wrap returns the handler behind the fault-injection middleware.
//
// Injections apply only to /v1/ API requests — /healthz and /metrics
// stay reliable so orchestration and assertions keep working — and the
// /watch SSE stream is exempt from drop/corrupt/buffering (an infinite
// stream cannot be buffered; its failure modes are covered by dropping
// the polls around it and by server restarts).
func (c *chaosInjector) wrap(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !strings.HasPrefix(r.URL.Path, "/v1/") {
			next.ServeHTTP(w, r)
			return
		}
		if c.roll(c.cfg.LatencyP) {
			c.latency.Add(1)
			time.Sleep(c.cfg.Latency)
		}
		if c.roll(c.cfg.ErrorP) {
			c.errors.Add(1)
			err := fterr.New(fterr.Unavailable, "server.chaos", "injected fault: unavailable")
			writeJSON(w, fterr.Unavailable.HTTPStatus(), errBody(err, 0))
			return
		}
		if r.URL.Query().Get("since") != "" && c.roll(c.cfg.EvictP) {
			c.evicts.Add(1)
			err := fterr.New(fterr.ResyncRequired, "server.chaos", "injected fault: generation evicted")
			writeJSON(w, fterr.ResyncRequired.HTTPStatus(), errBody(err, 0))
			return
		}
		stream := strings.HasSuffix(r.URL.Path, "/watch")
		if stream || (c.cfg.DropP <= 0 && c.cfg.CorruptP <= 0) {
			next.ServeHTTP(w, r)
			return
		}

		rec := &chaosRecorder{header: w.Header().Clone()}
		next.ServeHTTP(rec, r)
		body := rec.body.Bytes()

		if c.roll(c.cfg.DropP) {
			c.drops.Add(1)
			// Flush a partial body, then abort the connection: the client
			// observes a truncated read mid-payload, the dirtiest failure
			// an HTTP server can hand it short of byte corruption.
			for k, v := range rec.header {
				w.Header()[k] = v
			}
			w.Header().Del("Content-Length")
			w.WriteHeader(rec.status)
			w.Write(body[:len(body)/2])
			if fl, ok := w.(http.Flusher); ok {
				fl.Flush()
			}
			panic(http.ErrAbortHandler)
		}
		if rec.header.Get("Content-Type") == wire.ContentType && len(body) > 0 && c.roll(c.cfg.CorruptP) {
			c.corrupts.Add(1)
			// Flip one byte somewhere in the payload; the binary codec's
			// strict decode or checksum verification must catch it.
			c.mu.Lock()
			i := c.rng.Intn(len(body))
			c.mu.Unlock()
			body = append([]byte(nil), body...)
			body[i] ^= 0x20
		}
		for k, v := range rec.header {
			w.Header()[k] = v
		}
		w.WriteHeader(rec.status)
		w.Write(body)
	})
}
