package server

import (
	"strconv"
	"strings"
	"time"

	"ftnet/internal/fterr"
	"ftnet/internal/validate"
)

// TopologyConfig describes one hosted Theorem 2 topology.
type TopologyConfig struct {
	// ID names the topology in URLs, metrics and snapshot files.
	ID string
	// D is the guest dimension (>= 2).
	D int
	// MinSide is the minimum guest torus side; the host fits the exact
	// side (see ftnet.NewRandomFaultTorus).
	MinSide int
	// MaxEps bounds the node redundancy (host nodes <= (1+MaxEps) n^d).
	MaxEps float64
}

// Validate checks one topology spec.
func (t TopologyConfig) Validate() error {
	if t.ID == "" {
		return fterr.New(fterr.Invalid, "server.config", "topology id must be non-empty")
	}
	for _, r := range t.ID {
		if !(r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r >= '0' && r <= '9' || r == '-' || r == '_') {
			return fterr.New(fterr.Invalid, "server.config", "topology id %q: only letters, digits, '-' and '_' are allowed", t.ID)
		}
	}
	if err := validate.Min("topology "+t.ID+": d", t.D, 2); err != nil {
		return err
	}
	if err := validate.Min("topology "+t.ID+": side", t.MinSide, 1); err != nil {
		return err
	}
	return validate.Positive("topology "+t.ID+": eps", t.MaxEps)
}

// ParseTopologySpec parses the CLI form "id=main,d=2,side=200,eps=0.5".
// d defaults to 2 and eps to 0.5; id and side are required.
func ParseTopologySpec(spec string) (TopologyConfig, error) {
	tc := TopologyConfig{D: 2, MaxEps: 0.5}
	for _, part := range strings.Split(spec, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return tc, fterr.New(fterr.Invalid, "server.config", "topology spec %q: %q is not key=value", spec, part)
		}
		var err error
		switch key {
		case "id":
			tc.ID = val
		case "d":
			tc.D, err = strconv.Atoi(val)
		case "side":
			tc.MinSide, err = strconv.Atoi(val)
		case "eps":
			tc.MaxEps, err = strconv.ParseFloat(val, 64)
		default:
			return tc, fterr.New(fterr.Invalid, "server.config", "topology spec %q: unknown key %q (want id, d, side, eps)", spec, key)
		}
		if err != nil {
			return tc, fterr.New(fterr.Invalid, "server.config", "topology spec %q: bad %s: %v", spec, key, err)
		}
	}
	if tc.ID == "" || tc.MinSide == 0 {
		return tc, fterr.New(fterr.Invalid, "server.config", "topology spec %q: id and side are required", spec)
	}
	return tc, tc.Validate()
}

// Config parameterizes the daemon.
type Config struct {
	// Topologies lists the hosted topologies; at least one is required.
	Topologies []TopologyConfig
	// SnapshotDir, if non-empty, enables snapshot/restore: POST
	// /v1/topologies/{id}/snapshot writes <dir>/<id>.json, and startup
	// restores each topology whose snapshot file exists.
	SnapshotDir string
	// MaxBatchCols is the batching policy's footprint threshold: pending
	// asynchronous mutations are evaluated as soon as they touch at
	// least this many distinct host columns ("the accumulated footprint
	// stops being small"). 0 means the default of 64.
	MaxBatchCols int
	// FlushInterval is the periodic flush of pending asynchronous
	// mutations. <= 0 disables the timer: pending work then waits for a
	// threshold crossing, an explicit reembed, or the next synchronous
	// request. The CLI flag defaults to DefaultFlushInterval; callers
	// constructing a Config directly must opt in explicitly.
	FlushInterval time.Duration
	// DeltaRing bounds each topology's chain of per-commit column diffs:
	// GET .../embedding?since=g is answerable while head-g <= DeltaRing
	// (older generations get 410 Gone and resync from the full
	// embedding). 0 means the default of 64; negative is invalid.
	DeltaRing int
	// Chaos parameterizes the fault-injection middleware (the -chaos
	// flag / FTNET_CHAOS env); the zero value disables it.
	Chaos ChaosConfig
}

// Defaults for the batching policy and the delta ring.
// DefaultFlushInterval is applied by the serve subcommand's flag
// default, not by Config (whose zero value means "no flush timer").
const (
	DefaultMaxBatchCols  = 64
	DefaultFlushInterval = 250 * time.Millisecond
	DefaultDeltaRing     = 64
)

// Validate checks the whole daemon configuration, using the same helpers
// as the churn CLI flags.
func (c Config) Validate() error {
	if len(c.Topologies) == 0 {
		return fterr.New(fterr.Invalid, "server.config", "server: no topologies configured")
	}
	seen := make(map[string]bool, len(c.Topologies))
	for _, t := range c.Topologies {
		if err := t.Validate(); err != nil {
			return fterr.New(fterr.Invalid, "server.config", "server: %v", err)
		}
		if seen[t.ID] {
			return fterr.New(fterr.Invalid, "server.config", "server: duplicate topology id %q", t.ID)
		}
		seen[t.ID] = true
	}
	if err := validate.Min("server: max batch columns", c.MaxBatchCols, 0); err != nil {
		return err
	}
	if err := validate.Min("server: delta ring", c.DeltaRing, 0); err != nil {
		return err
	}
	return c.Chaos.Validate()
}

// maxBatchCols resolves the threshold default.
func (c Config) maxBatchCols() int {
	if c.MaxBatchCols <= 0 {
		return DefaultMaxBatchCols
	}
	return c.MaxBatchCols
}

// flushInterval clamps the flush timer: <= 0 disables.
func (c Config) flushInterval() time.Duration {
	if c.FlushInterval <= 0 {
		return 0
	}
	return c.FlushInterval
}

// deltaRing resolves the delta chain bound's default.
func (c Config) deltaRing() int {
	if c.DeltaRing <= 0 {
		return DefaultDeltaRing
	}
	return c.DeltaRing
}
