package server

import (
	"fmt"
	"slices"
	"sync"
	"sync/atomic"

	"ftnet"
	"ftnet/internal/fterr"
	"ftnet/internal/wire"
)

// errDeltaEvicted answers a ?since= generation that fell off the delta
// ring (or predates a full rewrite): the requested diff no longer
// exists, and serving anything else would hand the client stale state.
// Handlers map it to 410 Gone; the client resyncs from the full
// embedding.
var errDeltaEvicted error = &fterr.E{Code: fterr.ResyncRequired, Op: "server", Msg: "generation evicted from the delta ring; resync from the full embedding"}

// deltaRec is one commit's entry in the per-topology delta ring: the
// guest columns whose map entries changed versus the previous
// generation, plus enough committed state (checksum, fault set) to emit
// watch events and build delta responses for that generation. Records
// are immutable once published; prev links form a chain bounded to the
// topology's DeltaRing length, trimmed by the single writer and walked
// lock-free by readers (prev is atomic so a trim racing a walk is just
// an early end-of-chain, which reads as eviction — safe, never stale).
type deltaRec struct {
	gen      int64
	checksum uint64
	faults   []int
	edges    [][2]int
	// cols lists, sorted, the columns changed vs gen-1; nil when full.
	cols []int32
	// full marks a resync boundary: initial commit, restart, or an
	// engine fallback that rewrote the whole embedding. Walks that need
	// to cross it fail with errDeltaEvicted.
	full bool
	prev atomic.Pointer[deltaRec]
	// Rendered SSE "commit" event, built on first demand. Every caught-up
	// watch subscriber streams the same bytes for a commit; rendering per
	// subscriber would turn each commit into a subscribers×marshal CPU
	// burst that stalls the other serve paths.
	eventOnce sync.Once
	eventData []byte
}

// commitEvent returns the record's cached SSE "commit" event bytes.
func (rec *deltaRec) commitEvent(topology string) []byte {
	rec.eventOnce.Do(func() {
		changed := len(rec.cols)
		if rec.full {
			changed = -1
		}
		rec.eventData = renderWatchEvent("commit", watchEvent{
			Topology:    topology,
			Generation:  rec.gen,
			Checksum:    fmt.Sprintf("%016x", rec.checksum),
			Faults:      rec.faults,
			EdgeFaults:  edgesOrEmpty(rec.edges),
			ChangedCols: changed,
		})
	})
	return rec.eventData
}

// linkDelta attaches snap's delta record, chaining to the previous
// snapshot's and trimming the chain to the ring bound. Called by the
// topology writer (or construction) before snap is published, so
// readers never observe a snapshot without its record.
func (t *topology) linkDelta(prevSnap, snap *Snapshot, d *ftnet.EmbeddingDelta) {
	rec := &deltaRec{
		gen:      snap.Generation,
		checksum: snap.Checksum,
		faults:   snap.FaultNodes,
		edges:    snap.FaultEdges,
	}
	if d == nil || d.Full || prevSnap == nil || prevSnap.delta == nil ||
		prevSnap.Generation+1 != snap.Generation {
		rec.full = true
	} else {
		rec.cols = changedColumns(prevSnap.Emb.Map, snap.Emb.Map, d.Cols, t.numCols)
		rec.prev.Store(prevSnap.delta)
	}
	snap.delta = rec
	trimDeltaChain(rec, t.deltaRing)
}

// changedColumns filters the engine's candidate columns (a superset, see
// ftnet.EmbeddingDelta) down to the columns whose map entries actually
// differ between the two committed embeddings. cand is sorted, so the
// result is too.
func changedColumns(oldMap, newMap []int, cand []int, numCols int) []int32 {
	side := len(newMap) / numCols
	var out []int32
	for _, z := range cand {
		for j := 0; j < side; j++ {
			if oldMap[j*numCols+z] != newMap[j*numCols+z] {
				out = append(out, int32(z))
				break
			}
		}
	}
	return out
}

// trimDeltaChain bounds the chain to ring records (head included),
// unlinking everything older for the collector.
func trimDeltaChain(head *deltaRec, ring int) {
	rec := head
	for i := 1; i < ring; i++ {
		next := rec.prev.Load()
		if next == nil {
			return
		}
		rec = next
	}
	rec.prev.Store(nil)
}

// deltaSince merges the per-commit column diffs covering (since, head]
// into one sorted column list. It fails with errDeltaEvicted when the
// chain no longer reaches since: the ring evicted the record, or a full
// rewrite stands in between. The caller guarantees 0 <= since <=
// head generation.
func deltaSince(snap *Snapshot, since int64) ([]int32, error) {
	if since == snap.Generation {
		return nil, nil
	}
	var out []int32
	for rec := snap.delta; rec.gen > since; {
		if rec.full {
			return nil, errDeltaEvicted
		}
		out = append(out, rec.cols...)
		if rec.gen == since+1 {
			break
		}
		next := rec.prev.Load()
		if next == nil {
			return nil, errDeltaEvicted
		}
		rec = next
	}
	slices.Sort(out)
	return slices.Compact(out), nil
}

// wireSnapshot is the snapshot's binary-protocol view.
func (s *Snapshot) wireSnapshot(topology string) *wire.Snapshot {
	return &wire.Snapshot{
		Topology:   topology,
		Generation: s.Generation,
		Side:       s.Emb.Side,
		Dims:       s.Emb.Dims,
		Faults:     s.FaultNodes,
		Edges:      s.FaultEdges,
		Map:        s.Emb.Map,
		Checksum:   s.Checksum,
	}
}

// wireFull returns the snapshot's binary full encoding, rendered once
// and cached — under fleet load every client of a generation shares one
// encoding pass.
func (s *Snapshot) wireFull(topology string) ([]byte, error) {
	s.binOnce.Do(func() {
		s.binData, s.binErr = wire.EncodeSnapshot(s.wireSnapshot(topology))
	})
	return s.binData, s.binErr
}

// wireDeltaEncoded returns the encoded binary delta for (since, head],
// cached on the head snapshot: a fleet of clients chasing the head all
// hold one of a handful of recent generations, so without the cache
// every poll would rebuild and re-encode an identical payload —
// profiled as the dominant serve-path cost under thousand-client load.
// The cache dies with the snapshot and holds at most DeltaRing entries
// (older sinces answer 410 before reaching here).
func (t *topology) wireDeltaEncoded(snap *Snapshot, since int64, cols []int32) ([]byte, error) {
	snap.deltaMu.Lock()
	if b, ok := snap.deltaCache[since]; ok {
		snap.deltaMu.Unlock()
		return b, nil
	}
	snap.deltaMu.Unlock()
	b, err := wire.EncodeDelta(t.wireDelta(snap, since, cols))
	if err != nil {
		return nil, err
	}
	snap.deltaMu.Lock()
	if snap.deltaCache == nil {
		snap.deltaCache = make(map[int64][]byte)
	}
	snap.deltaCache[since] = b
	snap.deltaMu.Unlock()
	return b, nil
}

// wireDelta builds the delta payload for (since, head]: the merged
// changed columns carrying their head-generation values, the head fault
// set, and the head checksum (so wire.Apply can verify the patch).
func (t *topology) wireDelta(snap *Snapshot, since int64, cols []int32) *wire.Delta {
	nc := t.numCols
	side := snap.Emb.Side
	cus := make([]wire.ColumnUpdate, len(cols))
	for i, z := range cols {
		vals := make([]int, side)
		for j := 0; j < side; j++ {
			vals[j] = snap.Emb.Map[j*nc+int(z)]
		}
		cus[i] = wire.ColumnUpdate{Col: int(z), Vals: vals}
	}
	return &wire.Delta{
		Topology:       t.cfg.ID,
		FromGeneration: since,
		ToGeneration:   snap.Generation,
		Side:           side,
		Dims:           snap.Emb.Dims,
		Faults:         snap.FaultNodes,
		Edges:          snap.FaultEdges,
		Cols:           cus,
		Checksum:       snap.Checksum,
	}
}
