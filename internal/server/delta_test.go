package server

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"reflect"
	"strings"
	"testing"

	"ftnet/internal/rng"
	"ftnet/internal/wire"
)

// wireGet fetches url with the binary wire Accept header.
func wireGet(t *testing.T, url string) (int, []byte) {
	t.Helper()
	req, err := http.NewRequest("GET", url, nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", wire.ContentType)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

func fetchFullWire(t *testing.T, base string) *wire.Snapshot {
	t.Helper()
	code, body := wireGet(t, base+"/embedding")
	if code != 200 {
		t.Fatalf("GET embedding (wire): %d %s", code, body)
	}
	snap, err := wire.DecodeSnapshot(body)
	if err != nil {
		t.Fatalf("decode full snapshot: %v", err)
	}
	return snap
}

// expectDeltaServed mirrors deltaSince's reachability rule on the live
// record chain: a ?since=g request is answerable exactly when every
// generation in (g, head] is covered by a non-full record.
func expectDeltaServed(snap *Snapshot, since int64) bool {
	if since == snap.Generation {
		return true
	}
	for rec := snap.delta; rec.gen > since; {
		if rec.full {
			return false
		}
		if rec.gen == since+1 {
			return true
		}
		next := rec.prev.Load()
		if next == nil {
			return false
		}
		rec = next
	}
	return true
}

// TestDeltaChainEquivalence is the delta-protocol property test: under
// seeded random fault churn — including rejected (422) evaluations and
// their heals — a client holding ANY previously served generation g
// either gets a delta whose application yields exactly the head
// snapshot, or a 410 telling it to resync; never a silently stale or
// wrong view. The expected 200/410 boundary is computed from the live
// ring chain, so eviction behavior is pinned exactly, not just
// "either works".
func TestDeltaChainEquivalence(t *testing.T) {
	const ring = 5
	srv, ts := startServer(t, testConfig(t, func(c *Config) { c.DeltaRing = ring }))
	topo := srv.topos["main"]
	base := ts.URL + "/v1/topologies/main"
	r := rng.NewPCG(1994, 42)

	side := topo.host.Side()
	numCols := topo.numCols
	rows := topo.host.HostNodes() / numCols

	history := map[int64]*wire.Snapshot{}
	head := fetchFullWire(t, base)
	history[head.Generation] = head

	probe := func(stepLabel string) {
		t.Helper()
		headSnap := topo.snap.Load()
		head = fetchFullWire(t, base)
		if head.Generation != headSnap.Generation {
			t.Fatalf("%s: head moved during probe", stepLabel)
		}
		history[head.Generation] = head
		for g, baseSnap := range history {
			served := expectDeltaServed(headSnap, g)
			code, body := wireGet(t, fmt.Sprintf("%s/embedding?since=%d", base, g))
			switch {
			case served && code == 200:
				d, err := wire.DecodeDelta(body)
				if err != nil {
					t.Fatalf("%s since=%d: decode delta: %v", stepLabel, g, err)
				}
				if d.FromGeneration != g || d.ToGeneration != head.Generation {
					t.Fatalf("%s since=%d: delta spans %d..%d, head %d",
						stepLabel, g, d.FromGeneration, d.ToGeneration, head.Generation)
				}
				got, err := wire.Apply(baseSnap, d)
				if err != nil {
					t.Fatalf("%s since=%d: apply: %v", stepLabel, g, err)
				}
				if !reflect.DeepEqual(got, head) {
					t.Fatalf("%s since=%d: delta chain does not reproduce head %d",
						stepLabel, g, head.Generation)
				}
			case !served && code == http.StatusGone:
				// Evicted: the client must be told to resync, and the resync
				// must land on the exact head.
				if !bytes.Contains(body, []byte("resync")) {
					t.Fatalf("%s since=%d: 410 body %q lacks resync hint", stepLabel, g, body)
				}
			default:
				t.Fatalf("%s since=%d: status %d, ring expected served=%v",
					stepLabel, g, code, served)
			}
		}
		// Generations older than everything the ring can hold must be gone.
		if old := head.Generation - int64(ring) - 1; old >= 0 {
			if code, _ := wireGet(t, fmt.Sprintf("%s/embedding?since=%d", base, old)); code != http.StatusGone {
				t.Fatalf("%s: since=%d (beyond ring) -> %d, want 410", stepLabel, old, code)
			}
		}
	}

	var live [][]int
	used := map[int]bool{}
	for step := 0; step < 24; step++ {
		switch {
		case step == 8 || step == 16:
			// Poison: an entire dead host column is never tolerable. The
			// failed evaluation must not commit a generation, and the heal
			// right after must resume the delta chain correctly even though
			// the session's embedding scratch churned through the failure.
			col := (side/2 + step) % numCols
			killer := make([]int, 0, rows)
			for rr := 0; rr < rows; rr++ {
				if n := rr*numCols + col; !used[n] {
					killer = append(killer, n)
				}
			}
			before := topo.snap.Load().Generation
			code, _ := doJSON(t, "POST", base+"/faults", mutationRequest{Nodes: killer}, nil)
			if code != 422 {
				t.Fatalf("step %d: column kill -> %d, want 422", step, code)
			}
			if got := topo.snap.Load().Generation; got != before {
				t.Fatalf("step %d: failed eval committed generation %d", step, got)
			}
			probe(fmt.Sprintf("step %d (after 422)", step))
			if code, _ := doJSON(t, "DELETE", base+"/faults", mutationRequest{Nodes: killer}, nil); code != 200 {
				t.Fatalf("step %d: heal -> %d", step, code)
			}
		case len(live) > 4 || (len(live) > 0 && r.Intn(3) == 0):
			batch := live[0]
			live = live[1:]
			if code, _ := doJSON(t, "DELETE", base+"/faults", mutationRequest{Nodes: batch}, nil); code != 200 {
				t.Fatalf("step %d: repair -> %d", step, code)
			}
			for _, n := range batch {
				delete(used, n)
			}
		default:
			batch := make([]int, 0, 3)
			for len(batch) < 1+r.Intn(3) {
				if n := r.Intn(topo.host.HostNodes()); !used[n] {
					used[n] = true
					batch = append(batch, n)
				}
			}
			code, _ := doJSON(t, "POST", base+"/faults", mutationRequest{Nodes: batch}, nil)
			switch code {
			case 200:
				live = append(live, batch)
			case 422:
				if code, _ := doJSON(t, "DELETE", base+"/faults", mutationRequest{Nodes: batch}, nil); code != 200 {
					t.Fatalf("step %d: heal rejected batch -> %d", step, code)
				}
				for _, n := range batch {
					delete(used, n)
				}
			default:
				t.Fatalf("step %d: add -> %d", step, code)
			}
		}
		probe(fmt.Sprintf("step %d", step))
	}

	// since == head: an empty delta that applies to the identity.
	code, body := wireGet(t, fmt.Sprintf("%s/embedding?since=%d", base, head.Generation))
	if code != 200 {
		t.Fatalf("since=head: %d", code)
	}
	d, err := wire.DecodeDelta(body)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Cols) != 0 || d.FromGeneration != head.Generation || d.ToGeneration != head.Generation {
		t.Fatalf("since=head delta: %d cols, %d..%d", len(d.Cols), d.FromGeneration, d.ToGeneration)
	}
	if got, err := wire.Apply(head, d); err != nil || !reflect.DeepEqual(got, head) {
		t.Fatalf("since=head apply: %v", err)
	}

	// The JSON rendering of a served delta agrees with the binary one.
	if g := head.Generation - 1; expectDeltaServed(topo.snap.Load(), g) {
		_, wireBody := wireGet(t, fmt.Sprintf("%s/embedding?since=%d", base, g))
		wd, err := wire.DecodeDelta(wireBody)
		if err != nil {
			t.Fatal(err)
		}
		var jd deltaResponse
		if code, _ := doJSON(t, "GET", fmt.Sprintf("%s/embedding?since=%d", base, g), nil, &jd); code != 200 {
			t.Fatalf("JSON delta: %d", code)
		}
		if jd.FromGeneration != wd.FromGeneration || jd.Generation != wd.ToGeneration ||
			len(jd.Cols) != len(wd.Cols) || jd.Checksum != fmt.Sprintf("%016x", wd.Checksum) {
			t.Fatalf("JSON delta disagrees with wire delta: %+v vs %+v", jd, wd)
		}
		for i, cu := range wd.Cols {
			if jd.Cols[i].Col != cu.Col || !reflect.DeepEqual(jd.Cols[i].Vals, cu.Vals) {
				t.Fatalf("JSON delta column %d disagrees", cu.Col)
			}
		}
	}

	// Boundary statuses: a future generation, a negative one, and
	// unparsable input are caller errors, not resyncs.
	for _, since := range []string{
		fmt.Sprint(head.Generation + 1),
		"-1",
		"abc",
		"1.5",
	} {
		if code, body := wireGet(t, base+"/embedding?since="+since); code != 400 {
			t.Errorf("since=%s: status %d (%s), want 400", since, code, body)
		}
	}

	// The delta traffic drove both outcome counters and they are exposed.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	for _, want := range []string{
		`ftnetd_delta_requests_total{topology="main",outcome="served"}`,
		`ftnetd_delta_requests_total{topology="main",outcome="resync"}`,
		`ftnetd_watchers{topology="main"} 0`,
	} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	if topo.metrics.deltaServed.Load() == 0 || topo.metrics.deltaResync.Load() == 0 {
		t.Errorf("delta outcome counters: served=%d resync=%d, want both > 0",
			topo.metrics.deltaServed.Load(), topo.metrics.deltaResync.Load())
	}
}

// TestDeltaRingConfig pins the DeltaRing boundary semantics: negative
// rejected, zero resolved to the default, positive passed through.
func TestDeltaRingConfig(t *testing.T) {
	base := Config{Topologies: []TopologyConfig{{ID: "a", D: 2, MinSide: 64, MaxEps: 0.5}}}

	bad := base
	bad.DeltaRing = -1
	if err := bad.Validate(); err == nil {
		t.Error("DeltaRing=-1 accepted")
	}
	zero := base
	if err := zero.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := zero.deltaRing(); got != DefaultDeltaRing {
		t.Errorf("deltaRing() with zero config = %d, want %d", got, DefaultDeltaRing)
	}
	one := base
	one.DeltaRing = 1
	if err := one.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := one.deltaRing(); got != 1 {
		t.Errorf("deltaRing() = %d, want 1", got)
	}
}

// TestDeltaRingOne is the smallest eviction case: with a single-record
// ring only since=head-1 (and the trivial since=head) are answerable.
func TestDeltaRingOne(t *testing.T) {
	_, ts := startServer(t, testConfig(t, func(c *Config) { c.DeltaRing = 1 }))
	base := ts.URL + "/v1/topologies/main"

	for _, n := range []int{3, 5, 9} {
		if code, _ := doJSON(t, "POST", base+"/faults", mutationRequest{Nodes: []int{n}}, nil); code != 200 {
			t.Fatalf("add %d: %d", n, code)
		}
	}
	head := fetchFullWire(t, base)
	if code, _ := wireGet(t, fmt.Sprintf("%s/embedding?since=%d", base, head.Generation-1)); code != 200 {
		t.Errorf("since=head-1 with ring 1: %d, want 200", code)
	}
	if code, _ := wireGet(t, fmt.Sprintf("%s/embedding?since=%d", base, head.Generation-2)); code != http.StatusGone {
		t.Errorf("since=head-2 with ring 1: %d, want 410", code)
	}
}
