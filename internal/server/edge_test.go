package server

import (
	"net/http/httptest"
	"strconv"
	"testing"

	"ftnet"
)

// hostEdges returns count distinct host edges incident to spread-out
// anchor nodes, as canonical {u, v} pairs.
func hostEdges(t *testing.T, topo *topology, count int) [][2]int {
	t.Helper()
	n := topo.host.HostNodes()
	out := make([][2]int, 0, count)
	for i := 0; len(out) < count; i++ {
		u := (i*7919 + 13) % (n - 1)
		for v := u + 1; v < n; v++ {
			if topo.ses.Adjacent(u, v) {
				out = append(out, [2]int{u, v})
				break
			}
		}
	}
	return out
}

func TestServeEdgeFaults(t *testing.T) {
	srv, ts := startServer(t, testConfig(t, nil))
	topo := srv.topos["main"]
	edges := hostEdges(t, topo, 3)

	// A synchronous edge-fault report returns the covering evaluation.
	var st stateResponse
	code, _ := doJSON(t, "POST", ts.URL+"/v1/topologies/main/edge-faults", edgeMutationRequest{Edges: edges}, &st)
	if code != 200 {
		t.Fatalf("POST edge-faults: %d %+v", code, st)
	}
	if st.Generation < 1 || st.EdgeFaultCount != 3 || st.FaultCount != 0 {
		t.Fatalf("state after edge add: %+v", st)
	}

	// The served embedding lists the edges and is bit-identical to an
	// independent session evaluating the same edge-fault set.
	var emb embeddingResponse
	code, _ = doJSON(t, "GET", ts.URL+"/v1/topologies/main/embedding", nil, &emb)
	if code != 200 || len(emb.EdgeFaults) != 3 || len(emb.Faults) != 0 {
		t.Fatalf("GET embedding: %d faults=%v edges=%v", code, emb.Faults, emb.EdgeFaults)
	}
	for _, e := range emb.EdgeFaults {
		if e[0] >= e[1] {
			t.Fatalf("served edge %v not canonical", e)
		}
	}
	host, err := ftnet.NewRandomFaultTorus(2, 64, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	ses := host.NewSession()
	if err := ses.AddEdgeFaultsChecked(edges...); err != nil {
		t.Fatal(err)
	}
	want, err := ses.Reembed()
	if err != nil {
		t.Fatal(err)
	}
	if len(want.Map) != len(emb.Map) {
		t.Fatalf("map sizes: got %d want %d", len(emb.Map), len(want.Map))
	}
	for i := range want.Map {
		if want.Map[i] != emb.Map[i] {
			t.Fatalf("map differs from independent edge-charged session at %d", i)
		}
	}

	// The JSON delta carries the head edge-fault set too.
	var d deltaResponse
	code, _ = doJSON(t, "GET", ts.URL+"/v1/topologies/main/embedding?since="+itoa(st.Generation), nil, &d)
	if code != 200 || len(d.EdgeFaults) != 3 {
		t.Fatalf("GET delta: %d edges=%v", code, d.EdgeFaults)
	}

	// All-or-nothing: a batch with one invalid edge applies nothing.
	n := topo.host.HostNodes()
	bad := [][2]int{
		{edges[0][0], edges[0][1]}, // valid, but must not slip through
		{7, 7},                     // self-loop
	}
	code, body := doJSON(t, "POST", ts.URL+"/v1/topologies/main/edge-faults", edgeMutationRequest{Edges: bad}, nil)
	if code != 400 {
		t.Fatalf("self-loop batch: %d %s", code, body)
	}
	for _, tc := range []struct {
		name  string
		edges [][2]int
	}{
		{"out of range", [][2]int{{0, n}}},
		{"negative endpoint", [][2]int{{-1, 3}}},
		{"non-adjacent", [][2]int{nonAdjacentPair(t, topo)}},
		{"empty batch", nil},
	} {
		code, body := doJSON(t, "POST", ts.URL+"/v1/topologies/main/edge-faults", edgeMutationRequest{Edges: tc.edges}, nil)
		if code != 400 {
			t.Fatalf("%s: %d %s", tc.name, code, body)
		}
	}
	var info topologyInfo
	doJSON(t, "GET", ts.URL+"/v1/topologies/main", nil, &info)
	if info.EdgeFaults != 3 {
		t.Fatalf("rejected batches mutated state: %+v", info)
	}

	// Repair: DELETE clears, and the embedding heals back to the
	// fault-free default.
	code, _ = doJSON(t, "DELETE", ts.URL+"/v1/topologies/main/edge-faults", edgeMutationRequest{Edges: edges}, &st)
	if code != 200 || st.EdgeFaultCount != 0 {
		t.Fatalf("DELETE edge-faults: %d %+v", code, st)
	}
	var healed embeddingResponse
	doJSON(t, "GET", ts.URL+"/v1/topologies/main/embedding", nil, &healed)
	empty, err := host.Extract(host.NewFaults())
	if err != nil {
		t.Fatal(err)
	}
	for i := range empty.Map {
		if empty.Map[i] != healed.Map[i] {
			t.Fatalf("healed map differs from fault-free Extract at %d", i)
		}
	}
}

// nonAdjacentPair returns two in-range nodes with no host edge.
func nonAdjacentPair(t *testing.T, topo *topology) [2]int {
	t.Helper()
	n := topo.host.HostNodes()
	for v := n - 1; v > 0; v-- {
		if !topo.ses.Adjacent(0, v) {
			return [2]int{0, v}
		}
	}
	t.Fatal("host is a complete graph?")
	return [2]int{}
}

func itoa(v int64) string {
	return strconv.FormatInt(v, 10)
}

// TestServeEdgeSnapshotRestore verifies the full persistence loop for a
// mixed node+edge population: snapshot, restart, bit-identical replay.
func TestServeEdgeSnapshotRestore(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig(t, func(c *Config) { c.SnapshotDir = dir })

	srv1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(srv1.Handler())
	edges := hostEdges(t, srv1.topos["main"], 2)
	var st stateResponse
	code, _ := doJSON(t, "POST", ts1.URL+"/v1/topologies/main/faults", mutationRequest{Nodes: []int{5, 1234}}, &st)
	if code != 200 {
		t.Fatalf("POST faults: %d", code)
	}
	code, _ = doJSON(t, "POST", ts1.URL+"/v1/topologies/main/edge-faults", edgeMutationRequest{Edges: edges}, &st)
	if code != 200 || st.EdgeFaultCount != 2 || st.FaultCount != 2 {
		t.Fatalf("POST edge-faults: %d %+v", code, st)
	}
	code, _ = doJSON(t, "POST", ts1.URL+"/v1/topologies/main/snapshot", nil, &st)
	if code != 200 {
		t.Fatalf("POST snapshot: %d", code)
	}
	var emb1 embeddingResponse
	doJSON(t, "GET", ts1.URL+"/v1/topologies/main/embedding", nil, &emb1)
	ts1.Close()
	if err := srv1.Close(); err != nil {
		t.Fatal(err)
	}

	srv2, ts2 := startServer(t, cfg)
	var emb2 embeddingResponse
	doJSON(t, "GET", ts2.URL+"/v1/topologies/main/embedding", nil, &emb2)
	if emb2.Generation != emb1.Generation || emb2.Checksum != emb1.Checksum {
		t.Fatalf("restored state: gen=%d checksum=%s, want gen=%d checksum=%s",
			emb2.Generation, emb2.Checksum, emb1.Generation, emb1.Checksum)
	}
	if len(emb2.EdgeFaults) != 2 || len(emb2.Faults) != 2 {
		t.Fatalf("restored fault sets: faults=%v edges=%v", emb2.Faults, emb2.EdgeFaults)
	}
	for i, e := range emb1.EdgeFaults {
		if emb2.EdgeFaults[i] != e {
			t.Fatalf("restored edge set differs: %v != %v", emb2.EdgeFaults, emb1.EdgeFaults)
		}
	}
	for i := range emb1.Map {
		if emb1.Map[i] != emb2.Map[i] {
			t.Fatalf("restored embedding differs at %d", i)
		}
	}
	if srv2.topos["main"].metrics.restored.Load() != 1 {
		t.Fatal("restored gauge not set")
	}
}

// TestServeEdgeSnapshotUncommittedClear pins the null-versus-empty
// session_faults distinction: clearing every committed fault without a
// successful re-commit must survive a snapshot + restart (an omitted
// field would read as "same as committed" and resurrect the faults).
func TestServeEdgeSnapshotUncommittedClear(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig(t, func(c *Config) {
		c.SnapshotDir = dir
		c.FlushInterval = 0
		c.MaxBatchCols = 1 << 20
	})
	srv1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(srv1.Handler())
	edges := hostEdges(t, srv1.topos["main"], 1)

	// Commit one node fault and one edge fault.
	var st stateResponse
	if code, _ := doJSON(t, "POST", ts1.URL+"/v1/topologies/main/faults", mutationRequest{Nodes: []int{17}}, &st); code != 200 {
		t.Fatalf("add: %d", code)
	}
	if code, _ := doJSON(t, "POST", ts1.URL+"/v1/topologies/main/edge-faults", edgeMutationRequest{Edges: edges}, &st); code != 200 {
		t.Fatalf("edge add: %d", code)
	}
	// Clear both asynchronously: recorded in the session, never evaluated.
	if code, _ := doJSON(t, "DELETE", ts1.URL+"/v1/topologies/main/faults?wait=0", mutationRequest{Nodes: []int{17}}, nil); code != 202 {
		t.Fatal("async clear not accepted")
	}
	if code, _ := doJSON(t, "DELETE", ts1.URL+"/v1/topologies/main/edge-faults?wait=0", edgeMutationRequest{Edges: edges}, nil); code != 202 {
		t.Fatal("async edge clear not accepted")
	}
	waitFor(t, "pending clears applied", func() bool {
		// Only the writer-published views are safe to read from here.
		f := srv1.topos["main"].curFaults.Load()
		e := srv1.topos["main"].curEdges.Load()
		return f != nil && len(*f) == 0 && e != nil && len(*e) == 0
	})
	if code, _ := doJSON(t, "POST", ts1.URL+"/v1/topologies/main/snapshot", nil, &st); code != 200 {
		t.Fatal("snapshot failed")
	}
	ts1.Close()
	if err := srv1.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart: the clears must still be pending; a flush commits the
	// fault-free state.
	srv2, ts2 := startServer(t, cfg)
	if code, _ := doJSON(t, "POST", ts2.URL+"/v1/topologies/main/reembed", nil, &st); code != 200 {
		t.Fatalf("reembed after restore: %d", code)
	}
	if st.FaultCount != 0 || st.EdgeFaultCount != 0 {
		t.Fatalf("uncommitted clears lost across restart: %+v", st)
	}
	_ = srv2
}
