package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"ftnet/internal/fterr"
	"ftnet/internal/wire"
)

// TestErrorTaxonomyExhaustive enumerates every code in the taxonomy
// through the server's single error choke point (writeErr) and asserts
// the full mechanical contract: code -> HTTP status, the typed JSON
// body {code, message, retryable, resync_from} plus the legacy "error"
// key, and the per-code ftnetd_errors_total series. A code added to
// fterr without a deliberate status mapping fails here, not in
// production.
func TestErrorTaxonomyExhaustive(t *testing.T) {
	srv, ts := startServer(t, testConfig(t, nil))

	wantStatus := map[fterr.Code]int{
		fterr.Invalid:        400,
		fterr.Corrupt:        400,
		fterr.NotFound:       404,
		fterr.Conflict:       409,
		fterr.ResyncRequired: 410,
		fterr.NotTolerated:   422,
		fterr.Unavailable:    503,
		fterr.Internal:       500,
		fterr.Unknown:        500,
	}
	wantRetryable := map[fterr.Code]bool{
		fterr.Unavailable:    true,
		fterr.Internal:       true,
		fterr.ResyncRequired: true,
		fterr.Corrupt:        true,
	}
	if len(wantStatus) != len(fterr.AllCodes()) {
		t.Fatalf("taxonomy has %d codes but this test maps %d: extend the tables",
			len(fterr.AllCodes()), len(wantStatus))
	}

	for _, code := range fterr.AllCodes() {
		rec := httptest.NewRecorder()
		srv.writeErr(rec, fterr.New(code, "test", "synthetic %s failure", code))

		if rec.Code != wantStatus[code] {
			t.Errorf("%s: status %d, want %d", code, rec.Code, wantStatus[code])
		}
		if rec.Code != code.HTTPStatus() {
			t.Errorf("%s: writeErr status %d disagrees with Code.HTTPStatus %d",
				code, rec.Code, code.HTTPStatus())
		}
		if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
			t.Errorf("%s: content type %q, want application/json", code, ct)
		}

		// Decode into a raw map as a real non-SDK client would: field
		// names, not Go struct tags, are the contract under test.
		var body map[string]any
		if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
			t.Fatalf("%s: body not JSON: %v", code, err)
		}
		if got := body["code"]; got != string(code) {
			t.Errorf("%s: body code %v", code, got)
		}
		msg, _ := body["message"].(string)
		if !strings.Contains(msg, "synthetic "+string(code)) {
			t.Errorf("%s: body message %q lost the failure text", code, msg)
		}
		if body["error"] != body["message"] {
			t.Errorf("%s: legacy error key %v != message %v", code, body["error"], body["message"])
		}
		gotRetry, _ := body["retryable"].(bool)
		if gotRetry != wantRetryable[code] {
			t.Errorf("%s: body retryable %v, want %v", code, gotRetry, wantRetryable[code])
		}
		if gotRetry != code.Retryable() {
			t.Errorf("%s: body retryable disagrees with Code.Retryable %v", code, code.Retryable())
		}
		if _, present := body["resync_from"]; present {
			t.Errorf("%s: resync_from present on a non-resync response", code)
		}
	}

	// Off-taxonomy codes (a future server release, a corrupted body)
	// degrade to the conservative defaults: 500, terminal.
	rec := httptest.NewRecorder()
	srv.writeErr(rec, fterr.New(fterr.Code("quota_exceeded_v9"), "test", "novel"))
	if rec.Code != 500 {
		t.Errorf("off-taxonomy code: status %d, want 500", rec.Code)
	}
	var novel fterr.Wire
	if err := json.Unmarshal(rec.Body.Bytes(), &novel); err != nil || novel.Retryable {
		t.Errorf("off-taxonomy code: body %+v err %v, want non-retryable", novel, err)
	}

	// Every write above went through the metrics choke point: the
	// exposition must show a positive series per taxonomy code (the
	// off-taxonomy write folds into unknown).
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics := readBody(t, resp)
	resp.Body.Close()
	for _, code := range fterr.AllCodes() {
		series := fmt.Sprintf("ftnetd_errors_total{code=%q} ", string(code))
		i := strings.Index(metrics, series)
		if i < 0 {
			t.Errorf("metrics: series for %s missing", code)
			continue
		}
		rest := metrics[i+len(series):]
		if nl := strings.IndexByte(rest, '\n'); nl >= 0 {
			rest = rest[:nl]
		}
		if rest == "0" {
			t.Errorf("metrics: ftnetd_errors_total{code=%q} still 0 after writeErr", code)
		}
	}
}

func readBody(t *testing.T, resp *http.Response) string {
	t.Helper()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// TestErrorPathResyncFrom drives the real 410 path end to end: with a
// one-slot delta ring, any ?since= older than the head's immediate
// predecessor is unbridgeable, and the typed body must carry
// resync_from naming exactly the head generation the client should
// full-fetch — which must then succeed.
func TestErrorPathResyncFrom(t *testing.T) {
	_, ts := startServer(t, testConfig(t, func(c *Config) { c.DeltaRing = 1 }))

	// Three committed generations; the ring only bridges head-1 -> head.
	var st stateResponse
	for i, node := range []int{11, 222, 3333} {
		if code, _ := doJSON(t, "POST", ts.URL+"/v1/topologies/main/faults",
			mutationRequest{Nodes: []int{node}}, &st); code != 200 {
			t.Fatalf("mutation %d: status %d", i, code)
		}
	}
	head := st.Generation
	if head < 3 {
		t.Fatalf("expected >= 3 generations, head is %d", head)
	}

	resp, err := http.Get(ts.URL + fmt.Sprintf("/v1/topologies/main/embedding?since=%d", head-2))
	if err != nil {
		t.Fatal(err)
	}
	body := readBody(t, resp)
	resp.Body.Close()
	if resp.StatusCode != 410 {
		t.Fatalf("evicted since: status %d, want 410 (body %s)", resp.StatusCode, body)
	}
	var w fterr.Wire
	if err := json.Unmarshal([]byte(body), &w); err != nil {
		t.Fatalf("410 body not typed: %v (%s)", err, body)
	}
	if w.Code != fterr.ResyncRequired || !w.Retryable {
		t.Fatalf("410 typed body: %+v, want resync_required/retryable", w)
	}
	if w.ResyncFrom != head {
		t.Fatalf("410 resync_from %d, want head %d", w.ResyncFrom, head)
	}

	// The prescribed recovery works: a full fetch serves the named head.
	req, _ := http.NewRequest("GET", ts.URL+"/v1/topologies/main/embedding", nil)
	req.Header.Set("Accept", wire.ContentType)
	full, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	raw := readBody(t, full)
	full.Body.Close()
	snap, err := wire.DecodeSnapshot([]byte(raw))
	if err != nil {
		t.Fatalf("full fetch after 410: %v", err)
	}
	if snap.Generation != w.ResyncFrom {
		t.Fatalf("full fetch serves generation %d, resync_from said %d", snap.Generation, w.ResyncFrom)
	}
}
