package server

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"

	"ftnet/internal/fterr"
)

// metricCodes pins the exposition order of ftnetd_errors_total: every
// taxonomy code appears, zero-valued or not, so dashboards and the
// smoke script can rely on the series existing before the first error.
var metricCodes = fterr.AllCodes()

// errCounters counts error responses by fterr code (one atomic per
// taxonomy code; see Server.writeErr).
type errCounters struct {
	counts [16]atomic.Int64 // indexed by position in metricCodes
}

func (e *errCounters) inc(c fterr.Code) {
	idx := -1
	for i, k := range metricCodes {
		if k == c {
			idx = i
			break
		}
		if k == fterr.Unknown {
			idx = i // fallback: off-taxonomy codes count as unknown
		}
	}
	if idx >= 0 {
		e.counts[idx].Add(1)
	}
}

func (e *errCounters) get(c fterr.Code) int64 {
	for i, k := range metricCodes {
		if k == c {
			return e.counts[i].Load()
		}
	}
	return 0
}

// topoMetrics is the per-topology instrument set, updated by the
// topology's writer goroutine and read lock-free by GET /metrics.
type topoMetrics struct {
	reembedOK       atomic.Int64 // successful commits
	reembedNotTol   atomic.Int64 // ErrNotTolerated outcomes
	reembedErr      atomic.Int64 // internal errors
	reembedNanos    atomic.Int64 // total wall time spent in Reembed
	batchMutations  atomic.Int64 // mutation requests covered by all evals
	batchNodes      atomic.Int64 // node indices covered by all evals
	faults          atomic.Int64 // gauge: committed fault population
	edgeFaults      atomic.Int64 // gauge: committed edge-fault population
	pendingRequests atomic.Int64 // gauge: mutations applied but not yet evaluated
	generation      atomic.Int64 // gauge: committed embedding generation
	restored        atomic.Int64 // gauge: 1 when state came from a snapshot file
	watchers        atomic.Int64 // gauge: connected watch subscribers
	watchEvents     atomic.Int64 // events streamed to watch subscribers
	deltaServed     atomic.Int64 // ?since= requests answered with a diff
	deltaResync     atomic.Int64 // ?since= requests refused with 410 (evicted)
}

func (m *topoMetrics) evals() int64 {
	return m.reembedOK.Load() + m.reembedNotTol.Load() + m.reembedErr.Load()
}

// writeMetrics renders every topology's instruments in the Prometheus
// text exposition format (hand-rolled: the repo takes no dependencies).
func writeMetrics(b *strings.Builder, s *Server) {
	topos := s.topos
	ids := make([]string, 0, len(topos))
	for id := range topos {
		ids = append(ids, id)
	}
	sort.Strings(ids)

	// Error responses by taxonomy code; every code is pre-registered so
	// a zero series proves the counter exists (daemon_smoke greps these).
	fmt.Fprintf(b, "# HELP ftnetd_errors_total Error responses by fterr code.\n# TYPE ftnetd_errors_total counter\n")
	for _, c := range metricCodes {
		fmt.Fprintf(b, "ftnetd_errors_total{code=%q} %d\n", string(c), s.errs.get(c))
	}
	if s.chaos != nil {
		s.chaos.writeMetrics(b)
	}

	fmt.Fprintf(b, "# HELP ftnetd_reembed_total Reembed evaluations by outcome.\n# TYPE ftnetd_reembed_total counter\n")
	for _, id := range ids {
		m := topos[id].metrics
		fmt.Fprintf(b, "ftnetd_reembed_total{topology=%q,outcome=\"ok\"} %d\n", id, m.reembedOK.Load())
		fmt.Fprintf(b, "ftnetd_reembed_total{topology=%q,outcome=\"not_tolerated\"} %d\n", id, m.reembedNotTol.Load())
		fmt.Fprintf(b, "ftnetd_reembed_total{topology=%q,outcome=\"error\"} %d\n", id, m.reembedErr.Load())
	}

	// Sum/count pairs are exposed as summaries (the only scalar type
	// whose _sum/_count suffixes strict OpenMetrics parsers accept).
	fmt.Fprintf(b, "# HELP ftnetd_reembed_latency_seconds Wall time spent in Reembed (sum) over evaluations (count).\n# TYPE ftnetd_reembed_latency_seconds summary\n")
	for _, id := range ids {
		m := topos[id].metrics
		fmt.Fprintf(b, "ftnetd_reembed_latency_seconds_sum{topology=%q} %g\n", id, float64(m.reembedNanos.Load())/1e9)
		fmt.Fprintf(b, "ftnetd_reembed_latency_seconds_count{topology=%q} %d\n", id, m.evals())
	}

	// Batch sizes: the batching win is visible as sum/count >> 1 under
	// concurrent load.
	fmt.Fprintf(b, "# HELP ftnetd_batch_mutations Mutation requests coalesced per evaluation.\n# TYPE ftnetd_batch_mutations summary\n")
	for _, id := range ids {
		m := topos[id].metrics
		fmt.Fprintf(b, "ftnetd_batch_mutations_sum{topology=%q} %d\n", id, m.batchMutations.Load())
		fmt.Fprintf(b, "ftnetd_batch_mutations_count{topology=%q} %d\n", id, m.evals())
	}
	fmt.Fprintf(b, "# HELP ftnetd_batch_nodes Node indices coalesced per evaluation.\n# TYPE ftnetd_batch_nodes summary\n")
	for _, id := range ids {
		m := topos[id].metrics
		fmt.Fprintf(b, "ftnetd_batch_nodes_sum{topology=%q} %d\n", id, m.batchNodes.Load())
		fmt.Fprintf(b, "ftnetd_batch_nodes_count{topology=%q} %d\n", id, m.evals())
	}

	fmt.Fprintf(b, "# HELP ftnetd_delta_requests_total Embedding ?since= requests by outcome.\n# TYPE ftnetd_delta_requests_total counter\n")
	for _, id := range ids {
		m := topos[id].metrics
		fmt.Fprintf(b, "ftnetd_delta_requests_total{topology=%q,outcome=\"served\"} %d\n", id, m.deltaServed.Load())
		fmt.Fprintf(b, "ftnetd_delta_requests_total{topology=%q,outcome=\"resync\"} %d\n", id, m.deltaResync.Load())
	}
	fmt.Fprintf(b, "# HELP ftnetd_watch_events_total Events streamed to watch subscribers.\n# TYPE ftnetd_watch_events_total counter\n")
	for _, id := range ids {
		fmt.Fprintf(b, "ftnetd_watch_events_total{topology=%q} %d\n", id, topos[id].metrics.watchEvents.Load())
	}

	gauge := func(name, help string, val func(*topoMetrics) int64) {
		fmt.Fprintf(b, "# HELP %s %s\n# TYPE %s gauge\n", name, help, name)
		for _, id := range ids {
			fmt.Fprintf(b, "%s{topology=%q} %d\n", name, id, val(topos[id].metrics))
		}
	}
	gauge("ftnetd_faults", "Committed fault population.",
		func(m *topoMetrics) int64 { return m.faults.Load() })
	gauge("ftnetd_edge_faults", "Committed edge-fault population.",
		func(m *topoMetrics) int64 { return m.edgeFaults.Load() })
	gauge("ftnetd_pending_mutations", "Mutations applied to the session but not yet evaluated.",
		func(m *topoMetrics) int64 { return m.pendingRequests.Load() })
	gauge("ftnetd_embedding_generation", "Generation of the served embedding snapshot.",
		func(m *topoMetrics) int64 { return m.generation.Load() })
	gauge("ftnetd_restored_from_snapshot", "1 when the topology state was restored from a snapshot file at startup.",
		func(m *topoMetrics) int64 { return m.restored.Load() })
	gauge("ftnetd_watchers", "Connected watch subscribers.",
		func(m *topoMetrics) int64 { return m.watchers.Load() })
}
