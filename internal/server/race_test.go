package server

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"ftnet"
	"ftnet/internal/rng"
	"ftnet/internal/wire"
)

// TestServeConcurrencyContract is the daemon's -race contract test: N
// goroutines hammer fault POSTs, repair DELETEs and embedding GETs on
// one topology while the writer batches, and the PR-6 read paths ride
// along: binary ?since= delta chasers that reconstruct the head by
// wire.Apply, and /watch SSE subscribers. Every embedding snapshot any
// reader observes — full, delta-reconstructed, or streamed as an event
// — must verify bit-identically against a from-scratch Extract of
// exactly the fault set it reports it was committed with — the
// wire-level restatement of the engine's golden equivalence guarantee.
// Per watch subscriber, commit generations must arrive contiguously:
// none skipped, none duplicated, gaps only ever declared by an explicit
// resync event.
func TestServeConcurrencyContract(t *testing.T) {
	srv, ts := startServer(t, testConfig(t, nil))
	topo := srv.topos["main"]
	hostNodes := topo.host.HostNodes()

	const (
		writers      = 6
		readers      = 4
		deltaReaders = 3
		watchSubs    = 3
		writerOps    = 25
		readerOps    = 25
	)
	type observed struct {
		faults   []int
		mapHash  uint64
		checksum string
		m        []int
	}
	var (
		mu   sync.Mutex
		seen = make(map[int64]observed) // generation -> first observation
	)
	note := func(emb embeddingResponse) {
		mu.Lock()
		defer mu.Unlock()
		if prev, ok := seen[emb.Generation]; ok {
			// Same generation observed twice must be the same state.
			if prev.checksum != emb.Checksum {
				t.Errorf("generation %d served with two checksums: %s vs %s", emb.Generation, prev.checksum, emb.Checksum)
			}
			return
		}
		seen[emb.Generation] = observed{
			faults:   emb.Faults,
			mapHash:  MapChecksum(emb.Map),
			checksum: emb.Checksum,
			m:        emb.Map,
		}
	}
	// noteWire records a state reconstructed over the binary wire.
	noteWire := func(s *wire.Snapshot) {
		mu.Lock()
		defer mu.Unlock()
		checksum := fmt.Sprintf("%016x", s.Checksum)
		if prev, ok := seen[s.Generation]; ok {
			if prev.checksum != checksum {
				t.Errorf("generation %d served with two checksums: %s vs %s", s.Generation, prev.checksum, checksum)
			}
			return
		}
		seen[s.Generation] = observed{
			faults:   s.Faults,
			mapHash:  wire.Checksum(s.Map),
			checksum: checksum,
			m:        s.Map,
		}
	}
	// noteMeta records a generation known only by checksum + fault set
	// (a watch event); the final sweep re-derives its map from scratch.
	noteMeta := func(gen int64, checksum string, faults []int) {
		mu.Lock()
		defer mu.Unlock()
		if prev, ok := seen[gen]; ok {
			if prev.checksum != checksum {
				t.Errorf("generation %d served with two checksums: %s vs %s", gen, prev.checksum, checksum)
			}
			return
		}
		var h uint64
		if _, err := fmt.Sscanf(checksum, "%016x", &h); err != nil {
			t.Errorf("generation %d: unparsable checksum %q", gen, checksum)
			return
		}
		seen[gen] = observed{faults: faults, mapHash: h, checksum: checksum}
	}

	// Watch subscribers connect before any churn so the baseline is
	// cheap, and stay connected until the writers are done and the head
	// has been streamed to everyone.
	type watchEv struct {
		name string
		ev   watchEvent
	}
	var (
		watchMu     sync.Mutex
		watchEvents = make([][]watchEv, watchSubs)
	)
	watchCtx, cancelWatch := context.WithCancel(context.Background())
	defer cancelWatch()
	var watchWg sync.WaitGroup
	for s := 0; s < watchSubs; s++ {
		watchWg.Add(1)
		go func(s int) {
			defer watchWg.Done()
			req, err := http.NewRequestWithContext(watchCtx, "GET", ts.URL+"/v1/topologies/main/watch", nil)
			if err != nil {
				t.Errorf("watch %d: %v", s, err)
				return
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Errorf("watch %d: connect: %v", s, err)
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != 200 || resp.Header.Get("Content-Type") != "text/event-stream" {
				t.Errorf("watch %d: %d %s", s, resp.StatusCode, resp.Header.Get("Content-Type"))
				return
			}
			sc := bufio.NewScanner(resp.Body)
			sc.Buffer(make([]byte, 1<<20), 1<<20)
			var name string
			for sc.Scan() {
				line := sc.Text()
				switch {
				case strings.HasPrefix(line, "event: "):
					name = strings.TrimPrefix(line, "event: ")
				case strings.HasPrefix(line, "data: "):
					var ev watchEvent
					if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
						t.Errorf("watch %d: bad event payload: %v", s, err)
						return
					}
					watchMu.Lock()
					watchEvents[s] = append(watchEvents[s], watchEv{name, ev})
					watchMu.Unlock()
				}
			}
		}(s)
	}
	// All subscribers must deliver their baseline before churn starts,
	// so "first event is a commit for generation 0" is deterministic.
	waitFor(t, "watch baselines", func() bool {
		watchMu.Lock()
		defer watchMu.Unlock()
		for _, evs := range watchEvents {
			if len(evs) == 0 {
				return false
			}
		}
		return true
	})

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := rng.NewPCG(77, uint64(w))
			var mine []int
			for i := 0; i < writerOps; i++ {
				// 422 is a legitimate outcome here: a random pattern may
				// genuinely exceed the construction's tolerance. The report
				// is still recorded (reality does not roll back), the last
				// good snapshot keeps being served, and the serving
				// contract below is what the readers verify.
				if len(mine) > 0 && r.Float64() < 0.35 {
					v := mine[len(mine)-1]
					mine = mine[:len(mine)-1]
					var st stateResponse
					code, body := doJSON(t, "DELETE", ts.URL+"/v1/topologies/main/faults",
						mutationRequest{Nodes: []int{v}}, &st)
					if code != 200 && code != 422 {
						t.Errorf("writer %d: DELETE %d: %d %s", w, v, code, body)
						return
					}
					continue
				}
				v := r.Intn(hostNodes)
				var st stateResponse
				code, body := doJSON(t, "POST", ts.URL+"/v1/topologies/main/faults",
					mutationRequest{Nodes: []int{v}}, &st)
				if code != 200 && code != 422 {
					t.Errorf("writer %d: POST %d: %d %s", w, v, code, body)
					return
				}
				mine = append(mine, v)
			}
		}(w)
	}
	for rd := 0; rd < readers; rd++ {
		wg.Add(1)
		go func(rd int) {
			defer wg.Done()
			for i := 0; i < readerOps; i++ {
				var emb embeddingResponse
				code, _ := doJSON(t, "GET", ts.URL+"/v1/topologies/main/embedding", nil, &emb)
				if code != 200 {
					t.Errorf("reader %d: GET embedding: %d", rd, code)
					return
				}
				note(emb)
			}
		}(rd)
	}
	for rd := 0; rd < deltaReaders; rd++ {
		wg.Add(1)
		go func(rd int) {
			defer wg.Done()
			// A delta chaser: holds the last reconstructed snapshot and
			// advances it by ?since= deltas, refetching the full state on
			// 410. Every reconstructed state goes through the same golden
			// verification as the full-read observations.
			var cur *wire.Snapshot
			for i := 0; i < readerOps; i++ {
				url := ts.URL + "/v1/topologies/main/embedding"
				if cur != nil {
					url = fmt.Sprintf("%s?since=%d", url, cur.Generation)
				}
				code, body := wireGet(t, url)
				switch {
				case code == http.StatusGone:
					cur = nil // evicted: resync from full on the next turn
				case code != 200:
					t.Errorf("delta reader %d: GET: %d %s", rd, code, body)
					return
				case cur == nil:
					snap, err := wire.DecodeSnapshot(body)
					if err != nil {
						t.Errorf("delta reader %d: decode full: %v", rd, err)
						return
					}
					cur = snap
					noteWire(cur)
				default:
					d, err := wire.DecodeDelta(body)
					if err != nil {
						t.Errorf("delta reader %d: decode delta: %v", rd, err)
						return
					}
					next, err := wire.Apply(cur, d)
					if err != nil {
						t.Errorf("delta reader %d: apply %d..%d: %v",
							rd, d.FromGeneration, d.ToGeneration, err)
						return
					}
					cur = next
					noteWire(cur)
				}
			}
		}(rd)
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	// Let every watch subscriber catch up to the final head, then
	// disconnect them and audit their streams.
	finalGen := topo.snap.Load().Generation
	waitFor(t, "watch streams reaching final head", func() bool {
		watchMu.Lock()
		defer watchMu.Unlock()
		for _, evs := range watchEvents {
			if len(evs) == 0 || evs[len(evs)-1].ev.Generation < finalGen {
				return false
			}
		}
		return true
	})
	cancelWatch()
	watchWg.Wait()
	for s, evs := range watchEvents {
		if evs[0].name != "commit" || evs[0].ev.Generation != 0 {
			t.Fatalf("watch %d: baseline = %s gen %d, want commit gen 0", s, evs[0].name, evs[0].ev.Generation)
		}
		last := evs[0].ev.Generation
		noteMeta(last, evs[0].ev.Checksum, evs[0].ev.Faults)
		for _, e := range evs[1:] {
			switch e.name {
			case "commit":
				// No generation skipped, none repeated: commits advance by
				// exactly one unless an explicit resync declared the gap.
				if e.ev.Generation != last+1 {
					t.Fatalf("watch %d: commit jumped %d -> %d", s, last, e.ev.Generation)
				}
			case "resync":
				if e.ev.Generation <= last {
					t.Fatalf("watch %d: resync moved backwards %d -> %d", s, last, e.ev.Generation)
				}
			default:
				t.Fatalf("watch %d: unknown event %q", s, e.name)
			}
			last = e.ev.Generation
			noteMeta(e.ev.Generation, e.ev.Checksum, e.ev.Faults)
		}
		if last != finalGen {
			t.Fatalf("watch %d: stream ended at generation %d, head %d", s, last, finalGen)
		}
	}
	// Final state too, so at least one nontrivial generation is checked
	// even if the readers raced ahead of the writers.
	var emb embeddingResponse
	doJSON(t, "GET", ts.URL+"/v1/topologies/main/embedding", nil, &emb)
	note(emb)

	// Verify every observed generation against a from-scratch pipeline
	// run of its committed fault set.
	host, err := ftnet.NewRandomFaultTorus(2, 64, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) == 0 {
		t.Fatal("no generations observed")
	}
	for gen, obs := range seen {
		faults := host.NewFaults()
		for _, v := range obs.faults {
			if err := faults.AddChecked(v); err != nil {
				t.Fatalf("generation %d: served fault list invalid: %v", gen, err)
			}
		}
		want, err := host.Extract(faults)
		if err != nil {
			t.Fatalf("generation %d (%d faults): from-scratch Extract failed: %v", gen, faults.Count(), err)
		}
		if got := MapChecksum(want.Map); got != obs.mapHash {
			for i := range want.Map {
				if obs.m != nil && want.Map[i] != obs.m[i] {
					t.Fatalf("generation %d: served embedding differs from from-scratch Extract at guest node %d (%d faults)",
						gen, i, faults.Count())
				}
			}
			t.Fatalf("generation %d: observed checksum does not match from-scratch Extract (%d faults)",
				gen, faults.Count())
		}
		if want := fmt.Sprintf("%016x", obs.mapHash); want != obs.checksum {
			t.Fatalf("generation %d: served checksum %s does not match served map %s", gen, obs.checksum, want)
		}
	}
	t.Logf("verified %d generations; evals=%d for %d mutation posts",
		len(seen), topo.metrics.evals(), writers*writerOps)
}

// TestServeBurstCoalescing pins the batching acceptance bound: k
// concurrent synchronous fault reports against a stretched evaluation
// window trigger at most a small constant number of Evals, observable in
// the metrics, and every report is covered by the evaluation that
// answers it.
func TestServeBurstCoalescing(t *testing.T) {
	srv, ts := startServer(t, testConfig(t, func(c *Config) { c.FlushInterval = -1 }))
	topo := srv.topos["main"]

	// Stretch the eval window so the burst demonstrably piles up behind
	// an in-flight evaluation instead of winning by being faster than
	// the HTTP round trips.
	topo.evalDelay.Store(int64(50 * time.Millisecond))

	const k = 32
	// A well-separated 4x8 grid of faults (>= 3 tiles apart in every
	// dimension), so the pattern stays tolerated at any prefix.
	numCols := topo.numCols
	nodes := make([]int, k)
	for i := range nodes {
		nodes[i] = (i/8*60+5)*numCols + (i%8)*24 + 3
	}
	before := topo.metrics.evals()
	var wg sync.WaitGroup
	errs := make(chan string, k)
	for i := 0; i < k; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var st stateResponse
			code, body := doJSON(t, "POST", ts.URL+"/v1/topologies/main/faults",
				mutationRequest{Nodes: []int{nodes[i]}}, &st)
			if code != 200 {
				errs <- fmt.Sprintf("burst POST %d: %d %s", i, code, body)
				return
			}
			if st.FaultCount == 0 {
				errs <- fmt.Sprintf("burst POST %d: answered by an evaluation that covers no faults", i)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
	evals := topo.metrics.evals() - before
	if evals < 1 || evals > 8 {
		t.Fatalf("burst of %d posts triggered %d evals, want a small constant (1..8)", k, evals)
	}
	var info topologyInfo
	doJSON(t, "GET", ts.URL+"/v1/topologies/main", nil, &info)
	if info.FaultCount != k {
		t.Fatalf("committed faults = %d, want %d", info.FaultCount, k)
	}
	t.Logf("burst of %d posts -> %d evals", k, evals)
}
