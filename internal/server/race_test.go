package server

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"ftnet"
	"ftnet/internal/rng"
)

// TestServeConcurrencyContract is the daemon's -race contract test: N
// goroutines hammer fault POSTs, repair DELETEs and embedding GETs on
// one topology while the writer batches. Every embedding snapshot any
// reader observes must verify bit-identically against a from-scratch
// Extract of exactly the fault set it reports it was committed with —
// the wire-level restatement of the engine's golden equivalence
// guarantee.
func TestServeConcurrencyContract(t *testing.T) {
	srv, ts := startServer(t, testConfig(t, nil))
	topo := srv.topos["main"]
	hostNodes := topo.host.HostNodes()

	const (
		writers   = 6
		readers   = 4
		writerOps = 25
		readerOps = 25
	)
	type observed struct {
		faults   []int
		mapHash  uint64
		checksum string
		m        []int
	}
	var (
		mu   sync.Mutex
		seen = make(map[int64]observed) // generation -> first observation
	)
	note := func(emb embeddingResponse) {
		mu.Lock()
		defer mu.Unlock()
		if prev, ok := seen[emb.Generation]; ok {
			// Same generation observed twice must be the same state.
			if prev.checksum != emb.Checksum {
				t.Errorf("generation %d served with two checksums: %s vs %s", emb.Generation, prev.checksum, emb.Checksum)
			}
			return
		}
		seen[emb.Generation] = observed{
			faults:   emb.Faults,
			mapHash:  MapChecksum(emb.Map),
			checksum: emb.Checksum,
			m:        emb.Map,
		}
	}

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := rng.NewPCG(77, uint64(w))
			var mine []int
			for i := 0; i < writerOps; i++ {
				// 422 is a legitimate outcome here: a random pattern may
				// genuinely exceed the construction's tolerance. The report
				// is still recorded (reality does not roll back), the last
				// good snapshot keeps being served, and the serving
				// contract below is what the readers verify.
				if len(mine) > 0 && r.Float64() < 0.35 {
					v := mine[len(mine)-1]
					mine = mine[:len(mine)-1]
					var st stateResponse
					code, body := doJSON(t, "DELETE", ts.URL+"/v1/topologies/main/faults",
						mutationRequest{Nodes: []int{v}}, &st)
					if code != 200 && code != 422 {
						t.Errorf("writer %d: DELETE %d: %d %s", w, v, code, body)
						return
					}
					continue
				}
				v := r.Intn(hostNodes)
				var st stateResponse
				code, body := doJSON(t, "POST", ts.URL+"/v1/topologies/main/faults",
					mutationRequest{Nodes: []int{v}}, &st)
				if code != 200 && code != 422 {
					t.Errorf("writer %d: POST %d: %d %s", w, v, code, body)
					return
				}
				mine = append(mine, v)
			}
		}(w)
	}
	for rd := 0; rd < readers; rd++ {
		wg.Add(1)
		go func(rd int) {
			defer wg.Done()
			for i := 0; i < readerOps; i++ {
				var emb embeddingResponse
				code, _ := doJSON(t, "GET", ts.URL+"/v1/topologies/main/embedding", nil, &emb)
				if code != 200 {
					t.Errorf("reader %d: GET embedding: %d", rd, code)
					return
				}
				note(emb)
			}
		}(rd)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	// Final state too, so at least one nontrivial generation is checked
	// even if the readers raced ahead of the writers.
	var emb embeddingResponse
	doJSON(t, "GET", ts.URL+"/v1/topologies/main/embedding", nil, &emb)
	note(emb)

	// Verify every observed generation against a from-scratch pipeline
	// run of its committed fault set.
	host, err := ftnet.NewRandomFaultTorus(2, 64, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) == 0 {
		t.Fatal("no generations observed")
	}
	for gen, obs := range seen {
		faults := host.NewFaults()
		for _, v := range obs.faults {
			if err := faults.AddChecked(v); err != nil {
				t.Fatalf("generation %d: served fault list invalid: %v", gen, err)
			}
		}
		want, err := host.Extract(faults)
		if err != nil {
			t.Fatalf("generation %d (%d faults): from-scratch Extract failed: %v", gen, faults.Count(), err)
		}
		if got := MapChecksum(want.Map); got != obs.mapHash {
			for i := range want.Map {
				if want.Map[i] != obs.m[i] {
					t.Fatalf("generation %d: served embedding differs from from-scratch Extract at guest node %d (%d faults)",
						gen, i, faults.Count())
				}
			}
			t.Fatalf("generation %d: map hash mismatch yet maps equal?", gen)
		}
		if want := fmt.Sprintf("%016x", obs.mapHash); want != obs.checksum {
			t.Fatalf("generation %d: served checksum %s does not match served map %s", gen, obs.checksum, want)
		}
	}
	t.Logf("verified %d generations; evals=%d for %d mutation posts",
		len(seen), topo.metrics.evals(), writers*writerOps)
}

// TestServeBurstCoalescing pins the batching acceptance bound: k
// concurrent synchronous fault reports against a stretched evaluation
// window trigger at most a small constant number of Evals, observable in
// the metrics, and every report is covered by the evaluation that
// answers it.
func TestServeBurstCoalescing(t *testing.T) {
	srv, ts := startServer(t, testConfig(t, func(c *Config) { c.FlushInterval = -1 }))
	topo := srv.topos["main"]

	// Stretch the eval window so the burst demonstrably piles up behind
	// an in-flight evaluation instead of winning by being faster than
	// the HTTP round trips.
	topo.evalDelay.Store(int64(50 * time.Millisecond))

	const k = 32
	// A well-separated 4x8 grid of faults (>= 3 tiles apart in every
	// dimension), so the pattern stays tolerated at any prefix.
	numCols := topo.numCols
	nodes := make([]int, k)
	for i := range nodes {
		nodes[i] = (i/8*60+5)*numCols + (i%8)*24 + 3
	}
	before := topo.metrics.evals()
	var wg sync.WaitGroup
	errs := make(chan string, k)
	for i := 0; i < k; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var st stateResponse
			code, body := doJSON(t, "POST", ts.URL+"/v1/topologies/main/faults",
				mutationRequest{Nodes: []int{nodes[i]}}, &st)
			if code != 200 {
				errs <- fmt.Sprintf("burst POST %d: %d %s", i, code, body)
				return
			}
			if st.FaultCount == 0 {
				errs <- fmt.Sprintf("burst POST %d: answered by an evaluation that covers no faults", i)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
	evals := topo.metrics.evals() - before
	if evals < 1 || evals > 8 {
		t.Fatalf("burst of %d posts triggered %d evals, want a small constant (1..8)", k, evals)
	}
	var info topologyInfo
	doJSON(t, "GET", ts.URL+"/v1/topologies/main", nil, &info)
	if info.FaultCount != k {
		t.Fatalf("committed faults = %d, want %d", info.FaultCount, k)
	}
	t.Logf("burst of %d posts -> %d evals", k, evals)
}
