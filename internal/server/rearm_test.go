package server

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"

	"ftnet/internal/wire"
)

// TestAnchorRotationColdRestore is the daemon-level regression for the
// dense-path cliff: a fault that rotates the embedding anchor at a COLD
// evaluation used to drop the session's locality fast path forever, so
// every later commit produced a Full delta — the ring answered every
// ?since= with 410 and watch subscribers saw ChangedCols == -1 until a
// restart. The cold rotated evaluation the server can actually hit is a
// snapshot restore (construction replays the persisted fault set through
// a fresh session), so the test plants the rotating fault, snapshots,
// restarts, and asserts the restored daemon serves a real column delta
// on the very next commit.
func TestAnchorRotationColdRestore(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig(t, func(c *Config) { c.SnapshotDir = dir })

	// Phase 1: plant the rotating fault and persist it.
	srv1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(srv1.Handler())
	rot := srv1.topos["main"].host.AnchorRotatingFault()
	if rot < 0 {
		t.Fatal("no single-node anchor-rotating fault on the test host; pick a different host")
	}
	base1 := ts1.URL + "/v1/topologies/main"
	if code, body := doJSON(t, "POST", base1+"/faults", mutationRequest{Nodes: []int{rot}}, nil); code != 200 {
		t.Fatalf("POST rotating fault %d: %d %s", rot, code, body)
	}
	if code, _ := doJSON(t, "POST", base1+"/snapshot", nil, nil); code != 200 {
		t.Fatalf("POST snapshot: %d", code)
	}
	ts1.Close()
	if err := srv1.Close(); err != nil {
		t.Fatal(err)
	}

	// Phase 2: restart. Construction replays the rotating fault through a
	// cold Reembed — the embedding comes back rotated and the session must
	// have re-armed its fast path.
	srv2, ts2 := startServer(t, cfg)
	topo := srv2.topos["main"]
	base := ts2.URL + "/v1/topologies/main"
	restored := fetchFullWire(t, base)
	if topo.metrics.restored.Load() != 1 {
		t.Fatal("restored gauge not set; the cold-restore scenario did not run")
	}
	// The restore itself is a legitimate resync boundary: the record chain
	// starts at a full record, so anything older than the restored head is
	// gone.
	if restored.Generation == 0 {
		t.Fatal("restored generation is 0; the planted fault never committed")
	}
	if code, _ := wireGet(t, fmt.Sprintf("%s/embedding?since=%d", base, restored.Generation-1)); code != http.StatusGone {
		t.Fatalf("since=%d across the restore boundary: %d, want 410", restored.Generation-1, code)
	}

	// Subscribe to the watch stream before mutating so the commit event is
	// observed exactly as a live client would see it.
	events := watchCollect(t, ts2.URL+"/v1/topologies/main/watch", 2)

	// One more fault, far from the rotating one. Before the re-arm this
	// commit (and every later one) came out Full; now it must be a warm
	// incremental step with a real column delta.
	far := (topo.host.HostNodes()/topo.numCols/2)*topo.numCols + topo.numCols/2
	if code, body := doJSON(t, "POST", base+"/faults", mutationRequest{Nodes: []int{far}}, nil); code != 200 {
		t.Fatalf("POST far fault %d: %d %s", far, code, body)
	}
	head := fetchFullWire(t, base)
	if head.Generation != restored.Generation+1 {
		t.Fatalf("head generation %d, want %d", head.Generation, restored.Generation+1)
	}

	// ?since=restored recovers within this one commit: 200, a non-empty
	// column delta, and applying it to the restored snapshot reproduces
	// the head exactly.
	code, body := wireGet(t, fmt.Sprintf("%s/embedding?since=%d", base, restored.Generation))
	if code != 200 {
		t.Fatalf("since=%d after the post-restore commit: %d %s (410 here is the dense cliff)",
			restored.Generation, code, body)
	}
	d, err := wire.DecodeDelta(body)
	if err != nil {
		t.Fatal(err)
	}
	if d.FromGeneration != restored.Generation || d.ToGeneration != head.Generation {
		t.Fatalf("delta spans %d..%d, want %d..%d", d.FromGeneration, d.ToGeneration, restored.Generation, head.Generation)
	}
	if len(d.Cols) == 0 {
		t.Fatal("post-restore delta has no columns; a single far fault must move at least one")
	}
	got, err := wire.Apply(restored, d)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, head) {
		t.Fatal("post-restore delta does not reproduce the head snapshot")
	}
	if rec := topo.snap.Load().delta; rec.full {
		t.Fatal("post-restore commit linked a full record: the session did not re-arm")
	}

	// The watch stream resumed column diffs: the baseline event for the
	// restored head bridges the restore (ChangedCols == -1 is correct
	// there), and the commit event for the new generation reports the
	// exact changed-column count.
	evs := <-events
	if evs[0].name != "commit" || evs[0].ev.Generation != restored.Generation {
		t.Fatalf("watch baseline: %s gen=%d, want commit gen=%d", evs[0].name, evs[0].ev.Generation, restored.Generation)
	}
	if evs[1].name != "commit" || evs[1].ev.Generation != head.Generation {
		t.Fatalf("watch event 1: %s gen=%d, want commit gen=%d", evs[1].name, evs[1].ev.Generation, head.Generation)
	}
	if evs[1].ev.ChangedCols != len(d.Cols) {
		t.Fatalf("watch ChangedCols = %d, want %d (== served delta columns; -1 is the dense cliff)",
			evs[1].ev.ChangedCols, len(d.Cols))
	}
}

// namedWatchEvent pairs an SSE event name with its decoded payload.
type namedWatchEvent struct {
	name string
	ev   watchEvent
}

// watchCollect subscribes to url and delivers the first n events on the
// returned channel, then disconnects. Failures are reported on t from
// the collector goroutine.
func watchCollect(t *testing.T, url string, n int) <-chan []namedWatchEvent {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	req, err := http.NewRequestWithContext(ctx, "GET", url, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 200 {
		resp.Body.Close()
		t.Fatalf("watch subscribe: %d", resp.StatusCode)
	}
	out := make(chan []namedWatchEvent, 1)
	go func() {
		defer resp.Body.Close()
		defer cancel()
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 1<<20), 1<<20)
		var evs []namedWatchEvent
		var name string
		for sc.Scan() {
			line := sc.Text()
			switch {
			case strings.HasPrefix(line, "event: "):
				name = strings.TrimPrefix(line, "event: ")
			case strings.HasPrefix(line, "data: "):
				var ev watchEvent
				if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
					t.Errorf("watch: bad event payload: %v", err)
					out <- evs
					return
				}
				evs = append(evs, namedWatchEvent{name, ev})
				if len(evs) == n {
					out <- evs
					return
				}
			}
		}
		t.Errorf("watch stream ended after %d of %d events: %v", len(evs), n, sc.Err())
		out <- evs
	}()
	return out
}
