package server

import (
	"ftnet/internal/fterr"
	"ftnet/internal/wire"
)

// ScratchExtract recomputes the committed embedding of one hosted
// topology from scratch: a fresh Extract over exactly the committed
// fault set, sharing no state with the incremental session. The
// pipeline is deterministic and incremental reembedding is pinned
// bit-identical to from-scratch extraction, so this is the convergence
// oracle for resilience tests — a client that synced through chaos must
// hold a map bit-identical to the returned one.
func (s *Server) ScratchExtract(id string) (*wire.Snapshot, error) {
	t, ok := s.topos[id]
	if !ok {
		return nil, fterr.New(fterr.NotFound, "server", "no topology %q", id)
	}
	snap := t.snap.Load()
	f := t.host.NewFaults()
	for _, v := range snap.FaultNodes {
		f.Add(v)
	}
	emb, err := t.host.Extract(f)
	if err != nil {
		return nil, fterr.Wrap(fterr.Internal, "server.scratch", err)
	}
	return &wire.Snapshot{
		Topology:   t.cfg.ID,
		Generation: snap.Generation,
		Side:       emb.Side,
		Dims:       emb.Dims,
		Faults:     snap.FaultNodes,
		Map:        emb.Map,
		Checksum:   wire.Checksum(emb.Map),
	}, nil
}
