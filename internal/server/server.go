package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"

	"ftnet"
	"ftnet/internal/fterr"
	"ftnet/internal/validate"
	"ftnet/internal/wire"
)

// maxBodyBytes bounds a mutation request body (a batch of node indices).
const maxBodyBytes = 32 << 20

// Server is the ftnetd daemon state: one topology worker per configured
// topology plus the HTTP wire protocol.
//
// Routes:
//
//	GET    /healthz                        liveness + per-topology summary
//	GET    /metrics                        Prometheus text metrics
//	GET    /v1/topologies                  list hosted topologies
//	GET    /v1/topologies/{id}             host parameters + current state
//	POST   /v1/topologies/{id}/faults      report faults  {"nodes":[...]}
//	DELETE /v1/topologies/{id}/faults      report repairs {"nodes":[...]}
//	POST   /v1/topologies/{id}/edge-faults report edge faults  {"edges":[[u,v],...]}
//	DELETE /v1/topologies/{id}/edge-faults report edge repairs {"edges":[[u,v],...]}
//	POST   /v1/topologies/{id}/reembed     flush pending mutations, evaluate now
//	GET    /v1/topologies/{id}/embedding   last committed embedding snapshot
//	GET    /v1/topologies/{id}/watch       SSE stream of generation commits
//	POST   /v1/topologies/{id}/snapshot    persist session state to disk
//
// Mutations default to synchronous (the response carries the outcome of
// the evaluation that covered the batch); ?wait=0 returns 202 Accepted
// and leaves evaluation to the batching policy.
//
// GET .../embedding speaks two encodings, negotiated via the Accept
// header: JSON (default) and the compact binary wire format (Accept:
// application/x-ftnet-wire, see internal/wire). With ?since=g it
// answers a delta — only the columns changed in (g, head] — or 410 Gone
// when g fell off the delta ring, telling the client to resync from the
// full embedding.
type Server struct {
	cfg    Config
	topos  map[string]*topology
	mux    *http.ServeMux
	snapMu sync.Mutex // serializes snapshot file writes

	// errs counts every error response by fterr code (the
	// ftnetd_errors_total metric); writeErr is the single choke point.
	errs errCounters
	// chaos, when non-nil, is the fault-injection middleware state.
	chaos *chaosInjector

	// watchc, when closed, disconnects every watch stream; see
	// DisconnectWatchers.
	watchc    chan struct{}
	watchOnce sync.Once
	closeOnce sync.Once
}

// New validates cfg, builds every topology's host, restores snapshots
// when SnapshotDir holds one, commits each initial state, and starts the
// writer goroutines. The returned server is ready to serve.
func New(cfg Config) (*Server, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := &Server{
		cfg:    cfg,
		topos:  make(map[string]*topology, len(cfg.Topologies)),
		watchc: make(chan struct{}),
	}
	if cfg.Chaos.Enabled() {
		s.chaos = newChaosInjector(cfg.Chaos)
	}
	for _, tc := range cfg.Topologies {
		var restore *diskSnapshot
		if cfg.SnapshotDir != "" {
			var err error
			restore, err = loadSnapshot(cfg.SnapshotDir, tc.ID)
			if err != nil {
				return nil, fmt.Errorf("server: %w", err)
			}
		}
		t, err := newTopology(tc, cfg, restore)
		if err != nil {
			return nil, fmt.Errorf("server: %w", err)
		}
		s.topos[tc.ID] = t
	}
	s.mux = http.NewServeMux()
	s.routes()
	for _, t := range s.topos {
		go t.run()
	}
	return s, nil
}

// DisconnectWatchers ends every active watch stream. An SSE handler
// never returns on its own, so an http.Server.Shutdown would wait for
// them forever; call this first (the serve command does), then drain,
// then Close.
func (s *Server) DisconnectWatchers() {
	s.watchOnce.Do(func() { close(s.watchc) })
}

// Close stops every topology worker (flushing applied mutations) and,
// when snapshots are configured, persists each topology's final
// committed state. Callers should drain the HTTP server first.
func (s *Server) Close() error {
	var firstErr error
	s.closeOnce.Do(func() {
		s.DisconnectWatchers()
		for _, t := range s.topos {
			close(t.stopc)
		}
		for _, t := range s.topos {
			<-t.done
		}
		if s.cfg.SnapshotDir == "" {
			return
		}
		for _, t := range s.topos {
			if _, _, err := s.writeTopoSnapshot(t); err != nil && firstErr == nil {
				firstErr = err
			}
		}
	})
	return firstErr
}

// writeTopoSnapshot persists the topology's current state and returns,
// alongside the file path, exactly the committed Snapshot that went to
// disk (the caller must not re-load t.snap: a concurrent commit could
// make the acknowledgement claim a newer generation than the file
// holds). The session fault set may be slightly newer than the
// committed snapshot — restore replays the committed part first (which
// re-verifies against the checksum) and leaves the delta pending, so a
// torn pair stays consistent.
func (s *Server) writeTopoSnapshot(t *topology) (string, *Snapshot, error) {
	s.snapMu.Lock()
	defer s.snapMu.Unlock()
	snap := t.snap.Load()
	session := snap.FaultNodes
	if p := t.curFaults.Load(); p != nil {
		session = *p
	}
	sessionEdges := snap.FaultEdges
	if p := t.curEdges.Load(); p != nil {
		sessionEdges = *p
	}
	path, err := writeSnapshot(s.cfg.SnapshotDir, t, snap, session, sessionEdges)
	return path, snap, err
}

// Handler returns the daemon's HTTP handler — wrapped by the
// fault-injection middleware when chaos is configured.
func (s *Server) Handler() http.Handler {
	if s.chaos != nil {
		return s.chaos.wrap(s.mux)
	}
	return s.mux
}

func (s *Server) routes() {
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /v1/topologies", s.handleList)
	s.mux.HandleFunc("GET /v1/topologies/{id}", s.handleInfo)
	s.mux.HandleFunc("POST /v1/topologies/{id}/faults", s.mutationHandler(reqAdd))
	s.mux.HandleFunc("DELETE /v1/topologies/{id}/faults", s.mutationHandler(reqClear))
	s.mux.HandleFunc("POST /v1/topologies/{id}/edge-faults", s.edgeMutationHandler(reqAddEdges))
	s.mux.HandleFunc("DELETE /v1/topologies/{id}/edge-faults", s.edgeMutationHandler(reqClearEdges))
	s.mux.HandleFunc("POST /v1/topologies/{id}/reembed", s.handleReembed)
	s.mux.HandleFunc("GET /v1/topologies/{id}/embedding", s.handleEmbedding)
	s.mux.HandleFunc("GET /v1/topologies/{id}/watch", s.handleWatch)
	s.mux.HandleFunc("POST /v1/topologies/{id}/snapshot", s.handleSnapshot)
}

// ---------------------------------------------------------------------------
// Wire types.

// errorBody is every error response's JSON document: the typed
// fterr.Wire fields ({code, message, retryable, resync_from}) plus a
// legacy "error" string kept for pre-taxonomy clients and scripts.
type errorBody struct {
	fterr.Wire
	// Error duplicates Message under the key older clients read.
	Error string `json:"error"`
}

type stateResponse struct {
	Topology       string `json:"topology"`
	Generation     int64  `json:"generation"`
	FaultCount     int    `json:"fault_count"`
	EdgeFaultCount int    `json:"edge_fault_count"`
	Checksum       string `json:"checksum"`
}

type acceptedResponse struct {
	Topology string `json:"topology"`
	Status   string `json:"status"`
	Nodes    int    `json:"nodes"`
	Edges    int    `json:"edges,omitempty"`
}

type topologyInfo struct {
	ID         string  `json:"id"`
	Dims       int     `json:"dims"`
	Side       int     `json:"side"`
	HostNodes  int     `json:"host_nodes"`
	Degree     int     `json:"degree"`
	Eps        float64 `json:"eps"`
	TheoremP   float64 `json:"theorem_failure_prob"`
	Generation int64   `json:"generation"`
	FaultCount int     `json:"fault_count"`
	EdgeFaults int     `json:"edge_fault_count"`
}

type embeddingResponse struct {
	Topology   string   `json:"topology"`
	Generation int64    `json:"generation"`
	Side       int      `json:"side"`
	Dims       int      `json:"dims"`
	Checksum   string   `json:"checksum"`
	Faults     []int    `json:"faults"`
	EdgeFaults [][2]int `json:"edge_faults"`
	Map        []int    `json:"map"`
}

type columnUpdateJSON struct {
	Col  int   `json:"col"`
	Vals []int `json:"vals"`
}

// deltaResponse is the JSON form of a ?since= answer: the columns
// changed in (from_generation, generation], carrying their
// head-generation values, plus the head fault set and checksum.
type deltaResponse struct {
	Topology       string             `json:"topology"`
	FromGeneration int64              `json:"from_generation"`
	Generation     int64              `json:"generation"`
	Side           int                `json:"side"`
	Dims           int                `json:"dims"`
	Checksum       string             `json:"checksum"`
	Faults         []int              `json:"faults"`
	EdgeFaults     [][2]int           `json:"edge_faults"`
	Cols           []columnUpdateJSON `json:"cols"`
}

// RenderEmbeddingJSON writes the canonical JSON embedding document for
// s — byte-identical to what GET .../embedding serves for the same
// state — so offline tooling (cmd/ftnet wire) can diff a decoded binary
// payload against the JSON wire bit for bit.
func RenderEmbeddingJSON(w io.Writer, s *wire.Snapshot) error {
	return json.NewEncoder(w).Encode(embeddingResponse{
		Topology:   s.Topology,
		Generation: s.Generation,
		Side:       s.Side,
		Dims:       s.Dims,
		Checksum:   fmt.Sprintf("%016x", s.Checksum),
		Faults:     s.Faults,
		EdgeFaults: edgesOrEmpty(s.Edges),
		Map:        s.Map,
	})
}

type mutationRequest struct {
	Nodes []int `json:"nodes"`
}

type edgeMutationRequest struct {
	Edges [][2]int `json:"edges"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

// errBody renders err as the typed wire document. The status and the
// retryable flag derive mechanically from the error's code — handlers
// never pick either.
func errBody(err error, resyncFrom int64) errorBody {
	code := fterr.CodeOf(err)
	return errorBody{
		Wire: fterr.Wire{
			Code:       code,
			Message:    err.Error(),
			Retryable:  code.Retryable(),
			ResyncFrom: resyncFrom,
		},
		Error: err.Error(),
	}
}

// writeErr is the single error choke point: code -> HTTP status, typed
// JSON body, and the ftnetd_errors_total counter.
func (s *Server) writeErr(w http.ResponseWriter, err error) {
	s.writeErrResync(w, err, 0)
}

// writeErrResync is writeErr for resync_required responses, carrying
// the head generation the client should full-fetch.
func (s *Server) writeErrResync(w http.ResponseWriter, err error, resyncFrom int64) {
	code := fterr.CodeOf(err)
	s.errs.inc(code)
	writeJSON(w, code.HTTPStatus(), errBody(err, resyncFrom))
}

// topo resolves the {id} path value; a miss answers 404 and returns nil.
func (s *Server) topo(w http.ResponseWriter, r *http.Request) *topology {
	id := r.PathValue("id")
	t, ok := s.topos[id]
	if !ok {
		s.writeErr(w, fterr.New(fterr.NotFound, "server", "unknown topology %q", id))
		return nil
	}
	return t
}

func stateOf(t *topology, snap *Snapshot) stateResponse {
	return stateResponse{
		Topology:       t.cfg.ID,
		Generation:     snap.Generation,
		FaultCount:     len(snap.FaultNodes),
		EdgeFaultCount: len(snap.FaultEdges),
		Checksum:       fmt.Sprintf("%016x", snap.Checksum),
	}
}

// ---------------------------------------------------------------------------
// Handlers.

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	type topoHealth struct {
		Generation int64 `json:"generation"`
		FaultCount int   `json:"fault_count"`
		Pending    int64 `json:"pending"`
	}
	out := struct {
		Status     string                `json:"status"`
		Topologies map[string]topoHealth `json:"topologies"`
	}{Status: "ok", Topologies: make(map[string]topoHealth, len(s.topos))}
	for id, t := range s.topos {
		snap := t.snap.Load()
		out.Topologies[id] = topoHealth{
			Generation: snap.Generation,
			FaultCount: len(snap.FaultNodes),
			Pending:    t.metrics.pendingRequests.Load(),
		}
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	var b strings.Builder
	writeMetrics(&b, s)
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	w.Write([]byte(b.String()))
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	out := make([]topologyInfo, 0, len(s.topos))
	for _, t := range s.topos {
		out = append(out, s.infoOf(t))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) infoOf(t *topology) topologyInfo {
	snap := t.snap.Load()
	return topologyInfo{
		ID:         t.cfg.ID,
		Dims:       t.host.Dims(),
		Side:       t.host.Side(),
		HostNodes:  t.host.HostNodes(),
		Degree:     t.host.Degree(),
		Eps:        t.host.Eps(),
		TheoremP:   t.host.TheoremFailureProb(),
		Generation: snap.Generation,
		FaultCount: len(snap.FaultNodes),
		EdgeFaults: len(snap.FaultEdges),
	}
}

func (s *Server) handleInfo(w http.ResponseWriter, r *http.Request) {
	t := s.topo(w, r)
	if t == nil {
		return
	}
	writeJSON(w, http.StatusOK, s.infoOf(t))
}

// mutationHandler serves POST (report faults) and DELETE (report
// repairs) on .../faults. Indices are validated here, at the API
// boundary, against the immutable host size — the writer goroutine never
// sees an out-of-range index.
func (s *Server) mutationHandler(kind reqKind) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		t := s.topo(w, r)
		if t == nil {
			return
		}
		var req mutationRequest
		dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
		if err := dec.Decode(&req); err != nil {
			s.writeErr(w, fterr.Wrapf(fterr.Invalid, "server", err, "bad request body"))
			return
		}
		if len(req.Nodes) == 0 {
			s.writeErr(w, fterr.New(fterr.Invalid, "server", "no nodes in request"))
			return
		}
		n := t.host.HostNodes()
		for _, v := range req.Nodes {
			if v < 0 || v >= n {
				s.writeErr(w, fterr.New(fterr.Invalid, "server", "host node %d out of range [0, %d)", v, n))
				return
			}
		}
		wait := true
		if raw := r.URL.Query().Get("wait"); raw != "" {
			var err error
			if wait, err = strconv.ParseBool(raw); err != nil {
				s.writeErr(w, fterr.New(fterr.Invalid, "server", "bad wait parameter %q (want a boolean)", raw))
				return
			}
		}
		mut := request{kind: kind, nodes: req.Nodes}
		if wait {
			mut.reply = make(chan result, 1)
		}
		if err := t.submit(mut); err != nil {
			s.writeErr(w, err)
			return
		}
		if !wait {
			writeJSON(w, http.StatusAccepted, acceptedResponse{
				Topology: t.cfg.ID, Status: "accepted", Nodes: len(req.Nodes),
			})
			return
		}
		s.replyState(w, r, t, mut.reply)
	}
}

// edgeMutationHandler serves POST (report edge faults) and DELETE
// (report repairs) on .../edge-faults. The whole batch is validated at
// the API boundary — endpoint range, self-loops, host adjacency — with
// all-or-nothing semantics: one bad edge rejects the request before the
// writer sees any of it, so a partially applied batch cannot exist.
func (s *Server) edgeMutationHandler(kind reqKind) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		t := s.topo(w, r)
		if t == nil {
			return
		}
		var req edgeMutationRequest
		dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
		if err := dec.Decode(&req); err != nil {
			s.writeErr(w, fterr.Wrapf(fterr.Invalid, "server", err, "bad request body"))
			return
		}
		if len(req.Edges) == 0 {
			s.writeErr(w, fterr.New(fterr.Invalid, "server", "no edges in request"))
			return
		}
		n := t.host.HostNodes()
		for _, e := range req.Edges {
			// t.ses.Adjacent only reads the immutable host graph, so the
			// check is safe off the writer goroutine.
			if err := validate.Edge("edge fault", e[0], e[1], n, t.ses.Adjacent); err != nil {
				s.writeErr(w, err)
				return
			}
		}
		wait := true
		if raw := r.URL.Query().Get("wait"); raw != "" {
			var err error
			if wait, err = strconv.ParseBool(raw); err != nil {
				s.writeErr(w, fterr.New(fterr.Invalid, "server", "bad wait parameter %q (want a boolean)", raw))
				return
			}
		}
		mut := request{kind: kind, edges: req.Edges}
		if wait {
			mut.reply = make(chan result, 1)
		}
		if err := t.submit(mut); err != nil {
			s.writeErr(w, err)
			return
		}
		if !wait {
			writeJSON(w, http.StatusAccepted, acceptedResponse{
				Topology: t.cfg.ID, Status: "accepted", Edges: len(req.Edges),
			})
			return
		}
		s.replyState(w, r, t, mut.reply)
	}
}

func (s *Server) handleReembed(w http.ResponseWriter, r *http.Request) {
	t := s.topo(w, r)
	if t == nil {
		return
	}
	mut := request{kind: reqFlush, reply: make(chan result, 1)}
	if err := t.submit(mut); err != nil {
		s.writeErr(w, err)
		return
	}
	s.replyState(w, r, t, mut.reply)
}

// replyState waits for the writer's outcome and renders it. A fault
// pattern beyond the construction's tolerance is the caller's news, not
// a server failure: 422, with the still-served last-good generation.
func (s *Server) replyState(w http.ResponseWriter, r *http.Request, t *topology, reply chan result) {
	select {
	case res := <-reply:
		switch {
		case res.err == nil:
			writeJSON(w, http.StatusOK, stateOf(t, res.snap))
		case errors.Is(res.err, ftnet.ErrNotTolerated):
			// 422 carries the typed error AND the last-good committed
			// state the daemon keeps serving: recorded reality never
			// rolls back, the caller sees exactly what still stands.
			snap := t.snap.Load()
			code := fterr.CodeOf(res.err)
			s.errs.inc(code)
			writeJSON(w, code.HTTPStatus(), struct {
				errorBody
				stateResponse
			}{errBody(res.err, 0), stateOf(t, snap)})
		case errors.Is(res.err, errShutdown):
			s.writeErr(w, res.err)
		default:
			s.writeErr(w, fterr.Wrap(fterr.Internal, "server.eval", res.err))
		}
	case <-r.Context().Done():
		// Client went away; the writer's buffered reply is dropped.
		s.writeErr(w, fterr.New(fterr.Unavailable, "server", "request canceled"))
	case <-t.stopc:
		s.writeErr(w, errShutdown)
	}
}

// wantsWire reports whether the client negotiated the binary encoding.
func wantsWire(r *http.Request) bool {
	return strings.Contains(r.Header.Get("Accept"), wire.ContentType)
}

func writeWire(w http.ResponseWriter, b []byte) {
	w.Header().Set("Content-Type", wire.ContentType)
	w.WriteHeader(http.StatusOK)
	w.Write(b)
}

func (s *Server) handleEmbedding(w http.ResponseWriter, r *http.Request) {
	t := s.topo(w, r)
	if t == nil {
		return
	}
	snap := t.snap.Load()
	binary := wantsWire(r)

	raw := r.URL.Query().Get("since")
	if raw == "" {
		if binary {
			b, err := snap.wireFull(t.cfg.ID)
			if err != nil {
				s.writeErr(w, fterr.Wrapf(fterr.Internal, "server", err, "encode embedding"))
				return
			}
			writeWire(w, b)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		RenderEmbeddingJSON(w, snap.wireSnapshot(t.cfg.ID))
		return
	}

	since, err := strconv.ParseInt(raw, 10, 64)
	if err != nil || since < 0 {
		s.writeErr(w, fterr.New(fterr.Invalid, "server", "bad since parameter %q (want a non-negative generation)", raw))
		return
	}
	if since > snap.Generation {
		s.writeErr(w, fterr.New(fterr.Invalid, "server", "since generation %d is ahead of head generation %d", since, snap.Generation))
		return
	}
	cols, err := deltaSince(snap, since)
	if err != nil {
		// The requested diff no longer exists; never serve a stale
		// guess. resync_from tells the client which head to full-fetch.
		t.metrics.deltaResync.Add(1)
		s.writeErrResync(w, err, snap.Generation)
		return
	}
	t.metrics.deltaServed.Add(1)
	if binary {
		b, err := t.wireDeltaEncoded(snap, since, cols)
		if err != nil {
			s.writeErr(w, fterr.Wrapf(fterr.Internal, "server", err, "encode delta"))
			return
		}
		writeWire(w, b)
		return
	}
	d := t.wireDelta(snap, since, cols)
	cus := make([]columnUpdateJSON, len(d.Cols))
	for i, cu := range d.Cols {
		cus[i] = columnUpdateJSON{Col: cu.Col, Vals: cu.Vals}
	}
	writeJSON(w, http.StatusOK, deltaResponse{
		Topology:       d.Topology,
		FromGeneration: d.FromGeneration,
		Generation:     d.ToGeneration,
		Side:           d.Side,
		Dims:           d.Dims,
		Checksum:       fmt.Sprintf("%016x", d.Checksum),
		Faults:         d.Faults,
		EdgeFaults:     edgesOrEmpty(d.Edges),
		Cols:           cus,
	})
}

func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	t := s.topo(w, r)
	if t == nil {
		return
	}
	if s.cfg.SnapshotDir == "" {
		s.writeErr(w, fterr.New(fterr.Conflict, "server", "snapshots disabled: no snapshot dir configured"))
		return
	}
	path, snap, err := s.writeTopoSnapshot(t)
	if err != nil {
		s.writeErr(w, fterr.Wrapf(fterr.Internal, "server", err, "snapshot"))
		return
	}
	writeJSON(w, http.StatusOK, struct {
		stateResponse
		Path string `json:"path"`
	}{stateOf(t, snap), path})
}
